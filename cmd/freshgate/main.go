// Command freshgate is the routing tier in front of a pool of freshd
// backends: it maps every tenant onto its home backend with rendezvous
// hashing, health-checks the pool, and fails requests over to the next
// hash candidate when a backend drops.
//
// Usage:
//
//	freshgate -addr :8090 -backend http://10.0.0.7:8080 -backend http://10.0.0.8:8080
//	freshgate -backend http://a:8080,http://b:8080 -probe.interval 500ms
//
// Endpoints: every /v1/* route is proxied to the tenant's backend
// (?tenant= selects the tenant; absent means the default tenant);
// GET /healthz reports the gate's pool view; GET /metrics exposes gate.*.
//
// Routing is stateless: any number of freshgate instances over the same
// -backend list compute the same tenant→backend map, so gates scale out
// with no coordination.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"freshsource/internal/gate"
	"freshsource/internal/obs"
	"freshsource/internal/version"
)

// listFlag is a repeatable, comma-splittable string flag
// (-backend a -backend b,c).
type listFlag []string

func (f *listFlag) String() string { return strings.Join(*f, ",") }

func (f *listFlag) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*f = append(*f, s)
		}
	}
	return nil
}

func main() {
	var backends listFlag
	var (
		addr        = flag.String("addr", ":8090", "listen address")
		defTenant   = flag.String("default-tenant", "default", "tenant routed when a request has no ?tenant= parameter")
		probeEvery  = flag.Duration("probe.interval", time.Second, "backend health-check cadence")
		probeTO     = flag.Duration("probe.timeout", 2*time.Second, "bound on one health probe")
		timeout     = flag.Duration("timeout", 60*time.Second, "bound on one proxied request including failover retries")
		maxBody     = flag.Int64("max-body", 1<<20, "request body cap in bytes (bodies are buffered for failover replay)")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Var(&backends, "backend", "freshd backend base URL (repeatable, comma-splittable)")
	var of obs.Flags
	of.Register(flag.CommandLine)
	flag.Parse()

	if *showVersion {
		fmt.Println("freshgate", version.String())
		return
	}
	if len(backends) == 0 {
		fatal(fmt.Errorf("at least one -backend is required"))
	}

	if bound, err := of.Activate(); err != nil {
		fatal(err)
	} else if bound != "" {
		fmt.Fprintf(os.Stderr, "freshgate: pprof/expvar on http://%s/debug/pprof/\n", bound)
	}
	defer of.Finish(os.Stderr)

	pool := make([]*gate.Backend, 0, len(backends))
	for _, raw := range backends {
		b, err := gate.NewBackend(raw)
		if err != nil {
			fatal(err)
		}
		pool = append(pool, b)
	}
	p, err := gate.NewPool(pool, gate.Config{
		DefaultTenant:  *defTenant,
		ProbeInterval:  *probeEvery,
		ProbeTimeout:   *probeTO,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go p.Start(ctx)

	srv := &http.Server{Addr: *addr, Handler: p.Handler()}
	go func() {
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()

	fmt.Fprintf(os.Stderr, "freshgate %s: routing %d backends on %s\n",
		version.String(), len(pool), *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "freshgate: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freshgate:", err)
	os.Exit(1)
}
