package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"freshsource/internal/benchfmt"
)

func TestParseMix(t *testing.T) {
	w, err := parseMix("select=6,quality=3,reload=1")
	if err != nil {
		t.Fatal(err)
	}
	if w["select"] != 6 || w["quality"] != 3 || w["reload"] != 1 {
		t.Errorf("weights: %v", w)
	}
	for _, bad := range []string{"", "select=x", "bogus=1", "select=-2", "select=0,quality=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	weights := map[string]int{"select": 6, "quality": 3, "reload": 1, "observe": 2}
	names := []string{"t0", "t1", "t2", "t3"}
	a := newWorkload(42, weights, names, "t0", 10, 120, 220, 500)
	b := newWorkload(42, weights, names, "t0", 10, 120, 220, 500)
	tenants := map[string]bool{}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		ra, rb := a.next(), b.next()
		if ra != rb {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, ra, rb)
		}
		seen[ra.endpoint] = true
		tenants[ra.tenant] = true
		if ra.endpoint != "observe" && !strings.Contains(ra.path, "?tenant="+ra.tenant) {
			t.Fatalf("draw %d: path %q does not address tenant %q", i, ra.path, ra.tenant)
		}
	}
	for _, ep := range []string{"select", "quality", "reload", "observe"} {
		if !seen[ep] {
			t.Errorf("200 draws never hit %s", ep)
		}
	}
	for _, tn := range names {
		if !tenants[tn] {
			t.Errorf("200 draws never addressed tenant %s", tn)
		}
	}
}

// TestWorkloadAnonymous: against a pre-tenant daemon (no names) requests
// carry no tenant parameter and no tenant label.
func TestWorkloadAnonymous(t *testing.T) {
	w := newWorkload(1, map[string]int{"select": 1, "freshness": 1}, nil, "", 10, 120, 220, 0)
	for i := 0; i < 50; i++ {
		rq := w.next()
		if rq.tenant != "" || strings.Contains(rq.path, "tenant=") {
			t.Fatalf("draw %d: anonymous workload produced %+v", i, rq)
		}
	}
}

// TestWorkloadObserveMonotone pins the observe stream invariants: ticks
// are strictly increasing (always ahead of any committed watermark) and
// the stream degrades to freshness probes past the refit window instead of
// emitting doomed requests.
func TestWorkloadObserveMonotone(t *testing.T) {
	w := newWorkload(7, map[string]int{"observe": 1}, []string{"t0", "t1"}, "t0", 4, 120, 130, 50)
	last := int64(120)
	for i := 0; i < 8; i++ {
		rq := w.next()
		if rq.endpoint != "observe" {
			t.Fatalf("draw %d: %s before window exhausted (tick %d)", i, rq.endpoint, w.obsTick)
		}
		var body struct {
			Observations []struct {
				At int64 `json:"at"`
			} `json:"observations"`
		}
		if err := json.Unmarshal([]byte(rq.body), &body); err != nil {
			t.Fatalf("draw %d body: %v\n%s", i, err, rq.body)
		}
		for _, o := range body.Observations {
			if o.At <= last {
				t.Fatalf("draw %d: tick %d not after %d", i, o.At, last)
			}
		}
		last = body.Observations[0].At
	}
	// Window (120, 128] is exhausted after 8 draws; the stream falls back.
	if rq := w.next(); rq.endpoint != "freshness" {
		t.Fatalf("post-window draw: %+v", rq)
	}
}

func TestPercentile(t *testing.T) {
	durs := make([]time.Duration, 100)
	for i := range durs {
		durs[i] = time.Duration(i+1) * time.Millisecond
	}
	if p := percentile(durs, 0.50); p != 50*time.Millisecond {
		t.Errorf("p50 = %v", p)
	}
	if p := percentile(durs, 0.99); p != 99*time.Millisecond {
		t.Errorf("p99 = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
	if p := percentile(durs[:1], 0.99); p != 1*time.Millisecond {
		t.Errorf("singleton percentile = %v", p)
	}
}

// TestRunSpawned is the end-to-end smoke: spawn an in-process freshd,
// offer a short mixed load, and check the report and the bench-line output
// feed the benchjson compare gate.
func TestRunSpawned(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a server and fits models")
	}
	out := filepath.Join(t.TempDir(), "BENCH_serving.json")
	cfg := benchConfig{
		Spawn:       true,
		Kind:        "bl",
		Scale:       0.4,
		RPS:         60,
		Concurrency: 4,
		Duration:    1200 * time.Millisecond,
		Mix:         "select=5,quality=3,reload=1,freshness=1",
		Tenants:     3,
		Seed:        7,
		Timeout:     10 * time.Second,
		Out:         out,
	}
	var stdout, stderr bytes.Buffer
	rep, err := run(cfg, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if rep.Serving == nil || rep.Serving.TotalRequests == 0 {
		t.Fatalf("no requests recorded: %+v", rep.Serving)
	}
	if len(rep.Serving.Endpoints) == 0 || len(rep.Benchmarks) != 3*len(rep.Serving.Endpoints) {
		t.Errorf("endpoints %d benchmarks %d", len(rep.Serving.Endpoints), len(rep.Benchmarks))
	}
	for _, ep := range rep.Serving.Endpoints {
		if ep.Requests == 0 || ep.P50Ms < 0 || ep.P99Ms < ep.P50Ms {
			t.Errorf("endpoint stats: %+v", ep)
		}
		if ep.ErrorRate > 0 {
			t.Errorf("%s: error rate %g on a healthy spawned server", ep.Endpoint, ep.ErrorRate)
		}
	}
	if !strings.Contains(stderr.String(), "version=dev") {
		t.Errorf("run header missing build identity: %s", stderr.String())
	}
	if len(rep.Serving.Tenants) != 3 {
		t.Fatalf("tenant stats: %+v, want 3 tenants", rep.Serving.Tenants)
	}
	for i, tn := range rep.Serving.Tenants {
		if want := []string{"t0", "t1", "t2"}[i]; tn.Tenant != want {
			t.Errorf("tenant[%d] = %q, want %q", i, tn.Tenant, want)
		}
		if tn.Requests == 0 || tn.ErrorRate > 0 {
			t.Errorf("tenant stats: %+v", tn)
		}
	}

	// The printed lines must round-trip through the benchjson parser and
	// self-compare clean against the written report.
	parsed, err := benchfmt.Parse(strings.NewReader(stdout.String()))
	if err != nil {
		t.Fatalf("bench lines unparseable: %v\n%s", err, stdout.String())
	}
	if len(parsed.Benchmarks) != len(rep.Benchmarks) {
		t.Errorf("parsed %d lines, report has %d", len(parsed.Benchmarks), len(rep.Benchmarks))
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk benchfmt.Report
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatal(err)
	}
	if regs, missing := benchfmt.Compare(onDisk, parsed, 0.01); len(regs) != 0 || len(missing) != 0 {
		t.Errorf("self-compare: regs=%v missing=%v", regs, missing)
	}
}

// TestRunSpawnedObserve is the ingest-mode end-to-end smoke: with observe
// weighted, the spawned server runs 1s epochs, the stream drives the
// watermark forward, and the report records the final ingest epoch and
// generation.
func TestRunSpawnedObserve(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a server and fits models")
	}
	cfg := benchConfig{
		Spawn:       true,
		Kind:        "bl",
		Scale:       0.4,
		RPS:         60,
		Concurrency: 4,
		Duration:    1500 * time.Millisecond,
		Mix:         "select=4,quality=3,observe=2,freshness=1",
		Tenants:     3,
		Seed:        7,
		Timeout:     10 * time.Second,
	}
	var stdout, stderr bytes.Buffer
	rep, err := run(cfg, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if _, ok := rep.Serving.Target["ingest_epoch"]; !ok {
		t.Errorf("report missing ingest_epoch: %v", rep.Serving.Target)
	}
	if _, ok := rep.Serving.Target["generation_end"]; !ok {
		t.Errorf("report missing generation_end: %v", rep.Serving.Target)
	}
	for _, ep := range rep.Serving.Endpoints {
		if ep.Endpoint == "observe" && ep.ErrorRate > 0 {
			t.Errorf("observe error rate %g", ep.ErrorRate)
		}
	}

	// observe + reload cannot share a spawned server.
	cfg.Mix = "observe=1,reload=1"
	if _, err := run(cfg, &stdout, &stderr); err == nil {
		t.Error("want error for observe+reload spawn mix")
	}
}

// TestRunGate benches through the routing tier: two spawned multi-tenant
// backends behind an in-process freshgate pool, tenant traffic hashed
// across them.
func TestRunGate(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns two servers and a gate, fits models")
	}
	cfg := benchConfig{
		Spawn:        true,
		Gate:         true,
		GateBackends: 2,
		Kind:         "bl",
		Scale:        0.4,
		RPS:          50,
		Concurrency:  4,
		Duration:     1200 * time.Millisecond,
		Mix:          "select=5,quality=3,freshness=2",
		Tenants:      2,
		Seed:         7,
		Timeout:      10 * time.Second,
	}
	var stdout, stderr bytes.Buffer
	rep, err := run(cfg, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if rep.Serving.Target["mode"] != "gate" {
		t.Errorf("target: %v", rep.Serving.Target)
	}
	if len(rep.Serving.Tenants) != 2 {
		t.Fatalf("tenant stats through the gate: %+v", rep.Serving.Tenants)
	}
	for _, tn := range rep.Serving.Tenants {
		if tn.Requests == 0 || tn.ErrorRate > 0 {
			t.Errorf("tenant stats: %+v", tn)
		}
	}

	// -gate without -spawn is refused.
	bad := cfg
	bad.Spawn = false
	bad.Gate = true
	bad.Target = "http://127.0.0.1:1"
	if _, err := run(bad, &stdout, &stderr); err == nil {
		t.Error("want error for -gate without -spawn")
	}
}
