// Command freshbench drives a live freshd with a deterministic mixed
// workload and reports serving-side tail latency, rejection rates and
// allocation pressure — the serving analogue of the solver benchmarks.
//
// Usage:
//
//	freshbench -target http://localhost:8080 -rps 100 -duration 30s
//	freshbench -spawn -duration 5s -out BENCH_serving.json
//
// The workload is seeded: the same -seed, -mix, -tenants and -rps produce
// the same request sequence, so two runs against the same build are
// comparable. Results go to stdout as Go benchmark lines (one synthetic
// benchmark per endpoint/quantile, parseable by benchjson for the CI
// regression gate) and, with -out, as a BENCH_serving.json report carrying
// the full per-endpoint breakdown.
//
// -spawn starts an in-process freshd over a compact generated snapshot on
// an ephemeral port — the self-contained smoke mode used by `make
// servebench`; -target points at any already-running daemon instead.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"freshsource/internal/benchfmt"
	"freshsource/internal/dataset"
	"freshsource/internal/obs"
	"freshsource/internal/serve"
	"freshsource/internal/snapio"
	"freshsource/internal/version"
)

type benchConfig struct {
	Target      string
	Spawn       bool
	Kind        string
	Scale       float64
	RPS         float64
	Concurrency int
	Duration    time.Duration
	Mix         string
	Tenants     int
	Seed        int64
	Timeout     time.Duration
	Out         string
}

func main() {
	var cfg benchConfig
	flag.StringVar(&cfg.Target, "target", "", "base URL of a running freshd (e.g. http://localhost:8080)")
	flag.BoolVar(&cfg.Spawn, "spawn", false, "spawn an in-process freshd over a compact generated snapshot instead of -target")
	flag.StringVar(&cfg.Kind, "kind", "bl", "spawned dataset kind: bl or gdelt")
	flag.Float64Var(&cfg.Scale, "scale", 0.4, "spawned dataset scale")
	flag.Float64Var(&cfg.RPS, "rps", 50, "request rate to offer")
	flag.IntVar(&cfg.Concurrency, "concurrency", 8, "client workers issuing requests")
	flag.DurationVar(&cfg.Duration, "duration", 5*time.Second, "load duration")
	flag.StringVar(&cfg.Mix, "mix", "select=6,quality=3,reload=1", "endpoint weights")
	flag.IntVar(&cfg.Tenants, "tenants", 4, "distinct tenant workload shapes")
	flag.Int64Var(&cfg.Seed, "seed", 1, "workload seed")
	flag.DurationVar(&cfg.Timeout, "timeout", 10*time.Second, "per-request client timeout")
	flag.StringVar(&cfg.Out, "out", "", "write the full BENCH_serving.json report here")
	flag.Parse()

	if _, err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "freshbench:", err)
		os.Exit(1)
	}
}

// parseMix turns "select=6,quality=3,reload=1" into weights. Unknown
// endpoints are an error; at least one weight must be positive.
func parseMix(s string) (map[string]int, error) {
	known := map[string]bool{"select": true, "quality": true, "reload": true, "freshness": true, "observe": true}
	weights := map[string]int{}
	total := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, raw, ok := strings.Cut(part, "=")
		if !ok || !known[name] {
			return nil, fmt.Errorf("bad mix element %q (want endpoint=weight with endpoint in select/quality/reload/observe/freshness)", part)
		}
		w, err := strconv.Atoi(raw)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		weights[name] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has no positive weight", s)
	}
	return weights, nil
}

// request is one generated unit of work.
type request struct {
	endpoint string // select|quality|reload|freshness
	method   string
	path     string
	body     string
}

// workload deterministically generates the request stream: a seeded RNG
// draws an endpoint from the mix and a tenant-specific shape for it. Every
// tenant favors its own algorithm/future/set, so the server's warm caches
// see a realistic multi-tenant hit pattern rather than one hot key.
type workload struct {
	rng        *rand.Rand
	choices    []string // endpoint per weight unit
	tenants    int
	numSources int

	// Observe stream state: ticks are strictly monotone, so a submitted
	// batch is always ahead of any epoch the server has committed, and the
	// stream self-terminates (falling back to freshness probes) when the
	// snapshot's refit window is exhausted.
	numEntities int
	obsTick     int64
	obsMaxTick  int64
}

func newWorkload(seed int64, weights map[string]int, tenants, numSources int, t0, horizon int64, numEntities int) *workload {
	var choices []string
	for _, ep := range []string{"select", "quality", "reload", "observe", "freshness"} {
		for i := 0; i < weights[ep]; i++ {
			choices = append(choices, ep)
		}
	}
	if tenants < 1 {
		tenants = 1
	}
	return &workload{
		rng:         rand.New(rand.NewSource(seed)),
		choices:     choices,
		tenants:     tenants,
		numSources:  numSources,
		numEntities: numEntities,
		obsTick:     t0 + 1,
		obsMaxTick:  horizon - 2,
	}
}

// observe emits one batch at the next monotone tick; past the refit window
// it degrades into a freshness probe (the stream has outrun the horizon).
func (w *workload) observe() request {
	if w.obsTick > w.obsMaxTick || w.numEntities == 0 {
		return request{endpoint: "freshness", method: http.MethodGet, path: "/v1/freshness"}
	}
	n := 1 + w.rng.Intn(3)
	evs := make([]string, n)
	for i := range evs {
		if w.rng.Intn(2) == 0 {
			evs[i] = fmt.Sprintf(`{"source":%d,"entity":%d,"kind":"appear","at":%d}`,
				w.rng.Intn(w.numSources), w.rng.Intn(w.numEntities), w.obsTick)
		} else {
			evs[i] = fmt.Sprintf(`{"source":%d,"entity":%d,"kind":"update","at":%d,"version":%d}`,
				w.rng.Intn(w.numSources), w.rng.Intn(w.numEntities), w.obsTick, 1+w.rng.Intn(3))
		}
	}
	w.obsTick++
	body := fmt.Sprintf(`{"observations":[%s]}`, strings.Join(evs, ","))
	return request{endpoint: "observe", method: http.MethodPost, path: "/v1/observe", body: body}
}

func (w *workload) next() request {
	ep := w.choices[w.rng.Intn(len(w.choices))]
	tenant := w.rng.Intn(w.tenants)
	switch ep {
	case "observe":
		return w.observe()
	case "select":
		algos := []string{"maxsub", "greedy", "lazygreedy"}
		body := fmt.Sprintf(`{"algorithm":%q,"future":%d}`,
			algos[tenant%len(algos)], 5+tenant%6)
		return request{endpoint: ep, method: http.MethodPost, path: "/v1/select", body: body}
	case "quality":
		n := 1 + w.rng.Intn(3)
		set := make([]string, n)
		for i := range set {
			set[i] = strconv.Itoa((tenant + i) % w.numSources)
		}
		body := fmt.Sprintf(`{"set":[%s],"future":%d}`, strings.Join(set, ","), 4+tenant%4)
		return request{endpoint: ep, method: http.MethodPost, path: "/v1/quality", body: body}
	case "freshness":
		return request{endpoint: ep, method: http.MethodGet, path: "/v1/freshness"}
	default:
		return request{endpoint: ep, method: http.MethodPost, path: "/v1/reload", body: "{}"}
	}
}

// outcome is one completed request, classified.
type outcome struct {
	endpoint string
	dur      time.Duration
	code     int
	failed   bool // transport error, not an HTTP status
}

// run executes the whole benchmark: probe the target (or spawn one), offer
// the paced load, and reduce the outcomes into the report.
func run(cfg benchConfig, stdout, stderr io.Writer) (*benchfmt.Report, error) {
	if cfg.RPS <= 0 || cfg.Concurrency < 1 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("rps, concurrency and duration must be positive")
	}
	weights, err := parseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}

	target := cfg.Target
	var shutdown func()
	if cfg.Spawn {
		if target != "" {
			return nil, fmt.Errorf("-spawn and -target are mutually exclusive")
		}
		if weights["observe"] > 0 && weights["reload"] > 0 {
			return nil, fmt.Errorf("observe and reload cannot both be weighted in spawn mode (streaming ingestion and snapshot hot reload are mutually exclusive)")
		}
		target, shutdown, err = spawnServer(cfg, weights["observe"] > 0, stderr)
		if err != nil {
			return nil, err
		}
		defer shutdown()
	}
	if target == "" {
		return nil, fmt.Errorf("need -target or -spawn")
	}
	target = strings.TrimRight(target, "/")
	client := &http.Client{Timeout: cfg.Timeout}

	// Run header: which build and snapshot is on the other side.
	health, err := getJSON(client, target+"/healthz")
	if err != nil {
		return nil, fmt.Errorf("target %s not healthy: %w", target, err)
	}
	var sources struct {
		T0          int64      `json:"t0"`
		Horizon     int64      `json:"horizon"`
		NumEntities int        `json:"num_entities"`
		Sources     []struct{} `json:"sources"`
	}
	raw, err := getBody(client, target+"/v1/sources")
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &sources); err != nil {
		return nil, err
	}
	numSources := len(sources.Sources)
	if numSources == 0 {
		return nil, fmt.Errorf("target serves no sources")
	}
	fmt.Fprintf(stderr, "freshbench: target %s version=%v dataset=%v generation=%v ingest=%v sources=%d\n",
		target, health["version"], health["dataset"], health["generation"], health["ingest"] != nil, numSources)
	fmt.Fprintf(stderr, "freshbench: offering %.0f rps for %s (mix %s, %d tenants, seed %d)\n",
		cfg.RPS, cfg.Duration, cfg.Mix, cfg.Tenants, cfg.Seed)

	before, err := scrape(client, target)
	if err != nil {
		return nil, err
	}

	outcomes := offer(cfg, client, target,
		newWorkload(cfg.Seed, weights, cfg.Tenants, numSources, sources.T0, sources.Horizon, sources.NumEntities))

	after, err := scrape(client, target)
	if err != nil {
		return nil, err
	}
	// A second healthz captures where the run left the server: the final
	// generation, and the ingest epoch/watermark the observe stream drove
	// it to.
	healthEnd, err := getJSON(client, target+"/healthz")
	if err != nil {
		return nil, err
	}

	rep := reduce(cfg, target, health, healthEnd, outcomes, before, after)
	writeBenchLines(stdout, rep)
	if cfg.Out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.Out, append(raw, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "freshbench: report written to %s\n", cfg.Out)
	}
	return rep, nil
}

// offer paces the generated stream at cfg.RPS across cfg.Concurrency
// workers and collects every outcome. Generation is single-threaded (the
// RNG sequence stays deterministic); only completion order varies.
func offer(cfg benchConfig, client *http.Client, target string, wl *workload) []outcome {
	interval := time.Duration(float64(time.Second) / cfg.RPS)
	reqs := make(chan request, cfg.Concurrency)
	results := make(chan outcome, 1024)

	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rq := range reqs {
				results <- issue(client, target, rq)
			}
		}()
	}

	done := make(chan struct{})
	var outcomes []outcome
	go func() {
		defer close(done)
		for o := range results {
			outcomes = append(outcomes, o)
		}
	}()

	deadline := time.Now().Add(cfg.Duration)
	tick := time.NewTicker(interval)
	for time.Now().Before(deadline) {
		select {
		case reqs <- wl.next():
		default:
			// All workers busy and the queue full: the offered load
			// exceeds what the target absorbs; drop the slot rather than
			// queue unboundedly (open-loop up to the buffer, then shed).
		}
		<-tick.C
	}
	tick.Stop()
	close(reqs)
	wg.Wait()
	close(results)
	<-done
	return outcomes
}

func issue(client *http.Client, target string, rq request) outcome {
	var body io.Reader
	if rq.body != "" {
		body = strings.NewReader(rq.body)
	}
	req, err := http.NewRequest(rq.method, target+rq.path, body)
	if err != nil {
		return outcome{endpoint: rq.endpoint, failed: true}
	}
	if rq.body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := client.Do(req)
	dur := time.Since(start)
	if err != nil {
		return outcome{endpoint: rq.endpoint, dur: dur, failed: true}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return outcome{endpoint: rq.endpoint, dur: dur, code: resp.StatusCode}
}

// scrape fetches the target's structured obs snapshot (/metrics?format=json).
func scrape(client *http.Client, target string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	raw, err := getBody(client, target+"/metrics?format=json")
	if err != nil {
		return snap, err
	}
	return snap, json.Unmarshal(raw, &snap)
}

// reduce folds the outcomes into the report: per-endpoint client-side
// quantiles and rejection rates, plus allocation pressure derived from the
// server's own runtime gauges across the run.
func reduce(cfg benchConfig, target string, health, healthEnd map[string]any,
	outcomes []outcome, before, after obs.Snapshot) *benchfmt.Report {
	byEp := map[string][]outcome{}
	for _, o := range outcomes {
		byEp[o.endpoint] = append(byEp[o.endpoint], o)
	}

	serving := &benchfmt.ServingSummary{
		Target: map[string]string{
			"url":            target,
			"version":        fmt.Sprint(health["version"]),
			"commit":         fmt.Sprint(health["commit"]),
			"dataset":        fmt.Sprint(health["dataset"]),
			"generation":     fmt.Sprint(health["generation"]),
			"generation_end": fmt.Sprint(healthEnd["generation"]),
		},
		Workload: map[string]string{
			"rps":         fmt.Sprintf("%g", cfg.RPS),
			"concurrency": strconv.Itoa(cfg.Concurrency),
			"duration":    cfg.Duration.String(),
			"mix":         cfg.Mix,
			"tenants":     strconv.Itoa(cfg.Tenants),
			"seed":        strconv.FormatInt(cfg.Seed, 10),
		},
		TotalRequests: int64(len(outcomes)),
	}
	// With ingestion enabled on the target, record how far the observe
	// stream advanced it: the committed epoch and watermark at run end.
	if ing, ok := healthEnd["ingest"].(map[string]any); ok {
		serving.Target["ingest_epoch"] = fmt.Sprint(ing["epoch"])
		serving.Target["ingest_watermark"] = fmt.Sprint(ing["watermark"])
	}

	rep := &benchfmt.Report{
		Context: map[string]string{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"pkg":    "freshsource/cmd/freshbench",
		},
		Serving: serving,
	}

	var eps []string
	for ep := range byEp {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		group := byEp[ep]
		var durs []time.Duration
		var errs, r429, r504 int
		for _, o := range group {
			durs = append(durs, o.dur)
			switch {
			case o.failed || o.code >= 500 && o.code != http.StatusGatewayTimeout:
				errs++
			case o.code == http.StatusTooManyRequests:
				r429++
			case o.code == http.StatusGatewayTimeout:
				r504++
			case o.code >= 400:
				errs++
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		n := len(group)
		st := benchfmt.EndpointStats{
			Endpoint:  ep,
			Requests:  int64(n),
			P50Ms:     ms(percentile(durs, 0.50)),
			P95Ms:     ms(percentile(durs, 0.95)),
			P99Ms:     ms(percentile(durs, 0.99)),
			ErrorRate: float64(errs) / float64(n),
			Rate429:   float64(r429) / float64(n),
			Rate504:   float64(r504) / float64(n),
		}
		serving.Endpoints = append(serving.Endpoints, st)
		for _, q := range []struct {
			name string
			v    time.Duration
		}{
			{"p50", percentile(durs, 0.50)},
			{"p95", percentile(durs, 0.95)},
			{"p99", percentile(durs, 0.99)},
		} {
			rep.Benchmarks = append(rep.Benchmarks, benchfmt.Benchmark{
				Name:       "Serve/" + ep + "/" + q.name,
				Iterations: int64(n),
				NsPerOp:    float64(q.v.Nanoseconds()),
			})
		}
	}

	// Allocation pressure: the server refreshes proc.mallocs on every
	// scrape, so the delta across the run divided by the requests served
	// approximates allocations per request (includes the server's
	// background work — a coarse but comparable load signature).
	if d := after.Gauges["proc.mallocs"] - before.Gauges["proc.mallocs"]; d > 0 && len(outcomes) > 0 {
		serving.AllocsPerRequest = d / float64(len(outcomes))
	}
	return rep
}

// writeBenchLines prints the synthetic benchmark lines benchjson parses:
// one per endpoint/quantile, iterations = samples, ns/op = the quantile.
func writeBenchLines(w io.Writer, rep *benchfmt.Report) {
	for k, v := range map[string]string{"goos": runtime.GOOS, "goarch": runtime.GOARCH} {
		fmt.Fprintf(w, "%s: %s\n", k, v)
	}
	for _, b := range rep.Benchmarks {
		fmt.Fprintf(w, "Benchmark%s \t %d \t %.0f ns/op\n", b.Name, b.Iterations, b.NsPerOp)
	}
	if rep.Serving != nil {
		fmt.Fprintf(w, "# total=%d allocs/req=%.1f\n",
			rep.Serving.TotalRequests, rep.Serving.AllocsPerRequest)
	}
}

// spawnServer starts an in-process freshd over a compact generated
// snapshot (written to a temp dir so /v1/reload works) on an ephemeral
// port. With observe weighted in the mix the spawned server runs in
// streaming-ingestion mode instead — 1s epochs, no snapshot reload (the
// two are mutually exclusive). The returned shutdown drains it.
func spawnServer(cfg benchConfig, observe bool, stderr io.Writer) (string, func(), error) {
	gen := dataset.DefaultBLConfig()
	gen.Locations, gen.Categories, gen.NumSources = 8, 5, 10
	gen.Horizon, gen.T0 = 220, 120
	gen.Scale = cfg.Scale
	gen.Seed = cfg.Seed
	var (
		d   *dataset.Dataset
		err error
	)
	switch cfg.Kind {
	case "bl":
		d, err = dataset.GenerateBL(gen)
	default:
		d, err = serve.LoadDataset("", cfg.Kind, cfg.Scale, cfg.Seed)
	}
	if err != nil {
		return "", nil, err
	}

	dir, err := os.MkdirTemp("", "freshbench-snap-")
	if err != nil {
		return "", nil, err
	}
	scfg := serve.Config{}
	if observe {
		scfg.IngestEpoch = time.Second
	} else {
		if err := snapio.Write(dir, d); err != nil {
			os.RemoveAll(dir)
			return "", nil, err
		}
		scfg.SnapshotDir = dir
	}
	srv, err := serve.New(d, scfg)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx, ln)
	}()
	fmt.Fprintf(stderr, "freshbench: spawned freshd (%s %s, build %s) on %s\n",
		cfg.Kind, d.Name, version.String(), ln.Addr())
	shutdown := func() {
		cancel()
		<-done
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// percentile is the nearest-rank quantile of a sorted duration slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func getBody(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes(), nil
}

func getJSON(client *http.Client, url string) (map[string]any, error) {
	raw, err := getBody(client, url)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	return m, json.Unmarshal(raw, &m)
}
