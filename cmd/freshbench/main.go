// Command freshbench drives a live freshd with a deterministic mixed
// workload and reports serving-side tail latency, rejection rates and
// allocation pressure — the serving analogue of the solver benchmarks.
//
// Usage:
//
//	freshbench -target http://localhost:8080 -rps 100 -duration 30s
//	freshbench -spawn -duration 5s -out BENCH_serving.json
//
// The workload is seeded: the same -seed, -mix, -tenants and -rps produce
// the same request sequence, so two runs against the same build are
// comparable. Results go to stdout as Go benchmark lines (one synthetic
// benchmark per endpoint/quantile, parseable by benchjson for the CI
// regression gate) and, with -out, as a BENCH_serving.json report carrying
// the full per-endpoint and per-tenant breakdown.
//
// -spawn starts an in-process freshd hosting -tenants named worlds (t0,
// the default, through t{N-1}, each over its own compact generated
// snapshot) on an ephemeral port — the self-contained smoke mode used by
// `make servebench`; -target points at any already-running daemon instead,
// and the bench drives whatever tenants its /healthz reports. -gate fronts
// -gate.backends spawned daemons with an in-process freshgate pool and
// benches through the routing tier.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"freshsource/internal/benchfmt"
	"freshsource/internal/dataset"
	"freshsource/internal/gate"
	"freshsource/internal/obs"
	"freshsource/internal/serve"
	"freshsource/internal/snapio"
	"freshsource/internal/version"
)

type benchConfig struct {
	Target       string
	Spawn        bool
	Gate         bool
	GateBackends int
	Kind         string
	Scale        float64
	RPS          float64
	Concurrency  int
	Duration     time.Duration
	Mix          string
	Tenants      int
	Seed         int64
	Timeout      time.Duration
	Out          string
}

func main() {
	var cfg benchConfig
	flag.StringVar(&cfg.Target, "target", "", "base URL of a running freshd (e.g. http://localhost:8080)")
	flag.BoolVar(&cfg.Spawn, "spawn", false, "spawn an in-process freshd over compact generated snapshots instead of -target")
	flag.BoolVar(&cfg.Gate, "gate", false, "front the spawned backends with an in-process freshgate pool and bench through it (requires -spawn)")
	flag.IntVar(&cfg.GateBackends, "gate.backends", 2, "spawned freshd backends behind -gate")
	flag.StringVar(&cfg.Kind, "kind", "bl", "spawned dataset kind: bl or gdelt")
	flag.Float64Var(&cfg.Scale, "scale", 0.4, "spawned dataset scale")
	flag.Float64Var(&cfg.RPS, "rps", 50, "request rate to offer")
	flag.IntVar(&cfg.Concurrency, "concurrency", 8, "client workers issuing requests")
	flag.DurationVar(&cfg.Duration, "duration", 5*time.Second, "load duration")
	flag.StringVar(&cfg.Mix, "mix", "select=6,quality=3,reload=1", "endpoint weights")
	flag.IntVar(&cfg.Tenants, "tenants", 4, "named tenant worlds the spawned server hosts (a -target daemon serves whatever its /healthz reports)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "workload seed")
	flag.DurationVar(&cfg.Timeout, "timeout", 10*time.Second, "per-request client timeout")
	flag.StringVar(&cfg.Out, "out", "", "write the full BENCH_serving.json report here")
	flag.Parse()

	if _, err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "freshbench:", err)
		os.Exit(1)
	}
}

// parseMix turns "select=6,quality=3,reload=1" into weights. Unknown
// endpoints are an error; at least one weight must be positive.
func parseMix(s string) (map[string]int, error) {
	known := map[string]bool{"select": true, "quality": true, "reload": true, "freshness": true, "observe": true}
	weights := map[string]int{}
	total := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, raw, ok := strings.Cut(part, "=")
		if !ok || !known[name] {
			return nil, fmt.Errorf("bad mix element %q (want endpoint=weight with endpoint in select/quality/reload/observe/freshness)", part)
		}
		w, err := strconv.Atoi(raw)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		weights[name] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has no positive weight", s)
	}
	return weights, nil
}

// request is one generated unit of work.
type request struct {
	endpoint string // select|quality|reload|freshness
	tenant   string // tenant name the request addresses ("" = anonymous)
	method   string
	path     string
	body     string
}

// workload deterministically generates the request stream: a seeded RNG
// draws an endpoint from the mix and a tenant for it — real named worlds
// now, addressed with ?tenant= on every request. Every tenant favors its
// own algorithm/future/set, so the server's warm caches see a realistic
// multi-tenant hit pattern rather than one hot key. Against a pre-tenant
// daemon (no tenants block in /healthz) names is [""] and the parameter is
// omitted.
type workload struct {
	rng        *rand.Rand
	choices    []string // endpoint per weight unit
	names      []string // tenant names, sorted; "" means anonymous
	defName    string   // the target's default tenant ("" when anonymous)
	numSources int

	// Observe stream state: ticks are strictly monotone, so a submitted
	// batch is always ahead of any epoch the server has committed, and the
	// stream self-terminates (falling back to freshness probes) when the
	// snapshot's refit window is exhausted.
	numEntities int
	obsTick     int64
	obsMaxTick  int64
}

func newWorkload(seed int64, weights map[string]int, names []string, defName string, numSources int, t0, horizon int64, numEntities int) *workload {
	var choices []string
	for _, ep := range []string{"select", "quality", "reload", "observe", "freshness"} {
		for i := 0; i < weights[ep]; i++ {
			choices = append(choices, ep)
		}
	}
	if len(names) == 0 {
		names = []string{""}
	}
	return &workload{
		rng:         rand.New(rand.NewSource(seed)),
		choices:     choices,
		names:       names,
		defName:     defName,
		numSources:  numSources,
		numEntities: numEntities,
		obsTick:     t0 + 1,
		obsMaxTick:  horizon - 2,
	}
}

// tenantParam renders the ?tenant= query suffix for a named tenant; the
// anonymous world gets no parameter.
func tenantParam(name string) string {
	if name == "" {
		return ""
	}
	return "?tenant=" + url.QueryEscape(name)
}

// observe emits one batch at the next monotone tick; past the refit window
// it degrades into a freshness probe (the stream has outrun the horizon).
// The stream stays on the default tenant: its shapes are sized from the
// default world's entity count, and one monotone stream per run keeps the
// committed watermark meaningful.
func (w *workload) observe() request {
	if w.obsTick > w.obsMaxTick || w.numEntities == 0 {
		return request{endpoint: "freshness", tenant: w.defName, method: http.MethodGet, path: "/v1/freshness"}
	}
	n := 1 + w.rng.Intn(3)
	evs := make([]string, n)
	for i := range evs {
		if w.rng.Intn(2) == 0 {
			evs[i] = fmt.Sprintf(`{"source":%d,"entity":%d,"kind":"appear","at":%d}`,
				w.rng.Intn(w.numSources), w.rng.Intn(w.numEntities), w.obsTick)
		} else {
			evs[i] = fmt.Sprintf(`{"source":%d,"entity":%d,"kind":"update","at":%d,"version":%d}`,
				w.rng.Intn(w.numSources), w.rng.Intn(w.numEntities), w.obsTick, 1+w.rng.Intn(3))
		}
	}
	w.obsTick++
	body := fmt.Sprintf(`{"observations":[%s]}`, strings.Join(evs, ","))
	return request{endpoint: "observe", tenant: w.defName, method: http.MethodPost, path: "/v1/observe", body: body}
}

func (w *workload) next() request {
	ep := w.choices[w.rng.Intn(len(w.choices))]
	idx := w.rng.Intn(len(w.names))
	name := w.names[idx]
	switch ep {
	case "observe":
		return w.observe()
	case "select":
		algos := []string{"maxsub", "greedy", "lazygreedy"}
		body := fmt.Sprintf(`{"algorithm":%q,"future":%d}`,
			algos[idx%len(algos)], 5+idx%6)
		return request{endpoint: ep, tenant: name, method: http.MethodPost, path: "/v1/select" + tenantParam(name), body: body}
	case "quality":
		n := 1 + w.rng.Intn(3)
		set := make([]string, n)
		for i := range set {
			set[i] = strconv.Itoa((idx + i) % w.numSources)
		}
		body := fmt.Sprintf(`{"set":[%s],"future":%d}`, strings.Join(set, ","), 4+idx%4)
		return request{endpoint: ep, tenant: name, method: http.MethodPost, path: "/v1/quality" + tenantParam(name), body: body}
	case "freshness":
		return request{endpoint: ep, tenant: name, method: http.MethodGet, path: "/v1/freshness" + tenantParam(name)}
	default:
		return request{endpoint: ep, tenant: name, method: http.MethodPost, path: "/v1/reload" + tenantParam(name), body: "{}"}
	}
}

// outcome is one completed request, classified.
type outcome struct {
	endpoint string
	tenant   string
	dur      time.Duration
	code     int
	failed   bool // transport error, not an HTTP status
}

// run executes the whole benchmark: probe the target (or spawn one), offer
// the paced load, and reduce the outcomes into the report.
func run(cfg benchConfig, stdout, stderr io.Writer) (*benchfmt.Report, error) {
	if cfg.RPS <= 0 || cfg.Concurrency < 1 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("rps, concurrency and duration must be positive")
	}
	weights, err := parseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}

	target := cfg.Target
	var shutdown func()
	if cfg.Gate && !cfg.Spawn {
		return nil, fmt.Errorf("-gate requires -spawn (it fronts spawned backends)")
	}
	if cfg.Spawn {
		if target != "" {
			return nil, fmt.Errorf("-spawn and -target are mutually exclusive")
		}
		if weights["observe"] > 0 && weights["reload"] > 0 {
			return nil, fmt.Errorf("observe and reload cannot both be weighted in spawn mode (streaming ingestion and snapshot hot reload are mutually exclusive)")
		}
		spawn := spawnServer
		if cfg.Gate {
			spawn = spawnGate
		}
		target, shutdown, err = spawn(cfg, weights["observe"] > 0, stderr)
		if err != nil {
			return nil, err
		}
		defer shutdown()
	}
	if target == "" {
		return nil, fmt.Errorf("need -target or -spawn")
	}
	target = strings.TrimRight(target, "/")
	client := &http.Client{Timeout: cfg.Timeout}

	// Run header: which build and snapshot is on the other side, and which
	// named worlds it hosts (the workload addresses them with ?tenant=).
	health, err := getJSON(client, target+"/healthz")
	if err != nil {
		return nil, fmt.Errorf("target %s not healthy: %w", target, err)
	}
	names, defName := tenantNames(health)
	var sources struct {
		T0          int64      `json:"t0"`
		Horizon     int64      `json:"horizon"`
		NumEntities int        `json:"num_entities"`
		Sources     []struct{} `json:"sources"`
	}
	raw, err := getBody(client, target+"/v1/sources")
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &sources); err != nil {
		return nil, err
	}
	numSources := len(sources.Sources)
	if numSources == 0 {
		return nil, fmt.Errorf("target serves no sources")
	}
	fmt.Fprintf(stderr, "freshbench: target %s version=%v dataset=%v generation=%v ingest=%v sources=%d\n",
		target, health["version"], health["dataset"], health["generation"], health["ingest"] != nil, numSources)
	fmt.Fprintf(stderr, "freshbench: offering %.0f rps for %s (mix %s, tenants [%s], seed %d)\n",
		cfg.RPS, cfg.Duration, cfg.Mix, strings.Join(names, " "), cfg.Seed)

	before, err := scrape(client, target)
	if err != nil {
		return nil, err
	}

	outcomes := offer(cfg, client, target,
		newWorkload(cfg.Seed, weights, names, defName, numSources, sources.T0, sources.Horizon, sources.NumEntities))

	after, err := scrape(client, target)
	if err != nil {
		return nil, err
	}
	// A second healthz captures where the run left the server: the final
	// generation, and the ingest epoch/watermark the observe stream drove
	// it to.
	healthEnd, err := getJSON(client, target+"/healthz")
	if err != nil {
		return nil, err
	}

	rep := reduce(cfg, target, health, healthEnd, outcomes, before, after)
	writeBenchLines(stdout, rep)
	if cfg.Out != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.Out, append(raw, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "freshbench: report written to %s\n", cfg.Out)
	}
	return rep, nil
}

// offer paces the generated stream at cfg.RPS across cfg.Concurrency
// workers and collects every outcome. Generation is single-threaded (the
// RNG sequence stays deterministic); only completion order varies.
func offer(cfg benchConfig, client *http.Client, target string, wl *workload) []outcome {
	interval := time.Duration(float64(time.Second) / cfg.RPS)
	reqs := make(chan request, cfg.Concurrency)
	results := make(chan outcome, 1024)

	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rq := range reqs {
				results <- issue(client, target, rq)
			}
		}()
	}

	done := make(chan struct{})
	var outcomes []outcome
	go func() {
		defer close(done)
		for o := range results {
			outcomes = append(outcomes, o)
		}
	}()

	deadline := time.Now().Add(cfg.Duration)
	tick := time.NewTicker(interval)
	for time.Now().Before(deadline) {
		select {
		case reqs <- wl.next():
		default:
			// All workers busy and the queue full: the offered load
			// exceeds what the target absorbs; drop the slot rather than
			// queue unboundedly (open-loop up to the buffer, then shed).
		}
		<-tick.C
	}
	tick.Stop()
	close(reqs)
	wg.Wait()
	close(results)
	<-done
	return outcomes
}

func issue(client *http.Client, target string, rq request) outcome {
	var body io.Reader
	if rq.body != "" {
		body = strings.NewReader(rq.body)
	}
	req, err := http.NewRequest(rq.method, target+rq.path, body)
	if err != nil {
		return outcome{endpoint: rq.endpoint, tenant: rq.tenant, failed: true}
	}
	if rq.body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := client.Do(req)
	dur := time.Since(start)
	if err != nil {
		return outcome{endpoint: rq.endpoint, tenant: rq.tenant, dur: dur, failed: true}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return outcome{endpoint: rq.endpoint, tenant: rq.tenant, dur: dur, code: resp.StatusCode}
}

// tenantNames discovers the named worlds behind the target from its
// /healthz body: a multi-tenant freshd lists them in a "tenants" block, a
// freshgate reports each backend's probed tenant set under "backends". A
// pre-tenant daemon reports neither — one anonymous world, addressed
// without a tenant parameter.
func tenantNames(health map[string]any) (names []string, def string) {
	block, _ := health["tenants"].(map[string]any)
	if block != nil {
		def, _ = health["default_tenant"].(string)
	} else if backends, ok := health["backends"].(map[string]any); ok {
		for _, v := range backends {
			entry, ok := v.(map[string]any)
			if !ok {
				continue
			}
			if tn, ok := entry["tenants"].(map[string]any); ok {
				block = tn
				def, _ = entry["default_tenant"].(string)
				break
			}
		}
	}
	if len(block) == 0 {
		return []string{""}, ""
	}
	for n := range block {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, def
}

// scrape fetches the target's structured obs snapshot (/metrics?format=json).
func scrape(client *http.Client, target string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	raw, err := getBody(client, target+"/metrics?format=json")
	if err != nil {
		return snap, err
	}
	return snap, json.Unmarshal(raw, &snap)
}

// reduce folds the outcomes into the report: per-endpoint client-side
// quantiles and rejection rates, plus allocation pressure derived from the
// server's own runtime gauges across the run.
func reduce(cfg benchConfig, target string, health, healthEnd map[string]any,
	outcomes []outcome, before, after obs.Snapshot) *benchfmt.Report {
	byEp := map[string][]outcome{}
	byTenant := map[string][]outcome{}
	for _, o := range outcomes {
		byEp[o.endpoint] = append(byEp[o.endpoint], o)
		if o.tenant != "" {
			byTenant[o.tenant] = append(byTenant[o.tenant], o)
		}
	}

	serving := &benchfmt.ServingSummary{
		Target: map[string]string{
			"url":            target,
			"version":        fmt.Sprint(health["version"]),
			"commit":         fmt.Sprint(health["commit"]),
			"dataset":        fmt.Sprint(health["dataset"]),
			"generation":     fmt.Sprint(health["generation"]),
			"generation_end": fmt.Sprint(healthEnd["generation"]),
		},
		Workload: map[string]string{
			"rps":         fmt.Sprintf("%g", cfg.RPS),
			"concurrency": strconv.Itoa(cfg.Concurrency),
			"duration":    cfg.Duration.String(),
			"mix":         cfg.Mix,
			"tenants":     strconv.Itoa(cfg.Tenants),
			"seed":        strconv.FormatInt(cfg.Seed, 10),
		},
		TotalRequests: int64(len(outcomes)),
	}
	// With ingestion enabled on the target, record how far the observe
	// stream advanced it: the committed epoch and watermark at run end.
	if ing, ok := healthEnd["ingest"].(map[string]any); ok {
		serving.Target["ingest_epoch"] = fmt.Sprint(ing["epoch"])
		serving.Target["ingest_watermark"] = fmt.Sprint(ing["watermark"])
	}
	if cfg.Gate {
		serving.Target["mode"] = "gate"
		serving.Workload["gate_backends"] = strconv.Itoa(cfg.GateBackends)
	}

	rep := &benchfmt.Report{
		Context: map[string]string{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"pkg":    "freshsource/cmd/freshbench",
		},
		Serving: serving,
	}

	var eps []string
	for ep := range byEp {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		group := byEp[ep]
		var durs []time.Duration
		var errs, r429, r504 int
		for _, o := range group {
			durs = append(durs, o.dur)
			switch {
			case o.failed || o.code >= 500 && o.code != http.StatusGatewayTimeout:
				errs++
			case o.code == http.StatusTooManyRequests:
				r429++
			case o.code == http.StatusGatewayTimeout:
				r504++
			case o.code >= 400:
				errs++
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		n := len(group)
		st := benchfmt.EndpointStats{
			Endpoint:  ep,
			Requests:  int64(n),
			P50Ms:     ms(percentile(durs, 0.50)),
			P95Ms:     ms(percentile(durs, 0.95)),
			P99Ms:     ms(percentile(durs, 0.99)),
			ErrorRate: float64(errs) / float64(n),
			Rate429:   float64(r429) / float64(n),
			Rate504:   float64(r504) / float64(n),
		}
		serving.Endpoints = append(serving.Endpoints, st)
		for _, q := range []struct {
			name string
			v    time.Duration
		}{
			{"p50", percentile(durs, 0.50)},
			{"p95", percentile(durs, 0.95)},
			{"p99", percentile(durs, 0.99)},
		} {
			rep.Benchmarks = append(rep.Benchmarks, benchfmt.Benchmark{
				Name:       "Serve/" + ep + "/" + q.name,
				Iterations: int64(n),
				NsPerOp:    float64(q.v.Nanoseconds()),
			})
		}
	}

	// Per-tenant slices of the same outcomes: the multi-tenant signature of
	// the run. A slow world shows up here even when the per-endpoint
	// aggregates (which mix all tenants) look healthy.
	var tnames []string
	for tn := range byTenant {
		tnames = append(tnames, tn)
	}
	sort.Strings(tnames)
	for _, tn := range tnames {
		group := byTenant[tn]
		durs := make([]time.Duration, 0, len(group))
		errs := 0
		for _, o := range group {
			durs = append(durs, o.dur)
			if o.failed || o.code >= 400 && o.code != http.StatusTooManyRequests && o.code != http.StatusGatewayTimeout {
				errs++
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		serving.Tenants = append(serving.Tenants, benchfmt.TenantStats{
			Tenant:    tn,
			Requests:  int64(len(group)),
			P50Ms:     ms(percentile(durs, 0.50)),
			P95Ms:     ms(percentile(durs, 0.95)),
			P99Ms:     ms(percentile(durs, 0.99)),
			ErrorRate: float64(errs) / float64(len(group)),
		})
	}

	// Allocation pressure: the server refreshes proc.mallocs on every
	// scrape, so the delta across the run divided by the requests served
	// approximates allocations per request (includes the server's
	// background work — a coarse but comparable load signature).
	if d := after.Gauges["proc.mallocs"] - before.Gauges["proc.mallocs"]; d > 0 && len(outcomes) > 0 {
		serving.AllocsPerRequest = d / float64(len(outcomes))
	}
	return rep
}

// writeBenchLines prints the synthetic benchmark lines benchjson parses:
// one per endpoint/quantile, iterations = samples, ns/op = the quantile.
func writeBenchLines(w io.Writer, rep *benchfmt.Report) {
	for k, v := range map[string]string{"goos": runtime.GOOS, "goarch": runtime.GOARCH} {
		fmt.Fprintf(w, "%s: %s\n", k, v)
	}
	for _, b := range rep.Benchmarks {
		fmt.Fprintf(w, "Benchmark%s \t %d \t %.0f ns/op\n", b.Name, b.Iterations, b.NsPerOp)
	}
	if rep.Serving != nil {
		for _, tn := range rep.Serving.Tenants {
			fmt.Fprintf(w, "# tenant %s n=%d p95=%.1fms err=%.3f\n",
				tn.Tenant, tn.Requests, tn.P95Ms, tn.ErrorRate)
		}
		fmt.Fprintf(w, "# total=%d allocs/req=%.1f\n",
			rep.Serving.TotalRequests, rep.Serving.AllocsPerRequest)
	}
}

// benchDataset generates one compact world for a spawned tenant; distinct
// seeds give distinct worlds with the same shape.
func benchDataset(cfg benchConfig, seed int64) (*dataset.Dataset, error) {
	if cfg.Kind != "bl" {
		return serve.LoadDataset("", cfg.Kind, cfg.Scale, seed)
	}
	gen := dataset.DefaultBLConfig()
	gen.Locations, gen.Categories, gen.NumSources = 8, 5, 10
	gen.Horizon, gen.T0 = 220, 120
	gen.Scale = cfg.Scale
	gen.Seed = seed
	return dataset.GenerateBL(gen)
}

// spawnServer starts an in-process multi-tenant freshd on an ephemeral
// port: tenant t0 (the default) through t{N-1}, each over its own compact
// generated snapshot seeded off -seed so the worlds differ. Without observe
// in the mix every tenant's snapshot is written to a temp dir so
// /v1/reload works per tenant; with observe the server runs in
// streaming-ingestion mode instead — 1s epochs, no snapshot reload (the
// two are mutually exclusive). The returned shutdown drains it.
func spawnServer(cfg benchConfig, observe bool, stderr io.Writer) (string, func(), error) {
	n := cfg.Tenants
	if n < 1 {
		n = 1
	}
	dir, err := os.MkdirTemp("", "freshbench-snap-")
	if err != nil {
		return "", nil, err
	}
	fail := func(err error) (string, func(), error) {
		os.RemoveAll(dir)
		return "", nil, err
	}

	var def *dataset.Dataset
	var specs []serve.TenantSpec
	for i := 0; i < n; i++ {
		d, err := benchDataset(cfg, cfg.Seed+int64(i)*101)
		if err != nil {
			return fail(err)
		}
		name := fmt.Sprintf("t%d", i)
		snap := ""
		if !observe {
			snap = filepath.Join(dir, name)
			if err := snapio.Write(snap, d); err != nil {
				return fail(err)
			}
		}
		if i == 0 {
			def = d
		} else {
			specs = append(specs, serve.TenantSpec{Name: name, Dataset: d, SnapshotDir: snap})
		}
	}
	scfg := serve.Config{DefaultTenant: "t0", Tenants: specs}
	if observe {
		scfg.IngestEpoch = time.Second
	} else {
		scfg.SnapshotDir = filepath.Join(dir, "t0")
	}
	srv, err := serve.New(def, scfg)
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return fail(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ctx, ln)
	}()
	fmt.Fprintf(stderr, "freshbench: spawned freshd (%s %s, %d tenants, build %s) on %s\n",
		cfg.Kind, def.Name, n, version.String(), ln.Addr())
	shutdown := func() {
		cancel()
		<-done
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// spawnGate spawns cfg.GateBackends identical multi-tenant freshd backends
// (same seeds, so every backend hosts the same worlds — a replicated shard
// universe) and fronts them with an in-process freshgate pool on its own
// ephemeral port. The bench then drives the gate: requests hash by tenant
// across the pool, so each tenant's traffic pins to its home backend and
// the report measures the routing tier end to end.
func spawnGate(cfg benchConfig, observe bool, stderr io.Writer) (string, func(), error) {
	n := cfg.GateBackends
	if n < 2 {
		n = 2
	}
	var cleanups []func()
	fail := func(err error) (string, func(), error) {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
		return "", nil, err
	}
	backends := make([]*gate.Backend, n)
	for i := 0; i < n; i++ {
		base, sd, err := spawnServer(cfg, observe, stderr)
		if err != nil {
			return fail(err)
		}
		cleanups = append(cleanups, sd)
		if backends[i], err = gate.NewBackend(base); err != nil {
			return fail(err)
		}
	}
	pool, err := gate.NewPool(backends, gate.Config{DefaultTenant: "t0"})
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go pool.Start(ctx)
	gsrv := &http.Server{Handler: pool.Handler()}
	go gsrv.Serve(ln)
	cleanups = append(cleanups, func() {
		gsrv.Close()
		cancel()
	})
	target := "http://" + ln.Addr().String()
	fmt.Fprintf(stderr, "freshbench: freshgate over %d backends on %s\n", n, ln.Addr())

	// Wait for the first probe sweep: the bench discovers tenant names from
	// the gate's /healthz, which carries them only after each backend has
	// been probed successfully.
	client := &http.Client{Timeout: time.Second}
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if h, err := getJSON(client, target+"/healthz"); err == nil {
			if names, _ := tenantNames(h); names[0] != "" {
				break
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	shutdown := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	return target, shutdown, nil
}

// percentile is the nearest-rank quantile of a sorted duration slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func getBody(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes(), nil
}

func getJSON(client *http.Client, url string) (map[string]any, error) {
	raw, err := getBody(client, url)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	return m, json.Unmarshal(raw, &m)
}
