// Command freshselect runs time-aware source selection end to end on a
// synthetic dataset: generate → train → select → report, for any of the
// paper's algorithms and gain functions, with optional frequency variants
// (Definition 4) and budget constraints.
//
// Usage:
//
//	freshselect -kind bl -alg maxsub -gain linear -metric coverage
//	freshselect -kind bl -alg grasp -kappa 5 -rounds 20 -gain step -metric accuracy
//	freshselect -kind gdelt -alg greedy -gain data
//	freshselect -kind bl -alg maxsub -divisors 2,3,4,5,6,7   # varying frequency
//	freshselect -kind bl -alg maxsub -budget 0.3             # budget βc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"freshsource/internal/core"
	"freshsource/internal/modelcache"
	"freshsource/internal/obs"
	"freshsource/internal/serve"
)

func main() {
	var (
		kind     = flag.String("kind", "bl", "dataset kind: bl or gdelt")
		alg      = flag.String("alg", "maxsub", "algorithm: greedy, maxsub or grasp")
		gainName = flag.String("gain", "linear", "gain function: linear, quad, step or data")
		metric   = flag.String("metric", "coverage", "quality metric: coverage, local-freshness, global-freshness or accuracy")
		divisors = flag.String("divisors", "", "comma-separated frequency divisors for varying-frequency selection")
		budget   = flag.Float64("budget", 0, "budget on rescaled cost in (0,1]; 0 = unconstrained")
		kappa    = flag.Int("kappa", 5, "GRASP κ")
		rounds   = flag.Int("rounds", 20, "GRASP r")
		workers  = flag.Int("workers", 0, "candidate-sweep workers: 0 = sequential, -1 = all cores")
		cache    = flag.Bool("cache", false, "memoize oracle evaluations by candidate set")
		lazy     = flag.Bool("lazy", false, "use lazy (CELF) greedy when -alg greedy and the gain is submodular")
		spec     = flag.Int("celf.spec", 0, "CELF speculative batch stride per worker: 0 = default (on when -workers > 1), negative = purely lazy")
		future   = flag.Int("future", 10, "number of future time points of interest")
		fitWork  = flag.Int("fit.workers", 0, "model-fitting pool size (0 = GOMAXPROCS, 1 = sequential)")
		mcDir    = flag.String("modelcache", "", "persistent model cache directory; a verified entry skips training (empty = disabled)")
		scale    = flag.Float64("scale", 0.5, "dataset scale")
		seed     = flag.Int64("seed", 1, "seed")
		load     = flag.String("load", "", "load a persisted dataset directory instead of generating")
		obsF     obs.Flags
	)
	obsF.Register(flag.CommandLine)
	flag.Parse()
	if addr, err := obsF.Activate(); err != nil {
		fatal(err)
	} else if addr != "" {
		fmt.Fprintf(os.Stderr, "freshselect: pprof/expvar on http://%s/debug/pprof/\n", addr)
	}

	d, err := serve.LoadDataset(*load, *kind, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset %s: %d sources, %d entities, t0=%d\n", d.Name, len(d.Sources), d.World.NumEntities(), d.T0)

	var divs []int
	if *divisors != "" {
		for _, part := range strings.Split(*divisors, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad divisor %q: %w", part, err))
			}
			divs = append(divs, v)
		}
	}

	ticks := serve.SpreadTicks(d.T0, d.Horizon(), *future)
	opt := core.TrainOptions{
		MaxT:         ticks[len(ticks)-1],
		FreqDivisors: divs,
		FitWorkers:   *fitWork,
	}
	var tr *core.Trained
	if *mcDir != "" {
		mc, err := modelcache.New(*mcDir)
		if err != nil {
			fatal(err)
		}
		var status modelcache.Status
		tr, status, err = mc.LoadOrFit(context.Background(), d, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("model cache %s: %s\n", mc.Dir(), status)
	} else {
		var err error
		tr, err = core.Train(d.World, d.Sources, d.T0, opt)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("trained: %d candidates\n", tr.NumCandidates())

	g, err := serve.MakeGain(*gainName, *metric, d.World.NumEntities())
	if err != nil {
		fatal(err)
	}
	prob, err := core.NewProblem(tr, ticks, g, core.ProblemOptions{Budget: *budget})
	if err != nil {
		fatal(err)
	}
	sel, err := prob.Solve(core.Algorithm(*alg), core.SolveOptions{
		Kappa: *kappa, Rounds: *rounds, Seed: *seed,
		Workers: *workers, Cache: *cache, Lazy: *lazy, SpecStride: *spec,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nalgorithm %s selected %d candidates in %s (%d oracle calls)\n",
		sel.Algorithm, len(sel.Set), sel.Duration, sel.OracleCalls)
	fmt.Printf("profit %.4f | gain %.4f | avg coverage %.4f | avg accuracy %.4f\n",
		sel.Profit, sel.Gain, sel.AvgCoverage, sel.AvgAccuracy)
	fmt.Println("\nselected:")
	for i := range sel.Set {
		fmt.Printf("  %-16s divisor %d\n", sel.Names[i], sel.Divisors[i])
	}
	if obs.Enabled() {
		fmt.Println()
	}
	if err := obsF.Finish(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freshselect:", err)
	os.Exit(1)
}
