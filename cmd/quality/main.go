// Command quality prints ground-truth quality timelines — coverage, local
// and global freshness, accuracy — for a chosen set of sources of a
// synthetic or persisted dataset. It is the inspection companion to
// freshselect: run a selection, then watch how the selected union actually
// evolves.
//
// Usage:
//
//	quality -kind bl -sources bl-00,bl-03 -step 20
//	quality -load data/ -sources all -location 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"freshsource/internal/dataset"
	"freshsource/internal/metrics"
	"freshsource/internal/snapio"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

func main() {
	var (
		kind     = flag.String("kind", "bl", "dataset kind: bl or gdelt")
		load     = flag.String("load", "", "load a persisted dataset directory instead of generating")
		scale    = flag.Float64("scale", 0.5, "dataset scale when generating")
		seed     = flag.Int64("seed", 1, "seed when generating")
		srcList  = flag.String("sources", "all", "comma-separated source names, or 'all'")
		location = flag.Int("location", -1, "restrict to one location (-1 = whole domain)")
		step     = flag.Int("step", 20, "tick stride of the printed timeline")
	)
	flag.Parse()

	var d *dataset.Dataset
	var err error
	if *load != "" {
		d, err = snapio.Read(*load)
	} else {
		switch *kind {
		case "bl":
			cfg := dataset.DefaultBLConfig()
			cfg.Scale, cfg.Seed = *scale, *seed
			d, err = dataset.GenerateBL(cfg)
		case "gdelt":
			cfg := dataset.DefaultGDELTConfig()
			cfg.Scale, cfg.Seed = *scale, *seed
			d, err = dataset.GenerateGDELT(cfg)
		default:
			err = fmt.Errorf("unknown kind %q", *kind)
		}
	}
	if err != nil {
		fatal(err)
	}

	var srcs []*source.Source
	if *srcList == "all" {
		srcs = d.Sources
	} else {
		for _, name := range strings.Split(*srcList, ",") {
			s, ok := d.SourceByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown source %q", name))
			}
			srcs = append(srcs, s)
		}
	}

	var pts []world.DomainPoint
	if *location >= 0 {
		for _, p := range d.World.Points() {
			if p.Location == *location {
				pts = append(pts, p)
			}
		}
		if len(pts) == 0 {
			fatal(fmt.Errorf("location %d has no domain points", *location))
		}
	}

	var ticks []timeline.Tick
	for t := timeline.Tick(0); t < d.Horizon(); t += timeline.Tick(*step) {
		ticks = append(ticks, t)
	}
	qs := metrics.QualitySeries(d.World, srcs, ticks, pts)

	fmt.Printf("union of %d sources", len(srcs))
	if *location >= 0 {
		fmt.Printf(", location %d", *location)
	}
	fmt.Printf(" (training cut t0=%d)\n\n", d.T0)
	fmt.Printf("%6s %10s %10s %10s %10s %8s %8s %8s\n",
		"tick", "coverage", "loc-frsh", "glob-frsh", "accuracy", "up", "out", "ndel")
	for i, t := range ticks {
		q := qs[i]
		marker := " "
		if t == d.T0 {
			marker = "*"
		}
		fmt.Printf("%5d%s %10.4f %10.4f %10.4f %10.4f %8d %8d %8d\n",
			t, marker, q.Coverage, q.LocalFreshness, q.GlobalFreshness, q.Accuracy, q.Up, q.Out, q.NDel)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quality:", err)
	os.Exit(1)
}
