// Command experiments regenerates the paper's tables and figures on the
// synthetic BL/GDELT datasets.
//
// Usage:
//
//	experiments -exp all                 # everything, full size
//	experiments -exp tab1-2,fig11       # specific experiments
//	experiments -exp fig13a -quick      # scaled-down configuration
//	experiments -list                   # show experiment ids
//	experiments -exp all -out results/  # also write one text file per id
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"freshsource/internal/experiments"
	"freshsource/internal/obs"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quick   = flag.Bool("quick", false, "use the scaled-down configuration")
		outDir  = flag.String("out", "", "directory to write per-experiment text files (optional)")
		mults   = flag.String("multipliers", "", "override BL+ micro-source multipliers, e.g. 0,1,2,5,10")
		sizes   = flag.String("sizes", "", "override Figure 13b domain sizes, e.g. 1,50,100,200")
		grasps  = flag.String("grasp", "", "override GRASP configs, e.g. 1,1;2,10;5,20")
		workers = flag.Int("workers", 0, "candidate-sweep workers per selection run: 0 = sequential, -1 = all cores")
		cache   = flag.Bool("cache", false, "memoize oracle evaluations by candidate set")
		fitWork = flag.Int("fit.workers", 0, "model-fitting pool size (0 = GOMAXPROCS, 1 = sequential)")
		mcDir   = flag.String("modelcache", "", "persistent model cache directory; repeated runs skip refitting (empty = disabled)")
		obsF    obs.Flags
	)
	obsF.Register(flag.CommandLine)
	flag.Parse()
	if addr, err := obsF.Activate(); err != nil {
		fatal(err)
	} else if addr != "" {
		fmt.Fprintf(os.Stderr, "experiments: pprof/expvar on http://%s/debug/pprof/\n", addr)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Workers = *workers
	cfg.CacheOracle = *cache
	cfg.FitWorkers = *fitWork
	cfg.ModelCacheDir = *mcDir
	if *mults != "" {
		cfg.ScalabilityMultipliers = nil
		for _, part := range strings.Split(*mults, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad multiplier %q: %w", part, err))
			}
			cfg.ScalabilityMultipliers = append(cfg.ScalabilityMultipliers, v)
		}
	}
	if *sizes != "" {
		cfg.DomainSizes = nil
		for _, part := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad size %q: %w", part, err))
			}
			cfg.DomainSizes = append(cfg.DomainSizes, v)
		}
	}
	if *grasps != "" {
		cfg.GraspConfigs = nil
		for _, pair := range strings.Split(*grasps, ";") {
			var k, r int
			if _, err := fmt.Sscanf(strings.TrimSpace(pair), "%d,%d", &k, &r); err != nil {
				fatal(fmt.Errorf("bad grasp config %q: %w", pair, err))
			}
			cfg.GraspConfigs = append(cfg.GraspConfigs, [2]int{k, r})
		}
	}
	env := experiments.NewEnv(cfg)

	var ids []string
	if *expFlag == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	for _, id := range ids {
		// Reset telemetry per experiment so each artifact's snapshot
		// describes only the run that produced it.
		obs.Active().Reset()
		start := time.Now()
		tables, err := experiments.Run(id, env)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		snap := obs.Active().Snapshot()
		if tt := experiments.TelemetryTable(snap); tt != nil {
			tables = append(tables, tt)
		}
		var b strings.Builder
		for _, t := range tables {
			b.WriteString(t.String())
			b.WriteByte('\n')
		}
		fmt.Printf("# %s (%.1fs)\n%s", id, time.Since(start).Seconds(), b.String())
		if *outDir != "" {
			path := filepath.Join(*outDir, id+".txt")
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				fatal(err)
			}
			if obs.Enabled() {
				jf, err := os.Create(filepath.Join(*outDir, id+".obs.json"))
				if err != nil {
					fatal(err)
				}
				if err := snap.WriteJSON(jf); err != nil {
					fatal(err)
				}
				jf.Close()
			}
		}
	}
	if err := obsF.Finish(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
