// Command benchjson converts `go test -bench` output on stdin into a JSON
// record, computing the speedup of each accelerated variant against its
// family's "seq" baseline (sub-benchmark naming Family/variant). The root
// Makefile's bench target pipes the selection benchmarks through it to
// produce BENCH_selection.json.
//
// Usage:
//
//	go test -bench . ./internal/selection | benchjson -out BENCH_selection.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Speedup compares one variant against its family's seq baseline.
type Speedup struct {
	Family  string  `json:"family"`
	Variant string  `json:"variant"`
	SeqNs   float64 `json:"seq_ns_per_op"`
	NsPerOp float64 `json:"ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// Report is the emitted document.
type Report struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Speedups   []Speedup         `json:"speedups"`
}

var lineRe = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	rep := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Context[key] = v
			}
		}
		m := lineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			v, _ := strconv.ParseInt(m[4], 10, 64)
			b.BytesPerOp = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			b.AllocsPerOp = &v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	// Family baselines: Family/seq (or Family/scratch for the estimator
	// micro-benchmarks, which name the from-scratch path that way).
	base := map[string]float64{}
	for _, b := range rep.Benchmarks {
		fam, variant, ok := strings.Cut(b.Name, "/")
		if !ok {
			continue
		}
		if variant == "seq" || variant == "scratch" {
			base[fam] = b.NsPerOp
		}
	}
	for _, b := range rep.Benchmarks {
		fam, variant, ok := strings.Cut(b.Name, "/")
		if !ok || variant == "seq" || variant == "scratch" {
			continue
		}
		seq, ok := base[fam]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		rep.Speedups = append(rep.Speedups, Speedup{
			Family:  fam,
			Variant: variant,
			SeqNs:   seq,
			NsPerOp: b.NsPerOp,
			Speedup: seq / b.NsPerOp,
		})
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks, %d speedups)\n", *out, len(rep.Benchmarks), len(rep.Speedups))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
