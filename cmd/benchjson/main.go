// Command benchjson converts `go test -bench` output on stdin into a JSON
// record (the internal/benchfmt schema), computing the speedup of each
// accelerated variant against its family's "seq" baseline (sub-benchmark
// naming Family/variant). The root Makefile's bench target pipes the
// selection benchmarks through it to produce BENCH_selection.json; the
// servebench target pipes freshbench's bench-format output through it
// against BENCH_serving.json, whose serving extension (per-endpoint
// quantiles, error rates) it carries along untouched.
//
// With -compare it additionally diffs the fresh run against a previously
// committed report and exits non-zero when any shared benchmark slowed
// down by more than -tolerance, or grew its allocs/op past
// -alloc-tolerance (zero-alloc baselines are pinned exactly) — CI's
// bench-regression gate. The emitted context records gomaxprocs/numcpu;
// on single-core runs the gate skips parallel-variant regressions with a
// logged note, since fan-out cannot pay off without cores.
//
// With -require-faster "Fast<Slow,..." it additionally asserts speedups
// exist: each Fast benchmark's ns/op must beat its Slow partner's in this
// run. Applied whenever GOMAXPROCS > 1 (the multi-core profile), with or
// without -compare, and never waived for numcpu=1 — this is the gate that
// keeps the parallel CELF path genuinely faster than sequential.
//
// Usage:
//
//	go test -bench . ./internal/selection | benchjson -out BENCH_selection.json
//	go test -bench . ./internal/selection | benchjson -compare BENCH_selection.json -tolerance 0.25
//	freshbench -spawn -duration 5s | benchjson -compare BENCH_serving.json -tolerance 1.0
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"

	"freshsource/internal/benchfmt"
)

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	compare := flag.String("compare", "", "reference report to diff against; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional slowdown per benchmark in compare mode")
	allocTolerance := flag.Float64("alloc-tolerance", 0.25, "allowed fractional allocs/op growth in compare mode (zero-alloc baselines are pinned exactly)")
	requireFaster := flag.String("require-faster", "", "comma-separated Fast<Slow benchmark pairs that must hold in this run when GOMAXPROCS > 1 (pairs with absent benchmarks are skipped with a note; never waived for numcpu=1)")
	flag.Parse()

	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	benchfmt.ComputeSpeedups(&rep)
	// Record the core budget alongside goos/cpu: parallel-variant speedups
	// only mean something when the run actually had cores to fan out over,
	// and the compare gate needs to know (benchjson runs on the machine
	// that just ran the benchmarks, so this describes the same host).
	rep.Context["gomaxprocs"] = strconv.Itoa(runtime.GOMAXPROCS(0))
	rep.Context["numcpu"] = strconv.Itoa(runtime.NumCPU())

	if *requireFaster != "" {
		pairs, err := benchfmt.ParseFasterPairs(*requireFaster)
		if err != nil {
			fatal(err)
		}
		// The check keys on gomaxprocs alone: at GOMAXPROCS=1 the runtime
		// cannot overlap sweeps so "parallel beats sequential" is vacuously
		// unachievable, but numcpu=1 with GOMAXPROCS>1 still overlaps on
		// oracle math between scheduler slices — the committed multi-core
		// profile proves speedups there, so the gate is NOT waived for it.
		if rep.Context["gomaxprocs"] == "1" {
			fmt.Fprintf(os.Stderr, "benchjson: note: -require-faster skipped (GOMAXPROCS=1)\n")
		} else {
			viols, skipped := benchfmt.CheckFaster(rep, pairs)
			for _, p := range skipped {
				fmt.Fprintf(os.Stderr, "benchjson: note: require-faster %s<%s skipped (benchmark absent from this run)\n", p.Fast, p.Slow)
			}
			for _, v := range viols {
				fmt.Fprintf(os.Stderr, "benchjson: REQUIRE-FASTER FAILED %s (%.0f ns/op) is not faster than %s (%.0f ns/op)\n",
					v.Pair.Fast, v.FastNs, v.Pair.Slow, v.SlowNs)
			}
			if len(viols) > 0 {
				os.Exit(1)
			}
		}
	}

	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			fatal(err)
		}
		var ref benchfmt.Report
		if err := json.Unmarshal(raw, &ref); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *compare, err))
		}
		regs, missing := benchfmt.Compare(ref, rep, *tolerance)
		if rep.SingleCore() {
			var skipped []string
			regs, skipped = benchfmt.SkipParallel(regs)
			for _, name := range skipped {
				fmt.Fprintf(os.Stderr, "benchjson: note: skipping parallel-variant gate for %s (single-core run, GOMAXPROCS=%s NumCPU=%s)\n",
					name, rep.Context["gomaxprocs"], rep.Context["numcpu"])
			}
		}
		allocRegs := benchfmt.CompareAllocs(ref, rep, *allocTolerance)
		for _, name := range missing {
			fmt.Fprintf(os.Stderr, "benchjson: warning: %s in %s but absent from this run\n", name, *compare)
		}
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f ns/op -> %.0f ns/op (%.2fx > %.2fx allowed)\n",
				r.Name, r.OldNs, r.NewNs, r.Ratio, r.Bound)
		}
		for _, r := range allocRegs {
			fmt.Fprintf(os.Stderr, "benchjson: ALLOC REGRESSION %s: %d allocs/op -> %d allocs/op (max %d allowed)\n",
				r.Name, r.OldAllocs, r.NewAllocs, r.Bound)
		}
		if len(regs) > 0 || len(allocRegs) > 0 {
			os.Exit(1)
		}
		fmt.Printf("benchjson: %d/%d benchmarks within %.0f%% of %s\n",
			len(ref.Benchmarks)-len(missing), len(ref.Benchmarks), *tolerance*100, *compare)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if *compare == "" {
			os.Stdout.Write(enc)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks, %d speedups)\n", *out, len(rep.Benchmarks), len(rep.Speedups))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
