// Command benchjson converts `go test -bench` output on stdin into a JSON
// record, computing the speedup of each accelerated variant against its
// family's "seq" baseline (sub-benchmark naming Family/variant). The root
// Makefile's bench target pipes the selection benchmarks through it to
// produce BENCH_selection.json.
//
// With -compare it additionally diffs the fresh run against a previously
// committed report and exits non-zero when any shared benchmark slowed
// down by more than -tolerance — CI's bench-regression gate.
//
// Usage:
//
//	go test -bench . ./internal/selection | benchjson -out BENCH_selection.json
//	go test -bench . ./internal/selection | benchjson -compare BENCH_selection.json -tolerance 0.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Speedup compares one variant against its family's seq baseline.
type Speedup struct {
	Family  string  `json:"family"`
	Variant string  `json:"variant"`
	SeqNs   float64 `json:"seq_ns_per_op"`
	NsPerOp float64 `json:"ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// Report is the emitted document.
type Report struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Speedups   []Speedup         `json:"speedups"`
}

// Regression is one benchmark that slowed past the tolerance.
type Regression struct {
	Name  string
	OldNs float64
	NewNs float64
	Ratio float64 // NewNs / OldNs
	Bound float64 // 1 + tolerance
}

var lineRe = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench scans `go test -bench` output into a report (context lines and
// benchmark result lines; everything else is ignored).
func parseBench(r io.Reader) (Report, error) {
	rep := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Context[key] = v
			}
		}
		m := lineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		b := Benchmark{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			v, _ := strconv.ParseInt(m[4], 10, 64)
			b.BytesPerOp = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			b.AllocsPerOp = &v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

// computeSpeedups fills rep.Speedups from the family baselines: Family/seq
// (or Family/scratch for the estimator micro-benchmarks, which name the
// from-scratch path that way).
func computeSpeedups(rep *Report) {
	base := map[string]float64{}
	for _, b := range rep.Benchmarks {
		fam, variant, ok := strings.Cut(b.Name, "/")
		if !ok {
			continue
		}
		if variant == "seq" || variant == "scratch" {
			base[fam] = b.NsPerOp
		}
	}
	for _, b := range rep.Benchmarks {
		fam, variant, ok := strings.Cut(b.Name, "/")
		if !ok || variant == "seq" || variant == "scratch" {
			continue
		}
		seq, ok := base[fam]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		rep.Speedups = append(rep.Speedups, Speedup{
			Family:  fam,
			Variant: variant,
			SeqNs:   seq,
			NsPerOp: b.NsPerOp,
			Speedup: seq / b.NsPerOp,
		})
	}
}

// compareReports diffs the fresh run against a reference: every benchmark
// present in both must satisfy new ≤ old·(1+tolerance). Benchmarks only in
// the reference are returned as missing (reported, not fatal: renames and
// removals shouldn't hard-fail CI); benchmarks only in the fresh run are
// ignored.
func compareReports(ref, fresh Report, tolerance float64) (regs []Regression, missing []string) {
	freshNs := make(map[string]float64, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshNs[b.Name] = b.NsPerOp
	}
	bound := 1 + tolerance
	for _, b := range ref.Benchmarks {
		ns, ok := freshNs[b.Name]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		if ratio := ns / b.NsPerOp; ratio > bound {
			regs = append(regs, Regression{
				Name: b.Name, OldNs: b.NsPerOp, NewNs: ns, Ratio: ratio, Bound: bound,
			})
		}
	}
	return regs, missing
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	compare := flag.String("compare", "", "reference report to diff against; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional slowdown per benchmark in compare mode")
	flag.Parse()

	rep, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	computeSpeedups(&rep)

	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			fatal(err)
		}
		var ref Report
		if err := json.Unmarshal(raw, &ref); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *compare, err))
		}
		regs, missing := compareReports(ref, rep, *tolerance)
		for _, name := range missing {
			fmt.Fprintf(os.Stderr, "benchjson: warning: %s in %s but absent from this run\n", name, *compare)
		}
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f ns/op -> %.0f ns/op (%.2fx > %.2fx allowed)\n",
				r.Name, r.OldNs, r.NewNs, r.Ratio, r.Bound)
		}
		if len(regs) > 0 {
			os.Exit(1)
		}
		fmt.Printf("benchjson: %d/%d benchmarks within %.0f%% of %s\n",
			len(ref.Benchmarks)-len(missing), len(ref.Benchmarks), *tolerance*100, *compare)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if *compare == "" {
			os.Stdout.Write(enc)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks, %d speedups)\n", *out, len(rep.Benchmarks), len(rep.Speedups))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
