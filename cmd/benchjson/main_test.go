package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: freshsource/internal/selection
cpu: Imaginary CPU @ 3.0GHz
BenchmarkGreedy/seq-16         	     100	  1000000 ns/op
BenchmarkGreedy/par4-16        	     400	   260000 ns/op	 1024 B/op	      12 allocs/op
BenchmarkGRASP/seq-16          	      50	  2000000 ns/op
BenchmarkGRASP/par4-16         	     200	   550000 ns/op
BenchmarkQualityMultiAdd/scratch-16	 300	    90000 ns/op
BenchmarkQualityMultiAdd/incremental-16	3000	     9000 ns/op
PASS
ok  	freshsource/internal/selection	12.345s
`

func parseSample(t *testing.T) Report {
	t.Helper()
	rep, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	computeSpeedups(&rep)
	return rep
}

func TestParseBench(t *testing.T) {
	rep := parseSample(t)
	if len(rep.Benchmarks) != 6 {
		t.Fatalf("parsed %d benchmarks, want 6", len(rep.Benchmarks))
	}
	if rep.Context["goos"] != "linux" || rep.Context["cpu"] != "Imaginary CPU @ 3.0GHz" {
		t.Errorf("context: %v", rep.Context)
	}
	b := rep.Benchmarks[1]
	if b.Name != "Greedy/par4" || b.Iterations != 400 || b.NsPerOp != 260000 {
		t.Errorf("parsed line: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1024 || b.AllocsPerOp == nil || *b.AllocsPerOp != 12 {
		t.Errorf("allocation columns: %+v", b)
	}
	if rep.Benchmarks[0].BytesPerOp != nil {
		t.Error("seq line should have no allocation columns")
	}
}

func TestComputeSpeedups(t *testing.T) {
	rep := parseSample(t)
	if len(rep.Speedups) != 3 {
		t.Fatalf("computed %d speedups, want 3", len(rep.Speedups))
	}
	byFam := map[string]Speedup{}
	for _, s := range rep.Speedups {
		byFam[s.Family] = s
	}
	if s := byFam["Greedy"]; s.Variant != "par4" || s.Speedup < 3.8 || s.Speedup > 3.9 {
		t.Errorf("Greedy speedup: %+v", s)
	}
	if s := byFam["QualityMultiAdd"]; s.SeqNs != 90000 || s.Speedup != 10 {
		t.Errorf("scratch baseline speedup: %+v", s)
	}
}

// TestCompareFailsTwoTimesRegression is the acceptance check for the CI
// gate: a synthetic 2× slowdown must be flagged as a regression at the
// default 25% tolerance.
func TestCompareFailsTwoTimesRegression(t *testing.T) {
	ref := parseSample(t)
	slowed, err := parseBench(strings.NewReader(strings.ReplaceAll(
		sampleOutput, "1000000 ns/op", "2000001 ns/op")))
	if err != nil {
		t.Fatal(err)
	}
	regs, missing := compareReports(ref, slowed, 0.25)
	if len(missing) != 0 {
		t.Errorf("missing: %v", missing)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions: %+v, want exactly the 2x one", regs)
	}
	r := regs[0]
	if r.Name != "Greedy/seq" || r.Ratio < 2 || r.Ratio > 2.1 || r.Bound != 1.25 {
		t.Errorf("regression: %+v", r)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	ref := parseSample(t)
	slightlySlower, err := parseBench(strings.NewReader(strings.ReplaceAll(
		sampleOutput, "1000000 ns/op", "1200000 ns/op")))
	if err != nil {
		t.Fatal(err)
	}
	if regs, _ := compareReports(ref, slightlySlower, 0.25); len(regs) != 0 {
		t.Errorf("20%% slowdown flagged at 25%% tolerance: %+v", regs)
	}
	// Faster is never a regression.
	if regs, _ := compareReports(ref, parseSample(t), 0); len(regs) != 0 {
		t.Errorf("identical run flagged at zero tolerance: %+v", regs)
	}
}

func TestCompareReportsMissing(t *testing.T) {
	ref := parseSample(t)
	partial, err := parseBench(strings.NewReader(
		"BenchmarkGreedy/seq-16 100 1000000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	regs, missing := compareReports(ref, partial, 0.25)
	if len(regs) != 0 {
		t.Errorf("unexpected regressions: %+v", regs)
	}
	if len(missing) != 5 {
		t.Errorf("missing = %v, want the 5 absent benchmarks", missing)
	}
}
