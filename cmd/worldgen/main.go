// Command worldgen generates a synthetic dataset (BL-like or GDELT-like)
// and prints summary statistics: world size, per-source sizes, update
// intervals and quality at the training cut. It is the quickest way to
// inspect what the simulators produce.
//
// Usage:
//
//	worldgen -kind bl
//	worldgen -kind gdelt -sources 100
//	worldgen -kind bl -scale 0.25 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"freshsource/internal/dataset"
	"freshsource/internal/metrics"
	"freshsource/internal/snapio"
	"freshsource/internal/source"
)

func main() {
	var (
		kind    = flag.String("kind", "bl", "dataset kind: bl or gdelt")
		sources = flag.Int("sources", 0, "override the number of sources (0 = default)")
		scale   = flag.Float64("scale", 0, "override the entity scale (0 = default)")
		seed    = flag.Int64("seed", 0, "override the seed (0 = default)")
		dump    = flag.String("dump", "", "directory to persist the dataset (snapio JSONL format)")
	)
	flag.Parse()

	var d *dataset.Dataset
	var err error
	switch *kind {
	case "bl":
		cfg := dataset.DefaultBLConfig()
		if *sources > 0 {
			cfg.NumSources = *sources
		}
		if *scale > 0 {
			cfg.Scale = *scale
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		d, err = dataset.GenerateBL(cfg)
	case "gdelt":
		cfg := dataset.DefaultGDELTConfig()
		if *sources > 0 {
			cfg.NumSources = *sources
		}
		if *scale > 0 {
			cfg.Scale = *scale
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		d, err = dataset.GenerateGDELT(cfg)
	default:
		err = fmt.Errorf("unknown kind %q (want bl or gdelt)", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}

	if *dump != "" {
		if err := snapio.Write(*dump, d); err != nil {
			fmt.Fprintln(os.Stderr, "worldgen:", err)
			os.Exit(1)
		}
		fmt.Printf("persisted dataset to %s\n", *dump)
	}

	w := d.World
	fmt.Printf("dataset %s: %d entities, %d domain points, horizon %d ticks, training cut t0=%d\n",
		d.Name, w.NumEntities(), len(w.Points()), w.Horizon(), d.T0)
	fmt.Printf("alive at t0: %d; alive at horizon-1: %d; world events: %d\n",
		w.AliveCount(d.T0, nil), w.AliveCount(w.Horizon()-1, nil), w.Log().Len())

	fmt.Printf("\n%-12s %10s %8s %9s %9s %9s\n", "source", "size@t0", "interval", "coverage", "freshness", "accuracy")
	for _, s := range d.Sources {
		q := metrics.QualityAt(w, []*source.Source{s}, d.T0, nil)
		fmt.Printf("%-12s %10d %8d %9.4f %9.4f %9.4f\n",
			s.Name(), s.SnapshotAt(d.T0).Size(), s.UpdateInterval(),
			q.Coverage, q.LocalFreshness, q.Accuracy)
	}
}
