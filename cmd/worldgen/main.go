// Command worldgen generates a synthetic dataset (BL-like or GDELT-like)
// and prints summary statistics: world size, per-source sizes, update
// intervals and quality at the training cut. It is the quickest way to
// inspect what the simulators produce.
//
// Usage:
//
//	worldgen -kind bl
//	worldgen -kind gdelt -sources 100
//	worldgen -kind bl -scale 0.25 -seed 7
//	worldgen -preset paper
//
// -preset paper selects the full paper-scale GDELT corpus (15,275
// heavy-tailed sources over 243 locations × 236 event types); -sources,
// -scale and -seed still override individual knobs on top of it. For
// corpora beyond -table sources (default 40) the per-source quality table
// is truncated to the largest sources plus a size-distribution summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"freshsource/internal/dataset"
	"freshsource/internal/metrics"
	"freshsource/internal/snapio"
	"freshsource/internal/source"
)

func main() {
	var (
		kind    = flag.String("kind", "bl", "dataset kind: bl or gdelt")
		preset  = flag.String("preset", "", "configuration preset: paper (15,275-source GDELT regime)")
		sources = flag.Int("sources", 0, "override the number of sources (0 = default)")
		scale   = flag.Float64("scale", 0, "override the entity scale (0 = default)")
		seed    = flag.Int64("seed", 0, "override the seed (0 = default)")
		table   = flag.Int("table", 40, "max sources in the per-source quality table (largest first beyond it)")
		dump    = flag.String("dump", "", "directory to persist the dataset (snapio JSONL format)")
	)
	flag.Parse()

	var d *dataset.Dataset
	var err error
	switch {
	case *preset == "paper":
		cfg := dataset.PaperGDELTConfig()
		if *sources > 0 {
			cfg.NumSources = *sources
		}
		if *scale > 0 {
			cfg.Scale = *scale
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		d, err = dataset.GenerateGDELT(cfg)
	case *preset != "":
		err = fmt.Errorf("unknown preset %q (want paper)", *preset)
	case *kind == "bl":
		cfg := dataset.DefaultBLConfig()
		if *sources > 0 {
			cfg.NumSources = *sources
		}
		if *scale > 0 {
			cfg.Scale = *scale
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		d, err = dataset.GenerateBL(cfg)
	case *kind == "gdelt":
		cfg := dataset.DefaultGDELTConfig()
		if *sources > 0 {
			cfg.NumSources = *sources
		}
		if *scale > 0 {
			cfg.Scale = *scale
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		d, err = dataset.GenerateGDELT(cfg)
	default:
		err = fmt.Errorf("unknown kind %q (want bl or gdelt)", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}

	if *dump != "" {
		if err := snapio.Write(*dump, d); err != nil {
			fmt.Fprintln(os.Stderr, "worldgen:", err)
			os.Exit(1)
		}
		fmt.Printf("persisted dataset to %s\n", *dump)
	}

	w := d.World
	fmt.Printf("dataset %s: %d entities, %d domain points, horizon %d ticks, training cut t0=%d\n",
		d.Name, w.NumEntities(), len(w.Points()), w.Horizon(), d.T0)
	fmt.Printf("alive at t0: %d; alive at horizon-1: %d; world events: %d\n",
		w.AliveCount(d.T0, nil), w.AliveCount(w.Horizon()-1, nil), w.Log().Len())

	// At paper scale the per-source quality table would be tens of
	// thousands of rows (and as many full quality evaluations); truncate to
	// the largest sources and summarize the size distribution instead.
	show := d.Sources
	sizes := d.SizeAt(d.T0)
	if len(d.Sources) > *table {
		idx := d.LargestSources(*table)
		show = make([]*source.Source, len(idx))
		for i, j := range idx {
			show[i] = d.Sources[j]
		}
		sorted := append([]int(nil), sizes...)
		sort.Ints(sorted)
		pct := func(p float64) int { return sorted[int(p*float64(len(sorted)-1))] }
		var total int
		for _, s := range sizes {
			total += s
		}
		fmt.Printf("\nsource sizes @t0: total %d, p50 %d, p90 %d, p99 %d, max %d (heavy tail over %d sources)\n",
			total, pct(0.50), pct(0.90), pct(0.99), sorted[len(sorted)-1], len(sizes))
		fmt.Printf("showing the %d largest of %d sources (use -table to widen)\n", len(show), len(d.Sources))
	}

	fmt.Printf("\n%-12s %10s %8s %9s %9s %9s\n", "source", "size@t0", "interval", "coverage", "freshness", "accuracy")
	for _, s := range show {
		q := metrics.QualityAt(w, []*source.Source{s}, d.T0, nil)
		fmt.Printf("%-12s %10d %8d %9.4f %9.4f %9.4f\n",
			s.Name(), s.SnapshotAt(d.T0).Size(), s.UpdateInterval(),
			q.Coverage, q.LocalFreshness, q.Accuracy)
	}
}
