// Command freshd is the long-running face of the library: it loads one
// world/source snapshot at startup, fits the statistical models once, and
// serves selection and quality queries over JSON with a warm model
// registry, per-request timeouts, bounded concurrency and graceful drain.
//
// Usage:
//
//	freshd -kind bl -scale 0.5 -addr :8080
//	freshd -load snapshots/bl-small -timeout 10s -max-inflight 8
//	freshd -load snapshots/bl-small -obs.dump /var/run/freshd.obs.json -obs.interval 30s
//	freshd -load snapshots/main -tenant eu=snapshots/eu -tenant us=snapshots/us
//	freshd -kind bl -tenants.manifest tenants.json -coalesce.window 2ms
//
// One daemon can host many named worlds (tenants): the dataset from
// -load/-kind is the default tenant, and each -tenant name=snapshot-dir
// (or manifest entry) adds an isolated world with its own generation
// lineage, model-cache scope and coalescers. Requests address tenants with
// ?tenant=name on every endpoint.
//
// Endpoints: POST /v1/select, POST /v1/quality, GET /v1/sources,
// POST /v1/reload, POST /v1/observe (with -ingest.epoch),
// GET /v1/freshness, GET /healthz, GET /metrics
// (Prometheus text exposition; ?format=json for the raw snapshot). A
// served selection is byte-identical to a freshselect run over the same
// snapshot and options.
//
// When serving a persisted snapshot (-load), the daemon hot-reloads it on
// SIGHUP or POST /v1/reload: the candidate is staged, validated and fitted
// off to the side, then atomically swapped in without dropping in-flight
// requests; any failure rolls back to the last-good generation, which
// keeps serving.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"freshsource/internal/obs"
	"freshsource/internal/serve"
	"freshsource/internal/version"
)

// tenantFlags collects repeatable -tenant name=snapshot-dir declarations.
type tenantFlags []serve.TenantSpec

func (f *tenantFlags) String() string {
	names := make([]string, len(*f))
	for i, sp := range *f {
		names[i] = sp.Name + "=" + sp.SnapshotDir
	}
	return strings.Join(names, ",")
}

func (f *tenantFlags) Set(v string) error {
	name, dir, ok := strings.Cut(v, "=")
	if !ok || name == "" || dir == "" {
		return fmt.Errorf("want name=snapshot-dir, got %q", v)
	}
	*f = append(*f, serve.TenantSpec{Name: name, SnapshotDir: dir})
	return nil
}

func main() {
	var tenants tenantFlags
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		load        = flag.String("load", "", "load a persisted dataset directory instead of generating")
		kind        = flag.String("kind", "bl", "dataset kind when generating: bl or gdelt")
		scale       = flag.Float64("scale", 0.5, "dataset scale when generating")
		seed        = flag.Int64("seed", 1, "dataset seed when generating")
		inflight    = flag.Int("max-inflight", 0, "max concurrent select/quality requests (0 = 2×GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request deadline; an expired solve is canceled and answered 504")
		grace       = flag.Duration("grace", 10*time.Second, "shutdown drain bound for in-flight requests")
		future      = flag.Int("future", 10, "default number of future time points of interest")
		cacheSize   = flag.Int("cache-entries", 0, "max entries per registry cache (0 = 4096)")
		fitWork     = flag.Int("fit.workers", 0, "model-fitting pool size (0 = GOMAXPROCS, 1 = sequential); models are byte-identical at any setting")
		mcDir       = flag.String("modelcache.dir", "", "persistent model cache directory; a verified entry skips the startup fit (empty = disabled)")
		maxBody     = flag.Int64("max-body", 1<<20, "request body cap in bytes; oversized POSTs are rejected with 413")
		reloadTO    = flag.Duration("reload.timeout", 5*time.Minute, "bound on staging+fitting a hot-reloaded snapshot; on expiry the candidate is discarded")
		ingestEpoch = flag.Duration("ingest.epoch", 0, "streaming-ingestion epoch interval; >0 enables POST /v1/observe and periodic incremental refit (mutually exclusive with -load hot reload)")
		ingestDir   = flag.String("ingest.dir", "", "durable epoch-log directory; committed epochs are recovered on restart (empty = in-memory only)")
		ingestLag   = flag.Int("ingest.maxlag", 0, "max buffered observations before /v1/observe sheds load with 429 (0 = 65536)")
		freshWarn   = flag.Float64("freshness.warn", 1.5, "GET /v1/freshness warning threshold, as a multiple of each source's fitted update interval")
		freshStale  = flag.Float64("freshness.stale", 3.0, "GET /v1/freshness stale threshold, as a multiple of each source's fitted update interval")
		defTenant   = flag.String("default-tenant", "default", "name of the default tenant (the -load/-kind dataset)")
		manifest    = flag.String("tenants.manifest", "", "JSON tenants manifest adding named worlds (see serve.LoadTenantManifest)")
		coalesce    = flag.Duration("coalesce.window", 0, "batch window coalescing concurrent identical select/quality requests into one solver pass (0 = 2ms default, negative = in-flight dedupe only)")
		showVersion = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Var(&tenants, "tenant", "add a named world: name=snapshot-dir (repeatable)")
	var of obs.Flags
	of.Register(flag.CommandLine)
	flag.Parse()

	if *showVersion {
		fmt.Println("freshd", version.String())
		return
	}

	if bound, err := of.Activate(); err != nil {
		fatal(err)
	} else if bound != "" {
		fmt.Fprintf(os.Stderr, "freshd: pprof/expvar on http://%s/debug/pprof/\n", bound)
	}
	defer of.Finish(os.Stderr)

	d, err := serve.LoadDataset(*load, *kind, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "freshd %s: dataset %s: %d sources, %d entities, t0=%d\n",
		version.String(), d.Name, len(d.Sources), d.World.NumEntities(), d.T0)

	specs := []serve.TenantSpec(tenants)
	if *manifest != "" {
		fromFile, err := serve.LoadTenantManifest(*manifest)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, fromFile...)
	}

	srv, err := serve.New(d, serve.Config{
		Addr:                 *addr,
		MaxInflight:          *inflight,
		RequestTimeout:       *timeout,
		ShutdownGrace:        *grace,
		DefaultFuture:        *future,
		MaxCacheEntries:      *cacheSize,
		FitWorkers:           *fitWork,
		ModelCacheDir:        *mcDir,
		SnapshotDir:          *load,
		ReloadTimeout:        *reloadTO,
		MaxBodyBytes:         *maxBody,
		IngestEpoch:          *ingestEpoch,
		IngestDir:            *ingestDir,
		IngestMaxLag:         *ingestLag,
		FreshnessWarnFactor:  *freshWarn,
		FreshnessStaleFactor: *freshStale,
		DefaultTenant:        *defTenant,
		Tenants:              specs,
		CoalesceWindow:       *coalesce,
	})
	if err != nil {
		fatal(err)
	}
	if names := srv.TenantNames(); len(names) > 1 {
		fmt.Fprintf(os.Stderr, "freshd: hosting %d tenants: %s\n", len(names), strings.Join(names, ", "))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP hot-reloads every reloadable tenant's snapshot. The loop
	// serializes naturally per tenant: each reload holds its tenant's
	// reload lock, and a tenant with no snapshot directory is skipped.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			for _, name := range srv.TenantNames() {
				info, err := srv.ReloadTenant(ctx, name)
				switch {
				case err == serve.ErrNotReloadable:
					continue
				case err != nil:
					fmt.Fprintf(os.Stderr, "freshd: tenant %s: reload failed, last-good generation kept: %v\n", name, err)
				case info.Swapped:
					fmt.Fprintf(os.Stderr, "freshd: tenant %s: reloaded %s, now serving generation %d (digest %.12s)\n",
						name, info.Dataset, info.Generation, info.Digest)
				default:
					fmt.Fprintf(os.Stderr, "freshd: tenant %s: snapshot unchanged, generation %d kept\n", name, info.Generation)
				}
			}
		}
	}()

	fmt.Fprintf(os.Stderr, "freshd: serving on %s\n", *addr)
	if err := srv.ListenAndServe(ctx); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "freshd: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "freshd:", err)
	os.Exit(1)
}
