module freshsource

go 1.22
