GO ?= go

# Packages whose concurrency matters enough to gate on the race detector.
RACE_PKGS = ./internal/obs ./internal/selection ./internal/estimate

.PHONY: build vet test race bench bench-smoke bench-paper verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Selection hot-path benchmarks → BENCH_selection.json (ns/op per variant
# plus speedups of each accelerated path over its sequential baseline).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkGreedy|BenchmarkGRASP|BenchmarkQualityMultiAdd' \
		./internal/selection ./internal/estimate | tee /tmp/bench_selection.out
	$(GO) run ./cmd/benchjson -out BENCH_selection.json < /tmp/bench_selection.out

# One-iteration pass over the same benchmarks: CI's compile-and-run gate.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkGreedy|BenchmarkGRASP|BenchmarkQualityMultiAdd' -benchtime=1x \
		./internal/selection ./internal/estimate

# Scaled-down paper-experiment benches at the repo root.
bench-paper:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Tier-1 verification: everything CI runs.
verify: build vet test race
