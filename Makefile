GO ?= go

# Packages whose concurrency matters enough to gate on the race detector.
RACE_PKGS = ./internal/obs ./internal/selection ./internal/estimate ./internal/serve ./internal/modelcache ./internal/faults ./internal/ingest

# Coverage floor (percent) enforced by `make cover` over ./internal/...
COVER_FLOOR = 70

# Allowed fractional per-benchmark slowdown in `make bench-check`. Generous
# on purpose: shared CI runners are noisy; this gate is for 2x-style
# regressions, not 10% jitter.
BENCH_TOLERANCE = 0.5

# Allowed fractional allocs/op growth in `make bench-check`. Much tighter
# than the time gate: allocation counts are near-deterministic, and a
# zero-alloc baseline (the Scale probe path) is pinned exactly.
BENCH_ALLOC_TOLERANCE = 0.25

# Benchmark corpus size: quick runs the 64- and 1k-candidate Scale
# fixtures; full adds the 15,275-source paper corpus (minutes, not
# seconds — use it when refreshing BENCH_selection.json).
BENCH_SCALE ?= quick

# Allowed fractional slowdown in `make servebench-check`. Even more
# generous: serving quantiles come from a short live load against a
# spawned daemon, so the gate only catches order-of-magnitude blowups.
SERVE_TOLERANCE = 3.0

# Build identity stamped into the binaries ( /healthz and the freshbench
# run header report it).
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT  ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
LDFLAGS  = -ldflags "-X freshsource/internal/version.Version=$(VERSION) -X freshsource/internal/version.Commit=$(COMMIT)"

# The deterministic serving workload behind servebench / servebench-check.
# The spawned freshd hosts 4 named tenant worlds (freshbench's default) and
# the report carries per-tenant p95s alongside the per-endpoint quantiles.
# observe weights the streaming-ingestion path: the spawned freshd runs 1s
# epochs and the run drives incremental refits alongside the query load
# (observe replaces reload — ingestion and snapshot hot reload are
# mutually exclusive on one server).
SERVEBENCH_ARGS = -spawn -duration 5s -rps 80 -concurrency 8 -seed 1 \
	-mix "select=5,quality=3,observe=2,freshness=1"

# GOMAXPROCS for the committed multi-core bench profile. 2 keeps the
# profile reproducible on small CI runners while still exercising the
# parallel sweep paths (GOMAXPROCS may exceed physical cores).
MULTICORE_GOMAXPROCS ?= 2

# Time tolerance for the multi-core gate. Looser than BENCH_TOLERANCE
# because the profile may be recorded on a box where GOMAXPROCS exceeds
# physical cores — thread contention plus host CPU steal makes wall
# times swing 2x run-to-run there. The gate targets order-of-magnitude
# parallel-path regressions (like SERVE_TOLERANCE); precise timing
# regressions stay gated by bench-check, and allocs/op — deterministic
# regardless of contention — keep the tight BENCH_ALLOC_TOLERANCE.
MULTICORE_TOLERANCE ?= 2.0

# Speedup assertions for the multi-core profile: each Fast<Slow pair must
# hold in the fresh run (benchjson -require-faster). Unlike the tolerance
# gate this is never waived — it is what keeps the parallel CELF path and
# the pooled parallel sweep genuinely faster than their sequential
# baselines whenever GOMAXPROCS > 1. Pairs whose benchmarks a quick run
# skips (the 15k corpus) are noted, not failed; the full-scale run gates.
MULTICORE_FASTER ?= ScaleCELF/15k/parallel<ScaleCELF/15k/seq,Greedy/parallel+incr<Greedy/incr

# Per-benchmark time for the multi-core profile. Longer than the default
# 1s so each gated pair averages over a window wide enough to ride out
# shared-runner CPU-steal spikes, which otherwise decide the
# require-faster comparison by lottery.
MULTICORE_BENCHTIME ?= 3s

.PHONY: build vet test race chaos lint cover bench bench-smoke bench-check bench-paper bench-multicore bench-multicore-check servebench servebench-smoke servebench-check verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Fault-injection ("chaos") suite: the degraded-mode guarantees of the
# serving stack — hot-reload rollback on corrupt snapshots, torn model
# cache files, disk latency, mid-fit cancellation, reload under fire, and
# the streaming-ingestion seams (torn epoch logs, replayed epochs,
# refit-mid-stream failures) — driven through internal/faults and run
# under the race detector.
chaos:
	$(GO) test -race ./internal/faults
	$(GO) test -race ./internal/ingest
	$(GO) test -race -run 'Chaos|Reload|EpochFlush|Detached|RegistryClose|Ingest|Observe|Epoch' ./internal/serve

# Formatting + static analysis. gofmt failures print the offending files and
# fail; staticcheck runs when installed (CI installs it; local dev without
# it still gets gofmt + vet).
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: files need formatting:"; echo "$$unformatted"; exit 1; \
	fi
	@tracked=$$(git ls-files | grep -E '\.test$$' || true); \
	if [ -n "$$tracked" ]; then \
		echo "lint: compiled test binaries must not be tracked:"; echo "$$tracked"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Total test coverage over the library packages with a hard floor.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$total >= $(COVER_FLOOR))}" || \
		{ echo "cover: total coverage $$total% below floor $(COVER_FLOOR)%"; exit 1; }

# The benchmarks behind bench / bench-smoke / bench-check: the selection
# variant families, the estimator micro-benches, and the Scale family
# (64/1k/15k-candidate corpora; 15k gated on BENCH_SCALE=full).
BENCH_RE = BenchmarkGreedy|BenchmarkGRASP|BenchmarkQualityMultiAdd|BenchmarkEstimatorNew|BenchmarkScale|BenchmarkCachedOracle
BENCH_PKGS = ./internal/selection ./internal/estimate ./internal/modelcache

# Selection hot-path benchmarks → BENCH_selection.json (ns/op and
# allocs/op per variant plus speedups of each accelerated path over its
# sequential baseline). BENCH_SCALE=full includes the 15k paper corpus.
bench:
	BENCH_SCALE=$(BENCH_SCALE) $(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchmem -timeout 30m \
		$(BENCH_PKGS) | tee /tmp/bench_selection.out
	$(GO) run ./cmd/benchjson -out BENCH_selection.json < /tmp/bench_selection.out

# One-iteration pass over the same benchmarks: CI's compile-and-run gate.
bench-smoke:
	BENCH_SCALE=$(BENCH_SCALE) $(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchmem -benchtime=1x -timeout 30m \
		$(BENCH_PKGS)

# Bench-regression gate: run the tracked benchmarks fresh and diff against
# the committed BENCH_selection.json; fails on any slowdown beyond
# BENCH_TOLERANCE or allocs/op growth beyond BENCH_ALLOC_TOLERANCE.
# Refresh the baseline with `make bench BENCH_SCALE=full` after intended
# performance changes. Quick runs simply skip the 15k benchmarks — absent
# benchmarks are compare warnings, not failures.
bench-check:
	BENCH_SCALE=$(BENCH_SCALE) $(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchmem -timeout 30m \
		$(BENCH_PKGS) | \
		$(GO) run ./cmd/benchjson -compare BENCH_selection.json \
			-tolerance $(BENCH_TOLERANCE) -alloc-tolerance $(BENCH_ALLOC_TOLERANCE)

# Multi-core bench profile → BENCH_multicore.json: the same tracked
# benchmarks pinned at GOMAXPROCS=$(MULTICORE_GOMAXPROCS), so the parallel
# sweep speedups are gated on a profile that actually has cores (the
# default BENCH_selection.json baseline may come from a single-core box,
# where benchjson waives the parallel-variant gate entirely). Two recipe
# lines on purpose: an env prefix only covers the first command of a
# pipeline, so the bench run and the benchjson reduction each carry their
# own GOMAXPROCS.
bench-multicore:
	GOMAXPROCS=$(MULTICORE_GOMAXPROCS) BENCH_SCALE=$(BENCH_SCALE) $(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchmem -benchtime=$(MULTICORE_BENCHTIME) -timeout 30m \
		$(BENCH_PKGS) > /tmp/bench_multicore.out
	GOMAXPROCS=$(MULTICORE_GOMAXPROCS) $(GO) run ./cmd/benchjson -out BENCH_multicore.json \
		-require-faster '$(MULTICORE_FASTER)' < /tmp/bench_multicore.out
	@grep -q '"gomaxprocs": "1"' BENCH_multicore.json && \
		{ echo "bench-multicore: profile recorded GOMAXPROCS=1; want >1"; exit 1; } || true

# Multi-core regression gate: fresh GOMAXPROCS-pinned run diffed against
# the committed BENCH_multicore.json, parallel-variant speedup gate
# included (never waived, unlike a single-core run).
bench-multicore-check:
	GOMAXPROCS=$(MULTICORE_GOMAXPROCS) BENCH_SCALE=$(BENCH_SCALE) $(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchmem -benchtime=$(MULTICORE_BENCHTIME) -timeout 30m \
		$(BENCH_PKGS) > /tmp/bench_multicore.out
	GOMAXPROCS=$(MULTICORE_GOMAXPROCS) $(GO) run ./cmd/benchjson -compare BENCH_multicore.json \
		-tolerance $(MULTICORE_TOLERANCE) -alloc-tolerance $(BENCH_ALLOC_TOLERANCE) \
		-require-faster '$(MULTICORE_FASTER)' < /tmp/bench_multicore.out

# Scaled-down paper-experiment benches at the repo root.
bench-paper:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Serving benchmark: freshbench drives a spawned multi-tenant freshd with
# the deterministic mixed workload and writes BENCH_serving.json
# (per-endpoint p50/p95/p99, per-tenant p95s, 429/504/error rates,
# allocs/request). Refresh the committed baseline with this target after
# intended serving changes.
servebench:
	$(GO) run $(LDFLAGS) ./cmd/freshbench $(SERVEBENCH_ARGS) -out BENCH_serving.json

# Short freshbench passes: CI's compile-and-serve smoke gate. The second
# run benches through freshgate — two spawned backends behind the
# consistent-hash routing tier.
servebench-smoke:
	$(GO) run $(LDFLAGS) ./cmd/freshbench -spawn -duration 2s -rps 40 -tenants 2 > /dev/null
	$(GO) run $(LDFLAGS) ./cmd/freshbench -spawn -gate -duration 2s -rps 40 -tenants 2 > /dev/null

# Serving-regression gate: a fresh load run diffed against the committed
# BENCH_serving.json via the same benchjson -compare used for the solver
# benchmarks.
servebench-check:
	$(GO) run $(LDFLAGS) ./cmd/freshbench $(SERVEBENCH_ARGS) | \
		$(GO) run ./cmd/benchjson -compare BENCH_serving.json -tolerance $(SERVE_TOLERANCE)

# Tier-1 verification: everything CI runs.
verify: build vet test race
