GO ?= go

# Packages whose concurrency matters enough to gate on the race detector.
RACE_PKGS = ./internal/obs ./internal/selection ./internal/estimate

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Tier-1 verification: everything CI runs.
verify: build vet test race
