package gate

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"freshsource/internal/dataset"
	"freshsource/internal/serve"
)

// TestInProcessShardMap is the single-binary deployment mode end to end:
// two real freshd serving stacks as local backends behind one gate handler.
// A routed selection must be byte-identical to hitting the home backend
// directly — the gate adds routing, never content.
func TestInProcessShardMap(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two full serving stacks")
	}
	mk := func(seed int64) *serve.Server {
		cfg := dataset.DefaultBLConfig()
		cfg.Locations = 6
		cfg.Categories = 4
		cfg.NumSources = 8
		cfg.Horizon = 200
		cfg.T0 = 120
		cfg.Scale = 0.35
		cfg.Seed = seed
		d, err := dataset.GenerateBL(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := serve.New(d, serve.Config{MaxInflight: 16})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s0, s1 := mk(1), mk(7)
	defer s0.Close()
	defer s1.Close()

	p, err := NewPool([]*Backend{
		NewLocalBackend("shard-0", s0.Handler()),
		NewLocalBackend("shard-1", s1.Handler()),
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}

	home := map[string]http.Handler{"shard-0": s0.Handler(), "shard-1": s1.Handler()}
	direct := home[p.Rank("default")[0].Name()]

	const body = `{"algorithm":"greedy","future":4}`
	post := func(h http.Handler) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/select", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	want := post(direct)
	if want.Code != http.StatusOK {
		t.Fatalf("direct select: %d %s", want.Code, want.Body.String())
	}
	got := post(p.Handler())
	if got.Code != http.StatusOK {
		t.Fatalf("gated select: %d %s", got.Code, got.Body.String())
	}
	if got.Body.String() != want.Body.String() {
		t.Error("gated selection differs from the home backend's bytes")
	}

	// The gate's health probe understands freshd's /healthz.
	p.probeAll(context.Background())
	for _, b := range p.Backends() {
		if !b.Healthy() {
			t.Errorf("backend %s unhealthy after probing a live freshd stack", b.Name())
		}
	}
}
