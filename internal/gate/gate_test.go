package gate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"freshsource/internal/obs"
)

// echoHandler answers every request with its own name, the path and the
// tenant parameter — enough to verify routing decisions end to end.
func echoHandler(name string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"status":"ok","dataset":"ds-%s","generation":1}`, name)
			return
		}
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "%s|%s|%s|%s", name, r.URL.Path, r.URL.Query().Get("tenant"), body)
	})
}

func newLocalPool(t *testing.T, names ...string) *Pool {
	t.Helper()
	backends := make([]*Backend, len(names))
	for i, n := range names {
		backends[i] = NewLocalBackend(n, echoHandler(n))
	}
	p, err := NewPool(backends, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// TestRendezvousDeterministic: the rank order is a pure function of
// (tenant, backend set) — stable across pools built in any order.
func TestRendezvousDeterministic(t *testing.T) {
	a := newLocalPool(t, "b0", "b1", "b2", "b3")
	b := newLocalPool(t, "b3", "b1", "b0", "b2")
	for i := 0; i < 50; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		ra, rb := a.Rank(tenant), b.Rank(tenant)
		for k := range ra {
			if ra[k].Name() != rb[k].Name() {
				t.Fatalf("tenant %s: rank differs across pool construction order", tenant)
			}
		}
	}
}

// TestRendezvousMinimalMovement: removing one backend only moves the
// tenants that were homed on it; every other tenant keeps its backend.
func TestRendezvousMinimalMovement(t *testing.T) {
	full := newLocalPool(t, "b0", "b1", "b2", "b3")
	reduced := newLocalPool(t, "b0", "b1", "b3") // b2 removed
	moved, kept := 0, 0
	for i := 0; i < 200; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		home := full.Rank(tenant)[0].Name()
		after := reduced.Rank(tenant)[0].Name()
		if home == "b2" {
			moved++
			// Displaced tenants land on their second choice.
			if want := full.Rank(tenant)[1].Name(); after != want {
				t.Errorf("tenant %s: moved to %s, want next candidate %s", tenant, after, want)
			}
			continue
		}
		kept++
		if after != home {
			t.Errorf("tenant %s: moved %s -> %s though its backend survived", tenant, home, after)
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRoutingByTenant: requests for a tenant land on its rendezvous home,
// consistently, and the tenant parameter passes through untouched.
func TestRoutingByTenant(t *testing.T) {
	p := newLocalPool(t, "b0", "b1", "b2")
	for i := 0; i < 20; i++ {
		tenant := fmt.Sprintf("w%d", i)
		home := p.Rank(tenant)[0].Name()
		for rep := 0; rep < 3; rep++ {
			rec := get(t, p.Handler(), "/v1/sources?tenant="+tenant)
			if rec.Code != http.StatusOK {
				t.Fatalf("route %s: %d", tenant, rec.Code)
			}
			want := fmt.Sprintf("%s|/v1/sources|%s|", home, tenant)
			if rec.Body.String() != want {
				t.Fatalf("route %s: got %q want %q", tenant, rec.Body.String(), want)
			}
		}
	}
	// No tenant parameter: routed by the default tenant key.
	home := p.Rank("default")[0].Name()
	rec := get(t, p.Handler(), "/v1/sources")
	if want := home + "|/v1/sources||"; rec.Body.String() != want {
		t.Errorf("default route: got %q want %q", rec.Body.String(), want)
	}
}

// failingTransport always errors at the transport level (an unreachable
// backend).
type failingTransport struct{}

func (failingTransport) RoundTrip(*http.Request) (*http.Response, error) {
	return nil, errors.New("connection refused")
}

// TestFailover: a tenant whose home backend is unreachable is served by the
// next rendezvous candidate; the dead backend is marked down and the
// failover is counted.
func TestFailover(t *testing.T) {
	dead := NewLocalBackend("dead", nil)
	dead.rt = failingTransport{}
	live := NewLocalBackend("live", echoHandler("live"))
	p, err := NewPool([]*Backend{dead, live}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Find a tenant homed on the dead backend.
	tenant := ""
	for i := 0; i < 64; i++ {
		cand := fmt.Sprintf("w%d", i)
		if p.Rank(cand)[0].Name() == "dead" {
			tenant = cand
			break
		}
	}
	if tenant == "" {
		t.Fatal("no tenant hashed onto the dead backend")
	}

	f0 := obs.Active().Counter("gate.failovers").Value()
	rec := get(t, p.Handler(), "/v1/sources?tenant="+tenant)
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Body.String(), "live|") {
		t.Fatalf("failover: %d %q", rec.Code, rec.Body.String())
	}
	if got := obs.Active().Counter("gate.failovers").Value() - f0; got != 1 {
		t.Errorf("gate.failovers delta = %d, want 1", got)
	}
	if dead.Healthy() {
		t.Error("dead backend still marked healthy after a transport failure")
	}
	// Subsequent requests skip the dead backend entirely: no more failovers.
	f1 := obs.Active().Counter("gate.failovers").Value()
	get(t, p.Handler(), "/v1/sources?tenant="+tenant)
	if got := obs.Active().Counter("gate.failovers").Value() - f1; got != 0 {
		t.Errorf("failovers after down-marking = %d, want 0", got)
	}
}

// TestErrorStatusIsNotFailover: an HTTP error from a live backend is the
// answer, not a reason to shop the pool.
func TestErrorStatusIsNotFailover(t *testing.T) {
	notFound := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such tenant", http.StatusNotFound)
	})
	p, err := NewPool([]*Backend{
		NewLocalBackend("a", notFound),
		NewLocalBackend("b", notFound),
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f0 := obs.Active().Counter("gate.failovers").Value()
	rec := get(t, p.Handler(), "/v1/sources?tenant=x")
	if rec.Code != http.StatusNotFound {
		t.Errorf("got %d, want the backend's 404", rec.Code)
	}
	if got := obs.Active().Counter("gate.failovers").Value() - f0; got != 0 {
		t.Errorf("an HTTP error status caused %d failovers", got)
	}
}

// TestNoHealthyBackend: with the whole pool down the gate answers 503 and
// counts it.
func TestNoHealthyBackend(t *testing.T) {
	p := newLocalPool(t, "a", "b")
	for _, b := range p.backends {
		b.healthy.Store(false)
	}
	n0 := obs.Active().Counter("gate.no_backend").Value()
	rec := get(t, p.Handler(), "/v1/sources?tenant=x")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("got %d, want 503", rec.Code)
	}
	if got := obs.Active().Counter("gate.no_backend").Value() - n0; got != 1 {
		t.Errorf("gate.no_backend delta = %d, want 1", got)
	}
}

// TestHealthProbe: a probe sweep marks a 500-ing backend down and a
// recovered one back up, and the gate /healthz reflects the pool state.
func TestHealthProbe(t *testing.T) {
	healthy := true
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" || !healthy {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","dataset":"ds","generation":3,"tenants":{"default":{"generation":3}}}`)
	})
	p, err := NewPool([]*Backend{
		NewLocalBackend("flaky", flaky),
		NewLocalBackend("steady", echoHandler("steady")),
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}

	p.probeAll(context.Background())
	var hz struct {
		Status   string                    `json:"status"`
		Backends map[string]map[string]any `json:"backends"`
	}
	rec := get(t, p.Handler(), "/healthz")
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Backends["flaky"]["generation"] != float64(3) {
		t.Errorf("healthz after clean sweep: %+v", hz)
	}

	healthy = false
	p.probeAll(context.Background())
	rec = get(t, p.Handler(), "/healthz")
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" || hz.Backends["flaky"]["healthy"] != false {
		t.Errorf("healthz with flaky down: %+v", hz)
	}

	healthy = true
	p.probeAll(context.Background())
	if !p.backends[0].Healthy() {
		t.Error("recovered backend not marked back up")
	}
}

// TestRemoteBackendProxy exercises the remote (HTTP) transport path against
// a real listener, including body forwarding.
func TestRemoteBackendProxy(t *testing.T) {
	srv := httptest.NewServer(echoHandler("remote"))
	defer srv.Close()
	b, err := NewBackend(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool([]*Backend{b}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/select?tenant=q", strings.NewReader(`{"x":1}`))
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, req)
	if want := `remote|/v1/select|q|{"x":1}`; rec.Body.String() != want {
		t.Errorf("remote proxy: got %q want %q", rec.Body.String(), want)
	}

	p.probeAll(context.Background())
	if !b.Healthy() {
		t.Error("remote backend unhealthy after a good probe")
	}
}

// TestBackendValidation: malformed URLs and duplicate names are rejected.
func TestBackendValidation(t *testing.T) {
	if _, err := NewBackend("not a url"); err == nil {
		t.Error("malformed backend URL accepted")
	}
	if _, err := NewBackend("/just/a/path"); err == nil {
		t.Error("scheme-less backend URL accepted")
	}
	if _, err := NewPool(nil, Config{}); err == nil {
		t.Error("empty pool accepted")
	}
	_, err := NewPool([]*Backend{
		NewLocalBackend("x", nil), NewLocalBackend("x", nil),
	}, Config{})
	if err == nil {
		t.Error("duplicate backend name accepted")
	}
}
