package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"freshsource/internal/obs"
)

// handleProxy routes one request: rank the pool for the request's tenant,
// then walk the rank order until a backend answers. A transport failure
// marks the backend down (the probe loop brings it back) and fails over to
// the next candidate with the same buffered body; an HTTP-level error
// status from a live backend is NOT a failover — it is the answer (a 404
// for an unknown tenant or a 429 from a saturated backend must reach the
// client, not shop around the pool).
func (p *Pool) handleProxy(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	key := tenant
	if key == "" {
		key = p.cfg.DefaultTenant
	}
	obs.Counter("gate.requests").Inc()

	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				gateErr(w, http.StatusRequestEntityTooLarge,
					"request body exceeds %d bytes", tooBig.Limit)
				return
			}
			gateErr(w, http.StatusBadRequest, "reading request body: %v", err)
			return
		}
	}

	ctx, cancel := contextWithTimeout(r, p.cfg.RequestTimeout)
	defer cancel()

	tried := 0
	for _, b := range p.Rank(key) {
		if !b.healthy.Load() {
			continue
		}
		if tried > 0 {
			obs.Counter("gate.failovers").Inc()
		}
		tried++

		req, err := http.NewRequestWithContext(ctx, r.Method, b.base+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			gateErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := b.rt.RoundTrip(req)
		if err != nil {
			// Transport-level failure: the backend is unreachable. Mark it
			// down immediately (don't wait for the next probe sweep) and let
			// the next rendezvous candidate serve this tenant.
			p.setHealth(b, false)
			obs.Counter("gate.proxy_errors").Inc()
			if ctx.Err() != nil {
				gateErr(w, http.StatusGatewayTimeout, "gate deadline exceeded: %v", ctx.Err())
				return
			}
			continue
		}
		obs.Counter("gate.backend." + sanitize(b.name) + ".requests").Inc()
		copyResponse(w, resp)
		return
	}
	obs.Counter("gate.no_backend").Inc()
	gateErr(w, http.StatusServiceUnavailable, "no healthy backend for tenant %q", key)
}

// contextWithTimeout bounds the whole proxy attempt chain by d on top of
// the inbound request's own context.
func contextWithTimeout(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), d)
}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func gateErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleHealthz reports the gate's own pool view: per-backend health plus
// the identity metadata (generation, dataset, tenant set) from each
// backend's last successful probe. Status is "ok" with every backend up,
// "degraded" with some down, "down" with none.
func (p *Pool) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := 0
	backends := make(map[string]any, len(p.backends))
	for _, b := range p.backends {
		entry := map[string]any{"healthy": b.healthy.Load()}
		if b.healthy.Load() {
			up++
		}
		if probed := b.probed.Load(); probed != nil {
			for _, k := range []string{"dataset", "generation", "digest", "default_tenant", "tenants"} {
				if v, ok := (*probed)[k]; ok {
					entry[k] = v
				}
			}
		}
		backends[b.name] = entry
	}
	status := "ok"
	switch {
	case up == 0:
		status = "down"
	case up < len(p.backends):
		status = "degraded"
	}
	code := http.StatusOK
	if up == 0 {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":   status,
		"backends": backends,
	})
}

// handleMetrics exposes the gate's obs registry (gate.* plus the shared
// process gauges), Prometheus text by default, ?format=json for the raw
// snapshot — same contract as freshd's /metrics.
func (p *Pool) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := obs.Active()
	obs.CaptureRuntime(reg)
	snap := reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	snap.WritePrometheus(w)
}
