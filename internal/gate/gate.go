// Package gate is the freshgate routing tier: it fronts a pool of freshd
// backends and routes every request to a backend chosen by rendezvous
// (highest-random-weight) hashing over the request's tenant.
//
// Rendezvous hashing gives the two properties a sharded serving tier needs
// with no coordination state at all: every gate instance computes the same
// tenant→backend assignment from nothing but the backend list (so gates
// scale horizontally without a shared map), and removing a backend only
// moves the tenants that were on it (every other tenant keeps its warm
// model caches). The hash ranks *all* backends per tenant, so failover is
// simply "next candidate in rank order" — deterministic, and the tenant
// returns to its home backend as soon as it probes healthy again.
//
// Backends are either remote (a freshd base URL, proxied over HTTP) or
// local (an in-process http.Handler — the single-binary shard-map mode).
// Both run behind the same http.RoundTripper seam, so routing, health
// probing and failover are identical in either mode.
package gate

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"freshsource/internal/obs"
)

// Backend is one member of the routing pool: a stable name (its hashing
// identity), a transport to reach it, and the latest probed health state.
type Backend struct {
	name string
	base string // URL prefix for outbound requests ("" for local handlers)
	rt   http.RoundTripper

	healthy atomic.Bool
	// probed holds the last successful /healthz body (decoded), for the
	// gate's own health report; nil before the first successful probe.
	probed atomic.Pointer[map[string]any]
}

// NewBackend declares a remote freshd backend at baseURL (scheme + host,
// e.g. "http://10.0.0.7:8080"). The URL is its pool identity: hashing,
// metrics and the gate health report all key on it.
func NewBackend(baseURL string) (*Backend, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("gate: backend %q: need scheme://host", baseURL)
	}
	return &Backend{
		name: baseURL,
		base: strings.TrimRight(baseURL, "/"),
		rt:   http.DefaultTransport,
	}, nil
}

// NewLocalBackend declares an in-process backend: requests route straight
// into h with no network hop. This is the shard-map mode for single-binary
// deployments (and tests): several serve.Server instances behind one gate
// handler in one process.
func NewLocalBackend(name string, h http.Handler) *Backend {
	return &Backend{name: name, rt: handlerTransport{h}}
}

// Name returns the backend's pool identity.
func (b *Backend) Name() string { return b.name }

// Healthy reports the backend's last probed health state.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// handlerTransport adapts an http.Handler into a RoundTripper: the request
// is served into an in-memory recorder and its result returned as a
// response. It keeps local backends on the exact code path remote ones use.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, r)
	return rec.Result(), nil
}

// Config tunes a Pool. The zero value is serviceable.
type Config struct {
	// DefaultTenant is the tenant routed when a request carries no ?tenant=
	// parameter; it must name the backends' default tenant so the hash has
	// a stable key. Defaults to "default".
	DefaultTenant string

	// ProbeInterval is the health-check cadence per backend. Defaults to 1s.
	ProbeInterval time.Duration

	// ProbeTimeout bounds one /healthz probe. Defaults to 2s.
	ProbeTimeout time.Duration

	// RequestTimeout bounds one proxied request end to end (including
	// failover retries). Defaults to 60s — above freshd's own request
	// timeout, so the backend's 504 wins over the gate's.
	RequestTimeout time.Duration

	// MaxBodyBytes caps a request body buffered for failover replay.
	// Defaults to 1 MiB (freshd's own cap).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.DefaultTenant == "" {
		c.DefaultTenant = "default"
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Pool is a health-checked backend set with rendezvous routing.
type Pool struct {
	cfg      Config
	backends []*Backend
	mux      *http.ServeMux
}

// NewPool builds a pool over backends. Backends start healthy (optimistic:
// the first failed probe or proxy error marks them down; starting
// pessimistic would black-hole every tenant until the first probe sweep).
func NewPool(backends []*Backend, cfg Config) (*Pool, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("gate: empty backend pool")
	}
	seen := make(map[string]bool, len(backends))
	for _, b := range backends {
		if seen[b.name] {
			return nil, fmt.Errorf("gate: duplicate backend %q", b.name)
		}
		seen[b.name] = true
		b.healthy.Store(true)
	}
	obs.Enable()
	p := &Pool{cfg: cfg.withDefaults(), backends: backends}
	p.mux = http.NewServeMux()
	p.mux.Handle("/v1/", obs.Instrument("gate.proxy", http.HandlerFunc(p.handleProxy)))
	p.mux.Handle("/healthz", obs.Instrument("gate.healthz", http.HandlerFunc(p.handleHealthz)))
	p.mux.Handle("/metrics", obs.Instrument("gate.metrics", http.HandlerFunc(p.handleMetrics)))
	return p, nil
}

// Handler returns the gate's HTTP surface: /v1/* proxied by tenant,
// /healthz the gate's own pool report, /metrics the gate.* exposition.
func (p *Pool) Handler() http.Handler { return p.mux }

// Backends returns the pool members (for diagnostics and tests).
func (p *Pool) Backends() []*Backend { return append([]*Backend(nil), p.backends...) }

// score is the rendezvous weight of (tenant, backend): a 64-bit FNV-1a hash
// over both identities. Every gate instance computes identical scores, so
// identical routing, from the backend list alone.
func score(tenant, backend string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, tenant)
	h.Write([]byte{0})
	io.WriteString(h, backend)
	return h.Sum64()
}

// Rank returns all backends in rendezvous order for tenant: the first entry
// is the tenant's home backend, the rest are its failover chain. Ties (a
// 64-bit hash collision) break on name so the order stays total and
// deterministic.
func (p *Pool) Rank(tenant string) []*Backend {
	ranked := append([]*Backend(nil), p.backends...)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := score(tenant, ranked[i].name), score(tenant, ranked[j].name)
		if si != sj {
			return si > sj
		}
		return ranked[i].name < ranked[j].name
	})
	return ranked
}

// Start runs the health-probe loop until ctx is canceled: every
// ProbeInterval each backend's /healthz is fetched; a 200 (ok or degraded —
// a degraded backend still serves) marks it healthy, anything else marks it
// down. Probes run immediately on start so a dead backend is discovered
// within one sweep, not one interval.
func (p *Pool) Start(ctx context.Context) {
	p.probeAll(ctx)
	tick := time.NewTicker(p.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			p.probeAll(ctx)
		}
	}
}

func (p *Pool) probeAll(ctx context.Context) {
	for _, b := range p.backends {
		p.probe(ctx, b)
	}
}

func (p *Pool) probe(ctx context.Context, b *Backend) {
	pctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		p.setHealth(b, false)
		return
	}
	resp, err := b.rt.RoundTrip(req)
	if err != nil {
		p.setHealth(b, false)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		p.setHealth(b, false)
		return
	}
	var body map[string]any
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		p.setHealth(b, false)
		return
	}
	b.probed.Store(&body)
	p.setHealth(b, true)
}

func (p *Pool) setHealth(b *Backend, up bool) {
	was := b.healthy.Swap(up)
	v := 0.0
	if up {
		v = 1.0
	}
	obs.Gauge("gate.backend." + sanitize(b.name) + ".healthy").Set(v)
	if was && !up {
		obs.Counter("gate.backend_down").Inc()
	}
}

// sanitize maps a backend name onto the obs metric charset.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
