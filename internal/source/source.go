// Package source implements dynamic data sources as observers of the world
// (Definition 2 of the paper): a source covers a set of domain points and
// captures entity appearances, disappearances and value changes with some
// probability and some delay, exposing the result only at its scheduled
// update ticks (its update frequency fS).
//
// The generative model directly produces the phenomena the paper's
// motivating examples document: sources that update frequently but are
// ineffective at deleting stale data (low deletion-capture probability or
// long deletion delays → low freshness despite high update frequency,
// Example 1), and sources that report events with varying delays despite
// daily updates (Example 2).
package source

import (
	"errors"
	"fmt"
	"math"

	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// ID identifies a source within a catalog.
type ID int

// DelayModel samples the delay, in ticks, between a world change and the
// moment the source learns about it (before schedule alignment).
type DelayModel interface {
	// Sample draws a non-negative delay.
	Sample(g *stats.RNG) float64
	// Mean returns the expected delay, used for reporting.
	Mean() float64
}

// ConstantDelay always delays by D ticks.
type ConstantDelay struct{ D float64 }

// Sample implements DelayModel.
func (c ConstantDelay) Sample(*stats.RNG) float64 { return c.D }

// Mean implements DelayModel.
func (c ConstantDelay) Mean() float64 { return c.D }

// ExponentialDelay delays by an exponential variate with the given rate
// (mean 1/Rate ticks).
type ExponentialDelay struct{ Rate float64 }

// Sample implements DelayModel.
func (e ExponentialDelay) Sample(g *stats.RNG) float64 { return g.Exponential(e.Rate) }

// Mean implements DelayModel.
func (e ExponentialDelay) Mean() float64 { return 1 / e.Rate }

// LogNormalDelay delays by a log-normal variate; it models sources with a
// typical short delay but an occasional very long tail.
type LogNormalDelay struct{ Mu, Sigma float64 }

// Sample implements DelayModel.
func (l LogNormalDelay) Sample(g *stats.RNG) float64 { return g.LogNormal(l.Mu, l.Sigma) }

// Mean implements DelayModel.
func (l LogNormalDelay) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// CaptureSpec describes how effectively a source captures one kind of world
// change: the probability it ever captures such a change, and the delay
// with which it does.
type CaptureSpec struct {
	// Prob is the probability the change is ever captured. 1-Prob of the
	// changes are permanently missed — this produces the sub-1 plateaus of
	// the Kaplan–Meier effectiveness distributions (Figure 7).
	Prob float64
	// Delay is the capture-delay model; it may be nil when Prob is 0.
	Delay DelayModel
}

func (c CaptureSpec) validate(what string) error {
	if c.Prob < 0 || c.Prob > 1 {
		return fmt.Errorf("source: %s capture probability %v out of [0,1]", what, c.Prob)
	}
	if c.Prob > 0 && c.Delay == nil {
		return fmt.Errorf("source: %s capture needs a delay model", what)
	}
	return nil
}

// Spec is the generative description of one source.
type Spec struct {
	Name string
	// UpdateInterval is the number of ticks between the source's content
	// refreshes: the source's update frequency is fS = 1/UpdateInterval.
	UpdateInterval timeline.Tick
	// Phase shifts the source's update schedule: updates happen at ticks
	// Phase, Phase+UpdateInterval, Phase+2·UpdateInterval, …
	Phase timeline.Tick
	// Points are the domain points the source observes. Entities outside
	// are never mentioned by the source.
	Points []world.DomainPoint
	// Insert, Delete, Update describe the source's effectiveness at
	// capturing the three kinds of world changes.
	Insert CaptureSpec
	Delete CaptureSpec
	Update CaptureSpec
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.UpdateInterval <= 0 {
		return errors.New("source: UpdateInterval must be positive")
	}
	if s.Phase < 0 || s.Phase >= s.UpdateInterval {
		return errors.New("source: Phase must be in [0, UpdateInterval)")
	}
	if len(s.Points) == 0 {
		return errors.New("source: no observed domain points")
	}
	if err := s.Insert.validate("insert"); err != nil {
		return err
	}
	if err := s.Delete.validate("delete"); err != nil {
		return err
	}
	return s.Update.validate("update")
}

// Source is a materialised source: its capture log over the simulated
// window, derived from a world under a Spec.
type Source struct {
	id   ID
	spec Spec
	log  *timeline.Log
	// horizon is the exclusive end of the observation window.
	horizon timeline.Tick
}

// AlignUp returns the first scheduled update tick of the schedule
// (phase, interval) at or after t — the earliest moment a change known at t
// becomes visible in the source's content. This is the discrete counterpart
// of the paper's TS(t) alignment (Eq. 8): TS(t) is the latest update at or
// before t, and a change occurring at raw time r surfaces at the next
// scheduled update ≥ r.
func AlignUp(t timeline.Tick, interval, phase timeline.Tick) timeline.Tick {
	if interval <= 0 {
		panic("source: non-positive interval")
	}
	if t <= phase {
		return phase
	}
	k := (t - phase + interval - 1) / interval
	return phase + k*interval
}

// LastUpdateAt returns the latest scheduled update tick at or before t —
// the paper's TS(t). The boolean is false when the schedule has not fired
// yet by t.
func LastUpdateAt(t timeline.Tick, interval, phase timeline.Tick) (timeline.Tick, bool) {
	if interval <= 0 {
		panic("source: non-positive interval")
	}
	if t < phase {
		return 0, false
	}
	k := (t - phase) / interval
	return phase + k*interval, true
}

// FromLog reconstructs a source from its spec and a previously captured
// event log — the loading path for persisted or externally-supplied
// corpora. Events must lie in [0, horizon).
func FromLog(id ID, spec Spec, horizon timeline.Tick, events []timeline.Event) (*Source, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, errors.New("source: non-positive horizon")
	}
	s := &Source{id: id, spec: spec, log: timeline.NewLog(), horizon: horizon}
	for _, e := range events {
		if e.At < 0 || e.At >= horizon {
			return nil, fmt.Errorf("source: event at tick %d outside [0,%d)", e.At, horizon)
		}
		s.log.Append(e)
	}
	return s, nil
}

// Observe simulates a source observing the world w over [0, w.Horizon()).
// Events the source captures after the horizon are simply absent from the
// log (they are the right-censored observations the profilers must handle).
func Observe(w *world.World, id ID, spec Spec, g *stats.RNG) (*Source, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := &Source{id: id, spec: spec, log: timeline.NewLog(), horizon: w.Horizon()}
	covered := make(map[world.DomainPoint]bool, len(spec.Points))
	for _, p := range spec.Points {
		covered[p] = true
	}
	for _, e := range w.Entities() {
		if !covered[e.Point] {
			continue
		}
		s.observeEntity(&e, g)
	}
	return s, nil
}

// observeEntity rolls the capture dice for one entity's life cycle. The
// insertion probability scales with the entity's visibility, so
// hard-to-find entities are missed by every source — the cross-source
// correlation real corpora exhibit.
func (s *Source) observeEntity(e *world.Entity, g *stats.RNG) {
	spec := s.spec
	if !g.Bernoulli(spec.Insert.Prob * e.Visibility) {
		return // the source permanently misses this entity
	}
	ins := s.align(e.Born, spec.Insert.Delay.Sample(g))
	if ins >= s.horizon {
		return // captured only after the simulated window: censored
	}
	s.log.Append(timeline.Event{Entity: e.ID, Kind: timeline.Appear, At: ins})

	// Value changes: each world update is captured independently; the
	// source cannot reflect a change before it has inserted the entity.
	for v, u := range e.Updates {
		if !g.Bernoulli(spec.Update.Prob) {
			continue
		}
		cap := s.align(u, spec.Update.Delay.Sample(g))
		if cap < ins {
			cap = ins
		}
		if cap >= s.horizon {
			continue
		}
		s.log.Append(timeline.Event{Entity: e.ID, Kind: timeline.Update, At: cap, Version: v + 1})
	}

	// Disappearance: when missed, the stale entry persists forever (the
	// non-deleted entries of Section 3).
	if e.Died >= 0 && g.Bernoulli(spec.Delete.Prob) {
		cap := s.align(e.Died, spec.Delete.Delay.Sample(g))
		if cap < ins {
			cap = ins
		}
		if cap < s.horizon {
			s.log.Append(timeline.Event{Entity: e.ID, Kind: timeline.Disappear, At: cap, Version: len(e.Updates)})
		}
	}
}

// align converts a world-change tick plus a sampled delay into the tick at
// which the change surfaces in the source's content. Sub-tick delays floor
// to the same tick: a change learned within the day appears in that day's
// snapshot (before alignment to the source's update schedule).
func (s *Source) align(at timeline.Tick, delay float64) timeline.Tick {
	known := at + timeline.Tick(math.Floor(delay))
	return AlignUp(known, s.spec.UpdateInterval, s.spec.Phase)
}

// ID returns the source's identifier.
func (s *Source) ID() ID { return s.id }

// Name returns the source's display name.
func (s *Source) Name() string { return s.spec.Name }

// Spec returns the source's generative spec.
func (s *Source) Spec() Spec { return s.spec }

// Log returns the source's capture log. The log is owned by the source.
func (s *Source) Log() *timeline.Log { return s.log }

// Horizon returns the exclusive end of the source's observation window.
func (s *Source) Horizon() timeline.Tick { return s.horizon }

// UpdateInterval returns the source's scheduled update interval (1/fS).
func (s *Source) UpdateInterval() timeline.Tick { return s.spec.UpdateInterval }

// SnapshotAt materialises the source's content at tick t.
func (s *Source) SnapshotAt(t timeline.Tick) *timeline.Snapshot {
	return timeline.Materialize(s.log, t)
}

// Downsample returns a derived source whose updates are acquired at 1/div
// of the original frequency: every captured change is re-aligned to the
// coarser schedule with interval div·UpdateInterval. This implements the
// "varying update frequencies" acquisition of Definition 4 and the
// half-frequency timelines of Figures 1(c) and 1(f). Changes that fall past
// the horizon after re-alignment are dropped (not yet acquired).
func (s *Source) Downsample(div int) (*Source, error) {
	if div < 1 {
		return nil, errors.New("source: downsample divisor must be >= 1")
	}
	if div == 1 {
		return s, nil
	}
	spec := s.spec
	spec.UpdateInterval = s.spec.UpdateInterval * timeline.Tick(div)
	spec.Name = fmt.Sprintf("%s/%d", s.spec.Name, div)
	out := &Source{id: s.id, spec: spec, log: timeline.NewLog(), horizon: s.horizon}
	// Track per-entity insertion tick under the coarse schedule so the
	// clamping invariant (no change visible before insertion) is preserved.
	insAt := make(map[timeline.EntityID]timeline.Tick)
	for _, e := range s.log.Events() {
		at := AlignUp(e.At, spec.UpdateInterval, spec.Phase)
		switch e.Kind {
		case timeline.Appear:
			if at < s.horizon {
				insAt[e.Entity] = at
				out.log.Append(timeline.Event{Entity: e.Entity, Kind: e.Kind, At: at, Version: e.Version})
			}
		default:
			ins, ok := insAt[e.Entity]
			if !ok {
				continue
			}
			if at < ins {
				at = ins
			}
			if at < s.horizon {
				out.log.Append(timeline.Event{Entity: e.Entity, Kind: e.Kind, At: at, Version: e.Version})
			}
		}
	}
	return out, nil
}

// Truncate returns a derived source whose capture log only contains events
// at or after the given tick — the view an integrator has of a source that
// appeared at that tick (the cold-start scenario of the paper's future
// work).
func (s *Source) Truncate(after timeline.Tick) *Source {
	out := &Source{id: s.id, spec: s.spec, log: timeline.NewLog(), horizon: s.horizon}
	for _, e := range s.log.Events() {
		if e.At >= after {
			out.log.Append(e)
		}
	}
	return out
}

// Restrict returns a derived micro-source containing only the entities of
// the given domain points — the "slice" elemental sources of Definition 5.
// The world is needed to map entities to domain points.
func (s *Source) Restrict(w *world.World, pts []world.DomainPoint, name string) *Source {
	keep := make(map[world.DomainPoint]bool, len(pts))
	for _, p := range pts {
		keep[p] = true
	}
	spec := s.spec
	spec.Points = append([]world.DomainPoint(nil), pts...)
	spec.Name = name
	out := &Source{id: s.id, spec: spec, log: timeline.NewLog(), horizon: s.horizon}
	for _, e := range s.log.Events() {
		if keep[w.Entity(e.Entity).Point] {
			out.log.Append(e)
		}
	}
	return out
}
