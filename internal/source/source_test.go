package source

import (
	"testing"

	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

func testWorld(t *testing.T) *world.World {
	t.Helper()
	w, err := world.Generate(world.Config{
		Subdomains: []world.SubdomainSpec{
			{Point: world.DomainPoint{Location: 0, Category: 0}, InitialEntities: 300, LambdaAppear: 2, GammaDisappear: 0.01, GammaUpdate: 0.03},
			{Point: world.DomainPoint{Location: 1, Category: 0}, InitialEntities: 200, LambdaAppear: 1, GammaDisappear: 0.01, GammaUpdate: 0.03},
		},
		Horizon: 200,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func perfectSpec(pts []world.DomainPoint) Spec {
	return Spec{
		Name:           "perfect",
		UpdateInterval: 1,
		Points:         pts,
		Insert:         CaptureSpec{Prob: 1, Delay: ConstantDelay{0}},
		Delete:         CaptureSpec{Prob: 1, Delay: ConstantDelay{0}},
		Update:         CaptureSpec{Prob: 1, Delay: ConstantDelay{0}},
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct {
		t, interval, phase, want timeline.Tick
	}{
		{0, 7, 0, 0}, {1, 7, 0, 7}, {7, 7, 0, 7}, {8, 7, 0, 14},
		{0, 7, 3, 3}, {3, 7, 3, 3}, {4, 7, 3, 10}, {10, 7, 3, 10}, {11, 7, 3, 17},
		{5, 1, 0, 5},
	}
	for _, c := range cases {
		if got := AlignUp(c.t, c.interval, c.phase); got != c.want {
			t.Errorf("AlignUp(%d,%d,%d) = %d, want %d", c.t, c.interval, c.phase, got, c.want)
		}
	}
}

func TestLastUpdateAt(t *testing.T) {
	if _, ok := LastUpdateAt(2, 7, 3); ok {
		t.Error("schedule has not fired before phase")
	}
	if got, ok := LastUpdateAt(3, 7, 3); !ok || got != 3 {
		t.Errorf("LastUpdateAt(3) = %d,%v", got, ok)
	}
	if got, ok := LastUpdateAt(9, 7, 3); !ok || got != 3 {
		t.Errorf("LastUpdateAt(9) = %d,%v", got, ok)
	}
	if got, ok := LastUpdateAt(10, 7, 3); !ok || got != 10 {
		t.Errorf("LastUpdateAt(10) = %d,%v", got, ok)
	}
}

func TestSpecValidation(t *testing.T) {
	pts := []world.DomainPoint{{Location: 0, Category: 0}}
	bad := []Spec{
		{UpdateInterval: 0, Points: pts, Insert: CaptureSpec{Prob: 1, Delay: ConstantDelay{0}}},
		{UpdateInterval: 5, Phase: 5, Points: pts, Insert: CaptureSpec{Prob: 1, Delay: ConstantDelay{0}}},
		{UpdateInterval: 1, Points: nil, Insert: CaptureSpec{Prob: 1, Delay: ConstantDelay{0}}},
		{UpdateInterval: 1, Points: pts, Insert: CaptureSpec{Prob: 2, Delay: ConstantDelay{0}}},
		{UpdateInterval: 1, Points: pts, Insert: CaptureSpec{Prob: 0.5}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
	if err := perfectSpec(pts).Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestPerfectSourceMirrorsWorld(t *testing.T) {
	w := testWorld(t)
	src, err := Observe(w, 0, perfectSpec(w.Points()), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// A perfect daily source's snapshot must equal the world's at every
	// sampled tick.
	for _, at := range []timeline.Tick{0, 50, 120, 199} {
		ws := timeline.Materialize(w.Log(), at)
		ss := src.SnapshotAt(at)
		if ws.Size() != ss.Size() {
			t.Fatalf("tick %d: source %d entities, world %d", at, ss.Size(), ws.Size())
		}
		for id, st := range ws.States {
			got, ok := ss.States[id]
			if !ok || got.Version != st.Version {
				t.Fatalf("tick %d entity %d: source %+v, world %+v", at, got, id, st)
			}
		}
	}
}

func TestDelayedSourceLagsWorld(t *testing.T) {
	w := testWorld(t)
	spec := perfectSpec(w.Points())
	spec.Insert.Delay = ConstantDelay{10}
	src, err := Observe(w, 0, spec, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range src.Log().Events() {
		if e.Kind == timeline.Appear {
			born := w.Entity(e.Entity).Born
			if e.At < born+10 {
				t.Fatalf("entity %d inserted at %d, born %d, delay 10 violated", e.Entity, e.At, born)
			}
		}
	}
}

func TestCaptureProbabilityZeroMeansEmpty(t *testing.T) {
	w := testWorld(t)
	spec := perfectSpec(w.Points())
	spec.Insert = CaptureSpec{Prob: 0}
	src, err := Observe(w, 0, spec, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if src.Log().Len() != 0 {
		t.Errorf("source with zero insert probability has %d events", src.Log().Len())
	}
}

func TestMissedDeletionsLeaveStaleEntries(t *testing.T) {
	w := testWorld(t)
	spec := perfectSpec(w.Points())
	spec.Delete = CaptureSpec{Prob: 0}
	src, err := Observe(w, 0, spec, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	at := w.Horizon() - 1
	snap := src.SnapshotAt(at)
	stale := 0
	for id := range snap.States {
		if !w.Entity(id).Alive(at) {
			stale++
		}
	}
	if stale == 0 {
		t.Error("expected stale non-deleted entries when deletions are never captured")
	}
}

func TestScheduleAlignment(t *testing.T) {
	w := testWorld(t)
	spec := perfectSpec(w.Points())
	spec.UpdateInterval = 7
	spec.Phase = 2
	src, err := Observe(w, 0, spec, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if src.Log().Len() == 0 {
		t.Fatal("empty log")
	}
	for _, e := range src.Log().Events() {
		if (e.At-2)%7 != 0 {
			t.Fatalf("event at %d not on schedule (interval 7, phase 2)", e.At)
		}
	}
}

func TestSourceNeverAheadOfWorld(t *testing.T) {
	// Invariant: a source can never reflect a version before the world
	// reached it, and never shows an entity before its insertion capture.
	w := testWorld(t)
	spec := perfectSpec(w.Points())
	spec.Insert.Delay = ExponentialDelay{Rate: 0.2}
	spec.Update.Delay = ExponentialDelay{Rate: 0.1}
	spec.Delete.Delay = ExponentialDelay{Rate: 0.3}
	spec.Insert.Prob, spec.Update.Prob, spec.Delete.Prob = 0.9, 0.7, 0.6
	src, err := Observe(w, 0, spec, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range src.Log().Events() {
		ent := w.Entity(e.Entity)
		switch e.Kind {
		case timeline.Appear:
			if e.At < ent.Born {
				t.Fatalf("insertion before birth: %+v", e)
			}
		case timeline.Update:
			if e.Version < 1 || e.Version > len(ent.Updates) {
				t.Fatalf("bogus version: %+v", e)
			}
			if e.At < ent.Updates[e.Version-1] {
				t.Fatalf("update reflected before it happened: %+v", e)
			}
		case timeline.Disappear:
			if e.At < ent.Died {
				t.Fatalf("deletion before death: %+v", e)
			}
		}
	}
}

func TestDownsampleCoarsensSchedule(t *testing.T) {
	w := testWorld(t)
	src, err := Observe(w, 0, perfectSpec(w.Points()), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	down, err := src.Downsample(5)
	if err != nil {
		t.Fatal(err)
	}
	if down.UpdateInterval() != 5 {
		t.Errorf("downsampled interval = %d", down.UpdateInterval())
	}
	for _, e := range down.Log().Events() {
		if e.At%5 != 0 {
			t.Fatalf("downsampled event at %d not on coarse schedule", e.At)
		}
	}
	// Downsampling can only delay content: at any tick the coarse source's
	// up-to-date view lags the fine one.
	if down.Log().Len() > src.Log().Len() {
		t.Error("downsampling added events")
	}
	// div=1 is the identity.
	same, err := src.Downsample(1)
	if err != nil || same != src {
		t.Error("Downsample(1) should return the receiver")
	}
	if _, err := src.Downsample(0); err == nil {
		t.Error("want error for divisor 0")
	}
}

func TestDownsampleCoverageNotHigher(t *testing.T) {
	w := testWorld(t)
	src, err := Observe(w, 0, perfectSpec(w.Points()), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	down, err := src.Downsample(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []timeline.Tick{10, 60, 150} {
		fine, coarse := src.SnapshotAt(at), down.SnapshotAt(at)
		for id, st := range coarse.States {
			fs, ok := fine.States[id]
			if !ok {
				// Legal only when the fine source already deleted the
				// entity and the coarse re-alignment pushed the deletion
				// past this tick.
				deleted := false
				for _, e := range src.Log().Events() {
					if e.Entity == id && e.Kind == timeline.Disappear && e.At <= at {
						deleted = true
						break
					}
				}
				if !deleted {
					t.Fatalf("tick %d: entity %d in coarse but not fine source without a fine deletion", at, id)
				}
				continue
			}
			if st.Version > fs.Version {
				t.Fatalf("tick %d: coarse version %d ahead of fine %d", at, st.Version, fs.Version)
			}
		}
	}
}

func TestRestrictSlices(t *testing.T) {
	w := testWorld(t)
	src, err := Observe(w, 0, perfectSpec(w.Points()), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	p := world.DomainPoint{Location: 0, Category: 0}
	micro := src.Restrict(w, []world.DomainPoint{p}, "micro")
	if micro.Name() != "micro" {
		t.Errorf("name = %q", micro.Name())
	}
	for _, e := range micro.Log().Events() {
		if w.Entity(e.Entity).Point != p {
			t.Fatalf("restricted source has entity from %v", w.Entity(e.Entity).Point)
		}
	}
	// The slice plus its complement partition the original log.
	other := src.Restrict(w, []world.DomainPoint{{Location: 1, Category: 0}}, "rest")
	if micro.Log().Len()+other.Log().Len() != src.Log().Len() {
		t.Error("slices do not partition the log")
	}
}

func TestDelayModelMeans(t *testing.T) {
	if (ConstantDelay{3}).Mean() != 3 {
		t.Error("ConstantDelay mean")
	}
	if (ExponentialDelay{Rate: 0.5}).Mean() != 2 {
		t.Error("ExponentialDelay mean")
	}
	g := stats.NewRNG(3)
	ln := LogNormalDelay{Mu: 0, Sigma: 0.5}
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += ln.Sample(g)
	}
	if got, want := sum/n, ln.Mean(); got < want*0.95 || got > want*1.05 {
		t.Errorf("LogNormal sample mean %v vs analytic %v", got, want)
	}
}

func TestObserveRejectsBadSpec(t *testing.T) {
	w := testWorld(t)
	if _, err := Observe(w, 0, Spec{}, stats.NewRNG(1)); err == nil {
		t.Error("want validation error")
	}
}
