// Package ingest is the streaming-ingestion pipeline in front of the
// serving tier's generation swap: an append-only observation log plus
// epoch-based incremental refit.
//
// Observations are source capture events — (source, entity, kind, tick,
// version) — buffered as they arrive (POST /v1/observe upstream) and
// committed in epochs. A committed epoch advances the training cut to its
// watermark (the largest tick it contains), appends one durable framed
// record to the epoch log, folds the delta into the per-source sufficient
// statistics (estimate.Accumulator), and refits the estimator — exactly,
// never approximately: the refit is byte-identical to a cold fit over
// snapshot+log, pinned by TestStreamingRefitEquivalence.
//
// The epoch log is length-prefixed + CRC framed. Recovery replays committed
// epochs in order, truncates a torn tail (a crash mid-append leaves a
// partial frame; everything before it is intact), skips byte-identical
// re-deliveries of an already committed epoch, and fails loudly on
// sequence gaps and on duplicate sequence numbers with differing payloads
// — a gap means lost data and a conflicting duplicate means a producer
// wrote two different epochs under one number; neither is a torn write.
package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"freshsource/internal/faults"
	"freshsource/internal/obs"
	"freshsource/internal/timeline"
)

// logName is the epoch log's file name inside the ingest directory.
const logName = "epochs.log"

// logMagic identifies the file format; a mismatch is corruption of the
// header, which recovery treats as fatal (unlike a torn tail).
var logMagic = []byte("FSEPOCH1")

// maxFrame bounds a frame payload; a length prefix beyond it is treated as
// a torn/corrupt tail rather than attempted as an allocation.
const maxFrame = 1 << 28

// MaxEpochObservations is the largest observation count one epoch frame
// can carry while its payload stays within maxFrame. Append rejects larger
// records and the ingester clamps its pending bound to it — otherwise a
// fsync'd committed epoch would decode as a torn tail on recovery and
// silently vanish.
const MaxEpochObservations = (maxFrame - epochHeaderSize) / obsSize

// Observation is one streamed source capture event.
type Observation struct {
	// Source indexes the dataset's source list.
	Source int
	// Event is the captured change (entity, kind, tick, version).
	Event timeline.Event
}

// EpochRecord is one committed epoch: a strictly increasing sequence
// number, the watermark the training cut advanced to, and the accepted
// observations, sorted by (tick, entity, kind, version, source).
type EpochRecord struct {
	Seq       uint64
	Watermark timeline.Tick
	Events    []Observation
}

// Log is the append-only durable epoch log.
type Log struct {
	f    *os.File
	path string
	// Replayed counts duplicate/replayed epoch frames skipped during
	// recovery; Truncated reports whether a torn tail was cut off.
	Replayed  int
	Truncated bool
}

// OpenLog opens (creating if needed) the epoch log in dir, recovers its
// committed epochs and positions the file for appending. A torn tail —
// short frame, bad CRC, undecodable payload — is truncated; frames that
// byte-identically re-deliver an already committed sequence number are
// skipped as replays; a forward sequence gap, or a duplicate sequence
// number with a different payload, is an error.
func OpenLog(dir string) (*Log, []EpochRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("ingest: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: %w", err)
	}
	l := &Log{f: f, path: path}
	recs, err := l.recover()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return l, recs, nil
}

func (l *Log) recover() ([]EpochRecord, error) {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return nil, fmt.Errorf("ingest: reading %s: %w", l.path, err)
	}
	if len(data) == 0 {
		if _, err := l.f.Write(logMagic); err != nil {
			return nil, fmt.Errorf("ingest: writing header: %w", err)
		}
		return nil, l.f.Sync()
	}
	if len(data) < len(logMagic) || string(data[:len(logMagic)]) != string(logMagic) {
		return nil, fmt.Errorf("ingest: %s: bad magic (not an epoch log)", l.path)
	}

	var recs []EpochRecord
	var lastSeq uint64
	var sums []uint32 // CRC per committed seq (1-based), to vet duplicates
	good := int64(len(logMagic))
	buf := data[len(logMagic):]
	torn := false
	for len(buf) > 0 {
		if len(buf) < 8 {
			torn = true
			break
		}
		n := binary.LittleEndian.Uint32(buf[0:4])
		sum := binary.LittleEndian.Uint32(buf[4:8])
		if n > maxFrame || len(buf) < 8+int(n) {
			torn = true
			break
		}
		payload, err := faults.Read("ingest.read", buf[8:8+int(n)])
		if err != nil || crc32.ChecksumIEEE(payload) != sum {
			torn = true
			break
		}
		rec, err := decodeEpoch(payload)
		if err != nil {
			torn = true
			break
		}
		good += int64(8 + n)
		buf = buf[8+int(n):]
		if rec.Seq <= lastSeq {
			// An already committed sequence number. A byte-identical frame
			// is a replay — an external producer re-sent a committed epoch;
			// the data is already folded in, so skip it but keep the frame.
			// A differing payload is NOT a replay: keeping only the first
			// frame would silently drop the observations in the others, so
			// recovery treats it as corruption.
			if rec.Seq == 0 || sum != sums[rec.Seq-1] {
				return nil, fmt.Errorf("ingest: %s: epoch %d appears twice with different payloads", l.path, rec.Seq)
			}
			l.Replayed++
			obs.Counter("ingest.log.replayed").Inc()
			continue
		}
		if rec.Seq != lastSeq+1 {
			return nil, fmt.Errorf("ingest: %s: epoch gap: %d -> %d", l.path, lastSeq, rec.Seq)
		}
		lastSeq = rec.Seq
		sums = append(sums, sum)
		recs = append(recs, rec)
	}
	if torn {
		l.Truncated = true
		obs.Counter("ingest.log.truncated").Inc()
		if err := l.f.Truncate(good); err != nil {
			return nil, fmt.Errorf("ingest: truncating torn tail of %s: %w", l.path, err)
		}
	}
	if _, err := l.f.Seek(good, io.SeekStart); err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	return recs, nil
}

// Append writes one epoch frame and syncs. The frame is written with a
// single Write call, so a crash mid-append leaves at most one torn tail
// frame for recovery to truncate. A record beyond MaxEpochObservations is
// rejected before anything is written: its frame would exceed maxFrame,
// which recovery classifies as a torn tail and truncates — a committed,
// fsync'd epoch must never be encodable into an unrecoverable frame.
func (l *Log) Append(rec EpochRecord) error {
	if len(rec.Events) > MaxEpochObservations {
		return fmt.Errorf("ingest: epoch %d: %d observations exceed the %d frame bound", rec.Seq, len(rec.Events), MaxEpochObservations)
	}
	payload := encodeEpoch(rec)
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("ingest: appending epoch %d: %w", rec.Seq, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ingest: syncing epoch %d: %w", rec.Seq, err)
	}
	obs.Counter("ingest.log.appends").Inc()
	return nil
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }

// Epoch payload layout (little-endian):
//
//	seq u64 | watermark i64 | count u32 |
//	count × { source u32 | entity u64 | at i64 | version u32 | kind u8 }
const (
	epochHeaderSize = 8 + 8 + 4
	obsSize         = 4 + 8 + 8 + 4 + 1
)

func encodeEpoch(rec EpochRecord) []byte {
	buf := make([]byte, 8+8+4+obsSize*len(rec.Events))
	binary.LittleEndian.PutUint64(buf[0:8], rec.Seq)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(rec.Watermark))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(rec.Events)))
	off := 20
	for _, o := range rec.Events {
		binary.LittleEndian.PutUint32(buf[off:], uint32(o.Source))
		binary.LittleEndian.PutUint64(buf[off+4:], uint64(o.Event.Entity))
		binary.LittleEndian.PutUint64(buf[off+12:], uint64(o.Event.At))
		binary.LittleEndian.PutUint32(buf[off+20:], uint32(o.Event.Version))
		buf[off+24] = byte(o.Event.Kind)
		off += obsSize
	}
	return buf
}

func decodeEpoch(payload []byte) (EpochRecord, error) {
	if len(payload) < 20 {
		return EpochRecord{}, fmt.Errorf("ingest: epoch payload too short: %d bytes", len(payload))
	}
	rec := EpochRecord{
		Seq:       binary.LittleEndian.Uint64(payload[0:8]),
		Watermark: timeline.Tick(binary.LittleEndian.Uint64(payload[8:16])),
	}
	count := binary.LittleEndian.Uint32(payload[16:20])
	if int64(len(payload)) != 20+int64(count)*obsSize {
		return EpochRecord{}, fmt.Errorf("ingest: epoch payload length %d does not match count %d", len(payload), count)
	}
	if count == 0 {
		return rec, nil
	}
	rec.Events = make([]Observation, count)
	off := 20
	for i := range rec.Events {
		rec.Events[i] = Observation{
			Source: int(int32(binary.LittleEndian.Uint32(payload[off:]))),
			Event: timeline.Event{
				Entity:  timeline.EntityID(binary.LittleEndian.Uint64(payload[off+4:])),
				At:      timeline.Tick(binary.LittleEndian.Uint64(payload[off+12:])),
				Version: int(int32(binary.LittleEndian.Uint32(payload[off+20:]))),
				Kind:    timeline.EventKind(payload[off+24]),
			},
		}
		off += obsSize
	}
	return rec, nil
}
