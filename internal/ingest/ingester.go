package ingest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"freshsource/internal/dataset"
	"freshsource/internal/estimate"
	"freshsource/internal/faults"
	"freshsource/internal/obs"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
)

// ErrBackpressure reports that the pending-observation buffer hit its
// configured bound; the caller should shed load (HTTP 429) until the next
// epoch commit drains it.
var ErrBackpressure = errors.New("ingest: pending observations exceed max lag")

// StaleError reports an observation at or behind the committed (or sealed)
// watermark. An epoch commit seals every tick up to its watermark — late
// arrivals must be rejected on both the incremental and the cold path, or
// the two would diverge.
type StaleError struct {
	At        timeline.Tick
	Watermark timeline.Tick
}

func (e *StaleError) Error() string {
	return fmt.Sprintf("ingest: observation at tick %d not after watermark %d", e.At, e.Watermark)
}

// Config tunes an Ingester.
type Config struct {
	// Dir is the durable epoch-log directory; "" keeps epochs in memory
	// only (still exact, just not crash-recoverable).
	Dir string
	// MaxPending bounds buffered (uncommitted) observations; Submit returns
	// ErrBackpressure beyond it. 0 means DefaultMaxPending; values above
	// MaxEpochObservations are clamped to it, so a sealed epoch always
	// encodes a frame the log can durably carry.
	MaxPending int
	// FitWorkers bounds the refit worker pool (0 = GOMAXPROCS).
	FitWorkers int
}

// DefaultMaxPending is the pending-buffer bound when Config.MaxPending is 0.
const DefaultMaxPending = 65536

// Epoch is the outcome of a successful Commit: the refit estimator at the
// new cut plus the extended sources, ready to be wrapped into a serving
// generation. The caller confirms the publish with Ack(Seq); until then the
// committed state stays dirty and the next Commit re-derives an identical
// epoch.
type Epoch struct {
	Seq          uint64
	Watermark    timeline.Tick
	Observations int
	Est          *estimate.Estimator
	Sources      []*source.Source
}

// Ingester buffers streamed observations and turns them into committed
// epochs: seal → durable append → fold into the incremental accumulator →
// exact refit. All methods are safe for concurrent use; commits serialize
// on their own lock and hold the fast-path lock only to seal the batch and
// record bookkeeping, so Submit and the status accessors stay responsive
// while an epoch refits.
//
// Failure semantics mirror the serving tier's last-good rule, keyed on the
// durable append:
//
//   - Before the append: the sealed batch is retained and the commit
//     retries it wholesale (new submissions accumulate for the next epoch).
//   - After the append: the epoch is durable and is never appended again —
//     the log must carry exactly one frame per sequence number, or recovery
//     (which keeps the first frame per seq) would silently drop
//     acknowledged observations. A failed fold rebuilds the accumulator
//     from snapshot + streamed history; a failed refit or publish leaves
//     the epoch committed-but-dirty for the next Commit to republish.
//
// The serving generation is untouched by any of these failures.
type Ingester struct {
	// commitMu serializes Commit: the accumulator, the durable log and the
	// streamed history are only touched under it. mu guards the fast-path
	// state (pending buffer, sealed record, watermark/seq/dirty
	// bookkeeping) that Submit and the accessors read.
	commitMu sync.Mutex
	mu       sync.Mutex

	d    *dataset.Dataset
	acc  *estimate.Accumulator
	log  *Log
	cfg  Config
	maxT timeline.Tick

	pending  []Observation
	streamed [][]timeline.Event // accepted events per source, all epochs

	// sealed is the in-flight epoch record: the pending buffer frozen at
	// the head of a Commit. It survives a failed durable append so the
	// retry appends the identical record under the same sequence number.
	sealed *EpochRecord
	// appendedSeq is the highest sequence number durably appended; a
	// commit retry at or below it skips the append (the frame is already
	// on disk).
	appendedSeq uint64

	watermark timeline.Tick
	seq       uint64
	// dirty marks committed-but-unpublished data: recovery replayed epochs
	// at startup, or a Commit succeeded but the caller has not Acked the
	// publish (or a refit failed after the epoch was durably applied).
	dirty bool
	// sincePublish counts observations applied since the last Acked
	// publish, reported in the next Epoch.
	sincePublish int
	// failing records a durable epoch the ingester could not fold: both
	// the incremental fold and the snapshot rebuild failed, so the refit
	// state lags the durable log until a later Commit rebuilds. Surfaced
	// by Err for /healthz.
	failing error
}

// New builds an ingester over the serving snapshot, scanning each source's
// archived history once. With cfg.Dir set it recovers the durable epoch
// log, re-folding every committed epoch — after a crash the ingester
// resumes at the exact watermark it had durably reached, and the first
// Commit republishes the refit state.
func New(ctx context.Context, d *dataset.Dataset, cfg Config) (*Ingester, error) {
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.MaxPending > MaxEpochObservations {
		cfg.MaxPending = MaxEpochObservations
	}
	maxT := d.Horizon() - 1
	acc, err := estimate.NewAccumulator(ctx, d.World, d.Sources, d.T0, maxT, nil, estimate.FitOptions{Workers: cfg.FitWorkers})
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	in := &Ingester{
		d:         d,
		acc:       acc,
		cfg:       cfg,
		maxT:      maxT,
		watermark: d.T0,
		streamed:  make([][]timeline.Event, len(d.Sources)),
	}
	if cfg.Dir != "" {
		log, recs, err := OpenLog(cfg.Dir)
		if err != nil {
			return nil, err
		}
		in.log = log
		for _, rec := range recs {
			if err := in.applyRecord(ctx, rec); err != nil {
				log.Close()
				return nil, fmt.Errorf("ingest: recovering epoch %d: %w", rec.Seq, err)
			}
		}
		if len(recs) > 0 {
			in.dirty = true
			in.appendedSeq = recs[len(recs)-1].Seq
			obs.Counter("ingest.log.recovered_epochs").Add(int64(len(recs)))
		}
	}
	return in, nil
}

// applyRecord folds one recovered epoch into the accumulator. Records were
// validated and sorted at commit time; validation here catches a log that
// passed CRC but violates the epoch invariants (which recovery must treat
// as corruption, not skip silently).
func (in *Ingester) applyRecord(ctx context.Context, rec EpochRecord) error {
	if rec.Watermark <= in.watermark || rec.Watermark >= in.maxT {
		return fmt.Errorf("watermark %d outside (%d, %d)", rec.Watermark, in.watermark, in.maxT)
	}
	for _, o := range rec.Events {
		if err := in.validate(o); err != nil {
			return err
		}
		if o.Event.At > rec.Watermark {
			return fmt.Errorf("event tick %d beyond watermark %d", o.Event.At, rec.Watermark)
		}
	}
	perSource := in.split(rec.Events)
	if err := in.acc.Advance(ctx, rec.Watermark, perSource); err != nil {
		return err
	}
	in.commitApplied(rec.Seq, rec.Watermark, perSource, len(rec.Events))
	return nil
}

// commitApplied records the bookkeeping of an applied epoch: sequence,
// watermark, per-source streamed history and the published-observation
// counter. Callers hold mu (or, during New, have exclusive access).
func (in *Ingester) commitApplied(seq uint64, wm timeline.Tick, perSource [][]timeline.Event, n int) {
	in.seq = seq
	in.watermark = wm
	for i, evs := range perSource {
		in.streamed[i] = append(in.streamed[i], evs...)
	}
	in.sincePublish += n
}

// sealedWatermark returns the watermark new observations must exceed: the
// sealed (in-flight) epoch's if one exists, else the committed one. A
// sealed epoch's ticks are spoken for even before its fold lands — an
// arrival at or under its watermark would be stale the moment it commits.
// Callers hold mu.
func (in *Ingester) sealedWatermark() timeline.Tick {
	if in.sealed != nil && in.sealed.Watermark > in.watermark {
		return in.sealed.Watermark
	}
	return in.watermark
}

// buffered returns the total uncommitted observation count: the pending
// buffer plus the sealed (in-flight) epoch, if any. Callers hold mu.
func (in *Ingester) buffered() int {
	n := len(in.pending)
	if in.sealed != nil {
		n += len(in.sealed.Events)
	}
	return n
}

// validate checks one observation against the world and the committed
// watermark. The bounds keep the incremental and cold paths in the same
// event universe: ticks in (watermark, maxT) so the cut always stays below
// maxT, entities that exist in the world, known kinds.
func (in *Ingester) validate(o Observation) error {
	if o.Source < 0 || o.Source >= len(in.d.Sources) {
		return fmt.Errorf("ingest: source %d outside [0, %d)", o.Source, len(in.d.Sources))
	}
	if n := in.d.World.NumEntities(); int(o.Event.Entity) < 0 || int(o.Event.Entity) >= n {
		return fmt.Errorf("ingest: entity %d outside [0, %d)", o.Event.Entity, n)
	}
	if o.Event.Kind > timeline.Disappear {
		return fmt.Errorf("ingest: unknown event kind %d", o.Event.Kind)
	}
	if o.Event.Version < 0 {
		return fmt.Errorf("ingest: negative version %d", o.Event.Version)
	}
	if wm := in.sealedWatermark(); o.Event.At <= wm {
		return &StaleError{At: o.Event.At, Watermark: wm}
	}
	if o.Event.At >= in.maxT {
		return fmt.Errorf("ingest: tick %d beyond refit bound %d", o.Event.At, in.maxT-1)
	}
	return nil
}

// Submit buffers a batch of observations for the next epoch. The batch is
// atomic: any invalid observation rejects the whole batch and buffers
// nothing.
func (in *Ingester) Submit(batch []Observation) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.buffered()+len(batch) > in.cfg.MaxPending {
		obs.Counter("ingest.backpressure").Inc()
		return ErrBackpressure
	}
	for _, o := range batch {
		if err := in.validate(o); err != nil {
			obs.Counter("ingest.rejected").Add(int64(len(batch)))
			return err
		}
	}
	in.pending = append(in.pending, batch...)
	obs.Counter("ingest.accepted").Add(int64(len(batch)))
	obs.Gauge("ingest.pending").Set(float64(in.buffered()))
	return nil
}

// split partitions a sorted observation batch into per-source event slices,
// preserving order.
func (in *Ingester) split(batch []Observation) [][]timeline.Event {
	perSource := make([][]timeline.Event, len(in.d.Sources))
	for _, o := range batch {
		perSource[o.Source] = append(perSource[o.Source], o.Event)
	}
	return perSource
}

// Commit seals the pending buffer into an epoch and refits. With nothing
// sealed, nothing pending and nothing dirty it is a no-op returning
// (nil, nil). The stages:
//
//  1. seal: freeze the pending buffer into a numbered epoch record (or pick
//     up the record a failed earlier commit left sealed) — from here on new
//     submissions accumulate for the next epoch,
//  2. append the epoch frame durably ("ingest.append" fault seam), at most
//     once per sequence number — a failure retains the sealed record for
//     retry under the same number; a duplicate frame is never written,
//  3. fold the delta into the accumulator — the epoch is now committed; if
//     the fold fails (e.g. the scheduler timeout expired mid-epoch) the
//     accumulator is rebuilt from snapshot + streamed history, because the
//     durably appended epoch must never be lost,
//  4. refit ("ingest.refit" fault seam) — a failure here leaves the epoch
//     committed and dirty; the next Commit rebuilds without re-applying.
//
// The caller publishes the returned Epoch (estimator + extended sources) as
// a new serving generation and confirms with Ack(Seq). Until the Ack the
// committed state stays dirty, so a failed or dropped publish is retried:
// the next Commit re-derives an identical epoch.
func (in *Ingester) Commit(ctx context.Context) (*Epoch, error) {
	in.commitMu.Lock()
	defer in.commitMu.Unlock()

	in.mu.Lock()
	if in.sealed == nil && len(in.pending) > 0 {
		batch := in.pending
		in.pending = nil
		sort.SliceStable(batch, func(a, b int) bool { return timeline.Less(batch[a].Event, batch[b].Event) })
		newWM := batch[len(batch)-1].Event.At
		for _, o := range batch {
			if o.Event.At > newWM {
				newWM = o.Event.At
			}
		}
		in.sealed = &EpochRecord{Seq: in.seq + 1, Watermark: newWM, Events: batch}
	}
	rec := in.sealed
	dirty := in.dirty
	in.mu.Unlock()

	if rec == nil && !dirty {
		return nil, nil
	}
	if rec != nil {
		if err := in.commitSealed(ctx, rec); err != nil {
			return nil, err
		}
	}

	if err := faults.Inject("ingest.refit"); err != nil {
		return nil, fmt.Errorf("ingest: epoch %d refit: %w", in.Seq(), err)
	}
	est, err := in.acc.Build(ctx)
	if err != nil {
		return nil, err
	}
	sources, err := in.extendedSources()
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return &Epoch{Seq: in.seq, Watermark: in.watermark, Observations: in.sincePublish, Est: est, Sources: sources}, nil
}

// commitSealed makes the sealed record durable and folds it into the
// accumulator. The append happens at most once per sequence number: a
// retry after a post-append failure skips straight to the fold, so the log
// never carries two frames for one epoch (recovery keeps only the first
// frame per seq and would silently drop the rest after a restart).
func (in *Ingester) commitSealed(ctx context.Context, rec *EpochRecord) error {
	if in.appendedSeq < rec.Seq {
		if err := faults.Inject("ingest.append"); err != nil {
			return fmt.Errorf("ingest: epoch %d append: %w", rec.Seq, err)
		}
		if in.log != nil {
			if err := in.log.Append(*rec); err != nil {
				return err
			}
		}
		in.appendedSeq = rec.Seq
	}

	perSource := in.split(rec.Events)
	if err := in.acc.Advance(ctx, rec.Watermark, perSource); err != nil {
		// The epoch is durable but the accumulator may be poisoned
		// (partially advanced trackers, or an earlier failure's latch).
		// Rebuild it — a durably appended, possibly 202-acknowledged epoch
		// must never be lost, and ingestion must not stay bricked until a
		// process restart.
		if rerr := in.rebuild(ctx, rec.Watermark, perSource); rerr != nil {
			err = fmt.Errorf("ingest: epoch %d fold failed (%v); rebuild failed: %w", rec.Seq, err, rerr)
			in.mu.Lock()
			in.failing = err
			in.mu.Unlock()
			return err
		}
	}

	in.mu.Lock()
	in.commitApplied(rec.Seq, rec.Watermark, perSource, len(rec.Events))
	in.sealed = nil
	in.dirty = true
	in.failing = nil
	pending := in.buffered()
	in.mu.Unlock()
	obs.Counter("ingest.epochs.committed").Inc()
	obs.Gauge("ingest.pending").Set(float64(pending))
	return nil
}

// rebuild reconstructs the accumulator from the snapshot plus the full
// streamed history — every committed epoch and the durable-but-unfolded
// record that poisoned the incremental fold, batched into a single Advance
// (exact: the folds commute with batching, see estimate.Accumulator). On
// success the fresh accumulator replaces the poisoned one.
func (in *Ingester) rebuild(ctx context.Context, wm timeline.Tick, perSource [][]timeline.Event) error {
	defer obs.Start("ingest.rebuild.seconds").End()
	obs.Counter("ingest.rebuilds").Inc()
	acc, err := estimate.NewAccumulator(ctx, in.d.World, in.d.Sources, in.d.T0, in.maxT, nil, estimate.FitOptions{Workers: in.cfg.FitWorkers})
	if err != nil {
		return err
	}
	combined := make([][]timeline.Event, len(in.streamed))
	for i, evs := range in.streamed {
		if len(perSource[i]) == 0 {
			combined[i] = evs
			continue
		}
		merged := make([]timeline.Event, 0, len(evs)+len(perSource[i]))
		merged = append(merged, evs...)
		merged = append(merged, perSource[i]...)
		combined[i] = merged
	}
	if err := acc.Advance(ctx, wm, combined); err != nil {
		return err
	}
	in.acc = acc
	return nil
}

// Ack confirms that the Epoch returned by Commit was published. Commit
// leaves the committed state dirty so a failed downstream publish
// (validation, model derivation, generation install) is retried — the next
// Commit re-derives an identical epoch even with no new observations. Ack
// with the published sequence number clears that mark; a stale sequence
// number (a later epoch committed in between) is ignored.
func (in *Ingester) Ack(seq uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.seq == seq {
		in.dirty = false
		in.sincePublish = 0
	}
}

// extendedSources rebuilds each source over archived + streamed events, so
// the published generation's dataset (and its digest, freshness lookups and
// any cold divisor-variant fits) sees exactly the event universe the
// incremental refit saw.
func (in *Ingester) extendedSources() ([]*source.Source, error) {
	out := make([]*source.Source, len(in.d.Sources))
	for i, s := range in.d.Sources {
		if len(in.streamed[i]) == 0 {
			out[i] = s
			continue
		}
		evs := make([]timeline.Event, 0, s.Log().Len()+len(in.streamed[i]))
		evs = append(evs, s.Log().Events()...)
		evs = append(evs, in.streamed[i]...)
		cs, err := source.FromLog(s.ID(), s.Spec(), s.Horizon(), evs)
		if err != nil {
			return nil, fmt.Errorf("ingest: extending source %d: %w", i, err)
		}
		out[i] = cs
	}
	return out, nil
}

// Pending returns the uncommitted observation count: the pending buffer
// plus a sealed epoch awaiting a commit retry, if any.
func (in *Ingester) Pending() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.buffered()
}

// Watermark returns the committed watermark (the training cut of the last
// committed epoch; the snapshot T0 before any commit).
func (in *Ingester) Watermark() timeline.Tick {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.watermark
}

// Seq returns the last committed epoch sequence number (0 before any).
func (in *Ingester) Seq() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// Dirty reports committed-but-unpublished data: recovery replayed epochs,
// a refit failed after its epoch was applied, or a committed epoch has not
// been Acked as published.
func (in *Ingester) Dirty() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dirty
}

// Err reports a durable epoch the ingester could not fold: the append
// succeeded but both the incremental fold and the snapshot rebuild failed,
// so the refit state lags the durable log until a later Commit recovers.
// Nil when the ingester is healthy.
func (in *Ingester) Err() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.failing
}

// Close releases the durable log, if any.
func (in *Ingester) Close() error {
	if in.log != nil {
		return in.log.Close()
	}
	return nil
}
