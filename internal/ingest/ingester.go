package ingest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"freshsource/internal/dataset"
	"freshsource/internal/estimate"
	"freshsource/internal/faults"
	"freshsource/internal/obs"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
)

// ErrBackpressure reports that the pending-observation buffer hit its
// configured bound; the caller should shed load (HTTP 429) until the next
// epoch commit drains it.
var ErrBackpressure = errors.New("ingest: pending observations exceed max lag")

// StaleError reports an observation at or behind the committed watermark.
// An epoch commit seals every tick up to its watermark — late arrivals must
// be rejected on both the incremental and the cold path, or the two would
// diverge.
type StaleError struct {
	At        timeline.Tick
	Watermark timeline.Tick
}

func (e *StaleError) Error() string {
	return fmt.Sprintf("ingest: observation at tick %d not after watermark %d", e.At, e.Watermark)
}

// Config tunes an Ingester.
type Config struct {
	// Dir is the durable epoch-log directory; "" keeps epochs in memory
	// only (still exact, just not crash-recoverable).
	Dir string
	// MaxPending bounds buffered (uncommitted) observations; Submit returns
	// ErrBackpressure beyond it. 0 means DefaultMaxPending.
	MaxPending int
	// FitWorkers bounds the refit worker pool (0 = GOMAXPROCS).
	FitWorkers int
}

// DefaultMaxPending is the pending-buffer bound when Config.MaxPending is 0.
const DefaultMaxPending = 65536

// Epoch is the outcome of a successful Commit: the refit estimator at the
// new cut plus the extended sources, ready to be wrapped into a serving
// generation.
type Epoch struct {
	Seq          uint64
	Watermark    timeline.Tick
	Observations int
	Est          *estimate.Estimator
	Sources      []*source.Source
}

// Ingester buffers streamed observations and turns them into committed
// epochs: sort → durable append → fold into the incremental accumulator →
// exact refit. All methods are safe for concurrent use; commits serialize.
//
// Failure semantics mirror the serving tier's last-good rule. A failure
// before the durable append leaves the pending buffer intact (the commit
// retries wholesale). A failure after the append but during refit leaves
// the epoch committed — data is durable and folded — with the refit marked
// dirty, so the next Commit rebuilds and publishes it; the serving
// generation is untouched either way.
type Ingester struct {
	mu   sync.Mutex
	d    *dataset.Dataset
	acc  *estimate.Accumulator
	log  *Log
	cfg  Config
	maxT timeline.Tick

	pending  []Observation
	streamed [][]timeline.Event // accepted events per source, all epochs

	watermark timeline.Tick
	seq       uint64
	// dirty marks committed-but-unpublished data: a refit failed after the
	// epoch was durably applied, or recovery replayed epochs at startup.
	dirty bool
	// sincePublish counts observations applied since the last successful
	// refit, reported in the next Epoch.
	sincePublish int
}

// New builds an ingester over the serving snapshot, scanning each source's
// archived history once. With cfg.Dir set it recovers the durable epoch
// log, re-folding every committed epoch — after a crash the ingester
// resumes at the exact watermark it had durably reached, and the first
// Commit republishes the refit state.
func New(ctx context.Context, d *dataset.Dataset, cfg Config) (*Ingester, error) {
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	maxT := d.Horizon() - 1
	acc, err := estimate.NewAccumulator(ctx, d.World, d.Sources, d.T0, maxT, nil, estimate.FitOptions{Workers: cfg.FitWorkers})
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	in := &Ingester{
		d:         d,
		acc:       acc,
		cfg:       cfg,
		maxT:      maxT,
		watermark: d.T0,
		streamed:  make([][]timeline.Event, len(d.Sources)),
	}
	if cfg.Dir != "" {
		log, recs, err := OpenLog(cfg.Dir)
		if err != nil {
			return nil, err
		}
		in.log = log
		for _, rec := range recs {
			if err := in.applyRecord(ctx, rec); err != nil {
				log.Close()
				return nil, fmt.Errorf("ingest: recovering epoch %d: %w", rec.Seq, err)
			}
		}
		if len(recs) > 0 {
			in.dirty = true
			obs.Counter("ingest.log.recovered_epochs").Add(int64(len(recs)))
		}
	}
	return in, nil
}

// applyRecord folds one recovered epoch into the accumulator. Records were
// validated and sorted at commit time; validation here catches a log that
// passed CRC but violates the epoch invariants (which recovery must treat
// as corruption, not skip silently).
func (in *Ingester) applyRecord(ctx context.Context, rec EpochRecord) error {
	if rec.Watermark <= in.watermark || rec.Watermark >= in.maxT {
		return fmt.Errorf("watermark %d outside (%d, %d)", rec.Watermark, in.watermark, in.maxT)
	}
	for _, o := range rec.Events {
		if err := in.validate(o); err != nil {
			return err
		}
		if o.Event.At > rec.Watermark {
			return fmt.Errorf("event tick %d beyond watermark %d", o.Event.At, rec.Watermark)
		}
	}
	perSource := in.split(rec.Events)
	if err := in.acc.Advance(ctx, rec.Watermark, perSource); err != nil {
		return err
	}
	in.commitApplied(rec.Seq, rec.Watermark, perSource, len(rec.Events))
	return nil
}

// commitApplied records the bookkeeping of an applied epoch: sequence,
// watermark, per-source streamed history and the published-observation
// counter.
func (in *Ingester) commitApplied(seq uint64, wm timeline.Tick, perSource [][]timeline.Event, n int) {
	in.seq = seq
	in.watermark = wm
	for i, evs := range perSource {
		in.streamed[i] = append(in.streamed[i], evs...)
	}
	in.sincePublish += n
}

// validate checks one observation against the world and the committed
// watermark. The bounds keep the incremental and cold paths in the same
// event universe: ticks in (watermark, maxT) so the cut always stays below
// maxT, entities that exist in the world, known kinds.
func (in *Ingester) validate(o Observation) error {
	if o.Source < 0 || o.Source >= len(in.d.Sources) {
		return fmt.Errorf("ingest: source %d outside [0, %d)", o.Source, len(in.d.Sources))
	}
	if n := in.d.World.NumEntities(); int(o.Event.Entity) < 0 || int(o.Event.Entity) >= n {
		return fmt.Errorf("ingest: entity %d outside [0, %d)", o.Event.Entity, n)
	}
	if o.Event.Kind > timeline.Disappear {
		return fmt.Errorf("ingest: unknown event kind %d", o.Event.Kind)
	}
	if o.Event.Version < 0 {
		return fmt.Errorf("ingest: negative version %d", o.Event.Version)
	}
	if o.Event.At <= in.watermark {
		return &StaleError{At: o.Event.At, Watermark: in.watermark}
	}
	if o.Event.At >= in.maxT {
		return fmt.Errorf("ingest: tick %d beyond refit bound %d", o.Event.At, in.maxT-1)
	}
	return nil
}

// Submit buffers a batch of observations for the next epoch. The batch is
// atomic: any invalid observation rejects the whole batch and buffers
// nothing.
func (in *Ingester) Submit(batch []Observation) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.pending)+len(batch) > in.cfg.MaxPending {
		obs.Counter("ingest.backpressure").Inc()
		return ErrBackpressure
	}
	for _, o := range batch {
		if err := in.validate(o); err != nil {
			obs.Counter("ingest.rejected").Add(int64(len(batch)))
			return err
		}
	}
	in.pending = append(in.pending, batch...)
	obs.Counter("ingest.accepted").Add(int64(len(batch)))
	obs.Gauge("ingest.pending").Set(float64(len(in.pending)))
	return nil
}

// split partitions a sorted observation batch into per-source event slices,
// preserving order.
func (in *Ingester) split(batch []Observation) [][]timeline.Event {
	perSource := make([][]timeline.Event, len(in.d.Sources))
	for _, o := range batch {
		perSource[o.Source] = append(perSource[o.Source], o.Event)
	}
	return perSource
}

// Commit seals the pending buffer into an epoch and refits. With nothing
// pending and nothing dirty it is a no-op returning (nil, nil). The stages:
//
//  1. sort the batch into replay order and derive the new watermark,
//  2. append the epoch frame durably ("ingest.append" fault seam) — a
//     failure here retains the pending buffer for wholesale retry,
//  3. fold the delta into the accumulator — the epoch is now committed,
//  4. refit ("ingest.refit" fault seam) — a failure here leaves the epoch
//     committed and dirty; the next Commit rebuilds without re-applying.
//
// The caller publishes the returned Epoch (estimator + extended sources) as
// a new serving generation; on publish failure it may simply drop it — the
// ingester re-derives an identical epoch on the next Commit.
func (in *Ingester) Commit(ctx context.Context) (*Epoch, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.pending) == 0 && !in.dirty {
		return nil, nil
	}
	if len(in.pending) > 0 {
		batch := in.pending
		sort.SliceStable(batch, func(a, b int) bool { return timeline.Less(batch[a].Event, batch[b].Event) })
		newWM := batch[len(batch)-1].Event.At
		for _, o := range batch {
			if o.Event.At > newWM {
				newWM = o.Event.At
			}
		}
		rec := EpochRecord{Seq: in.seq + 1, Watermark: newWM, Events: batch}
		if err := faults.Inject("ingest.append"); err != nil {
			return nil, fmt.Errorf("ingest: epoch %d append: %w", rec.Seq, err)
		}
		if in.log != nil {
			if err := in.log.Append(rec); err != nil {
				return nil, err
			}
		}
		perSource := in.split(batch)
		if err := in.acc.Advance(ctx, newWM, perSource); err != nil {
			return nil, err
		}
		in.commitApplied(rec.Seq, newWM, perSource, len(batch))
		in.pending = nil
		in.dirty = true
		obs.Counter("ingest.epochs.committed").Inc()
		obs.Gauge("ingest.pending").Set(0)
	}

	if err := faults.Inject("ingest.refit"); err != nil {
		return nil, fmt.Errorf("ingest: epoch %d refit: %w", in.seq, err)
	}
	est, err := in.acc.Build(ctx)
	if err != nil {
		return nil, err
	}
	sources, err := in.extendedSources()
	if err != nil {
		return nil, err
	}
	n := in.sincePublish
	in.sincePublish = 0
	in.dirty = false
	return &Epoch{Seq: in.seq, Watermark: in.watermark, Observations: n, Est: est, Sources: sources}, nil
}

// extendedSources rebuilds each source over archived + streamed events, so
// the published generation's dataset (and its digest, freshness lookups and
// any cold divisor-variant fits) sees exactly the event universe the
// incremental refit saw.
func (in *Ingester) extendedSources() ([]*source.Source, error) {
	out := make([]*source.Source, len(in.d.Sources))
	for i, s := range in.d.Sources {
		if len(in.streamed[i]) == 0 {
			out[i] = s
			continue
		}
		evs := make([]timeline.Event, 0, s.Log().Len()+len(in.streamed[i]))
		evs = append(evs, s.Log().Events()...)
		evs = append(evs, in.streamed[i]...)
		cs, err := source.FromLog(s.ID(), s.Spec(), s.Horizon(), evs)
		if err != nil {
			return nil, fmt.Errorf("ingest: extending source %d: %w", i, err)
		}
		out[i] = cs
	}
	return out, nil
}

// Pending returns the buffered (uncommitted) observation count.
func (in *Ingester) Pending() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.pending)
}

// Watermark returns the committed watermark (the training cut of the last
// committed epoch; the snapshot T0 before any commit).
func (in *Ingester) Watermark() timeline.Tick {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.watermark
}

// Seq returns the last committed epoch sequence number (0 before any).
func (in *Ingester) Seq() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// Dirty reports committed-but-unpublished data: recovery replayed epochs,
// or a refit failed after its epoch was applied.
func (in *Ingester) Dirty() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dirty
}

// Close releases the durable log, if any.
func (in *Ingester) Close() error {
	if in.log != nil {
		return in.log.Close()
	}
	return nil
}
