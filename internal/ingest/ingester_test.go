package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"freshsource/internal/dataset"
	"freshsource/internal/estimate"
	"freshsource/internal/faults"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
)

var fixtureDS *dataset.Dataset

func testDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	if fixtureDS != nil {
		return fixtureDS
	}
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 6
	cfg.Categories = 4
	cfg.NumSources = 6
	cfg.Horizon = 200
	cfg.T0 = 120
	cfg.Scale = 0.3
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fixtureDS = d
	return d
}

// synthBatch generates a deterministic batch of valid observations with
// ticks in (lo, hi].
func synthBatch(rng *rand.Rand, d *dataset.Dataset, lo, hi timeline.Tick, n int) []Observation {
	batch := make([]Observation, 0, n)
	span := int(hi - lo)
	for k := 0; k < n; k++ {
		at := lo + 1 + timeline.Tick(rng.Intn(span))
		o := Observation{
			Source: rng.Intn(len(d.Sources)),
			Event:  timeline.Event{Entity: timeline.EntityID(rng.Intn(d.World.NumEntities())), At: at},
		}
		switch rng.Intn(3) {
		case 0:
			o.Event.Kind = timeline.Appear
		case 1:
			o.Event.Kind, o.Event.Version = timeline.Update, 1+rng.Intn(3)
		default:
			o.Event.Kind, o.Event.Version = timeline.Disappear, rng.Intn(3)
		}
		batch = append(batch, o)
	}
	return batch
}

func exportBytes(t *testing.T, e *estimate.Estimator) []byte {
	t.Helper()
	f, err := e.Export()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// coldEpoch refits from scratch what an epoch claims: a full fit at the
// epoch watermark over the epoch's extended sources.
func coldEpoch(t *testing.T, d *dataset.Dataset, ep *Epoch) *estimate.Estimator {
	t.Helper()
	e, err := estimate.NewFit(context.Background(), d.World, ep.Sources, ep.Watermark, d.Horizon()-1, nil, estimate.FitOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestIngesterCommitMatchesCold pins the end-to-end exactness contract at
// the ingester level: each committed epoch's estimator is byte-identical
// to a cold fit over the epoch's own extended sources at its watermark.
func TestIngesterCommitMatchesCold(t *testing.T) {
	d := testDataset(t)
	in, err := New(context.Background(), d, Config{FitWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	rng := rand.New(rand.NewSource(3))
	cut := d.T0
	for epoch := 0; epoch < 3; epoch++ {
		hi := cut + 10
		if err := in.Submit(synthBatch(rng, d, cut, hi, 25)); err != nil {
			t.Fatalf("epoch %d submit: %v", epoch, err)
		}
		ep, err := in.Commit(context.Background())
		if err != nil {
			t.Fatalf("epoch %d commit: %v", epoch, err)
		}
		if ep == nil || ep.Seq != uint64(epoch+1) {
			t.Fatalf("epoch %d: got %+v", epoch, ep)
		}
		if ep.Watermark <= cut || ep.Watermark > hi {
			t.Fatalf("epoch %d watermark %d outside (%d, %d]", epoch, ep.Watermark, cut, hi)
		}
		if ep.Observations != 25 {
			t.Fatalf("epoch %d observations = %d", epoch, ep.Observations)
		}
		cold := coldEpoch(t, d, ep)
		if !bytes.Equal(exportBytes(t, ep.Est), exportBytes(t, cold)) {
			t.Fatalf("epoch %d: incremental estimator differs from cold fit", epoch)
		}
		cut = ep.Watermark
		// Commit leaves the epoch dirty until the publish is confirmed.
		if in.Watermark() != cut || !in.Dirty() {
			t.Fatalf("epoch %d: watermark=%d dirty=%v", epoch, in.Watermark(), in.Dirty())
		}
		in.Ack(ep.Seq)
		if in.Dirty() {
			t.Fatalf("epoch %d still dirty after Ack", epoch)
		}
	}

	// Nothing pending, nothing dirty: Commit is a no-op.
	ep, err := in.Commit(context.Background())
	if err != nil || ep != nil {
		t.Fatalf("idle commit: %+v, %v", ep, err)
	}
}

// TestIngesterRecovery pins crash recovery: reopening over the durable log
// replays committed epochs exactly — same watermark, same sequence, and a
// first Commit that republishes a byte-identical estimator.
func TestIngesterRecovery(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))

	in, err := New(context.Background(), d, Config{Dir: dir, FitWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	var wm timeline.Tick
	cut := d.T0
	for epoch := 0; epoch < 2; epoch++ {
		if err := in.Submit(synthBatch(rng, d, cut, cut+8, 20)); err != nil {
			t.Fatal(err)
		}
		ep, err := in.Commit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want = exportBytes(t, ep.Est)
		wm, cut = ep.Watermark, ep.Watermark
	}
	// Simulate a crash: no clean shutdown beyond closing the file handle.
	in.Close()

	re, err := New(context.Background(), d, Config{Dir: dir, FitWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Watermark() != wm || re.Seq() != 2 {
		t.Fatalf("recovered watermark=%d seq=%d, want %d/2", re.Watermark(), re.Seq(), wm)
	}
	if !re.Dirty() {
		t.Fatal("recovered ingester should be dirty (needs republish)")
	}
	ep, err := re.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ep == nil || ep.Seq != 2 || ep.Watermark != wm {
		t.Fatalf("recovery commit: %+v", ep)
	}
	if !bytes.Equal(exportBytes(t, ep.Est), want) {
		t.Fatal("recovered estimator differs from pre-crash estimator")
	}
}

func TestSubmitValidation(t *testing.T) {
	d := testDataset(t)
	in, err := New(context.Background(), d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	maxT := d.Horizon() - 1

	valid := Observation{Source: 0, Event: timeline.Event{Entity: 1, Kind: timeline.Appear, At: d.T0 + 5}}
	for name, o := range map[string]Observation{
		"bad-source-neg":  {Source: -1, Event: valid.Event},
		"bad-source-high": {Source: len(d.Sources), Event: valid.Event},
		"bad-entity":      {Source: 0, Event: timeline.Event{Entity: timeline.EntityID(d.World.NumEntities()), Kind: timeline.Appear, At: d.T0 + 5}},
		"bad-kind":        {Source: 0, Event: timeline.Event{Entity: 1, Kind: timeline.Disappear + 1, At: d.T0 + 5}},
		"bad-version":     {Source: 0, Event: timeline.Event{Entity: 1, Kind: timeline.Update, At: d.T0 + 5, Version: -1}},
		"beyond-maxT":     {Source: 0, Event: timeline.Event{Entity: 1, Kind: timeline.Appear, At: maxT}},
	} {
		t.Run(name, func(t *testing.T) {
			// The batch is atomic: one bad observation rejects it all.
			if err := in.Submit([]Observation{valid, o}); err == nil {
				t.Error("want validation error")
			}
			if in.Pending() != 0 {
				t.Errorf("rejected batch buffered %d observations", in.Pending())
			}
		})
	}

	// At or behind the watermark is a typed StaleError.
	stale := Observation{Source: 0, Event: timeline.Event{Entity: 1, Kind: timeline.Appear, At: d.T0}}
	err = in.Submit([]Observation{stale})
	var se *StaleError
	if !errors.As(err, &se) {
		t.Fatalf("want StaleError, got %v", err)
	}
	if se.At != d.T0 || se.Watermark != d.T0 {
		t.Errorf("StaleError fields: %+v", se)
	}

	if err := in.Submit([]Observation{valid}); err != nil {
		t.Fatalf("valid submit: %v", err)
	}
	if in.Pending() != 1 {
		t.Fatalf("pending = %d", in.Pending())
	}
}

func TestSubmitBackpressure(t *testing.T) {
	d := testDataset(t)
	in, err := New(context.Background(), d, Config{MaxPending: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	mk := func(n int, at timeline.Tick) []Observation {
		out := make([]Observation, n)
		for i := range out {
			out[i] = Observation{Source: 0, Event: timeline.Event{Entity: timeline.EntityID(i), Kind: timeline.Appear, At: at}}
		}
		return out
	}
	if err := in.Submit(mk(3, d.T0+1)); err != nil {
		t.Fatal(err)
	}
	if err := in.Submit(mk(1, d.T0+1)); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("want ErrBackpressure, got %v", err)
	}
	// A commit drains the buffer and lifts the backpressure.
	if _, err := in.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := in.Submit(mk(1, d.T0+2)); err != nil {
		t.Fatalf("post-commit submit: %v", err)
	}
}

// TestCommitAppendFault pins the pre-durability failure mode: a failed
// append leaves the pending buffer intact and the commit retries
// wholesale once the fault clears.
func TestCommitAppendFault(t *testing.T) {
	d := testDataset(t)
	in, err := New(context.Background(), d, Config{Dir: t.TempDir(), FitWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	rng := rand.New(rand.NewSource(9))
	if err := in.Submit(synthBatch(rng, d, d.T0, d.T0+6, 10)); err != nil {
		t.Fatal(err)
	}
	faults.Set("ingest.append", faults.Fault{Err: errors.New("disk full"), Times: 1})
	defer faults.Reset()
	if _, err := in.Commit(context.Background()); err == nil {
		t.Fatal("want append fault")
	}
	if in.Pending() != 10 || in.Seq() != 0 || in.Watermark() != d.T0 {
		t.Fatalf("failed append mutated state: pending=%d seq=%d wm=%d", in.Pending(), in.Seq(), in.Watermark())
	}
	ep, err := in.Commit(context.Background())
	if err != nil || ep == nil || ep.Seq != 1 {
		t.Fatalf("retry commit: %+v, %v", ep, err)
	}
}

// TestCommitRefitFault pins the post-durability failure mode: the epoch is
// committed (durable, folded, watermark advanced) but unpublished; the
// next Commit rebuilds without re-applying and the result is identical to
// an unfaulted run.
func TestCommitRefitFault(t *testing.T) {
	d := testDataset(t)
	in, err := New(context.Background(), d, Config{FitWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	rng := rand.New(rand.NewSource(9))
	if err := in.Submit(synthBatch(rng, d, d.T0, d.T0+6, 10)); err != nil {
		t.Fatal(err)
	}
	faults.Set("ingest.refit", faults.Fault{Err: errors.New("refit oom"), Times: 1})
	defer faults.Reset()
	if _, err := in.Commit(context.Background()); err == nil {
		t.Fatal("want refit fault")
	}
	if in.Pending() != 0 || in.Seq() != 1 || !in.Dirty() {
		t.Fatalf("faulted refit: pending=%d seq=%d dirty=%v", in.Pending(), in.Seq(), in.Dirty())
	}
	ep, err := in.Commit(context.Background())
	if err != nil || ep == nil {
		t.Fatalf("dirty recommit: %+v, %v", ep, err)
	}
	if ep.Seq != 1 || !in.Dirty() {
		t.Fatalf("recommit: seq=%d dirty=%v", ep.Seq, in.Dirty())
	}
	in.Ack(ep.Seq)
	if in.Dirty() {
		t.Fatal("still dirty after Ack")
	}
	if !bytes.Equal(exportBytes(t, ep.Est), exportBytes(t, coldEpoch(t, d, ep))) {
		t.Fatal("recommitted estimator differs from cold fit")
	}
}

// TestCommitPoisonedFoldRecovers pins the post-append failure mode the
// hard way: the epoch frame is durably appended, then the fold is canceled
// mid-epoch (the scheduler's timeout), poisoning the accumulator. The
// retry must NOT append a second frame for the same sequence number —
// recovery keeps only the first frame per seq, so a duplicate would
// silently drop acknowledged observations after a restart — and must
// rebuild the poisoned accumulator instead of staying bricked until a
// process restart.
func TestCommitPoisonedFoldRecovers(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	in, err := New(context.Background(), d, Config{Dir: dir, FitWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	rng := rand.New(rand.NewSource(13))

	// One clean epoch first, so the rebuild has committed history to refold.
	if err := in.Submit(synthBatch(rng, d, d.T0, d.T0+5, 12)); err != nil {
		t.Fatal(err)
	}
	ep1, err := in.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	in.Ack(ep1.Seq)

	if err := in.Submit(synthBatch(rng, d, ep1.Watermark, ep1.Watermark+5, 12)); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The canceled context passes the durable append (no ctx involved) and
	// then fails both the fold and the inline rebuild.
	if _, err := in.Commit(cctx); err == nil {
		t.Fatal("want fold failure under canceled context")
	}
	if in.Err() == nil {
		t.Fatal("Err() should report the unfolded durable epoch")
	}
	if in.Seq() != 1 || in.Pending() != 12 {
		t.Fatalf("poisoned state: seq=%d pending=%d", in.Seq(), in.Pending())
	}

	// Retry with a live context: the sealed record is NOT re-appended, the
	// accumulator is rebuilt from snapshot + streamed history, and the
	// epoch commits exactly.
	ep2, err := in.Commit(context.Background())
	if err != nil {
		t.Fatalf("recovery commit: %v", err)
	}
	if ep2.Seq != 2 || in.Err() != nil {
		t.Fatalf("recovered: seq=%d err=%v", ep2.Seq, in.Err())
	}
	if !bytes.Equal(exportBytes(t, ep2.Est), exportBytes(t, coldEpoch(t, d, ep2))) {
		t.Fatal("rebuilt estimator differs from cold fit")
	}
	in.Close()

	// Exactly one durable frame per epoch — no duplicate sequence numbers.
	l, recs, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 2 || l.Replayed != 0 || recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("log after recovery: %d records, %d replayed", len(recs), l.Replayed)
	}
}

// TestAckStaleSeq pins that an Ack for a superseded epoch is ignored: the
// dirty mark belongs to the newer committed epoch.
func TestAckStaleSeq(t *testing.T) {
	d := testDataset(t)
	in, err := New(context.Background(), d, Config{FitWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if err := in.Submit([]Observation{{Source: 0, Event: timeline.Event{Entity: 1, Kind: timeline.Appear, At: d.T0 + 2}}}); err != nil {
		t.Fatal(err)
	}
	ep1, err := in.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Submit([]Observation{{Source: 0, Event: timeline.Event{Entity: 2, Kind: timeline.Appear, At: d.T0 + 4}}}); err != nil {
		t.Fatal(err)
	}
	ep2, err := in.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	in.Ack(ep1.Seq) // stale: epoch 2 committed since
	if !in.Dirty() {
		t.Fatal("stale Ack cleared the dirty mark")
	}
	in.Ack(ep2.Seq)
	if in.Dirty() {
		t.Fatal("current Ack did not clear the dirty mark")
	}
}

// TestRecoveryRejectsCorruptEpoch: a log record that passes CRC but
// violates epoch invariants (watermark regression) fails recovery loudly.
func TestRecoveryRejectsCorruptEpoch(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	openAppend(t, dir,
		rec(1, d.T0+5, ob(0, 1, timeline.Appear, d.T0+5, 0)),
		rec(2, d.T0+3, ob(0, 2, timeline.Appear, d.T0+3, 0)))

	if _, err := New(context.Background(), d, Config{Dir: dir}); err == nil {
		t.Fatal("want recovery error for regressing watermark")
	}
}

// sanity: the extended sources carry the streamed events.
func TestEpochSourcesExtended(t *testing.T) {
	d := testDataset(t)
	in, err := New(context.Background(), d, Config{FitWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	o := Observation{Source: 2, Event: timeline.Event{Entity: 7, Kind: timeline.Appear, At: d.T0 + 4}}
	if err := in.Submit([]Observation{o}); err != nil {
		t.Fatal(err)
	}
	ep, err := in.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ep.Sources[2] == d.Sources[2] {
		t.Fatal("streamed-into source not rebuilt")
	}
	if got, want := ep.Sources[2].Log().Len(), d.Sources[2].Log().Len()+1; got != want {
		t.Fatalf("extended log length %d, want %d", got, want)
	}
	for i := range d.Sources {
		if i != 2 && ep.Sources[i] != d.Sources[i] {
			t.Errorf("untouched source %d was rebuilt", i)
		}
	}
	var _ *source.Source = ep.Sources[2]
}
