package ingest

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"freshsource/internal/faults"
	"freshsource/internal/timeline"
)

func rec(seq uint64, wm timeline.Tick, evs ...Observation) EpochRecord {
	return EpochRecord{Seq: seq, Watermark: wm, Events: evs}
}

func ob(src int, id timeline.EntityID, kind timeline.EventKind, at timeline.Tick, v int) Observation {
	return Observation{Source: src, Event: timeline.Event{Entity: id, Kind: kind, At: at, Version: v}}
}

func openAppend(t *testing.T, dir string, recs ...EpochRecord) {
	t.Helper()
	l, got, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh log recovered %d records", len(got))
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogRoundtrip(t *testing.T) {
	dir := t.TempDir()
	want := []EpochRecord{
		rec(1, 125, ob(0, 3, timeline.Appear, 123, 0), ob(2, 9, timeline.Update, 125, 2)),
		rec(2, 130),
		rec(3, 140, ob(1, 0, timeline.Disappear, 140, 1)),
	}
	openAppend(t, dir, want...)

	l, got, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Truncated || l.Replayed != 0 {
		t.Fatalf("clean log: truncated=%v replayed=%d", l.Truncated, l.Replayed)
	}
	// Empty Events decodes as a nil slice; normalize before comparing.
	for i := range want {
		if len(want[i].Events) == 0 {
			want[i].Events = nil
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestLogTornTail pins crash recovery: a partial frame at the tail (torn
// write) is truncated, every complete frame before it survives, and the
// log is appendable again afterwards.
func TestLogTornTail(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, rec(1, 125, ob(0, 3, timeline.Appear, 123, 0)), rec(2, 130))

	path := filepath.Join(dir, logName)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, tail := range map[string][]byte{
		"short-header":  {0x05},
		"short-payload": {0xFF, 0x00, 0x00, 0x00, 0xAA, 0xBB, 0xCC, 0xDD, 0x01, 0x02},
		"huge-length":   {0xFF, 0xFF, 0xFF, 0xFF, 0xAA, 0xBB, 0xCC, 0xDD},
	} {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, append(append([]byte{}, clean...), tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			l, got, err := OpenLog(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !l.Truncated {
				t.Error("want Truncated")
			}
			if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
				t.Fatalf("want 2 intact records, got %+v", got)
			}
			if err := l.Append(rec(3, 140)); err != nil {
				t.Fatal(err)
			}
			l.Close()

			l2, got2, err := OpenLog(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if l2.Truncated || len(got2) != 3 {
				t.Fatalf("post-truncate reopen: truncated=%v records=%d", l2.Truncated, len(got2))
			}
			// Restore the clean image for the next subtest.
			if err := os.WriteFile(path, clean, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLogCorruptPayload flips a byte inside the last frame's payload: the
// CRC must catch it and recovery truncates from that frame on.
func TestLogCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, rec(1, 125, ob(0, 3, timeline.Appear, 123, 0)), rec(2, 130, ob(1, 4, timeline.Update, 128, 1)))

	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, got, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !l.Truncated {
		t.Error("want Truncated for bad CRC")
	}
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("want frame 1 only, got %+v", got)
	}
}

// TestLogReadFault injects a read error through the ingest.read seam: the
// frame is treated as torn, like any other unreadable tail.
func TestLogReadFault(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, rec(1, 125), rec(2, 130))

	faults.Set("ingest.read", faults.Fault{Err: errors.New("injected"), Times: 1})
	defer faults.Reset()
	l, got, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !l.Truncated || len(got) != 0 {
		t.Fatalf("injected read fault at frame 1: truncated=%v records=%d", l.Truncated, len(got))
	}
	if faults.Fired("ingest.read") != 1 {
		t.Errorf("seam fired %d times", faults.Fired("ingest.read"))
	}
}

// TestLogReplayedEpochs pins duplicate handling: frames whose sequence
// number does not exceed the last committed one are skipped (counted, not
// re-delivered), while a forward gap is data loss and fails.
func TestLogReplayedEpochs(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, rec(1, 125), rec(1, 125), rec(2, 130))

	l, got, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Replayed != 1 {
		t.Errorf("replayed = %d, want 1", l.Replayed)
	}
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("want seqs [1 2], got %+v", got)
	}
}

// TestLogDuplicateSeqConflict pins the corruption side of duplicate
// handling: two frames under one sequence number with different payloads
// cannot both be honored — recovery would keep only the first and silently
// drop the second's observations — so recovery fails loudly instead.
func TestLogDuplicateSeqConflict(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir,
		rec(1, 125, ob(0, 3, timeline.Appear, 123, 0)),
		rec(1, 125, ob(0, 3, timeline.Appear, 123, 0), ob(1, 4, timeline.Update, 125, 1)))

	if _, _, err := OpenLog(dir); err == nil {
		t.Fatal("want error for duplicate seq with different payloads")
	}
}

func TestLogSeqGap(t *testing.T) {
	dir := t.TempDir()
	openAppend(t, dir, rec(1, 125), rec(3, 140))

	if _, _, err := OpenLog(dir); err == nil {
		t.Fatal("want error for epoch sequence gap")
	}
}

func TestLogBadMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("NOTALOG0"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenLog(dir); err == nil {
		t.Fatal("want error for bad magic")
	}
}
