package histint

import (
	"testing"

	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

func TestCanonicalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Business 7", "business 7"},
		{"  BUSINESS-7.  ", "business 7"},
		{"business---7", "business 7"},
		{"", ""},
		{"...", ""},
		{"A  b\tC", "a b c"},
	}
	for _, c := range cases {
		if got := Canonicalize(c.in); got != c.want {
			t.Errorf("Canonicalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCanonicalizePhone(t *testing.T) {
	cases := []struct{ in, want string }{
		{"(555) 123-4567", "5551234567"},
		{"555.123.4567", "5551234567"},
		{"15551234567", "5551234567"},
		{"5551234567", "5551234567"},
		{"12345", "12345"},
	}
	for _, c := range cases {
		if got := CanonicalizePhone(c.in); got != c.want {
			t.Errorf("CanonicalizePhone(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCanonicalKeyStyleInvariance(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	// All four source styles must canonicalise to the same key.
	base := CanonicalKey(ren.Render(0, 5, 0), KeyAttrs)
	for src := source.ID(1); src < 4; src++ {
		if got := CanonicalKey(ren.Render(src, 5, 0), KeyAttrs); got != base {
			t.Errorf("style %d key %q != base %q", src, got, base)
		}
	}
	// Different entities get different keys.
	if CanonicalKey(ren.Render(0, 6, 0), KeyAttrs) == base {
		t.Error("distinct entities share a key")
	}
	// Versions change the value attributes but not the key.
	if CanonicalKey(ren.Render(0, 5, 3), KeyAttrs) != base {
		t.Error("version changed the match key")
	}
	v0 := Canonicalize(ren.Render(0, 5, 0).Attrs["address"])
	v1 := Canonicalize(ren.Render(0, 5, 1).Attrs["address"])
	if v0 == v1 {
		t.Error("version did not change the value attribute")
	}
}

func testWorld(t *testing.T) *world.World {
	t.Helper()
	w, err := world.Generate(world.Config{
		Subdomains: []world.SubdomainSpec{
			{Point: world.DomainPoint{Location: 0, Category: 0}, InitialEntities: 250, LambdaAppear: 2, GammaDisappear: 0.01, GammaUpdate: 0.02},
		},
		Horizon: 200,
		Seed:    31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func observe(t *testing.T, w *world.World, id source.ID, insProb, delProb float64, seed int64) *source.Source {
	t.Helper()
	s, err := source.Observe(w, id, source.Spec{
		Name:           "s",
		UpdateInterval: 1,
		Points:         w.Points(),
		Insert:         source.CaptureSpec{Prob: insProb, Delay: source.ExponentialDelay{Rate: 0.5}},
		Delete:         source.CaptureSpec{Prob: delProb, Delay: source.ExponentialDelay{Rate: 0.5}},
		Update:         source.CaptureSpec{Prob: 0.8, Delay: source.ExponentialDelay{Rate: 0.5}},
	}, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIntegrateClustersAcrossStyles(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	// Three sources with different formatting styles, each missing some
	// entities.
	srcs := []*source.Source{
		observe(t, w, 0, 0.7, 0.5, 1),
		observe(t, w, 1, 0.7, 0.5, 2),
		observe(t, w, 2, 0.7, 0.5, 3),
	}
	res := Integrate(ren, srcs)

	// Count distinct mentioned entities.
	mentioned := map[timeline.EntityID]bool{}
	for _, s := range srcs {
		for _, ev := range s.Log().Events() {
			mentioned[ev.Entity] = true
		}
	}
	if res.NumClusters() != len(mentioned) {
		t.Errorf("clusters = %d, mentioned entities = %d (exact matching after canonicalisation should be 1:1)",
			res.NumClusters(), len(mentioned))
	}
}

func TestIntegrateAppearIsEarliestMention(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	srcs := []*source.Source{
		observe(t, w, 0, 0.9, 0.5, 4),
		observe(t, w, 1, 0.9, 0.5, 5),
	}
	res := Integrate(ren, srcs)

	// For each cluster, the reconstructed Appear must equal the earliest
	// source insertion of the underlying entity.
	earliest := map[string]timeline.Tick{}
	for _, s := range srcs {
		for _, ev := range s.Log().Events() {
			if ev.Kind != timeline.Appear {
				continue
			}
			key := CanonicalKey(ren.Render(s.ID(), ev.Entity, 0), KeyAttrs)
			if cur, ok := earliest[key]; !ok || ev.At < cur {
				earliest[key] = ev.At
			}
		}
	}
	for _, ev := range res.Log.Events() {
		if ev.Kind != timeline.Appear {
			continue
		}
		key := res.Key[int(ev.Entity)]
		if want, ok := earliest[key]; ok && ev.At != want {
			t.Errorf("cluster %d appear at %d, earliest mention %d", ev.Entity, ev.At, want)
		}
	}
}

func TestIntegrateReconstructionQuality(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	srcs := []*source.Source{
		observe(t, w, 0, 0.9, 0.7, 6),
		observe(t, w, 1, 0.9, 0.7, 7),
		observe(t, w, 2, 0.9, 0.7, 8),
	}
	res := Integrate(ren, srcs)
	v := Validate(ren, w, srcs, res)
	if v.Matched != v.Clusters {
		t.Errorf("matched %d of %d clusters", v.Matched, v.Clusters)
	}
	if v.Clusters != v.TrueEntities {
		t.Errorf("clusters %d != recoverable entities %d", v.Clusters, v.TrueEntities)
	}
	if v.AppearLagMean < 0 {
		t.Errorf("appear lag mean %v negative", v.AppearLagMean)
	}
	if v.AppearLagMean > 5 {
		t.Errorf("appear lag mean %v implausibly large for prompt sources", v.AppearLagMean)
	}
	if v.DisappearLagMean < 0 {
		t.Errorf("disappear lag %v negative", v.DisappearLagMean)
	}
}

func TestIntegrateValueChangesBecomeUpdates(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	srcs := []*source.Source{observe(t, w, 0, 1, 1, 9)}
	res := Integrate(ren, srcs)
	updates := 0
	for _, ev := range res.Log.Events() {
		if ev.Kind == timeline.Update {
			updates++
			if ev.Version < 1 {
				t.Fatalf("update with version %d", ev.Version)
			}
		}
	}
	if updates == 0 {
		t.Error("no updates reconstructed despite world value changes")
	}
}

func TestIntegrateDeletionStopsMentions(t *testing.T) {
	// After an integrated deletion, later stale mentions must not revive
	// the cluster.
	w := testWorld(t)
	ren := NewRenderer(w)
	// One prompt deleter and one slow, stale source.
	fast := observe(t, w, 0, 1, 1, 10)
	slowSpec := source.Spec{
		Name:           "slow",
		UpdateInterval: 1,
		Points:         w.Points(),
		Insert:         source.CaptureSpec{Prob: 1, Delay: source.ConstantDelay{D: 40}},
		Delete:         source.CaptureSpec{Prob: 0},
		Update:         source.CaptureSpec{Prob: 0},
	}
	slow, err := source.Observe(w, 1, slowSpec, stats.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	res := Integrate(ren, []*source.Source{fast, slow})
	// Replay: count Appear-after-Disappear violations per cluster.
	dead := map[timeline.EntityID]bool{}
	for _, ev := range res.Log.Events() {
		switch ev.Kind {
		case timeline.Disappear:
			dead[ev.Entity] = true
		case timeline.Appear, timeline.Update:
			if dead[ev.Entity] {
				t.Fatalf("cluster %d revived after deletion at tick %d", ev.Entity, ev.At)
			}
		}
	}
}

func TestValidateEmptySources(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	res := Integrate(ren, nil)
	v := Validate(ren, w, nil, res)
	if v.TrueEntities != 0 || v.Clusters != 0 || v.Matched != 0 {
		t.Errorf("empty validation = %+v", v)
	}
}
