package histint

import (
	"strings"
	"testing"
)

func FuzzCanonicalize(f *testing.F) {
	for _, seed := range []string{"", "Business 7", "  A--b  C. ", "ΩΩΩ", "a\tb\nc", strings.Repeat("x", 1000)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := Canonicalize(s)
		// Idempotence: canonicalising twice changes nothing.
		if again := Canonicalize(got); again != got {
			t.Fatalf("not idempotent: %q -> %q -> %q", s, got, again)
		}
		// Output alphabet: lowercase alphanumerics and single spaces, no
		// leading/trailing space.
		if strings.TrimSpace(got) != got {
			t.Fatalf("untrimmed output %q", got)
		}
		if strings.Contains(got, "  ") {
			t.Fatalf("double space in %q", got)
		}
		for _, r := range got {
			if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == ' ') {
				t.Fatalf("illegal rune %q in %q", r, got)
			}
		}
	})
}

func FuzzCanonicalizePhone(f *testing.F) {
	for _, seed := range []string{"", "(555) 123-4567", "1-555-123-4567", "abc", "1234567890123456789"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := CanonicalizePhone(s)
		for _, r := range got {
			if r < '0' || r > '9' {
				t.Fatalf("non-digit %q in %q", r, got)
			}
		}
		if again := CanonicalizePhone(got); len(again) > len(got) {
			t.Fatalf("phone canonicalisation grew: %q -> %q", got, again)
		}
	})
}
