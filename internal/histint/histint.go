// Package histint implements the history integration step of Section 4.1
// of the paper: unifying the entity streams of many sources into a single
// stream describing the evolution of the world.
//
// Sources export *records* — attribute maps with source-specific formatting
// quirks (capitalisation, punctuation, phone formats). The integrator
// canonicalises records, matches them exactly on a canonical key (the
// paper's "standard canonicalization and format standardization techniques
// together with an exact matching algorithm"), clusters matching records
// into entities, and merges the per-source streams under union semantics
// into a reconstructed world log. The reconstruction is validated against
// the simulator's ground truth, playing the role of the paper's gold
// standard.
package histint

import (
	"fmt"
	"sort"
	"strings"

	"freshsource/internal/obs"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// Record is one listing exported by a source: a bag of attribute values.
type Record struct {
	Source source.ID
	Attrs  map[string]string
}

// Canonicalize normalises free-text attribute values: lower-cases, strips
// punctuation, and collapses whitespace runs.
func Canonicalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := false
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			prevSpace = false
		default:
			if !prevSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			prevSpace = true
		}
	}
	return strings.TrimSpace(b.String())
}

// CanonicalizePhone strips everything but digits, dropping a leading
// country "1" from 11-digit numbers.
func CanonicalizePhone(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	d := b.String()
	if len(d) == 11 && d[0] == '1' {
		d = d[1:]
	}
	return d
}

// CanonicalKey derives the exact-match key of a record from the given key
// attributes, canonicalising each. Phone-like attributes (whose name
// contains "phone") get digit canonicalisation.
func CanonicalKey(r Record, keyAttrs []string) string {
	parts := make([]string, len(keyAttrs))
	for i, a := range keyAttrs {
		v := r.Attrs[a]
		if strings.Contains(a, "phone") {
			parts[i] = CanonicalizePhone(v)
		} else {
			parts[i] = Canonicalize(v)
		}
	}
	return strings.Join(parts, "|")
}

// Renderer turns (entity, version) pairs into records with deterministic
// per-source formatting noise, so that exact matching only succeeds after
// canonicalisation. The same entity always renders to the same canonical
// identity; its mutable attribute changes with the version.
type Renderer struct {
	w *world.World
}

// NewRenderer returns a renderer over the world's entities.
func NewRenderer(w *world.World) *Renderer { return &Renderer{w: w} }

// styles is the pool of formatting quirks assigned (deterministically) to
// sources.
func styleOf(src source.ID) int { return int(src) % 4 }

// Render produces the record source src would export for the entity at the
// given version.
func (r *Renderer) Render(src source.ID, id timeline.EntityID, version int) Record {
	e := r.w.Entity(id)
	name := fmt.Sprintf("Business %d", id)
	phone := fmt.Sprintf("555%07d", int(id)*13%10000000)
	addr := fmt.Sprintf("%d Main Street Unit %d", int(id)%9000+1, version)
	switch styleOf(src) {
	case 1:
		name = strings.ToUpper(name) + "."
		phone = fmt.Sprintf("(%s) %s-%s", phone[:3], phone[3:6], phone[6:])
	case 2:
		name = "  " + strings.ToLower(name)
		phone = "1" + phone
		addr = strings.ToUpper(addr)
	case 3:
		name = strings.ReplaceAll(name, " ", "-")
		phone = phone[:3] + "." + phone[3:6] + "." + phone[6:]
	}
	return Record{
		Source: src,
		Attrs: map[string]string{
			"name":     name,
			"phone":    phone,
			"address":  addr,
			"location": fmt.Sprintf("L%d", e.Point.Location),
			"category": fmt.Sprintf("C%d", e.Point.Category),
		},
	}
}

// KeyAttrs is the default exact-match key: a business is identified by its
// canonical name and phone number.
var KeyAttrs = []string{"name", "phone"}

// ValueAttrs is the default set of mutable attributes whose canonical
// change constitutes a value update.
var ValueAttrs = []string{"address"}

// ClusterID identifies a reconstructed entity.
type ClusterID int

// Result is a reconstructed world evolution.
type Result struct {
	// Log is the unified entity stream in cluster-ID space.
	Log *timeline.Log
	// Key maps each cluster to its canonical match key.
	Key []string
	// Points maps each cluster to its domain point, parsed from the
	// records' location/category attributes.
	Points []world.DomainPoint
	// byKey inverts Key.
	byKey map[string]ClusterID
}

// NumClusters returns the number of reconstructed entities.
func (r *Result) NumClusters() int { return len(r.Key) }

// Cluster returns the cluster for a canonical key.
func (r *Result) Cluster(key string) (ClusterID, bool) {
	c, ok := r.byKey[key]
	return c, ok
}

// mention is one canonicalised source observation, ready for merging.
type mention struct {
	at      timeline.Tick
	kind    timeline.EventKind
	cluster ClusterID
	value   string // canonical fingerprint of the mutable attributes
}

// Integrate reconstructs the evolution of the world from the capture logs
// of the given sources, rendered to records by ren. The merge follows union
// semantics: a cluster appears at the earliest mention across sources,
// changes value when a previously unseen canonical value surfaces, and
// disappears at the earliest captured deletion.
func Integrate(ren *Renderer, srcs []*source.Source) *Result {
	defer obs.Start("histint.integrate.seconds").End()
	res := &Result{Log: timeline.NewLog(), byKey: make(map[string]ClusterID)}
	var mentions []mention
	for _, s := range srcs {
		for _, ev := range s.Log().Events() {
			rec := ren.Render(s.ID(), ev.Entity, ev.Version)
			key := CanonicalKey(rec, KeyAttrs)
			cl, ok := res.byKey[key]
			if !ok {
				cl = ClusterID(len(res.Key))
				res.byKey[key] = cl
				res.Key = append(res.Key, key)
				res.Points = append(res.Points, parsePoint(rec))
			}
			var fp strings.Builder
			for _, a := range ValueAttrs {
				fp.WriteString(Canonicalize(rec.Attrs[a]))
				fp.WriteByte('|')
			}
			mentions = append(mentions, mention{at: ev.At, kind: ev.Kind, cluster: cl, value: fp.String()})
		}
	}
	sort.SliceStable(mentions, func(i, j int) bool { return mentions[i].at < mentions[j].at })
	obs.Counter("histint.records").Add(int64(len(mentions)))
	obs.Counter("histint.clusters").Add(int64(len(res.Key)))

	type clusterState struct {
		seen     bool
		deleted  bool
		values   map[string]bool
		versions int
	}
	states := make([]clusterState, len(res.Key))
	for _, m := range mentions {
		st := &states[m.cluster]
		switch m.kind {
		case timeline.Appear, timeline.Update:
			if st.deleted {
				// A stale re-mention after an integrated deletion is noise,
				// not a rebirth.
				continue
			}
			if !st.seen {
				st.seen = true
				st.values = map[string]bool{m.value: true}
				res.Log.Append(timeline.Event{Entity: timeline.EntityID(m.cluster), Kind: timeline.Appear, At: m.at})
				continue
			}
			if !st.values[m.value] {
				st.values[m.value] = true
				st.versions++
				res.Log.Append(timeline.Event{Entity: timeline.EntityID(m.cluster), Kind: timeline.Update, At: m.at, Version: st.versions})
			}
		case timeline.Disappear:
			if st.seen && !st.deleted {
				st.deleted = true
				res.Log.Append(timeline.Event{Entity: timeline.EntityID(m.cluster), Kind: timeline.Disappear, At: m.at, Version: st.versions})
			}
		}
	}
	return res
}

// parsePoint extracts the domain point from a record's location/category
// attributes (formatted "L<loc>"/"C<cat>" by the renderer and by external
// exporters following the same convention).
func parsePoint(rec Record) world.DomainPoint {
	var p world.DomainPoint
	if v := rec.Attrs["location"]; len(v) > 1 {
		fmt.Sscanf(v, "L%d", &p.Location)
	}
	if v := rec.Attrs["category"]; len(v) > 1 {
		fmt.Sscanf(v, "C%d", &p.Category)
	}
	return p
}

// ToWorld converts the reconstruction into a world.World so the profilers
// and estimators can train on integrated history instead of ground truth —
// the pipeline a real deployment runs (the simulator's true world is only
// a gold standard for validation). Reconstructed entities get full
// visibility. The returned slice maps each ClusterID to its entity ID in
// the new world, or -1 for clusters that never produced an appearance
// (possible with external data); pass it to RekeySource.
func (r *Result) ToWorld(horizon timeline.Tick) (*world.World, []timeline.EntityID, error) {
	entities := make([]world.Entity, r.NumClusters())
	for cl := range entities {
		entities[cl] = world.Entity{
			ID:         timeline.EntityID(cl),
			Point:      r.Points[cl],
			Born:       -1,
			Died:       -1,
			Visibility: 1,
		}
	}
	for _, ev := range r.Log.Events() {
		e := &entities[int(ev.Entity)]
		switch ev.Kind {
		case timeline.Appear:
			e.Born = ev.At
		case timeline.Update:
			// At daily granularity, value changes colliding with the
			// birth tick or with an earlier change the same day collapse.
			prev := e.Born
			if n := len(e.Updates); n > 0 {
				prev = e.Updates[n-1]
			}
			if ev.At > prev {
				e.Updates = append(e.Updates, ev.At)
			}
		case timeline.Disappear:
			if ev.At > e.Born {
				e.Died = ev.At
			}
		}
	}
	// Drop update ticks recorded at or after death (possible when a stale
	// value surfaced in one source the day another source deleted), and
	// drop clusters that never produced an Appear (a lone deletion
	// mention), renumbering densely.
	idOf := make([]timeline.EntityID, len(entities))
	kept := entities[:0]
	for i := range entities {
		e := entities[i]
		if e.Born < 0 {
			idOf[i] = -1
			continue
		}
		if e.Died >= 0 {
			updates := e.Updates[:0]
			for _, u := range e.Updates {
				if u < e.Died {
					updates = append(updates, u)
				}
			}
			e.Updates = updates
		}
		e.ID = timeline.EntityID(len(kept))
		idOf[i] = e.ID
		kept = append(kept, e)
	}
	w, err := world.FromEntities(kept, horizon)
	if err != nil {
		return nil, nil, err
	}
	return w, idOf, nil
}

// RekeySource rewrites a source's capture log from true entity IDs into the
// reconstructed world's entity space (idOf from ToWorld), producing a
// source usable against that world. Events for entities whose cluster is
// unknown or was dropped are skipped.
func RekeySource(ren *Renderer, res *Result, idOf []timeline.EntityID, s *source.Source) (*source.Source, error) {
	var events []timeline.Event
	cache := make(map[timeline.EntityID]timeline.EntityID)
	for _, ev := range s.Log().Events() {
		id, ok := cache[ev.Entity]
		if !ok {
			key := CanonicalKey(ren.Render(s.ID(), ev.Entity, 0), KeyAttrs)
			cl, found := res.Cluster(key)
			if !found || idOf[int(cl)] < 0 {
				continue
			}
			id = idOf[int(cl)]
			cache[ev.Entity] = id
		}
		events = append(events, timeline.Event{
			Entity: id, Kind: ev.Kind, At: ev.At, Version: ev.Version,
		})
	}
	return source.FromLog(s.ID(), s.Spec(), s.Horizon(), events)
}

// Validation compares a reconstruction with the simulator's ground truth —
// the role of the paper's gold standard.
type Validation struct {
	// TrueEntities is the number of world entities mentioned by at least
	// one source (the recoverable population).
	TrueEntities int
	// Clusters is the number of reconstructed entities.
	Clusters int
	// Matched counts clusters whose key corresponds to exactly one world
	// entity.
	Matched int
	// AppearLagMean is the mean lag (ticks) between true birth and
	// reconstructed appearance over matched clusters.
	AppearLagMean float64
	// DisappearLagMean is the mean lag for captured disappearances.
	DisappearLagMean float64
}

// Validate matches clusters back to world entities via the renderer's
// canonical identity and measures reconstruction quality.
func Validate(ren *Renderer, w *world.World, srcs []*source.Source, res *Result) Validation {
	// Which entities were mentioned at all?
	mentioned := make(map[timeline.EntityID]bool)
	for _, s := range srcs {
		for _, ev := range s.Log().Events() {
			mentioned[ev.Entity] = true
		}
	}
	v := Validation{TrueEntities: len(mentioned), Clusters: res.NumClusters()}

	// The renderer's identity is source-independent after canonicalisation,
	// so rendering with any style yields the entity's canonical key.
	keyToEntity := make(map[string]timeline.EntityID, len(mentioned))
	for id := range mentioned {
		key := CanonicalKey(ren.Render(0, id, 0), KeyAttrs)
		keyToEntity[key] = id
	}

	// Index reconstruction events by cluster so validation is linear.
	type clusterEvents struct {
		appear    timeline.Tick
		hasAppear bool
		disappear timeline.Tick
		hasDis    bool
	}
	byCluster := make([]clusterEvents, res.NumClusters())
	for _, ev := range res.Log.Events() {
		ce := &byCluster[int(ev.Entity)]
		switch ev.Kind {
		case timeline.Appear:
			ce.appear, ce.hasAppear = ev.At, true
		case timeline.Disappear:
			ce.disappear, ce.hasDis = ev.At, true
		}
	}

	var appearLagSum float64
	var appearN int
	var disLagSum float64
	var disN int
	for cl, key := range res.Key {
		id, ok := keyToEntity[key]
		if !ok {
			continue
		}
		v.Matched++
		e := w.Entity(id)
		ce := byCluster[cl]
		if ce.hasAppear {
			appearLagSum += float64(ce.appear - e.Born)
			appearN++
		}
		if ce.hasDis && e.Died >= 0 {
			disLagSum += float64(ce.disappear - e.Died)
			disN++
		}
	}
	if appearN > 0 {
		v.AppearLagMean = appearLagSum / float64(appearN)
	}
	if disN > 0 {
		v.DisappearLagMean = disLagSum / float64(disN)
	}
	return v
}
