package histint_test

import (
	"fmt"

	"freshsource/internal/histint"
)

// Canonicalisation makes differently-formatted records match exactly.
func ExampleCanonicalize() {
	fmt.Println(histint.Canonicalize("  JOE'S-Pizza.  "))
	fmt.Println(histint.Canonicalize("joes pizza"))
	// Output:
	// joe s pizza
	// joes pizza
}

// Phone canonicalisation strips formatting and a leading country code.
func ExampleCanonicalizePhone() {
	fmt.Println(histint.CanonicalizePhone("1 (555) 123-4567"))
	// Output: 5551234567
}

// The exact-match key combines the canonical key attributes.
func ExampleCanonicalKey() {
	rec := histint.Record{Attrs: map[string]string{
		"name":  "JOE'S Pizza",
		"phone": "(555) 123-4567",
	}}
	fmt.Println(histint.CanonicalKey(rec, []string{"name", "phone"}))
	// Output: joe s pizza|5551234567
}
