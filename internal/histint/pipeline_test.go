package histint

import (
	"math"
	"testing"

	"freshsource/internal/estimate"
	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
)

// TestToWorldShape checks the reconstruction-to-world conversion.
func TestToWorldShape(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	srcs := []*source.Source{
		observe(t, w, 0, 0.9, 0.8, 41),
		observe(t, w, 1, 0.9, 0.8, 42),
	}
	res := Integrate(ren, srcs)
	rw, idOf, err := res.ToWorld(w.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	if rw.NumEntities() != res.NumClusters() {
		t.Errorf("reconstructed world has %d entities, %d clusters", rw.NumEntities(), res.NumClusters())
	}
	if len(idOf) != res.NumClusters() {
		t.Fatalf("idOf length %d", len(idOf))
	}
	for cl, id := range idOf {
		if id < 0 {
			t.Errorf("cluster %d dropped unexpectedly", cl)
			continue
		}
		if rw.Entity(id).Point != res.Points[cl] {
			t.Errorf("cluster %d point mismatch", cl)
		}
	}
	// The reconstructed population tracks the truth within the coverage of
	// the sources; deletions missed by every mentioning source inflate it
	// (the NDel phenomenon), so allow slack upward.
	at := w.Horizon() - 1
	trueAlive := w.AliveCount(at, nil)
	recAlive := rw.AliveCount(at, nil)
	if recAlive < trueAlive/2 || recAlive > trueAlive*3/2 {
		t.Errorf("reconstructed alive %d vs true %d", recAlive, trueAlive)
	}
}

// TestReconstructedTrainingMatchesGold is the realistic-pipeline test: fit
// the estimator on integrated history (what a deployment has) and on the
// simulator's gold standard, and verify the coverage estimates agree
// closely.
func TestReconstructedTrainingMatchesGold(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	srcs := []*source.Source{
		observe(t, w, 0, 0.95, 0.9, 51),
		observe(t, w, 1, 0.95, 0.9, 52),
		observe(t, w, 2, 0.95, 0.9, 53),
	}
	res := Integrate(ren, srcs)
	rw, idOf, err := res.ToWorld(w.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	var rekeyed []*source.Source
	for _, s := range srcs {
		rs, err := RekeySource(ren, res, idOf, s)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Log().Len() == 0 {
			t.Fatalf("rekeyed source %d empty", s.ID())
		}
		rekeyed = append(rekeyed, rs)
	}

	t0 := timeline.Tick(130)
	maxT := w.Horizon() - 1
	gold, err := estimate.New(w, srcs, t0, maxT, nil)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := estimate.New(rw, rekeyed, t0, maxT, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range []timeline.Tick{150, 170, 190} {
		qg := gold.Quality([]int{0, 1}, tk)
		qr := recon.Quality([]int{0, 1}, tk)
		if math.Abs(qg.Coverage-qr.Coverage) > 0.08 {
			t.Errorf("tick %d: gold coverage %v vs reconstructed %v", tk, qg.Coverage, qr.Coverage)
		}
	}
}

// TestRekeyedSourcePreservesQuality: a rekeyed source measured against the
// reconstructed world should show quality close to the original source
// against the true world.
func TestRekeyedSourcePreservesQuality(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	srcs := []*source.Source{
		observe(t, w, 0, 0.9, 0.8, 61),
		observe(t, w, 1, 0.9, 0.8, 62),
	}
	res := Integrate(ren, srcs)
	rw, idOf, err := res.ToWorld(w.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RekeySource(ren, res, idOf, srcs[0])
	if err != nil {
		t.Fatal(err)
	}
	at := timeline.Tick(150)
	qTrue := metrics.QualityAt(w, srcs[:1], at, nil)
	qRec := metrics.QualityAt(rw, []*source.Source{rs}, at, nil)
	// The reconstructed world only contains entities some source saw, so
	// reconstructed coverage can only be ≥ the true coverage; it should
	// still be in the same ballpark with two strong sources.
	if qRec.Coverage < qTrue.Coverage-0.02 {
		t.Errorf("reconstructed coverage %v below true %v", qRec.Coverage, qTrue.Coverage)
	}
	if qRec.Coverage > qTrue.Coverage+0.25 {
		t.Errorf("reconstructed coverage %v implausibly above true %v", qRec.Coverage, qTrue.Coverage)
	}
}
