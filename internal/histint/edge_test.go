package histint

import (
	"testing"

	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// logSource builds a source with a hand-written capture log — the shape an
// external exporter produces, where the integrator cannot assume every
// mention sequence starts with an insertion.
func logSource(t *testing.T, w *world.World, id source.ID, events []timeline.Event) *source.Source {
	t.Helper()
	s, err := source.FromLog(id, source.Spec{
		Name:           "log",
		UpdateInterval: 1,
		Points:         w.Points(),
		Insert:         source.CaptureSpec{Prob: 1, Delay: source.ConstantDelay{D: 0}},
		Delete:         source.CaptureSpec{Prob: 1, Delay: source.ConstantDelay{D: 0}},
		Update:         source.CaptureSpec{Prob: 1, Delay: source.ConstantDelay{D: 0}},
	}, w.Horizon(), events)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestToWorldDropsLoneDeletionCluster exercises the cluster-with-no-Appear
// path: a source whose only mention of an entity is a deletion creates a
// cluster that never appears, which ToWorld must drop (idOf = -1) and
// RekeySource must skip.
func TestToWorldDropsLoneDeletionCluster(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	s := logSource(t, w, 0, []timeline.Event{
		{Entity: 0, Kind: timeline.Appear, At: 5},
		{Entity: 1, Kind: timeline.Disappear, At: 6},
	})
	res := Integrate(ren, []*source.Source{s})
	if res.NumClusters() != 2 {
		t.Fatalf("clusters = %d, want 2", res.NumClusters())
	}

	rw, idOf, err := res.ToWorld(w.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	if rw.NumEntities() != 1 {
		t.Errorf("reconstructed world has %d entities, want 1 (lone deletion dropped)", rw.NumEntities())
	}
	loneKey := CanonicalKey(ren.Render(0, 1, 0), KeyAttrs)
	cl, ok := res.Cluster(loneKey)
	if !ok {
		t.Fatal("lone-deletion cluster missing from result")
	}
	if idOf[int(cl)] != -1 {
		t.Errorf("idOf[lone cluster] = %d, want -1", idOf[int(cl)])
	}

	// Rekeying the same source drops the lone-deletion event...
	rs, err := RekeySource(ren, res, idOf, s)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Log().Len() != 1 {
		t.Errorf("rekeyed log has %d events, want 1", rs.Log().Len())
	}
	// ...and a source mentioning an entity the integration never saw loses
	// those events too (no cluster to map them into).
	foreign := logSource(t, w, 1, []timeline.Event{
		{Entity: 2, Kind: timeline.Appear, At: 7},
	})
	rf, err := RekeySource(ren, res, idOf, foreign)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Log().Len() != 0 {
		t.Errorf("foreign rekeyed log has %d events, want 0", rf.Log().Len())
	}
}

// TestToWorldRejectsBadHorizon propagates world construction errors: a
// horizon at or before the reconstructed appearances is invalid.
func TestToWorldRejectsBadHorizon(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	s := logSource(t, w, 0, []timeline.Event{
		{Entity: 0, Kind: timeline.Appear, At: 5},
	})
	res := Integrate(ren, []*source.Source{s})
	if _, _, err := res.ToWorld(0); err == nil {
		t.Error("want error for non-positive horizon")
	}
	if _, _, err := res.ToWorld(3); err == nil {
		t.Error("want error for horizon before the reconstructed appearance")
	}
}

// TestValidateSkipsUnmentionedClusters: clusters built from sources outside
// the validation set have no gold-standard entity to match and must be
// skipped, not counted as matches.
func TestValidateSkipsUnmentionedClusters(t *testing.T) {
	w := testWorld(t)
	ren := NewRenderer(w)
	s0 := logSource(t, w, 0, []timeline.Event{{Entity: 0, Kind: timeline.Appear, At: 5}})
	s1 := logSource(t, w, 1, []timeline.Event{{Entity: 1, Kind: timeline.Appear, At: 6}})
	res := Integrate(ren, []*source.Source{s0, s1})

	v := Validate(ren, w, []*source.Source{s0}, res)
	if v.TrueEntities != 1 || v.Clusters != 2 {
		t.Fatalf("validation = %+v, want 1 recoverable entity and 2 clusters", v)
	}
	if v.Matched != 1 {
		t.Errorf("matched = %d, want 1 (the cluster from the absent source must be skipped)", v.Matched)
	}
}
