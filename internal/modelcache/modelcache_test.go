package modelcache

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/estimate"
)

// fixture: one small BL-like dataset per test binary.
var fixtureDS *dataset.Dataset

func testDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	if fixtureDS != nil {
		return fixtureDS
	}
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 8
	cfg.Categories = 5
	cfg.NumSources = 10
	cfg.Horizon = 220
	cfg.T0 = 120
	cfg.Scale = 0.4
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fixtureDS = d
	return d
}

func fitAndExport(t *testing.T, d *dataset.Dataset) *estimate.Fitted {
	t.Helper()
	est, err := estimate.NewFit(context.Background(), d.World, d.Sources, d.T0,
		d.World.Horizon()-1, nil, estimate.FitOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := est.Export()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := testDataset(t)
	f := fitAndExport(t, d)
	digest := Digest(d.World, d.Sources)
	path := filepath.Join(t.TempDir(), "rt.fsmc")
	if err := Save(path, digest, f); err != nil {
		t.Fatal(err)
	}
	gotDigest, got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotDigest != digest {
		t.Error("digest changed across save/load")
	}
	if !reflect.DeepEqual(f, got) {
		t.Error("fitted snapshot changed across save/load")
	}
	// The decoded snapshot must also rebuild into an estimator the world
	// accepts — the full hit path.
	if _, err := estimate.FromFitted(d.World, got); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(path); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestLoadVersionMismatch(t *testing.T) {
	d := testDataset(t)
	path := filepath.Join(t.TempDir(), "v.fsmc")
	if err := Save(path, Digest(d.World, d.Sources), fitAndExport(t, d)); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[4]++ // bump the format version field
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Load(path)
	if !errors.Is(err, ErrVersion) {
		t.Errorf("got %v, want ErrVersion", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("version mismatch must not be reported as corruption")
	}
}

func TestLoadCorruption(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "c.fsmc")
	if err := Save(path, Digest(d.World, d.Sources), fitAndExport(t, d)); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	damage := map[string]func([]byte) []byte{
		"truncated":     func(b []byte) []byte { return b[:len(b)/2] },
		"short file":    func(b []byte) []byte { return b[:10] },
		"bad magic":     func(b []byte) []byte { b[0] ^= 0xff; return b },
		"flipped byte":  func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b },
		"flipped crc":   func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"trailing junk": func(b []byte) []byte { return append(b, 0xde, 0xad) },
	}
	for name, mutate := range damage {
		buf := mutate(append([]byte(nil), pristine...))
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Load(path); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

func TestLoadMissing(t *testing.T) {
	_, _, err := Load(filepath.Join(t.TempDir(), "absent.fsmc"))
	if !os.IsNotExist(err) {
		t.Errorf("got %v, want IsNotExist", err)
	}
}

// TestLoadOrFit drives the full miss → hit → corrupt-fallback cycle and
// checks the hit is byte-identical to the fit it replaced.
func TestLoadOrFit(t *testing.T) {
	d := testDataset(t)
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opt := core.TrainOptions{FreqDivisors: []int{2, 3}, FitWorkers: 1}

	fitted, status, err := c.LoadOrFit(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusMiss {
		t.Fatalf("first call: status %v, want miss", status)
	}

	loaded, status, err := c.LoadOrFit(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusHit {
		t.Fatalf("second call: status %v, want hit", status)
	}
	if !reflect.DeepEqual(fitted.Est, loaded.Est) {
		t.Error("cache-loaded estimator differs from the fitted one")
	}
	if fitted.Constrained != loaded.Constrained || fitted.NumCandidates() != loaded.NumCandidates() {
		t.Error("trained metadata differs across hit/miss")
	}

	// Damage the entry: the next call must refit, rewrite, and then hit.
	entries, err := filepath.Glob(filepath.Join(c.Dir(), "*.fsmc"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries %v, err %v", entries, err)
	}
	buf, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0x01
	if err := os.WriteFile(entries[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}
	refit, status, err := c.LoadOrFit(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusCorrupt {
		t.Fatalf("corrupted entry: status %v, want corrupt", status)
	}
	if !reflect.DeepEqual(fitted.Est, refit.Est) {
		t.Error("refit after corruption differs from the original fit")
	}
	if _, status, err = c.LoadOrFit(context.Background(), d, opt); err != nil || status != StatusHit {
		t.Fatalf("after rewrite: status %v, err %v, want hit", status, err)
	}
}

// TestLoadOrFitSharesEntryAcrossDivisors pins the dedup property: the
// cache key excludes frequency divisors, so every divisor configuration
// over the same fit shares one file.
func TestLoadOrFitSharesEntryAcrossDivisors(t *testing.T) {
	d := testDataset(t)
	c, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, status, err := c.LoadOrFit(context.Background(), d, core.TrainOptions{FitWorkers: 1}); err != nil || status != StatusMiss {
		t.Fatalf("base: status %v, err %v", status, err)
	}
	tr, status, err := c.LoadOrFit(context.Background(), d, core.TrainOptions{FreqDivisors: []int{2, 4}, FitWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusHit {
		t.Errorf("divisor config: status %v, want hit off the base entry", status)
	}
	if !tr.Constrained {
		t.Error("divisor config must still derive variants on load")
	}
	entries, _ := filepath.Glob(filepath.Join(c.Dir(), "*.fsmc"))
	if len(entries) != 1 {
		t.Errorf("%d cache entries, want 1 shared across divisor configs", len(entries))
	}
}

// TestDigestSensitivity checks the digest separates what it must: any
// change to the world or the source logs changes the key, while refitting
// parameters do not touch it.
func TestDigestSensitivity(t *testing.T) {
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 4
	cfg.Categories = 3
	cfg.NumSources = 5
	cfg.Horizon = 120
	cfg.T0 = 70
	cfg.Scale = 0.3
	d1, err := dataset.GenerateBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1b, err := dataset.GenerateBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	d2, err := dataset.GenerateBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Digest(d1.World, d1.Sources) != Digest(d1b.World, d1b.Sources) {
		t.Error("identical generation must digest identically")
	}
	if Digest(d1.World, d1.Sources) == Digest(d2.World, d2.Sources) {
		t.Error("different seed must digest differently")
	}
	if Digest(d1.World, d1.Sources[:len(d1.Sources)-1]) == Digest(d1.World, d1.Sources) {
		t.Error("dropping a source must digest differently")
	}
}

func TestFileNameSeparatesFitParams(t *testing.T) {
	d := testDataset(t)
	dig := Digest(d.World, d.Sources)
	base := FileName(dig, d.T0, 200, nil)
	if FileName(dig, d.T0+1, 200, nil) == base {
		t.Error("t0 must be part of the key")
	}
	if FileName(dig, d.T0, 201, nil) == base {
		t.Error("maxT must be part of the key")
	}
	if FileName(dig, d.T0, 200, d.World.Points()[:1]) == base {
		t.Error("points must be part of the key")
	}
	var otherDig [32]byte
	if FileName(otherDig, d.T0, 200, nil) == base {
		t.Error("digest must be part of the key")
	}
}

func TestSaveRejectsNil(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), "x.fsmc"), [32]byte{}, nil); err == nil {
		t.Error("want error saving nil snapshot")
	}
}
