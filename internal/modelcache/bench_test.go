package modelcache

import (
	"context"
	"path/filepath"
	"testing"

	"freshsource/internal/estimate"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/world"
)

// benchFixture mirrors internal/estimate's BenchmarkEstimatorNew fixture
// (2 subdomains × 2000 entities, 20 sources, fit window [300, 490]) so
// the "cached" variant below is directly comparable to that benchmark's
// "seq" and "parallel" variants: same fit, different acquisition path.
func benchFixture(b *testing.B) (*world.World, []*source.Source) {
	b.Helper()
	w, err := world.Generate(world.Config{
		Subdomains: []world.SubdomainSpec{
			{Point: world.DomainPoint{Location: 0, Category: 0}, InitialEntities: 2000, LambdaAppear: 5, GammaDisappear: 0.01, GammaUpdate: 0.02},
			{Point: world.DomainPoint{Location: 1, Category: 0}, InitialEntities: 2000, LambdaAppear: 5, GammaDisappear: 0.01, GammaUpdate: 0.02},
		},
		Horizon: 500,
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var srcs []*source.Source
	for i := 0; i < 20; i++ {
		s, err := source.Observe(w, source.ID(i), source.Spec{
			Name:           "b",
			UpdateInterval: 1,
			Points:         w.Points(),
			Insert:         source.CaptureSpec{Prob: 0.6, Delay: source.ExponentialDelay{Rate: 0.3}},
			Delete:         source.CaptureSpec{Prob: 0.5, Delay: source.ExponentialDelay{Rate: 0.2}},
			Update:         source.CaptureSpec{Prob: 0.5, Delay: source.ExponentialDelay{Rate: 0.2}},
		}, stats.NewRNG(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		srcs = append(srcs, s)
	}
	return w, srcs
}

// BenchmarkEstimatorNew/cached measures a warm model-cache hit: decode a
// verified cache file and rebuild the estimator via FromFitted — the cost
// a restart pays instead of the full fit measured by the estimate
// package's seq/parallel variants of this family.
func BenchmarkEstimatorNew(b *testing.B) {
	w, srcs := benchFixture(b)
	est, err := estimate.NewFit(context.Background(), w, srcs, 300, 490, nil, estimate.FitOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	snap, err := est.Export()
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.fsmc")
	digest := Digest(w, srcs)
	if err := Save(path, digest, snap); err != nil {
		b.Fatal(err)
	}

	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gotDigest, f, err := Load(path)
			if err != nil {
				b.Fatal(err)
			}
			if gotDigest != digest {
				b.Fatal("digest mismatch")
			}
			if _, err := estimate.FromFitted(w, f); err != nil {
				b.Fatal(err)
			}
		}
	})
}
