package modelcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"freshsource/internal/estimate"
	"freshsource/internal/faults"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// The cache file format, all little-endian:
//
//	[0:4)   magic "FSMC"
//	[4:8)   format version (uint32)
//	[8:40)  snapshot digest (SHA-256 of the training inputs)
//	[40:n)  payload: the estimate.Fitted encoding
//	[n:n+4) CRC-32 (IEEE) of everything before it
//
// The version is read before the checksum is verified so that a file
// written by a different format version is reported as ErrVersion, not
// ErrCorrupt — the caller treats both as a recompute, but metrics and
// logs should tell them apart. Floats are persisted as their raw IEEE-754
// bits, which is what makes a load byte-identical to the fit it captured.
const (
	magic = "FSMC"
	// Version is the cache file format version. Bump it whenever the
	// payload encoding or the digested fields change shape.
	Version = 1

	headerSize  = 4 + 4 + 32
	trailerSize = 4
)

// Sentinel errors of the codec. Both mean "recompute the fit"; they are
// distinct so the fallback can be attributed correctly.
var (
	// ErrCorrupt reports a cache file that failed structural validation:
	// bad magic, checksum mismatch, truncation or an inconsistent payload.
	ErrCorrupt = errors.New("modelcache: corrupt cache file")
	// ErrVersion reports a structurally sound file written by a different
	// format version.
	ErrVersion = errors.New("modelcache: cache file version mismatch")
)

// Save atomically writes a fitted snapshot to path: the encoding goes to a
// temporary file in the same directory which is renamed over path, so
// concurrent readers see either the old file or the new one, never a
// partial write.
func Save(path string, digest [32]byte, f *estimate.Fitted) error {
	if f == nil {
		return errors.New("modelcache: nil fitted snapshot")
	}
	if err := faults.Inject("modelcache.save"); err != nil {
		return fmt.Errorf("modelcache: save: %w", err)
	}
	buf := make([]byte, 0, headerSize+trailerSize+encodedSizeHint(f))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = append(buf, digest[:]...)
	buf = appendFitted(buf, f)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".fsmc-tmp-*")
	if err != nil {
		return fmt.Errorf("modelcache: save: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("modelcache: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("modelcache: save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("modelcache: save: %w", err)
	}
	return nil
}

// Load reads, verifies and decodes a cache file. It returns the snapshot
// digest recorded at save time alongside the decoded models; the caller
// must compare the digest against the live dataset before trusting the
// models. File-system errors pass through (os.IsNotExist distinguishes a
// cache miss); damaged files return ErrCorrupt and files from another
// format version return ErrVersion.
func Load(path string) ([32]byte, *estimate.Fitted, error) {
	var digest [32]byte
	buf, err := os.ReadFile(path)
	if err != nil {
		return digest, nil, err
	}
	if buf, err = faults.Read("modelcache.load", buf); err != nil {
		return digest, nil, fmt.Errorf("modelcache: read %s: %w", path, err)
	}
	if len(buf) < headerSize+trailerSize {
		return digest, nil, fmt.Errorf("%w: %d bytes is shorter than header+trailer", ErrCorrupt, len(buf))
	}
	if string(buf[:4]) != magic {
		return digest, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != Version {
		return digest, nil, fmt.Errorf("%w: file version %d, want %d", ErrVersion, v, Version)
	}
	body, trailer := buf[:len(buf)-trailerSize], buf[len(buf)-trailerSize:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return digest, nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	copy(digest[:], buf[8:40])
	d := &decoder{buf: body, off: headerSize}
	f := d.fitted()
	if d.err != nil {
		return digest, nil, fmt.Errorf("%w: %v", ErrCorrupt, d.err)
	}
	if d.off != len(body) {
		return digest, nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(body)-d.off)
	}
	return digest, f, nil
}

// Verify checks a cache file end to end — magic, version, checksum and a
// full payload decode — and returns its recorded snapshot digest.
func Verify(path string) ([32]byte, error) {
	digest, _, err := Load(path)
	return digest, err
}

// encodedSizeHint estimates the payload size to pre-size the encode
// buffer; it only needs to be in the right ballpark.
func encodedSizeHint(f *estimate.Fitted) int {
	n := 64 + 16*len(f.Points) + 80*len(f.Models)
	for i := range f.Candidates {
		c := &f.Candidates[i]
		n += 96 + len(c.Name) + 8*(len(c.B)+len(c.Bcov)+len(c.Bup)) +
			9*len(c.InsertDelays) + len(c.Covers)
		for _, km := range []*estimate.FittedKM{c.Gi, c.Gd, c.Gu} {
			if km != nil {
				n += 16 * len(km.Times)
			}
		}
	}
	return n
}

// --- encoding ---

func appendU32(b []byte, v uint32) []byte  { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte  { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte   { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendF64s(b []byte, vs []float64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}

func appendWords(b []byte, ws []uint64) []byte {
	b = appendU32(b, uint32(len(ws)))
	for _, w := range ws {
		b = appendU64(b, w)
	}
	return b
}

func appendKM(b []byte, km *estimate.FittedKM) []byte {
	if km == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendF64s(b, km.Times)
	b = appendF64s(b, km.CDF)
	return appendI64(b, int64(km.N))
}

func appendFitted(b []byte, f *estimate.Fitted) []byte {
	b = appendI64(b, int64(f.T0))
	b = appendI64(b, int64(f.MaxT))
	b = appendU64(b, uint64(f.Universe))
	b = appendU32(b, uint32(len(f.Points)))
	for _, p := range f.Points {
		b = appendI64(b, int64(p.Location))
		b = appendI64(b, int64(p.Category))
	}
	b = appendU32(b, uint32(len(f.Models)))
	for i := range f.Models {
		m := &f.Models[i]
		b = appendF64(b, m.LambdaIns)
		b = appendF64(b, m.LambdaDel)
		b = appendF64(b, m.LambdaUpd)
		b = appendF64(b, m.GammaDel)
		b = appendF64(b, m.GammaUpd)
		b = appendI64(b, int64(m.OmegaT0))
		if m.Periodic == nil {
			b = append(b, 0)
		} else {
			b = append(b, 1)
			b = appendI64(b, int64(m.Periodic.Period))
			b = appendF64(b, m.Periodic.Mean)
			b = appendI64(b, int64(m.Periodic.N))
			b = appendF64s(b, m.Periodic.Rates)
		}
	}
	b = appendU32(b, uint32(len(f.Candidates)))
	for i := range f.Candidates {
		c := &f.Candidates[i]
		b = appendI64(b, int64(c.SourceID))
		b = appendStr(b, c.Name)
		b = appendF64(b, c.UpdateInterval)
		b = appendI64(b, int64(c.LastUpdate))
		b = appendF64(b, c.CoverageT0)
		b = appendWords(b, c.B)
		b = appendWords(b, c.Bcov)
		b = appendWords(b, c.Bup)
		b = appendKM(b, c.Gi)
		b = appendKM(b, c.Gd)
		b = appendKM(b, c.Gu)
		b = appendU32(b, uint32(len(c.InsertDelays)))
		for _, d := range c.InsertDelays {
			b = appendF64(b, d.Value)
			if d.Censored {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
		b = appendU32(b, uint32(len(c.Covers)))
		for _, cov := range c.Covers {
			if cov {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
	}
	return b
}

// --- decoding ---

// decoder is a bounds-checked little-endian reader over the file body.
// The first failed read latches err and turns every later read into a
// zero-value no-op, so decode paths read linearly without per-call error
// plumbing.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated payload at %s (offset %d)", what, d.off)
	}
}

func (d *decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8(what string) byte {
	b := d.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32(what string) uint32 {
	b := d.take(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64(what string) uint64 {
	b := d.take(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64(what string) int64   { return int64(d.u64(what)) }
func (d *decoder) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }
func (d *decoder) tick(what string) timeline.Tick {
	return timeline.Tick(d.i64(what))
}

// count reads a length prefix and rejects values the remaining payload
// cannot possibly hold (each element is at least elemSize bytes), so a
// corrupted length cannot drive a huge allocation.
func (d *decoder) count(elemSize int, what string) int {
	n := int(d.u32(what))
	if d.err == nil && n*elemSize > len(d.buf)-d.off {
		d.fail(what + " length")
		return 0
	}
	return n
}

func (d *decoder) str(what string) string {
	n := d.count(1, what)
	return string(d.take(n, what))
}

func (d *decoder) f64s(what string) []float64 {
	n := d.count(8, what)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64(what)
	}
	return out
}

func (d *decoder) words(what string) []uint64 {
	n := d.count(8, what)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.u64(what)
	}
	return out
}

func (d *decoder) km(what string) *estimate.FittedKM {
	switch d.u8(what) {
	case 0:
		return nil
	case 1:
		km := &estimate.FittedKM{
			Times: d.f64s(what + " times"),
			CDF:   d.f64s(what + " cdf"),
		}
		km.N = int(d.i64(what + " n"))
		return km
	default:
		if d.err == nil {
			d.err = fmt.Errorf("bad %s presence tag", what)
		}
		return nil
	}
}

func (d *decoder) fitted() *estimate.Fitted {
	f := &estimate.Fitted{
		T0:       d.tick("t0"),
		MaxT:     d.tick("maxT"),
		Universe: int(d.u64("universe")),
	}
	nPts := d.count(16, "points")
	for j := 0; j < nPts && d.err == nil; j++ {
		f.Points = append(f.Points, world.DomainPoint{
			Location: int(d.i64("point location")),
			Category: int(d.i64("point category")),
		})
	}
	nModels := d.count(49, "models")
	for j := 0; j < nModels && d.err == nil; j++ {
		m := estimate.FittedModel{
			LambdaIns: d.f64("lambdaIns"),
			LambdaDel: d.f64("lambdaDel"),
			LambdaUpd: d.f64("lambdaUpd"),
			GammaDel:  d.f64("gammaDel"),
			GammaUpd:  d.f64("gammaUpd"),
			OmegaT0:   int(d.i64("omegaT0")),
		}
		switch d.u8("periodic tag") {
		case 0:
		case 1:
			p := &stats.PeriodicPoissonModel{
				Period: int(d.i64("period")),
				Mean:   d.f64("periodic mean"),
				N:      int(d.i64("periodic n")),
			}
			p.Rates = d.f64s("periodic rates")
			m.Periodic = p
		default:
			if d.err == nil {
				d.err = errors.New("bad periodic presence tag")
			}
		}
		f.Models = append(f.Models, m)
	}
	nCands := d.count(1, "candidates")
	for i := 0; i < nCands && d.err == nil; i++ {
		c := estimate.FittedCandidate{
			SourceID:       source.ID(d.i64("sourceID")),
			Name:           d.str("name"),
			UpdateInterval: d.f64("updateInterval"),
			LastUpdate:     d.tick("lastUpdate"),
			CoverageT0:     d.f64("coverageT0"),
			B:              d.words("B"),
			Bcov:           d.words("Bcov"),
			Bup:            d.words("Bup"),
			Gi:             d.km("Gi"),
			Gd:             d.km("Gd"),
			Gu:             d.km("Gu"),
		}
		nDelays := d.count(9, "insert delays")
		for k := 0; k < nDelays && d.err == nil; k++ {
			c.InsertDelays = append(c.InsertDelays, stats.Duration{
				Value:    d.f64("delay value"),
				Censored: d.u8("delay censored") != 0,
			})
		}
		nCovers := d.count(1, "covers")
		for k := 0; k < nCovers && d.err == nil; k++ {
			c.Covers = append(c.Covers, d.u8("cover flag") != 0)
		}
		f.Candidates = append(f.Candidates, c)
	}
	return f
}
