// Package modelcache persists fitted estimation models to disk so that a
// process restart — or a registry miss in the selection server — does not
// have to re-run the statistical fits of Section 4 of the paper. A cache
// entry is a versioned, checksummed binary snapshot of an
// estimate.Fitted, keyed by a SHA-256 digest of the training inputs (the
// world evolution and the source capture logs) plus the fit parameters.
// On load the digest is re-verified against the live dataset; any
// mismatch, version skew or corruption falls back to recomputing the fit,
// so the cache can never serve stale or damaged models.
package modelcache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"freshsource/internal/source"
	"freshsource/internal/world"
)

// digestVersion is folded into the snapshot digest so that any change to
// the digested fields or their order invalidates every old digest.
const digestVersion = "freshsource-modelcache-digest-v1"

// Digest fingerprints the training inputs of a fit: the full world
// evolution (entity lives, updates and visibilities) and every source's
// schedule and capture log. Two (world, sources) pairs share a digest
// exactly when a fit over them produces identical models, so the digest is
// safe as a cache key for any fit window over the same data.
func Digest(w *world.World, srcs []*source.Source) [32]byte {
	h := sha256.New()
	h.Write([]byte(digestVersion))
	writeI64(h, int64(w.Horizon()))

	ents := w.Entities()
	writeI64(h, int64(len(ents)))
	for i := range ents {
		e := &ents[i]
		writeI64(h, int64(e.ID))
		writeI64(h, int64(e.Point.Location))
		writeI64(h, int64(e.Point.Category))
		writeI64(h, int64(e.Born))
		writeI64(h, int64(e.Died))
		writeI64(h, int64(len(e.Updates)))
		for _, u := range e.Updates {
			writeI64(h, int64(u))
		}
		writeU64(h, math.Float64bits(e.Visibility))
	}

	writeI64(h, int64(len(srcs)))
	for _, s := range srcs {
		spec := s.Spec()
		writeI64(h, int64(s.ID()))
		writeStr(h, spec.Name)
		writeI64(h, int64(spec.UpdateInterval))
		writeI64(h, int64(spec.Phase))
		writeI64(h, int64(len(spec.Points)))
		for _, p := range spec.Points {
			writeI64(h, int64(p.Location))
			writeI64(h, int64(p.Category))
		}
		events := s.Log().Events()
		writeI64(h, int64(len(events)))
		for _, ev := range events {
			writeI64(h, int64(ev.Entity))
			writeI64(h, int64(ev.Kind))
			writeI64(h, int64(ev.At))
			writeI64(h, int64(ev.Version))
		}
	}

	var out [32]byte
	h.Sum(out[:0])
	return out
}

func writeU64(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

func writeI64(h hash.Hash, v int64) { writeU64(h, uint64(v)) }

func writeStr(h hash.Hash, s string) {
	writeI64(h, int64(len(s)))
	h.Write([]byte(s))
}
