package modelcache

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/estimate"
	"freshsource/internal/obs"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// Status classifies how LoadOrFit obtained its models.
type Status int

const (
	// StatusMiss: no usable cache file existed; the models were fitted
	// from scratch and saved.
	StatusMiss Status = iota
	// StatusHit: the models were loaded from a verified cache file; no
	// statistical fitting ran.
	StatusHit
	// StatusCorrupt: a cache file existed but failed verification
	// (checksum, version or digest); the models were refitted and the
	// file rewritten.
	StatusCorrupt
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusMiss:
		return "miss"
	case StatusHit:
		return "hit"
	case StatusCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Cache is a directory of persisted model fits. The zero value is not
// usable; construct with New. A Cache is safe for concurrent use — entry
// files are written atomically and every load is fully verified — though
// concurrent misses on the same key may fit redundantly (last writer
// wins, and both writers produce byte-identical files).
type Cache struct {
	dir string
}

// New opens (creating if needed) a model cache rooted at dir.
func New(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("modelcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// FileName names the cache entry for a snapshot digest and fit window.
// The digest prefix identifies the training data; the fit parameters —
// t0, maxT and the queried points — are folded into a second key because
// they change the fitted tables. Deliberately absent: frequency divisors
// and cost parameters, which are re-derived on load, so one cache entry
// serves every divisor and cost configuration over the same fit.
func FileName(digest [32]byte, t0, maxT timeline.Tick, pts []world.DomainPoint) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(int64(t0))
	put(int64(maxT))
	put(int64(len(pts)))
	for _, p := range pts {
		put(int64(p.Location))
		put(int64(p.Category))
	}
	return fmt.Sprintf("%x-%016x.fsmc", digest[:12], h.Sum64())
}

// Path returns the file path of the cache entry for a digest and fit
// window.
func (c *Cache) Path(digest [32]byte, t0, maxT timeline.Tick, pts []world.DomainPoint) string {
	return filepath.Join(c.dir, FileName(digest, t0, maxT, pts))
}

// LoadOrFit returns trained models for the dataset, loading them from the
// cache when a verified entry exists and fitting (then saving) otherwise.
// The returned Trained is byte-identical whichever path produced it. A
// cache file that fails verification — corruption, version skew, or a
// digest that no longer matches the dataset (e.g. a hash collision in the
// file name) — is treated as absent and overwritten with a fresh fit;
// corruption never propagates to the caller. Save failures are also
// non-fatal: the fit succeeded, so the models are returned and only a
// counter records that the cache could not be written.
func (c *Cache) LoadOrFit(ctx context.Context, d *dataset.Dataset, opt core.TrainOptions) (*core.Trained, Status, error) {
	sp := obs.Start("modelcache.digest.seconds")
	digest := Digest(d.World, d.Sources)
	sp.End()

	maxT := opt.MaxT
	if maxT == 0 {
		maxT = d.World.Horizon() - 1
	}
	path := c.Path(digest, d.T0, maxT, opt.Points)

	status := StatusMiss
	sp = obs.Start("modelcache.load.seconds")
	gotDigest, fitted, err := Load(path)
	sp.End()
	if err == nil && gotDigest != digest {
		err = fmt.Errorf("%w: snapshot digest mismatch", ErrCorrupt)
	}
	if err == nil {
		var est *estimate.Estimator
		est, err = estimate.FromFitted(d.World, fitted)
		if err == nil {
			tr, ferr := core.FromEstimator(est, d.T0, opt)
			if ferr != nil {
				return nil, StatusHit, ferr
			}
			obs.Counter("modelcache.hits").Inc()
			return tr, StatusHit, nil
		}
		err = fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if os.IsNotExist(err) {
		obs.Counter("modelcache.misses").Inc()
	} else {
		status = StatusCorrupt
		obs.Counter("modelcache.corrupt").Inc()
	}

	est, err := estimate.NewFit(ctx, d.World, d.Sources, d.T0, maxT, opt.Points,
		estimate.FitOptions{Workers: opt.FitWorkers})
	if err != nil {
		return nil, status, err
	}
	snap, err := est.Export()
	if err != nil {
		return nil, status, err
	}
	sp = obs.Start("modelcache.save.seconds")
	if err := Save(path, digest, snap); err != nil {
		obs.Counter("modelcache.save_errors").Inc()
	} else {
		obs.Counter("modelcache.saves").Inc()
	}
	sp.End()
	tr, err := core.FromEstimator(est, d.T0, opt)
	if err != nil {
		return nil, status, err
	}
	return tr, status, nil
}
