package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsTransparent(t *testing.T) {
	Reset()
	if err := Inject("nowhere"); err != nil {
		t.Fatalf("disarmed Inject: %v", err)
	}
	in := []byte("payload")
	out, err := Read("nowhere", in)
	if err != nil {
		t.Fatalf("disarmed Read: %v", err)
	}
	if &out[0] != &in[0] {
		t.Error("disarmed Read copied the buffer")
	}
	if Fired("nowhere") != 0 {
		t.Error("disarmed site reports firings")
	}
}

func TestErrAndTimes(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("s", Fault{Err: boom, Times: 2})
	for i := 0; i < 2; i++ {
		if err := Inject("s"); !errors.Is(err, boom) {
			t.Fatalf("firing %d: %v", i, err)
		}
	}
	if err := Inject("s"); err != nil {
		t.Fatalf("exhausted fault still fires: %v", err)
	}
	if got := Fired("s"); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

func TestReadCorruptAndErr(t *testing.T) {
	defer Reset()
	Set("r", Fault{Corrupt: func(b []byte) []byte { return append([]byte("X"), b...) }})
	out, err := Read("r", []byte("abc"))
	if err != nil || string(out) != "Xabc" {
		t.Fatalf("corrupt read: %q, %v", out, err)
	}

	boom := errors.New("disk gone")
	Set("r", Fault{Err: boom})
	if _, err := Read("r", []byte("abc")); !errors.Is(err, boom) {
		t.Fatalf("err read: %v", err)
	}
}

func TestDelay(t *testing.T) {
	defer Reset()
	Set("d", Fault{Delay: 30 * time.Millisecond, Times: 1})
	t0 := time.Now()
	if err := Inject("d"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed < 30*time.Millisecond {
		t.Errorf("delay fault returned after %v", elapsed)
	}
}

// TestConcurrentTake exercises the seam from many goroutines (the race
// workload): Times must be an exact budget even under contention.
func TestConcurrentTake(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("c", Fault{Err: boom, Times: 10})
	var hits atomic32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if Inject("c") != nil {
					hits.add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := hits.load(); got != 10 {
		t.Errorf("fault fired %d times, want exactly 10", got)
	}
	if Fired("c") != 10 {
		t.Errorf("Fired = %d, want 10", Fired("c"))
	}
}

type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
