// Package faults is a process-global fault-injection seam for chaos
// testing the serving stack. Production code calls the seam at its I/O and
// compute boundaries (snapshot reads, model-cache load/save, model fits);
// tests arm named faults that make those boundaries fail, stall, or return
// corrupted bytes — deterministically, without build tags, and without the
// production packages knowing anything beyond the site name.
//
// The disarmed path is a single atomic load, so the seams stay in release
// builds at negligible cost (the same contract as internal/obs).
//
// Wired sites:
//
//	snapio.read       every line/file read while loading a snapshot
//	modelcache.load   cache-file read in modelcache.Load
//	modelcache.save   cache-file write in modelcache.Save
//	serve.fit         the registry's detached model fit, before it runs
//	ingest.read       every epoch-log frame payload read during recovery
//	ingest.append     the durable epoch append at the head of a commit
//	ingest.refit      the incremental refit of a committed epoch, before it runs
//	ingest.publish    the generation publish of a committed epoch (serve.CommitEpoch)
//
// A Fault fires at most Times times (0 = unlimited); Fired reports how
// often a site actually fired, so tests can assert the fault was hit.
// Always pair Set with a deferred Reset — faults are process-global.
package faults

import (
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes one injected failure mode. Any combination of fields may
// be set; on each firing the site sleeps Delay, then returns Err if set,
// else applies Corrupt to the bytes flowing through the seam.
type Fault struct {
	// Err is returned from the seam, simulating a hard I/O or compute
	// failure.
	Err error
	// Delay is slept before the seam returns, simulating slow disks or
	// long fits.
	Delay time.Duration
	// Corrupt mutates the bytes read through the seam (byte seams only),
	// simulating torn or bit-rotted files. It must not modify its input
	// in place.
	Corrupt func([]byte) []byte
	// Times bounds how many firings the fault has (0 = every pass).
	Times int
}

type site struct {
	f     Fault
	fired int
}

var (
	armed atomic.Bool
	mu    sync.Mutex
	sites = map[string]*site{}
)

// Set arms a fault at the named site, replacing any previous fault there
// (and resetting its fired count).
func Set(name string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	sites[name] = &site{f: f}
	armed.Store(true)
}

// Clear disarms the named site.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(sites, name)
	armed.Store(len(sites) > 0)
}

// Reset disarms every site. Tests defer this after arming anything.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = map[string]*site{}
	armed.Store(false)
}

// Fired reports how many times the named site's fault has fired since it
// was Set.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[name]; s != nil {
		return s.fired
	}
	return 0
}

// take claims one firing of the site's fault, if armed and not exhausted.
func take(name string) (Fault, bool) {
	if !armed.Load() {
		return Fault{}, false
	}
	mu.Lock()
	defer mu.Unlock()
	s := sites[name]
	if s == nil || (s.f.Times > 0 && s.fired >= s.f.Times) {
		return Fault{}, false
	}
	s.fired++
	return s.f, true
}

// Inject is the seam for non-byte sites: it sleeps the armed fault's
// Delay and returns its Err (nil when disarmed, exhausted, or delay-only).
func Inject(name string) error {
	f, ok := take(name)
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	return f.Err
}

// Read is the seam for byte sites: called with a just-read buffer, it
// sleeps the armed fault's Delay, returns its Err if set, else returns the
// buffer passed through Corrupt. Disarmed, it returns the buffer untouched.
func Read(name string, b []byte) ([]byte, error) {
	f, ok := take(name)
	if !ok {
		return b, nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Err != nil {
		return nil, f.Err
	}
	if f.Corrupt != nil {
		return f.Corrupt(b), nil
	}
	return b, nil
}
