// Package version carries the build identity stamped into the binaries at
// link time. The Makefile's build targets pass
//
//	-ldflags "-X freshsource/internal/version.Version=<git describe>
//	          -X freshsource/internal/version.Commit=<git rev-parse>"
//
// so /healthz and the freshbench run header can report exactly which build
// is serving; a plain `go build` leaves the dev defaults in place.
package version

import "runtime"

var (
	// Version is the human-readable build version ("dev" unless stamped).
	Version = "dev"
	// Commit is the VCS revision the binary was built from.
	Commit = "unknown"
)

// String renders "version (commit, goversion)".
func String() string {
	return Version + " (" + Commit + ", " + runtime.Version() + ")"
}
