package snapio

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteIntoFilePathFails(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := smallDataset(t)
	if err := Write(filepath.Join(blocker, "sub"), d); err == nil {
		t.Error("want error writing under a regular file")
	}
}

func TestReadMissingWorldFile(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, worldFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil {
		t.Error("want error for missing world file")
	}
}

func TestReadCorruptEntityLine(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, worldFile), []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil {
		t.Error("want error for corrupt entity line")
	}
}

func TestReadCorruptSourceLine(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, sourcesFile), []byte("[\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil {
		t.Error("want error for corrupt source line")
	}
}

func TestReadBlankLinesTolerated(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	// Append blank lines to the events file; Read must skip them.
	f, err := os.OpenFile(filepath.Join(dir, eventsFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Read(dir); err != nil {
		t.Errorf("blank lines should be tolerated: %v", err)
	}
}
