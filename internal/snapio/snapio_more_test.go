package snapio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteIntoFilePathFails(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := smallDataset(t)
	if err := Write(filepath.Join(blocker, "sub"), d); err == nil {
		t.Error("want error writing under a regular file")
	}
}

func TestReadMissingWorldFile(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, worldFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil {
		t.Error("want error for missing world file")
	}
}

func TestReadCorruptEntityLine(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, worldFile), []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil {
		t.Error("want error for corrupt entity line")
	}
}

func TestReadCorruptSourceLine(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, sourcesFile), []byte("[\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil {
		t.Error("want error for corrupt source line")
	}
}

func TestReadBlankLinesTolerated(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	// Append blank lines to the events file; Read must skip them.
	f, err := os.OpenFile(filepath.Join(dir, eventsFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Read(dir); err != nil {
		t.Errorf("blank lines should be tolerated: %v", err)
	}
}

// TestWritePathCollisions makes each output file in turn uncreatable by
// pre-creating a directory with its name; Write must fail at that step.
func TestWritePathCollisions(t *testing.T) {
	d := smallDataset(t)
	for _, name := range []string{manifestFile, worldFile, sourcesFile, eventsFile} {
		dir := t.TempDir()
		if err := os.Mkdir(filepath.Join(dir, name), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := Write(dir, d); err == nil {
			t.Errorf("want error when %s is a directory", name)
		}
	}
}

func TestReadInvalidEntityRejected(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	// Valid JSON, invalid world: born beyond the horizon.
	line := `{"id":0,"location":0,"category":0,"born":999999,"died":-1,"visibility":1}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, worldFile), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil {
		t.Error("want error for entity born beyond horizon")
	}
}

func TestReadCorruptEventLine(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, eventsFile), []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil {
		t.Error("want error for corrupt event line")
	}
}

func TestReadEventBeyondHorizonRejected(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	// Valid JSON, invalid log: event tick outside the observation window.
	line := `{"src":0,"entity":0,"kind":0,"at":999999}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, eventsFile), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Read(dir)
	if err == nil {
		t.Fatal("want error for event beyond horizon")
	}
	if !strings.Contains(err.Error(), "snapio: source") {
		t.Errorf("error should name the offending source: %v", err)
	}
}

func TestWriteJSONUnmarshalableValue(t *testing.T) {
	if err := writeJSON(filepath.Join(t.TempDir(), "x.json"), func() {}); err == nil {
		t.Error("want error for unmarshalable value")
	}
}

func TestWriteLinesCallbackFailures(t *testing.T) {
	dir := t.TempDir()
	wantErr := errors.New("boom")
	if err := writeLines(filepath.Join(dir, "a.jsonl"), 1, func(int) (interface{}, error) {
		return nil, wantErr
	}); !errors.Is(err, wantErr) {
		t.Errorf("record error not propagated: %v", err)
	}
	if err := writeLines(filepath.Join(dir, "b.jsonl"), 1, func(int) (interface{}, error) {
		return make(chan int), nil
	}); err == nil {
		t.Error("want error encoding an unmarshalable record")
	}
}
