package snapio

import (
	"os"
	"path/filepath"
	"testing"

	"freshsource/internal/dataset"
	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
)

func smallDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 5
	cfg.Categories = 4
	cfg.NumSources = 6
	cfg.Horizon = 120
	cfg.T0 = 70
	cfg.Scale = 0.3
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRoundTrip(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{manifestFile, worldFile, sourcesFile, eventsFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}

	got, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.T0 != d.T0 || got.Horizon() != d.Horizon() {
		t.Errorf("manifest mismatch: %s/%d/%d", got.Name, got.T0, got.Horizon())
	}
	if got.World.NumEntities() != d.World.NumEntities() {
		t.Fatalf("entities %d != %d", got.World.NumEntities(), d.World.NumEntities())
	}
	if got.World.Log().Len() != d.World.Log().Len() {
		t.Errorf("world log %d != %d", got.World.Log().Len(), d.World.Log().Len())
	}
	if len(got.Sources) != len(d.Sources) {
		t.Fatalf("sources %d != %d", len(got.Sources), len(d.Sources))
	}
	for i := range d.Sources {
		a, b := d.Sources[i], got.Sources[i]
		if a.Name() != b.Name() || a.UpdateInterval() != b.UpdateInterval() {
			t.Errorf("source %d metadata mismatch", i)
		}
		ae, be := a.Log().Events(), b.Log().Events()
		if len(ae) != len(be) {
			t.Fatalf("source %d log %d != %d", i, len(ae), len(be))
		}
		for k := range ae {
			if ae[k] != be[k] {
				t.Fatalf("source %d event %d: %+v != %+v", i, k, ae[k], be[k])
			}
		}
	}
}

func TestRoundTripPreservesQuality(t *testing.T) {
	// The decisive property: every quality metric computed on the loaded
	// dataset matches the original exactly.
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, tick := range []timeline.Tick{10, 60, 110} {
		q1 := metrics.QualityAt(d.World, d.Sources, tick, nil)
		q2 := metrics.QualityAt(got.World, got.Sources, tick, nil)
		if q1 != q2 {
			t.Errorf("tick %d: quality %+v != %+v", tick, q1, q2)
		}
	}
}

func TestWriteNil(t *testing.T) {
	if err := Write(t.TempDir(), nil); err == nil {
		t.Error("want error for nil dataset")
	}
}

func TestReadMissingDir(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("want error for missing directory")
	}
}

func TestReadCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil {
		t.Error("want error for corrupt manifest")
	}
}

func TestReadSourceCountMismatch(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	// Tamper: claim one more source in the manifest.
	if err := writeJSON(filepath.Join(dir, manifestFile), manifest{
		Name: d.Name, Horizon: d.Horizon(), T0: d.T0, NumSources: len(d.Sources) + 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil {
		t.Error("want error for source count mismatch")
	}
}

func TestReadBadEventSource(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, eventsFile),
		[]byte(`{"src":99,"entity":0,"kind":0,"at":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil {
		t.Error("want error for unknown source reference")
	}
}

func TestLoadedDatasetTrainsAndSelects(t *testing.T) {
	// End-to-end: a persisted-then-loaded dataset goes through the full
	// training + selection pipeline.
	d := smallDataset(t)
	dir := t.TempDir()
	if err := Write(dir, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Exercise profiling on the loaded logs via the metrics pipeline and a
	// downsample (source-level operations must work on loaded sources).
	down, err := got.Sources[0].Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if down.Log().Len() > got.Sources[0].Log().Len() {
		t.Error("downsample on loaded source broken")
	}
	_ = source.ID(0)
}
