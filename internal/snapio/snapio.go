// Package snapio persists datasets — a world evolution plus per-source
// capture logs — to a directory of JSON-lines files and loads them back.
// This is the bridge between the simulators and real corpora: an adopter
// with their own snapshot archive writes it in this format and feeds it to
// the training and selection pipeline unchanged.
//
// Layout of a dataset directory:
//
//	manifest.json    {"name", "horizon", "t0", "numSources"}
//	world.jsonl      one line per entity: id, location, category, born,
//	                 died (-1 = alive), update ticks, visibility
//	sources.jsonl    one line per source: id, name, schedule, observed
//	                 domain points
//	events.jsonl     one line per captured source event: source, entity,
//	                 kind, tick, version
//
// Everything round-trips exactly: Write followed by Read yields a dataset
// whose world log, source logs and quality metrics are identical.
package snapio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"freshsource/internal/dataset"
	"freshsource/internal/faults"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// faultSite is the fault-injection seam name for snapshot reads: every
// file and line loaded by Read passes through it, so chaos tests can
// simulate slow disks, hard read errors, and torn/corrupted snapshot
// files without touching the files themselves.
const faultSite = "snapio.read"

const (
	manifestFile = "manifest.json"
	worldFile    = "world.jsonl"
	sourcesFile  = "sources.jsonl"
	eventsFile   = "events.jsonl"
)

type manifest struct {
	Name       string        `json:"name"`
	Horizon    timeline.Tick `json:"horizon"`
	T0         timeline.Tick `json:"t0"`
	NumSources int           `json:"numSources"`
}

type entityRec struct {
	ID         timeline.EntityID `json:"id"`
	Location   int               `json:"location"`
	Category   int               `json:"category"`
	Born       timeline.Tick     `json:"born"`
	Died       timeline.Tick     `json:"died"`
	Updates    []timeline.Tick   `json:"updates,omitempty"`
	Visibility float64           `json:"visibility"`
}

type pointRec struct {
	L int `json:"l"`
	C int `json:"c"`
}

type sourceRec struct {
	ID       source.ID     `json:"id"`
	Name     string        `json:"name"`
	Interval timeline.Tick `json:"interval"`
	Phase    timeline.Tick `json:"phase"`
	Points   []pointRec    `json:"points"`
}

type eventRec struct {
	Source  source.ID          `json:"src"`
	Entity  timeline.EntityID  `json:"entity"`
	Kind    timeline.EventKind `json:"kind"`
	At      timeline.Tick      `json:"at"`
	Version int                `json:"version,omitempty"`
}

// Write persists the dataset into dir, creating it if needed.
func Write(dir string, d *dataset.Dataset) error {
	if d == nil || d.World == nil {
		return errors.New("snapio: nil dataset")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	m := manifest{Name: d.Name, Horizon: d.Horizon(), T0: d.T0, NumSources: len(d.Sources)}
	if err := writeJSON(filepath.Join(dir, manifestFile), m); err != nil {
		return err
	}

	if err := writeLines(filepath.Join(dir, worldFile), len(d.World.Entities()), func(i int) (interface{}, error) {
		e := d.World.Entities()[i]
		return entityRec{
			ID: e.ID, Location: e.Point.Location, Category: e.Point.Category,
			Born: e.Born, Died: e.Died, Updates: e.Updates, Visibility: e.Visibility,
		}, nil
	}); err != nil {
		return err
	}

	if err := writeLines(filepath.Join(dir, sourcesFile), len(d.Sources), func(i int) (interface{}, error) {
		s := d.Sources[i]
		spec := s.Spec()
		rec := sourceRec{ID: s.ID(), Name: s.Name(), Interval: spec.UpdateInterval, Phase: spec.Phase}
		for _, p := range spec.Points {
			rec.Points = append(rec.Points, pointRec{L: p.Location, C: p.Category})
		}
		return rec, nil
	}); err != nil {
		return err
	}

	f, err := os.Create(filepath.Join(dir, eventsFile))
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(w)
	for i, s := range d.Sources {
		for _, ev := range s.Log().Events() {
			if err := enc.Encode(eventRec{
				Source: source.ID(i), Entity: ev.Entity, Kind: ev.Kind, At: ev.At, Version: ev.Version,
			}); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

// Read loads a dataset previously persisted with Write (or assembled
// externally in the same format).
//
// Loaded sources carry the persisted schedule and observed points; their
// capture-effectiveness specs are unknown (they live in the logs, which is
// all the profilers need).
func Read(dir string) (*dataset.Dataset, error) {
	var m manifest
	if err := readJSON(filepath.Join(dir, manifestFile), &m); err != nil {
		return nil, err
	}

	var entities []world.Entity
	if err := readLines(filepath.Join(dir, worldFile), func(line []byte) error {
		var r entityRec
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		entities = append(entities, world.Entity{
			ID:    r.ID,
			Point: world.DomainPoint{Location: r.Location, Category: r.Category},
			Born:  r.Born, Died: r.Died, Updates: r.Updates, Visibility: r.Visibility,
		})
		return nil
	}); err != nil {
		return nil, err
	}
	w, err := world.FromEntities(entities, m.Horizon)
	if err != nil {
		return nil, err
	}

	var srcRecs []sourceRec
	if err := readLines(filepath.Join(dir, sourcesFile), func(line []byte) error {
		var r sourceRec
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		srcRecs = append(srcRecs, r)
		return nil
	}); err != nil {
		return nil, err
	}
	if len(srcRecs) != m.NumSources {
		return nil, fmt.Errorf("snapio: manifest says %d sources, file has %d", m.NumSources, len(srcRecs))
	}

	eventsBySource := make([][]timeline.Event, len(srcRecs))
	if err := readLines(filepath.Join(dir, eventsFile), func(line []byte) error {
		var r eventRec
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		i := int(r.Source)
		if i < 0 || i >= len(srcRecs) {
			return fmt.Errorf("snapio: event references unknown source %d", i)
		}
		eventsBySource[i] = append(eventsBySource[i], timeline.Event{
			Entity: r.Entity, Kind: r.Kind, At: r.At, Version: r.Version,
		})
		return nil
	}); err != nil {
		return nil, err
	}

	d := &dataset.Dataset{Name: m.Name, World: w, T0: m.T0}
	for i, rec := range srcRecs {
		spec := source.Spec{
			Name:           rec.Name,
			UpdateInterval: rec.Interval,
			Phase:          rec.Phase,
			// Capture effectiveness is not persisted: the logs carry it.
			Insert: source.CaptureSpec{Prob: 1, Delay: source.ConstantDelay{D: 0}},
			Delete: source.CaptureSpec{Prob: 1, Delay: source.ConstantDelay{D: 0}},
			Update: source.CaptureSpec{Prob: 1, Delay: source.ConstantDelay{D: 0}},
		}
		for _, p := range rec.Points {
			spec.Points = append(spec.Points, world.DomainPoint{Location: p.L, Category: p.C})
		}
		s, err := source.FromLog(rec.ID, spec, m.Horizon, eventsBySource[i])
		if err != nil {
			return nil, fmt.Errorf("snapio: source %s: %w", rec.Name, err)
		}
		d.Sources = append(d.Sources, s)
	}
	return d, nil
}

func writeJSON(path string, v interface{}) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func readJSON(path string, v interface{}) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if b, err = faults.Read(faultSite, b); err != nil {
		return fmt.Errorf("snapio: read %s: %w", path, err)
	}
	return json.Unmarshal(b, v)
}

func writeLines(path string, n int, rec func(i int) (interface{}, error)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		v, err := rec(i)
		if err != nil {
			return err
		}
		if err := enc.Encode(v); err != nil {
			return err
		}
	}
	return w.Flush()
}

func readLines(path string, fn func(line []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		line, err := faults.Read(faultSite, line)
		if err != nil {
			return fmt.Errorf("snapio: read %s: %w", path, err)
		}
		if err := fn(line); err != nil {
			return err
		}
	}
	return sc.Err()
}
