package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, a header row, and data
// rows. Figures render as tables of series samples.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries free-form commentary (fit p-values, crossover counts,
	// correlation coefficients) printed under the table.
	Notes []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("== ")
	b.WriteString(t.Title)
	b.WriteString(" ==\n")

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}
