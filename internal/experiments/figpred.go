package experiments

import (
	"fmt"
	"sort"

	"freshsource/internal/estimate"
	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// predictOmegaErrors fits world models for a group of points at T0 and
// returns the relative error of E[|Ω|t] vs the actual count at each tick.
func predictOmegaErrors(w *world.World, t0 timeline.Tick, pts []world.DomainPoint, ticks []timeline.Tick) ([]float64, error) {
	var models []*estimate.WorldModel
	for _, p := range pts {
		m, err := estimate.FitWorldPoint(w, t0, p)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	pred := estimate.PredictOmegaSeries(models, ticks)
	errs := make([]float64, len(ticks))
	for i, t := range ticks {
		actual := float64(w.AliveCount(t, pts))
		errs[i] = stats.RelativeError(pred[i], actual)
	}
	return errs, nil
}

// groupByError partitions named error series into nGroups by average error
// and returns one representative (the group median) per group with the
// group size.
type repSeries struct {
	name   string
	size   int
	series []float64
}

func groupByError(names []string, series [][]float64, nGroups int) []repSeries {
	type item struct {
		name string
		avg  float64
		s    []float64
	}
	items := make([]item, len(names))
	for i := range names {
		items[i] = item{names[i], stats.Mean(series[i]), series[i]}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].avg < items[j].avg })
	if nGroups > len(items) {
		nGroups = len(items)
	}
	var out []repSeries
	for g := 0; g < nGroups; g++ {
		lo := g * len(items) / nGroups
		hi := (g + 1) * len(items) / nGroups
		if hi <= lo {
			continue
		}
		rep := items[(lo+hi)/2]
		out = append(out, repSeries{name: rep.name, size: hi - lo, series: rep.s})
	}
	return out
}

// Fig9 reproduces Figures 9(a)/(b): relative error of predicted listing
// counts per state group (5 groups) and per business-category group (4
// groups of the 10 largest categories) over 13 future time points.
func Fig9(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	ticks := futurePoints(d.T0, d.Horizon(), 13)

	// (a) per state.
	locSet := map[int]bool{}
	for _, p := range d.World.Points() {
		locSet[p.Location] = true
	}
	var names []string
	var series [][]float64
	for l := 0; l < len(locSet); l++ {
		errs, err := predictOmegaErrors(d.World, d.T0, pointsOfLocation(d.World, l), ticks)
		if err != nil {
			return nil, err
		}
		names = append(names, fmt.Sprintf("state-%02d", l))
		series = append(series, errs)
	}
	reps := groupByError(names, series, 5)
	ta := &Table{Title: "Figure 9a — relative prediction error of total listings per state group (BL)"}
	ta.Header = append(ta.Header, "time-index")
	for _, r := range reps {
		ta.Header = append(ta.Header, fmt.Sprintf("%s(n=%d)", r.name, r.size))
	}
	for i := range ticks {
		row := []interface{}{i + 1}
		for _, r := range reps {
			row = append(row, r.series[i])
		}
		ta.AddRow(row...)
	}
	var all float64
	var cnt int
	for _, s := range series {
		for _, e := range s {
			all += e
			cnt++
		}
	}
	ta.AddNote("mean relative error over all states and ticks = %.4f (paper: ≈ 2%%)", all/float64(cnt))

	// (b) per business category: the 10 largest categories.
	type catSize struct {
		cat  int
		size int
	}
	catCount := map[int]int{}
	for _, p := range d.World.Points() {
		catCount[p.Category] += d.World.AliveCount(d.T0, []world.DomainPoint{p})
	}
	var cats []catSize
	for c, n := range catCount {
		cats = append(cats, catSize{c, n})
	}
	sort.Slice(cats, func(i, j int) bool {
		if cats[i].size != cats[j].size {
			return cats[i].size > cats[j].size
		}
		return cats[i].cat < cats[j].cat
	})
	if len(cats) > 10 {
		cats = cats[:10]
	}
	names, series = nil, nil
	for _, cs := range cats {
		var pts []world.DomainPoint
		for _, p := range d.World.Points() {
			if p.Category == cs.cat {
				pts = append(pts, p)
			}
		}
		errs, err := predictOmegaErrors(d.World, d.T0, pts, ticks)
		if err != nil {
			return nil, err
		}
		names = append(names, fmt.Sprintf("cat-%02d", cs.cat))
		series = append(series, errs)
	}
	reps = groupByError(names, series, 4)
	tb := &Table{Title: "Figure 9b — relative prediction error of total listings per business-category group (BL)"}
	tb.Header = append(tb.Header, "time-index")
	for _, r := range reps {
		tb.Header = append(tb.Header, fmt.Sprintf("%s(n=%d)", r.name, r.size))
	}
	for i := range ticks {
		row := []interface{}{i + 1}
		for _, r := range reps {
			row = append(row, r.series[i])
		}
		tb.AddRow(row...)
	}
	return []*Table{ta, tb}, nil
}

// Fig10a reproduces Figure 10(a): relative error of predicted event counts
// for four event-location pairs in GDELT over 7 future days.
func Fig10a(env *Env) ([]*Table, error) {
	d, err := env.GDELT()
	if err != nil {
		return nil, err
	}
	ticks := futurePoints(d.T0, d.Horizon(), 7)
	// Two event types from each of the two largest locations (US, IN in
	// the paper).
	var pairs []world.DomainPoint
	for _, loc := range []int{0, 1} {
		pts := pointsOfLocation(d.World, loc)
		sort.Slice(pts, func(i, j int) bool {
			return d.World.AliveCount(d.T0, []world.DomainPoint{pts[i]}) > d.World.AliveCount(d.T0, []world.DomainPoint{pts[j]})
		})
		pairs = append(pairs, pts[0], pts[1])
	}
	tbl := &Table{Title: "Figure 10a — relative prediction error of total events, 4 event-location pairs (GDELT)"}
	tbl.Header = append(tbl.Header, "day")
	var all [][]float64
	for _, p := range pairs {
		errs, err := predictOmegaErrors(d.World, d.T0, []world.DomainPoint{p}, ticks)
		if err != nil {
			return nil, err
		}
		all = append(all, errs)
		tbl.Header = append(tbl.Header, fmt.Sprintf("L%d-EvT%d", p.Location, p.Category))
	}
	for i := range ticks {
		row := []interface{}{i + 1}
		for _, errs := range all {
			row = append(row, errs[i])
		}
		tbl.AddRow(row...)
	}
	return []*Table{tbl}, nil
}

// predictSourceQuality builds a per-source estimator and returns the
// relative errors of predicted coverage, local freshness and accuracy vs
// ground truth at the given ticks.
func predictSourceQuality(d *datasetHandle, src *source.Source, pts []world.DomainPoint, ticks []timeline.Tick) (cov, lf, acc []float64, err error) {
	e, err := estimate.New(d.world, []*source.Source{src}, d.t0, ticks[len(ticks)-1], pts)
	if err != nil {
		return nil, nil, nil, err
	}
	qs := e.QualityMulti([]int{0}, ticks)
	truth := metrics.QualitySeries(d.world, []*source.Source{src}, ticks, pts)
	for i := range ticks {
		cov = append(cov, stats.RelativeError(qs[i].Coverage, truth[i].Coverage))
		lf = append(lf, stats.RelativeError(qs[i].LocalFreshness, truth[i].LocalFreshness))
		acc = append(acc, stats.RelativeError(qs[i].Accuracy, truth[i].Accuracy))
	}
	return cov, lf, acc, nil
}

// datasetHandle is the slice of dataset fields the prediction helpers need.
type datasetHandle struct {
	world *world.World
	t0    timeline.Tick
}

// Fig10b reproduces Figure 10(b): relative error of coverage prediction for
// three large US sources in GDELT over 7 future days.
func Fig10b(env *Env) ([]*Table, error) {
	d, err := env.GDELT()
	if err != nil {
		return nil, err
	}
	ticks := futurePoints(d.T0, d.Horizon(), 7)
	pts := pointsOfLocation(d.World, 0)
	tbl := &Table{Title: "Figure 10b — relative error of coverage prediction, 3 large US sources (GDELT)"}
	tbl.Header = append(tbl.Header, "day")
	h := &datasetHandle{world: d.World, t0: d.T0}
	var all [][]float64
	var names []string
	count := 0
	for _, i := range d.LargestSources(len(d.Sources)) {
		src := d.Sources[i]
		// Only sources that actually cover the location qualify.
		coversLoc := false
		for _, p := range src.Spec().Points {
			if p.Location == 0 {
				coversLoc = true
				break
			}
		}
		if !coversLoc {
			continue
		}
		cov, _, _, err := predictSourceQuality(h, src, pts, ticks)
		if err != nil {
			return nil, err
		}
		all = append(all, cov)
		names = append(names, src.Name())
		count++
		if count == 3 {
			break
		}
	}
	tbl.Header = append(tbl.Header, names...)
	for i := range ticks {
		row := []interface{}{i + 1}
		for _, errs := range all {
			row = append(row, errs[i])
		}
		tbl.AddRow(row...)
	}
	return []*Table{tbl}, nil
}

// Fig11 reproduces Figure 11: relative error of predicted coverage,
// freshness and accuracy for the two largest BL sources over 13 future
// time points.
func Fig11(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	ticks := futurePoints(d.T0, d.Horizon(), 13)
	h := &datasetHandle{world: d.World, t0: d.T0}
	var out []*Table
	for rank, i := range d.LargestSources(2) {
		src := d.Sources[i]
		cov, lf, acc, err := predictSourceQuality(h, src, nil, ticks)
		if err != nil {
			return nil, err
		}
		tbl := &Table{
			Title:  fmt.Sprintf("Figure 11 — quality prediction error for the #%d largest BL source (%s)", rank+1, src.Name()),
			Header: []string{"time-index", "cov rel-err", "frsh rel-err", "acc rel-err"},
		}
		for k := range ticks {
			tbl.AddRow(k+1, cov[k], lf[k], acc[k])
		}
		tbl.AddNote("max relative errors: cov %.4f, frsh %.4f, acc %.4f (paper: <1.5%% for #1, <2.5%% for #2)",
			stats.Max(cov), stats.Max(lf), stats.Max(acc))
		out = append(out, tbl)
	}
	return out, nil
}
