// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic BL/GDELT counterparts. Each
// experiment is a function from an Env (lazily generated, cached datasets)
// to one or more render.Tables; cmd/experiments prints them and the root
// bench harness runs scaled-down versions.
//
// The per-experiment index lives in DESIGN.md; paper-vs-measured notes live
// in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/modelcache"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// Config sizes the experiment datasets.
type Config struct {
	BL    dataset.BLConfig
	GDELT dataset.GDELTConfig
	// ScalabilityMultipliers are the BL+ micro-source multipliers of
	// Figure 13a.
	ScalabilityMultipliers []int
	// DomainSizes are the query-domain sizes (#points) of Figure 13b.
	DomainSizes []int
	// GraspConfigs are the (κ, r) pairs evaluated for GRASP.
	GraspConfigs [][2]int
	// Epsilon is the local-search slack.
	Epsilon float64
	// Seed drives every randomized component.
	Seed int64
	// Workers fans each selection run's candidate sweeps across this many
	// goroutines (0 = sequential, negative = all cores); results are
	// identical at any setting.
	Workers int
	// CacheOracle memoizes oracle evaluations by candidate set per run.
	CacheOracle bool
	// FitWorkers bounds the model-fitting pool of every training run
	// (0 = GOMAXPROCS, 1 = sequential); fitted models are byte-identical
	// at any setting.
	FitWorkers int
	// ModelCacheDir, when non-empty, persists fitted models to disk so
	// repeated experiment runs over the same datasets skip refitting.
	ModelCacheDir string
}

// Default is the full-size configuration used by cmd/experiments.
func Default() Config {
	return Config{
		BL:                     dataset.DefaultBLConfig(),
		GDELT:                  dataset.DefaultGDELTConfig(),
		ScalabilityMultipliers: []int{0, 1, 2, 5, 10, 20, 50, 100, 200},
		DomainSizes:            []int{1, 50, 100, 200, 300, 400, 500},
		GraspConfigs:           [][2]int{{1, 1}, {2, 10}, {5, 20}, {10, 100}},
		Epsilon:                0.1,
		Seed:                   99,
	}
}

// Quick is the scaled-down configuration used by the root benches and the
// package tests: same structure, roughly 30× less data.
func Quick() Config {
	cfg := Default()
	cfg.BL.Locations = 12
	cfg.BL.Categories = 6
	cfg.BL.NumSources = 16
	cfg.BL.Horizon = 260
	cfg.BL.T0 = 140
	cfg.BL.Scale = 0.35
	cfg.GDELT.Locations = 14
	cfg.GDELT.EventTypes = 10
	cfg.GDELT.NumSources = 60
	cfg.GDELT.Scale = 0.5
	cfg.ScalabilityMultipliers = []int{0, 1, 2, 5}
	cfg.DomainSizes = []int{1, 20, 50}
	cfg.GraspConfigs = [][2]int{{1, 1}, {2, 10}, {5, 20}}
	return cfg
}

// Env carries lazily built, cached datasets shared across experiments.
type Env struct {
	Cfg   Config
	bl    *dataset.Dataset
	gdelt *dataset.Dataset
	mc    *modelcache.Cache
	mcErr error
}

// NewEnv returns an empty environment for the configuration.
func NewEnv(cfg Config) *Env { return &Env{Cfg: cfg} }

// Train fits (or cache-loads) models for a dataset, applying the
// environment's fit-worker and model-cache settings on top of opt. Every
// experiment trains through here so a single -fit.workers / -modelcache
// flag reaches all of them.
func (e *Env) Train(d *dataset.Dataset, opt core.TrainOptions) (*core.Trained, error) {
	opt.FitWorkers = e.Cfg.FitWorkers
	if e.Cfg.ModelCacheDir == "" {
		return core.Train(d.World, d.Sources, d.T0, opt)
	}
	if e.mc == nil && e.mcErr == nil {
		e.mc, e.mcErr = modelcache.New(e.Cfg.ModelCacheDir)
	}
	if e.mcErr != nil {
		return nil, e.mcErr
	}
	tr, _, err := e.mc.LoadOrFit(context.Background(), d, opt)
	return tr, err
}

// BL returns the (cached) BL-like dataset.
func (e *Env) BL() (*dataset.Dataset, error) {
	if e.bl == nil {
		d, err := dataset.GenerateBL(e.Cfg.BL)
		if err != nil {
			return nil, err
		}
		e.bl = d
	}
	return e.bl, nil
}

// GDELT returns the (cached) GDELT-like dataset.
func (e *Env) GDELT() (*dataset.Dataset, error) {
	if e.gdelt == nil {
		d, err := dataset.GenerateGDELT(e.Cfg.GDELT)
		if err != nil {
			return nil, err
		}
		e.gdelt = d
	}
	return e.gdelt, nil
}

// futurePoints returns n evenly spaced ticks in (t0, horizon).
func futurePoints(t0, horizon timeline.Tick, n int) []timeline.Tick {
	if n < 1 {
		return nil
	}
	span := horizon - 1 - t0
	out := make([]timeline.Tick, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t0+span*timeline.Tick(i)/timeline.Tick(n))
	}
	return out
}

// largestPoints returns the k domain points with the most live entities at
// tick t, descending.
func largestPoints(w *world.World, t timeline.Tick, k int) []world.DomainPoint {
	pts := w.Points()
	sort.Slice(pts, func(i, j int) bool {
		ci := w.AliveCount(t, []world.DomainPoint{pts[i]})
		cj := w.AliveCount(t, []world.DomainPoint{pts[j]})
		if ci != cj {
			return ci > cj
		}
		if pts[i].Location != pts[j].Location {
			return pts[i].Location < pts[j].Location
		}
		return pts[i].Category < pts[j].Category
	})
	if k > len(pts) {
		k = len(pts)
	}
	return pts[:k]
}

// pointsOfLocation returns every domain point of one location.
func pointsOfLocation(w *world.World, loc int) []world.DomainPoint {
	var out []world.DomainPoint
	for _, p := range w.Points() {
		if p.Location == loc {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Category < out[j].Category })
	return out
}

// fmtF renders a float with 4 significant decimals.
func fmtF(v float64) string { return fmt.Sprintf("%.4f", v) }
