package experiments

import (
	"fmt"
	"time"

	"freshsource/internal/core"
	"freshsource/internal/gain"
	"freshsource/internal/world"
)

// Fig12 reproduces Figure 12: the types of sources GRASP selects across
// the Table-1 instances when the gain is defined with coverage vs with
// accuracy — accuracy prefers smaller, more specialised sources.
func Fig12(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	pts := largestPoints(d.World, d.T0, 6)
	ticks := futurePoints(d.T0, d.Horizon(), 10)
	sizes := d.SizeAt(d.T0)

	var out []*Table
	var avgSize [2]float64
	for mi, m := range []gain.Metric{gain.Coverage, gain.Accuracy} {
		// Union of GRASP selections over the six domain-point instances.
		selected := map[int]bool{}
		for _, p := range pts {
			tr, err := env.Train(d, core.TrainOptions{
				Points: []world.DomainPoint{p},
				MaxT:   ticks[len(ticks)-1],
			})
			if err != nil {
				return nil, err
			}
			prob, err := core.NewProblem(tr, ticks, gain.Linear{Metric: m}, core.ProblemOptions{})
			if err != nil {
				return nil, err
			}
			sel, err := prob.Solve(core.GRASP, core.SolveOptions{
				Kappa: 5, Rounds: 20, Seed: env.Cfg.Seed, Epsilon: env.Cfg.Epsilon,
				Workers: env.Cfg.Workers, Cache: env.Cfg.CacheOracle,
			})
			if err != nil {
				return nil, err
			}
			for _, i := range sel.Set {
				selected[tr.CandidateSource(i)] = true
			}
		}
		tbl := &Table{
			Title:  fmt.Sprintf("Figure 12 — sources selected by GRASP for %s gain (union over the 6 instances)", m),
			Header: []string{"source", "#locations", "#categories", "size@t0"},
		}
		var total float64
		for srcIdx := range len(d.Sources) {
			if !selected[srcIdx] {
				continue
			}
			s := d.Sources[srcIdx]
			locs, cats := map[int]bool{}, map[int]bool{}
			for _, p := range s.Spec().Points {
				locs[p.Location] = true
				cats[p.Category] = true
			}
			tbl.AddRow(s.Name(), len(locs), len(cats), sizes[srcIdx])
			total += float64(sizes[srcIdx])
		}
		if len(selected) > 0 {
			avgSize[mi] = total / float64(len(selected))
		}
		out = append(out, tbl)
	}
	out[1].AddNote("avg selected source size: coverage %.0f vs accuracy %.0f (paper: accuracy prefers smaller, specialised sources)",
		avgSize[0], avgSize[1])
	return out, nil
}

// Fig13a reproduces Figure 13(a): runtime of the algorithms as the number
// of available sources grows via the BL+ micro-source decomposition.
func Fig13a(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	p := largestPoints(d.World, d.T0, 1)
	ticks := futurePoints(d.T0, d.Horizon(), 10)
	specs := env.algoSpecs()

	tbl := &Table{Title: "Figure 13a — runtime (ms) vs number of available sources (BL+)"}
	tbl.Header = []string{"#sources"}
	for _, s := range specs {
		tbl.Header = append(tbl.Header, s.name)
	}
	for _, m := range env.Cfg.ScalabilityMultipliers {
		plus, err := d.AddMicroSources(m, env.Cfg.Seed+int64(m))
		if err != nil {
			return nil, err
		}
		tr, err := env.Train(plus, core.TrainOptions{
			Points: p,
			MaxT:   ticks[len(ticks)-1],
		})
		if err != nil {
			return nil, err
		}
		prob, err := core.NewProblem(tr, ticks, gain.Linear{Metric: gain.Coverage}, core.ProblemOptions{})
		if err != nil {
			return nil, err
		}
		row := []interface{}{len(plus.Sources)}
		for _, spec := range specs {
			// Multi-round GRASP at thousands of candidates costs tens of
			// minutes (the paper reports ~10^6 ms); cap it so the sweep
			// stays tractable and mark the skip. The order-of-magnitude
			// ordering is already established at the smaller sizes.
			if spec.alg == core.GRASP && spec.kappa*spec.r > 400 && len(plus.Sources) > 1000 {
				row = append(row, "skipped")
				continue
			}
			if spec.alg == core.GRASP && spec.r > 1 && len(plus.Sources) > 2500 {
				row = append(row, "skipped")
				continue
			}
			sel, err := env.solve(prob, spec)
			if err != nil {
				return nil, err
			}
			row = append(row, durMS(sel.Duration))
		}
		tbl.AddRow(row...)
	}
	tbl.AddNote("paper: MaxSub is 1–2 orders of magnitude faster than the best GRASP configurations and scales better")
	tbl.AddNote("multi-round GRASP is skipped above 2500 sources (paper reports ~10^6 ms there)")
	return []*Table{tbl}, nil
}

// Fig13b reproduces Figure 13(b): runtime vs the size of the input data
// domain (number of (location, business-type) pairs in the query).
func Fig13b(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	all := largestPoints(d.World, d.T0, len(d.World.Points()))
	sizes := env.Cfg.DomainSizes
	if len(sizes) == 0 {
		sizes = []int{1, 50, 100, 200, 300, 400, 500}
	}
	ticks := futurePoints(d.T0, d.Horizon(), 10)

	// Coverage and accuracy gains, the algorithms of the paper's plot.
	specs := []algoSpec{
		{name: "Greedy", alg: core.Greedy},
		{name: "MaxSub", alg: core.MaxSub},
		{name: "Grasp-(1,1)", alg: core.GRASP, kappa: 1, r: 1},
		{name: "Grasp-(5,20)", alg: core.GRASP, kappa: 5, r: 20},
	}
	tbl := &Table{Title: "Figure 13b — runtime (ms) vs size of the input data domain"}
	tbl.Header = []string{"#points"}
	for _, m := range []string{"Cov.", "Acc."} {
		for _, s := range specs {
			tbl.Header = append(tbl.Header, m+"-"+s.name)
		}
	}
	for _, n := range sizes {
		if n > len(all) {
			break
		}
		pts := all[:n]
		tr, err := env.Train(d, core.TrainOptions{Points: pts, MaxT: ticks[len(ticks)-1]})
		if err != nil {
			return nil, err
		}
		row := []interface{}{n}
		for _, metric := range []gain.Metric{gain.Coverage, gain.Accuracy} {
			prob, err := core.NewProblem(tr, ticks, gain.Linear{Metric: metric}, core.ProblemOptions{})
			if err != nil {
				return nil, err
			}
			for _, spec := range specs {
				sel, err := env.solve(prob, spec)
				if err != nil {
					return nil, err
				}
				row = append(row, durMS(sel.Duration))
			}
		}
		tbl.AddRow(row...)
	}
	return []*Table{tbl}, nil
}

func durMS(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}
