package experiments

import (
	"freshsource/internal/estimate"
	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
)

// Ablation quantifies the design choices DESIGN.md calls out, by measuring
// how each degraded estimator variant predicts the quality of the five
// largest BL sources over 13 future time points:
//
//   - full: the default estimator (τ-dependent exponents, TS(t) schedule
//     alignment of Eq. 8, ODE-consistent world size).
//   - literal-exponents: the paper's printed (t−t0) survival exponents in
//     E[InsUp]/E[ExUp].
//   - no-alignment: ignore the sources' update schedules (changes surface
//     the moment a source learns them).
//   - linear-omega: the paper-literal constant-λd drift of Eq. 14 for
//     E[|Ω|t].
func Ablation(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	// Far horizon: 13 spread ticks (where the world-size model matters).
	// Near horizon: the first 10 days after t0 (where the Eq. 8 schedule
	// alignment matters — within one update interval of slow sources).
	ticks := futurePoints(d.T0, d.Horizon(), 13)
	near := metricsTicks(d.T0+1, d.T0+10)

	// Mix the three largest sources with the two largest slow-schedule
	// sources (interval ≥ 7), so both design choices are exercised.
	var top []int
	for _, i := range d.LargestSources(len(d.Sources)) {
		if len(top) < 3 {
			top = append(top, i)
			continue
		}
		if d.Sources[i].UpdateInterval() >= 7 {
			top = append(top, i)
		}
		if len(top) == 5 {
			break
		}
	}

	type variant struct {
		name  string
		setup func(e *estimate.Estimator)
	}
	variants := []variant{
		{"full", func(*estimate.Estimator) {}},
		{"literal-exponents", func(e *estimate.Estimator) { e.Literal = true }},
		{"no-alignment", func(e *estimate.Estimator) { e.NoAlignment = true }},
		{"linear-omega", func(e *estimate.Estimator) { e.SetLinearOmega(true) }},
	}

	tbl := &Table{
		Title:  "Ablation — mean relative prediction error, 5 BL sources (3 largest + 2 slow-schedule)",
		Header: []string{"variant", "cov err (near)", "cov err (far)", "glob-frsh err (far)", "E[omega] err (far)"},
	}
	for _, v := range variants {
		var nearErrs, covErrs, gfErrs, omErrs []float64
		for _, si := range top {
			src := d.Sources[si]
			e, err := estimate.New(d.World, []*source.Source{src}, d.T0, ticks[len(ticks)-1], nil)
			if err != nil {
				return nil, err
			}
			v.setup(e)
			qs := e.QualityMulti([]int{0}, ticks)
			truth := metrics.QualitySeries(d.World, []*source.Source{src}, ticks, nil)
			for i := range ticks {
				covErrs = append(covErrs, stats.RelativeError(qs[i].Coverage, truth[i].Coverage))
				gfErrs = append(gfErrs, stats.RelativeError(qs[i].GlobalFreshness, truth[i].GlobalFreshness))
				omErrs = append(omErrs, stats.RelativeError(qs[i].ExpectedOmega, float64(d.World.AliveCount(ticks[i], nil))))
			}
			qn := e.QualityMulti([]int{0}, near)
			tn := metrics.QualitySeries(d.World, []*source.Source{src}, near, nil)
			for i := range near {
				nearErrs = append(nearErrs, stats.RelativeError(qn[i].Coverage, tn[i].Coverage))
			}
		}
		tbl.AddRow(v.name, stats.Mean(nearErrs), stats.Mean(covErrs), stats.Mean(gfErrs), stats.Mean(omErrs))
	}
	tbl.AddNote("each degraded variant should be worse on the metric its design choice protects:")
	tbl.AddNote("literal-exponents → global freshness; linear-omega → E[omega]")
	tbl.AddNote("no-alignment barely registers on BL-scale stocks (daily flow ≪ stock); the")
	tbl.AddNote("estimate package's TestNoAlignmentOvershootsForSlowSources isolates the mechanism")
	return []*Table{tbl}, nil
}

// metricsTicks is a local alias to avoid importing metrics.Ticks under a
// clashing name.
func metricsTicks(lo, hi timeline.Tick) []timeline.Tick {
	out := make([]timeline.Tick, 0, int(hi-lo)+1)
	for t := lo; t <= hi; t++ {
		out = append(out, t)
	}
	return out
}
