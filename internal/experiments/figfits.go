package experiments

import (
	"fmt"
	"sort"

	"freshsource/internal/dataset"
	"freshsource/internal/metrics"
	"freshsource/internal/profile"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/world"
)

// Fig4 reproduces Figures 4(a)–(c): integrating BL sources in decreasing
// order of coverage — coverage grows monotonically, local freshness decays,
// accuracy peaks in between.
func Fig4(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	// Per-source coverage at the training cut.
	type sc struct {
		s   *source.Source
		cov float64
	}
	scs := make([]sc, len(d.Sources))
	for i, s := range d.Sources {
		scs[i] = sc{s, metrics.QualityAt(d.World, []*source.Source{s}, d.T0, nil).Coverage}
	}
	sort.Slice(scs, func(i, j int) bool { return scs[i].cov > scs[j].cov })

	tbl := &Table{
		Title:  "Figure 4 — quality of integrated data, sources added in decreasing coverage order (BL)",
		Header: []string{"#sources", "coverage", "local-freshness", "accuracy"},
	}
	var set []*source.Source
	prevCov, prevLF := -1.0, -1.0
	covMonotone, lfMonotone := true, true
	var firstLF, lastLF float64
	for k, x := range scs {
		set = append(set, x.s)
		q := metrics.QualityAt(d.World, set, d.T0, nil)
		tbl.AddRow(k+1, q.Coverage, q.LocalFreshness, q.Accuracy)
		if q.Coverage < prevCov-1e-12 {
			covMonotone = false
		}
		if k > 0 && q.LocalFreshness < prevLF-1e-12 {
			lfMonotone = false
		}
		prevCov, prevLF = q.Coverage, q.LocalFreshness
		if k == 0 {
			firstLF = q.LocalFreshness
		}
		lastLF = q.LocalFreshness
	}
	tbl.AddNote("coverage monotone non-decreasing: %v (Theorem 1's regime)", covMonotone)
	tbl.AddNote("local freshness moved %.4f → %.4f, monotone: %v — unlike coverage it is not"+
		" monotone in the set; the direction depends on whether the big sources are the stale"+
		" ones (here, per Example 1, they are)", firstLF, lastLF, lfMonotone)
	return []*Table{tbl}, nil
}

// poissonFitTable fits a Poisson to per-tick appearance counts of a domain
// point and compares observed vs fitted densities (Figures 5a, 6).
func poissonFitTable(title string, d *dataset.Dataset, p world.DomainPoint) (*Table, error) {
	counts := d.World.AppearanceCounts(1, d.T0, []world.DomainPoint{p})
	m, err := stats.FitPoisson(counts, 1)
	if err != nil {
		return nil, err
	}
	maxK := 0
	for _, c := range counts {
		if c > maxK {
			maxK = c
		}
	}
	obs := make([]float64, maxK+1)
	for _, c := range counts {
		obs[c]++
	}
	n := float64(len(counts))
	tbl := &Table{Title: title, Header: []string{"appearances/day", "observed density", "poisson fit"}}
	exp := make([]float64, maxK+1)
	for k := 0; k <= maxK; k++ {
		exp[k] = m.PMF(k, 1) * n
		tbl.AddRow(k, obs[k]/n, m.PMF(k, 1))
	}
	if gof, err := stats.ChiSquareTest(obs, exp, 1, 5); err == nil {
		tbl.AddNote("fitted lambda = %.3f/day; chi-square p = %.3f (fit accepted at 1%% iff p > 0.01)", m.Lambda, gof.PValue)
	} else if gof, err := stats.ChiSquareTest(obs, exp, 1, 1); err == nil {
		// Small samples (GDELT trains on 15 days) need looser pooling.
		tbl.AddNote("fitted lambda = %.3f/day; chi-square p = %.3f (small sample, minExpected=1)", m.Lambda, gof.PValue)
	} else {
		tbl.AddNote("fitted lambda = %.3f/day; sample too small for chi-square: %v", m.Lambda, err)
	}
	return tbl, nil
}

// Fig5a reproduces Figure 5(a): Poisson fit of daily appearances at a BL
// domain point.
func Fig5a(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	p := largestPoints(d.World, d.T0, 1)[0]
	tbl, err := poissonFitTable(fmt.Sprintf("Figure 5a — Poisson fit of daily appearances (BL, point %v)", p), d, p)
	if err != nil {
		return nil, err
	}
	return []*Table{tbl}, nil
}

// Fig5b reproduces Figure 5(b): exponential fit of entity lifespans with
// the censoring peak at the window end.
func Fig5b(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	p := largestPoints(d.World, d.T0, 1)[0]
	obs := d.World.Lifespans(d.Horizon(), []world.DomainPoint{p})
	m, err := stats.FitExponential(obs)
	if err != nil {
		return nil, err
	}
	km, err := stats.NewKaplanMeier(obs)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title:  fmt.Sprintf("Figure 5b — entity lifespan distribution (BL, point %v)", p),
		Header: []string{"lifespan (days)", "observed cum. prob (KM)", "exponential fit"},
	}
	horizon := float64(d.Horizon())
	for f := 0.05; f <= 1.0; f += 0.05 {
		x := horizon * f
		tbl.AddRow(int(x), km.CDF(x), m.CDF(x))
	}
	censored := 0
	for _, o := range obs {
		if o.Censored {
			censored++
		}
	}
	tbl.AddNote("fitted mean lifespan = %.1f days; %d/%d observations right-censored (the paper's peak after day 600)",
		m.Mean(), censored, len(obs))
	return []*Table{tbl}, nil
}

// Fig6 reproduces Figure 6: Poisson fit of daily appearances at a GDELT
// domain point.
func Fig6(env *Env) ([]*Table, error) {
	d, err := env.GDELT()
	if err != nil {
		return nil, err
	}
	p := largestPoints(d.World, d.T0, 1)[0]
	tbl, err := poissonFitTable(fmt.Sprintf("Figure 6 — Poisson fit of daily appearances (GDELT, point %v)", p), d, p)
	if err != nil {
		return nil, err
	}
	return []*Table{tbl}, nil
}

// Fig7 reproduces Figure 7: the exact and right-censored insertion-delay
// histograms of a BL source, and the Kaplan–Meier effectiveness
// distribution Gi learned from them.
func Fig7(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	idx := d.LargestSources(1)[0]
	prof, err := profile.Build(d.World, d.Sources[idx], d.T0, nil)
	if err != nil {
		return nil, err
	}
	var exact, censored []float64
	for _, o := range prof.InsertDelays {
		if o.Censored {
			censored = append(censored, o.Value)
		} else {
			exact = append(exact, o.Value)
		}
	}
	hi := float64(d.T0)
	const bins = 12
	he, err := stats.NewHistogram(exact, 0, hi, bins)
	if err != nil {
		return nil, err
	}
	hc, err := stats.NewHistogram(censored, 0, hi, bins)
	if err != nil {
		return nil, err
	}
	hist := &Table{
		Title:  fmt.Sprintf("Figure 7 (left) — insertion delay histograms for %s", d.Sources[idx].Name()),
		Header: []string{"delay bin center", "exact count", "censored count"},
	}
	for i := 0; i < bins; i++ {
		hist.AddRow(int(he.BinCenter(i)), he.Counts[i], hc.Counts[i])
	}

	eff := &Table{
		Title:  fmt.Sprintf("Figure 7 (right) — Kaplan–Meier effectiveness Gi for %s", d.Sources[idx].Name()),
		Header: []string{"delay (days)", "Gi (cum. capture prob.)"},
	}
	for f := 0.0; f <= 1.0; f += 0.05 {
		x := hi * f
		eff.AddRow(int(x), prof.Gi.CDF(x))
	}
	eff.AddNote("plateau = %.3f: the probability the source ever captures an appearance", prof.Gi.Plateau())
	return []*Table{hist, eff}, nil
}

// Fig8 reproduces Figures 8(a)/(b): the source-type scatter — locations vs
// categories covered, with source size.
func Fig8(env *Env) ([]*Table, error) {
	bl, err := env.BL()
	if err != nil {
		return nil, err
	}
	gd, err := env.GDELT()
	if err != nil {
		return nil, err
	}
	mk := func(title string, d *dataset.Dataset, maxSources int) *Table {
		tbl := &Table{Title: title, Header: []string{"source", "#locations", "#categories", "size@t0"}}
		sizes := d.SizeAt(d.T0)
		for _, i := range d.LargestSources(maxSources) {
			s := d.Sources[i]
			locs, cats := map[int]bool{}, map[int]bool{}
			for _, p := range s.Spec().Points {
				locs[p.Location] = true
				cats[p.Category] = true
			}
			tbl.AddRow(s.Name(), len(locs), len(cats), sizes[i])
		}
		return tbl
	}
	return []*Table{
		mk("Figure 8a — source types in BL", bl, len(bl.Sources)),
		mk("Figure 8b — source types in GDELT (500 largest)", gd, 500),
	}, nil
}
