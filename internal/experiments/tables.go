package experiments

import (
	"fmt"
	"math"
	"time"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/gain"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// algoSpec names one algorithm configuration of Section 6.1.
type algoSpec struct {
	name  string
	alg   core.Algorithm
	kappa int
	r     int
}

func (e *Env) algoSpecs() []algoSpec {
	specs := []algoSpec{
		{name: "Greedy", alg: core.Greedy},
		{name: "MaxSub", alg: core.MaxSub},
	}
	for _, kr := range e.Cfg.GraspConfigs {
		specs = append(specs, algoSpec{
			name:  fmt.Sprintf("Grasp-(%d,%d)", kr[0], kr[1]),
			alg:   core.GRASP,
			kappa: kr[0],
			r:     kr[1],
		})
	}
	return specs
}

func (e *Env) solve(prob *core.Problem, spec algoSpec) (*core.Selection, error) {
	return prob.Solve(spec.alg, core.SolveOptions{
		Epsilon: e.Cfg.Epsilon,
		Kappa:   spec.kappa,
		Rounds:  spec.r,
		Seed:    e.Cfg.Seed,
		Workers: e.Cfg.Workers,
		Cache:   e.Cfg.CacheOracle,
	})
}

// gainConfig names one gain-function configuration of Table 1.
type gainConfig struct {
	label  string
	metric string
	mk     func(d *dataset.Dataset) gain.Function
}

func blGainConfigs() []gainConfig {
	return []gainConfig{
		{"Linear", "cov.", func(*dataset.Dataset) gain.Function { return gain.Linear{Metric: gain.Coverage} }},
		{"Linear", "acc.", func(*dataset.Dataset) gain.Function { return gain.Linear{Metric: gain.Accuracy} }},
		{"Quad", "cov.", func(*dataset.Dataset) gain.Function { return gain.Quad{Metric: gain.Coverage} }},
		{"Quad", "acc.", func(*dataset.Dataset) gain.Function { return gain.Quad{Metric: gain.Accuracy} }},
		{"Step", "cov.", func(*dataset.Dataset) gain.Function { return gain.Step{Metric: gain.Coverage} }},
		{"Step", "acc.", func(*dataset.Dataset) gain.Function { return gain.Step{Metric: gain.Accuracy} }},
		{"Data", "-", func(d *dataset.Dataset) gain.Function {
			return gain.Data{PerItem: 10, OmegaMax: float64(d.World.NumEntities())}
		}},
	}
}

// instanceRun is the result of every algorithm on one problem instance.
type instanceRun struct {
	sel map[string]*core.Selection
}

// runInstances trains one problem per domain point and runs every
// algorithm on it.
func (e *Env) runInstances(d *dataset.Dataset, pts []world.DomainPoint, g gainConfig, divisors []int) ([]instanceRun, error) {
	ticks := futurePoints(d.T0, d.Horizon(), 10)
	specs := e.algoSpecs()
	var runs []instanceRun
	for _, p := range pts {
		tr, err := e.Train(d, core.TrainOptions{
			Points:       []world.DomainPoint{p},
			MaxT:         ticks[len(ticks)-1],
			FreqDivisors: divisors,
		})
		if err != nil {
			return nil, err
		}
		prob, err := core.NewProblem(tr, ticks, g.mk(d), core.ProblemOptions{})
		if err != nil {
			return nil, err
		}
		run := instanceRun{sel: map[string]*core.Selection{}}
		for _, spec := range specs {
			sel, err := e.solve(prob, spec)
			if err != nil {
				return nil, err
			}
			run.sel[spec.name] = sel
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// bestStats summarises how one algorithm compares with the best selection
// across instances: the fraction of instances where it found the best
// profit, and the average and worst profit gap (in % of the best) on the
// others.
type bestStats struct {
	bestFrac  float64
	avgDiff   float64
	worstDiff float64
}

func summarize(runs []instanceRun, name string) bestStats {
	var best, diffs int
	var avg, worst float64
	for _, r := range runs {
		top := math.Inf(-1)
		for _, sel := range r.sel {
			if sel.Profit > top {
				top = sel.Profit
			}
		}
		mine := r.sel[name].Profit
		if mine >= top-1e-9 {
			best++
			continue
		}
		diffs++
		var d float64
		if top != 0 {
			d = 100 * (top - mine) / math.Abs(top)
		} else {
			d = 100 * (top - mine)
		}
		avg += d
		if d > worst {
			worst = d
		}
	}
	st := bestStats{bestFrac: float64(best) / float64(len(runs)), worstDiff: worst}
	if diffs > 0 {
		st.avgDiff = avg / float64(diffs)
	}
	return st
}

// bestGrasp picks the best-performing GRASP configuration (highest best
// fraction, then lowest average gap).
func bestGrasp(runs []instanceRun, specs []algoSpec) (string, bestStats) {
	bestName, best := "", bestStats{bestFrac: -1}
	for _, s := range specs {
		if s.alg != core.GRASP {
			continue
		}
		st := summarize(runs, s.name)
		if st.bestFrac > best.bestFrac || (st.bestFrac == best.bestFrac && st.avgDiff < best.avgDiff) {
			bestName, best = s.name, st
		}
	}
	return bestName, best
}

func avgRuntime(runs []instanceRun, name string) (avg, max time.Duration) {
	var total time.Duration
	for _, r := range runs {
		d := r.sel[name].Duration
		total += d
		if d > max {
			max = d
		}
	}
	return total / time.Duration(len(runs)), max
}

// Table1and2 reproduces Tables 1 and 2: selection quality and runtimes of
// Greedy, MaxSub and GRASP across the gain configurations on BL with fixed
// update frequencies, over the six largest domain points.
func Table1and2(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	pts := largestPoints(d.World, d.T0, 6)
	specs := env.algoSpecs()

	t1 := &Table{
		Title:  "Table 1 — selection quality on BL (fixed frequencies): % best and avg (worst) profit gap",
		Header: []string{"gain", "metric", "msr", "Greedy", "MaxSub", "Grasp"},
	}
	t2 := &Table{
		Title:  "Table 2 — average (max) run times on BL, seconds",
		Header: []string{"gain", "metric", "Greedy", "MaxSub"},
	}
	for _, s := range specs {
		if s.alg == core.GRASP {
			t2.Header = append(t2.Header, s.name)
		}
	}

	for _, gc := range blGainConfigs() {
		runs, err := env.runInstances(d, pts, gc, nil)
		if err != nil {
			return nil, err
		}
		gr := summarize(runs, "Greedy")
		ms := summarize(runs, "MaxSub")
		gname, gs := bestGrasp(runs, specs)
		t1.AddRow(gc.label, gc.metric, "best",
			fmt.Sprintf("%.1f%%", 100*gr.bestFrac),
			fmt.Sprintf("%.1f%%", 100*ms.bestFrac),
			fmt.Sprintf("%.1f%% %s", 100*gs.bestFrac, gname))
		t1.AddRow("", "", "diff",
			fmt.Sprintf("%.2f (%.2f)%%", gr.avgDiff, gr.worstDiff),
			fmt.Sprintf("%.2f (%.2f)%%", ms.avgDiff, ms.worstDiff),
			fmt.Sprintf("%.2f (%.2f)%%", gs.avgDiff, gs.worstDiff))

		row := []interface{}{gc.label, gc.metric}
		for _, s := range specs {
			a, m := avgRuntime(runs, s.name)
			row = append(row, fmt.Sprintf("%.3f (%.3f)", a.Seconds(), m.Seconds()))
		}
		t2.AddRow(row...)
	}
	return []*Table{t1, t2}, nil
}

// Table3 reproduces Table 3: performance and runtime on GDELT for
// LINEARGAIN-coverage and DATAGAIN over six US domain points.
func Table3(env *Env) ([]*Table, error) {
	d, err := env.GDELT()
	if err != nil {
		return nil, err
	}
	pts := pointsOfLocation(d.World, 0)
	pts = largestPointsOf(d.World, pts, d.T0, 6)
	specs := env.algoSpecs()

	tbl := &Table{
		Title:  "Table 3 — selection quality and runtime on GDELT",
		Header: []string{"gain", "msr", "Greedy", "MaxSub", "Grasp"},
	}
	configs := []gainConfig{
		{"Linear", "cov.", func(*dataset.Dataset) gain.Function { return gain.Linear{Metric: gain.Coverage} }},
		{"Data", "-", func(d *dataset.Dataset) gain.Function {
			return gain.Data{PerItem: 10, OmegaMax: float64(d.World.NumEntities())}
		}},
	}
	for _, gc := range configs {
		runs, err := env.runInstances(d, pts, gc, nil)
		if err != nil {
			return nil, err
		}
		gr, ms := summarize(runs, "Greedy"), summarize(runs, "MaxSub")
		gname, gs := bestGrasp(runs, specs)
		tbl.AddRow(gc.label, "best",
			fmt.Sprintf("%.1f%%", 100*gr.bestFrac),
			fmt.Sprintf("%.1f%%", 100*ms.bestFrac),
			fmt.Sprintf("%.1f%% %s", 100*gs.bestFrac, gname))
		tbl.AddRow("", "diff",
			fmt.Sprintf("%.2f (%.2f)%%", gr.avgDiff, gr.worstDiff),
			fmt.Sprintf("%.2f (%.2f)%%", ms.avgDiff, ms.worstDiff),
			fmt.Sprintf("%.2f (%.2f)%%", gs.avgDiff, gs.worstDiff))
		ga, gm := avgRuntime(runs, "Greedy")
		ma, mm := avgRuntime(runs, "MaxSub")
		pa, pm := avgRuntime(runs, gname)
		tbl.AddRow("", "runtime (s)",
			fmt.Sprintf("%.3f (%.3f)", ga.Seconds(), gm.Seconds()),
			fmt.Sprintf("%.3f (%.3f)", ma.Seconds(), mm.Seconds()),
			fmt.Sprintf("%.3f (%.3f)", pa.Seconds(), pm.Seconds()))
	}
	return []*Table{tbl}, nil
}

// largestPointsOf sorts a point set by size at t and keeps the top k.
func largestPointsOf(w *world.World, pts []world.DomainPoint, t timeline.Tick, k int) []world.DomainPoint {
	out := append([]world.DomainPoint(nil), pts...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if w.AliveCount(t, []world.DomainPoint{out[j]}) > w.AliveCount(t, []world.DomainPoint{out[i]}) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

// selectionCharacteristics reports, per algorithm, the average selected
// quality and number of sources over the instances (Tables 4–6).
func (e *Env) selectionCharacteristics(d *dataset.Dataset, pts []world.DomainPoint, divisors []int, title string, metrics []gainConfig) (*Table, []instanceRun, error) {
	tbl := &Table{Title: title}
	tbl.Header = []string{"alg"}
	for _, m := range metrics {
		tbl.Header = append(tbl.Header, m.metric+" avg-qual", m.metric+" avg-#srcs")
	}
	algNames := []string{"Greedy", "MaxSub"}
	gname := ""
	var lastRuns []instanceRun

	perAlg := map[string][]string{}
	for _, gc := range metrics {
		runs, err := e.runInstances(d, pts, gc, divisors)
		if err != nil {
			return nil, nil, err
		}
		lastRuns = runs
		if gname == "" {
			gname, _ = bestGrasp(runs, e.algoSpecs())
		}
		for _, name := range append(append([]string{}, algNames...), gname) {
			var qual, nsrc float64
			for _, r := range runs {
				sel := r.sel[name]
				if gc.metric == "acc." {
					qual += sel.AvgAccuracy
				} else {
					qual += sel.AvgCoverage
				}
				nsrc += float64(len(sel.Set))
			}
			qual /= float64(len(runs))
			nsrc /= float64(len(runs))
			perAlg[name] = append(perAlg[name], fmtF(qual), fmt.Sprintf("%.1f", nsrc))
		}
	}
	for _, name := range append(append([]string{}, algNames...), gname) {
		row := []interface{}{name}
		for _, c := range perAlg[name] {
			row = append(row, c)
		}
		tbl.AddRow(row...)
	}
	return tbl, lastRuns, nil
}

// Table4 reproduces Table 4: characteristics of the selected sources on BL
// with fixed frequencies.
func Table4(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	pts := largestPoints(d.World, d.T0, 6)
	cfgs := []gainConfig{
		{"Linear", "cov.", func(*dataset.Dataset) gain.Function { return gain.Linear{Metric: gain.Coverage} }},
		{"Linear", "acc.", func(*dataset.Dataset) gain.Function { return gain.Linear{Metric: gain.Accuracy} }},
	}
	tbl, _, err := env.selectionCharacteristics(d, pts, nil,
		"Table 4 — characteristics of selected sources (BL, fixed frequencies)", cfgs)
	if err != nil {
		return nil, err
	}
	return []*Table{tbl}, nil
}

// Table5 reproduces Table 5: characteristics of the selected sources on
// GDELT.
func Table5(env *Env) ([]*Table, error) {
	d, err := env.GDELT()
	if err != nil {
		return nil, err
	}
	pts := pointsOfLocation(d.World, 0)
	pts = largestPointsOf(d.World, pts, d.T0, 6)
	cfgs := []gainConfig{
		{"Linear", "cov.", func(*dataset.Dataset) gain.Function { return gain.Linear{Metric: gain.Coverage} }},
	}
	tbl, _, err := env.selectionCharacteristics(d, pts, nil,
		"Table 5 — characteristics of selected sources (GDELT)", cfgs)
	if err != nil {
		return nil, err
	}
	return []*Table{tbl}, nil
}

// Table6and7 reproduces Tables 6 and 7: selection with variable update
// frequencies (seven versions per source) on BL — quality and source
// counts, and the average frequency divisors for uniform vs specialised
// sources.
func Table6and7(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	pts := largestPoints(d.World, d.T0, 6)
	divisors := []int{2, 3, 4, 5, 6, 7}
	cfgs := []gainConfig{
		{"Linear", "cov.", func(*dataset.Dataset) gain.Function { return gain.Linear{Metric: gain.Coverage} }},
		{"Linear", "acc.", func(*dataset.Dataset) gain.Function { return gain.Linear{Metric: gain.Accuracy} }},
	}
	t6, runs, err := env.selectionCharacteristics(d, pts, divisors,
		"Table 6 — characteristics of selected sources (BL, variable frequencies, 7 versions/source)", cfgs)
	if err != nil {
		return nil, err
	}

	// Table 7: average divisor for uniform vs specialised sources.
	uniform := uniformSourceSet(d)
	t7 := &Table{
		Title:  "Table 7 — average frequency divisor of selected source versions",
		Header: []string{"alg", "uniform srcs", "specialized srcs"},
	}
	gname, _ := bestGrasp(runs, env.algoSpecs())
	for _, name := range []string{"Greedy", "MaxSub", gname} {
		var uSum, sSum float64
		var uN, sN int
		for _, r := range runs {
			sel := r.sel[name]
			for k, i := range sel.Set {
				_ = i
				div := float64(sel.Divisors[k])
				srcIdx := sourceIndexOfName(d, sel.Names[k])
				if uniform[srcIdx] {
					uSum += div
					uN++
				} else {
					sSum += div
					sN++
				}
			}
		}
		uAvg, sAvg := 0.0, 0.0
		if uN > 0 {
			uAvg = uSum / float64(uN)
		}
		if sN > 0 {
			sAvg = sSum / float64(sN)
		}
		t7.AddRow(name, fmt.Sprintf("%.1f", uAvg), fmt.Sprintf("%.1f", sAvg))
	}
	t7.AddNote("paper: large uniform sources get big divisors (4.9–5.2); specialized sources keep fast acquisition (2.6–3.2)")
	return []*Table{t6, t7}, nil
}

// uniformSourceSet flags sources covering at least half of both dimensions.
func uniformSourceSet(d *dataset.Dataset) map[int]bool {
	nLocs, nCats := map[int]bool{}, map[int]bool{}
	for _, p := range d.World.Points() {
		nLocs[p.Location] = true
		nCats[p.Category] = true
	}
	out := map[int]bool{}
	for i, s := range d.Sources {
		locs, cats := map[int]bool{}, map[int]bool{}
		for _, p := range s.Spec().Points {
			locs[p.Location] = true
			cats[p.Category] = true
		}
		out[i] = len(locs) >= len(nLocs)/2 && len(cats) >= len(nCats)/2
	}
	return out
}

// sourceIndexOfName maps a (possibly "/m"-suffixed) candidate name back to
// the source index in the dataset.
func sourceIndexOfName(d *dataset.Dataset, name string) int {
	base := name
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			base = name[:i]
			break
		}
	}
	for i, s := range d.Sources {
		if s.Name() == base {
			return i
		}
	}
	return -1
}
