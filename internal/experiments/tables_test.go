package experiments

import (
	"math"
	"testing"
	"time"

	"freshsource/internal/core"
)

func mkRun(profits map[string]float64) instanceRun {
	r := instanceRun{sel: map[string]*core.Selection{}}
	for name, p := range profits {
		r.sel[name] = &core.Selection{Profit: p, Duration: time.Duration(len(name)) * time.Millisecond}
	}
	return r
}

func TestSummarize(t *testing.T) {
	runs := []instanceRun{
		mkRun(map[string]float64{"A": 1.0, "B": 1.0}),  // tie: both best
		mkRun(map[string]float64{"A": 1.0, "B": 0.9}),  // A best, B 10% off
		mkRun(map[string]float64{"A": 0.5, "B": 1.0}),  // B best, A 50% off
		mkRun(map[string]float64{"A": 1.0, "B": 0.99}), // A best, B 1% off
	}
	a := summarize(runs, "A")
	if math.Abs(a.bestFrac-0.75) > 1e-12 {
		t.Errorf("A bestFrac = %v", a.bestFrac)
	}
	if math.Abs(a.avgDiff-50) > 1e-9 || math.Abs(a.worstDiff-50) > 1e-9 {
		t.Errorf("A diffs = %v (%v)", a.avgDiff, a.worstDiff)
	}
	b := summarize(runs, "B")
	if math.Abs(b.bestFrac-0.5) > 1e-12 {
		t.Errorf("B bestFrac = %v", b.bestFrac)
	}
	if math.Abs(b.avgDiff-5.5) > 1e-9 {
		t.Errorf("B avgDiff = %v", b.avgDiff)
	}
	if math.Abs(b.worstDiff-10) > 1e-9 {
		t.Errorf("B worstDiff = %v", b.worstDiff)
	}
}

func TestSummarizeNegativeProfits(t *testing.T) {
	runs := []instanceRun{
		mkRun(map[string]float64{"A": -1.0, "B": -2.0}),
	}
	a := summarize(runs, "A")
	if a.bestFrac != 1 {
		t.Errorf("A should be best, frac = %v", a.bestFrac)
	}
	b := summarize(runs, "B")
	if b.bestFrac != 0 || b.avgDiff <= 0 {
		t.Errorf("B stats = %+v", b)
	}
}

func TestBestGrasp(t *testing.T) {
	specs := []algoSpec{
		{name: "Greedy", alg: core.Greedy},
		{name: "Grasp-(1,1)", alg: core.GRASP, kappa: 1, r: 1},
		{name: "Grasp-(5,20)", alg: core.GRASP, kappa: 5, r: 20},
	}
	runs := []instanceRun{
		mkRun(map[string]float64{"Greedy": 1.0, "Grasp-(1,1)": 0.8, "Grasp-(5,20)": 1.0}),
		mkRun(map[string]float64{"Greedy": 0.7, "Grasp-(1,1)": 0.9, "Grasp-(5,20)": 0.9}),
	}
	name, st := bestGrasp(runs, specs)
	if name != "Grasp-(5,20)" {
		t.Errorf("best grasp = %s", name)
	}
	if st.bestFrac != 1 {
		t.Errorf("bestFrac = %v", st.bestFrac)
	}
}

func TestAvgRuntime(t *testing.T) {
	runs := []instanceRun{
		mkRun(map[string]float64{"A": 1}),
		mkRun(map[string]float64{"A": 1}),
	}
	runs[0].sel["A"].Duration = 10 * time.Millisecond
	runs[1].sel["A"].Duration = 30 * time.Millisecond
	avg, max := avgRuntime(runs, "A")
	if avg != 20*time.Millisecond || max != 30*time.Millisecond {
		t.Errorf("avg %v max %v", avg, max)
	}
}

func TestSampledTicks(t *testing.T) {
	ts := sampledTicks(0, 100, 11)
	if len(ts) < 10 || ts[0] != 0 {
		t.Errorf("ticks = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatal("not increasing")
		}
	}
	if got := sampledTicks(50, 50, 5); len(got) != 1 || got[0] != 50 {
		t.Errorf("degenerate = %v", got)
	}
}

func TestLargestPointsOrdering(t *testing.T) {
	env := NewEnv(tiny())
	d, err := env.BL()
	if err != nil {
		t.Fatal(err)
	}
	pts := largestPoints(d.World, d.T0, 4)
	if len(pts) != 4 {
		t.Fatalf("pts = %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		a := d.World.AliveCount(d.T0, pts[i-1:i])
		b := d.World.AliveCount(d.T0, pts[i:i+1])
		if b > a {
			t.Fatal("not descending by size")
		}
	}
}
