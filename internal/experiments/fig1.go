package experiments

import (
	"fmt"
	"math"

	"freshsource/internal/dataset"
	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// sampledTicks returns ~n ticks spanning [lo, hi].
func sampledTicks(lo, hi timeline.Tick, n int) []timeline.Tick {
	if n < 2 || hi <= lo {
		return []timeline.Tick{hi}
	}
	step := (hi - lo) / timeline.Tick(n-1)
	if step < 1 {
		step = 1
	}
	var out []timeline.Tick
	for t := lo; t <= hi; t += step {
		out = append(out, t)
	}
	return out
}

// Fig1a reproduces Figure 1(a): average update frequency vs average local
// freshness per BL source, showing the two are uncorrelated.
func Fig1a(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	ticks := sampledTicks(d.T0/2, d.T0, 20)
	tbl := &Table{
		Title:  "Figure 1a — source avg update frequency vs avg freshness (BL)",
		Header: []string{"source", "upd-freq (1/day)", "avg-freshness"},
	}
	var fs, frs []float64
	for _, s := range d.Sources {
		f := 1.0 / float64(s.UpdateInterval())
		fr := metrics.AverageFreshness(d.World, s, ticks)
		fs = append(fs, f)
		frs = append(frs, fr)
		tbl.AddRow(s.Name(), f, fr)
	}
	tbl.AddNote("pearson correlation(freq, freshness) = %.3f (paper: no clear correspondence)", pearson(fs, frs))
	return []*Table{tbl}, nil
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var num, dx, dy float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		dx += (x[i] - mx) * (x[i] - mx)
		dy += (y[i] - my) * (y[i] - my)
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / (math.Sqrt(dx) * math.Sqrt(dy))
}

// coverageSets builds the two source sets of Figures 1(b)/(e): both contain
// the two largest sources; the first adds one mid-sized source, the second
// adds three other mid-sized sources.
func coverageSets(d *dataset.Dataset) (set1, set2 []*source.Source) {
	order := d.LargestSources(len(d.Sources))
	two := []*source.Source{d.Sources[order[0]], d.Sources[order[1]]}
	mids := order[len(order)/3:]
	set1 = append(append([]*source.Source{}, two...), d.Sources[mids[0]])
	set2 = append([]*source.Source{}, two...)
	for _, i := range mids[1:] {
		set2 = append(set2, d.Sources[i])
		if len(set2) == 5 {
			break
		}
	}
	return set1, set2
}

// figCoverageTimelines renders coverage series for two sets restricted to a
// location.
func figCoverageTimelines(title string, d *dataset.Dataset, pts []world.DomainPoint) *Table {
	set1, set2 := coverageSets(d)
	ticks := sampledTicks(0, d.Horizon()-1, 30)
	q1 := metrics.QualitySeries(d.World, set1, ticks, pts)
	q2 := metrics.QualitySeries(d.World, set2, ticks, pts)
	tbl := &Table{
		Title:  title,
		Header: []string{"tick", fmt.Sprintf("set1 (%d srcs)", len(set1)), fmt.Sprintf("set2 (%d srcs)", len(set2))},
	}
	crossovers := 0
	prevLead := 0
	for i, t := range ticks {
		tbl.AddRow(int(t), q1[i].Coverage, q2[i].Coverage)
		lead := 0
		if q1[i].Coverage > q2[i].Coverage {
			lead = 1
		} else if q2[i].Coverage > q1[i].Coverage {
			lead = -1
		}
		if lead != 0 && prevLead != 0 && lead != prevLead {
			crossovers++
		}
		if lead != 0 {
			prevLead = lead
		}
	}
	tbl.AddNote("leadership crossovers over the window: %d (paper: the best set varies across time)", crossovers)
	return tbl
}

// Fig1b reproduces Figure 1(b): coverage timelines of two source sets for a
// single BL location.
func Fig1b(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	loc := largestPoints(d.World, d.T0, 1)[0].Location
	pts := pointsOfLocation(d.World, loc)
	return []*Table{figCoverageTimelines(
		fmt.Sprintf("Figure 1b — coverage timelines for two source sets (BL, location %d)", loc), d, pts)}, nil
}

// figHalfFrequency renders the coverage of the largest source at its
// regular acquisition frequency and at half that frequency.
func figHalfFrequency(title string, d *dataset.Dataset) (*Table, error) {
	idx := d.LargestSources(1)[0]
	full := d.Sources[idx]
	half, err := full.Downsample(2)
	if err != nil {
		return nil, err
	}
	ticks := sampledTicks(0, d.Horizon()-1, 30)
	qf := metrics.QualitySeries(d.World, []*source.Source{full}, ticks, nil)
	qh := metrics.QualitySeries(d.World, []*source.Source{half}, ticks, nil)
	tbl := &Table{Title: title, Header: []string{"tick", "reg. freq.", "reg. freq. x 0.5"}}
	var worst float64
	for i, t := range ticks {
		tbl.AddRow(int(t), qf[i].Coverage, qh[i].Coverage)
		if diff := qf[i].Coverage - qh[i].Coverage; diff > worst {
			worst = diff
		}
	}
	tbl.AddNote("max coverage loss from halving acquisition frequency: %.4f (paper: quality loss not significant, cost halved)", worst)
	return tbl, nil
}

// Fig1c reproduces Figure 1(c) for BL.
func Fig1c(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	tbl, err := figHalfFrequency("Figure 1c — largest BL source at full vs half acquisition frequency", d)
	if err != nil {
		return nil, err
	}
	return []*Table{tbl}, nil
}

// Fig1d reproduces Figure 1(d): average report delay and fraction of
// delayed items for the 20 largest GDELT sources.
func Fig1d(env *Env) ([]*Table, error) {
	d, err := env.GDELT()
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title:  "Figure 1d — avg delay vs fraction of delayed items, 20 largest GDELT sources",
		Header: []string{"source", "avg-delay (days)", "fraction-delayed", "captured"},
	}
	for _, i := range d.LargestSources(20) {
		st := metrics.InsertionDelayStats(d.World, d.Sources[i])
		tbl.AddRow(d.Sources[i].Name(), st.AvgDelay, st.FractionDelayed, st.Captured)
	}
	tbl.AddNote("all sources update daily; delays come from slow reporting (Example 2)")
	return []*Table{tbl}, nil
}

// Fig1e reproduces Figure 1(e): GDELT coverage timelines for two source
// sets on the largest location ("US").
func Fig1e(env *Env) ([]*Table, error) {
	d, err := env.GDELT()
	if err != nil {
		return nil, err
	}
	pts := pointsOfLocation(d.World, 0) // location 0 dominates by construction
	return []*Table{figCoverageTimelines("Figure 1e — coverage timelines for two source sets (GDELT, US)", d, pts)}, nil
}

// Fig1f reproduces Figure 1(f) for GDELT.
func Fig1f(env *Env) ([]*Table, error) {
	d, err := env.GDELT()
	if err != nil {
		return nil, err
	}
	tbl, err := figHalfFrequency("Figure 1f — largest GDELT source at full vs half acquisition frequency", d)
	if err != nil {
		return nil, err
	}
	return []*Table{tbl}, nil
}
