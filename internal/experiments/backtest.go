package experiments

import (
	"fmt"

	"freshsource/internal/estimate"
	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
)

// Backtest is a walk-forward validation of the statistical models (beyond
// the paper's single train/test split): train at several cut points with
// growing history, predict the coverage of the three largest sources over
// the following 60 ticks, and report the error as a function of training
// length. It quantifies the paper's Section 2.3 remark that highly dynamic
// sources give more training points and hence more accurate models.
func Backtest(env *Env) ([]*Table, error) {
	d, err := env.BL()
	if err != nil {
		return nil, err
	}
	top := d.LargestSources(3)
	horizon := d.Horizon()

	// Cut points from 15% to 75% of the window.
	var cuts []timeline.Tick
	for _, f := range []float64{0.15, 0.3, 0.45, 0.6, 0.75} {
		cut := timeline.Tick(float64(horizon) * f)
		if cut+61 < horizon && cut > 10 {
			cuts = append(cuts, cut)
		}
	}
	if len(cuts) == 0 {
		return nil, fmt.Errorf("experiments: window too short for backtesting")
	}

	tbl := &Table{
		Title:  "Backtest — coverage prediction error vs training-window length (walk-forward)",
		Header: []string{"train ticks", "eval window", "mean cov rel-err", "max cov rel-err"},
	}
	for _, cut := range cuts {
		evalTicks := metricsTicks(cut+10, cut+60)
		var errs []float64
		for _, si := range top {
			src := d.Sources[si]
			e, err := estimate.New(d.World, []*source.Source{src}, cut, evalTicks[len(evalTicks)-1], nil)
			if err != nil {
				return nil, err
			}
			qs := e.QualityMulti([]int{0}, evalTicks)
			truth := metrics.QualitySeries(d.World, []*source.Source{src}, evalTicks, nil)
			for i := range evalTicks {
				errs = append(errs, stats.RelativeError(qs[i].Coverage, truth[i].Coverage))
			}
		}
		tbl.AddRow(int(cut), fmt.Sprintf("(%d,%d]", cut+10, cut+60), stats.Mean(errs), stats.Max(errs))
	}
	tbl.AddNote("longer training windows should not degrade accuracy; very short windows are noisier (Section 2.3)")
	return []*Table{tbl}, nil
}
