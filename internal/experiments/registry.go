package experiments

import (
	"fmt"
	"sort"

	"freshsource/internal/obs"
)

// Runner regenerates one experiment.
type Runner func(*Env) ([]*Table, error)

// registry maps experiment ids to runners. Ids follow the paper's
// table/figure numbering.
var registry = map[string]Runner{
	"fig1a":  Fig1a,
	"fig1b":  Fig1b,
	"fig1c":  Fig1c,
	"fig1d":  Fig1d,
	"fig1e":  Fig1e,
	"fig1f":  Fig1f,
	"fig4":   Fig4,
	"fig5a":  Fig5a,
	"fig5b":  Fig5b,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10a": Fig10a,
	"fig10b": Fig10b,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13a": Fig13a,
	"fig13b": Fig13b,
	"tab1-2": Table1and2,
	"tab3":   Table3,
	"tab4":   Table4,
	"tab5":   Table5,
	"tab6-7": Table6and7,
	// Beyond the paper: ablation of the implementation's design choices and
	// a walk-forward validation of the statistical models.
	"ablation": Ablation,
	"backtest": Backtest,
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run regenerates one experiment by id.
func Run(id string, env *Env) ([]*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	defer obs.Start("experiments.run.seconds").End()
	obs.Counter("experiments.runs").Inc()
	return r(env)
}

// TelemetryTable renders an obs snapshot as an experiment table, so run
// artifacts can embed the telemetry that produced them. Returns nil when
// the snapshot is empty (telemetry off or nothing recorded).
func TelemetryTable(snap obs.Snapshot) *Table {
	if snap.Empty() {
		return nil
	}
	t := &Table{Title: "telemetry", Header: []string{"metric", "value"}}
	for _, k := range sortedNames(snap.Counters) {
		t.AddRow(k, fmt.Sprintf("%d", snap.Counters[k]))
	}
	for _, k := range sortedNames(snap.Gauges) {
		t.AddRow(k, fmt.Sprintf("%g", snap.Gauges[k]))
	}
	for _, k := range sortedNames(snap.Histograms) {
		h := snap.Histograms[k]
		t.AddRow(k, fmt.Sprintf("count=%d mean=%.3gs p50=%.3gs p95=%.3gs p99=%.3gs max=%.3gs",
			h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max))
	}
	return t
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
