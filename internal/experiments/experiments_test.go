package experiments

import (
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	cfg := Quick()
	cfg.BL.Locations = 6
	cfg.BL.Categories = 4
	cfg.BL.NumSources = 8
	cfg.BL.Horizon = 160
	cfg.BL.T0 = 90
	cfg.BL.Scale = 0.3
	cfg.GDELT.Locations = 8
	cfg.GDELT.EventTypes = 5
	cfg.GDELT.NumSources = 25
	cfg.GDELT.Scale = 0.4
	cfg.ScalabilityMultipliers = []int{0, 1}
	cfg.GraspConfigs = [][2]int{{1, 1}, {2, 3}}
	return cfg
}

var tinyEnv = NewEnv(tiny())

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", "yyyy")
	tbl.AddNote("n=%d", 2)
	s := tbl.String()
	for _, want := range []string{"== demo ==", "a", "bb", "2.5000", "yyyy", "note: n=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 26 {
		t.Errorf("registry has %d experiments, want 26", len(ids))
	}
	if _, err := Run("nope", tinyEnv); err == nil {
		t.Error("unknown id should error")
	}
}

func TestFuturePoints(t *testing.T) {
	ts := futurePoints(100, 201, 10)
	if len(ts) != 10 {
		t.Fatalf("len = %d", len(ts))
	}
	if ts[0] <= 100 || ts[9] != 200 {
		t.Errorf("range wrong: %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatal("not increasing")
		}
	}
	if futurePoints(100, 200, 0) != nil {
		t.Error("n=0 should be nil")
	}
}

func TestEnvCaching(t *testing.T) {
	env := NewEnv(tiny())
	d1, err := env.BL()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := env.BL()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("BL dataset not cached")
	}
}

// TestAllExperimentsRun smoke-tests every registered experiment on the tiny
// configuration: each must produce at least one non-empty table.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Run(id, tinyEnv)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", id)
			}
			for _, tbl := range tables {
				if tbl.Title == "" || len(tbl.Header) == 0 {
					t.Errorf("%s produced a malformed table", id)
				}
				if len(tbl.Rows) == 0 {
					t.Errorf("%s table %q has no rows", id, tbl.Title)
				}
				if s := tbl.String(); len(s) == 0 {
					t.Errorf("%s renders empty", id)
				}
			}
		})
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := pearson(x, x); got < 0.999 {
		t.Errorf("self correlation = %v", got)
	}
	y := []float64{4, 3, 2, 1}
	if got := pearson(x, y); got > -0.999 {
		t.Errorf("anti correlation = %v", got)
	}
	if pearson([]float64{1}, []float64{1}) != 0 {
		t.Error("degenerate should be 0")
	}
	if pearson([]float64{1, 1}, []float64{1, 2}) != 0 {
		t.Error("zero variance should be 0")
	}
}

func TestGroupByError(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	series := [][]float64{{0.1}, {0.2}, {0.3}, {0.4}, {0.5}, {0.6}}
	reps := groupByError(names, series, 3)
	if len(reps) != 3 {
		t.Fatalf("groups = %d", len(reps))
	}
	total := 0
	for _, r := range reps {
		total += r.size
	}
	if total != len(names) {
		t.Errorf("group sizes sum to %d", total)
	}
	// Representatives ordered by increasing error.
	if reps[0].series[0] > reps[2].series[0] {
		t.Error("groups not ordered by error")
	}
}
