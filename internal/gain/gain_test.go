package gain

import (
	"math"
	"testing"

	"freshsource/internal/estimate"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

func q(cov, lf, gf, acc float64) estimate.QualityEstimate {
	return estimate.QualityEstimate{Coverage: cov, LocalFreshness: lf, GlobalFreshness: gf, Accuracy: acc}
}

func TestMetricOf(t *testing.T) {
	v := q(0.1, 0.2, 0.3, 0.4)
	if Coverage.Of(v) != 0.1 || LocalFreshness.Of(v) != 0.2 || GlobalFreshness.Of(v) != 0.3 || Accuracy.Of(v) != 0.4 {
		t.Error("Metric.Of extraction wrong")
	}
}

func TestMetricStringsAndSubmodularity(t *testing.T) {
	if Coverage.String() != "coverage" || Accuracy.String() != "accuracy" {
		t.Error("metric strings")
	}
	if !Coverage.Submodular() || !GlobalFreshness.Submodular() {
		t.Error("coverage/GF should be submodular")
	}
	if LocalFreshness.Submodular() || Accuracy.Submodular() {
		t.Error("LF/accuracy should not be submodular")
	}
}

func TestLinearGain(t *testing.T) {
	g := Linear{Metric: Coverage}
	if got := g.Eval(q(0.5, 0, 0, 0)); got != 50 {
		t.Errorf("linear(0.5) = %v", got)
	}
	if g.MaxGain() != 100 {
		t.Error("max gain")
	}
	if !g.Submodular() {
		t.Error("linear coverage should be submodular")
	}
	if (Linear{Metric: Accuracy}).Submodular() {
		t.Error("linear accuracy should not be submodular")
	}
}

func TestQuadGain(t *testing.T) {
	g := Quad{Metric: Coverage}
	if got := g.Eval(q(0.5, 0, 0, 0)); got != 25 {
		t.Errorf("quad(0.5) = %v", got)
	}
	if g.Submodular() {
		t.Error("quad should not claim submodularity")
	}
}

func TestStepGainStaircase(t *testing.T) {
	g := Step{Metric: Coverage}
	cases := []struct{ in, want float64 }{
		{0, 0}, {0.1, 10}, {0.2, 100}, {0.3, 110},
		{0.5, 150}, {0.6, 160}, {0.7, 200}, {0.9, 220},
		{0.95, 300}, {1.0, 305},
	}
	for _, c := range cases {
		if got := g.Eval(q(c.in, 0, 0, 0)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("step(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Non-decreasing everywhere.
	prev := -1.0
	for v := 0.0; v <= 1.0; v += 0.001 {
		got := g.Eval(q(v, 0, 0, 0))
		if got < prev {
			t.Fatalf("step gain decreases at %v", v)
		}
		prev = got
	}
	if g.MaxGain() != 305 {
		t.Error("max gain")
	}
}

func TestDataGain(t *testing.T) {
	g := Data{PerItem: 10, OmegaMax: 1000}
	v := estimate.QualityEstimate{ExpectedCovered: 250}
	if got := g.Eval(v); got != 2500 {
		t.Errorf("data gain = %v", got)
	}
	if g.MaxGain() != 10000 {
		t.Error("max gain")
	}
	if !g.Submodular() {
		t.Error("data gain is linear in covered count")
	}
}

// Integration fixtures: a small estimator over a generated world.
func buildFixture(t *testing.T) (*estimate.Estimator, *world.World) {
	t.Helper()
	w, err := world.Generate(world.Config{
		Subdomains: []world.SubdomainSpec{
			{Point: world.DomainPoint{Location: 0, Category: 0}, InitialEntities: 300, LambdaAppear: 2, GammaDisappear: 0.01, GammaUpdate: 0.02},
		},
		Horizon: 300,
		Seed:    201,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := func(insP float64) source.Spec {
		return source.Spec{
			Name:           "s",
			UpdateInterval: 1,
			Points:         w.Points(),
			Insert:         source.CaptureSpec{Prob: insP, Delay: source.ExponentialDelay{Rate: 0.5}},
			Delete:         source.CaptureSpec{Prob: 0.8, Delay: source.ExponentialDelay{Rate: 0.5}},
			Update:         source.CaptureSpec{Prob: 0.7, Delay: source.ExponentialDelay{Rate: 0.5}},
		}
	}
	var srcs []*source.Source
	for i, p := range []float64{0.9, 0.6, 0.3} {
		s, err := source.Observe(w, source.ID(i), spec(p), stats.NewRNG(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, s)
	}
	e, err := estimate.New(w, srcs, 200, 290, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e, w
}

func TestSharedItemCost(t *testing.T) {
	e, _ := buildFixture(t)
	cm, err := NewSharedItemCost(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Bigger sources cost more.
	if cm.Cost(0) <= cm.Cost(2) {
		t.Errorf("cost(0)=%v should exceed cost(2)=%v", cm.Cost(0), cm.Cost(2))
	}
	// Additivity.
	if math.Abs(cm.SetCost([]int{0, 1})-(cm.Cost(0)+cm.Cost(1))) > 1e-9 {
		t.Error("SetCost not additive")
	}
	if cm.Total() <= 0 {
		t.Error("total must be positive")
	}
	if _, err := NewSharedItemCost(e, 0); err == nil {
		t.Error("want error for non-positive perItem")
	}
}

func TestFrequencyDiscount(t *testing.T) {
	e, _ := buildFixture(t)
	base := e.NumCandidates()
	if _, err := e.AddFrequencyVariants([]int{2, 5}); err != nil {
		t.Fatal(err)
	}
	cm, err := NewSharedItemCost(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Variant costs follow c/(1+m/10): divisor 2 cheaper than 1, divisor 5
	// cheaper than 2.
	c1, c2, c5 := cm.Cost(0), cm.Cost(base), cm.Cost(base+1)
	if !(c1 > c2 && c2 > c5) {
		t.Errorf("frequency discount violated: %v, %v, %v", c1, c2, c5)
	}
	want2 := c1 * 1.1 / 1.2
	if math.Abs(c2-want2) > 1e-9 {
		t.Errorf("divisor-2 cost = %v, want %v", c2, want2)
	}
}

func TestProfitOracle(t *testing.T) {
	e, _ := buildFixture(t)
	cm, err := NewSharedItemCost(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	ticks := []timeline.Tick{210, 230, 250}
	p, err := NewProfit(e, ticks, Linear{Metric: Coverage}, cm)
	if err != nil {
		t.Fatal(err)
	}
	v0 := p.Value(nil)
	if v0 != 0 {
		t.Errorf("empty profit = %v", v0)
	}
	v1 := p.Value([]int{0})
	if v1 <= 0 {
		t.Errorf("single good source profit = %v", v1)
	}
	if p.Calls() != 2 {
		t.Errorf("calls = %d", p.Calls())
	}
	p.ResetCalls()
	if p.Calls() != 0 {
		t.Error("reset failed")
	}
	// GainOnly ≥ profit (cost is non-negative).
	if p.GainOnly([]int{0}) < v1 {
		t.Error("gain-only below profit")
	}
	// AvgMetric in [0,1].
	if m := p.AvgMetric([]int{0}, Coverage); m <= 0 || m > 1 {
		t.Errorf("avg coverage = %v", m)
	}
}

func TestProfitBudget(t *testing.T) {
	e, _ := buildFixture(t)
	cm, _ := NewSharedItemCost(e, 10)
	p, err := NewProfit(e, []timeline.Tick{250}, Linear{Metric: Coverage}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible([]int{0, 1, 2}) {
		t.Error("unconstrained should always be feasible")
	}
	p.Budget = cm.Cost(2)/cm.Total() + 1e-12
	if !p.Feasible([]int{2}) {
		t.Error("cheapest source should fit its own budget")
	}
	if p.Feasible([]int{0, 1, 2}) {
		t.Error("everything should exceed the tight budget")
	}
}

func TestProfitValidation(t *testing.T) {
	e, _ := buildFixture(t)
	cm, _ := NewSharedItemCost(e, 10)
	if _, err := NewProfit(e, nil, Linear{}, cm); err == nil {
		t.Error("want error for no ticks")
	}
	if _, err := NewProfit(e, []timeline.Tick{1000}, Linear{}, cm); err == nil {
		t.Error("want error for tick outside range")
	}
}

func TestProfitNilCost(t *testing.T) {
	e, _ := buildFixture(t)
	p, err := NewProfit(e, []timeline.Tick{250}, Linear{Metric: Coverage}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Value([]int{0}) != p.GainOnly([]int{0}) {
		t.Error("nil cost model should make profit equal gain")
	}
	if !p.Feasible([]int{0, 1, 2}) {
		t.Error("nil cost model is always feasible")
	}
}
