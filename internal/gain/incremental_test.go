package gain

import (
	"testing"

	"freshsource/internal/timeline"
)

// TestProfitValueAddMatchesValue pins the incremental-oracle contract:
// ValueAdd(BeginAdd(set), x) is bit-identical to Value(set ∪ {x}) — not
// approximately equal — and counts exactly one oracle call (BeginAdd counts
// none), so OracleCalls stays identical across the two paths.
func TestProfitValueAddMatchesValue(t *testing.T) {
	e, _ := buildFixture(t)
	cm, err := NewSharedItemCost(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	ticks := []timeline.Tick{210, 230, 250}
	p, err := NewProfit(e, ticks, Quad{Metric: Coverage}, cm)
	if err != nil {
		t.Fatal(err)
	}

	n := e.NumCandidates()
	sets := [][]int{nil, {0}, {1}, {0, 2}, {2, 1}}
	for _, set := range sets {
		member := make(map[int]bool)
		for _, i := range set {
			member[i] = true
		}
		p.ResetCalls()
		st := p.BeginAdd(set)
		if st == nil {
			t.Fatalf("BeginAdd(%v) declined", set)
		}
		if p.Calls() != 0 {
			t.Errorf("BeginAdd(%v) counted %d calls, want 0", set, p.Calls())
		}
		for x := 0; x < n; x++ {
			if member[x] {
				continue
			}
			got := p.ValueAdd(st, x)
			want := p.Value(append(append([]int(nil), set...), x))
			if got != want {
				t.Errorf("ValueAdd(%v, %d) = %v, Value = %v (not bit-identical)", set, x, got, want)
			}
		}
	}

	// Call accounting: one ValueAdd counts like one Value.
	p.ResetCalls()
	st := p.BeginAdd([]int{0})
	p.ValueAdd(st, 1)
	if p.Calls() != 1 {
		t.Errorf("ValueAdd counted %d calls, want 1", p.Calls())
	}
}

// TestProfitValueAddZeroAlloc pins the steady-state probe: once a state's
// miss tables are warm, ValueAdd runs entirely on pooled scratch and
// allocates nothing per probe.
func TestProfitValueAddZeroAlloc(t *testing.T) {
	e, _ := buildFixture(t)
	cm, err := NewSharedItemCost(e, 10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfit(e, []timeline.Tick{210, 230, 250}, Linear{Metric: Coverage}, cm)
	if err != nil {
		t.Fatal(err)
	}
	st := p.BeginAdd([]int{0})
	p.ValueAdd(st, 1) // warm the per-tick miss tables and the probe pool
	if raceEnabled {
		t.Skip("race runtime allocates for its own bookkeeping")
	}
	if avg := testing.AllocsPerRun(200, func() { p.ValueAdd(st, 1) }); avg != 0 {
		t.Errorf("warm ValueAdd allocates %v per run, want 0", avg)
	}
}
