// Package gain implements the gain and cost models of the paper's
// experimental section (Section 6.1): the quality-driven gain families
// LINEARGAIN, QUADGAIN and STEPGAIN over a chosen quality metric, the
// data-driven DATAGAIN, the additive shared-item cost model with the
// frequency discount c′ = c/(1+m/10), and the [0,1] rescaling of gain and
// cost. It also provides the Profit oracle — the objective
// G(SI, Tf) − C(SI, Tf) of Definitions 3–5 — consumed by the selection
// algorithms.
package gain

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"freshsource/internal/estimate"
	"freshsource/internal/obs"
	"freshsource/internal/timeline"
)

// Metric selects which quality measure drives a quality-based gain.
type Metric int

const (
	// Coverage is Eq. 1 (submodular estimate → MaxSub applies).
	Coverage Metric = iota
	// LocalFreshness is Eq. 2 (not submodular → GRASP).
	LocalFreshness
	// GlobalFreshness is Eq. 3 (submodular estimate → MaxSub applies).
	GlobalFreshness
	// Accuracy is Eq. 4–5 (not submodular → GRASP).
	Accuracy
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Coverage:
		return "coverage"
	case LocalFreshness:
		return "local-freshness"
	case GlobalFreshness:
		return "global-freshness"
	case Accuracy:
		return "accuracy"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Submodular reports whether the estimated metric is a monotone submodular
// set function (Theorems 1 and 2 of the paper), which decides whether
// MaxSub's guarantees apply.
func (m Metric) Submodular() bool { return m == Coverage || m == GlobalFreshness }

// Of extracts the metric's value from a quality estimate.
func (m Metric) Of(q estimate.QualityEstimate) float64 {
	switch m {
	case Coverage:
		return q.Coverage
	case LocalFreshness:
		return q.LocalFreshness
	case GlobalFreshness:
		return q.GlobalFreshness
	case Accuracy:
		return q.Accuracy
	default:
		panic("gain: unknown metric")
	}
}

// Function maps the quality estimate at one time point to a gain value
// (before rescaling).
type Function interface {
	// Eval returns the gain at one time point.
	Eval(q estimate.QualityEstimate) float64
	// MaxGain returns an upper bound of Eval used for [0,1] rescaling.
	MaxGain() float64
	// Name identifies the function in reports.
	Name() string
	// Submodular reports whether gain composed with the estimators remains
	// monotone submodular (non-negative non-decreasing linear in a
	// submodular metric).
	Submodular() bool
}

// Linear is LINEARGAIN: G(Q) = 100·Q.
type Linear struct{ Metric Metric }

// Eval implements Function.
func (g Linear) Eval(q estimate.QualityEstimate) float64 { return 100 * g.Metric.Of(q) }

// MaxGain implements Function.
func (g Linear) MaxGain() float64 { return 100 }

// Name implements Function.
func (g Linear) Name() string { return "linear-" + g.Metric.String() }

// Submodular implements Function.
func (g Linear) Submodular() bool { return g.Metric.Submodular() }

// Quad is QUADGAIN: G(Q) = 100·Q².
type Quad struct{ Metric Metric }

// Eval implements Function.
func (g Quad) Eval(q estimate.QualityEstimate) float64 {
	v := g.Metric.Of(q)
	return 100 * v * v
}

// MaxGain implements Function.
func (g Quad) MaxGain() float64 { return 100 }

// Name implements Function.
func (g Quad) Name() string { return "quad-" + g.Metric.String() }

// Submodular implements Function.
func (g Quad) Submodular() bool { return false } // convex composition breaks submodularity

// Step is STEPGAIN: the paper's milestone staircase.
type Step struct{ Metric Metric }

// Eval implements Function.
func (g Step) Eval(q estimate.QualityEstimate) float64 {
	v := g.Metric.Of(q)
	switch {
	case v < 0.2:
		return 100 * v
	case v < 0.5:
		return 100 + 100*(v-0.2)
	case v < 0.7:
		return 150 + 100*(v-0.5)
	case v < 0.95:
		return 200 + 100*(v-0.7)
	default:
		return 300 + 100*(v-0.95)
	}
}

// MaxGain implements Function.
func (g Step) MaxGain() float64 { return 305 }

// Name implements Function.
func (g Step) Name() string { return "step-" + g.Metric.String() }

// Submodular implements Function.
func (g Step) Submodular() bool { return false } // jumps break submodularity

// Data is DATAGAIN: a fixed dollar gain per covered item,
// G(SI, t) = PerItem · Cov*(F(SI), t) · E[|Ω|t].
type Data struct {
	// PerItem is the gain per covered item; the paper uses $10.
	PerItem float64
	// OmegaMax is the largest expected world size over the time points of
	// interest, used for rescaling.
	OmegaMax float64
}

// Eval implements Function.
func (g Data) Eval(q estimate.QualityEstimate) float64 {
	return g.PerItem * q.ExpectedCovered
}

// MaxGain implements Function.
func (g Data) MaxGain() float64 { return g.PerItem * g.OmegaMax }

// Name implements Function.
func (g Data) Name() string { return "data" }

// Submodular implements Function.
func (g Data) Submodular() bool { return true } // linear in the covered-count estimate

// CostModel assigns acquisition costs to candidates following Section 6.1:
// each item has a base cost (the paper's $10) shared equally among the
// sources that mention it, a source costs the sum of its items' shares,
// and acquiring at frequency divisor m discounts to c/(1+m/10).
type CostModel struct {
	perCandidate []float64
	total        float64
}

// NewSharedItemCost derives the cost model from an estimator's candidates.
// Mention counts are computed over the distinct underlying sources
// (divisor-1 candidates).
func NewSharedItemCost(e *estimate.Estimator, perItem float64) (*CostModel, error) {
	if perItem <= 0 {
		return nil, errors.New("gain: perItem must be positive")
	}
	n := e.NumCandidates()
	if n == 0 {
		return nil, errors.New("gain: estimator has no candidates")
	}
	universe := e.Candidate(0).Profile.B.Len()

	// mentions[i] = number of distinct sources holding item i at t0.
	mentions := make([]int, universe)
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		c := e.Candidate(i)
		if seen[c.SourceIndex] {
			continue
		}
		seen[c.SourceIndex] = true
		c.Profile.B.ForEach(func(item int) { mentions[item]++ })
	}

	// Base cost per source, then the per-candidate frequency discount.
	baseCost := make(map[int]float64)
	for i := 0; i < n; i++ {
		c := e.Candidate(i)
		if _, done := baseCost[c.SourceIndex]; done {
			continue
		}
		var cost float64
		c.Profile.B.ForEach(func(item int) {
			cost += perItem / float64(mentions[item])
		})
		baseCost[c.SourceIndex] = cost
	}

	cm := &CostModel{perCandidate: make([]float64, n)}
	for i := 0; i < n; i++ {
		c := e.Candidate(i)
		m := float64(c.Profile.AcqDivisor)
		cm.perCandidate[i] = baseCost[c.SourceIndex] / (1 + m/10)
	}
	// The rescaling denominator: the cost of acquiring every source once at
	// full frequency. Accumulate in candidate order, not map order — the
	// sum must be bit-identical on every run.
	for done := range seen {
		delete(seen, done)
	}
	for i := 0; i < n; i++ {
		c := e.Candidate(i)
		if seen[c.SourceIndex] {
			continue
		}
		seen[c.SourceIndex] = true
		cm.total += baseCost[c.SourceIndex] / 1.1
	}
	if cm.total <= 0 {
		cm.total = 1
	}
	return cm, nil
}

// Cost returns the (unscaled) cost of candidate i.
func (cm *CostModel) Cost(i int) float64 { return cm.perCandidate[i] }

// SetCost returns the (unscaled) additive cost of a candidate set.
func (cm *CostModel) SetCost(set []int) float64 {
	var c float64
	for _, i := range set {
		c += cm.perCandidate[i]
	}
	return c
}

// Total returns the rescaling denominator (cost of everything).
func (cm *CostModel) Total() float64 { return cm.total }

// Profit is the selection objective G(SI, Tf) − C(SI, Tf) of
// Definitions 3–5, with gain and cost rescaled to [0,1] as in Section 6.1
// and the overall gain aggregated as the average over the time points of
// interest. It also enforces the budget βc and counts oracle calls.
type Profit struct {
	Est   *estimate.Estimator
	Ticks []timeline.Tick
	Gain  Function
	Cost  *CostModel
	// CostWeight scales the rescaled cost against the rescaled gain;
	// 1 reproduces the paper's profit, 0 ignores cost.
	CostWeight float64
	// Budget is βc over the rescaled cost; ≤ 0 means unconstrained.
	Budget float64
	// Weights optionally turns the Tf aggregate into a non-negative
	// weighted average (Section 5 allows any non-negative weighting while
	// preserving submodularity). nil means the plain average. Set via
	// SetWeights, which validates.
	weights []float64

	// calls is atomic: parallel candidate sweeps evaluate the oracle from
	// many goroutines at once, and the count must stay exact.
	calls atomic.Int64

	// probeBuf pools the per-tick estimate buffers of ValueAdd (as slice
	// pointers, so Get/Put don't box a header), keeping the steady-state
	// probe allocation-free.
	probeBuf sync.Pool
}

// SetWeights installs a non-negative weighting over the time points of
// interest (parallel to Ticks). Weights are normalised to sum to 1.
func (p *Profit) SetWeights(ws []float64) error {
	if ws == nil {
		p.weights = nil
		return nil
	}
	if len(ws) != len(p.Ticks) {
		return fmt.Errorf("gain: %d weights for %d ticks", len(ws), len(p.Ticks))
	}
	var sum float64
	for _, w := range ws {
		if w < 0 {
			return errors.New("gain: negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		return errors.New("gain: weights sum to zero")
	}
	norm := make([]float64, len(ws))
	for i, w := range ws {
		norm[i] = w / sum
	}
	p.weights = norm
	return nil
}

// gainOf streams the per-tick gain evaluations straight into the
// configured aggregate (plain or weighted average) and applies the [0,1]
// rescaling — no intermediate gains slice, same additions in the same
// order as materialising one.
func (p *Profit) gainOf(qs []estimate.QualityEstimate) float64 {
	var g float64
	if p.weights == nil {
		for _, q := range qs {
			g += p.Gain.Eval(q)
		}
		g /= float64(len(qs))
	} else {
		for i, q := range qs {
			g += p.weights[i] * p.Gain.Eval(q)
		}
	}
	if mg := p.Gain.MaxGain(); mg > 0 {
		g /= mg
	}
	return g
}

// NewProfit builds a profit oracle. ticks must be within the estimator's
// range.
func NewProfit(e *estimate.Estimator, ticks []timeline.Tick, g Function, c *CostModel) (*Profit, error) {
	if len(ticks) == 0 {
		return nil, errors.New("gain: no time points of interest")
	}
	for _, t := range ticks {
		if t < e.T0 || t > e.MaxT {
			return nil, fmt.Errorf("gain: tick %d outside estimator range [%d,%d]", t, e.T0, e.MaxT)
		}
	}
	return &Profit{Est: e, Ticks: ticks, Gain: g, Cost: c, CostWeight: 1}, nil
}

// Value implements the value oracle: average rescaled gain over Tf minus
// rescaled cost. Safe for concurrent use.
func (p *Profit) Value(set []int) float64 {
	p.calls.Add(1)
	obs.Counter("gain.profit.value_calls").Inc()
	qs := p.Est.QualityMulti(set, p.Ticks)
	var cost float64
	if p.Cost != nil {
		cost = p.Cost.SetCost(set)
	}
	return p.profitOf(qs, cost)
}

// profitOf turns per-tick quality estimates and an unscaled set cost into
// the rescaled profit.
func (p *Profit) profitOf(qs []estimate.QualityEstimate, cost float64) float64 {
	g := p.gainOf(qs)
	var c float64
	if p.Cost != nil {
		c = p.CostWeight * cost / p.Cost.Total()
	}
	return g - c
}

// ProfitState caches a set's estimation state and cost sum so that
// single-candidate additions — the probe of every greedy-style sweep — are
// evaluated incrementally. Build with BeginAdd, probe with ValueAdd; the
// state is immutable and safe to share across concurrent probes.
type ProfitState struct {
	st *estimate.SetState
	// cost is the set's unscaled additive cost, accumulated in set order so
	// the incremental sum is bit-identical to SetCost(append(set, x)).
	cost float64
}

// BeginAdd caches the evaluation state of set for subsequent ValueAdd
// probes. It performs no oracle evaluation and is not counted as one.
func (p *Profit) BeginAdd(set []int) any {
	var cost float64
	if p.Cost != nil {
		cost = p.Cost.SetCost(set)
	}
	return &ProfitState{st: p.Est.NewSetState(set), cost: cost}
}

// ValueAdd returns Value(set ∪ {x}) for the state's set, layering x's
// contribution on the cached signatures instead of re-unioning the set. It
// counts as one oracle call, like the Value evaluation it replaces, and
// returns a bit-identical result. x must not be in the state's set.
func (p *Profit) ValueAdd(state any, x int) float64 {
	st := state.(*ProfitState)
	p.calls.Add(1)
	obs.Counter("gain.profit.value_add_calls").Inc()
	bp, _ := p.probeBuf.Get().(*[]estimate.QualityEstimate)
	if bp == nil {
		bp = new([]estimate.QualityEstimate)
	}
	qs := p.Est.QualityMultiAddInto(st.st, x, p.Ticks, *bp)
	cost := st.cost
	if p.Cost != nil {
		cost += p.Cost.Cost(x)
	}
	v := p.profitOf(qs, cost)
	*bp = qs[:0]
	p.probeBuf.Put(bp)
	return v
}

// GainOnly returns the average rescaled gain of a set (no cost), used for
// reporting solution quality.
func (p *Profit) GainOnly(set []int) float64 {
	return p.gainOf(p.Est.QualityMulti(set, p.Ticks))
}

// AvgMetric returns the average value of a quality metric over Tf for the
// set — the "Avg. Qual." columns of Tables 4–6.
func (p *Profit) AvgMetric(set []int, m Metric) float64 {
	qs := p.Est.QualityMulti(set, p.Ticks)
	var v float64
	for _, q := range qs {
		v += m.Of(q)
	}
	return v / float64(len(qs))
}

// Feasible reports whether the set respects the budget.
func (p *Profit) Feasible(set []int) bool {
	if p.Budget <= 0 || p.Cost == nil {
		return true
	}
	if p.Cost.SetCost(set)/p.Cost.Total() <= p.Budget {
		return true
	}
	obs.Counter("gain.profit.budget_rejections").Inc()
	return false
}

// Calls returns the number of oracle evaluations so far (Value and
// ValueAdd alike).
func (p *Profit) Calls() int { return int(p.calls.Load()) }

// ResetCalls zeroes the oracle-call counter.
func (p *Profit) ResetCalls() { p.calls.Store(0) }
