//go:build !race

package gain

const raceEnabled = false
