package gain

import (
	"math"
	"testing"

	"freshsource/internal/timeline"
)

func TestSetWeightsValidation(t *testing.T) {
	e, _ := buildFixture(t)
	cm, _ := NewSharedItemCost(e, 10)
	p, err := NewProfit(e, []timeline.Tick{210, 250}, Linear{Metric: Coverage}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetWeights([]float64{1}); err == nil {
		t.Error("want length-mismatch error")
	}
	if err := p.SetWeights([]float64{1, -1}); err == nil {
		t.Error("want negative-weight error")
	}
	if err := p.SetWeights([]float64{0, 0}); err == nil {
		t.Error("want zero-sum error")
	}
	if err := p.SetWeights(nil); err != nil {
		t.Errorf("nil should reset: %v", err)
	}
}

func TestWeightedAggregate(t *testing.T) {
	e, _ := buildFixture(t)
	cm, _ := NewSharedItemCost(e, 10)
	ticks := []timeline.Tick{210, 250}
	p, err := NewProfit(e, ticks, Linear{Metric: Coverage}, cm)
	if err != nil {
		t.Fatal(err)
	}
	set := []int{0}

	// Plain average equals equal weights.
	plain := p.Value(set)
	if err := p.SetWeights([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if got := p.Value(set); math.Abs(got-plain) > 1e-12 {
		t.Errorf("equal weights %v != plain average %v", got, plain)
	}

	// All weight on one tick equals evaluating only that tick.
	if err := p.SetWeights([]float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	wOnly := p.Value(set)
	pSingle, err := NewProfit(e, []timeline.Tick{210}, Linear{Metric: Coverage}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if got := pSingle.Value(set); math.Abs(got-wOnly) > 1e-12 {
		t.Errorf("degenerate weighting %v != single-tick profit %v", wOnly, got)
	}

	// GainOnly respects weights too.
	if p.GainOnly(set) < wOnly {
		t.Error("gain-only below profit under weighting")
	}
}
