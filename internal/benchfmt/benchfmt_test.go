package benchfmt

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: freshsource/internal/selection
cpu: Imaginary CPU @ 3.0GHz
BenchmarkGreedy/seq-16         	     100	  1000000 ns/op
BenchmarkGreedy/par4-16        	     400	   260000 ns/op	 1024 B/op	      12 allocs/op
BenchmarkGRASP/seq-16          	      50	  2000000 ns/op
BenchmarkGRASP/par4-16         	     200	   550000 ns/op
BenchmarkQualityMultiAdd/scratch-16	 300	    90000 ns/op
BenchmarkQualityMultiAdd/incremental-16	3000	     9000 ns/op
PASS
ok  	freshsource/internal/selection	12.345s
`

func parseSample(t *testing.T) Report {
	t.Helper()
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	ComputeSpeedups(&rep)
	return rep
}

func TestParse(t *testing.T) {
	rep := parseSample(t)
	if len(rep.Benchmarks) != 6 {
		t.Fatalf("parsed %d benchmarks, want 6", len(rep.Benchmarks))
	}
	if rep.Context["goos"] != "linux" || rep.Context["cpu"] != "Imaginary CPU @ 3.0GHz" {
		t.Errorf("context: %v", rep.Context)
	}
	b := rep.Benchmarks[1]
	if b.Name != "Greedy/par4" || b.Iterations != 400 || b.NsPerOp != 260000 {
		t.Errorf("parsed line: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1024 || b.AllocsPerOp == nil || *b.AllocsPerOp != 12 {
		t.Errorf("allocation columns: %+v", b)
	}
	if rep.Benchmarks[0].BytesPerOp != nil {
		t.Error("seq line should have no allocation columns")
	}
}

// TestParseMultiPackage pins the per-benchmark package capture: a run over
// several packages stamps each benchmark with the package whose header
// preceded it, and the report-level context carries no "pkg" entry (older
// parsers recorded whichever package printed last, claiming the whole run
// for it).
func TestParseMultiPackage(t *testing.T) {
	rep, err := Parse(strings.NewReader(`goos: linux
pkg: freshsource/internal/selection
BenchmarkGreedy/seq-2 	 100	 1000000 ns/op
BenchmarkScaleCELF/15k/seq-2 	 2	 500000000 ns/op
pkg: freshsource/internal/modelcache
BenchmarkCacheHit-2 	 5000	 20000 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	for i, want := range []string{
		"freshsource/internal/selection",
		"freshsource/internal/selection",
		"freshsource/internal/modelcache",
	} {
		if got := rep.Benchmarks[i].Pkg; got != want {
			t.Errorf("benchmark %d (%s): pkg %q, want %q", i, rep.Benchmarks[i].Name, got, want)
		}
	}
	if v, ok := rep.Context["pkg"]; ok {
		t.Errorf("multi-package run recorded context pkg %q, want none", v)
	}

	// A single-package run still records the unambiguous context entry.
	one := parseSample(t)
	if one.Context["pkg"] != "freshsource/internal/selection" {
		t.Errorf("single-package context pkg = %q", one.Context["pkg"])
	}
	if one.Benchmarks[0].Pkg != "freshsource/internal/selection" {
		t.Errorf("single-package entry pkg = %q", one.Benchmarks[0].Pkg)
	}
}

// TestSpeedupsNestedFamily pins the last-slash family split: the Scale
// benchmarks nest the corpus size inside the family (ScaleCELF/15k/parallel),
// and each size must pair with its own seq baseline rather than all sizes
// collapsing into one ScaleCELF family.
func TestSpeedupsNestedFamily(t *testing.T) {
	rep := Report{Benchmarks: []Benchmark{
		{Name: "ScaleCELF/1k/seq", NsPerOp: 10e6},
		{Name: "ScaleCELF/1k/parallel", NsPerOp: 5e6},
		{Name: "ScaleCELF/15k/seq", NsPerOp: 900e6},
		{Name: "ScaleCELF/15k/parallel", NsPerOp: 300e6},
	}}
	ComputeSpeedups(&rep)
	if len(rep.Speedups) != 2 {
		t.Fatalf("speedups: %+v, want one per corpus size", rep.Speedups)
	}
	byFam := map[string]Speedup{}
	for _, s := range rep.Speedups {
		byFam[s.Family] = s
	}
	if s := byFam["ScaleCELF/1k"]; s.Variant != "parallel" || s.Speedup != 2 {
		t.Errorf("1k speedup: %+v", s)
	}
	if s := byFam["ScaleCELF/15k"]; s.SeqNs != 900e6 || s.Speedup != 3 {
		t.Errorf("15k speedup: %+v", s)
	}
}

// TestRequireFaster pins the -require-faster gate semantics: violated
// pairs (including exact ties) fail, satisfied pairs pass, and pairs whose
// benchmarks the run omitted are skipped, not failed — the quick bench
// profile must not trip the full-scale constraint.
func TestRequireFaster(t *testing.T) {
	pairs, err := ParseFasterPairs(" ScaleCELF/15k/parallel<ScaleCELF/15k/seq , Greedy/parallel+incr<Greedy/incr ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 || pairs[0].Fast != "ScaleCELF/15k/parallel" || pairs[1].Slow != "Greedy/incr" {
		t.Fatalf("parsed pairs: %+v", pairs)
	}
	if _, err := ParseFasterPairs("no-separator"); err == nil {
		t.Error("malformed pair accepted")
	}

	rep := Report{Benchmarks: []Benchmark{
		{Name: "ScaleCELF/15k/seq", NsPerOp: 900e6},
		{Name: "ScaleCELF/15k/parallel", NsPerOp: 300e6},
	}}
	viols, skipped := CheckFaster(rep, pairs)
	if len(viols) != 0 {
		t.Errorf("satisfied pair flagged: %+v", viols)
	}
	if len(skipped) != 1 || skipped[0].Fast != "Greedy/parallel+incr" {
		t.Errorf("skipped: %+v, want the absent Greedy pair", skipped)
	}

	rep.Benchmarks[1].NsPerOp = 900e6 // tie: parallel must be strictly faster
	viols, _ = CheckFaster(rep, pairs)
	if len(viols) != 1 || viols[0].Pair.Fast != "ScaleCELF/15k/parallel" || viols[0].SlowNs != 900e6 {
		t.Errorf("tie not flagged: %+v", viols)
	}
}

// TestParseFreshbenchLines pins the serving-harness contract: the lines
// freshbench prints (no -N GOMAXPROCS suffix, one iteration) must parse
// into comparable benchmarks.
func TestParseFreshbenchLines(t *testing.T) {
	rep, err := Parse(strings.NewReader(
		"BenchmarkServe/select/p50 	 120	 1500000 ns/op\n" +
			"BenchmarkServe/select/p95 	 120	 9500000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Name != "Serve/select/p50" || rep.Benchmarks[0].NsPerOp != 1.5e6 {
		t.Errorf("parsed: %+v", rep.Benchmarks[0])
	}
	// No seq baseline in the family → no speedups, and no crash.
	ComputeSpeedups(&rep)
	if len(rep.Speedups) != 0 {
		t.Errorf("unexpected speedups: %+v", rep.Speedups)
	}
}

func TestComputeSpeedups(t *testing.T) {
	rep := parseSample(t)
	if len(rep.Speedups) != 3 {
		t.Fatalf("computed %d speedups, want 3", len(rep.Speedups))
	}
	byFam := map[string]Speedup{}
	for _, s := range rep.Speedups {
		byFam[s.Family] = s
	}
	if s := byFam["Greedy"]; s.Variant != "par4" || s.Speedup < 3.8 || s.Speedup > 3.9 {
		t.Errorf("Greedy speedup: %+v", s)
	}
	if s := byFam["QualityMultiAdd"]; s.SeqNs != 90000 || s.Speedup != 10 {
		t.Errorf("scratch baseline speedup: %+v", s)
	}
}

// TestCompareFailsTwoTimesRegression is the acceptance check for the CI
// gate: a synthetic 2× slowdown must be flagged as a regression at the
// default 25% tolerance.
func TestCompareFailsTwoTimesRegression(t *testing.T) {
	ref := parseSample(t)
	slowed, err := Parse(strings.NewReader(strings.ReplaceAll(
		sampleOutput, "1000000 ns/op", "2000001 ns/op")))
	if err != nil {
		t.Fatal(err)
	}
	regs, missing := Compare(ref, slowed, 0.25)
	if len(missing) != 0 {
		t.Errorf("missing: %v", missing)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions: %+v, want exactly the 2x one", regs)
	}
	r := regs[0]
	if r.Name != "Greedy/seq" || r.Ratio < 2 || r.Ratio > 2.1 || r.Bound != 1.25 {
		t.Errorf("regression: %+v", r)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	ref := parseSample(t)
	slightlySlower, err := Parse(strings.NewReader(strings.ReplaceAll(
		sampleOutput, "1000000 ns/op", "1200000 ns/op")))
	if err != nil {
		t.Fatal(err)
	}
	if regs, _ := Compare(ref, slightlySlower, 0.25); len(regs) != 0 {
		t.Errorf("20%% slowdown flagged at 25%% tolerance: %+v", regs)
	}
	// Faster is never a regression.
	if regs, _ := Compare(ref, parseSample(t), 0); len(regs) != 0 {
		t.Errorf("identical run flagged at zero tolerance: %+v", regs)
	}
}

func TestCompareReportsMissing(t *testing.T) {
	ref := parseSample(t)
	partial, err := Parse(strings.NewReader(
		"BenchmarkGreedy/seq-16 100 1000000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	regs, missing := Compare(ref, partial, 0.25)
	if len(regs) != 0 {
		t.Errorf("unexpected regressions: %+v", regs)
	}
	if len(missing) != 5 {
		t.Errorf("missing = %v, want the 5 absent benchmarks", missing)
	}
}

func allocs(n int64) *int64 { return &n }

func TestCompareAllocs(t *testing.T) {
	ref := Report{Benchmarks: []Benchmark{
		{Name: "ScaleProbe/1k", NsPerOp: 1500, AllocsPerOp: allocs(0)},
		{Name: "ScaleCELF/1k", NsPerOp: 1.5e6, AllocsPerOp: allocs(1000)},
		{Name: "Greedy/seq", NsPerOp: 1e6}, // no alloc column: ignored
	}}
	same := Report{Benchmarks: []Benchmark{
		{Name: "ScaleProbe/1k", NsPerOp: 1500, AllocsPerOp: allocs(0)},
		{Name: "ScaleCELF/1k", NsPerOp: 1.5e6, AllocsPerOp: allocs(1200)},
		{Name: "Greedy/seq", NsPerOp: 1e6, AllocsPerOp: allocs(50)},
	}}
	if regs := CompareAllocs(ref, same, 0.25); len(regs) != 0 {
		t.Errorf("within-tolerance growth flagged: %+v", regs)
	}
	grown := Report{Benchmarks: []Benchmark{
		{Name: "ScaleCELF/1k", NsPerOp: 1.5e6, AllocsPerOp: allocs(1300)},
	}}
	regs := CompareAllocs(ref, grown, 0.25)
	if len(regs) != 1 || regs[0].Name != "ScaleCELF/1k" || regs[0].Bound != 1250 {
		t.Errorf("26%% alloc growth not flagged at 25%% tolerance: %+v", regs)
	}
}

// TestCompareAllocsPinsZero is the acceptance check for the zero-alloc
// probe path: one allocation per op against a zero baseline fails at any
// tolerance.
func TestCompareAllocsPinsZero(t *testing.T) {
	ref := Report{Benchmarks: []Benchmark{
		{Name: "ScaleProbe/15k", NsPerOp: 1600, AllocsPerOp: allocs(0)},
	}}
	leaky := Report{Benchmarks: []Benchmark{
		{Name: "ScaleProbe/15k", NsPerOp: 1600, AllocsPerOp: allocs(1)},
	}}
	if regs := CompareAllocs(ref, leaky, 10.0); len(regs) != 1 {
		t.Errorf("1 alloc/op against zero-alloc baseline not flagged: %+v", regs)
	}
	if regs := CompareAllocs(ref, ref, 0); len(regs) != 0 {
		t.Errorf("zero against zero flagged: %+v", regs)
	}
}

func TestSingleCoreSkipsParallel(t *testing.T) {
	single := Report{Context: map[string]string{"gomaxprocs": "1", "numcpu": "1"}}
	multi := Report{Context: map[string]string{"gomaxprocs": "16", "numcpu": "16"}}
	bare := Report{Context: map[string]string{}}
	if !single.SingleCore() || multi.SingleCore() || bare.SingleCore() {
		t.Errorf("SingleCore: single=%v multi=%v bare=%v",
			single.SingleCore(), multi.SingleCore(), bare.SingleCore())
	}

	regs := []Regression{
		{Name: "Greedy/parallel+incr", Ratio: 2},
		{Name: "Greedy/seq", Ratio: 2},
	}
	kept, skipped := SkipParallel(regs)
	if len(kept) != 1 || kept[0].Name != "Greedy/seq" {
		t.Errorf("kept: %+v", kept)
	}
	if len(skipped) != 1 || skipped[0] != "Greedy/parallel+incr" {
		t.Errorf("skipped: %v", skipped)
	}
}

// TestServingRoundTrip pins the BENCH_serving.json schema: a report with a
// serving extension survives a JSON round trip, and a reader that only
// knows the base schema (the compare gate) still sees the benchmarks.
func TestServingRoundTrip(t *testing.T) {
	rep := Report{
		Context: map[string]string{"goos": "linux"},
		Benchmarks: []Benchmark{
			{Name: "Serve/select/p50", Iterations: 120, NsPerOp: 1.5e6},
		},
		Serving: &ServingSummary{
			Target:   map[string]string{"dataset": "BL", "version": "dev"},
			Workload: map[string]string{"rps": "50", "seed": "1"},
			Endpoints: []EndpointStats{{
				Endpoint: "select", Requests: 120,
				P50Ms: 1.5, P95Ms: 9.5, P99Ms: 20,
				Rate429: 0.05,
			}},
			TotalRequests:    150,
			AllocsPerRequest: 812.5,
		},
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Serving == nil || back.Serving.Endpoints[0].P95Ms != 9.5 ||
		back.Serving.AllocsPerRequest != 812.5 {
		t.Errorf("serving extension did not round-trip: %+v", back.Serving)
	}
	if regs, missing := Compare(back, rep, 0); len(regs) != 0 || len(missing) != 0 {
		t.Errorf("self-compare: regs=%v missing=%v", regs, missing)
	}
}
