// Package benchfmt defines the benchmark report interchange format shared
// by the perf tooling: cmd/benchjson parses `go test -bench` text into a
// Report and diffs Reports for the CI regression gate, and cmd/freshbench
// emits the same schema (extended with a ServingSummary) for the serving
// load harness, so one `-compare` gate covers both the library microbenches
// (BENCH_selection.json) and the end-to-end serving latencies
// (BENCH_serving.json).
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Pkg is the package whose `pkg:`
// header most recently preceded the line — `go test -bench` over several
// packages emits one header block per package, so a report-level context
// entry can only describe a single-package run (older reports recorded
// whichever package parsed last, claiming e.g. internal/modelcache for the
// selection benchmarks). Reports written before the field existed simply
// lack it; the compare gate keys on Name and tolerates either layout.
type Benchmark struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Speedup compares one variant against its family's seq baseline.
type Speedup struct {
	Family  string  `json:"family"`
	Variant string  `json:"variant"`
	SeqNs   float64 `json:"seq_ns_per_op"`
	NsPerOp float64 `json:"ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// Report is the emitted document. Serving is populated only by freshbench
// runs; the compare gate ignores it and diffs Benchmarks alone.
type Report struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Speedups   []Speedup         `json:"speedups,omitempty"`
	Serving    *ServingSummary   `json:"serving,omitempty"`
}

// ServingSummary is the serving-bench extension of the report: one load-
// harness run against a live freshd, with per-endpoint latency quantiles
// and outcome rates. The headline latencies are duplicated into
// Report.Benchmarks (as <Endpoint>/p50 … ns/op entries) so benchjson
// -compare gates them without knowing this schema.
type ServingSummary struct {
	// Target identifies the server under load: its address, dataset,
	// generation, version and uptime as reported by /healthz.
	Target map[string]string `json:"target,omitempty"`
	// Workload echoes the harness configuration: rps, concurrency,
	// duration, tenants, mix and seed — enough to reproduce the run.
	Workload map[string]string `json:"workload,omitempty"`
	// Endpoints summarizes each driven route.
	Endpoints []EndpointStats `json:"endpoints"`
	// Tenants summarizes the load per tenant when the target hosts named
	// worlds (multi-tenant freshd or a freshgate pool). Absent on
	// single-tenant runs; the compare gate ignores it either way (it diffs
	// Benchmarks only), so reports with and without it are comparable.
	Tenants []TenantStats `json:"tenants,omitempty"`
	// TotalRequests and AllocsPerRequest are whole-run aggregates;
	// AllocsPerRequest is derived from the server's proc.mallocs gauge
	// (internal/obs runtime capture) diffed across the run.
	TotalRequests    int64   `json:"total_requests"`
	AllocsPerRequest float64 `json:"allocs_per_request"`
}

// EndpointStats is the outcome of one endpoint under load.
type EndpointStats struct {
	Endpoint string `json:"endpoint"`
	Requests int64  `json:"requests"`
	// P50/P95/P99 are client-observed latencies in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ErrorRate counts 5xx other than 504; Rate429 and Rate504 the
	// admission and deadline rejections — all as fractions of Requests.
	ErrorRate float64 `json:"error_rate"`
	Rate429   float64 `json:"rate_429"`
	Rate504   float64 `json:"rate_504"`
}

// TenantStats is the outcome of one tenant's slice of a multi-tenant load:
// request volume, client-observed tail latency and error fraction.
type TenantStats struct {
	Tenant   string  `json:"tenant"`
	Requests int64   `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// ErrorRate counts transport failures and 4xx/5xx other than 429/504,
	// as a fraction of Requests.
	ErrorRate float64 `json:"error_rate"`
}

// Regression is one benchmark that slowed past the tolerance.
type Regression struct {
	Name  string
	OldNs float64
	NewNs float64
	Ratio float64 // NewNs / OldNs
	Bound float64 // 1 + tolerance
}

// AllocRegression is one benchmark whose allocs/op grew past the
// tolerance. A zero-alloc reference admits no growth at any tolerance:
// zero-allocation paths are pinned exactly, since even one allocation per
// op is a qualitative change (a pool stopped reusing, a value escaped).
type AllocRegression struct {
	Name      string
	OldAllocs int64
	NewAllocs int64
	Bound     int64 // max admissible NewAllocs
}

var lineRe = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Parse scans `go test -bench` output into a report (context lines and
// benchmark result lines; everything else is ignored). Each benchmark is
// stamped with the package header in effect at its line; the report-level
// Context["pkg"] is set only when the whole run came from one package, so
// a multi-package run never misattributes its benchmarks to the package
// that happened to print last.
func Parse(r io.Reader) (Report, error) {
	rep := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	pkg := ""
	pkgs := map[string]bool{}
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Context[key] = v
			}
		}
		if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = v
			pkgs[v] = true
		}
		m := lineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		b := Benchmark{Name: m[1], Pkg: pkg, Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			v, _ := strconv.ParseInt(m[4], 10, 64)
			b.BytesPerOp = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			b.AllocsPerOp = &v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if len(pkgs) == 1 {
		rep.Context["pkg"] = pkg
	}
	return rep, sc.Err()
}

// splitFamily separates a benchmark name into its family and variant at
// the LAST slash, so nested families like ScaleCELF/15k/parallel group
// under ScaleCELF/15k rather than colliding every corpus size into one
// ScaleCELF family. Single-component names have no variant.
func splitFamily(name string) (fam, variant string, ok bool) {
	i := strings.LastIndex(name, "/")
	if i < 0 {
		return name, "", false
	}
	return name[:i], name[i+1:], true
}

// ComputeSpeedups fills rep.Speedups from the family baselines: Family/seq
// (or Family/scratch for the estimator micro-benchmarks, which name the
// from-scratch path that way).
func ComputeSpeedups(rep *Report) {
	base := map[string]float64{}
	for _, b := range rep.Benchmarks {
		fam, variant, ok := splitFamily(b.Name)
		if !ok {
			continue
		}
		if variant == "seq" || variant == "scratch" {
			base[fam] = b.NsPerOp
		}
	}
	for _, b := range rep.Benchmarks {
		fam, variant, ok := splitFamily(b.Name)
		if !ok || variant == "seq" || variant == "scratch" {
			continue
		}
		seq, ok := base[fam]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		rep.Speedups = append(rep.Speedups, Speedup{
			Family:  fam,
			Variant: variant,
			SeqNs:   seq,
			NsPerOp: b.NsPerOp,
			Speedup: seq / b.NsPerOp,
		})
	}
}

// Compare diffs the fresh run against a reference: every benchmark present
// in both must satisfy new ≤ old·(1+tolerance). Benchmarks only in the
// reference are returned as missing (reported, not fatal: renames and
// removals shouldn't hard-fail CI); benchmarks only in the fresh run are
// ignored.
func Compare(ref, fresh Report, tolerance float64) (regs []Regression, missing []string) {
	freshNs := make(map[string]float64, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshNs[b.Name] = b.NsPerOp
	}
	bound := 1 + tolerance
	for _, b := range ref.Benchmarks {
		ns, ok := freshNs[b.Name]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		if ratio := ns / b.NsPerOp; ratio > bound {
			regs = append(regs, Regression{
				Name: b.Name, OldNs: b.NsPerOp, NewNs: ns, Ratio: ratio, Bound: bound,
			})
		}
	}
	return regs, missing
}

// CompareAllocs diffs allocs/op across runs: every benchmark reporting
// allocations in both must satisfy new ≤ ⌊old·(1+tolerance)⌋. Unlike the
// ns/op gate this is near-deterministic (allocation counts don't jitter
// with machine load), so the tolerance only absorbs iteration-count
// rounding; a reference of zero allocs/op is pinned exactly. Benchmarks
// without allocation columns on either side are ignored.
func CompareAllocs(ref, fresh Report, tolerance float64) []AllocRegression {
	freshAllocs := make(map[string]int64, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		if b.AllocsPerOp != nil {
			freshAllocs[b.Name] = *b.AllocsPerOp
		}
	}
	var regs []AllocRegression
	for _, b := range ref.Benchmarks {
		if b.AllocsPerOp == nil {
			continue
		}
		n, ok := freshAllocs[b.Name]
		if !ok {
			continue
		}
		bound := int64(float64(*b.AllocsPerOp) * (1 + tolerance))
		if n > bound {
			regs = append(regs, AllocRegression{
				Name: b.Name, OldAllocs: *b.AllocsPerOp, NewAllocs: n, Bound: bound,
			})
		}
	}
	return regs
}

// FasterPair is one require-faster constraint: the Fast benchmark's ns/op
// must come in strictly below the Slow one's within the same run. This is
// the inverse of the regression gate — it asserts a speedup exists at all,
// e.g. that the parallel CELF variant actually beats its sequential
// baseline on a multi-core profile.
type FasterPair struct {
	Fast string
	Slow string
}

// FasterViolation is one FasterPair the run failed.
type FasterViolation struct {
	Pair   FasterPair
	FastNs float64
	SlowNs float64
}

// ParseFasterPairs parses a "Fast<Slow,Fast<Slow" constraint list (the
// benchjson -require-faster flag syntax).
func ParseFasterPairs(s string) ([]FasterPair, error) {
	var pairs []FasterPair
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fast, slow, ok := strings.Cut(part, "<")
		if !ok || fast == "" || slow == "" {
			return nil, fmt.Errorf("require-faster pair %q: want Fast<Slow", part)
		}
		pairs = append(pairs, FasterPair{Fast: fast, Slow: slow})
	}
	return pairs, nil
}

// CheckFaster evaluates the pairs against the run. Pairs with either side
// absent are returned in skipped (quick bench profiles omit the full-scale
// families; absence is a note, not a failure — the full run still gates).
// Unlike the parallel-regression waiver this check is keyed on nothing:
// callers decide applicability (benchjson applies it only when the
// recorded gomaxprocs > 1, and never waives it for numcpu == 1).
func CheckFaster(rep Report, pairs []FasterPair) (viols []FasterViolation, skipped []FasterPair) {
	ns := make(map[string]float64, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		ns[b.Name] = b.NsPerOp
	}
	for _, p := range pairs {
		fast, okF := ns[p.Fast]
		slow, okS := ns[p.Slow]
		if !okF || !okS {
			skipped = append(skipped, p)
			continue
		}
		if !(fast < slow) {
			viols = append(viols, FasterViolation{Pair: p, FastNs: fast, SlowNs: slow})
		}
	}
	return viols, skipped
}

// SingleCore reports whether the run had one usable core, per the
// gomaxprocs/numcpu context benchjson records. Parallel-variant speedups
// are meaningless there — the fan-out pays coordination cost with no
// parallelism to buy — so the compare gate skips regressions on variants
// named "parallel" for single-core runs.
func (r Report) SingleCore() bool {
	return r.Context["gomaxprocs"] == "1" || r.Context["numcpu"] == "1"
}

// SkipParallel partitions regressions into those still gated and the
// parallel-variant ones to waive on a single-core run (the benchmark's
// variant component contains "parallel").
func SkipParallel(regs []Regression) (kept []Regression, skipped []string) {
	for _, r := range regs {
		if strings.Contains(r.Name, "parallel") {
			skipped = append(skipped, r.Name)
			continue
		}
		kept = append(kept, r)
	}
	return kept, skipped
}
