// Package dataset builds the synthetic counterparts of the paper's two
// corpora and the BL+ scalability family (Section 6.1):
//
//   - BL: 43 business-listing sources over 51 locations × a scaled-down
//     category dimension, daily snapshots over 23 months (690 ticks),
//     trained on the first 10 months. Sources follow the type mix of
//     Figure 8a (near-uniform aggregators, location specialists, category
//     specialists and small niche sources) with heterogeneous update
//     intervals, capture probabilities and delays — reproducing the
//     freshness/frequency decoupling of Figure 1a.
//
//   - GDELT: 300 news sources by default (the paper's own analyses use
//     the 20–500 largest) over one month of daily snapshots, trained on
//     the first 15 days. All sources update daily but report events with
//     varying delays (Figure 1d); events never disappear and are rarely
//     revised. PaperGDELTConfig restores the full corpus regime — 15,275
//     heavy-tailed sources over 243 locations × 236 event types.
//
//   - BL+: the micro-source decomposition of BL used for Figure 13a — each
//     original source is split into m overlapping micro-sources covering a
//     uniformly random 20–50% of its locations.
//
// The real corpora are proprietary; these generators reproduce the
// statistical structure the paper's methods consume (see DESIGN.md for the
// substitution argument).
package dataset

import (
	"errors"
	"fmt"

	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// Dataset bundles a world, its observing sources and the training split.
type Dataset struct {
	Name    string
	World   *world.World
	Sources []*source.Source
	// T0 is the end of the training window; (T0, Horizon) is evaluation.
	T0 timeline.Tick
}

// Horizon returns the exclusive end of the simulated window.
func (d *Dataset) Horizon() timeline.Tick { return d.World.Horizon() }

// SourceByName finds a source by display name.
func (d *Dataset) SourceByName(name string) (*source.Source, bool) {
	for _, s := range d.Sources {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// SizeAt returns the number of items each source holds at tick t, parallel
// to d.Sources.
func (d *Dataset) SizeAt(t timeline.Tick) []int {
	out := make([]int, len(d.Sources))
	for i, s := range d.Sources {
		out[i] = s.SnapshotAt(t).Size()
	}
	return out
}

// LargestSources returns the indices of the k largest sources by item
// count at the training cut, descending.
func (d *Dataset) LargestSources(k int) []int {
	sizes := d.SizeAt(d.T0)
	idx := make([]int, len(sizes))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if sizes[idx[j]] > sizes[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// BLConfig parameterises the business-listings generator.
type BLConfig struct {
	Locations  int
	Categories int
	NumSources int
	Horizon    timeline.Tick
	T0         timeline.Tick
	// Scale multiplies entity counts; 1.0 is the full-size synthetic
	// corpus, tests use smaller values.
	Scale float64
	Seed  int64
}

// DefaultBLConfig mirrors the paper's BL shape: 51 locations, 43 sources,
// 23 months of daily snapshots with a 10-month training window. The
// category dimension is scaled from 1496 to 24 (see DESIGN.md).
func DefaultBLConfig() BLConfig {
	return BLConfig{
		Locations:  51,
		Categories: 24,
		NumSources: 43,
		Horizon:    690,
		T0:         300,
		Scale:      1,
		Seed:       4114,
	}
}

func (c BLConfig) validate() error {
	if c.Locations <= 0 || c.Categories <= 0 || c.NumSources <= 0 {
		return errors.New("dataset: non-positive dimension")
	}
	if c.T0 <= 0 || c.T0 >= c.Horizon {
		return errors.New("dataset: T0 must be inside (0, Horizon)")
	}
	if c.Scale <= 0 {
		return errors.New("dataset: non-positive scale")
	}
	return nil
}

// GenerateBL builds the BL-like dataset.
func GenerateBL(cfg BLConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := stats.NewRNG(cfg.Seed)
	wrng := root.Fork()

	// Subdomain sizes are heterogeneous: a few big (location, category)
	// pairs and a long tail, echoing real listing densities.
	var specs []world.SubdomainSpec
	for l := 0; l < cfg.Locations; l++ {
		locWeight := 0.4 + 1.6*wrng.Float64() // market size of the location
		for c := 0; c < cfg.Categories; c++ {
			catWeight := 0.3 + 1.7*wrng.Float64()
			base := cfg.Scale * locWeight * catWeight
			specs = append(specs, world.SubdomainSpec{
				Point:           world.DomainPoint{Location: l, Category: c},
				InitialEntities: int(base * 30),
				LambdaAppear:    base * 0.08,
				GammaDisappear:  1.0 / wrng.Uniform(250, 500), // business lifespans ≈ 1 year+
				GammaUpdate:     1.0 / wrng.Uniform(120, 400),
				// A sizable share of businesses is hard for every source
				// to discover, so source misses correlate and union
				// coverage saturates well below 1 (Table 4's regime).
				VisibilityExponent: 1.3,
			})
		}
	}
	w, err := world.Generate(world.Config{Subdomains: specs, Horizon: cfg.Horizon, Seed: int64(root.Fork().Intn(1 << 30))})
	if err != nil {
		return nil, err
	}

	srcs, err := generateBLSources(w, cfg, root.Fork())
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: "BL", World: w, Sources: srcs, T0: cfg.T0}, nil
}

// blSourceKind mirrors Figure 8a's source-type mix.
type blSourceKind int

const (
	blUniform blSourceKind = iota // most locations × most categories
	blLocSpec                     // few locations, all categories
	blCatSpec                     // all locations, few categories
	blNiche                       // few of both
)

func generateBLSources(w *world.World, cfg BLConfig, rng *stats.RNG) ([]*source.Source, error) {
	intervals := []timeline.Tick{1, 1, 2, 3, 7, 14, 30}
	srcs := make([]*source.Source, 0, cfg.NumSources)
	for i := 0; i < cfg.NumSources; i++ {
		var kind blSourceKind
		switch {
		case i < cfg.NumSources/5:
			kind = blUniform
		case i < cfg.NumSources/2:
			kind = blLocSpec
		case i < 3*cfg.NumSources/4:
			kind = blCatSpec
		default:
			kind = blNiche
		}
		pts := pickPoints(cfg, kind, rng)
		iv := intervals[rng.Intn(len(intervals))]
		// Capture behaviour is independent of update frequency — the
		// decoupling behind Figure 1a: a daily-updating source can still be
		// terrible at deletions. Broad aggregators find many entities but
		// curate them poorly; specialists find fewer but keep their niche
		// fresh (Example 1 and the Figure 12 / Table 7 phenomena).
		var ins, del, upd source.CaptureSpec
		if kind == blUniform {
			ins = source.CaptureSpec{
				Prob:  rng.Uniform(0.55, 0.95),
				Delay: source.ExponentialDelay{Rate: 1 / rng.Uniform(2, 15)},
			}
			del = source.CaptureSpec{
				Prob:  rng.Uniform(0.1, 0.5),
				Delay: source.ExponentialDelay{Rate: 1 / rng.Uniform(10, 40)},
			}
			upd = source.CaptureSpec{
				Prob:  rng.Uniform(0.2, 0.55),
				Delay: source.ExponentialDelay{Rate: 1 / rng.Uniform(8, 30)},
			}
		} else {
			ins = source.CaptureSpec{
				Prob:  rng.Uniform(0.35, 0.85),
				Delay: source.ExponentialDelay{Rate: 1 / rng.Uniform(1, 10)},
			}
			del = source.CaptureSpec{
				Prob:  rng.Uniform(0.45, 0.95),
				Delay: source.ExponentialDelay{Rate: 1 / rng.Uniform(2, 15)},
			}
			upd = source.CaptureSpec{
				Prob:  rng.Uniform(0.45, 0.9),
				Delay: source.ExponentialDelay{Rate: 1 / rng.Uniform(2, 12)},
			}
		}
		spec := source.Spec{
			Name:           fmt.Sprintf("bl-%02d", i),
			UpdateInterval: iv,
			Phase:          timeline.Tick(rng.Intn(int(iv))),
			Points:         pts,
			Insert:         ins,
			Delete:         del,
			Update:         upd,
		}
		s, err := source.Observe(w, source.ID(i), spec, rng.Fork())
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, s)
	}
	return srcs, nil
}

func pickPoints(cfg BLConfig, kind blSourceKind, rng *stats.RNG) []world.DomainPoint {
	var locs, cats []int
	switch kind {
	case blUniform:
		locs = sampleRange(cfg.Locations, rng.UniformInt(cfg.Locations*4/5, cfg.Locations), rng)
		cats = sampleRange(cfg.Categories, rng.UniformInt(cfg.Categories*4/5, cfg.Categories), rng)
	case blLocSpec:
		locs = sampleRange(cfg.Locations, rng.UniformInt(2, max(3, cfg.Locations/5)), rng)
		cats = sampleRange(cfg.Categories, cfg.Categories, rng)
	case blCatSpec:
		locs = sampleRange(cfg.Locations, cfg.Locations, rng)
		cats = sampleRange(cfg.Categories, rng.UniformInt(2, max(3, cfg.Categories/4)), rng)
	case blNiche:
		locs = sampleRange(cfg.Locations, rng.UniformInt(2, max(3, cfg.Locations/6)), rng)
		cats = sampleRange(cfg.Categories, rng.UniformInt(2, max(3, cfg.Categories/4)), rng)
	}
	pts := make([]world.DomainPoint, 0, len(locs)*len(cats))
	for _, l := range locs {
		for _, c := range cats {
			pts = append(pts, world.DomainPoint{Location: l, Category: c})
		}
	}
	return pts
}

func sampleRange(n, k int, rng *stats.RNG) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return rng.SampleWithoutReplacement(n, k)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GDELTConfig parameterises the news-events generator.
type GDELTConfig struct {
	Locations  int
	EventTypes int
	NumSources int
	Horizon    timeline.Tick
	T0         timeline.Tick
	Scale      float64
	Seed       int64
}

// DefaultGDELTConfig mirrors the paper's GDELT shape at reduced source
// count: one month of daily snapshots, 15 training days, 300 sources with
// heavy-tailed sizes (scaled from 15,275; see DESIGN.md).
func DefaultGDELTConfig() GDELTConfig {
	return GDELTConfig{
		Locations:  40,
		EventTypes: 30,
		NumSources: 300,
		Horizon:    22,
		T0:         15,
		Scale:      1,
		Seed:       2014,
	}
}

// PaperGDELTConfig is the full paper-scale GDELT shape: 15,275 news
// sources — the corpus size of Table 2 — over 243 locations × 236 CAMEO
// event types, one month of daily snapshots with 15 training days. Source
// sizes stay heavy-tailed through the rank-dependent reach of
// GenerateGDELT, so the size distribution mirrors Figure 2's long tail.
// Scale defaults to 0.1 (≈ tens of thousands of entities): the paper
// regime's *selection* pressure comes from the candidate count, not the
// entity count, and 0.1 keeps signature memory at roughly a hundred
// megabytes across 15k sources; raise it toward 1.0 on machines with the
// RAM for the proportionally larger entity universe.
func PaperGDELTConfig() GDELTConfig {
	return GDELTConfig{
		Locations:  243,
		EventTypes: 236,
		NumSources: 15275,
		Horizon:    22,
		T0:         15,
		Scale:      0.1,
		Seed:       2014,
	}
}

func (c GDELTConfig) validate() error {
	if c.Locations <= 0 || c.EventTypes <= 0 || c.NumSources <= 0 {
		return errors.New("dataset: non-positive dimension")
	}
	if c.T0 <= 0 || c.T0 >= c.Horizon {
		return errors.New("dataset: T0 must be inside (0, Horizon)")
	}
	if c.Scale <= 0 {
		return errors.New("dataset: non-positive scale")
	}
	return nil
}

// GenerateGDELT builds the GDELT-like dataset.
func GenerateGDELT(cfg GDELTConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := stats.NewRNG(cfg.Seed)
	wrng := root.Fork()

	var specs []world.SubdomainSpec
	for l := 0; l < cfg.Locations; l++ {
		// News volume is very skewed by location (the US dominates GDELT).
		locWeight := 3.0 / float64(1+l)
		if locWeight < 0.05 {
			locWeight = 0.05
		}
		for c := 0; c < cfg.EventTypes; c++ {
			catWeight := 0.3 + 1.4*wrng.Float64()
			specs = append(specs, world.SubdomainSpec{
				Point: world.DomainPoint{Location: l, Category: c},
				// Events accumulate: no initial population, no deaths,
				// (almost) no revisions. Obscure events are missed by
				// every outlet (correlated misses).
				InitialEntities:    0,
				LambdaAppear:       cfg.Scale * locWeight * catWeight * 2.0,
				GammaDisappear:     0,
				GammaUpdate:        0.01,
				VisibilityExponent: 1.5,
			})
		}
	}
	w, err := world.Generate(world.Config{Subdomains: specs, Horizon: cfg.Horizon, Seed: int64(root.Fork().Intn(1 << 30))})
	if err != nil {
		return nil, err
	}

	srcs := make([]*source.Source, 0, cfg.NumSources)
	srng := root.Fork()
	for i := 0; i < cfg.NumSources; i++ {
		// Source sizes are heavy-tailed: rank-dependent capture probability
		// and scope.
		rank := float64(i + 1)
		reach := 1.0 / (1 + rank/8) // top sources see most of the domain
		nLocs := int(float64(cfg.Locations)*reach) + 1
		nTypes := int(float64(cfg.EventTypes)*reach) + 1
		locs := sampleRange(cfg.Locations, nLocs, srng)
		cats := sampleRange(cfg.EventTypes, nTypes, srng)
		pts := make([]world.DomainPoint, 0, len(locs)*len(cats))
		for _, l := range locs {
			for _, c := range cats {
				pts = append(pts, world.DomainPoint{Location: l, Category: c})
			}
		}
		spec := source.Spec{
			Name:           fmt.Sprintf("gdelt-%03d", i),
			UpdateInterval: 1, // every source updates daily (Example 2)
			Points:         pts,
			Insert: source.CaptureSpec{
				Prob: srng.Uniform(0.05, 0.5) * (0.3 + reach),
				// Report delays: typically same/next day, occasional
				// multi-day tails (Figure 1d).
				Delay: source.LogNormalDelay{Mu: srng.Uniform(-0.5, 0.6), Sigma: 0.8},
			},
			Delete: source.CaptureSpec{Prob: 0},
			Update: source.CaptureSpec{Prob: 0.2, Delay: source.ExponentialDelay{Rate: 0.5}},
		}
		s, err := source.Observe(w, source.ID(i), spec, srng.Fork())
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, s)
	}
	return &Dataset{Name: "GDELT", World: w, Sources: srcs, T0: cfg.T0}, nil
}

// AddMicroSources builds the BL+ family: for each original source, m
// micro-sources each covering a uniformly random 20–50% of the original's
// locations (Section 6.1). The returned dataset shares the world and keeps
// the originals followed by the micro-sources.
func (d *Dataset) AddMicroSources(m int, seed int64) (*Dataset, error) {
	if m < 0 {
		return nil, errors.New("dataset: negative micro-source multiplier")
	}
	rng := stats.NewRNG(seed)
	out := &Dataset{
		Name:    fmt.Sprintf("%s+%d", d.Name, m),
		World:   d.World,
		T0:      d.T0,
		Sources: append([]*source.Source(nil), d.Sources...),
	}
	for _, s := range d.Sources {
		// Locations covered by the original.
		locSet := map[int]bool{}
		for _, p := range s.Spec().Points {
			locSet[p.Location] = true
		}
		locs := make([]int, 0, len(locSet))
		for l := range locSet {
			locs = append(locs, l)
		}
		// Map iteration order is random; sort for determinism.
		for i := 0; i < len(locs); i++ {
			for j := i + 1; j < len(locs); j++ {
				if locs[j] < locs[i] {
					locs[i], locs[j] = locs[j], locs[i]
				}
			}
		}
		for k := 0; k < m; k++ {
			lo := int(0.2 * float64(len(locs)))
			hi := int(0.5 * float64(len(locs)))
			if lo < 1 {
				lo = 1
			}
			if hi < lo {
				hi = lo
			}
			nPick := rng.UniformInt(lo, hi)
			pickIdx := rng.SampleWithoutReplacement(len(locs), nPick)
			keep := map[int]bool{}
			for _, pi := range pickIdx {
				keep[locs[pi]] = true
			}
			var pts []world.DomainPoint
			for _, p := range s.Spec().Points {
				if keep[p.Location] {
					pts = append(pts, p)
				}
			}
			if len(pts) == 0 {
				continue
			}
			micro := s.Restrict(d.World, pts, fmt.Sprintf("%s.m%d", s.Name(), k))
			out.Sources = append(out.Sources, micro)
		}
	}
	return out, nil
}
