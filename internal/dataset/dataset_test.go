package dataset

import (
	"testing"

	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// smallBL returns a scaled-down BL config that keeps tests fast.
func smallBL() BLConfig {
	cfg := DefaultBLConfig()
	cfg.Locations = 10
	cfg.Categories = 6
	cfg.NumSources = 12
	cfg.Horizon = 200
	cfg.T0 = 100
	cfg.Scale = 0.4
	return cfg
}

func smallGDELT() GDELTConfig {
	cfg := DefaultGDELTConfig()
	cfg.Locations = 12
	cfg.EventTypes = 8
	cfg.NumSources = 40
	cfg.Scale = 0.5
	return cfg
}

func TestBLConfigValidation(t *testing.T) {
	bad := smallBL()
	bad.Locations = 0
	if _, err := GenerateBL(bad); err == nil {
		t.Error("want dimension error")
	}
	bad = smallBL()
	bad.T0 = bad.Horizon
	if _, err := GenerateBL(bad); err == nil {
		t.Error("want window error")
	}
	bad = smallBL()
	bad.Scale = 0
	if _, err := GenerateBL(bad); err == nil {
		t.Error("want scale error")
	}
}

func TestGenerateBLShape(t *testing.T) {
	cfg := smallBL()
	d, err := GenerateBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Sources) != cfg.NumSources {
		t.Fatalf("sources = %d", len(d.Sources))
	}
	if len(d.World.Points()) != cfg.Locations*cfg.Categories {
		t.Fatalf("points = %d", len(d.World.Points()))
	}
	if d.World.NumEntities() == 0 {
		t.Fatal("empty world")
	}
	if d.Horizon() != cfg.Horizon || d.T0 != cfg.T0 {
		t.Error("window wrong")
	}
	// Sources must have heterogeneous update intervals.
	ivs := map[timeline.Tick]bool{}
	for _, s := range d.Sources {
		ivs[s.UpdateInterval()] = true
	}
	if len(ivs) < 3 {
		t.Errorf("only %d distinct update intervals", len(ivs))
	}
}

func TestGenerateBLDeterminism(t *testing.T) {
	d1, err := GenerateBL(smallBL())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := GenerateBL(smallBL())
	if err != nil {
		t.Fatal(err)
	}
	if d1.World.NumEntities() != d2.World.NumEntities() {
		t.Error("world not deterministic")
	}
	for i := range d1.Sources {
		if d1.Sources[i].Log().Len() != d2.Sources[i].Log().Len() {
			t.Fatalf("source %d not deterministic", i)
		}
	}
}

func TestBLFreshnessFrequencyDecoupled(t *testing.T) {
	// The Figure 1a phenomenon: the correlation between update frequency
	// and freshness must be weak — in particular, the generator must
	// produce at least one high-frequency low-freshness source.
	d, err := GenerateBL(smallBL())
	if err != nil {
		t.Fatal(err)
	}
	ticks := metrics.Ticks(d.T0-40, d.T0)
	foundFreshSlow, foundStaleFast := false, false
	for _, s := range d.Sources {
		af := metrics.AverageFreshness(d.World, s, ticks)
		fast := s.UpdateInterval() <= 2
		if fast && af < 0.75 {
			foundStaleFast = true
		}
		if !fast && af > 0.75 {
			foundFreshSlow = true
		}
	}
	if !foundStaleFast {
		t.Error("no fast-but-stale source generated")
	}
	if !foundFreshSlow {
		t.Error("no slow-but-fresh source generated")
	}
}

func TestGDELTShape(t *testing.T) {
	cfg := smallGDELT()
	d, err := GenerateGDELT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Sources) != cfg.NumSources {
		t.Fatalf("sources = %d", len(d.Sources))
	}
	// All sources update daily.
	for _, s := range d.Sources {
		if s.UpdateInterval() != 1 {
			t.Fatalf("source %s interval %d", s.Name(), s.UpdateInterval())
		}
	}
	// Events never disappear.
	for _, e := range d.World.Entities() {
		if e.Died >= 0 {
			t.Fatal("GDELT events must not disappear")
		}
	}
	// Sizes are heavy-tailed: the largest source dwarfs the median.
	sizes := d.SizeAt(d.T0)
	largest := d.LargestSources(1)[0]
	nonEmpty := 0
	for _, sz := range sizes {
		if sz > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < cfg.NumSources/2 {
		t.Errorf("too many empty sources: %d non-empty", nonEmpty)
	}
	med := sizes[len(sizes)/2]
	if sizes[largest] < 5*med {
		t.Errorf("size distribution not heavy-tailed: max %d, median-ish %d", sizes[largest], med)
	}
}

func TestGDELTDelaysPresent(t *testing.T) {
	// Figure 1d: despite daily updates, a significant fraction of events
	// is reported late.
	d, err := GenerateGDELT(smallGDELT())
	if err != nil {
		t.Fatal(err)
	}
	anyDelayed := false
	for _, i := range d.LargestSources(10) {
		st := metrics.InsertionDelayStats(d.World, d.Sources[i])
		if st.FractionDelayed > 0.05 {
			anyDelayed = true
		}
		if st.AvgDelay < 0 {
			t.Fatal("negative delay")
		}
	}
	if !anyDelayed {
		t.Error("no delayed reporting in the largest sources")
	}
}

func TestGDELTValidation(t *testing.T) {
	bad := smallGDELT()
	bad.NumSources = 0
	if _, err := GenerateGDELT(bad); err == nil {
		t.Error("want error")
	}
}

func TestLargestSources(t *testing.T) {
	d, err := GenerateBL(smallBL())
	if err != nil {
		t.Fatal(err)
	}
	top := d.LargestSources(5)
	if len(top) != 5 {
		t.Fatalf("top = %v", top)
	}
	sizes := d.SizeAt(d.T0)
	for i := 1; i < len(top); i++ {
		if sizes[top[i]] > sizes[top[i-1]] {
			t.Fatal("LargestSources not descending")
		}
	}
	if len(d.LargestSources(1000)) != len(d.Sources) {
		t.Error("k beyond len should clamp")
	}
}

func TestSourceByName(t *testing.T) {
	d, err := GenerateBL(smallBL())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.SourceByName("bl-00"); !ok {
		t.Error("bl-00 not found")
	}
	if _, ok := d.SourceByName("nope"); ok {
		t.Error("found non-existent source")
	}
}

func TestAddMicroSources(t *testing.T) {
	d, err := GenerateBL(smallBL())
	if err != nil {
		t.Fatal(err)
	}
	plus, err := d.AddMicroSources(3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(plus.Sources) != len(d.Sources)*4 {
		t.Fatalf("sources = %d, want %d", len(plus.Sources), len(d.Sources)*4)
	}
	// Micro-sources cover a strict subset of their original's locations.
	for k, ms := range plus.Sources[len(d.Sources):] {
		orig := d.Sources[k/3]
		origLocs := map[int]bool{}
		for _, p := range orig.Spec().Points {
			origLocs[p.Location] = true
		}
		microLocs := map[int]bool{}
		for _, p := range ms.Spec().Points {
			if !origLocs[p.Location] {
				t.Fatalf("micro-source %s covers location outside original", ms.Name())
			}
			microLocs[p.Location] = true
		}
		if len(microLocs) == 0 || len(microLocs) > len(origLocs)/2+1 {
			t.Fatalf("micro-source %s covers %d of %d locations", ms.Name(), len(microLocs), len(origLocs))
		}
	}
	// Zero multiplier is the identity set.
	same, err := d.AddMicroSources(0, 99)
	if err != nil || len(same.Sources) != len(d.Sources) {
		t.Error("m=0 should keep the originals only")
	}
	if _, err := d.AddMicroSources(-1, 99); err == nil {
		t.Error("want error for negative multiplier")
	}
}

func TestMicroSourceEventsAreSubset(t *testing.T) {
	d, err := GenerateBL(smallBL())
	if err != nil {
		t.Fatal(err)
	}
	plus, err := d.AddMicroSources(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	orig := d.Sources[0]
	micro := plus.Sources[len(d.Sources)]
	if micro.Log().Len() >= orig.Log().Len() {
		t.Errorf("micro log %d not smaller than original %d", micro.Log().Len(), orig.Log().Len())
	}
	// Every micro event must exist in the original log.
	type key struct {
		e timeline.EntityID
		k timeline.EventKind
		a timeline.Tick
		v int
	}
	origEvents := map[key]bool{}
	for _, ev := range orig.Log().Events() {
		origEvents[key{ev.Entity, ev.Kind, ev.At, ev.Version}] = true
	}
	for _, ev := range micro.Log().Events() {
		if !origEvents[key{ev.Entity, ev.Kind, ev.At, ev.Version}] {
			t.Fatalf("micro event %+v not in original", ev)
		}
	}
	_ = source.ID(0)
	_ = world.DomainPoint{}
}
