package world

import (
	"testing"

	"freshsource/internal/timeline"
)

func validEntities() []Entity {
	return []Entity{
		{ID: 0, Point: DomainPoint{Location: 0, Category: 0}, Born: 0, Died: 50, Updates: []timeline.Tick{10, 20}, Visibility: 1},
		{ID: 1, Point: DomainPoint{Location: 0, Category: 1}, Born: 5, Died: -1, Visibility: 0.5},
		{ID: 2, Point: DomainPoint{Location: 0, Category: 0}, Born: 30, Died: -1, Visibility: 1},
	}
}

func TestFromEntitiesRoundTrip(t *testing.T) {
	w, err := FromEntities(validEntities(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumEntities() != 3 || w.Horizon() != 100 {
		t.Fatalf("shape wrong: %d entities, horizon %d", w.NumEntities(), w.Horizon())
	}
	// Log replays to the right state.
	snap := timeline.Materialize(w.Log(), 25)
	if !snap.Contains(0) || snap.States[0].Version != 2 {
		t.Errorf("entity 0 state@25 = %+v", snap.States[0])
	}
	snap = timeline.Materialize(w.Log(), 60)
	if snap.Contains(0) {
		t.Error("entity 0 should be dead at 60")
	}
	if got := w.AliveCount(60, nil); got != 2 {
		t.Errorf("alive@60 = %d", got)
	}
	// Point index rebuilt.
	if got := len(w.EntitiesOf(DomainPoint{Location: 0, Category: 0})); got != 2 {
		t.Errorf("point index = %d", got)
	}
	if len(w.Points()) != 2 {
		t.Errorf("points = %v", w.Points())
	}
}

func TestFromEntitiesMatchesGenerate(t *testing.T) {
	// Rebuilding a generated world from its own entity records must
	// reproduce the log exactly.
	orig, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	entities := append([]Entity(nil), orig.Entities()...)
	re, err := FromEntities(entities, orig.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	if re.Log().Len() != orig.Log().Len() {
		t.Fatalf("log %d != %d", re.Log().Len(), orig.Log().Len())
	}
	a, b := orig.Log().Events(), re.Log().Events()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d: %+v != %+v", i, a[i], b[i])
		}
	}
}

func TestFromEntitiesValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(es []Entity) []Entity
		horizon timeline.Tick
	}{
		{"zero horizon", func(es []Entity) []Entity { return es }, 0},
		{"empty", func([]Entity) []Entity { return nil }, 100},
		{"non-dense ids", func(es []Entity) []Entity { es[1].ID = 7; return es }, 100},
		{"born outside", func(es []Entity) []Entity { es[0].Born = 100; return es }, 100},
		{"died before birth", func(es []Entity) []Entity { es[0].Died = 0; return es }, 100},
		{"bad visibility", func(es []Entity) []Entity { es[0].Visibility = 0; return es }, 100},
		{"visibility above one", func(es []Entity) []Entity { es[0].Visibility = 1.5; return es }, 100},
		{"update before birth", func(es []Entity) []Entity { es[0].Updates = []timeline.Tick{0}; return es }, 100},
		{"update after death", func(es []Entity) []Entity { es[0].Updates = []timeline.Tick{55}; return es }, 100},
	}
	for _, c := range cases {
		if _, err := FromEntities(c.mutate(validEntities()), c.horizon); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}
