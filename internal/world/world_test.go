package world

import (
	"math"
	"testing"

	"freshsource/internal/stats"
	"freshsource/internal/timeline"
)

func smallConfig() Config {
	return Config{
		Subdomains: []SubdomainSpec{
			{Point: DomainPoint{0, 0}, InitialEntities: 200, LambdaAppear: 3, GammaDisappear: 0.01, GammaUpdate: 0.05},
			{Point: DomainPoint{0, 1}, InitialEntities: 100, LambdaAppear: 1, GammaDisappear: 0.02, GammaUpdate: 0.02},
		},
		Horizon: 300,
		Seed:    42,
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Horizon: 0}); err == nil {
		t.Error("want error on zero horizon")
	}
	if _, err := Generate(Config{Horizon: 10}); err == nil {
		t.Error("want error on no subdomains")
	}
	bad := smallConfig()
	bad.Subdomains[0].LambdaAppear = -1
	if _, err := Generate(bad); err == nil {
		t.Error("want error on negative rate")
	}
	dup := smallConfig()
	dup.Subdomains[1].Point = dup.Subdomains[0].Point
	if _, err := Generate(dup); err == nil {
		t.Error("want error on duplicate subdomain")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	w1, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if w1.NumEntities() != w2.NumEntities() || w1.Log().Len() != w2.Log().Len() {
		t.Error("generation is not deterministic")
	}
}

func TestEntityInvariants(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if w.NumEntities() == 0 {
		t.Fatal("no entities generated")
	}
	for _, e := range w.Entities() {
		if e.Died >= 0 && e.Died <= e.Born {
			t.Fatalf("entity %d died (%d) not after birth (%d)", e.ID, e.Died, e.Born)
		}
		prev := e.Born
		for _, u := range e.Updates {
			if u <= prev {
				t.Fatalf("entity %d updates not strictly increasing after birth", e.ID)
			}
			if e.Died >= 0 && u >= e.Died {
				t.Fatalf("entity %d updated at/after death", e.ID)
			}
			prev = u
		}
		if e.Died >= w.Horizon() {
			t.Fatalf("entity %d death beyond horizon recorded as %d", e.ID, e.Died)
		}
	}
}

func TestVersionAtAndAlive(t *testing.T) {
	e := Entity{ID: 1, Born: 10, Died: 50, Updates: []timeline.Tick{20, 30}}
	if e.Alive(9) || !e.Alive(10) || !e.Alive(49) || e.Alive(50) {
		t.Error("Alive boundaries wrong")
	}
	if v, ok := e.VersionAt(10); !ok || v != 0 {
		t.Errorf("version@10 = %d,%v", v, ok)
	}
	if v, ok := e.VersionAt(20); !ok || v != 1 {
		t.Errorf("version@20 = %d,%v", v, ok)
	}
	if v, ok := e.VersionAt(45); !ok || v != 2 {
		t.Errorf("version@45 = %d,%v", v, ok)
	}
	if _, ok := e.VersionAt(50); ok {
		t.Error("dead entity has a version")
	}
	forever := Entity{ID: 2, Born: 0, Died: -1}
	if !forever.Alive(1000) {
		t.Error("immortal entity should be alive")
	}
}

func TestLogMatchesEntities(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot at the horizon must equal the set of alive entities.
	at := w.Horizon() - 1
	snap := timeline.Materialize(w.Log(), at)
	aliveWant := 0
	for _, e := range w.Entities() {
		if e.Alive(at) {
			aliveWant++
			st, ok := snap.States[e.ID]
			if !ok {
				t.Fatalf("alive entity %d missing from snapshot", e.ID)
			}
			v, _ := e.VersionAt(at)
			if st.Version != v {
				t.Fatalf("entity %d snapshot version %d != ground truth %d", e.ID, st.Version, v)
			}
		} else if snap.Contains(e.ID) {
			t.Fatalf("dead entity %d present in snapshot", e.ID)
		}
	}
	if snap.Size() != aliveWant {
		t.Fatalf("snapshot size %d != alive %d", snap.Size(), aliveWant)
	}
	if w.AliveCount(at, nil) != aliveWant {
		t.Fatalf("AliveCount %d != %d", w.AliveCount(at, nil), aliveWant)
	}
}

func TestAliveCountByPoint(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := DomainPoint{0, 0}, DomainPoint{0, 1}
	at := timeline.Tick(100)
	total := w.AliveCount(at, nil)
	sum := w.AliveCount(at, []DomainPoint{p0}) + w.AliveCount(at, []DomainPoint{p1})
	if total != sum {
		t.Errorf("per-point alive counts %d don't sum to total %d", sum, total)
	}
	if got := w.AliveCount(at, []DomainPoint{p0, p1}); got != total {
		t.Errorf("multi-point AliveCount = %d, want %d", got, total)
	}
}

func TestAppearanceCountsMatchPoisson(t *testing.T) {
	cfg := Config{
		Subdomains: []SubdomainSpec{{Point: DomainPoint{0, 0}, LambdaAppear: 8, GammaDisappear: 0.005, GammaUpdate: 0}},
		Horizon:    2000,
		Seed:       7,
	}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := w.AppearanceCounts(1, w.Horizon(), nil)
	m, err := stats.FitPoisson(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Lambda-8) > 0.3 {
		t.Errorf("fitted appearance rate = %v, want ≈ 8", m.Lambda)
	}
	// Sum of counts equals entities born in the window.
	var sum int
	for _, c := range counts {
		sum += c
	}
	born := 0
	for _, e := range w.Entities() {
		if e.Born >= 1 {
			born++
		}
	}
	if sum != born {
		t.Errorf("appearance counts sum %d != born %d", sum, born)
	}
}

func TestLifespansRecoverRate(t *testing.T) {
	cfg := Config{
		Subdomains: []SubdomainSpec{{Point: DomainPoint{0, 0}, InitialEntities: 5000, LambdaAppear: 20, GammaDisappear: 0.02, GammaUpdate: 0}},
		Horizon:    500,
		Seed:       11,
	}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := w.Lifespans(400, nil)
	m, err := stats.FitExponential(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Discretization (ceil) biases the mean up by ~0.5 ticks on a mean of
	// 50, so allow a few percent.
	if math.Abs(m.Rate-0.02) > 0.002 {
		t.Errorf("fitted lifespan rate = %v, want ≈ 0.02", m.Rate)
	}
	if m.Censored == 0 {
		t.Error("expected some censored lifespans")
	}
}

func TestUpdateIntervalsRecoverRate(t *testing.T) {
	cfg := Config{
		Subdomains: []SubdomainSpec{{Point: DomainPoint{0, 0}, InitialEntities: 3000, LambdaAppear: 0, GammaDisappear: 0, GammaUpdate: 0.1}},
		Horizon:    400,
		Seed:       13,
	}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := w.UpdateIntervals(300, nil)
	m, err := stats.FitExponential(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Rate-0.1) > 0.01 {
		t.Errorf("fitted update rate = %v, want ≈ 0.1", m.Rate)
	}
}

func TestEntitiesOfPartition(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[timeline.EntityID]bool{}
	for _, p := range w.Points() {
		for _, id := range w.EntitiesOf(p) {
			if seen[id] {
				t.Fatalf("entity %d in two subdomains", id)
			}
			seen[id] = true
			if w.Entity(id).Point != p {
				t.Fatalf("entity %d point mismatch", id)
			}
		}
	}
	if len(seen) != w.NumEntities() {
		t.Errorf("partition covers %d of %d entities", len(seen), w.NumEntities())
	}
	if _, ok := w.Spec(DomainPoint{0, 0}); !ok {
		t.Error("Spec lookup failed")
	}
	if _, ok := w.Spec(DomainPoint{9, 9}); ok {
		t.Error("Spec lookup for absent point succeeded")
	}
}
