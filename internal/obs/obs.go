// Package obs is a dependency-free observability layer for the selection
// pipeline: atomic counters, gauges, fixed-bucket latency histograms with
// quantile summaries, and lightweight spans, all backed by a process-global
// registry that can be snapshot, rendered as a table, dumped as JSON, and
// exported over expvar/pprof (see debug.go).
//
// The package is built around two rules:
//
//  1. Disabled means free. Telemetry is off until Enable() is called; all
//     package-level helpers then return nil handles, and every method on a
//     nil *Counter, *Gauge, *Histogram or zero Span is a no-op. The
//     disabled fast path is a single atomic load plus a nil check —
//     benchmarked at ~1–2 ns in bench_test.go — so hot paths stay
//     instrumented unconditionally.
//
//  2. Enabled means safe. All metric mutations are atomic; the registry is
//     safe for concurrent Counter/Gauge/Histogram lookups and Snapshot
//     calls from any number of goroutines (race-detector clean).
//
// Usage at an instrumentation site:
//
//	defer obs.Start("estimate.quality.seconds").End()
//	obs.Counter("selection.oracle.value_calls").Add(1)
//
// Names are dotted paths; histograms conventionally end in ".seconds".
package obs

import (
	"sync/atomic"
	"time"
)

// active holds the enabled registry, or nil when telemetry is off.
var active atomic.Pointer[Registry]

// Enable turns telemetry on, installing (and returning) the process-global
// registry. If telemetry is already on, the existing registry is returned.
func Enable() *Registry {
	for {
		if r := active.Load(); r != nil {
			return r
		}
		r := NewRegistry()
		if active.CompareAndSwap(nil, r) {
			return r
		}
	}
}

// Disable turns telemetry off. Handles already obtained keep working (they
// mutate the detached registry); new package-level lookups return nil
// no-op handles.
func Disable() { active.Store(nil) }

// Active returns the enabled registry, or nil when telemetry is off.
func Active() *Registry { return active.Load() }

// Enabled reports whether telemetry is on.
func Enabled() bool { return active.Load() != nil }

// Counter returns the named counter from the active registry, or a nil
// no-op handle when telemetry is off.
func Counter(name string) *CounterVar { return active.Load().Counter(name) }

// Gauge returns the named gauge from the active registry, or a nil no-op
// handle when telemetry is off.
func Gauge(name string) *GaugeVar { return active.Load().Gauge(name) }

// Histogram returns the named latency histogram (default buckets) from the
// active registry, or a nil no-op handle when telemetry is off.
func Histogram(name string) *HistogramVar { return active.Load().Histogram(name) }

// Span is an in-flight timed section. The zero Span is a no-op.
type Span struct {
	h  *HistogramVar
	t0 time.Time
}

// Start begins a span that, on End, records its duration in seconds into
// the named histogram. When telemetry is off it returns the zero Span and
// never calls time.Now.
func Start(name string) Span {
	r := active.Load()
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(name), t0: time.Now()}
}

// StartIn begins a span recording into a specific registry (nil-safe).
// Useful for components holding a registry handle directly.
func StartIn(r *Registry, name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(name), t0: time.Now()}
}

// End finishes the span, observing the elapsed wall-clock seconds.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.t0).Seconds())
}

// EndWithCount finishes the span and additionally adds n to c — convenient
// for "did k units of work in this span" sites. Both are nil-safe.
func (s Span) EndWithCount(c *CounterVar, n int64) {
	s.End()
	c.Add(n)
}
