package obs

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram(DefaultLatencyBuckets)
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram not all-zero: count=%d sum=%g min=%g max=%g mean=%g",
			h.Count(), h.Sum(), h.Min(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Errorf("Quantile(%g) of empty = %g, want 0", q, v)
		}
	}
}

func TestHistogramNilReceiver(t *testing.T) {
	var h *HistogramVar
	h.Observe(1) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("nil histogram should report zeros")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := newHistogram(DefaultLatencyBuckets)
	const v = 3.7e-3 // mid-bucket
	h.Observe(v)
	if h.Count() != 1 || h.Sum() != v || h.Min() != v || h.Max() != v {
		t.Fatalf("single-sample stats wrong: count=%d sum=%g min=%g max=%g",
			h.Count(), h.Sum(), h.Min(), h.Max())
	}
	// Min/max clamping makes every quantile exact for a single sample.
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != v {
			t.Errorf("Quantile(%g) = %g, want exactly %g", q, got, v)
		}
	}
}

func TestHistogramBucketBoundary(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// "le" convention: a value exactly on a bound lands in that bucket.
	h.Observe(1)
	h.Observe(2)
	h.Observe(4)
	want := []int64{1, 1, 1, 0}
	for i := range h.counts {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, got, want[i])
		}
	}
	// Just above a bound falls into the next bucket; above the last bound
	// into overflow.
	h.Observe(2.0000001)
	if got := h.counts[2].Load(); got != 2 {
		t.Errorf("bucket 2 count = %d, want 2", got)
	}
	h.Observe(5)
	if got := h.counts[3].Load(); got != 1 {
		t.Errorf("overflow count = %d, want 1", got)
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	// 1000 samples uniform over (0, 1]: quantiles should land within one
	// bucket's width of the true value.
	h := newHistogram([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1})
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	cases := []struct{ q, want, tol float64 }{
		{0.5, 0.5, 0.1},
		{0.95, 0.95, 0.1},
		{0.99, 0.99, 0.1},
		{1, 1, 1e-9},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("Quantile(%g) = %g, want %g ± %g", c.q, got, c.want, c.tol)
		}
	}
}

func TestHistogramQuantileClampedToObserved(t *testing.T) {
	// All mass in one wide bucket: interpolation must not escape the
	// observed [min, max] range.
	h := newHistogram([]float64{1000})
	h.Observe(10)
	h.Observe(20)
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if got < 10 || got > 20 {
			t.Errorf("Quantile(%g) = %g outside observed [10, 20]", q, got)
		}
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(50)
	h.Observe(100)
	// Both in overflow: upper edge is the observed max.
	if got := h.Quantile(0.99); got > 100 || got < 50 {
		t.Errorf("overflow Quantile(0.99) = %g, want within [50, 100]", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("overflow Quantile(1) = %g, want 100", got)
	}
}

func TestHistogramQuantileOutOfRangeQ(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	if got := h.Quantile(-1); got != 0.5 {
		t.Errorf("Quantile(-1) = %g, want min 0.5", got)
	}
	if got := h.Quantile(2); got != 1.5 {
		t.Errorf("Quantile(2) = %g, want max 1.5", got)
	}
}

func TestHistogramKeepsOriginalBuckets(t *testing.T) {
	r := NewRegistry()
	h1 := r.HistogramWith("h", []float64{1, 2})
	h2 := r.HistogramWith("h", []float64{5, 6, 7})
	if h1 != h2 {
		t.Fatal("same name should return the same histogram")
	}
	if len(h2.bounds) != 2 {
		t.Errorf("histogram re-registration changed buckets: %v", h2.bounds)
	}
}
