package obs

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestInstrument(t *testing.T) {
	Disable()
	defer Disable()

	h := Instrument("test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))

	// Disabled: the wrapper must pass through without touching a registry.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Fatalf("disabled pass-through: code %d body %q", rec.Code, rec.Body.String())
	}

	reg := Enable()
	for _, path := range []string{"/", "/", "/boom"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", path, nil))
	}

	if got := reg.Counter("http.test.requests").Value(); got != 3 {
		t.Errorf("requests = %d, want 3", got)
	}
	if got := reg.Counter("http.requests").Value(); got != 3 {
		t.Errorf("global requests = %d, want 3", got)
	}
	if got := reg.Counter("http.test.errors").Value(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	if got := reg.Histogram("http.test.seconds").Count(); got != 3 {
		t.Errorf("latency observations = %d, want 3", got)
	}
	if got := reg.Gauge("http.inflight").Value(); got != 0 {
		t.Errorf("inflight after drain = %v, want 0", got)
	}
}
