package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var expvarOnce sync.Once

// PublishExpvar exposes the active registry's snapshot as the expvar
// variable "obs" (alongside the standard "memstats"/"cmdline" vars).
// Idempotent; a no-op until the first call. The published Func reads
// whatever registry is active at request time, so it survives
// Enable/Disable cycles.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			return Active().Snapshot()
		}))
	})
}

// ServeDebug starts an HTTP listener on addr exposing the Go pprof
// endpoints under /debug/pprof/, expvar under /debug/vars, and the obs
// snapshot as JSON under /debug/obs. It returns the bound address (useful
// with a ":0" port) and never blocks; the server runs until process exit.
// The listener is opt-in — nothing is served unless this is called.
func ServeDebug(addr string) (string, error) {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := Active().Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listener: %w", err)
	}
	go func() {
		srv := &http.Server{Handler: mux}
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}
