package obs

import (
	"net/http"
)

// Instrument wraps an HTTP handler with the standard serving telemetry:
//
//	http.<route>.requests      counter, one per completed request
//	http.<route>.errors        counter, responses with status >= 500
//	http.<route>.seconds       latency histogram (p50/p95/p99 in snapshots)
//	http.inflight              gauge, requests currently being served
//	http.requests              counter, all routes combined
//
// route is a short dotted label ("v1.select", "healthz"), not the URL
// pattern. Like every obs site, the wrapper is free when telemetry is
// disabled: the handles are nil and all mutations no-op.
func Instrument(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !Enabled() {
			next.ServeHTTP(w, r)
			return
		}
		inflight := Gauge("http.inflight")
		inflight.Add(1)
		defer inflight.Add(-1)
		sp := Start("http." + route + ".seconds")

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)

		sp.End()
		Counter("http." + route + ".requests").Inc()
		Counter("http.requests").Inc()
		if sw.status >= 500 {
			Counter("http." + route + ".errors").Inc()
		}
	})
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
