package obs_test

import (
	"fmt"

	"freshsource/internal/obs"
)

// Instrumented code holds nil-safe handles: with telemetry disabled the
// calls cost a nanosecond or two, with it enabled they record atomically.
func Example() {
	r := obs.Enable()
	defer obs.Disable()

	obs.Counter("example.requests").Add(3)
	func() {
		defer obs.Start("example.work.seconds").End()
		// ... the measured work ...
	}()

	snap := r.Snapshot()
	fmt.Println("requests:", snap.Counters["example.requests"])
	fmt.Println("work samples:", snap.Histograms["example.work.seconds"].Count)
	// Output:
	// requests: 3
	// work samples: 1
}
