package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.reload.attempts").Add(3)
	r.Gauge("serve.freshness.fresh").Set(12)
	h := r.HistogramWith("http.select.seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5) // overflow

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	doc := b.String()

	for _, want := range []string{
		"# TYPE serve_reload_attempts counter\nserve_reload_attempts 3\n",
		"# TYPE serve_freshness_fresh gauge\nserve_freshness_fresh 12\n",
		"# TYPE http_select_seconds histogram\n",
		`http_select_seconds_bucket{le="0.001"} 1`,
		`http_select_seconds_bucket{le="0.01"} 1`,
		`http_select_seconds_bucket{le="0.1"} 2`,
		`http_select_seconds_bucket{le="+Inf"} 3`,
		"http_select_seconds_count 3",
		"# TYPE http_select_seconds_p95 gauge",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("exposition missing %q in:\n%s", want, doc)
		}
	}

	n, err := ValidatePrometheus(doc)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, doc)
	}
	// 1 counter + 1 gauge + (4 buckets + sum + count + 3 quantiles).
	if n != 11 {
		t.Errorf("sample count = %d, want 11:\n%s", n, doc)
	}
}

func TestWritePrometheusIsDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"z.last", "a.first", "m.middle"} {
		r.Counter(name).Inc()
	}
	var a, b strings.Builder
	snap := r.Snapshot()
	if err := snap.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of one snapshot differ")
	}
	if !strings.Contains(a.String(), "a_first 1\n# TYPE m_middle") {
		t.Errorf("families not in sorted order:\n%s", a.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"http.select.seconds": "http_select_seconds",
		"serve.reload-rate":   "serve_reload_rate",
		"9lives":              "_9lives",
		"ok_name:colon":       "ok_name:colon",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestValidatePrometheusRejectsGarbage(t *testing.T) {
	for _, doc := range []string{
		"no value line\nmetric",                 // missing value
		"bad.name 1",                            // unsanitized name
		"metric not-a-number",                   // bad float
		"# COMMENT of unknown kind\nmetric 1\n", // unknown comment
		`metric{le="0.5" 1`,                     // unterminated labels
	} {
		if _, err := ValidatePrometheus(doc); err == nil {
			t.Errorf("ValidatePrometheus accepted %q", doc)
		}
	}
}

func TestCaptureRuntime(t *testing.T) {
	r := NewRegistry()
	CaptureRuntime(r)
	snap := r.Snapshot()
	if snap.Gauges["proc.goroutines"] < 1 {
		t.Errorf("proc.goroutines = %v, want >= 1", snap.Gauges["proc.goroutines"])
	}
	if snap.Gauges["proc.mallocs"] <= 0 {
		t.Errorf("proc.mallocs = %v, want > 0", snap.Gauges["proc.mallocs"])
	}
	CaptureRuntime(nil) // nil-safe like every obs entry point
}

func TestSnapshotCarriesBucketLayout(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x.seconds")
	h.Observe(0.002)
	sum := r.Snapshot().Histograms["x.seconds"]
	if len(sum.Bounds) != len(DefaultLatencyBuckets) {
		t.Fatalf("bounds = %d entries, want %d", len(sum.Bounds), len(DefaultLatencyBuckets))
	}
	if len(sum.Counts) != len(DefaultLatencyBuckets)+1 {
		t.Fatalf("counts = %d entries, want %d", len(sum.Counts), len(DefaultLatencyBuckets)+1)
	}
	var total int64
	for _, n := range sum.Counts {
		total += n
	}
	if total != 1 {
		t.Errorf("counts sum to %d, want 1", total)
	}
	// Serving-scale check: the default layout must resolve second-to-minute
	// latencies, not just the microbench range — a 4-minute reload must land
	// in a finite bucket, not overflow.
	last := sum.Bounds[len(sum.Bounds)-1]
	if last < 600 {
		t.Errorf("last finite bound %v too low for reload-scale latencies", last)
	}
}
