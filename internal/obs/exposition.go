package obs

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition format
// emitted by WritePrometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), so a long-running daemon's /metrics is scrapeable
// rather than dump-on-exit only:
//
//   - counters become `# TYPE name counter` series;
//   - gauges become `# TYPE name gauge` series;
//   - histograms become full `# TYPE name histogram` families — cumulative
//     `name_bucket{le="..."}` series over every configured bound (empty
//     buckets included, closed by le="+Inf"), plus `name_sum` and
//     `name_count` — followed by precomputed `name_p50/_p95/_p99` quantile
//     gauges, since the fixed-bucket quantile estimate here interpolates
//     within the observed [min, max] and is tighter than what a scraper
//     would recompute from the buckets alone.
//
// Dotted metric names are sanitized to the Prometheus charset (dots and
// any other invalid byte become '_'). Output is deterministic: families
// are emitted in sorted name order.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, k := range sortedKeys(s.Counters) {
		name := sanitizeMetricName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[k]); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Gauges) {
		name := sanitizeMetricName(k)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(s.Gauges[k])); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(s.Histograms) {
		if err := writePromHistogram(w, sanitizeMetricName(k), s.Histograms[k]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, h HistogramSummary) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum), name, h.Count); err != nil {
		return err
	}
	for _, q := range []struct {
		suffix string
		v      float64
	}{{"p50", h.P50}, {"p95", h.P95}, {"p99", h.P99}} {
		if _, err := fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %s\n",
			name, q.suffix, name, q.suffix, promFloat(q.v)); err != nil {
			return err
		}
	}
	return nil
}

// promFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with exponents where shorter.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps a dotted obs name onto the Prometheus metric
// charset [a-zA-Z0-9_:]; every other byte becomes '_'. A leading digit is
// prefixed with '_' (metric names must not start with a digit).
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// CaptureRuntime refreshes the process-level gauges on the registry from
// the Go runtime: goroutine count, heap occupancy and the cumulative
// allocation counters. Serving code calls it right before a snapshot so
// /metrics always reports current process state; freshbench diffs
// proc.mallocs across a run to derive allocations per request. Nil-safe,
// like every registry method.
func CaptureRuntime(r *Registry) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("proc.goroutines").Set(float64(runtime.NumGoroutine()))
	r.Gauge("proc.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	r.Gauge("proc.sys_bytes").Set(float64(ms.Sys))
	r.Gauge("proc.mallocs").Set(float64(ms.Mallocs))
	r.Gauge("proc.total_alloc_bytes").Set(float64(ms.TotalAlloc))
	r.Gauge("proc.gc_cycles").Set(float64(ms.NumGC))
}

// ValidatePrometheus structurally checks a text-exposition document: every
// non-empty line is either a `# TYPE`/`# HELP` comment or a
// `name[{labels}] value` sample with a sanitized metric name and a
// parseable float value. It returns the number of samples. Tests and the
// freshbench harness use it as a zero-dependency stand-in for a real
// Prometheus scraper.
func ValidatePrometheus(doc string) (samples int, err error) {
	for ln, line := range strings.Split(doc, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "# ")
			if !strings.HasPrefix(rest, "TYPE ") && !strings.HasPrefix(rest, "HELP ") {
				return samples, fmt.Errorf("line %d: unknown comment %q", ln+1, line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return samples, fmt.Errorf("line %d: no sample value in %q", ln+1, line)
		}
		series, value := line[:sp], line[sp+1:]
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return samples, fmt.Errorf("line %d: unterminated labels in %q", ln+1, line)
			}
			name = series[:i]
		}
		if name == "" || sanitizeMetricName(name) != name {
			return samples, fmt.Errorf("line %d: invalid metric name %q", ln+1, name)
		}
		if _, ferr := strconv.ParseFloat(value, 64); ferr != nil {
			return samples, fmt.Errorf("line %d: bad sample value %q", ln+1, value)
		}
		samples++
	}
	return samples, nil
}
