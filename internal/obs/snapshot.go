package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of a registry, suitable for JSON
// encoding and human rendering. Maps are keyed by metric name.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]float64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// HistogramSummary condenses one histogram: counts, moments, quantiles and
// the non-empty buckets.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets lists the non-empty buckets as {le, count} pairs; the
	// overflow bucket reports le = +Inf encoded as "inf".
	Buckets []BucketCount `json:"buckets,omitempty"`
	// Bounds is the histogram's full bucket layout: the finite inclusive
	// upper bounds, ascending. Counts is parallel plus one trailing
	// overflow slot (observations above the last bound), empty buckets
	// included — the Prometheus exposition derives its cumulative
	// `le`-labeled series from these.
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	// LE is the bucket's inclusive upper bound in the histogram's unit;
	// the overflow bucket uses the string "inf".
	LE string `json:"le"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"count"`
}

// Snapshot copies the registry's current state. Safe to call concurrently
// with metric mutation; counts and sums may be skewed by in-flight updates
// by at most one observation per histogram. Returns an empty snapshot on a
// nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSummary{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	ctrs := make(map[string]*CounterVar, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	gauges := make(map[string]*GaugeVar, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*HistogramVar, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	for k, c := range ctrs {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = summarize(h)
	}
	return s
}

func summarize(h *HistogramVar) HistogramSummary {
	sum := HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	sum.Bounds = append([]float64(nil), h.bounds...)
	sum.Counts = make([]int64, len(h.counts))
	for i := range h.counts {
		sum.Counts[i] = h.counts[i].Load()
	}
	for i, n := range sum.Counts {
		if n == 0 {
			continue
		}
		le := "inf"
		if i < len(h.bounds) {
			le = trimFloat(h.bounds[i])
		}
		sum.Buckets = append(sum.Buckets, BucketCount{LE: le, Count: n})
	}
	return sum
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Empty reports whether the snapshot holds no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Table renders the snapshot as an aligned human-readable table: counters
// and gauges first, then one row per histogram with count, mean and
// p50/p95/p99 (durations rendered in an adaptive unit).
func (s Snapshot) Table() string {
	var b strings.Builder
	names := sortedKeys(s.Counters)
	if len(names) > 0 {
		b.WriteString("counters:\n")
		w := maxLen(names)
		for _, k := range names {
			fmt.Fprintf(&b, "  %-*s %d\n", w, k, s.Counters[k])
		}
	}
	gnames := sortedKeys(s.Gauges)
	if len(gnames) > 0 {
		b.WriteString("gauges:\n")
		w := maxLen(gnames)
		for _, k := range gnames {
			fmt.Fprintf(&b, "  %-*s %g\n", w, k, s.Gauges[k])
		}
	}
	hnames := sortedKeys(s.Histograms)
	if len(hnames) > 0 {
		b.WriteString("histograms:\n")
		w := maxLen(hnames)
		fmt.Fprintf(&b, "  %-*s %10s %10s %10s %10s %10s %10s\n",
			w, "name", "count", "mean", "p50", "p95", "p99", "max")
		for _, k := range hnames {
			h := s.Histograms[k]
			fmt.Fprintf(&b, "  %-*s %10d %10s %10s %10s %10s %10s\n",
				w, k, h.Count,
				fmtSeconds(h.Mean), fmtSeconds(h.P50), fmtSeconds(h.P95),
				fmtSeconds(h.P99), fmtSeconds(h.Max))
		}
	}
	if b.Len() == 0 {
		return "(no telemetry recorded)\n"
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func maxLen(ss []string) int {
	w := 0
	for _, s := range ss {
		if len(s) > w {
			w = len(s)
		}
	}
	return w
}

// fmtSeconds renders a duration in seconds with an adaptive unit.
func fmtSeconds(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1e-6:
		return fmt.Sprintf("%.0fns", v*1e9)
	case v < 1e-3:
		return fmt.Sprintf("%.1fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.2fms", v*1e3)
	default:
		return fmt.Sprintf("%.3fs", v)
	}
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
