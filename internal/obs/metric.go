package obs

import (
	"math"
	"sync/atomic"
)

// CounterVar is a monotonically increasing atomic counter. All methods are
// no-ops on a nil receiver, which is what package-level lookups return when
// telemetry is disabled.
type CounterVar struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *CounterVar) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *CounterVar) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *CounterVar) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// GaugeVar is an atomic instantaneous float64 value (stored as bits).
type GaugeVar struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *GaugeVar) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d to the gauge.
func (g *GaugeVar) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *GaugeVar) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefaultLatencyBuckets are the upper bounds, in seconds, of the default
// histogram layout: roughly exponential from 1 µs to 10 min. The low end
// resolves the library microbenches; the 1 s – 600 s tail keeps serving-
// and reload-scale latencies (a hot reload pre-fits a full model set and
// may legitimately take minutes) out of the overflow bucket, where
// quantiles would clip to the last finite bound. An implicit overflow
// bucket catches everything above the last bound.
var DefaultLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// HistogramVar is a fixed-bucket histogram of float64 observations
// (conventionally seconds). Buckets follow the "le" convention: bucket i
// counts observations v with v ≤ bounds[i]; counts[len(bounds)] is the
// overflow bucket. Observations are lock-free; Snapshot readers may see a
// histogram mid-update, which skews a quantile by at most one observation.
type HistogramVar struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow

	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-added
	minBits atomic.Uint64 // float64 bits; initialised to +Inf
	maxBits atomic.Uint64 // float64 bits; initialised to -Inf
}

func newHistogram(bounds []float64) *HistogramVar {
	h := &HistogramVar{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one observation.
func (h *HistogramVar) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (≤ ~27): linear scan beats binary search overhead
	// and stays branch-predictable for the common small-latency case.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	casAdd(&h.sumBits, v)
	casMin(&h.minBits, v)
	casMax(&h.maxBits, v)
}

func casAdd(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *HistogramVar) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *HistogramVar) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min returns the smallest observation, or 0 when empty.
func (h *HistogramVar) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation, or 0 when empty.
func (h *HistogramVar) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket, clamped to the observed [min, max] range —
// so a single-observation histogram reports that observation exactly for
// every q. An empty histogram reports 0.
func (h *HistogramVar) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	min, max := h.Min(), h.Max()
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	target := q * float64(total)
	if target < 1 {
		target = 1 // the quantile of the first observation
	}
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= target {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if lo < min {
				lo = min
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - float64(cum)) / float64(n)
			v := lo + frac*(hi-lo)
			return clampRange(v, min, max)
		}
		cum += n
	}
	return max
}

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Mean returns the average observation, or 0 when empty.
func (h *HistogramVar) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}
