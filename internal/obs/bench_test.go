package obs

// Disabled-path baseline, recorded 2026-08 on the dev container
// (linux/amd64, go1.24):
//
//	BenchmarkObsDisabled/counter_add    ~0.3 ns/op   0 allocs
//	BenchmarkObsDisabled/span           ~2.2 ns/op   0 allocs
//	BenchmarkObsDisabled/lookup+add     ~1.6 ns/op   0 allocs
//	BenchmarkObsEnabled/counter_add     ~5.8 ns/op   0 allocs
//	BenchmarkObsEnabled/histogram       ~20 ns/op    0 allocs
//	BenchmarkObsEnabled/lookup+add      ~25 ns/op    0 allocs (RWMutex map hit)
//	BenchmarkObsEnabled/span            ~140 ns/op   0 allocs (two time reads)
//
// The contract the instrumented hot paths rely on: when telemetry is off,
// an instrumentation site costs an atomic pointer load plus a nil check —
// single-digit nanoseconds, no allocation. If a change pushes the
// disabled-path numbers above ~5 ns/op, it is a regression.

import (
	"testing"
)

func benchGuardDisabled(b *testing.B) {
	b.Helper()
	prev := Active()
	Disable()
	b.Cleanup(func() {
		if prev != nil {
			active.Store(prev)
		}
	})
}

func BenchmarkObsDisabled(b *testing.B) {
	b.Run("counter_add", func(b *testing.B) {
		benchGuardDisabled(b)
		c := Counter("bench.counter") // nil handle
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("span", func(b *testing.B) {
		benchGuardDisabled(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := Start("bench.span.seconds")
			sp.End()
		}
	})
	b.Run("lookup+add", func(b *testing.B) {
		benchGuardDisabled(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Counter("bench.counter").Add(1)
		}
	})
}

func BenchmarkObsEnabled(b *testing.B) {
	setup := func(b *testing.B) *Registry {
		b.Helper()
		prev := Active()
		Disable()
		r := Enable()
		b.Cleanup(func() {
			Disable()
			if prev != nil {
				active.Store(prev)
			}
		})
		return r
	}
	b.Run("counter_add", func(b *testing.B) {
		setup(b)
		c := Counter("bench.counter")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("histogram", func(b *testing.B) {
		setup(b)
		h := Histogram("bench.hist.seconds")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(1e-4)
		}
	})
	b.Run("span", func(b *testing.B) {
		setup(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := Start("bench.span.seconds")
			sp.End()
		}
	})
	b.Run("lookup+add", func(b *testing.B) {
		setup(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Counter("bench.counter").Add(1)
		}
	})
}
