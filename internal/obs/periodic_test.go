package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func waitWrites(t *testing.T, w *PeriodicWriter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		writes, errs, last := w.Stats()
		if errs > 0 {
			t.Fatalf("periodic writer errored: %v", last)
		}
		if writes >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d writes (have %d)", n, writes)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPeriodicWriterWritesAndRotates(t *testing.T) {
	r := NewRegistry()
	r.Counter("work.done").Add(7)
	path := filepath.Join(t.TempDir(), "obs.json")

	w := StartPeriodic(r, path, 5*time.Millisecond, 3)
	waitWrites(t, w, 4) // enough cycles to fill the retention chain
	w.Stop()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["work.done"] != 7 {
		t.Errorf("snapshot counter = %d, want 7", snap.Counters["work.done"])
	}

	retained := w.Retained()
	if len(retained) != 3 {
		t.Fatalf("retained %v, want 3 generations", retained)
	}
	for _, p := range retained {
		var gen Snapshot
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw, &gen); err != nil {
			t.Errorf("%s: torn snapshot: %v", p, err)
		}
	}
	// The chain must not grow past the retention depth.
	if _, err := os.Stat(fmt.Sprintf("%s.%d", path, 3)); err == nil {
		t.Error("retention kept a generation past keep=3")
	}
	// No stray tmp file after a clean stop.
	if _, err := os.Stat(path + ".tmp"); err == nil {
		t.Error("tmp file left behind")
	}
}

func TestPeriodicWriterStopFlushes(t *testing.T) {
	r := NewRegistry()
	path := filepath.Join(t.TempDir(), "obs.json")
	// An interval far longer than the test: the only write is Stop's flush.
	w := StartPeriodic(r, path, time.Hour, 1)
	r.Counter("late.work").Add(1)
	w.Stop()

	var snap Snapshot
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("stop did not flush: %v", err)
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["late.work"] != 1 {
		t.Errorf("flushed snapshot = %+v, want late.work=1", snap.Counters)
	}
	w.Stop() // idempotent
}

func TestPeriodicWriterNilSafety(t *testing.T) {
	if w := StartPeriodic(nil, "x", time.Second, 1); w != nil {
		t.Error("nil registry should not start a writer")
	}
	if w := StartPeriodic(NewRegistry(), "", time.Second, 1); w != nil {
		t.Error("empty path should not start a writer")
	}
	if w := StartPeriodic(NewRegistry(), "x", 0, 1); w != nil {
		t.Error("zero interval should not start a writer")
	}
	var w *PeriodicWriter
	w.Stop()
	if got := w.Retained(); got != nil {
		t.Errorf("nil writer retained %v", got)
	}
}
