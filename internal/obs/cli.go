package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// Flags bundles the standard observability command-line surface shared by
// the binaries:
//
//	-obs.dump <path>     write a JSON telemetry snapshot on exit
//	-obs.interval <dur>  also rewrite the -obs.dump snapshot periodically
//	                     (atomic rename; crash-safe), 0 = exit-only
//	-obs.keep <n>        rotated snapshot generations retained with
//	                     -obs.interval (path, path.1, …)
//	-obs.table           print a human-readable telemetry table on exit
//	-pprof <addr>        serve net/http/pprof + expvar on addr
//
// Typical wiring:
//
//	var of obs.Flags
//	of.Register(flag.CommandLine)
//	flag.Parse()
//	if err := of.Activate(); err != nil { ... }
//	defer of.Finish(os.Stderr)
type Flags struct {
	// Dump is the -obs.dump JSON snapshot path ("" = off).
	Dump string
	// Interval is the -obs.interval periodic rewrite cadence of the Dump
	// path (0 = write only on exit).
	Interval time.Duration
	// Keep is the -obs.keep retention depth of the periodic writer.
	Keep int
	// Table enables the -obs.table exit report.
	Table bool
	// PprofAddr is the -pprof listen address ("" = off).
	PprofAddr string

	periodic *PeriodicWriter
}

// Register installs the flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Dump, "obs.dump", "", "write a JSON telemetry snapshot to this path on exit")
	fs.DurationVar(&f.Interval, "obs.interval", 0, "also rewrite the -obs.dump snapshot on this interval (atomic rename; 0 = exit-only)")
	fs.IntVar(&f.Keep, "obs.keep", 3, "rotated snapshot generations retained by -obs.interval (path, path.1, ...)")
	fs.BoolVar(&f.Table, "obs.table", false, "print a telemetry table on exit")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve pprof and expvar on this address (e.g. localhost:6060)")
}

// Enabled reports whether any observability flag was set.
func (f *Flags) Enabled() bool { return f.Dump != "" || f.Table || f.PprofAddr != "" }

// Activate enables telemetry if any flag was set, starts the debug
// listener when requested, and — when -obs.interval is set alongside
// -obs.dump — starts the periodic snapshot writer. Call after flag parsing
// and before the instrumented work. Returns the bound pprof address (""
// when off).
func (f *Flags) Activate() (string, error) {
	if !f.Enabled() {
		return "", nil
	}
	r := Enable()
	if f.Dump != "" && f.Interval > 0 {
		f.periodic = StartPeriodic(r, f.Dump, f.Interval, f.Keep)
	}
	if f.PprofAddr == "" {
		return "", nil
	}
	addr, err := ServeDebug(f.PprofAddr)
	if err != nil {
		return "", err
	}
	return addr, nil
}

// Finish emits the exit reports: the periodic writer (if any) flushes a
// final snapshot and stops, then the table goes to w (when -obs.table) and
// the JSON snapshot to the -obs.dump path. A no-op when telemetry is off.
func (f *Flags) Finish(w io.Writer) error {
	f.periodic.Stop()
	r := Active()
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	if f.Table {
		if _, err := io.WriteString(w, snap.Table()); err != nil {
			return err
		}
	}
	if f.Dump != "" {
		file, err := os.Create(f.Dump)
		if err != nil {
			return fmt.Errorf("obs: dump: %w", err)
		}
		defer file.Close()
		if err := snap.WriteJSON(file); err != nil {
			return fmt.Errorf("obs: dump: %w", err)
		}
	}
	return nil
}
