package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Flags bundles the standard observability command-line surface shared by
// the binaries:
//
//	-obs.dump <path>   write a JSON telemetry snapshot on exit
//	-obs.table         print a human-readable telemetry table on exit
//	-pprof <addr>      serve net/http/pprof + expvar on addr
//
// Typical wiring:
//
//	var of obs.Flags
//	of.Register(flag.CommandLine)
//	flag.Parse()
//	if err := of.Activate(); err != nil { ... }
//	defer of.Finish(os.Stderr)
type Flags struct {
	// Dump is the -obs.dump JSON snapshot path ("" = off).
	Dump string
	// Table enables the -obs.table exit report.
	Table bool
	// PprofAddr is the -pprof listen address ("" = off).
	PprofAddr string
}

// Register installs the flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Dump, "obs.dump", "", "write a JSON telemetry snapshot to this path on exit")
	fs.BoolVar(&f.Table, "obs.table", false, "print a telemetry table on exit")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve pprof and expvar on this address (e.g. localhost:6060)")
}

// Enabled reports whether any observability flag was set.
func (f *Flags) Enabled() bool { return f.Dump != "" || f.Table || f.PprofAddr != "" }

// Activate enables telemetry if any flag was set and starts the debug
// listener when requested. Call after flag parsing and before the
// instrumented work. Returns the bound pprof address ("" when off).
func (f *Flags) Activate() (string, error) {
	if !f.Enabled() {
		return "", nil
	}
	Enable()
	if f.PprofAddr == "" {
		return "", nil
	}
	addr, err := ServeDebug(f.PprofAddr)
	if err != nil {
		return "", err
	}
	return addr, nil
}

// Finish emits the exit reports: the table to w (when -obs.table) and the
// JSON snapshot to the -obs.dump path. A no-op when telemetry is off.
func (f *Flags) Finish(w io.Writer) error {
	r := Active()
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	if f.Table {
		if _, err := io.WriteString(w, snap.Table()); err != nil {
			return err
		}
	}
	if f.Dump != "" {
		file, err := os.Create(f.Dump)
		if err != nil {
			return fmt.Errorf("obs: dump: %w", err)
		}
		defer file.Close()
		if err := snap.WriteJSON(file); err != nil {
			return fmt.Errorf("obs: dump: %w", err)
		}
	}
	return nil
}
