package obs

import (
	"sync"
)

// Registry is a named collection of counters, gauges and histograms. The
// zero value is not usable; use NewRegistry. All methods are safe for
// concurrent use, and all lookup methods are nil-receiver-safe so the
// disabled path costs only a nil check.
type Registry struct {
	mu     sync.RWMutex
	ctrs   map[string]*CounterVar
	gauges map[string]*GaugeVar
	hists  map[string]*HistogramVar
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*CounterVar),
		gauges: make(map[string]*GaugeVar),
		hists:  make(map[string]*HistogramVar),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *CounterVar {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.ctrs[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.ctrs[name]; ok {
		return c
	}
	c = &CounterVar{}
	r.ctrs[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *GaugeVar {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &GaugeVar{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram with the default latency buckets,
// creating it on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *HistogramVar {
	return r.HistogramWith(name, DefaultLatencyBuckets)
}

// HistogramWith returns the named histogram, creating it with the given
// bucket upper bounds (ascending) on first use. An existing histogram
// keeps its original buckets. Returns nil on a nil registry.
func (r *Registry) HistogramWith(name string, bounds []float64) *HistogramVar {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Reset drops every metric, so the next snapshot covers only work done
// after the reset. Handles obtained before the reset keep mutating their
// detached metrics, which no longer appear in snapshots.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ctrs = make(map[string]*CounterVar)
	r.gauges = make(map[string]*GaugeVar)
	r.hists = make(map[string]*HistogramVar)
}
