package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// PeriodicWriter snapshots a registry to disk on a fixed interval, so a
// long-running daemon keeps its telemetry after a crash instead of only
// dumping on a clean exit. Every cycle:
//
//  1. the snapshot is written to <path>.tmp and atomically renamed over
//     <path> — a reader (or a post-mortem) never sees a torn file;
//  2. the previous generations rotate to <path>.1 … <path>.<keep-1>, so
//     the last keep snapshots survive (retention 1 keeps only <path>).
//
// Stop flushes one final snapshot, making `kill` and clean shutdown leave
// the same artifacts behind.
type PeriodicWriter struct {
	reg      *Registry
	path     string
	interval time.Duration
	keep     int

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu     sync.Mutex
	writes int
	errs   int
	last   error
}

// StartPeriodic begins snapshotting reg to path every interval, retaining
// the keep most recent files (keep < 1 is treated as 1). A nil reg or
// non-positive interval returns nil — callers can wire the flag
// unconditionally and Stop a nil writer safely.
func StartPeriodic(reg *Registry, path string, interval time.Duration, keep int) *PeriodicWriter {
	if reg == nil || interval <= 0 || path == "" {
		return nil
	}
	if keep < 1 {
		keep = 1
	}
	w := &PeriodicWriter{
		reg:      reg,
		path:     path,
		interval: interval,
		keep:     keep,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *PeriodicWriter) loop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.writeOnce()
		case <-w.stop:
			w.writeOnce() // final flush: exit artifacts match crash artifacts
			return
		}
	}
}

// writeOnce rotates the retention chain and atomically replaces <path>.
func (w *PeriodicWriter) writeOnce() {
	err := w.write()
	w.mu.Lock()
	if err != nil {
		w.errs++
		w.last = err
	} else {
		w.writes++
	}
	w.mu.Unlock()
	if err != nil {
		Counter("obs.periodic.errors").Inc()
	} else {
		Counter("obs.periodic.writes").Inc()
	}
}

func (w *PeriodicWriter) write() error {
	tmp := w.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("obs: periodic snapshot: %w", err)
	}
	snap := w.reg.Snapshot()
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("obs: periodic snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: periodic snapshot: %w", err)
	}
	// Rotate oldest-first so each generation moves exactly one slot:
	// path.(keep-2) → path.(keep-1), …, path → path.1. Renames of missing
	// generations (early in the run) are skipped.
	for n := w.keep - 1; n >= 1; n-- {
		src := w.path
		if n > 1 {
			src = fmt.Sprintf("%s.%d", w.path, n-1)
		}
		if _, err := os.Stat(src); err != nil {
			continue
		}
		_ = os.Rename(src, fmt.Sprintf("%s.%d", w.path, n))
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: periodic snapshot: %w", err)
	}
	return nil
}

// Stop ends the loop, flushes a final snapshot and waits for it. Safe to
// call more than once, and on a nil writer.
func (w *PeriodicWriter) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// Stats reports the writer's lifetime outcome: successful writes, failed
// writes, and the most recent error (nil when every write landed).
func (w *PeriodicWriter) Stats() (writes, errs int, last error) {
	if w == nil {
		return 0, 0, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, w.errs, w.last
}

// Retained lists the snapshot files currently on disk for path, newest
// first: <path>, <path>.1, … — a convenience for tests and operators.
func (w *PeriodicWriter) Retained() []string {
	if w == nil {
		return nil
	}
	var out []string
	if _, err := os.Stat(w.path); err == nil {
		out = append(out, filepath.Clean(w.path))
	}
	for n := 1; n < w.keep; n++ {
		p := fmt.Sprintf("%s.%d", w.path, n)
		if _, err := os.Stat(p); err == nil {
			out = append(out, p)
		}
	}
	return out
}
