package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// resetGlobal detaches any active registry and restores the previous state
// when the test ends.
func resetGlobal(t *testing.T) {
	t.Helper()
	prev := Active()
	Disable()
	t.Cleanup(func() {
		if prev != nil {
			active.Store(prev)
		} else {
			Disable()
		}
	})
}

func TestDisabledHandlesAreNoOps(t *testing.T) {
	resetGlobal(t)
	c := Counter("x")
	if c != nil {
		t.Fatal("disabled Counter should be nil")
	}
	c.Add(5) // must not panic
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	Gauge("g").Set(1)
	Gauge("g").Add(2)
	Histogram("h").Observe(1)
	sp := Start("span.seconds")
	sp.End()
	sp.EndWithCount(nil, 3)
	if Enabled() {
		t.Error("Enabled() true while disabled")
	}
}

func TestEnableDisableLifecycle(t *testing.T) {
	resetGlobal(t)
	r := Enable()
	if r == nil || Active() != r || !Enabled() {
		t.Fatal("Enable did not install a registry")
	}
	if again := Enable(); again != r {
		t.Error("second Enable returned a different registry")
	}
	Counter("a").Add(3)
	if got := r.Counter("a").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	Disable()
	if Enabled() {
		t.Error("still enabled after Disable")
	}
}

func TestRegistryHandleIdentityAndReset(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Error("same counter name returned different handles")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same gauge name returned different handles")
	}
	r.Counter("c").Add(7)
	r.Reset()
	if got := r.Counter("c").Value(); got != 0 {
		t.Errorf("counter survived Reset with value %d", got)
	}
	if !r.Snapshot().Empty() {
		// Reset then Counter() recreates "c" at zero — Snapshot sees it.
		snap := r.Snapshot()
		if snap.Counters["c"] != 0 {
			t.Errorf("post-reset snapshot has nonzero counter: %v", snap.Counters)
		}
	}
}

func TestNilRegistryLookups(t *testing.T) {
	var r *Registry
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.Histogram("h") != nil {
		t.Error("nil registry lookups should return nil handles")
	}
	r.Reset() // must not panic
	if !r.Snapshot().Empty() {
		t.Error("nil registry snapshot not empty")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(2.5)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %g, want 4", got)
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	resetGlobal(t)
	r := Enable()
	sp := Start("op.seconds")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	h := r.Histogram("op.seconds")
	if h.Count() != 1 {
		t.Fatalf("span recorded %d observations, want 1", h.Count())
	}
	if h.Max() < 1e-3 {
		t.Errorf("span duration %gs implausibly small", h.Max())
	}
}

func TestConcurrentCountersHistogramsSpans(t *testing.T) {
	resetGlobal(t)
	r := Enable()
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				Counter("conc.counter").Inc()
				Gauge("conc.gauge").Add(1)
				Histogram("conc.hist").Observe(float64(i%10) * 1e-4)
				sp := Start("conc.span.seconds")
				sp.End()
				if i%100 == 0 {
					_ = r.Snapshot() // readers race with writers
				}
			}
		}(g)
	}
	wg.Wait()
	want := int64(goroutines * perG)
	if got := r.Counter("conc.counter").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("conc.gauge").Value(); got != float64(want) {
		t.Errorf("gauge = %g, want %d", got, want)
	}
	if got := r.Histogram("conc.hist").Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if got := r.Histogram("conc.span.seconds").Count(); got != want {
		t.Errorf("span count = %d, want %d", got, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(42)
	r.Gauge("load").Set(0.75)
	r.Histogram("lat.seconds").Observe(0.003)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["reqs"] != 42 || back.Gauges["load"] != 0.75 {
		t.Errorf("round trip lost values: %+v", back)
	}
	h := back.Histograms["lat.seconds"]
	if h.Count != 1 || h.P50 != 0.003 {
		t.Errorf("histogram summary wrong: %+v", h)
	}
}

func TestSnapshotTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("oracle.calls").Add(9)
	r.Histogram("est.seconds").Observe(0.25)
	tab := r.Snapshot().Table()
	for _, want := range []string{"oracle.calls", "9", "est.seconds", "p95", "250.00ms"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	empty := NewRegistry().Snapshot()
	if got := empty.Table(); !strings.Contains(got, "no telemetry") {
		t.Errorf("empty table = %q", got)
	}
}

func TestFlagsRegisterActivateFinish(t *testing.T) {
	resetGlobal(t)
	dir := t.TempDir()
	dump := filepath.Join(dir, "snap.json")

	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-obs.table", "-obs.dump", dump}); err != nil {
		t.Fatal(err)
	}
	if !f.Enabled() {
		t.Fatal("flags should be enabled")
	}
	if _, err := f.Activate(); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("Activate did not enable telemetry")
	}
	Counter("flag.test").Add(1)

	var out bytes.Buffer
	if err := f.Finish(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flag.test") {
		t.Errorf("table output missing counter:\n%s", out.String())
	}
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["flag.test"] != 1 {
		t.Errorf("dump missing counter: %+v", snap)
	}
}

func TestFlagsNoOpWhenUnset(t *testing.T) {
	resetGlobal(t)
	var f Flags
	if f.Enabled() {
		t.Fatal("zero Flags should be disabled")
	}
	if _, err := f.Activate(); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Error("Activate enabled telemetry with no flags set")
	}
	if err := f.Finish(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	resetGlobal(t)
	Enable()
	Counter("debug.test").Add(5)
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]string{
		"/debug/obs":  "debug.test",
		"/debug/vars": "memstats",
	} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body missing %q", path, want)
		}
	}
}
