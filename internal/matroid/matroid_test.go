package matroid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniform(t *testing.T) {
	u, err := NewUniform(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 10 {
		t.Errorf("N = %d", u.N())
	}
	if !u.Independent([]int{}) || !u.Independent([]int{1, 2, 3}) {
		t.Error("small sets should be independent")
	}
	if u.Independent([]int{1, 2, 3, 4}) {
		t.Error("4 elements in U(10,3) should be dependent")
	}
	if u.Independent([]int{1, 1}) {
		t.Error("duplicate elements are not a set")
	}
	if u.Independent([]int{10}) {
		t.Error("out-of-range element")
	}
	if !u.CanAdd([]int{1, 2}, 3) || u.CanAdd([]int{1, 2, 3}, 4) {
		t.Error("CanAdd wrong")
	}
	if u.Conflicts([]int{1, 2}, 3) != nil {
		t.Error("no conflicts expected when addable")
	}
	if c := u.Conflicts([]int{1, 2, 3}, 4); len(c) != 1 {
		t.Errorf("conflicts = %v", c)
	}
}

func TestNewUniformErrors(t *testing.T) {
	if _, err := NewUniform(-1, 0); err == nil {
		t.Error("want error")
	}
	if _, err := NewUniform(3, -1); err == nil {
		t.Error("want error")
	}
}

func TestPartition(t *testing.T) {
	// Elements 0,1,2 in class 0 (cap 1); 3,4 in class 1 (cap 2).
	p, err := NewPartition([]int{0, 0, 0, 1, 1}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Independent([]int{0, 3, 4}) {
		t.Error("{0,3,4} should be independent")
	}
	if p.Independent([]int{0, 1}) {
		t.Error("two class-0 elements should be dependent")
	}
	if !p.CanAdd([]int{0}, 3) {
		t.Error("adding to unfilled class must work")
	}
	if p.CanAdd([]int{0}, 1) {
		t.Error("class 0 is full")
	}
	if c := p.Conflicts([]int{0, 3}, 1); len(c) != 1 || c[0] != 0 {
		t.Errorf("conflicts = %v, want [0]", c)
	}
	if p.ClassOf(4) != 1 {
		t.Error("ClassOf wrong")
	}
}

func TestNewPartitionErrors(t *testing.T) {
	if _, err := NewPartition([]int{0, 5}, []int{1}); err == nil {
		t.Error("want invalid-class error")
	}
	if _, err := NewPartition([]int{0}, []int{-1}); err == nil {
		t.Error("want negative-capacity error")
	}
}

func TestOnePerClass(t *testing.T) {
	// 2 sources × 3 versions: candidates 0-2 are source 0, 3-5 source 1.
	p, err := OnePerClass([]int{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Independent([]int{0, 4}) {
		t.Error("one version per source should be independent")
	}
	if p.Independent([]int{0, 1}) {
		t.Error("two versions of one source should be dependent")
	}
}

func TestAllIndependent(t *testing.T) {
	p, _ := OnePerClass([]int{0, 0, 1, 1})
	u, _ := NewUniform(4, 1)
	ms := []Matroid{p, u}
	if !AllIndependent(ms, []int{0}) {
		t.Error("singleton should be in the intersection")
	}
	if AllIndependent(ms, []int{0, 2}) {
		t.Error("{0,2} violates the uniform rank-1 constraint")
	}
}

// Property: downward closure — every subset of an independent set is
// independent (matroid axiom I2).
func TestQuickDownwardClosure(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(15)
		classOf := make([]int, n)
		nClasses := 1 + r.Intn(4)
		for i := range classOf {
			classOf[i] = r.Intn(nClasses)
		}
		capacity := make([]int, nClasses)
		for i := range capacity {
			capacity[i] = 1 + r.Intn(2)
		}
		p, err := NewPartition(classOf, capacity)
		if err != nil {
			return false
		}
		var set []int
		for x := 0; x < n; x++ {
			if r.Intn(2) == 0 && p.CanAdd(set, x) {
				set = append(set, x)
			}
		}
		if !p.Independent(set) {
			return false
		}
		// Remove a random element: still independent.
		if len(set) > 0 {
			i := r.Intn(len(set))
			sub := append(append([]int{}, set[:i]...), set[i+1:]...)
			if !p.Independent(sub) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: exchange axiom (I3) for partition matroids — if |A| < |B|, both
// independent, then some b ∈ B\A keeps A+b independent.
func TestQuickExchangeAxiom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(12)
		classOf := make([]int, n)
		nClasses := 1 + r.Intn(3)
		for i := range classOf {
			classOf[i] = r.Intn(nClasses)
		}
		capacity := make([]int, nClasses)
		for i := range capacity {
			capacity[i] = 1 + r.Intn(3)
		}
		p, err := NewPartition(classOf, capacity)
		if err != nil {
			return false
		}
		build := func() []int {
			var s []int
			for _, x := range r.Perm(n) {
				if r.Intn(2) == 0 && p.CanAdd(s, x) {
					s = append(s, x)
				}
			}
			return s
		}
		a, b := build(), build()
		if len(a) >= len(b) {
			return true // precondition unmet; vacuous
		}
		for _, x := range b {
			inA := false
			for _, y := range a {
				if x == y {
					inA = true
					break
				}
			}
			if !inA && p.CanAdd(a, x) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
