// Package matroid provides the independence systems used by the
// varying-frequency selection of Section 5 of the paper: uniform matroids
// and partition matroids over a ground set {0, …, n-1}.
//
// The paper encodes "pick at most one frequency version per source" as k
// rank-1 uniform matroid constraints, one per source, and notes that every
// uniform matroid is a partition matroid. A family of rank-1 uniform
// constraints over disjoint element classes is exactly one partition
// matroid, which is how this package represents it: the matroid local
// search then runs with k = 1 intersected matroid.
package matroid

import (
	"errors"
	"fmt"
)

// Matroid is an independence oracle over the ground set {0, …, N()-1}.
type Matroid interface {
	// N returns the ground-set size.
	N() int
	// Independent reports whether the set (a list of distinct elements) is
	// independent.
	Independent(set []int) bool
	// CanAdd reports whether set ∪ {x} is independent given that set is.
	CanAdd(set []int, x int) bool
	// Conflicts returns the elements of set that prevent adding x; removing
	// any superset of them (typically exactly them) makes x addable. It
	// returns nil when x is directly addable.
	Conflicts(set []int, x int) []int
}

// Uniform is the uniform matroid U(n, r): a set is independent iff it has
// at most r elements.
type Uniform struct {
	n, r int
}

// NewUniform builds U(n, r).
func NewUniform(n, r int) (*Uniform, error) {
	if n < 0 || r < 0 {
		return nil, errors.New("matroid: negative parameter")
	}
	return &Uniform{n: n, r: r}, nil
}

// N implements Matroid.
func (u *Uniform) N() int { return u.n }

// Independent implements Matroid.
func (u *Uniform) Independent(set []int) bool {
	if !validElements(set, u.n) {
		return false
	}
	return len(set) <= u.r
}

// CanAdd implements Matroid.
func (u *Uniform) CanAdd(set []int, x int) bool {
	return x >= 0 && x < u.n && len(set) < u.r
}

// Conflicts implements Matroid.
func (u *Uniform) Conflicts(set []int, x int) []int {
	if u.CanAdd(set, x) {
		return nil
	}
	if len(set) == 0 {
		return nil
	}
	// Any single element frees a slot; report the first.
	return []int{set[0]}
}

// Partition is a partition matroid: the ground set is partitioned into
// classes, each with a capacity; a set is independent iff it holds at most
// capacity-many elements of every class.
type Partition struct {
	classOf  []int
	capacity []int
}

// NewPartition builds a partition matroid. classOf[x] is the class of
// element x; capacity[c] bounds class c.
func NewPartition(classOf []int, capacity []int) (*Partition, error) {
	for x, c := range classOf {
		if c < 0 || c >= len(capacity) {
			return nil, fmt.Errorf("matroid: element %d has invalid class %d", x, c)
		}
	}
	for c, cap := range capacity {
		if cap < 0 {
			return nil, fmt.Errorf("matroid: class %d has negative capacity", c)
		}
	}
	return &Partition{classOf: classOf, capacity: capacity}, nil
}

// OnePerClass builds the matroid encoding the paper's frequency
// constraints: classOf[x] identifies the underlying source of candidate x,
// and each source contributes at most one frequency version.
func OnePerClass(classOf []int) (*Partition, error) {
	maxClass := -1
	for _, c := range classOf {
		if c > maxClass {
			maxClass = c
		}
	}
	capacity := make([]int, maxClass+1)
	for i := range capacity {
		capacity[i] = 1
	}
	return NewPartition(classOf, capacity)
}

// N implements Matroid.
func (p *Partition) N() int { return len(p.classOf) }

// Independent implements Matroid.
func (p *Partition) Independent(set []int) bool {
	if !validElements(set, len(p.classOf)) {
		return false
	}
	used := make(map[int]int)
	for _, x := range set {
		c := p.classOf[x]
		used[c]++
		if used[c] > p.capacity[c] {
			return false
		}
	}
	return true
}

// CanAdd implements Matroid.
func (p *Partition) CanAdd(set []int, x int) bool {
	if x < 0 || x >= len(p.classOf) {
		return false
	}
	c := p.classOf[x]
	used := 0
	for _, y := range set {
		if p.classOf[y] == c {
			used++
		}
	}
	return used < p.capacity[c]
}

// Conflicts implements Matroid.
func (p *Partition) Conflicts(set []int, x int) []int {
	if p.CanAdd(set, x) {
		return nil
	}
	c := p.classOf[x]
	var out []int
	for _, y := range set {
		if p.classOf[y] == c {
			out = append(out, y)
		}
	}
	if len(out) == 0 {
		return nil
	}
	// Removing one class member frees capacity for x.
	return out[:1]
}

// ClassOf returns the class of element x.
func (p *Partition) ClassOf(x int) int { return p.classOf[x] }

func validElements(set []int, n int) bool {
	seen := make(map[int]bool, len(set))
	for _, x := range set {
		if x < 0 || x >= n || seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

// AllIndependent reports whether the set is independent in every matroid —
// membership in the intersection ∩ I_j of Section 5.
func AllIndependent(ms []Matroid, set []int) bool {
	for _, m := range ms {
		if !m.Independent(set) {
			return false
		}
	}
	return true
}
