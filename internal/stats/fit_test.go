package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitPoisson(t *testing.T) {
	m, err := FitPoisson([]int{3, 5, 4, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lambda != 4 {
		t.Errorf("Lambda = %v, want 4", m.Lambda)
	}
	if m.N != 4 {
		t.Errorf("N = %d, want 4", m.N)
	}

	// Interval length scales the rate.
	m2, err := FitPoisson([]int{8, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Lambda != 4 {
		t.Errorf("Lambda = %v, want 4", m2.Lambda)
	}
}

func TestFitPoissonErrors(t *testing.T) {
	if _, err := FitPoisson(nil, 1); err == nil {
		t.Error("want error on empty input")
	}
	if _, err := FitPoisson([]int{1}, 0); err == nil {
		t.Error("want error on zero interval")
	}
	if _, err := FitPoisson([]int{-1}, 1); err == nil {
		t.Error("want error on negative count")
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	m := PoissonModel{Lambda: 7.5}
	var sum float64
	for k := 0; k < 100; k++ {
		p := m.PMF(k, 1)
		if p < 0 {
			t.Fatalf("negative PMF at %d", k)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %v", sum)
	}
	if m.PMF(-1, 1) != 0 {
		t.Error("PMF(-1) != 0")
	}
	if got := m.CDF(99, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(99) = %v", got)
	}
}

func TestPoissonRecoversRate(t *testing.T) {
	g := NewRNG(11)
	const lambda = 12.0
	counts := make([]int, 5000)
	for i := range counts {
		counts[i] = g.Poisson(lambda)
	}
	m, err := FitPoisson(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Lambda-lambda) > 0.3 {
		t.Errorf("fitted lambda = %v, want ≈ %v", m.Lambda, lambda)
	}
}

func TestFitExponentialExact(t *testing.T) {
	m, err := FitExponentialExact([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Rate-0.5) > 1e-12 {
		t.Errorf("Rate = %v, want 0.5", m.Rate)
	}
	if m.Mean() != 2 {
		t.Errorf("Mean = %v, want 2", m.Mean())
	}
}

func TestFitExponentialCensoredEq7(t *testing.T) {
	// Eq. 7: γ̂⁻¹ = total lifespan / #disappeared. Two exact (1, 3) and one
	// censored at 4: γ̂⁻¹ = 8/2 = 4.
	obs := []Duration{{Value: 1}, {Value: 3}, {Value: 4, Censored: true}}
	m, err := FitExponential(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Rate-0.25) > 1e-12 {
		t.Errorf("Rate = %v, want 0.25", m.Rate)
	}
	if m.Events != 2 || m.Censored != 1 {
		t.Errorf("Events/Censored = %d/%d", m.Events, m.Censored)
	}
}

func TestFitExponentialErrors(t *testing.T) {
	if _, err := FitExponential(nil); err == nil {
		t.Error("want error on empty input")
	}
	if _, err := FitExponential([]Duration{{Value: 1, Censored: true}}); err == nil {
		t.Error("want error when all observations censored")
	}
	if _, err := FitExponential([]Duration{{Value: -1}}); err == nil {
		t.Error("want error on negative duration")
	}
	if _, err := FitExponential([]Duration{{Value: 0}}); err == nil {
		t.Error("want error on zero total duration")
	}
}

func TestCensoredFitRecoversRate(t *testing.T) {
	// Generate exponential lifespans, censor everything above a horizon,
	// and verify the censored MLE still recovers the rate while the naive
	// exact-only fit is biased.
	g := NewRNG(13)
	const rate = 0.02
	const horizon = 60.0 // ≈ 70% of mass censored at mean 50
	var obs []Duration
	var naive []float64
	for i := 0; i < 40000; i++ {
		v := g.Exponential(rate)
		if v > horizon {
			obs = append(obs, Duration{Value: horizon, Censored: true})
		} else {
			obs = append(obs, Duration{Value: v})
			naive = append(naive, v)
		}
	}
	m, err := FitExponential(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Rate-rate) > 0.1*rate {
		t.Errorf("censored MLE rate = %v, want ≈ %v", m.Rate, rate)
	}
	nm, err := FitExponentialExact(naive)
	if err != nil {
		t.Fatal(err)
	}
	if nm.Rate < 1.5*rate {
		t.Errorf("naive fit should be badly biased upward, got %v vs true %v", nm.Rate, rate)
	}
}

func TestExponentialCDFSurvival(t *testing.T) {
	m := ExponentialModel{Rate: 2}
	if m.CDF(0) != 0 || m.CDF(-1) != 0 {
		t.Error("CDF at non-positive x must be 0")
	}
	if m.Survival(0) != 1 {
		t.Error("Survival(0) must be 1")
	}
	f := func(x float64) bool {
		x = math.Abs(x)
		if math.IsInf(x, 0) || math.IsNaN(x) {
			return true
		}
		s := m.CDF(x) + m.Survival(x)
		return math.Abs(s-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
