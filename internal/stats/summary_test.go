package stats

import (
	"math"
	"testing"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7)
	}
	if StdDev(xs) != math.Sqrt(32.0/7) {
		t.Error("StdDev mismatch")
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("want error on empty input")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("want error on q out of range")
	}
	if got, _ := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 2}
	if Max(xs) != 3 || Min(xs) != -1 || Sum(xs) != 4 {
		t.Error("Min/Max/Sum mismatch")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("empty Min/Max should be infinities")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v", got)
	}
	if got := RelativeError(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v", got)
	}
	if got := RelativeError(5, 0); got != 5 {
		t.Errorf("RelativeError with zero actual = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.9, 1.5, 2.5, 3.5, -1, 10}
	h, err := NewHistogram(xs, 0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Bins: [0,1): 0.1, 0.9, -1(clamped) = 3; [1,2): 1.5; [2,3): 2.5; [3,4): 3.5, 10(clamped).
	want := []int{3, 1, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.N != len(xs) {
		t.Errorf("N = %d", h.N)
	}
	if math.Abs(h.Density(0)-3.0/7) > 1e-12 {
		t.Errorf("Density(0) = %v", h.Density(0))
	}
	if h.BinCenter(1) != 1.5 {
		t.Errorf("BinCenter(1) = %v", h.BinCenter(1))
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("want error on zero bins")
	}
	if _, err := NewHistogram(nil, 1, 1, 3); err == nil {
		t.Error("want error on hi <= lo")
	}
}
