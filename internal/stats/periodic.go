package stats

import (
	"errors"
)

// PeriodicPoissonModel is a nonhomogeneous Poisson model with a
// piecewise-constant, periodic intensity: one rate per phase of a fixed
// period (e.g. 7 phases for weekly seasonality in daily counts). It
// captures the "complex update patterns" of real sources and domains that
// a single homogeneous rate misses.
type PeriodicPoissonModel struct {
	Period int
	// Rates[p] is the intensity at phase p (ticks t with t % Period == p).
	Rates []float64
	// Mean is the phase-averaged intensity (equals the homogeneous MLE).
	Mean float64
	// N is the number of observed intervals.
	N int
}

// FitPeriodicPoisson fits per-phase intensities to consecutive per-tick
// counts, where counts[i] is the count at tick startTick+i.
func FitPeriodicPoisson(counts []int, startTick int, period int) (PeriodicPoissonModel, error) {
	if period <= 0 {
		return PeriodicPoissonModel{}, errors.New("stats: period must be positive")
	}
	if len(counts) < period {
		return PeriodicPoissonModel{}, errors.New("stats: need at least one full period of counts")
	}
	sums := make([]float64, period)
	nums := make([]int, period)
	var total float64
	for i, c := range counts {
		if c < 0 {
			return PeriodicPoissonModel{}, errors.New("stats: negative count")
		}
		p := (startTick + i) % period
		if p < 0 {
			p += period
		}
		sums[p] += float64(c)
		nums[p]++
		total += float64(c)
	}
	m := PeriodicPoissonModel{Period: period, Rates: make([]float64, period), N: len(counts)}
	for p := range m.Rates {
		if nums[p] > 0 {
			m.Rates[p] = sums[p] / float64(nums[p])
		}
	}
	m.Mean = total / float64(len(counts))
	return m, nil
}

// RateAt returns the intensity at the given tick.
func (m PeriodicPoissonModel) RateAt(tick int) float64 {
	p := tick % m.Period
	if p < 0 {
		p += m.Period
	}
	return m.Rates[p]
}

// SeasonalityTest checks whether the per-phase rates differ significantly
// from a homogeneous rate, via a chi-square test of the per-phase totals
// against equal expectation. A small p-value means real seasonality.
func SeasonalityTest(counts []int, startTick, period int) (ChiSquareResult, error) {
	if period <= 1 {
		return ChiSquareResult{}, errors.New("stats: period must exceed 1")
	}
	if len(counts) < 2*period {
		return ChiSquareResult{}, errors.New("stats: need at least two full periods")
	}
	obs := make([]float64, period)
	nums := make([]float64, period)
	var total float64
	for i, c := range counts {
		p := (startTick + i) % period
		if p < 0 {
			p += period
		}
		obs[p] += float64(c)
		nums[p]++
		total += float64(c)
	}
	exp := make([]float64, period)
	n := float64(len(counts))
	for p := range exp {
		exp[p] = total * nums[p] / n
	}
	return ChiSquareTest(obs, exp, 0, 5)
}
