package stats

import (
	"math"
	"testing"
)

func TestFitPeriodicPoisson(t *testing.T) {
	// Deterministic counts: phase 0 always 10, phase 1 always 2.
	counts := []int{10, 2, 10, 2, 10, 2, 10, 2}
	m, err := FitPeriodicPoisson(counts, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rates[0] != 10 || m.Rates[1] != 2 {
		t.Errorf("rates = %v", m.Rates)
	}
	if m.Mean != 6 {
		t.Errorf("mean = %v", m.Mean)
	}
	if m.RateAt(0) != 10 || m.RateAt(3) != 2 || m.RateAt(-1) != 2 {
		t.Error("RateAt phase arithmetic wrong")
	}
	// Start tick offsets the phase assignment.
	m2, err := FitPeriodicPoisson(counts, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Rates[1] != 10 || m2.Rates[0] != 2 {
		t.Errorf("offset rates = %v", m2.Rates)
	}
}

func TestFitPeriodicPoissonErrors(t *testing.T) {
	if _, err := FitPeriodicPoisson([]int{1, 2}, 0, 0); err == nil {
		t.Error("want error for period 0")
	}
	if _, err := FitPeriodicPoisson([]int{1}, 0, 2); err == nil {
		t.Error("want error for short input")
	}
	if _, err := FitPeriodicPoisson([]int{1, -1}, 0, 2); err == nil {
		t.Error("want error for negative count")
	}
}

func TestFitPeriodicRecoversSine(t *testing.T) {
	g := NewRNG(83)
	const base, amp = 20.0, 0.5
	const period = 7
	counts := make([]int, 70*period)
	for i := range counts {
		rate := base * (1 + amp*math.Sin(2*math.Pi*float64(i)/period))
		counts[i] = g.Poisson(rate)
	}
	m, err := FitPeriodicPoisson(counts, 0, period)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < period; p++ {
		want := base * (1 + amp*math.Sin(2*math.Pi*float64(p)/period))
		if math.Abs(m.Rates[p]-want) > 0.15*base {
			t.Errorf("phase %d rate %v, want ≈ %v", p, m.Rates[p], want)
		}
	}
}

func TestSeasonalityTestDetects(t *testing.T) {
	g := NewRNG(89)
	const period = 7
	seasonal := make([]int, 40*period)
	flat := make([]int, 40*period)
	for i := range seasonal {
		rate := 15 * (1 + 0.6*math.Sin(2*math.Pi*float64(i)/period))
		seasonal[i] = g.Poisson(rate)
		flat[i] = g.Poisson(15)
	}
	rs, err := SeasonalityTest(seasonal, 0, period)
	if err != nil {
		t.Fatal(err)
	}
	if rs.PValue > 1e-6 {
		t.Errorf("seasonality not detected: p = %v", rs.PValue)
	}
	rf, err := SeasonalityTest(flat, 0, period)
	if err != nil {
		t.Fatal(err)
	}
	if rf.PValue < 0.01 {
		t.Errorf("false seasonality on flat data: p = %v", rf.PValue)
	}
}

func TestSeasonalityTestErrors(t *testing.T) {
	if _, err := SeasonalityTest([]int{1, 2, 3}, 0, 1); err == nil {
		t.Error("want error for period 1")
	}
	if _, err := SeasonalityTest([]int{1, 2, 3}, 0, 7); err == nil {
		t.Error("want error for short input")
	}
}
