package stats

import (
	"errors"
	"math"
	"sort"
)

// This file extends the survival-analysis toolkit beyond the Kaplan–Meier
// point estimate: the Nelson–Aalen cumulative-hazard estimator (a common
// alternative with better small-sample behaviour in the tail) and
// Greenwood's variance formula with log-transformed pointwise confidence
// bands for the KM estimator. The bands quantify how much to trust a
// source's learned effectiveness distribution — thin-history sources get
// wide bands, which is what motivates the cold-start shrinkage in package
// estimate.

// NelsonAalen is the cumulative-hazard estimator Ĥ(t) = Σ_{t_i ≤ t} d_i/n_i
// with the derived survival estimate S̃(t) = exp(−Ĥ(t)).
type NelsonAalen struct {
	times  []float64
	hazard []float64 // cumulative hazard at and after times[i]
	n      int
}

// NewNelsonAalen builds the estimator from censored durations.
func NewNelsonAalen(obs []Duration) (*NelsonAalen, error) {
	if len(obs) == 0 {
		return nil, errors.New("stats: NelsonAalen with no observations")
	}
	sorted := make([]Duration, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Value != sorted[j].Value {
			return sorted[i].Value < sorted[j].Value
		}
		return !sorted[i].Censored && sorted[j].Censored
	})
	na := &NelsonAalen{n: len(obs)}
	atRisk := len(sorted)
	cum := 0.0
	i := 0
	for i < len(sorted) {
		t := sorted[i].Value
		deaths, censored := 0, 0
		for i < len(sorted) && sorted[i].Value == t {
			if sorted[i].Censored {
				censored++
			} else {
				deaths++
			}
			i++
		}
		if deaths > 0 {
			cum += float64(deaths) / float64(atRisk)
			na.times = append(na.times, t)
			na.hazard = append(na.hazard, cum)
		}
		atRisk -= deaths + censored
	}
	return na, nil
}

// CumulativeHazard returns Ĥ(tau).
func (na *NelsonAalen) CumulativeHazard(tau float64) float64 {
	i := sort.SearchFloat64s(na.times, tau)
	if i < len(na.times) && na.times[i] == tau {
		return na.hazard[i]
	}
	if i == 0 {
		return 0
	}
	return na.hazard[i-1]
}

// Survival returns the Fleming–Harrington survival estimate exp(−Ĥ(tau)).
func (na *NelsonAalen) Survival(tau float64) float64 {
	return math.Exp(-na.CumulativeHazard(tau))
}

// CDF returns 1 − Survival(tau).
func (na *NelsonAalen) CDF(tau float64) float64 { return 1 - na.Survival(tau) }

// N returns the number of observations.
func (na *NelsonAalen) N() int { return na.n }

// KMConfidence augments a Kaplan–Meier estimator with Greenwood variances
// and log-transformed pointwise confidence bands.
type KMConfidence struct {
	km *KaplanMeier
	// varFactor holds Greenwood's Σ d_i/(n_i(n_i−d_i)) at each KM step.
	varFactor []float64
	z         float64
}

// NewKMConfidence computes Greenwood factors for the observations at the
// given confidence level (e.g. 0.95).
func NewKMConfidence(obs []Duration, level float64) (*KMConfidence, error) {
	if level <= 0 || level >= 1 {
		return nil, errors.New("stats: confidence level outside (0,1)")
	}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		return nil, err
	}
	sorted := make([]Duration, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Value != sorted[j].Value {
			return sorted[i].Value < sorted[j].Value
		}
		return !sorted[i].Censored && sorted[j].Censored
	})
	kc := &KMConfidence{km: km, z: normalQuantile((1 + level) / 2)}
	atRisk := len(sorted)
	cum := 0.0
	i := 0
	for i < len(sorted) {
		t := sorted[i].Value
		deaths, censored := 0, 0
		for i < len(sorted) && sorted[i].Value == t {
			if sorted[i].Censored {
				censored++
			} else {
				deaths++
			}
			i++
		}
		if deaths > 0 {
			if atRisk > deaths {
				cum += float64(deaths) / (float64(atRisk) * float64(atRisk-deaths))
			}
			kc.varFactor = append(kc.varFactor, cum)
		}
		atRisk -= deaths + censored
	}
	return kc, nil
}

// KM returns the underlying point estimator.
func (kc *KMConfidence) KM() *KaplanMeier { return kc.km }

// Band returns the lower and upper confidence bounds of the CDF at tau,
// using the log(−log) transform which keeps bounds inside [0, 1].
func (kc *KMConfidence) Band(tau float64) (lo, hi float64) {
	i := sort.SearchFloat64s(kc.km.times, tau)
	if i < len(kc.km.times) && kc.km.times[i] == tau {
		i++
	}
	if i == 0 {
		return 0, 0
	}
	step := i - 1
	s := 1 - kc.km.cdf[step] // survival point estimate
	if s <= 0 {
		return kc.km.cdf[step], kc.km.cdf[step]
	}
	if s >= 1 {
		return 0, 0
	}
	v := kc.varFactor[step]
	// Var[log(−log S)] ≈ v / (log S)².
	logS := math.Log(s)
	se := math.Sqrt(v) / math.Abs(logS)
	theta := math.Exp(kc.z * se)
	sLo := math.Pow(s, theta)   // lower survival → upper CDF
	sHi := math.Pow(s, 1/theta) // upper survival → lower CDF
	return clampUnit(1 - sHi), clampUnit(1 - sLo)
}

func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// normalQuantile computes the standard normal quantile via the
// Beasley–Springer–Moro rational approximation (|error| < 3e-9), enough
// for confidence bands.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
