package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs; it returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance; it returns 0 for inputs
// with fewer than two values.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Max returns the maximum of xs; it returns -Inf for empty input.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs; it returns +Inf for empty input.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// RelativeError returns |predicted − actual| / |actual|. When actual is
// zero it returns |predicted| (the absolute error), which keeps prediction
// error series well-defined on sparse domains.
func RelativeError(predicted, actual float64) float64 {
	if actual == 0 {
		return math.Abs(predicted)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// Histogram is a fixed-width binned count of observations, used for the
// delay histograms of Figure 7 and the fit plots of Figures 5–6.
type Histogram struct {
	Lo, Hi float64
	Width  float64
	Counts []int
	N      int
}

// NewHistogram builds a histogram of xs over [lo, hi) with the given number
// of equal-width bins. Values outside the range are clamped into the first
// or last bin so the histogram always accounts for every observation.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		return nil, errors.New("stats: histogram needs hi > lo")
	}
	h := &Histogram{Lo: lo, Hi: hi, Width: (hi - lo) / float64(bins), Counts: make([]int, bins)}
	for _, x := range xs {
		i := int((x - lo) / h.Width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.N++
	}
	return h, nil
}

// Density returns the normalized height of bin i (fraction of mass).
func (h *Histogram) Density(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}
