package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	g := NewRNG(7)
	f1 := g.Fork()
	f2 := g.Fork()
	// Forks must differ from each other.
	same := true
	for i := 0; i < 10; i++ {
		if f1.Float64() != f2.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("forked streams are identical")
	}
}

func TestExponentialMoments(t *testing.T) {
	g := NewRNG(1)
	const rate = 0.25
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := g.Exponential(rate)
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.05*(1/rate) {
		t.Errorf("exponential mean = %v, want ≈ %v", mean, 1/rate)
	}
}

func TestExponentialBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on rate <= 0")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestPoissonMoments(t *testing.T) {
	g := NewRNG(2)
	for _, mean := range []float64{0, 0.5, 3, 29.9, 30, 100, 450} {
		const n = 20000
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := float64(g.Poisson(mean))
			sum += v
			sq += v * v
		}
		m := sum / n
		variance := sq/n - m*m
		tol := 0.06*mean + 0.05
		if math.Abs(m-mean) > tol {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if mean > 0 && math.Abs(variance-mean) > 0.15*mean+0.1 {
			t.Errorf("Poisson(%v) variance = %v", mean, variance)
		}
	}
}

func TestPoissonNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative mean")
		}
	}()
	NewRNG(1).Poisson(-1)
}

func TestBernoulli(t *testing.T) {
	g := NewRNG(3)
	if g.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !g.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", p)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(4)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
		k := g.UniformInt(3, 7)
		if k < 3 || k > 7 {
			t.Fatalf("UniformInt out of range: %d", k)
		}
	}
}

func TestZipfShape(t *testing.T) {
	g := NewRNG(5)
	const n = 50
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		counts[g.Zipf(n, 1.2)]++
	}
	// Rank 0 must dominate, and counts must (roughly) decrease.
	if counts[0] <= counts[10] {
		t.Errorf("Zipf rank 0 (%d) not dominant over rank 10 (%d)", counts[0], counts[10])
	}
	if counts[1] <= counts[30] {
		t.Errorf("Zipf not heavy-headed: rank1=%d rank30=%d", counts[1], counts[30])
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(6)
	s := g.SampleWithoutReplacement(10, 5)
	if len(s) != 5 {
		t.Fatalf("sample len = %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 {
			t.Fatalf("sample value out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample value: %d", v)
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic when k > n")
		}
	}()
	g.SampleWithoutReplacement(3, 4)
}

func TestLogNormalPositive(t *testing.T) {
	g := NewRNG(8)
	for i := 0; i < 1000; i++ {
		if g.LogNormal(0, 1) <= 0 {
			t.Fatal("LogNormal must be positive")
		}
	}
}
