package stats

import (
	"errors"
	"math"
	"sort"
)

// This file implements the goodness-of-fit machinery used to verify the
// paper's modeling assumptions (Figures 5 and 6): a chi-square test for the
// Poisson fits and a Kolmogorov–Smirnov test for the exponential fits,
// together with the special functions they need (regularized incomplete
// gamma for the chi-square CDF).

// ChiSquareResult reports a chi-square goodness-of-fit test.
type ChiSquareResult struct {
	Statistic float64
	DF        int
	PValue    float64
}

// ChiSquareTest compares observed bin counts against expected bin counts.
// Bins with expected count below minExpected are pooled into their
// neighbour, following standard practice (use 5 when unsure). fittedParams
// is the number of parameters estimated from the data (reduces the degrees
// of freedom).
func ChiSquareTest(observed []float64, expected []float64, fittedParams int, minExpected float64) (ChiSquareResult, error) {
	if len(observed) != len(expected) {
		return ChiSquareResult{}, errors.New("stats: observed/expected length mismatch")
	}
	if len(observed) == 0 {
		return ChiSquareResult{}, errors.New("stats: empty chi-square input")
	}
	// Pool small-expectation bins left to right.
	var obs, exp []float64
	var accO, accE float64
	for i := range observed {
		accO += observed[i]
		accE += expected[i]
		if accE >= minExpected {
			obs = append(obs, accO)
			exp = append(exp, accE)
			accO, accE = 0, 0
		}
	}
	if accE > 0 || accO > 0 {
		if len(exp) == 0 {
			obs = append(obs, accO)
			exp = append(exp, accE)
		} else {
			obs[len(obs)-1] += accO
			exp[len(exp)-1] += accE
		}
	}
	df := len(obs) - 1 - fittedParams
	if df < 1 {
		return ChiSquareResult{}, errors.New("stats: not enough bins for chi-square test")
	}
	var stat float64
	for i := range obs {
		if exp[i] <= 0 {
			continue
		}
		d := obs[i] - exp[i]
		stat += d * d / exp[i]
	}
	return ChiSquareResult{Statistic: stat, DF: df, PValue: ChiSquareSurvival(stat, df)}, nil
}

// ChiSquareSurvival returns P[X ≥ x] for a chi-square variable with df
// degrees of freedom.
func ChiSquareSurvival(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - RegularizedGammaP(float64(df)/2, x/2)
}

// RegularizedGammaP computes the regularized lower incomplete gamma
// function P(a, x) using the series expansion for x < a+1 and the continued
// fraction for x ≥ a+1 (Numerical Recipes style, with Lentz's algorithm).
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KSResult reports a one-sample Kolmogorov–Smirnov test.
type KSResult struct {
	Statistic float64 // sup-norm distance between empirical and model CDF
	PValue    float64 // asymptotic p-value
	N         int
}

// KSTest performs a one-sample KS test of the data against the model CDF.
func KSTest(data []float64, cdf func(float64) float64) (KSResult, error) {
	n := len(data)
	if n == 0 {
		return KSResult{}, errors.New("stats: KS test with no data")
	}
	sorted := make([]float64, n)
	copy(sorted, data)
	sort.Float64s(sorted)
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return KSResult{Statistic: d, PValue: ksPValue(d, n), N: n}, nil
}

// ksPValue returns the asymptotic Kolmogorov p-value Q(√n·d) with the
// standard small-sample correction.
func ksPValue(d float64, n int) float64 {
	sn := math.Sqrt(float64(n))
	lambda := (sn + 0.12 + 0.11/sn) * d
	return kolmogorovQ(lambda)
}

func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*lambda*lambda*float64(j)*float64(j))
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
