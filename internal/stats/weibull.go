package stats

import (
	"errors"
	"math"
)

// WeibullModel is a fitted Weibull distribution for durations:
// P[T ≤ x] = 1 − exp(−(x/Scale)^Shape). Shape = 1 reduces to the
// exponential distribution, so fitting a Weibull and inspecting the shape
// parameter is the natural test of the paper's exponential-lifespan
// assumption (Section 4.1.1): shape ≈ 1 supports it, shape < 1 indicates
// infant mortality, shape > 1 aging.
type WeibullModel struct {
	Shape float64 // k
	Scale float64 // λ
	// Events and Censored count the observations used.
	Events   int
	Censored int
	// LogLik is the maximized log-likelihood (for AIC comparisons).
	LogLik float64
}

// FitWeibull computes the maximum-likelihood Weibull parameters from exact
// and right-censored durations, via Newton iteration on the profile
// likelihood of the shape parameter. Zero durations are clamped to a small
// positive value (they carry no shape information in log space).
func FitWeibull(obs []Duration) (WeibullModel, error) {
	var xs []float64  // all durations
	var del []float64 // 1 for events, 0 for censored
	events := 0
	for _, o := range obs {
		v := o.Value
		if v < 0 {
			return WeibullModel{}, errors.New("stats: negative duration")
		}
		if v == 0 {
			v = 1e-9
		}
		xs = append(xs, v)
		if o.Censored {
			del = append(del, 0)
		} else {
			del = append(del, 1)
			events++
		}
	}
	if len(xs) == 0 {
		return WeibullModel{}, errors.New("stats: FitWeibull with no observations")
	}
	if events == 0 {
		return WeibullModel{}, errors.New("stats: FitWeibull requires at least one uncensored event")
	}

	// Profile likelihood: for fixed shape k the MLE scale is
	// λ^k = Σ x_i^k / d (d = number of events). The score equation for k is
	//   d/k + Σ δ_i ln x_i − d·(Σ x_i^k ln x_i)/(Σ x_i^k) = 0.
	d := float64(events)
	var sumLnEvents float64
	for i, x := range xs {
		if del[i] == 1 {
			sumLnEvents += math.Log(x)
		}
	}
	score := func(k float64) float64 {
		var sxk, sxkln float64
		for _, x := range xs {
			xk := math.Pow(x, k)
			sxk += xk
			sxkln += xk * math.Log(x)
		}
		return d/k + sumLnEvents - d*sxkln/sxk
	}

	// Bracket the root: score is decreasing in k.
	lo, hi := 1e-3, 1.0
	for score(hi) > 0 && hi < 1e3 {
		hi *= 2
	}
	if score(hi) > 0 {
		return WeibullModel{}, errors.New("stats: Weibull shape did not converge")
	}
	// Bisection — robust on censored data where Newton can overshoot.
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if score(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*hi {
			break
		}
	}
	k := (lo + hi) / 2

	var sxk float64
	for _, x := range xs {
		sxk += math.Pow(x, k)
	}
	scale := math.Pow(sxk/d, 1/k)

	m := WeibullModel{Shape: k, Scale: scale, Events: events, Censored: len(xs) - events}
	m.LogLik = weibullLogLik(xs, del, k, scale)
	return m, nil
}

func weibullLogLik(xs, del []float64, k, scale float64) float64 {
	var ll float64
	for i, x := range xs {
		z := x / scale
		zk := math.Pow(z, k)
		if del[i] == 1 {
			ll += math.Log(k/scale) + (k-1)*math.Log(z) - zk
		} else {
			ll += -zk
		}
	}
	return ll
}

// CDF returns P[T ≤ x].
func (m WeibullModel) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/m.Scale, m.Shape))
}

// Survival returns P[T > x].
func (m WeibullModel) Survival(x float64) float64 { return 1 - m.CDF(x) }

// Mean returns E[T] = λ·Γ(1 + 1/k).
func (m WeibullModel) Mean() float64 {
	return m.Scale * math.Gamma(1+1/m.Shape)
}

// AIC returns Akaike's information criterion (2 parameters).
func (m WeibullModel) AIC() float64 { return 2*2 - 2*m.LogLik }

// ExponentialLogLik computes the censored-data log-likelihood of an
// exponential model, for AIC comparison against a Weibull fit.
func ExponentialLogLik(obs []Duration, m ExponentialModel) float64 {
	var ll float64
	for _, o := range obs {
		if o.Censored {
			ll += -m.Rate * o.Value
		} else {
			ll += math.Log(m.Rate) - m.Rate*o.Value
		}
	}
	return ll
}

// LifespanModelChoice compares the exponential and Weibull fits of the same
// censored durations by AIC — the model-validation step behind the paper's
// assumption that lifespans are exponential.
type LifespanModelChoice struct {
	Exponential ExponentialModel
	Weibull     WeibullModel
	ExpAIC      float64
	WeibullAIC  float64
	// PreferWeibull is true when the Weibull fit is decisively better
	// (AIC lower by more than 2).
	PreferWeibull bool
}

// ChooseLifespanModel fits both models and compares them.
func ChooseLifespanModel(obs []Duration) (LifespanModelChoice, error) {
	em, err := FitExponential(obs)
	if err != nil {
		return LifespanModelChoice{}, err
	}
	wm, err := FitWeibull(obs)
	if err != nil {
		return LifespanModelChoice{}, err
	}
	c := LifespanModelChoice{Exponential: em, Weibull: wm}
	c.ExpAIC = 2*1 - 2*ExponentialLogLik(obs, em)
	c.WeibullAIC = wm.AIC()
	c.PreferWeibull = c.WeibullAIC < c.ExpAIC-2
	return c, nil
}
