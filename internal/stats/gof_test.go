package stats

import (
	"math"
	"testing"
)

func TestRegularizedGammaP(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("P(1, %v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(√x).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := RegularizedGammaP(0.5, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("P(0.5, %v) = %v, want %v", x, got, want)
		}
	}
	if got := RegularizedGammaP(2, 0); got != 0 {
		t.Errorf("P(a, 0) = %v", got)
	}
	if !math.IsNaN(RegularizedGammaP(-1, 1)) {
		t.Error("P(-1, 1) should be NaN")
	}
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Critical value: P[χ²₁ ≥ 3.841] ≈ 0.05.
	if got := ChiSquareSurvival(3.841, 1); math.Abs(got-0.05) > 0.001 {
		t.Errorf("survival(3.841, 1) = %v", got)
	}
	// P[χ²₅ ≥ 11.070] ≈ 0.05.
	if got := ChiSquareSurvival(11.070, 5); math.Abs(got-0.05) > 0.001 {
		t.Errorf("survival(11.070, 5) = %v", got)
	}
	if got := ChiSquareSurvival(-1, 3); got != 1 {
		t.Errorf("survival of negative statistic = %v", got)
	}
}

func TestChiSquareTestGoodFit(t *testing.T) {
	// Sample from a Poisson, test against the fitted Poisson: should not
	// reject at the 1% level.
	g := NewRNG(23)
	const lambda = 6.0
	const n = 5000
	counts := make([]int, n)
	maxK := 0
	for i := range counts {
		counts[i] = g.Poisson(lambda)
		if counts[i] > maxK {
			maxK = counts[i]
		}
	}
	m, err := FitPoisson(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]float64, maxK+1)
	exp := make([]float64, maxK+1)
	for _, c := range counts {
		obs[c]++
	}
	for k := 0; k <= maxK; k++ {
		exp[k] = m.PMF(k, 1) * n
	}
	res, err := ChiSquareTest(obs, exp, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Errorf("good Poisson fit rejected: p = %v (stat %v, df %d)", res.PValue, res.Statistic, res.DF)
	}
}

func TestChiSquareTestBadFit(t *testing.T) {
	// Uniform counts tested against a Poisson must be rejected.
	obs := []float64{100, 100, 100, 100, 100, 100, 100, 100}
	m := PoissonModel{Lambda: 2}
	exp := make([]float64, len(obs))
	for k := range exp {
		exp[k] = m.PMF(k, 1) * 800
	}
	res, err := ChiSquareTest(obs, exp, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("bad fit not rejected: p = %v", res.PValue)
	}
}

func TestChiSquareTestErrors(t *testing.T) {
	if _, err := ChiSquareTest([]float64{1}, []float64{1, 2}, 0, 5); err == nil {
		t.Error("want length-mismatch error")
	}
	if _, err := ChiSquareTest(nil, nil, 0, 5); err == nil {
		t.Error("want empty-input error")
	}
	if _, err := ChiSquareTest([]float64{5}, []float64{5}, 0, 5); err == nil {
		t.Error("want insufficient-df error")
	}
}

func TestKSTestGoodFit(t *testing.T) {
	g := NewRNG(29)
	const rate = 0.5
	data := make([]float64, 2000)
	for i := range data {
		data[i] = g.Exponential(rate)
	}
	m := ExponentialModel{Rate: rate}
	res, err := KSTest(data, m.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Errorf("good exponential fit rejected: p = %v (D = %v)", res.PValue, res.Statistic)
	}
}

func TestKSTestBadFit(t *testing.T) {
	g := NewRNG(31)
	data := make([]float64, 2000)
	for i := range data {
		data[i] = g.Uniform(0, 1)
	}
	m := ExponentialModel{Rate: 3}
	res, err := KSTest(data, m.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-4 {
		t.Errorf("bad fit not rejected: p = %v", res.PValue)
	}
}

func TestKSTestEmpty(t *testing.T) {
	if _, err := KSTest(nil, func(float64) float64 { return 0 }); err == nil {
		t.Error("want error on empty data")
	}
}

func TestKolmogorovQBounds(t *testing.T) {
	if kolmogorovQ(0) != 1 {
		t.Error("Q(0) != 1")
	}
	if q := kolmogorovQ(10); q > 1e-80 {
		t.Errorf("Q(10) = %v, want ≈ 0", q)
	}
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := kolmogorovQ(l)
		if q < 0 || q > 1 || q > prev+1e-12 {
			t.Fatalf("Q not a valid decreasing tail at %v: %v", l, q)
		}
		prev = q
	}
}
