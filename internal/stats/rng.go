// Package stats supplies the numeric and statistical substrate the paper
// depends on and that the Go standard library lacks: random-variate
// generation for the world simulator (Poisson processes, exponential
// lifespans, heavy-tailed source sizes), maximum-likelihood fitting with
// right-censored observations (Eq. 7 of the paper), the Kaplan–Meier
// product-limit estimator used for source effectiveness distributions
// (Section 4.1.2), histograms, and goodness-of-fit tests (chi-square and
// Kolmogorov–Smirnov) used to verify the modeling assumptions (Figures 5
// and 6).
//
// Everything is deterministic given a seed, so every experiment in the
// repository is reproducible bit-for-bit.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random-variate generator. It wraps math/rand with
// the distribution samplers the simulators need.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork returns a new independent generator derived from this one. Forking
// lets each subdomain or source own a private stream so that changing the
// number of draws in one component does not perturb the others.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Exponential returns a variate from the exponential distribution with the
// given rate (mean 1/rate). This is the lifespan and update-interval model
// of Section 4.1.1.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential requires rate > 0")
	}
	return g.r.ExpFloat64() / rate
}

// maxChunk bounds the intensity handled by a single run of Knuth's Poisson
// sampler; exp(-30) is comfortably above the smallest normal float64.
const maxChunk = 30.0

// Poisson returns a variate from the Poisson distribution with the given
// mean. For large means the additivity of the Poisson distribution is used:
// the mean is split into chunks small enough for Knuth's product method to
// avoid underflow, which keeps the sampler exact for every mean.
func (g *RNG) Poisson(mean float64) int {
	if mean < 0 {
		panic("stats: Poisson requires mean >= 0")
	}
	total := 0
	for mean > maxChunk {
		total += g.poissonKnuth(maxChunk)
		mean -= maxChunk
	}
	return total + g.poissonKnuth(mean)
}

func (g *RNG) poissonKnuth(mean float64) int {
	if mean == 0 {
		return 0
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Uniform returns a uniform variate in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// UniformInt returns a uniform integer in [lo, hi] inclusive.
func (g *RNG) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("stats: UniformInt requires hi >= lo")
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Zipf returns a variate in {0, …, n-1} following a Zipf law with exponent
// s > 0 (rank 0 is the most probable). It is used to generate the
// heavy-tailed source-size distributions observed in GDELT.
func (g *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("stats: Zipf requires n > 0")
	}
	// Inverse-CDF over the normalized rank weights. n is small (hundreds)
	// in all our uses, so the linear scan is fine and exact.
	var total float64
	for i := 1; i <= n; i++ {
		total += math.Pow(float64(i), -s)
	}
	u := g.r.Float64() * total
	var cum float64
	for i := 1; i <= n; i++ {
		cum += math.Pow(float64(i), -s)
		if u <= cum {
			return i - 1
		}
	}
	return n - 1
}

// LogNormal returns a variate whose logarithm is normal with the given
// parameters. Used for source report-delay models with occasional long
// tails.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Normal returns a normal variate.
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct integers drawn uniformly from
// [0, n). It panics if k > n.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("stats: sample size exceeds population")
	}
	p := g.r.Perm(n)
	return p[:k]
}
