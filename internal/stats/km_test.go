package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKMNoCensoring(t *testing.T) {
	// Without censoring, KM is the empirical CDF.
	obs := []Duration{{Value: 1}, {Value: 2}, {Value: 3}, {Value: 4}}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		tau  float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {3.9, 0.75}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := km.CDF(c.tau); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDF(%v) = %v, want %v", c.tau, got, c.want)
		}
	}
	if km.Plateau() != 1 {
		t.Errorf("Plateau = %v, want 1", km.Plateau())
	}
}

func TestKMTextbookExample(t *testing.T) {
	// Classic example: events at 1, 3; censored at 2, 4.
	// S(1) = 1 - 1/4 = 0.75. At t=3 at-risk = 2, S(3) = 0.75 * (1 - 1/2) = 0.375.
	obs := []Duration{{Value: 1}, {Value: 2, Censored: true}, {Value: 3}, {Value: 4, Censored: true}}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	if got := km.Survival(1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("S(1) = %v, want 0.75", got)
	}
	if got := km.Survival(2.5); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("S(2.5) = %v, want 0.75", got)
	}
	if got := km.Survival(3); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("S(3) = %v, want 0.375", got)
	}
	// Plateau below 1 because the last observation is censored.
	if p := km.Plateau(); math.Abs(p-0.625) > 1e-12 {
		t.Errorf("Plateau = %v, want 0.625", p)
	}
}

func TestKMAllCensored(t *testing.T) {
	km, err := NewKaplanMeier([]Duration{{Value: 5, Censored: true}, {Value: 7, Censored: true}})
	if err != nil {
		t.Fatal(err)
	}
	if km.CDF(100) != 0 {
		t.Errorf("all-censored CDF should be 0, got %v", km.CDF(100))
	}
	if _, ok := km.MedianTime(); ok {
		t.Error("median should not exist for all-censored data")
	}
}

func TestKMEmptyInput(t *testing.T) {
	if _, err := NewKaplanMeier(nil); err == nil {
		t.Error("want error on empty input")
	}
}

func TestKMTiesEventBeforeCensor(t *testing.T) {
	// A censoring tied with an event keeps the censored subject at risk.
	obs := []Duration{{Value: 2}, {Value: 2, Censored: true}, {Value: 5}}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	// At t=2: at-risk 3, one event → S = 2/3.
	if got := km.Survival(2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("S(2) = %v, want 2/3", got)
	}
	// At t=5: at-risk 1 (one event happened, one censored) → S = 0.
	if got := km.Survival(5); math.Abs(got) > 1e-12 {
		t.Errorf("S(5) = %v, want 0", got)
	}
}

func TestKMMedian(t *testing.T) {
	obs := []Duration{{Value: 1}, {Value: 2}, {Value: 3}, {Value: 4}}
	km, _ := NewKaplanMeier(obs)
	med, ok := km.MedianTime()
	if !ok || med != 2 {
		t.Errorf("median = %v (%v), want 2", med, ok)
	}
}

func TestKMRecoversExponential(t *testing.T) {
	// KM on heavily censored exponential data must agree with the true CDF.
	g := NewRNG(17)
	const rate = 0.1
	const horizon = 15.0
	var obs []Duration
	for i := 0; i < 30000; i++ {
		v := g.Exponential(rate)
		if v > horizon {
			obs = append(obs, Duration{Value: horizon, Censored: true})
		} else {
			obs = append(obs, Duration{Value: v})
		}
	}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{1, 3, 5, 8, 12} {
		want := 1 - math.Exp(-rate*tau)
		if got := km.CDF(tau); math.Abs(got-want) > 0.01 {
			t.Errorf("CDF(%v) = %v, want ≈ %v", tau, got, want)
		}
	}
}

func TestKMQuickValidCDF(t *testing.T) {
	// Property: for random censored data, the KM CDF is a monotone
	// non-decreasing step function with values in [0, 1].
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		obs := make([]Duration, n)
		for i := range obs {
			obs[i] = Duration{Value: float64(r.Intn(20)) + r.Float64(), Censored: r.Intn(3) == 0}
		}
		km, err := NewKaplanMeier(obs)
		if err != nil {
			return false
		}
		prev := -1.0
		for tau := 0.0; tau < 25; tau += 0.25 {
			c := km.CDF(tau)
			if c < 0 || c > 1 || c < prev {
				return false
			}
			prev = c
		}
		times, cdf := km.Steps()
		if len(times) != len(cdf) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] <= times[i-1] || cdf[i] < cdf[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKMN(t *testing.T) {
	km, _ := NewKaplanMeier([]Duration{{Value: 1}, {Value: 2, Censored: true}})
	if km.N() != 2 {
		t.Errorf("N = %d, want 2", km.N())
	}
}

func TestKMFromStepsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		obs := make([]Duration, 1+r.Intn(40))
		for i := range obs {
			obs[i] = Duration{Value: float64(r.Intn(20)), Censored: r.Intn(3) == 0}
		}
		km, err := NewKaplanMeier(obs)
		if err != nil {
			return false
		}
		times, cdf := km.Steps()
		got, err := KaplanMeierFromSteps(times, cdf, km.N())
		if err != nil {
			return false
		}
		if got.N() != km.N() || got.Plateau() != km.Plateau() {
			return false
		}
		for tau := 0.0; tau < 21; tau += 0.5 {
			if got.CDF(tau) != km.CDF(tau) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKMFromStepsRejectsMalformed(t *testing.T) {
	cases := []struct {
		name       string
		times, cdf []float64
		n          int
	}{
		{"length mismatch", []float64{1, 2}, []float64{0.5}, 2},
		{"zero observations", nil, nil, 0},
		{"non-increasing times", []float64{2, 2}, []float64{0.3, 0.6}, 2},
		{"decreasing cdf", []float64{1, 2}, []float64{0.6, 0.3}, 2},
		{"cdf above one", []float64{1}, []float64{1.5}, 1},
	}
	for _, c := range cases {
		if _, err := KaplanMeierFromSteps(c.times, c.cdf, c.n); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}
