package stats

import (
	"math"
	"testing"
)

// weibullSample draws a Weibull variate by inversion.
func weibullSample(g *RNG, shape, scale float64) float64 {
	u := g.Float64()
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

func TestFitWeibullRecoversParameters(t *testing.T) {
	g := NewRNG(41)
	for _, c := range []struct{ shape, scale float64 }{
		{1.0, 50}, {0.7, 30}, {2.5, 100},
	} {
		var obs []Duration
		for i := 0; i < 20000; i++ {
			obs = append(obs, Duration{Value: weibullSample(g, c.shape, c.scale)})
		}
		m, err := FitWeibull(obs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Shape-c.shape) > 0.05*c.shape {
			t.Errorf("shape = %v, want ≈ %v", m.Shape, c.shape)
		}
		if math.Abs(m.Scale-c.scale) > 0.05*c.scale {
			t.Errorf("scale = %v, want ≈ %v", m.Scale, c.scale)
		}
	}
}

func TestFitWeibullCensored(t *testing.T) {
	g := NewRNG(43)
	const shape, scale = 1.5, 40.0
	const horizon = 50.0
	var obs []Duration
	for i := 0; i < 30000; i++ {
		v := weibullSample(g, shape, scale)
		if v > horizon {
			obs = append(obs, Duration{Value: horizon, Censored: true})
		} else {
			obs = append(obs, Duration{Value: v})
		}
	}
	m, err := FitWeibull(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Shape-shape) > 0.1*shape {
		t.Errorf("censored shape = %v, want ≈ %v", m.Shape, shape)
	}
	if math.Abs(m.Scale-scale) > 0.1*scale {
		t.Errorf("censored scale = %v, want ≈ %v", m.Scale, scale)
	}
	if m.Censored == 0 || m.Events == 0 {
		t.Error("censoring accounting wrong")
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull(nil); err == nil {
		t.Error("want error on empty input")
	}
	if _, err := FitWeibull([]Duration{{Value: 5, Censored: true}}); err == nil {
		t.Error("want error on all-censored input")
	}
	if _, err := FitWeibull([]Duration{{Value: -1}}); err == nil {
		t.Error("want error on negative duration")
	}
}

func TestWeibullCDFProperties(t *testing.T) {
	m := WeibullModel{Shape: 2, Scale: 10}
	if m.CDF(0) != 0 || m.CDF(-5) != 0 {
		t.Error("CDF at non-positive x")
	}
	prev := 0.0
	for x := 0.5; x < 60; x += 0.5 {
		v := m.CDF(x)
		if v < prev || v > 1 {
			t.Fatalf("CDF not a valid distribution at %v", x)
		}
		prev = v
	}
	if math.Abs(m.CDF(10)-(1-math.Exp(-1))) > 1e-12 {
		t.Error("CDF at scale point wrong")
	}
	if math.Abs(m.Survival(10)+m.CDF(10)-1) > 1e-12 {
		t.Error("survival complement")
	}
	// Mean of Weibull(2, 10) = 10·Γ(1.5) = 10·√π/2.
	if math.Abs(m.Mean()-10*math.Sqrt(math.Pi)/2) > 1e-9 {
		t.Errorf("Mean = %v", m.Mean())
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	m := WeibullModel{Shape: 1, Scale: 20}
	e := ExponentialModel{Rate: 1.0 / 20}
	for _, x := range []float64{1, 5, 20, 60} {
		if math.Abs(m.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Errorf("CDF(%v): weibull %v vs exponential %v", x, m.CDF(x), e.CDF(x))
		}
	}
}

func TestChooseLifespanModelExponentialData(t *testing.T) {
	g := NewRNG(47)
	var obs []Duration
	for i := 0; i < 10000; i++ {
		v := g.Exponential(0.05)
		if v > 60 {
			obs = append(obs, Duration{Value: 60, Censored: true})
		} else {
			obs = append(obs, Duration{Value: v})
		}
	}
	c, err := ChooseLifespanModel(obs)
	if err != nil {
		t.Fatal(err)
	}
	if c.PreferWeibull {
		t.Errorf("exponential data should not decisively prefer Weibull (AIC exp %v vs weibull %v, shape %v)",
			c.ExpAIC, c.WeibullAIC, c.Weibull.Shape)
	}
	if math.Abs(c.Weibull.Shape-1) > 0.07 {
		t.Errorf("shape on exponential data = %v, want ≈ 1", c.Weibull.Shape)
	}
}

func TestChooseLifespanModelWeibullData(t *testing.T) {
	g := NewRNG(53)
	var obs []Duration
	for i := 0; i < 10000; i++ {
		obs = append(obs, Duration{Value: weibullSample(g, 2.5, 50)})
	}
	c, err := ChooseLifespanModel(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !c.PreferWeibull {
		t.Errorf("strongly Weibull data should prefer Weibull (AIC exp %v vs weibull %v)", c.ExpAIC, c.WeibullAIC)
	}
}

func TestExponentialLogLik(t *testing.T) {
	obs := []Duration{{Value: 2}, {Value: 3, Censored: true}}
	m := ExponentialModel{Rate: 0.5}
	want := math.Log(0.5) - 0.5*2 - 0.5*3
	if got := ExponentialLogLik(obs, m); math.Abs(got-want) > 1e-12 {
		t.Errorf("loglik = %v, want %v", got, want)
	}
}
