package stats

import (
	"errors"
	"math"
)

// PoissonModel is a fitted Poisson distribution for per-interval counts
// (Eq. 6 of the paper): the number of events in an interval of length τ is
// Poisson with mean Lambda·τ.
type PoissonModel struct {
	// Lambda is the intensity (events per time unit), the MLE of which is
	// the observed average rate.
	Lambda float64
	// N is the number of intervals the model was fitted on.
	N int
}

// FitPoisson estimates the intensity of a Poisson process from per-interval
// event counts, where each interval has the given fixed length. The MLE is
// the sample mean divided by the interval length.
func FitPoisson(counts []int, intervalLen float64) (PoissonModel, error) {
	if len(counts) == 0 {
		return PoissonModel{}, errors.New("stats: FitPoisson with no observations")
	}
	if intervalLen <= 0 {
		return PoissonModel{}, errors.New("stats: FitPoisson requires positive interval length")
	}
	var sum float64
	for _, c := range counts {
		if c < 0 {
			return PoissonModel{}, errors.New("stats: negative count")
		}
		sum += float64(c)
	}
	return PoissonModel{Lambda: sum / (float64(len(counts)) * intervalLen), N: len(counts)}, nil
}

// PMF returns the Poisson probability of observing k events in an interval
// of length tau.
func (m PoissonModel) PMF(k int, tau float64) float64 {
	if k < 0 {
		return 0
	}
	mean := m.Lambda * tau
	if mean == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(mean) - mean - lg)
}

// CDF returns the Poisson probability of observing at most k events in an
// interval of length tau.
func (m PoissonModel) CDF(k int, tau float64) float64 {
	p := 0.0
	for i := 0; i <= k; i++ {
		p += m.PMF(i, tau)
	}
	if p > 1 {
		return 1
	}
	return p
}

// ExponentialModel is a fitted exponential distribution for durations
// (lifespans and update intervals, Section 4.1.1).
type ExponentialModel struct {
	// Rate is the exponential rate parameter γ; the mean duration is 1/γ.
	Rate float64
	// Events is the number of uncensored (exact) observations used.
	Events int
	// Censored is the number of right-censored observations used.
	Censored int
}

// Duration is a possibly right-censored duration observation. If Censored
// is true, Value is a lower bound on the true duration (the entity had not
// disappeared / the event had not been captured by the end of the observed
// window).
type Duration struct {
	Value    float64
	Censored bool
}

// FitExponential computes the maximum-likelihood exponential rate from a
// mix of exact and right-censored durations. This is Eq. 7 of the paper:
//
//	γ̂⁻¹ = (total observed duration) / (number of uncensored events).
//
// It returns an error when there is no uncensored event (the MLE does not
// exist) or when total observed duration is zero.
func FitExponential(obs []Duration) (ExponentialModel, error) {
	if len(obs) == 0 {
		return ExponentialModel{}, errors.New("stats: FitExponential with no observations")
	}
	var total float64
	events, censored := 0, 0
	for _, d := range obs {
		if d.Value < 0 {
			return ExponentialModel{}, errors.New("stats: negative duration")
		}
		total += d.Value
		if d.Censored {
			censored++
		} else {
			events++
		}
	}
	if events == 0 {
		return ExponentialModel{}, errors.New("stats: FitExponential requires at least one uncensored event")
	}
	if total == 0 {
		return ExponentialModel{}, errors.New("stats: FitExponential with zero total duration")
	}
	return ExponentialModel{Rate: float64(events) / total, Events: events, Censored: censored}, nil
}

// FitExponentialExact fits an exponential distribution to fully-observed
// durations.
func FitExponentialExact(values []float64) (ExponentialModel, error) {
	obs := make([]Duration, len(values))
	for i, v := range values {
		obs[i] = Duration{Value: v}
	}
	return FitExponential(obs)
}

// CDF returns P[duration ≤ x].
func (m ExponentialModel) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-m.Rate*x)
}

// Survival returns P[duration > x] = e^{-γx}.
func (m ExponentialModel) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Exp(-m.Rate * x)
}

// Mean returns the mean duration 1/γ.
func (m ExponentialModel) Mean() float64 { return 1 / m.Rate }
