package stats_test

import (
	"fmt"

	"freshsource/internal/stats"
)

// The censored exponential MLE of Eq. 7 of the paper: total observed
// lifespan divided by the number of observed disappearances.
func ExampleFitExponential() {
	obs := []stats.Duration{
		{Value: 10},                 // disappeared after 10 ticks
		{Value: 30},                 // disappeared after 30 ticks
		{Value: 40, Censored: true}, // still alive when the window closed
	}
	m, _ := stats.FitExponential(obs)
	fmt.Printf("rate %.3f mean %.0f\n", m.Rate, m.Mean())
	// Output: rate 0.025 mean 40
}

// Kaplan–Meier learns a capture-effectiveness distribution from exact and
// right-censored delays (Section 4.1.2 of the paper).
func ExampleNewKaplanMeier() {
	obs := []stats.Duration{
		{Value: 1}, {Value: 2}, {Value: 2}, {Value: 5, Censored: true},
	}
	km, _ := stats.NewKaplanMeier(obs)
	fmt.Printf("G(1)=%.2f G(2)=%.2f plateau=%.2f\n", km.CDF(1), km.CDF(2), km.Plateau())
	// Output: G(1)=0.25 G(2)=0.75 plateau=0.75
}

// Weibull shape ≈ 1 supports the paper's exponential-lifespan assumption.
func ExampleChooseLifespanModel() {
	g := stats.NewRNG(1)
	var obs []stats.Duration
	for i := 0; i < 5000; i++ {
		obs = append(obs, stats.Duration{Value: g.Exponential(0.02)})
	}
	c, _ := stats.ChooseLifespanModel(obs)
	fmt.Printf("prefer weibull: %v\n", c.PreferWeibull)
	// Output: prefer weibull: false
}
