package stats

import (
	"errors"
	"fmt"
	"sort"
)

// KaplanMeier is the product-limit estimator of a distribution function
// from exact and right-censored duration observations (Kaplan & Meier
// 1958). The paper uses it to learn the effectiveness distributions Gi, Gd
// and Gu of a source: the probability that the source captures a world
// change within τ time units (Section 4.1.2, Figure 7).
//
// The estimator is a right-continuous step function. CDF(τ) = 1 − Ŝ(τ)
// where Ŝ is the estimated survival function. When the largest observation
// is censored the CDF plateaus below 1, which is exactly the behaviour
// needed to model sources that permanently miss a fraction of the world's
// changes.
type KaplanMeier struct {
	times []float64 // distinct event times, increasing
	cdf   []float64 // CDF value at and after times[i] (before times[i+1])
	n     int       // total observations
}

// NewKaplanMeier builds the estimator from observations. It returns an
// error when there are no observations; all-censored inputs are legal and
// produce the zero CDF.
func NewKaplanMeier(obs []Duration) (*KaplanMeier, error) {
	if len(obs) == 0 {
		return nil, errors.New("stats: KaplanMeier with no observations")
	}
	sorted := make([]Duration, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Value != sorted[j].Value {
			return sorted[i].Value < sorted[j].Value
		}
		// At ties, events before censorings: a subject censored at t is
		// conventionally considered at risk for an event at t.
		return !sorted[i].Censored && sorted[j].Censored
	})

	km := &KaplanMeier{n: len(obs)}
	surv := 1.0
	atRisk := len(sorted)
	i := 0
	for i < len(sorted) {
		t := sorted[i].Value
		deaths, censored := 0, 0
		for i < len(sorted) && sorted[i].Value == t {
			if sorted[i].Censored {
				censored++
			} else {
				deaths++
			}
			i++
		}
		if deaths > 0 {
			surv *= 1 - float64(deaths)/float64(atRisk)
			km.times = append(km.times, t)
			km.cdf = append(km.cdf, 1-surv)
		}
		atRisk -= deaths + censored
	}
	return km, nil
}

// KaplanMeierFromSteps reconstructs an estimator from its Steps() output
// and observation count — the persistent model cache's load path. times
// must be strictly increasing and cdf nondecreasing within [0, 1], with
// matching lengths; n must cover at least the recorded steps. The
// reconstruction is exact: CDF agrees bit-for-bit with the estimator the
// steps came from.
func KaplanMeierFromSteps(times, cdf []float64, n int) (*KaplanMeier, error) {
	if len(times) != len(cdf) {
		return nil, fmt.Errorf("stats: %d step times vs %d cdf values", len(times), len(cdf))
	}
	if n <= 0 {
		return nil, errors.New("stats: KaplanMeier with no observations")
	}
	prev := 0.0
	for i := range times {
		if i > 0 && times[i] <= times[i-1] {
			return nil, fmt.Errorf("stats: step times not increasing at %d", i)
		}
		if cdf[i] < prev || cdf[i] > 1 {
			return nil, fmt.Errorf("stats: cdf not a distribution at step %d", i)
		}
		prev = cdf[i]
	}
	km := &KaplanMeier{n: n}
	if len(times) > 0 {
		km.times = append([]float64(nil), times...)
		km.cdf = append([]float64(nil), cdf...)
	}
	return km, nil
}

// CDF returns the estimated probability that the duration is at most tau.
func (km *KaplanMeier) CDF(tau float64) float64 {
	// Find the last event time ≤ tau.
	i := sort.SearchFloat64s(km.times, tau)
	if i < len(km.times) && km.times[i] == tau {
		return km.cdf[i]
	}
	if i == 0 {
		return 0
	}
	return km.cdf[i-1]
}

// Survival returns 1 − CDF(tau).
func (km *KaplanMeier) Survival(tau float64) float64 { return 1 - km.CDF(tau) }

// Plateau returns the terminal value of the CDF — the estimated probability
// that the event ever happens. With heavily censored data this is < 1.
func (km *KaplanMeier) Plateau() float64 {
	if len(km.cdf) == 0 {
		return 0
	}
	return km.cdf[len(km.cdf)-1]
}

// Steps returns the estimator's step points as (time, CDF value) pairs, for
// plotting (Figure 7 of the paper).
func (km *KaplanMeier) Steps() (times, cdf []float64) {
	t := make([]float64, len(km.times))
	c := make([]float64, len(km.cdf))
	copy(t, km.times)
	copy(c, km.cdf)
	return t, c
}

// N returns the number of observations the estimator was built from.
func (km *KaplanMeier) N() int { return km.n }

// MedianTime returns the smallest time at which the CDF reaches 0.5, and
// whether such a time exists (it may not when the plateau is below 0.5).
func (km *KaplanMeier) MedianTime() (float64, bool) {
	for i, c := range km.cdf {
		if c >= 0.5 {
			return km.times[i], true
		}
	}
	return 0, false
}
