package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNelsonAalenBasic(t *testing.T) {
	// Events at 1, 2 with 3 at risk then 2: Ĥ(1) = 1/3, Ĥ(2) = 1/3 + 1/2.
	obs := []Duration{{Value: 1}, {Value: 2}, {Value: 3, Censored: true}}
	na, err := NewNelsonAalen(obs)
	if err != nil {
		t.Fatal(err)
	}
	if got := na.CumulativeHazard(0.5); got != 0 {
		t.Errorf("H(0.5) = %v", got)
	}
	if got := na.CumulativeHazard(1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("H(1) = %v", got)
	}
	if got := na.CumulativeHazard(2.5); math.Abs(got-(1.0/3+0.5)) > 1e-12 {
		t.Errorf("H(2.5) = %v", got)
	}
	if na.N() != 3 {
		t.Errorf("N = %d", na.N())
	}
	if na.CDF(2)+na.Survival(2) != 1 {
		t.Error("CDF/Survival complement broken")
	}
}

func TestNelsonAalenEmpty(t *testing.T) {
	if _, err := NewNelsonAalen(nil); err == nil {
		t.Error("want error")
	}
}

func TestNelsonAalenCloseToKM(t *testing.T) {
	// On the same censored sample both estimators approximate the true
	// distribution and must agree closely with each other.
	g := NewRNG(61)
	var obs []Duration
	for i := 0; i < 20000; i++ {
		v := g.Exponential(0.1)
		if v > 15 {
			obs = append(obs, Duration{Value: 15, Censored: true})
		} else {
			obs = append(obs, Duration{Value: v})
		}
	}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	na, err := NewNelsonAalen(obs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []float64{1, 4, 8, 12} {
		if diff := math.Abs(km.CDF(tau) - na.CDF(tau)); diff > 0.01 {
			t.Errorf("tau %v: KM %v vs NA %v", tau, km.CDF(tau), na.CDF(tau))
		}
		want := 1 - math.Exp(-0.1*tau)
		if diff := math.Abs(na.CDF(tau) - want); diff > 0.02 {
			t.Errorf("tau %v: NA %v vs true %v", tau, na.CDF(tau), want)
		}
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.975, 1.959964}, {0.025, -1.959964}, {0.995, 2.575829}, {0.841344746, 1.0},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(normalQuantile(0)) || !math.IsNaN(normalQuantile(1)) {
		t.Error("degenerate quantiles should be NaN")
	}
}

func TestKMConfidenceBandsContainEstimate(t *testing.T) {
	g := NewRNG(67)
	var obs []Duration
	for i := 0; i < 500; i++ {
		v := g.Exponential(0.2)
		if v > 10 {
			obs = append(obs, Duration{Value: 10, Censored: true})
		} else {
			obs = append(obs, Duration{Value: v})
		}
	}
	kc, err := NewKMConfidence(obs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for tau := 0.5; tau < 10; tau += 0.5 {
		lo, hi := kc.Band(tau)
		est := kc.KM().CDF(tau)
		if lo > est+1e-12 || hi < est-1e-12 {
			t.Fatalf("band [%v,%v] does not contain estimate %v at %v", lo, hi, est, tau)
		}
		if lo < 0 || hi > 1 {
			t.Fatalf("band outside [0,1] at %v", tau)
		}
	}
}

func TestKMConfidenceBandsShrinkWithN(t *testing.T) {
	width := func(n int) float64 {
		g := NewRNG(71)
		var obs []Duration
		for i := 0; i < n; i++ {
			obs = append(obs, Duration{Value: g.Exponential(0.2)})
		}
		kc, err := NewKMConfidence(obs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := kc.Band(3)
		return hi - lo
	}
	small, large := width(50), width(5000)
	if large >= small {
		t.Errorf("bands did not shrink: n=50 width %v, n=5000 width %v", small, large)
	}
}

func TestKMConfidenceCoverage(t *testing.T) {
	// Frequentist sanity: over many replications the 95% band should
	// contain the true CDF most of the time (allow slack: small n, step
	// function).
	const rate = 0.15
	const tau = 5.0
	trueCDF := 1 - math.Exp(-rate*tau)
	covered, trials := 0, 200
	g := NewRNG(73)
	for tr := 0; tr < trials; tr++ {
		var obs []Duration
		for i := 0; i < 120; i++ {
			obs = append(obs, Duration{Value: g.Exponential(rate)})
		}
		kc, err := NewKMConfidence(obs, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := kc.Band(tau)
		if trueCDF >= lo && trueCDF <= hi {
			covered++
		}
	}
	if frac := float64(covered) / float64(trials); frac < 0.85 {
		t.Errorf("coverage %v below nominal 0.95", frac)
	}
}

func TestKMConfidenceValidation(t *testing.T) {
	obs := []Duration{{Value: 1}}
	if _, err := NewKMConfidence(obs, 0); err == nil {
		t.Error("want error for level 0")
	}
	if _, err := NewKMConfidence(obs, 1); err == nil {
		t.Error("want error for level 1")
	}
	if _, err := NewKMConfidence(nil, 0.9); err == nil {
		t.Error("want error for empty input")
	}
}

func TestQuickNelsonAalenMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		obs := make([]Duration, n)
		for i := range obs {
			obs[i] = Duration{Value: float64(r.Intn(15)) + r.Float64(), Censored: r.Intn(3) == 0}
		}
		na, err := NewNelsonAalen(obs)
		if err != nil {
			return false
		}
		prev := -1.0
		for tau := 0.0; tau < 20; tau += 0.5 {
			h := na.CumulativeHazard(tau)
			if h < prev || h < 0 {
				return false
			}
			prev = h
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
