package stats

import (
	"testing"
)

// FuzzKaplanMeier decodes arbitrary byte strings into censored duration
// samples and checks the estimator's invariants never break.
func FuzzKaplanMeier(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{0})
	f.Add([]byte{255, 0, 255, 0, 17, 17})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		obs := make([]Duration, 0, len(data))
		for i, b := range data {
			obs = append(obs, Duration{
				Value:    float64(b%64) + float64(i%3)*0.5,
				Censored: b&0x80 != 0,
			})
		}
		km, err := NewKaplanMeier(obs)
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		prev := -1.0
		for tau := -1.0; tau < 70; tau += 1.0 {
			c := km.CDF(tau)
			if c < 0 || c > 1 {
				t.Fatalf("CDF(%v) = %v outside [0,1]", tau, c)
			}
			if c < prev {
				t.Fatalf("CDF decreased at %v", tau)
			}
			prev = c
		}
		if p := km.Plateau(); p < 0 || p > 1 {
			t.Fatalf("plateau %v", p)
		}
		na, err := NewNelsonAalen(obs)
		if err != nil {
			t.Fatalf("nelson-aalen error: %v", err)
		}
		// NA survival ≥ KM survival does not hold pointwise in general,
		// but both must be valid distributions.
		for tau := 0.0; tau < 70; tau += 7 {
			if c := na.CDF(tau); c < 0 || c > 1 {
				t.Fatalf("NA CDF(%v) = %v", tau, c)
			}
		}
	})
}

// FuzzFitExponential checks the censored MLE never panics or returns
// non-positive rates on valid input.
func FuzzFitExponential(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		obs := make([]Duration, 0, len(data))
		hasEvent := false
		var total float64
		for _, b := range data {
			d := Duration{Value: float64(b % 100), Censored: b&0x80 != 0}
			obs = append(obs, d)
			if !d.Censored {
				hasEvent = true
			}
			total += d.Value
		}
		m, err := FitExponential(obs)
		if err != nil {
			if len(obs) > 0 && hasEvent && total > 0 {
				t.Fatalf("unexpected error with valid data: %v", err)
			}
			return
		}
		if m.Rate <= 0 {
			t.Fatalf("non-positive rate %v", m.Rate)
		}
	})
}
