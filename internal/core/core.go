// Package core is the public façade of the library: it wires the paper's
// pipeline together — statistical training on a historical window, future
// quality estimation, and profit-driven source selection — behind a small
// API (Figure 3 of the paper).
//
// Usage:
//
//	trained, _ := core.Train(w, sources, t0, core.TrainOptions{MaxT: horizon - 1})
//	problem, _ := core.NewProblem(trained, futureTicks, gain.Linear{Metric: gain.Coverage}, core.ProblemOptions{})
//	sel, _ := problem.Solve(core.MaxSub, core.SolveOptions{})
//
// The three problem variants of the paper map as follows: basic time-aware
// selection (Definition 3) is a Problem over divisor-1 candidates;
// varying-frequency selection (Definition 4) is a Problem whose TrainOptions
// requested FreqDivisors, which adds the augmented candidates S^m under a
// one-version-per-source partition matroid; slice selection (Definition 5)
// is a Problem whose sources are micro-sources (see
// dataset.AddMicroSources and source.Restrict).
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"freshsource/internal/estimate"
	"freshsource/internal/gain"
	"freshsource/internal/matroid"
	"freshsource/internal/selection"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// TrainOptions configures Train.
type TrainOptions struct {
	// Points restricts the query domain (nil = the whole world).
	Points []world.DomainPoint
	// MaxT is the largest future tick that will be queried; it defaults to
	// the world horizon − 1.
	MaxT timeline.Tick
	// PerItemCost is the base item cost of the shared-item cost model; it
	// defaults to the paper's $10.
	PerItemCost float64
	// FreqDivisors, when non-empty, adds an S^m candidate per source and
	// divisor m (Definition 4); selection then enforces at most one
	// version per source.
	FreqDivisors []int
	// FitWorkers bounds the model-fitting pool: 0 uses GOMAXPROCS, 1 fits
	// sequentially, n > 1 fans the per-subdomain and per-source fits across
	// n goroutines. The fitted models are byte-identical at any setting.
	FitWorkers int
}

// Trained is the output of the preprocessing stage of Figure 3: fitted
// world models, source profiles and the cost model.
type Trained struct {
	// Est estimates integration quality for candidate sets at future ticks.
	Est *estimate.Estimator
	// Cost is the shared-item cost model over the candidates.
	Cost *gain.CostModel
	// Constrained reports whether frequency variants were added (selection
	// must respect the one-version-per-source matroid).
	Constrained bool

	t0 timeline.Tick
}

// ErrCanceled reports a Solve stopped by its context before completion; it
// aliases the selection package's sentinel so errors.Is works against
// either. The run's partial state is discarded — callers get the error, not
// a half-finished selection.
var ErrCanceled = selection.ErrCanceled

// Train fits the statistical models and profiles on the window [0, t0].
func Train(w *world.World, srcs []*source.Source, t0 timeline.Tick, opt TrainOptions) (*Trained, error) {
	return TrainContext(context.Background(), w, srcs, t0, opt)
}

// TrainContext is Train with cancellation: a fired context aborts the model
// and profile fits and surfaces ctx.Err().
func TrainContext(ctx context.Context, w *world.World, srcs []*source.Source, t0 timeline.Tick, opt TrainOptions) (*Trained, error) {
	maxT := opt.MaxT
	if maxT == 0 {
		maxT = w.Horizon() - 1
	}
	est, err := estimate.NewFit(ctx, w, srcs, t0, maxT, opt.Points, estimate.FitOptions{Workers: opt.FitWorkers})
	if err != nil {
		return nil, err
	}
	return FromEstimator(est, t0, opt)
}

// FromEstimator finishes training from an already-fitted base estimator:
// it derives the frequency-variant candidates and the cost model that
// Train would have built. The persistent model cache uses it to turn a
// loaded estimator into a Trained without re-running any statistical fit;
// est must be a base fit (divisor-1 candidates only) and is mutated when
// opt.FreqDivisors is non-empty.
func FromEstimator(est *estimate.Estimator, t0 timeline.Tick, opt TrainOptions) (*Trained, error) {
	constrained := false
	if len(opt.FreqDivisors) > 0 {
		if _, err := est.AddFrequencyVariants(opt.FreqDivisors); err != nil {
			return nil, err
		}
		constrained = true
	}
	perItem := opt.PerItemCost
	if perItem == 0 {
		perItem = 10
	}
	cost, err := gain.NewSharedItemCost(est, perItem)
	if err != nil {
		return nil, err
	}
	return &Trained{Est: est, Cost: cost, Constrained: constrained, t0: t0}, nil
}

// T0 returns the end of the training window.
func (tr *Trained) T0() timeline.Tick { return tr.t0 }

// NumCandidates returns the size of the selection ground set.
func (tr *Trained) NumCandidates() int { return tr.Est.NumCandidates() }

// CandidateName returns the display name of candidate i (frequency
// variants carry a "/m" suffix).
func (tr *Trained) CandidateName(i int) string { return tr.Est.Candidate(i).Name() }

// CandidateDivisor returns the acquisition divisor of candidate i.
func (tr *Trained) CandidateDivisor(i int) int { return tr.Est.Candidate(i).Divisor() }

// CandidateSource returns the underlying source index of candidate i.
func (tr *Trained) CandidateSource(i int) int { return tr.Est.Candidate(i).SourceIndex }

// ProblemOptions configures NewProblem.
type ProblemOptions struct {
	// Budget is βc over the rescaled cost in [0,1]; ≤ 0 means
	// unconstrained (the setting of the paper's experiments).
	Budget float64
	// CostWeight scales the cost term of the profit; it defaults to 1.
	CostWeight float64
}

// Problem is one instance of time-aware source selection (Definitions
// 3–5): a trained model, the future time points of interest Tf, a gain
// function and a budget.
type Problem struct {
	Trained *Trained
	Ticks   []timeline.Tick
	Gain    gain.Function

	profit *gain.Profit
	ms     []matroid.Matroid
}

// NewProblem assembles a selection problem. ticks are the future time
// points of interest Tf; the overall gain aggregates by average, matching
// the submodularity conditions of Section 5.
func NewProblem(tr *Trained, ticks []timeline.Tick, g gain.Function, opt ProblemOptions) (*Problem, error) {
	if tr == nil {
		return nil, errors.New("core: nil Trained")
	}
	p, err := gain.NewProfit(tr.Est, ticks, g, tr.Cost)
	if err != nil {
		return nil, err
	}
	if opt.Budget > 0 {
		p.Budget = opt.Budget
	}
	if opt.CostWeight != 0 {
		p.CostWeight = opt.CostWeight
	}
	prob := &Problem{Trained: tr, Ticks: ticks, Gain: g, profit: p}
	if tr.Constrained {
		classOf := make([]int, tr.NumCandidates())
		for i := range classOf {
			classOf[i] = tr.CandidateSource(i)
		}
		pm, err := matroid.OnePerClass(classOf)
		if err != nil {
			return nil, err
		}
		prob.ms = []matroid.Matroid{pm}
	}
	return prob, nil
}

// Profit exposes the underlying value oracle (for diagnostics and custom
// algorithms).
func (p *Problem) Profit() *gain.Profit { return p.profit }

// Algorithm names one of the implemented selection algorithms.
type Algorithm string

// The implemented algorithms (Section 6.1 plus two extensions).
const (
	// Greedy is the greedy baseline of Dong et al.
	Greedy Algorithm = "greedy"
	// MaxSub is the submodular local search of Section 5 — Algorithm 1 for
	// unconstrained problems, Algorithms 2–3 under matroid constraints.
	MaxSub Algorithm = "maxsub"
	// GRASP is the randomized multi-start baseline of Dong et al.
	GRASP Algorithm = "grasp"
	// LazyGreedy is the CELF-accelerated greedy: identical selections on
	// submodular objectives with far fewer oracle calls.
	LazyGreedy Algorithm = "lazygreedy"
	// Budgeted is the cost-benefit greedy for tight βc budgets (ratio
	// greedy + best-singleton fallback).
	Budgeted Algorithm = "budgeted"
)

// SolveOptions tunes an algorithm run.
type SolveOptions struct {
	// Epsilon is the local-search slack ε; it defaults to 0.1.
	Epsilon float64
	// Kappa and Rounds are GRASP's (κ, r); they default to (5, 20).
	Kappa, Rounds int
	// Seed seeds GRASP's randomization.
	Seed int64
	// Workers fans each round's candidate sweep across this many
	// goroutines: 0 keeps the sequential path, negative uses all cores.
	// Results are deterministic and identical at any worker count.
	Workers int
	// Cache memoizes oracle evaluations by canonical set for the run.
	// OracleCalls still reports the algorithm's probe count.
	Cache bool
	// Lazy uses the CELF lazy-greedy path for the Greedy algorithm when
	// the gain function is submodular (where it is exact); otherwise it is
	// ignored.
	Lazy bool
	// SpecStride tunes the CELF path's speculative batched re-evaluation:
	// when the lazy heap's top is stale, Workers×SpecStride stale entries
	// are recomputed concurrently before the sequential adoption step. The
	// selection is byte-identical at any stride — only the probe count
	// varies. 0 keeps the default (speculate only with Workers > 1);
	// negative disables speculation. Ignored outside the CELF path.
	SpecStride int
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.1
	}
	if o.Kappa <= 0 {
		o.Kappa = 5
	}
	if o.Rounds <= 0 {
		o.Rounds = 20
	}
	return o
}

// Selection is a solved problem: the chosen candidates and their reported
// quality.
type Selection struct {
	Algorithm Algorithm
	// Set holds the selected candidate indices.
	Set []int
	// Names and Divisors describe the selected candidates.
	Names    []string
	Divisors []int
	// Profit is the objective value G − C (rescaled units).
	Profit float64
	// Gain is the rescaled gain alone.
	Gain float64
	// AvgCoverage and AvgAccuracy are the average estimated quality over
	// Tf (the "Avg. Qual." columns of Tables 4–6).
	AvgCoverage float64
	AvgAccuracy float64
	// OracleCalls and Duration report the run's work.
	OracleCalls int
	Duration    time.Duration
}

// matroidOracle layers matroid feasibility on top of the profit oracle for
// the algorithms that only understand Feasible (Greedy, GRASP).
type matroidOracle struct {
	*gain.Profit
	ms []matroid.Matroid
}

func (o matroidOracle) Feasible(set []int) bool {
	return o.Profit.Feasible(set) && matroid.AllIndependent(o.ms, set)
}

// Solve runs the chosen algorithm on the problem.
func (p *Problem) Solve(alg Algorithm, opt SolveOptions) (*Selection, error) {
	return p.SolveContext(context.Background(), alg, opt)
}

// SolveContext runs the chosen algorithm under a context: when ctx fires
// mid-run the algorithm abandons the sweep in flight (discarding its
// partial argmax) and SolveContext returns ErrCanceled. This is the serving
// path's per-request timeout hook.
func (p *Problem) SolveContext(ctx context.Context, alg Algorithm, opt SolveOptions) (*Selection, error) {
	opt = opt.withDefaults()
	n := p.Trained.NumCandidates()

	var oracle selection.Oracle = p.profit
	if len(p.ms) > 0 {
		oracle = matroidOracle{Profit: p.profit, ms: p.ms}
	}
	if opt.Cache {
		oracle = selection.Cached(oracle)
	}
	var sopts []selection.Option
	if opt.Workers != 0 {
		sopts = append(sopts, selection.Parallel(opt.Workers))
	}
	if opt.SpecStride != 0 {
		sopts = append(sopts, selection.Speculative(opt.SpecStride))
	}
	if ctx != nil && ctx != context.Background() {
		sopts = append(sopts, selection.Context(ctx))
	}

	var res selection.Result
	switch alg {
	case Greedy:
		if opt.Lazy && p.Gain.Submodular() {
			res = selection.LazyGreedy(oracle, n, sopts...)
		} else {
			res = selection.Greedy(oracle, n, sopts...)
		}
	case MaxSub:
		if len(p.ms) > 0 {
			res = selection.MatroidMax(oracle, n, p.ms, opt.Epsilon, sopts...)
		} else {
			res = selection.MaxSub(oracle, n, opt.Epsilon, sopts...)
		}
	case GRASP:
		res = selection.GRASP(oracle, n, opt.Kappa, opt.Rounds, stats.NewRNG(opt.Seed), sopts...)
	case LazyGreedy:
		res = selection.LazyGreedy(oracle, n, sopts...)
	case Budgeted:
		res = selection.BudgetedGreedy(oracle, n, func(i int) float64 {
			return p.Trained.Cost.Cost(i) / p.Trained.Cost.Total()
		}, sopts...)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
	if res.Err != nil {
		return nil, fmt.Errorf("core: %s: %w", alg, res.Err)
	}

	sel := &Selection{
		Algorithm:   alg,
		Set:         res.Set,
		Profit:      res.Value,
		Gain:        p.profit.GainOnly(res.Set),
		AvgCoverage: p.profit.AvgMetric(res.Set, gain.Coverage),
		AvgAccuracy: p.profit.AvgMetric(res.Set, gain.Accuracy),
		OracleCalls: res.OracleCalls,
		Duration:    res.Duration,
	}
	for _, i := range res.Set {
		sel.Names = append(sel.Names, p.Trained.CandidateName(i))
		sel.Divisors = append(sel.Divisors, p.Trained.CandidateDivisor(i))
	}
	return sel, nil
}
