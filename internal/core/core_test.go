package core

import (
	"testing"

	"freshsource/internal/dataset"
	"freshsource/internal/gain"
	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
)

// fixture builds a small BL-like dataset and trains on it once per test
// binary.
var fixtureDS *dataset.Dataset

func getDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	if fixtureDS != nil {
		return fixtureDS
	}
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 8
	cfg.Categories = 5
	cfg.NumSources = 10
	cfg.Horizon = 220
	cfg.T0 = 120
	cfg.Scale = 0.4
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fixtureDS = d
	return d
}

func futureTicks(d *dataset.Dataset) []timeline.Tick {
	var ts []timeline.Tick
	for t := d.T0 + 10; t < d.Horizon(); t += 20 {
		ts = append(ts, t)
	}
	return ts
}

func TestTrainBasic(t *testing.T) {
	d := getDataset(t)
	tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumCandidates() != len(d.Sources) {
		t.Errorf("candidates = %d", tr.NumCandidates())
	}
	if tr.Constrained {
		t.Error("basic training should be unconstrained")
	}
	if tr.T0() != d.T0 {
		t.Error("T0 wrong")
	}
	if tr.CandidateDivisor(0) != 1 {
		t.Error("base divisor should be 1")
	}
	if tr.CandidateName(0) == "" {
		t.Error("empty candidate name")
	}
}

func TestTrainWithFrequencyVariants(t *testing.T) {
	d := getDataset(t)
	tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{FreqDivisors: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumCandidates() != 3*len(d.Sources) {
		t.Errorf("candidates = %d", tr.NumCandidates())
	}
	if !tr.Constrained {
		t.Error("frequency training must be constrained")
	}
}

func TestSolveAllAlgorithms(t *testing.T) {
	d := getDataset(t)
	tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(tr, futureTicks(d), gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Greedy, MaxSub, GRASP} {
		sel, err := prob.Solve(alg, SolveOptions{Kappa: 2, Rounds: 3, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(sel.Set) == 0 {
			t.Errorf("%s selected nothing", alg)
		}
		if sel.Profit <= 0 {
			t.Errorf("%s profit = %v", alg, sel.Profit)
		}
		if sel.Gain < sel.Profit {
			t.Errorf("%s gain %v below profit %v", alg, sel.Gain, sel.Profit)
		}
		if sel.AvgCoverage <= 0 || sel.AvgCoverage > 1 {
			t.Errorf("%s avg coverage = %v", alg, sel.AvgCoverage)
		}
		if len(sel.Names) != len(sel.Set) || len(sel.Divisors) != len(sel.Set) {
			t.Errorf("%s names/divisors mismatch", alg)
		}
		if sel.OracleCalls <= 0 {
			t.Errorf("%s oracle calls = %d", alg, sel.OracleCalls)
		}
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	d := getDataset(t)
	tr, _ := Train(d.World, d.Sources, d.T0, TrainOptions{})
	prob, _ := NewProblem(tr, futureTicks(d), gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
	if _, err := prob.Solve("simulated-annealing", SolveOptions{}); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

func TestMaxSubAtLeastGreedy(t *testing.T) {
	// The paper's Table 1 claim: MaxSub ≥ Greedy (up to threshold slack)
	// on profit.
	d := getDataset(t)
	tr, _ := Train(d.World, d.Sources, d.T0, TrainOptions{})
	for _, g := range []gain.Function{
		gain.Linear{Metric: gain.Coverage},
		gain.Step{Metric: gain.Coverage},
		gain.Data{PerItem: 10, OmegaMax: float64(d.World.NumEntities())},
	} {
		prob, err := NewProblem(tr, futureTicks(d), g, ProblemOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gr, _ := prob.Solve(Greedy, SolveOptions{})
		ms, _ := prob.Solve(MaxSub, SolveOptions{})
		if ms.Profit < gr.Profit-0.02 {
			t.Errorf("%s: MaxSub %v well below Greedy %v", g.Name(), ms.Profit, gr.Profit)
		}
	}
}

func TestVaryingFrequencySolve(t *testing.T) {
	d := getDataset(t)
	tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{FreqDivisors: []int{2, 3, 4, 5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(tr, futureTicks(d), gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Greedy, MaxSub, GRASP} {
		sel, err := prob.Solve(alg, SolveOptions{Kappa: 2, Rounds: 2, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// One version per source.
		seen := map[int]bool{}
		for _, i := range sel.Set {
			src := tr.CandidateSource(i)
			if seen[src] {
				t.Fatalf("%s selected two versions of source %d", alg, src)
			}
			seen[src] = true
		}
	}
}

func TestVaryingFrequencyImprovesProfit(t *testing.T) {
	// Table 6's phenomenon: with cheaper slow-frequency versions the
	// algorithms select more sources and reach higher quality.
	d := getDataset(t)
	ticks := futureTicks(d)
	g := gain.Linear{Metric: gain.Coverage}

	trBase, _ := Train(d.World, d.Sources, d.T0, TrainOptions{})
	probBase, _ := NewProblem(trBase, ticks, g, ProblemOptions{})
	base, _ := probBase.Solve(MaxSub, SolveOptions{})

	trFreq, _ := Train(d.World, d.Sources, d.T0, TrainOptions{FreqDivisors: []int{2, 3, 4, 5, 6, 7}})
	probFreq, _ := NewProblem(trFreq, ticks, g, ProblemOptions{})
	freq, _ := probFreq.Solve(MaxSub, SolveOptions{})

	if freq.Profit < base.Profit-1e-9 {
		t.Errorf("frequency-augmented profit %v below base %v", freq.Profit, base.Profit)
	}
}

func TestBudgetConstraint(t *testing.T) {
	d := getDataset(t)
	tr, _ := Train(d.World, d.Sources, d.T0, TrainOptions{})
	prob, err := NewProblem(tr, futureTicks(d), gain.Linear{Metric: gain.Coverage}, ProblemOptions{Budget: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Greedy, MaxSub, GRASP} {
		sel, err := prob.Solve(alg, SolveOptions{Kappa: 2, Rounds: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if cost := tr.Cost.SetCost(sel.Set) / tr.Cost.Total(); cost > 0.2+1e-9 {
			t.Errorf("%s violated budget: cost %v", alg, cost)
		}
	}
}

func TestSelectedSetQualityAgainstGroundTruth(t *testing.T) {
	// End-to-end: estimated average coverage of the MaxSub selection stays
	// close to the ground-truth coverage of those same sources.
	d := getDataset(t)
	tr, _ := Train(d.World, d.Sources, d.T0, TrainOptions{})
	ticks := futureTicks(d)
	prob, _ := NewProblem(tr, ticks, gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
	sel, err := prob.Solve(MaxSub, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var picked []*source.Source
	for _, i := range sel.Set {
		picked = append(picked, d.Sources[tr.CandidateSource(i)])
	}
	var truthSum float64
	for _, tk := range ticks {
		truthSum += metrics.QualityAt(d.World, picked, tk, nil).Coverage
	}
	truth := truthSum / float64(len(ticks))
	if diff := truth - sel.AvgCoverage; diff > 0.08 || diff < -0.08 {
		t.Errorf("estimated avg coverage %v vs truth %v", sel.AvgCoverage, truth)
	}
}
