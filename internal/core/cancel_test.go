package core

import (
	"context"
	"errors"
	"testing"

	"freshsource/internal/gain"
)

// TestSolveContextCanceled pins the timeout contract of the serving path: a
// pre-canceled context makes SolveContext return ErrCanceled (for every
// algorithm), and a live context returns the exact same selection as the
// context-free Solve.
func TestSolveContextCanceled(t *testing.T) {
	d := getDataset(t)
	tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(tr, futureTicks(d), gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []Algorithm{Greedy, MaxSub, GRASP, LazyGreedy, Budgeted} {
		if _, err := prob.SolveContext(canceled, alg, SolveOptions{Rounds: 2}); !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", alg, err)
		}
	}

	want, err := prob.Solve(Greedy, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := prob.SolveContext(context.WithoutCancel(context.Background()), Greedy, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Set) != len(want.Set) || got.Profit != want.Profit {
		t.Errorf("live-context solve diverged: %v (%v) vs %v (%v)", got.Set, got.Profit, want.Set, want.Profit)
	}
}

// TestTrainContextCanceled pins that a fired context aborts the fit.
func TestTrainContextCanceled(t *testing.T) {
	d := getDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainContext(ctx, d.World, d.Sources, d.T0, TrainOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("TrainContext err = %v, want context.Canceled", err)
	}
}
