package core_test

import (
	"fmt"
	"log"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/gain"
	"freshsource/internal/timeline"
)

// The full pipeline: generate a corpus, train the statistical models,
// define a profit objective, and select sources with the submodular local
// search. Deterministic seeds make the example's output stable.
func Example() {
	cfg := dataset.DefaultBLConfig()
	cfg.Locations, cfg.Categories, cfg.NumSources = 6, 4, 8
	cfg.Horizon, cfg.T0, cfg.Scale = 160, 90, 0.3
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		log.Fatal(err)
	}

	tr, err := core.Train(d.World, d.Sources, d.T0, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Down-weight cost: at this toy scale every source's cost share is
	// large relative to its coverage contribution.
	future := []timeline.Tick{100, 120, 140}
	prob, err := core.NewProblem(tr, future, gain.Linear{Metric: gain.Coverage}, core.ProblemOptions{CostWeight: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	sel, err := prob.Solve(core.MaxSub, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d of %d sources\n", len(sel.Set), tr.NumCandidates())
	fmt.Printf("profit positive: %v\n", sel.Profit > 0)
	// Output:
	// selected 7 of 8 sources
	// profit positive: true
}
