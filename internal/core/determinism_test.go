package core

import (
	"reflect"
	"testing"

	"freshsource/internal/gain"
)

// TestSolveAccelerationInvariant pins the PR-level contract end to end on
// the real Profit oracle: every combination of Workers and Cache selects
// the same set with a bit-identical profit and the same oracle-call count
// as the default sequential run — for every algorithm, constrained or not.
func TestSolveAccelerationInvariant(t *testing.T) {
	d := getDataset(t)
	ticks := futureTicks(d)

	for _, variants := range []struct {
		name string
		divs []int
	}{
		{"unconstrained", nil},
		{"one-per-source", []int{2, 4}},
	} {
		tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{
			MaxT:         ticks[len(ticks)-1],
			FreqDivisors: variants.divs,
		})
		if err != nil {
			t.Fatal(err)
		}
		prob, err := NewProblem(tr, ticks, gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{Greedy, MaxSub, GRASP, LazyGreedy, Budgeted} {
			base, err := prob.Solve(alg, SolveOptions{Kappa: 3, Rounds: 4, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			for _, opt := range []SolveOptions{
				{Kappa: 3, Rounds: 4, Seed: 11, Workers: 4},
				{Kappa: 3, Rounds: 4, Seed: 11, Cache: true},
				{Kappa: 3, Rounds: 4, Seed: 11, Workers: 4, Cache: true},
			} {
				got, err := prob.Solve(alg, opt)
				if err != nil {
					t.Fatal(err)
				}
				label := string(alg) + "/" + variants.name
				if !reflect.DeepEqual(base.Set, got.Set) {
					t.Errorf("%s workers=%d cache=%v: set %v != %v", label, opt.Workers, opt.Cache, got.Set, base.Set)
				}
				if base.Profit != got.Profit {
					t.Errorf("%s workers=%d cache=%v: profit %v != %v (not bit-identical)",
						label, opt.Workers, opt.Cache, got.Profit, base.Profit)
				}
				if base.OracleCalls != got.OracleCalls {
					t.Errorf("%s workers=%d cache=%v: oracle calls %d != %d",
						label, opt.Workers, opt.Cache, got.OracleCalls, base.OracleCalls)
				}
			}
		}
	}

	// Lazy greedy on a submodular gain must reproduce Greedy's selection.
	tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{MaxT: ticks[len(ticks)-1]})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(tr, ticks, gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := prob.Solve(Greedy, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := prob.Solve(Greedy, SolveOptions{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Set, lazy.Set) {
		t.Errorf("lazy greedy set %v != greedy %v", lazy.Set, plain.Set)
	}
	if lazy.OracleCalls > plain.OracleCalls {
		t.Errorf("lazy greedy used more oracle calls (%d) than greedy (%d)", lazy.OracleCalls, plain.OracleCalls)
	}
}
