package core

// Training must be bit-reproducible run to run: the serving layer caches
// fitted models and promises byte-identical responses for identical
// requests, which only holds if refitting the same snapshot yields the
// exact same floats. This pins the two historical offenders (map-ordered
// point iteration and map-ordered cost accumulation).

import (
	"testing"

	"freshsource/internal/gain"
)

func TestTrainRunToRunDeterminism(t *testing.T) {
	d := getDataset(t)
	ticks := futureTicks(d)
	var quals, costs, gains []float64
	for rep := 0; rep < 6; rep++ {
		tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{MaxT: ticks[len(ticks)-1]})
		if err != nil {
			t.Fatal(err)
		}
		quals = append(quals, tr.Est.Quality([]int{0, 3, 5}, ticks[2]).Coverage)
		costs = append(costs, tr.Cost.Cost(3)/tr.Cost.Total())
		p, err := NewProblem(tr, ticks, gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gains = append(gains, p.Profit().GainOnly([]int{0, 3, 5}))
	}
	for i := 1; i < len(quals); i++ {
		if quals[i] != quals[0] {
			t.Errorf("quality rep %d: %.17g != %.17g", i, quals[i], quals[0])
		}
		if costs[i] != costs[0] {
			t.Errorf("cost rep %d: %.17g != %.17g", i, costs[i], costs[0])
		}
		if gains[i] != gains[0] {
			t.Errorf("gain rep %d: %.17g != %.17g", i, gains[i], gains[0])
		}
	}
}
