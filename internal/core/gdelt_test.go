package core

import (
	"testing"

	"freshsource/internal/dataset"
	"freshsource/internal/gain"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// gdeltFixture builds a small accumulate-only corpus (no disappearances,
// GDELT-style) once per test binary.
var gdeltDS *dataset.Dataset

func getGDELT(t *testing.T) *dataset.Dataset {
	t.Helper()
	if gdeltDS != nil {
		return gdeltDS
	}
	cfg := dataset.DefaultGDELTConfig()
	cfg.Locations = 8
	cfg.EventTypes = 5
	cfg.NumSources = 30
	cfg.Scale = 0.5
	d, err := dataset.GenerateGDELT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gdeltDS = d
	return d
}

// TestAccumulateOnlyDomainSelection exercises the γd = 0 regime: events
// never disappear, so E[|Ω|t] grows linearly and deletions never occur.
func TestAccumulateOnlyDomainSelection(t *testing.T) {
	d := getGDELT(t)
	var ticks []timeline.Tick
	for tk := d.T0 + 1; tk < d.Horizon(); tk++ {
		ticks = append(ticks, tk)
	}
	tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{MaxT: ticks[len(ticks)-1]})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(tr, ticks, gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Greedy, MaxSub, LazyGreedy} {
		sel, err := prob.Solve(alg, SolveOptions{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(sel.Set) == 0 {
			t.Errorf("%s selected nothing", alg)
		}
		if sel.AvgCoverage <= 0 || sel.AvgCoverage > 1 {
			t.Errorf("%s coverage = %v", alg, sel.AvgCoverage)
		}
	}
}

// TestRestrictedGDELTSelection mirrors Table 3/5: selection for the
// dominant location only.
func TestRestrictedGDELTSelection(t *testing.T) {
	d := getGDELT(t)
	var pts []world.DomainPoint
	for _, p := range d.World.Points() {
		if p.Location == 0 {
			pts = append(pts, p)
		}
	}
	var ticks []timeline.Tick
	for tk := d.T0 + 1; tk < d.Horizon(); tk++ {
		ticks = append(ticks, tk)
	}
	tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{Points: pts, MaxT: ticks[len(ticks)-1]})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(tr, ticks, gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := prob.Solve(MaxSub, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Selected sources must all cover the queried location.
	for _, i := range sel.Set {
		src := d.Sources[tr.CandidateSource(i)]
		covers := false
		for _, p := range src.Spec().Points {
			if p.Location == 0 {
				covers = true
				break
			}
		}
		if !covers {
			t.Errorf("selected %s does not cover the queried location", src.Name())
		}
	}
}

// TestCombinedSlicesAndFrequencies exercises the paper's note that slice
// selection "can be easily extended to identify optimal update frequencies
// as well": micro-source candidates with frequency variants under the
// one-version-per-slice matroid.
func TestCombinedSlicesAndFrequencies(t *testing.T) {
	d := getDataset(t) // the BL fixture from core_test.go
	plus, err := d.AddMicroSources(2, 17)
	if err != nil {
		t.Fatal(err)
	}
	micro := plus.Sources[len(d.Sources):] // select among slices only
	ticks := futureTicks(d)
	tr, err := Train(d.World, micro, d.T0, TrainOptions{
		MaxT:         ticks[len(ticks)-1],
		FreqDivisors: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumCandidates() != 3*len(micro) {
		t.Fatalf("candidates = %d, want %d", tr.NumCandidates(), 3*len(micro))
	}
	prob, err := NewProblem(tr, ticks, gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := prob.Solve(MaxSub, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One frequency version per micro-source.
	seen := map[int]bool{}
	for _, i := range sel.Set {
		s := tr.CandidateSource(i)
		if seen[s] {
			t.Fatalf("two versions of slice %d selected", s)
		}
		seen[s] = true
	}
	if len(sel.Set) == 0 {
		t.Error("nothing selected")
	}
}
