package core

import (
	"math"
	"testing"

	"freshsource/internal/gain"
)

func TestLazyGreedyMatchesGreedyEndToEnd(t *testing.T) {
	// On the coverage objective (monotone submodular minus additive cost)
	// lazy greedy must match greedy's profit with fewer oracle calls.
	d := getDataset(t)
	tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prob, err := NewProblem(tr, futureTicks(d), gain.Linear{Metric: gain.Coverage}, ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := prob.Solve(Greedy, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := prob.Solve(LazyGreedy, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Profit-l.Profit) > 1e-9 {
		t.Errorf("lazy profit %v != greedy %v", l.Profit, g.Profit)
	}
	if l.OracleCalls > g.OracleCalls {
		t.Errorf("lazy used more calls (%d) than greedy (%d)", l.OracleCalls, g.OracleCalls)
	}

	// The speculative-CELF plumbing (SolveOptions.SpecStride, the CLI's
	// -celf.spec): concurrent batched re-evaluation must select the same
	// set at the same profit, spending at most the speculation margin in
	// extra calls — never fewer than the purely lazy run.
	s, err := prob.Solve(LazyGreedy, SolveOptions{Workers: 4, SpecStride: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Profit-l.Profit) > 0 {
		t.Errorf("speculative profit %v != lazy %v (not bit-identical)", s.Profit, l.Profit)
	}
	if len(s.Set) != len(l.Set) {
		t.Errorf("speculative set %v != lazy %v", s.Set, l.Set)
	}
	for i := range s.Set {
		if s.Set[i] != l.Set[i] {
			t.Errorf("speculative set %v != lazy %v", s.Set, l.Set)
			break
		}
	}
	if s.OracleCalls < l.OracleCalls {
		t.Errorf("speculative run used fewer calls (%d) than purely lazy (%d)", s.OracleCalls, l.OracleCalls)
	}
}

func TestBudgetedSolveUnderTightBudget(t *testing.T) {
	d := getDataset(t)
	tr, err := Train(d.World, d.Sources, d.T0, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 0.15
	prob, err := NewProblem(tr, futureTicks(d), gain.Linear{Metric: gain.Coverage}, ProblemOptions{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	b, err := prob.Solve(Budgeted, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cost := tr.Cost.SetCost(b.Set) / tr.Cost.Total(); cost > budget+1e-9 {
		t.Errorf("budget violated: %v", cost)
	}
	if len(b.Set) == 0 {
		t.Error("budgeted greedy selected nothing")
	}
	// Cost-benefit greedy should match or beat plain greedy under a tight
	// budget on this family of instances; at minimum it must not be
	// drastically worse.
	g, err := prob.Solve(Greedy, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Profit < g.Profit-0.05 {
		t.Errorf("budgeted profit %v far below greedy %v", b.Profit, g.Profit)
	}
}
