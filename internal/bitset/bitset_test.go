package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Count() != 0 {
		t.Fatalf("new set count = %d, want 0", s.Count())
	}
	if s.Any() {
		t.Fatal("new set should not be Any")
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		s.Add(i)
	}
	for _, i := range idx {
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if s.Count() != len(idx) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(idx))
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) = true after Remove")
	}
	if s.Count() != len(idx)-1 {
		t.Fatalf("Count = %d, want %d", s.Count(), len(idx)-1)
	}
	// Double add is idempotent.
	s.Add(0)
	if s.Count() != len(idx)-1 {
		t.Fatalf("double add changed count: %d", s.Count())
	}
	// Removing an absent element is a no-op.
	s.Remove(2)
	if s.Count() != len(idx)-1 {
		t.Fatalf("removing absent element changed count: %d", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, fn := range []func(s *Set){
		func(s *Set) { s.Add(-1) },
		func(s *Set) { s.Add(10) },
		func(s *Set) { s.Remove(10) },
		func(s *Set) { s.Contains(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range index")
				}
			}()
			fn(New(10))
		}()
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for universe mismatch")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(200, []int{1, 5, 70, 130, 199})
	b := FromIndices(200, []int{5, 6, 130, 150})

	u := Union(a, b)
	want := FromIndices(200, []int{1, 5, 6, 70, 130, 150, 199})
	if !u.Equal(want) {
		t.Errorf("Union = %v, want %v", u, want)
	}
	if got := UnionCount(a, b); got != want.Count() {
		t.Errorf("UnionCount = %d, want %d", got, want.Count())
	}

	i := Intersect(a, b)
	wantI := FromIndices(200, []int{5, 130})
	if !i.Equal(wantI) {
		t.Errorf("Intersect = %v, want %v", i, wantI)
	}
	if got := IntersectCount(a, b); got != 2 {
		t.Errorf("IntersectCount = %d, want 2", got)
	}

	d := Difference(a, b)
	wantD := FromIndices(200, []int{1, 70, 199})
	if !d.Equal(wantD) {
		t.Errorf("Difference = %v, want %v", d, wantD)
	}
}

func TestUnionAll(t *testing.T) {
	a := FromIndices(64, []int{1})
	b := FromIndices(64, []int{2})
	c := FromIndices(64, []int{63})
	u := UnionAll(a, b, c)
	if !u.Equal(FromIndices(64, []int{1, 2, 63})) {
		t.Errorf("UnionAll = %v", u)
	}
	// operands unchanged
	if a.Count() != 1 || b.Count() != 1 || c.Count() != 1 {
		t.Error("UnionAll mutated an operand")
	}
}

func TestSubset(t *testing.T) {
	a := FromIndices(100, []int{3, 50})
	b := FromIndices(100, []int{3, 50, 99})
	if !a.IsSubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.IsSubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.IsSubsetOf(a) {
		t.Error("a should be subset of itself")
	}
}

func TestForEachAndIndices(t *testing.T) {
	in := []int{0, 63, 64, 99}
	s := FromIndices(100, in)
	got := s.Indices()
	if len(got) != len(in) {
		t.Fatalf("Indices len = %d, want %d", len(got), len(in))
	}
	for k, v := range in {
		if got[k] != v {
			t.Errorf("Indices[%d] = %d, want %d", k, got[k], v)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(64, []int{1, 2})
	b := a.Clone()
	b.Add(3)
	if a.Contains(3) {
		t.Error("Clone shares storage with original")
	}
}

func TestClear(t *testing.T) {
	a := FromIndices(64, []int{1, 2, 3})
	a.Clear()
	if a.Any() {
		t.Error("set not empty after Clear")
	}
}

func TestString(t *testing.T) {
	s := FromIndices(64, []int{2, 5})
	if got := s.String(); got != "{2, 5}" {
		t.Errorf("String = %q", got)
	}
	if got := New(8).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// randSet builds a random subset of a fixed universe from quick-generated data.
func randSet(r *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSet(r, 257), randSet(r, 257)
		return Union(a, b).Equal(Union(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randSet(r, 129), randSet(r, 129), randSet(r, 129)
		return Union(Union(a, b), c).Equal(Union(a, Union(b, c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |a ∪ b| + |a ∩ b| == |a| + |b|
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSet(r, 511), randSet(r, 511)
		return UnionCount(a, b)+IntersectCount(a, b) == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDifferencePartition(t *testing.T) {
	// a = (a\b) ⊎ (a∩b)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSet(r, 300), randSet(r, 300)
		d, i := Difference(a, b), Intersect(a, b)
		if IntersectCount(d, i) != 0 {
			return false
		}
		return Union(d, i).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCountMatchesIndices(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randSet(r, 123)
		return a.Count() == len(a.Indices())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randSet(r, 1<<16), randSet(r, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnionCount(x, y)
	}
}

func TestIntersectAndNotCount(t *testing.T) {
	a := FromIndices(10, []int{0, 1, 2, 3, 4})
	b := FromIndices(10, []int{1, 2, 3, 9})
	c := FromIndices(10, []int{2, 5})
	// a ∩ b = {1,2,3}; minus c = {1,3}.
	if got := IntersectAndNotCount(a, b, c); got != 2 {
		t.Errorf("IntersectAndNotCount = %d, want 2", got)
	}
	if got := IntersectAndNotCount(a, b, New(10)); got != 3 {
		t.Errorf("against empty c = %d, want 3", got)
	}
}

// TestUnrolledKernelTails sweeps universe sizes straddling the 4-word
// unroll boundary of the count kernels — word counts ≡ 0..3 (mod 4) plus
// the empty set — so the unrolled body and the remainder loop are each
// verified against a reference computed via the materializing set ops.
func TestUnrolledKernelTails(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sizes := []int{0, 1, 63, 64, 65, 127, 128, 129, 191, 192, 193,
		255, 256, 257, 319, 320, 321, 511, 512, 513}
	for _, n := range sizes {
		for trial := 0; trial < 4; trial++ {
			a, b, c := randSet(r, n), randSet(r, n), randSet(r, n)
			if got, want := IntersectCount(a, b), Intersect(a, b).Count(); got != want {
				t.Errorf("n=%d: IntersectCount = %d, want %d", n, got, want)
			}
			got := IntersectAndNotCount(a, b, c)
			if want := Difference(Intersect(a, b), c).Count(); got != want {
				t.Errorf("n=%d: IntersectAndNotCount = %d, want %d", n, got, want)
			}
		}
	}
}

func TestQuickIntersectAndNotCount(t *testing.T) {
	// Kernel count = |a ∩ b \ c| materialised the slow way.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randSet(r, 257), randSet(r, 257), randSet(r, 257)
		want := Difference(Intersect(a, b), c).Count()
		return IntersectAndNotCount(a, b, c) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersectAndNotCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y, z := randSet(r, 1<<16), randSet(r, 1<<16), randSet(r, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectAndNotCount(x, y, z)
	}
}

func TestWordsFromWordsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, n := range []int{1, 63, 64, 65, 257} {
			s := randSet(r, n)
			if !FromWords(n, s.Words()).Equal(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromWordsMasksTailBits(t *testing.T) {
	// A corrupted word with bits beyond the universe must not leak into
	// set membership or counts.
	s := FromWords(10, []uint64{^uint64(0)})
	if got := s.Count(); got != 10 {
		t.Errorf("Count = %d, want 10", got)
	}
	for i := 0; i < 10; i++ {
		if !s.Contains(i) {
			t.Errorf("missing %d", i)
		}
	}
}

func TestFromWordsWordCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on word-count mismatch")
		}
	}()
	FromWords(65, []uint64{0})
}
