// Package bitset implements dense, fixed-universe bit arrays with the set
// algebra needed by the signature machinery of Section 4.2.1 of the paper:
// per-source signatures B, Bcov and Bup are bitsets over the entity
// universe, and the content of an integration result under union semantics
// is computed with bitwise OR and popcount.
//
// The implementation is deliberately simple and allocation-conscious: a Set
// is a slice of 64-bit words plus the universe size. All binary operations
// require operands with the same universe and panic otherwise; signatures
// for one data domain are always built with a common universe, so a size
// mismatch is a programming error rather than a recoverable condition.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-size bit array over the universe {0, …, Len()-1}.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over a universe of n elements.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set over a universe of n elements containing
// exactly the given indices.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// Len returns the universe size.
func (s *Set) Len() int { return s.n }

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	t := New(s.n)
	copy(t.words, s.words)
	return t
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith adds every element of t to s (s |= t).
func (s *Set) UnionWith(t *Set) {
	s.sameUniverse(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in t (s &= t).
func (s *Set) IntersectWith(t *Set) {
	s.sameUniverse(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes every element of t from s (s &^= t).
func (s *Set) DifferenceWith(t *Set) {
	s.sameUniverse(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Union returns a new set holding s ∪ t.
func Union(s, t *Set) *Set {
	u := s.Clone()
	u.UnionWith(t)
	return u
}

// Intersect returns a new set holding s ∩ t.
func Intersect(s, t *Set) *Set {
	u := s.Clone()
	u.IntersectWith(t)
	return u
}

// Difference returns a new set holding s \ t.
func Difference(s, t *Set) *Set {
	u := s.Clone()
	u.DifferenceWith(t)
	return u
}

// UnionAll returns the union of all given sets. It panics if sets is empty.
func UnionAll(sets ...*Set) *Set {
	if len(sets) == 0 {
		panic("bitset: UnionAll of no sets")
	}
	u := sets[0].Clone()
	for _, t := range sets[1:] {
		u.UnionWith(t)
	}
	return u
}

// UnionCount returns |s ∪ t| without materialising the union.
func UnionCount(s, t *Set) int {
	s.sameUniverse(t)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w | t.words[i])
	}
	return c
}

// IntersectCount returns |s ∩ t| without materialising the intersection.
// The loop is 4-way unrolled: four independent popcount chains keep the
// CPU's popcount unit busy instead of serialising on one accumulator.
func IntersectCount(s, t *Set) int {
	s.sameUniverse(t)
	sw, tw := s.words, t.words
	var c0, c1, c2, c3 int
	i := 0
	for ; i+4 <= len(sw); i += 4 {
		c0 += bits.OnesCount64(sw[i] & tw[i])
		c1 += bits.OnesCount64(sw[i+1] & tw[i+1])
		c2 += bits.OnesCount64(sw[i+2] & tw[i+2])
		c3 += bits.OnesCount64(sw[i+3] & tw[i+3])
	}
	for ; i < len(sw); i++ {
		c0 += bits.OnesCount64(sw[i] & tw[i])
	}
	return c0 + c1 + c2 + c3
}

// IntersectAndNotCount returns |a ∩ b \ c| without materialising any
// intermediate set — a single fused pass of popcount(a ∧ b ∧ ¬c) per word.
// It is the kernel of the incremental quality estimators: the number of
// entities a candidate signature a contributes to a domain mask b beyond an
// already-unioned signature c. Like IntersectCount the pass is 4-way
// unrolled with independent accumulators.
func IntersectAndNotCount(a, b, c *Set) int {
	a.sameUniverse(b)
	a.sameUniverse(c)
	aw, bw, cw := a.words, b.words, c.words
	var n0, n1, n2, n3 int
	i := 0
	for ; i+4 <= len(aw); i += 4 {
		n0 += bits.OnesCount64(aw[i] & bw[i] &^ cw[i])
		n1 += bits.OnesCount64(aw[i+1] & bw[i+1] &^ cw[i+1])
		n2 += bits.OnesCount64(aw[i+2] & bw[i+2] &^ cw[i+2])
		n3 += bits.OnesCount64(aw[i+3] & bw[i+3] &^ cw[i+3])
	}
	for ; i < len(aw); i++ {
		n0 += bits.OnesCount64(aw[i] & bw[i] &^ cw[i])
	}
	return n0 + n1 + n2 + n3
}

// Words returns a copy of the set's 64-bit backing words, least-significant
// bit first — the wire form used by the persistent model cache.
func (s *Set) Words() []uint64 {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	return out
}

// FromWords reconstructs a set over a universe of n elements from backing
// words previously obtained via Words. The word count must match the
// universe; bits beyond n are cleared, so a round trip through
// Words/FromWords is exact.
func FromWords(n int, words []uint64) *Set {
	s := New(n)
	if len(words) != len(s.words) {
		panic(fmt.Sprintf("bitset: %d words for universe %d (want %d)", len(words), n, len(s.words)))
	}
	copy(s.words, words)
	if n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(n) % wordBits)) - 1
	}
	return s
}

// Equal reports whether s and t contain the same elements over the same
// universe.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// IsSubsetOf reports whether every element of s is in t.
func (s *Set) IsSubsetOf(t *Set) bool {
	s.sameUniverse(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Any reports whether the set is non-empty.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every element of the set in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Indices returns the elements of the set in increasing order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{i1, i2, …}" (for debugging and tests).
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
		first = false
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) sameUniverse(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d != %d", s.n, t.n))
	}
}
