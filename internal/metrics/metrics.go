// Package metrics computes the ground-truth time-dependent quality of
// sources and integration results (Section 3 of the paper): the entries of
// a source or fused result at a tick are partitioned into up-to-date,
// out-of-date and non-deleted entries by comparison with the world, and the
// partition yields coverage (Eq. 1), local freshness (Eq. 2), global
// freshness (Eq. 3) and accuracy (Eq. 4–5).
//
// Integration follows the union semantics of Section 2.3: an entity is in
// the integration result when at least one selected source has inserted it
// and no selected source has captured its disappearance; conflicting
// references are resolved in favour of the most recent one (the highest
// captured version). A captured deletion is treated as permanent — the
// paper's deletion estimator (Eq. 10) counts a disappearance as captured by
// the set when any mentioning source captures it.
package metrics

import (
	"sort"

	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// Counts is the Up / Out / NDel partition of an integration result at a
// tick (Section 3).
type Counts struct {
	// Up counts entries that exist in the world and whose latest world
	// version is reflected.
	Up int
	// Out counts entries that exist in the world but whose latest value
	// changes are missing.
	Out int
	// NDel counts entries whose entity has disappeared from the world.
	NDel int
}

// Total returns the size of the integration result |F(SI)|.
func (c Counts) Total() int { return c.Up + c.Out + c.NDel }

// Quality is the full quality vector of an integration result at a tick.
type Quality struct {
	Counts
	// WorldSize is |Ω|t for the queried subdomain.
	WorldSize int
	// Coverage is Eq. 1: (Up+Out)/|Ω|t.
	Coverage float64
	// LocalFreshness is Eq. 2: Up/|F|.
	LocalFreshness float64
	// GlobalFreshness is Eq. 3: Up/|Ω|t.
	GlobalFreshness float64
	// Accuracy is Eq. 4: Up/|F ∪ Ω|t.
	Accuracy float64
}

func qualityFrom(c Counts, worldSize int) Quality {
	q := Quality{Counts: c, WorldSize: worldSize}
	if worldSize > 0 {
		q.Coverage = float64(c.Up+c.Out) / float64(worldSize)
		q.GlobalFreshness = float64(c.Up) / float64(worldSize)
	}
	if t := c.Total(); t > 0 {
		q.LocalFreshness = float64(c.Up) / float64(t)
	}
	// |F ∪ Ω| = |F| + |Ω| − |F ∩ Ω| = |F| + |Ω| − (Up+Out).
	if denom := c.Total() + worldSize - (c.Up + c.Out); denom > 0 {
		q.Accuracy = float64(c.Up) / float64(denom)
	}
	return q
}

// AccuracyFromComponents computes accuracy from coverage and the freshness
// pair via Eq. 5 of the paper; it is used by the estimators, and tested
// against the direct Eq. 4 computation.
func AccuracyFromComponents(cov, lf, gf float64) float64 {
	if lf <= 0 || gf <= 0 {
		return 0
	}
	denom := 1 - cov + gf/lf
	if denom <= 0 {
		return 0
	}
	return gf / denom
}

// Fusion is an incremental union-semantics view over a set of sources,
// swept forward in time. It merges the capture logs of the selected sources
// and maintains, per entity: the highest captured version, whether the
// entity has been inserted, and whether any source captured its deletion.
type Fusion struct {
	w      *world.World
	events []timeline.Event
	pos    int
	now    timeline.Tick

	version  map[timeline.EntityID]int
	inserted map[timeline.EntityID]bool
	deleted  map[timeline.EntityID]bool
	inPts    func(world.DomainPoint) bool
}

// NewFusion builds a fusion over the given sources, restricted to the given
// domain points (nil means the whole domain). The fusion starts before tick
// 0; call AdvanceTo to move it forward.
func NewFusion(w *world.World, srcs []*source.Source, pts []world.DomainPoint) *Fusion {
	f := &Fusion{
		w:        w,
		now:      -1,
		version:  make(map[timeline.EntityID]int),
		inserted: make(map[timeline.EntityID]bool),
		deleted:  make(map[timeline.EntityID]bool),
		inPts:    pointFilter(pts),
	}
	total := 0
	for _, s := range srcs {
		total += s.Log().Len()
	}
	f.events = make([]timeline.Event, 0, total)
	for _, s := range srcs {
		for _, e := range s.Log().Events() {
			if f.inPts(w.Entity(e.Entity).Point) {
				f.events = append(f.events, e)
			}
		}
	}
	sort.Slice(f.events, func(i, j int) bool { return f.events[i].At < f.events[j].At })
	return f
}

func pointFilter(pts []world.DomainPoint) func(world.DomainPoint) bool {
	if pts == nil {
		return func(world.DomainPoint) bool { return true }
	}
	set := make(map[world.DomainPoint]bool, len(pts))
	for _, p := range pts {
		set[p] = true
	}
	return func(p world.DomainPoint) bool { return set[p] }
}

// AdvanceTo applies all captured events with At ≤ t. It panics when moving
// backwards.
func (f *Fusion) AdvanceTo(t timeline.Tick) {
	if t < f.now {
		panic("metrics: fusion moved backwards")
	}
	for f.pos < len(f.events) && f.events[f.pos].At <= t {
		e := f.events[f.pos]
		f.pos++
		switch e.Kind {
		case timeline.Appear, timeline.Update:
			f.inserted[e.Entity] = true
			if e.Version > f.version[e.Entity] {
				f.version[e.Entity] = e.Version
			}
		case timeline.Disappear:
			f.deleted[e.Entity] = true
		}
	}
	f.now = t
}

// Counts classifies the fusion's content against the world at the fusion's
// current tick.
func (f *Fusion) Counts() Counts {
	var c Counts
	t := f.now
	for id := range f.inserted {
		if f.deleted[id] {
			continue
		}
		e := f.w.Entity(id)
		wv, alive := e.VersionAt(t)
		switch {
		case !alive:
			c.NDel++
		case f.version[id] >= wv:
			c.Up++
		default:
			c.Out++
		}
	}
	return c
}

// Contains reports whether the entity is in the integration result at the
// fusion's current tick.
func (f *Fusion) Contains(id timeline.EntityID) bool {
	return f.inserted[id] && !f.deleted[id]
}

// Now returns the fusion's current tick.
func (f *Fusion) Now() timeline.Tick { return f.now }

// QualityAt computes the full quality vector of integrating srcs at tick t,
// restricted to pts (nil = whole domain). For repeated evaluation over many
// ticks use QualitySeries, which sweeps incrementally.
func QualityAt(w *world.World, srcs []*source.Source, t timeline.Tick, pts []world.DomainPoint) Quality {
	f := NewFusion(w, srcs, pts)
	f.AdvanceTo(t)
	return qualityFrom(f.Counts(), aliveCount(w, t, pts))
}

// QualitySeries computes the quality vector at each tick of ticks
// (which must be non-decreasing), sweeping the fusion forward once.
func QualitySeries(w *world.World, srcs []*source.Source, ticks []timeline.Tick, pts []world.DomainPoint) []Quality {
	f := NewFusion(w, srcs, pts)
	out := make([]Quality, len(ticks))
	for i, t := range ticks {
		f.AdvanceTo(t)
		out[i] = qualityFrom(f.Counts(), aliveCount(w, t, pts))
	}
	return out
}

func aliveCount(w *world.World, t timeline.Tick, pts []world.DomainPoint) int {
	return w.AliveCount(t, pts)
}

// Ticks returns the inclusive integer range [lo, hi] as a tick slice —
// a convenience for building timeline series.
func Ticks(lo, hi timeline.Tick) []timeline.Tick {
	if hi < lo {
		return nil
	}
	out := make([]timeline.Tick, 0, int(hi-lo)+1)
	for t := lo; t <= hi; t++ {
		out = append(out, t)
	}
	return out
}

// AverageFreshness returns the mean local freshness of a single source over
// the ticks — the y-axis of Figure 1(a).
func AverageFreshness(w *world.World, s *source.Source, ticks []timeline.Tick) float64 {
	qs := QualitySeries(w, []*source.Source{s}, ticks, nil)
	var sum float64
	for _, q := range qs {
		sum += q.LocalFreshness
	}
	if len(qs) == 0 {
		return 0
	}
	return sum / float64(len(qs))
}

// DelayStats summarises how timely a source reports appearances — the axes
// of Figure 1(d): the average delay of delayed items (in ticks) and the
// fraction of captured items that were delayed (reported one tick or more
// after occurrence).
type DelayStats struct {
	AvgDelay        float64
	FractionDelayed float64
	Captured        int
}

// InsertionDelayStats computes DelayStats for a source from its capture log
// and the world's ground truth.
func InsertionDelayStats(w *world.World, s *source.Source) DelayStats {
	var delayed, captured int
	var sumDelay float64
	for _, e := range s.Log().Events() {
		if e.Kind != timeline.Appear {
			continue
		}
		captured++
		d := e.At - w.Entity(e.Entity).Born
		if d >= 1 {
			delayed++
			sumDelay += float64(d)
		}
	}
	st := DelayStats{Captured: captured}
	if delayed > 0 {
		st.AvgDelay = sumDelay / float64(delayed)
	}
	if captured > 0 {
		st.FractionDelayed = float64(delayed) / float64(captured)
	}
	return st
}
