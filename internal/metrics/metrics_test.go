package metrics

import (
	"math"
	"testing"

	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

func testWorld(t *testing.T) *world.World {
	t.Helper()
	w, err := world.Generate(world.Config{
		Subdomains: []world.SubdomainSpec{
			{Point: world.DomainPoint{Location: 0, Category: 0}, InitialEntities: 400, LambdaAppear: 2, GammaDisappear: 0.01, GammaUpdate: 0.03},
			{Point: world.DomainPoint{Location: 1, Category: 0}, InitialEntities: 300, LambdaAppear: 1.5, GammaDisappear: 0.015, GammaUpdate: 0.02},
		},
		Horizon: 250,
		Seed:    21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func mustObserve(t *testing.T, w *world.World, id source.ID, spec source.Spec, seed int64) *source.Source {
	t.Helper()
	s, err := source.Observe(w, id, spec, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func perfect(pts []world.DomainPoint) source.Spec {
	return source.Spec{
		Name:           "perfect",
		UpdateInterval: 1,
		Points:         pts,
		Insert:         source.CaptureSpec{Prob: 1, Delay: source.ConstantDelay{D: 0}},
		Delete:         source.CaptureSpec{Prob: 1, Delay: source.ConstantDelay{D: 0}},
		Update:         source.CaptureSpec{Prob: 1, Delay: source.ConstantDelay{D: 0}},
	}
}

func TestPerfectSourceHasPerfectQuality(t *testing.T) {
	w := testWorld(t)
	s := mustObserve(t, w, 0, perfect(w.Points()), 1)
	for _, at := range []timeline.Tick{0, 50, 249} {
		q := QualityAt(w, []*source.Source{s}, at, nil)
		if q.Coverage != 1 || q.LocalFreshness != 1 || q.GlobalFreshness != 1 || q.Accuracy != 1 {
			t.Errorf("tick %d: perfect source quality = %+v", at, q)
		}
		if q.Out != 0 || q.NDel != 0 {
			t.Errorf("tick %d: perfect source has Out=%d NDel=%d", at, q.Out, q.NDel)
		}
		if q.Up != w.AliveCount(at, nil) {
			t.Errorf("tick %d: Up=%d, world=%d", at, q.Up, w.AliveCount(at, nil))
		}
	}
}

func TestEmptySourceSetQuality(t *testing.T) {
	w := testWorld(t)
	q := QualityAt(w, nil, 100, nil)
	if q.Coverage != 0 || q.Total() != 0 || q.Accuracy != 0 {
		t.Errorf("empty set quality = %+v", q)
	}
}

func TestStaleSourceAccumulatesNDel(t *testing.T) {
	w := testWorld(t)
	spec := perfect(w.Points())
	spec.Delete.Prob = 0
	s := mustObserve(t, w, 0, spec, 2)
	at := w.Horizon() - 1
	q := QualityAt(w, []*source.Source{s}, at, nil)
	if q.NDel == 0 {
		t.Error("expected non-deleted entries")
	}
	if q.LocalFreshness >= 1 {
		t.Error("local freshness should drop below 1 with stale entries")
	}
	// Coverage only counts world-alive entities, so it stays 1.
	if q.Coverage != 1 {
		t.Errorf("coverage = %v, want 1", q.Coverage)
	}
}

func TestLaggySourceHasOutOfDate(t *testing.T) {
	w := testWorld(t)
	spec := perfect(w.Points())
	spec.Update.Prob = 0.3
	s := mustObserve(t, w, 0, spec, 3)
	q := QualityAt(w, []*source.Source{s}, w.Horizon()-1, nil)
	if q.Out == 0 {
		t.Error("expected out-of-date entries with missed updates")
	}
	if q.GlobalFreshness >= q.Coverage {
		t.Error("GF must be below coverage when entries are stale")
	}
}

func TestUnionImprovesCoverage(t *testing.T) {
	w := testWorld(t)
	spec1 := perfect(w.Points())
	spec1.Insert.Prob = 0.5
	spec2 := perfect(w.Points())
	spec2.Insert.Prob = 0.5
	s1 := mustObserve(t, w, 0, spec1, 4)
	s2 := mustObserve(t, w, 1, spec2, 5)
	at := timeline.Tick(200)
	q1 := QualityAt(w, []*source.Source{s1}, at, nil)
	q2 := QualityAt(w, []*source.Source{s2}, at, nil)
	q12 := QualityAt(w, []*source.Source{s1, s2}, at, nil)
	if q12.Coverage <= q1.Coverage || q12.Coverage <= q2.Coverage {
		t.Errorf("union coverage %v not above singletons %v, %v", q12.Coverage, q1.Coverage, q2.Coverage)
	}
	// Rough independence check: 1-(1-p)² ≈ 0.75.
	if math.Abs(q12.Coverage-0.75) > 0.05 {
		t.Errorf("union coverage = %v, want ≈ 0.75", q12.Coverage)
	}
}

func TestDeletionPropagatesAcrossSources(t *testing.T) {
	w := testWorld(t)
	// Source A never deletes; source B captures deletions promptly.
	specA := perfect(w.Points())
	specA.Delete.Prob = 0
	specB := perfect(w.Points())
	sA := mustObserve(t, w, 0, specA, 6)
	sB := mustObserve(t, w, 1, specB, 7)
	at := w.Horizon() - 1
	qA := QualityAt(w, []*source.Source{sA}, at, nil)
	qAB := QualityAt(w, []*source.Source{sA, sB}, at, nil)
	if qA.NDel == 0 {
		t.Fatal("precondition: A alone must have stale entries")
	}
	if qAB.NDel != 0 {
		t.Errorf("B's deletions must clean the union, NDel = %d", qAB.NDel)
	}
}

func TestConflictResolutionTakesNewestVersion(t *testing.T) {
	w := testWorld(t)
	fresh := perfect(w.Points())
	stale := perfect(w.Points())
	stale.Update.Prob = 0
	sFresh := mustObserve(t, w, 0, fresh, 8)
	sStale := mustObserve(t, w, 1, stale, 9)
	at := w.Horizon() - 1
	q := QualityAt(w, []*source.Source{sStale, sFresh}, at, nil)
	if q.Out != 0 {
		t.Errorf("union with a perfect source should have no out-of-date entries, got %d", q.Out)
	}
}

func TestQualitySeriesMatchesPointQueries(t *testing.T) {
	w := testWorld(t)
	spec := perfect(w.Points())
	spec.Insert.Prob = 0.8
	spec.Delete.Prob = 0.5
	spec.Update.Prob = 0.6
	s := mustObserve(t, w, 0, spec, 10)
	ticks := []timeline.Tick{10, 60, 110, 200}
	series := QualitySeries(w, []*source.Source{s}, ticks, nil)
	for i, at := range ticks {
		pt := QualityAt(w, []*source.Source{s}, at, nil)
		if series[i] != pt {
			t.Errorf("series[%d] = %+v, point query = %+v", i, series[i], pt)
		}
	}
}

func TestDomainRestriction(t *testing.T) {
	w := testWorld(t)
	p0 := world.DomainPoint{Location: 0, Category: 0}
	p1 := world.DomainPoint{Location: 1, Category: 0}
	s := mustObserve(t, w, 0, perfect(w.Points()), 11)
	at := timeline.Tick(100)
	q0 := QualityAt(w, []*source.Source{s}, at, []world.DomainPoint{p0})
	q1 := QualityAt(w, []*source.Source{s}, at, []world.DomainPoint{p1})
	qAll := QualityAt(w, []*source.Source{s}, at, nil)
	if q0.Up+q1.Up != qAll.Up {
		t.Errorf("restricted Up %d+%d != total %d", q0.Up, q1.Up, qAll.Up)
	}
	if q0.WorldSize+q1.WorldSize != qAll.WorldSize {
		t.Error("restricted world sizes don't sum")
	}
}

func TestAccuracyEquationFiveConsistency(t *testing.T) {
	// Eq. 5 must agree with the direct Eq. 4 computation.
	w := testWorld(t)
	spec := perfect(w.Points())
	spec.Insert.Prob = 0.7
	spec.Update.Prob = 0.4
	spec.Delete.Prob = 0.2
	s := mustObserve(t, w, 0, spec, 12)
	for _, at := range []timeline.Tick{50, 150, 249} {
		q := QualityAt(w, []*source.Source{s}, at, nil)
		viaEq5 := AccuracyFromComponents(q.Coverage, q.LocalFreshness, q.GlobalFreshness)
		if math.Abs(viaEq5-q.Accuracy) > 1e-9 {
			t.Errorf("tick %d: Eq5 accuracy %v != direct %v", at, viaEq5, q.Accuracy)
		}
	}
}

func TestAccuracyFromComponentsEdgeCases(t *testing.T) {
	if AccuracyFromComponents(0.5, 0, 0) != 0 {
		t.Error("zero freshness should give zero accuracy")
	}
	if got := AccuracyFromComponents(1, 1, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect components give accuracy %v", got)
	}
}

func TestCoverageMonotoneInSources(t *testing.T) {
	w := testWorld(t)
	var srcs []*source.Source
	for i := 0; i < 4; i++ {
		spec := perfect(w.Points())
		spec.Insert.Prob = 0.4
		srcs = append(srcs, mustObserve(t, w, source.ID(i), spec, int64(20+i)))
	}
	at := timeline.Tick(200)
	prev := -1.0
	for k := 1; k <= len(srcs); k++ {
		q := QualityAt(w, srcs[:k], at, nil)
		if q.Coverage < prev {
			t.Errorf("coverage decreased when adding source %d: %v < %v", k, q.Coverage, prev)
		}
		prev = q.Coverage
	}
}

func TestInsertionDelayStats(t *testing.T) {
	w := testWorld(t)
	spec := perfect(w.Points())
	spec.Insert.Delay = source.ConstantDelay{D: 2}
	s := mustObserve(t, w, 0, spec, 13)
	st := InsertionDelayStats(w, s)
	if st.Captured == 0 {
		t.Fatal("no captures")
	}
	// All entities born after tick 0 are delayed by exactly 2.
	if st.FractionDelayed == 0 {
		t.Error("expected delayed items")
	}
	if st.AvgDelay < 2 {
		t.Errorf("avg delay = %v, want >= 2", st.AvgDelay)
	}

	prompt := mustObserve(t, w, 1, perfect(w.Points()), 14)
	st2 := InsertionDelayStats(w, prompt)
	if st2.FractionDelayed != 0 || st2.AvgDelay != 0 {
		t.Errorf("prompt source delayed stats = %+v", st2)
	}
}

func TestTicksHelper(t *testing.T) {
	ts := Ticks(3, 6)
	if len(ts) != 4 || ts[0] != 3 || ts[3] != 6 {
		t.Errorf("Ticks = %v", ts)
	}
	if Ticks(5, 4) != nil {
		t.Error("reversed range should be nil")
	}
}

func TestAverageFreshness(t *testing.T) {
	w := testWorld(t)
	s := mustObserve(t, w, 0, perfect(w.Points()), 15)
	af := AverageFreshness(w, s, Ticks(0, 100))
	if math.Abs(af-1) > 1e-12 {
		t.Errorf("perfect source avg freshness = %v", af)
	}
	if AverageFreshness(w, s, nil) != 0 {
		t.Error("no ticks should give 0")
	}
}

func TestFusionBackwardsPanics(t *testing.T) {
	w := testWorld(t)
	s := mustObserve(t, w, 0, perfect(w.Points()), 16)
	f := NewFusion(w, []*source.Source{s}, nil)
	f.AdvanceTo(10)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f.AdvanceTo(5)
}
