package metrics

import (
	"testing"

	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

var benchFixture struct {
	w    *world.World
	srcs []*source.Source
}

func getBenchFixture(b *testing.B) (*world.World, []*source.Source) {
	b.Helper()
	if benchFixture.w != nil {
		return benchFixture.w, benchFixture.srcs
	}
	w, err := world.Generate(world.Config{
		Subdomains: []world.SubdomainSpec{
			{Point: world.DomainPoint{Location: 0, Category: 0}, InitialEntities: 3000, LambdaAppear: 8, GammaDisappear: 0.008, GammaUpdate: 0.02},
		},
		Horizon: 400,
		Seed:    7,
	})
	if err != nil {
		b.Fatal(err)
	}
	var srcs []*source.Source
	for i := 0; i < 10; i++ {
		s, err := source.Observe(w, source.ID(i), source.Spec{
			Name:           "b",
			UpdateInterval: 1,
			Points:         w.Points(),
			Insert:         source.CaptureSpec{Prob: 0.6, Delay: source.ExponentialDelay{Rate: 0.3}},
			Delete:         source.CaptureSpec{Prob: 0.5, Delay: source.ExponentialDelay{Rate: 0.2}},
			Update:         source.CaptureSpec{Prob: 0.5, Delay: source.ExponentialDelay{Rate: 0.2}},
		}, stats.NewRNG(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		srcs = append(srcs, s)
	}
	benchFixture.w, benchFixture.srcs = w, srcs
	return w, srcs
}

// BenchmarkQualitySeries measures the ground-truth sweep used by the
// figure experiments: a 10-source union over 40 sampled ticks.
func BenchmarkQualitySeries(b *testing.B) {
	w, srcs := getBenchFixture(b)
	var ticks []timeline.Tick
	for t := timeline.Tick(0); t < w.Horizon(); t += 10 {
		ticks = append(ticks, t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QualitySeries(w, srcs, ticks, nil)
	}
}

// BenchmarkFusionAdvance isolates the union-semantics event sweep.
func BenchmarkFusionAdvance(b *testing.B) {
	w, srcs := getBenchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewFusion(w, srcs, nil)
		f.AdvanceTo(w.Horizon() - 1)
		f.Counts()
	}
}
