package estimate

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"freshsource/internal/obs"
)

// FitOptions tunes the model-fitting pipeline of NewFit.
type FitOptions struct {
	// Workers bounds the fit pool shared by the per-subdomain world-model
	// stage and the per-source profile stage: 0 uses GOMAXPROCS, 1 fits
	// sequentially inline, n > 1 fans across n goroutines. The fitted
	// Estimator is byte-identical at any worker count: every fit writes
	// into a pre-sized slot and no result depends on completion order.
	Workers int
}

func (o FitOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// fitStride bounds how many sequential fits run between context checks on
// the single-worker path; individual fits dominate, so the check is
// amortized to noise.
const fitStride = 8

// fitSweep runs eval(i) for every i in [0, m), fanning across w workers
// with dynamic index dealing (the selection sweep pattern: workers pull
// the next index off a shared atomic counter, so one expensive fit doesn't
// stall a fixed partition). eval must write its outcome only to storage
// indexed by i — never to shared state — which makes the sweep's result
// independent of evaluation order. With one worker the fits run inline in
// index order. A canceled context stops the sweep early, leaving the
// remaining slots untouched; callers must check ctx before reducing the
// outputs.
func fitSweep(ctx context.Context, w, m int, eval func(i int)) {
	if w > m {
		w = m
	}
	if w <= 1 {
		for i := 0; i < m; i++ {
			if i%fitStride == 0 && ctx.Err() != nil {
				return
			}
			eval(i)
		}
		return
	}
	if obs.Enabled() {
		obs.Counter("estimate.fit.pool_batches").Inc()
		obs.Counter("estimate.fit.pool_tasks").Add(int64(m))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= m {
					return
				}
				eval(i)
			}
		}()
	}
	wg.Wait()
}
