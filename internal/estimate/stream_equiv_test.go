package estimate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// streamSources builds the standard 4-source corpus of buildEstimator
// without fitting, so the streaming tests can extend the same logs.
func streamSources(t *testing.T, w *world.World) []*source.Source {
	t.Helper()
	p0 := world.DomainPoint{Location: 0, Category: 0}
	p1 := world.DomainPoint{Location: 1, Category: 0}
	return []*source.Source{
		mkSource(t, w, 0, defaultSpec(w.Points(), 0.9), 1),
		mkSource(t, w, 1, defaultSpec(w.Points(), 0.5), 2),
		mkSource(t, w, 2, defaultSpec([]world.DomainPoint{p0}, 0.8), 3),
		mkSource(t, w, 3, defaultSpec([]world.DomainPoint{p1}, 0.8), 4),
	}
}

// synthDelta generates a deterministic per-source batch of streamed
// observations with ticks in (cut, newCut], sorted in timeline order:
// appearances, updates and disappearances over random entities, including
// duplicates of archived events and entities outside the source's spec
// points — everything the cold path tolerates, the incremental path must
// tolerate identically.
func synthDelta(rng *rand.Rand, w *world.World, cut, newCut timeline.Tick) []timeline.Event {
	n := rng.Intn(30)
	evs := make([]timeline.Event, 0, n)
	span := int(newCut - cut)
	for k := 0; k < n; k++ {
		at := cut + 1 + timeline.Tick(rng.Intn(span))
		id := timeline.EntityID(rng.Intn(w.NumEntities()))
		switch rng.Intn(3) {
		case 0:
			evs = append(evs, timeline.Event{Entity: id, Kind: timeline.Appear, At: at, Version: 0})
		case 1:
			evs = append(evs, timeline.Event{Entity: id, Kind: timeline.Update, At: at, Version: 1 + rng.Intn(3)})
		default:
			evs = append(evs, timeline.Event{Entity: id, Kind: timeline.Disappear, At: at, Version: rng.Intn(3)})
		}
	}
	sort.Slice(evs, func(a, b int) bool { return timeline.Less(evs[a], evs[b]) })
	return evs
}

// coldRefit is the reference: a full NewFit over sources whose logs are the
// archived events plus everything streamed so far, at the advanced cut.
func coldRefit(t *testing.T, ctx context.Context, w *world.World, srcs []*source.Source, streamed [][]timeline.Event, cut, maxT timeline.Tick, opt FitOptions) *Estimator {
	t.Helper()
	coldSrcs := make([]*source.Source, len(srcs))
	for i, s := range srcs {
		evs := make([]timeline.Event, 0, s.Log().Len()+len(streamed[i]))
		evs = append(evs, s.Log().Events()...)
		evs = append(evs, streamed[i]...)
		cs, err := source.FromLog(s.ID(), s.Spec(), s.Horizon(), evs)
		if err != nil {
			t.Fatalf("cold source %d: %v", i, err)
		}
		coldSrcs[i] = cs
	}
	e, err := NewFit(ctx, w, coldSrcs, cut, maxT, nil, opt)
	if err != nil {
		t.Fatalf("cold fit at %d: %v", cut, err)
	}
	return e
}

// exportBytes marshals an estimator's canonical Fitted form; two estimators
// are byte-identical iff these agree.
func exportBytes(t *testing.T, e *Estimator) []byte {
	t.Helper()
	f, err := e.Export()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return raw
}

// TestStreamingRefitEquivalence pins the streaming-ingestion invariant:
// incremental refit over N epochs is byte-identical to a cold NewFit on
// snapshot+log at the advanced cut, at multiple worker counts — checked at
// every epoch, not just the last, so a drifting intermediate state can't
// cancel out.
func TestStreamingRefitEquivalence(t *testing.T) {
	w := testWorld(t)
	const t0, maxT = 300, 440
	const epochs, step = 5, 8
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx := context.Background()
			opt := FitOptions{Workers: workers}
			srcs := streamSources(t, w)
			acc, err := NewAccumulator(ctx, w, srcs, t0, maxT, nil, opt)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			streamed := make([][]timeline.Event, len(srcs))
			cut := timeline.Tick(t0)
			for ep := 0; ep < epochs; ep++ {
				newCut := cut + step
				perSource := make([][]timeline.Event, len(srcs))
				for i := range srcs {
					perSource[i] = synthDelta(rng, w, cut, newCut)
					streamed[i] = append(streamed[i], perSource[i]...)
				}
				if err := acc.Advance(ctx, newCut, perSource); err != nil {
					t.Fatalf("epoch %d advance: %v", ep, err)
				}
				cut = newCut

				inc, err := acc.Build(ctx)
				if err != nil {
					t.Fatalf("epoch %d build: %v", ep, err)
				}
				cold := coldRefit(t, ctx, w, srcs, streamed, cut, maxT, opt)
				incF, err := inc.Export()
				if err != nil {
					t.Fatal(err)
				}
				coldF, err := cold.Export()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(incF, coldF) {
					t.Fatalf("epoch %d (cut %d): incremental refit diverged from cold fit", ep, cut)
				}
				if !bytes.Equal(exportBytes(t, inc), exportBytes(t, cold)) {
					t.Fatalf("epoch %d (cut %d): exports not byte-identical", ep, cut)
				}
			}
		})
	}
}

// TestStreamingRefitMatchesColdQuality spot-checks that the refit estimator
// produces the same quality vectors a cold fit would — Export equality
// should already imply it; this guards the derived tables too.
func TestStreamingRefitMatchesColdQuality(t *testing.T) {
	w := testWorld(t)
	const t0, maxT = 300, 440
	ctx := context.Background()
	srcs := streamSources(t, w)
	acc, err := NewAccumulator(ctx, w, srcs, t0, maxT, nil, FitOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	streamed := make([][]timeline.Event, len(srcs))
	perSource := make([][]timeline.Event, len(srcs))
	newCut := timeline.Tick(t0 + 12)
	for i := range srcs {
		perSource[i] = synthDelta(rng, w, t0, newCut)
		streamed[i] = append(streamed[i], perSource[i]...)
	}
	if err := acc.Advance(ctx, newCut, perSource); err != nil {
		t.Fatal(err)
	}
	inc, err := acc.Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cold := coldRefit(t, ctx, w, srcs, streamed, newCut, maxT, FitOptions{Workers: 2})
	set := []int{0, 2, 3}
	for _, dt := range []timeline.Tick{5, 20, 60} {
		qi := inc.Quality(set, newCut+dt)
		qc := cold.Quality(set, newCut+dt)
		if qi != qc {
			t.Fatalf("quality at +%d differs: %+v vs %+v", dt, qi, qc)
		}
	}
}

// TestAccumulatorValidation exercises the Advance guard rails: regressing
// cuts, cuts at/after maxT, unsorted or out-of-window deltas, and the
// poisoned-state latch after a failed advance.
func TestAccumulatorValidation(t *testing.T) {
	w := testWorld(t)
	const t0, maxT = 300, 440
	ctx := context.Background()
	srcs := streamSources(t, w)
	acc, err := NewAccumulator(ctx, w, srcs, t0, maxT, nil, FitOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	empty := make([][]timeline.Event, len(srcs))
	if err := acc.Advance(ctx, t0, empty); err == nil {
		t.Error("want error for non-advancing cut")
	}
	if err := acc.Advance(ctx, maxT, empty); err == nil {
		t.Error("want error for cut at maxT")
	}
	if err := acc.Advance(ctx, t0+5, empty[:1]); err == nil {
		t.Error("want error for wrong slice count")
	}
	// None of the rejected calls above touched tracker state; a valid
	// advance still works.
	if err := acc.Advance(ctx, t0+5, empty); err != nil {
		t.Fatalf("valid empty advance: %v", err)
	}
	// An out-of-window delta poisons the accumulator.
	bad := make([][]timeline.Event, len(srcs))
	bad[0] = []timeline.Event{{Entity: 0, Kind: timeline.Appear, At: t0, Version: 0}}
	if err := acc.Advance(ctx, t0+10, bad); err == nil {
		t.Fatal("want error for stale delta tick")
	}
	if err := acc.Advance(ctx, t0+15, empty); err == nil {
		t.Error("want poisoned-accumulator error")
	}
	if _, err := acc.Build(ctx); err == nil {
		t.Error("want poisoned-accumulator error from Build")
	}

	acc2, err := NewAccumulator(ctx, w, srcs, t0, maxT, nil, FitOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	unsorted := make([][]timeline.Event, len(srcs))
	unsorted[1] = []timeline.Event{
		{Entity: 3, Kind: timeline.Appear, At: t0 + 2, Version: 0},
		{Entity: 1, Kind: timeline.Appear, At: t0 + 1, Version: 0},
	}
	if err := acc2.Advance(ctx, t0+5, unsorted); err == nil {
		t.Error("want error for unsorted delta")
	}
}
