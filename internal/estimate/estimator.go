package estimate

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"freshsource/internal/bitset"
	"freshsource/internal/metrics"
	"freshsource/internal/obs"
	"freshsource/internal/profile"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// Candidate is one selectable unit: a source profile at a specific
// acquisition divisor (the augmented sources S^m of Definition 4). The
// basic problem uses divisor 1.
type Candidate struct {
	// Profile carries the signatures, effectiveness distributions and
	// acquisition schedule.
	Profile *profile.Profile
	// SourceIndex identifies the underlying source; all frequency variants
	// of one source share it (the rank-1 partition classes of Section 5).
	SourceIndex int
	// covers flags which of the estimator's query points the source
	// observes.
	covers []bool
	// gi, gd and gu tabulate the effectiveness CDFs at integer delays
	// 0 … maxDelay; variants of one source share the tables.
	gi, gd, gu []float64
}

// Name returns the candidate's display name.
func (c *Candidate) Name() string { return c.Profile.Name }

// Divisor returns the candidate's acquisition divisor.
func (c *Candidate) Divisor() int { return c.Profile.AcqDivisor }

// QualityEstimate is the estimated quality vector of an integration result
// at one future tick.
type QualityEstimate struct {
	Coverage        float64
	LocalFreshness  float64
	GlobalFreshness float64
	Accuracy        float64

	// ExpectedOmega is E[|Ω|t] (Eq. 14).
	ExpectedOmega float64
	// ExpectedSize is E[|F(SI)|t] (Eq. 18).
	ExpectedSize float64
	// ExpectedUp is E[Up(F(SI), t)].
	ExpectedUp float64
	// ExpectedCovered is E[OldCov] + E[Ins] (the numerator of Eq. 12).
	ExpectedCovered float64
}

// Estimator estimates integration quality for sets of candidates over a
// query domain at future ticks in (t0, maxT].
type Estimator struct {
	// T0 is the end of the training window.
	T0 timeline.Tick
	// MaxT is the largest future tick the estimator supports.
	MaxT timeline.Tick
	// Literal switches the E[InsUp]/E[ExUp] survival exponents to the
	// paper's printed (t−t0) form; the default uses the occurrence time τ.
	Literal bool
	// NoAlignment disables the TS(t) schedule alignment of Eq. 8 (ablation:
	// pretend every source exposes changes the moment it learns them).
	NoAlignment bool
	// linearOmega switches E[|Ω|t] to the paper-literal constant-λd drift
	// of Eq. 14; toggled via SetLinearOmega, which rebuilds the intensity
	// tables.
	linearOmega bool

	points []world.DomainPoint
	models []*WorldModel
	masks  []*bitset.Set
	cands  []*Candidate

	// Per-model lookup tables over the future window, indexed by dt = t−T0
	// (survival) or τ−T0 (intensities): they keep the hot estimation loop
	// free of math.Exp calls.
	survDel, survUpd       [][]float64
	lamIns, lamDel, lamUpd [][]float64

	// scratch pools the per-call miss-probability buffers so concurrent
	// quality queries (parallel candidate sweeps) stay allocation-light.
	scratch sync.Pool
}

// New builds an estimator for the query domain pts (nil = every point of
// the world): it fits one world model per point and one profile per source,
// all on the training window [0, t0]. maxT bounds the future ticks that may
// be queried.
func New(w *world.World, srcs []*source.Source, t0, maxT timeline.Tick, pts []world.DomainPoint) (*Estimator, error) {
	return NewContext(context.Background(), w, srcs, t0, maxT, pts)
}

// NewContext is New with cancellation: a fired context stops launching
// model and profile fits and returns ctx.Err() once the in-flight fits
// drain. Long-running servers use it to bound on-demand refits by the
// requesting call's deadline.
func NewContext(ctx context.Context, w *world.World, srcs []*source.Source, t0, maxT timeline.Tick, pts []world.DomainPoint) (*Estimator, error) {
	return NewFit(ctx, w, srcs, t0, maxT, pts, FitOptions{})
}

// NewFit is the configurable fit pipeline behind New and NewContext: the
// per-subdomain world-model MLEs (Eq. 6–7), per-source Kaplan–Meier
// effectiveness fits (Eq. 8) and per-candidate signature/tabulation work
// run across a bounded worker pool (see FitOptions.Workers). Results land
// in pre-sized slots, so the fitted Estimator is byte-identical to a
// sequential build at any worker count.
func NewFit(ctx context.Context, w *world.World, srcs []*source.Source, t0, maxT timeline.Tick, pts []world.DomainPoint, opt FitOptions) (*Estimator, error) {
	if len(srcs) == 0 {
		return nil, errors.New("estimate: no sources")
	}
	if maxT <= t0 {
		return nil, fmt.Errorf("estimate: maxT %d must exceed t0 %d", maxT, t0)
	}
	if pts == nil {
		pts = w.Points()
	}
	e := &Estimator{T0: t0, MaxT: maxT, points: pts}
	e.allocModelSlots()
	workers := opt.workers()
	obs.Gauge("estimate.fit.workers").Set(float64(workers))
	defer obs.Start("estimate.fit.seconds").End()

	// World models per query point are independent; fan them across the
	// pool.
	fitSpan := obs.Start("estimate.fit.models.seconds")
	{
		errs := make([]error, len(pts))
		fitSweep(ctx, workers, len(pts), func(j int) {
			m, err := FitWorldPoint(w, t0, pts[j])
			if err != nil {
				errs[j] = err
				return
			}
			e.setModel(j, m, w)
		})
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("estimate: model fit canceled: %w", err)
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	fitSpan.EndWithCount(obs.Counter("estimate.fit.points"), int64(len(pts)))

	// Profiles are independent; fan them across the same pool. Results
	// land at fixed indices, so the estimator stays deterministic.
	profSpan := obs.Start("estimate.fit.profiles.seconds")
	maxDelay := int(maxT - t0 + 1)
	e.cands = make([]*Candidate, len(srcs))
	errs := make([]error, len(srcs))
	fitSweep(ctx, workers, len(srcs), func(i int) {
		c, err := buildCandidate(w, srcs[i], i, t0, pts, maxDelay)
		if err != nil {
			errs[i] = err
			return
		}
		e.cands[i] = c
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("estimate: profile fit canceled: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	profSpan.EndWithCount(obs.Counter("estimate.fit.profiles"), int64(len(srcs)))
	e.compactTables()
	return e, nil
}

// compactTables repacks every candidate's tabulated effectiveness tables
// and coverage flags into two contiguous arenas (one []float64, one []bool)
// ordered by candidate index. Per-candidate fit allocates each table
// separately, scattering 15k×3 small slices across the heap; the arena puts
// the data the selection probe walks in candidate order into sequential
// memory and drops the allocation count to two. Each candidate's slices are
// re-sliced full-capacity views into the arena, so pointer identity of
// &c.gi[0] etc. is stable afterwards — AddFrequencyVariants copies these
// slice headers, which is why the repack must run before variants are added
// (both fit and cache-load paths do; the aliasing is pinned by
// TestFrequencyVariantsShareTables).
func (e *Estimator) compactTables() {
	var nf, nb int
	for _, c := range e.cands {
		nf += len(c.gi) + len(c.gd) + len(c.gu)
		nb += len(c.covers)
	}
	if nf == 0 && nb == 0 {
		return
	}
	fa := make([]float64, 0, nf)
	ba := make([]bool, 0, nb)
	takeF := func(s []float64) []float64 {
		off := len(fa)
		fa = append(fa, s...)
		return fa[off:len(fa):len(fa)]
	}
	for _, c := range e.cands {
		c.gi = takeF(c.gi)
		c.gd = takeF(c.gd)
		c.gu = takeF(c.gu)
		off := len(ba)
		ba = append(ba, c.covers...)
		c.covers = ba[off:len(ba):len(ba)]
	}
}

// allocModelSlots pre-sizes the per-point model, mask and lookup-table
// slots for e.points.
func (e *Estimator) allocModelSlots() {
	n := len(e.points)
	e.models = make([]*WorldModel, n)
	e.masks = make([]*bitset.Set, n)
	e.survDel = make([][]float64, n)
	e.survUpd = make([][]float64, n)
	e.lamIns = make([][]float64, n)
	e.lamDel = make([][]float64, n)
	e.lamUpd = make([][]float64, n)
}

// setModel installs a fitted world model at slot j: the per-point entity
// mask plus the survival/intensity lookup tables over the future window.
// It is the single table-building path shared by the fit pipeline and the
// model-cache load (FromFitted), so a cache-loaded estimator's tables are
// byte-identical to a freshly fitted one's.
func (e *Estimator) setModel(j int, m *WorldModel, w *world.World) {
	e.models[j] = m
	mask := bitset.New(w.NumEntities())
	for _, id := range w.EntitiesOf(m.Point) {
		mask.Add(int(id))
	}
	e.masks[j] = mask

	span := int(e.MaxT-e.T0) + 1
	sd := make([]float64, span)
	su := make([]float64, span)
	li := make([]float64, span)
	ld := make([]float64, span)
	lu := make([]float64, span)
	for dt := 0; dt < span; dt++ {
		sd[dt] = m.SurvivalDel(timeline.Tick(dt))
		su[dt] = m.SurvivalUpd(timeline.Tick(dt))
		li[dt] = m.LambdaInsAt(e.T0 + timeline.Tick(dt))
		ld[dt] = m.LambdaDelAt(e.T0 + timeline.Tick(dt))
		lu[dt] = m.LambdaUpdAt(e.T0 + timeline.Tick(dt))
	}
	e.survDel[j] = sd
	e.survUpd[j] = su
	e.lamIns[j] = li
	e.lamDel[j] = ld
	e.lamUpd[j] = lu
}

// buildCandidate profiles one source and tabulates its effectiveness
// tables — the per-candidate unit of the fit pipeline.
func buildCandidate(w *world.World, s *source.Source, i int, t0 timeline.Tick, pts []world.DomainPoint, maxDelay int) (*Candidate, error) {
	prof, err := profile.Build(w, s, t0, pts)
	if err != nil {
		return nil, err
	}
	return candidateFromProfile(prof, s, i, pts, maxDelay), nil
}

// candidateFromProfile wraps a fitted profile into a Candidate: coverage
// flags from the source spec plus the tabulated effectiveness tables. It is
// shared by the cold fit pipeline and the incremental Accumulator, so both
// derive candidates through identical code.
func candidateFromProfile(prof *profile.Profile, s *source.Source, i int, pts []world.DomainPoint, maxDelay int) *Candidate {
	covered := make(map[world.DomainPoint]bool, len(s.Spec().Points))
	for _, p := range s.Spec().Points {
		covered[p] = true
	}
	c := &Candidate{Profile: prof, SourceIndex: i, covers: make([]bool, len(pts))}
	for j, p := range pts {
		c.covers[j] = covered[p]
	}
	c.gi = tabulate(prof.Gi, maxDelay)
	c.gd = tabulate(prof.Gd, maxDelay)
	c.gu = tabulate(prof.Gu, maxDelay)
	return c
}

// tabulate samples a Kaplan–Meier CDF at integer delays 0 … maxDelay with
// a single merge walk over the step points (O(maxDelay + steps) instead of
// a binary search per delay); the values are exactly CDF(d). A nil
// distribution (no observations) tabulates to zero effectiveness.
func tabulate(km *stats.KaplanMeier, maxDelay int) []float64 {
	out := make([]float64, maxDelay+1)
	if km == nil {
		return out
	}
	times, cdf := km.Steps()
	k := 0
	cur := 0.0
	for d := 0; d <= maxDelay; d++ {
		for k < len(times) && times[k] <= float64(d) {
			cur = cdf[k]
			k++
		}
		out[d] = cur
	}
	return out
}

// SetLinearOmega switches between the ODE-consistent world-size model
// (default) and the paper-literal constant-λd drift of Eq. 14, rebuilding
// the intensity tables accordingly. Part of the ablation study.
func (e *Estimator) SetLinearOmega(on bool) {
	if e.linearOmega == on {
		return
	}
	e.linearOmega = on
	span := int(e.MaxT-e.T0) + 1
	for j, m := range e.models {
		for dt := 0; dt < span; dt++ {
			if on {
				e.lamDel[j][dt] = m.LambdaDel
				e.lamUpd[j][dt] = m.LambdaUpd
			} else {
				e.lamDel[j][dt] = m.LambdaDelAt(e.T0 + timeline.Tick(dt))
				e.lamUpd[j][dt] = m.LambdaUpdAt(e.T0 + timeline.Tick(dt))
			}
		}
	}
}

// AddFrequencyVariants appends, for every base candidate (divisor 1),
// variants acquired at each of the given divisors. It returns the total
// number of candidates.
//
// Variants alias their base's tabulated effectiveness tables, coverage
// flags and signature bitsets rather than recomputing them — the tables
// describe the underlying source, not the acquisition schedule, so the
// O(variants × maxDelay) re-tabulation would be pure waste (and the
// persistent model cache leans on the same invariant: it stores only
// divisor-1 candidates and re-derives variants on load). The aliasing is
// pinned by TestFrequencyVariantsShareTables.
func (e *Estimator) AddFrequencyVariants(divisors []int) (int, error) {
	base := len(e.cands)
	for i := 0; i < base; i++ {
		c := e.cands[i]
		if c.Divisor() != 1 {
			continue
		}
		for _, m := range divisors {
			if m <= 1 {
				continue
			}
			prof, err := c.Profile.WithDivisor(m)
			if err != nil {
				return 0, err
			}
			e.cands = append(e.cands, &Candidate{
				Profile:     prof,
				SourceIndex: c.SourceIndex,
				covers:      c.covers,
				gi:          c.gi,
				gd:          c.gd,
				gu:          c.gu,
			})
		}
	}
	obs.Counter("estimate.variants.added").Add(int64(len(e.cands) - base))
	// Three effectiveness tables shared (not re-tabulated) per variant.
	obs.Counter("estimate.variants.tables_shared").Add(int64(3 * (len(e.cands) - base)))
	return len(e.cands), nil
}

// NumCandidates returns the number of selectable candidates.
func (e *Estimator) NumCandidates() int { return len(e.cands) }

// Candidate returns the i-th candidate.
func (e *Estimator) Candidate(i int) *Candidate { return e.cands[i] }

// Points returns the estimator's query domain.
func (e *Estimator) Points() []world.DomainPoint { return e.points }

// Model returns the world model of the i-th query point.
func (e *Estimator) Model(i int) *WorldModel { return e.models[i] }

// eff evaluates one tabulated effectiveness CDF under the Eq. 8 alignment.
func (c *Candidate) eff(tab []float64, t, tc timeline.Tick) float64 {
	ts := c.Profile.TS(t)
	if ts < tc {
		return 0
	}
	d := int(ts - tc)
	if d >= len(tab) {
		d = len(tab) - 1
	}
	return tab[d]
}

// Quality estimates the quality of integrating the candidate set at tick t.
// set holds candidate indices.
func (e *Estimator) Quality(set []int, t timeline.Tick) QualityEstimate {
	return e.QualityMulti(set, []timeline.Tick{t})[0]
}

// QualityMulti estimates quality at several future ticks, computing the
// signature unions once. Ticks must lie in [T0, MaxT].
//
// It is safe for concurrent use: parallel candidate sweeps may probe the
// estimator from many goroutines at once.
func (e *Estimator) QualityMulti(set []int, ts []timeline.Tick) []QualityEstimate {
	sp := obs.Start("estimate.quality.seconds")
	e.checkTicks(ts)
	st := e.NewSetState(set)

	scratch := e.getScratch()
	out := make([]QualityEstimate, len(ts))
	for k, t := range ts {
		out[k] = e.qualityAt(t, st.covT0, st.upT0, st.sizeT0, st.covering, nil, nil, scratch)
	}

	// Telemetry, batched: one set of counter adds per estimate call, so
	// the per-iteration recurrence loops above stay uninstrumented.
	sp.End()
	if obs.Enabled() {
		obs.Counter("estimate.quality.calls").Add(1)
		obs.Counter("estimate.quality.ticks").Add(int64(len(ts)))
		obs.Counter("estimate.quality.set_size").Add(int64(len(set)))
		obs.Counter("estimate.recurrence.steps").Add(scratch.steps)
		obs.Counter("estimate.recurrence.cand_terms").Add(scratch.candTerms)
	}
	e.putScratch(scratch)
	return out
}

func (e *Estimator) checkTicks(ts []timeline.Tick) {
	for _, t := range ts {
		if t < e.T0 || t > e.MaxT {
			panic(fmt.Sprintf("estimate: tick %d outside [%d, %d]", t, e.T0, e.MaxT))
		}
	}
}

type missBuffers struct {
	ins, del, upd []float64
	// cnt backs the adjusted per-point t0 count triple of the incremental
	// add path (3·|points| ints), so a probe borrows it from the pool
	// instead of allocating.
	cnt []int
	// steps counts Eq. 12–19 recurrence iterations and candTerms the
	// per-covering-candidate effectiveness terms, accumulated across
	// qualityAt calls and flushed to obs counters by QualityMulti.
	steps, candTerms int64
}

// getScratch takes a zeroed miss-buffer set from the pool.
func (e *Estimator) getScratch() *missBuffers {
	if v := e.scratch.Get(); v != nil {
		b := v.(*missBuffers)
		b.steps, b.candTerms = 0, 0
		return b
	}
	span := int(e.MaxT - e.T0)
	return &missBuffers{
		ins: make([]float64, span),
		del: make([]float64, span),
		upd: make([]float64, span),
		cnt: make([]int, 3*len(e.points)),
	}
}

func (e *Estimator) putScratch(b *missBuffers) { e.scratch.Put(b) }

// candidateMiss folds one covering candidate's effectiveness into the miss
// probabilities over occurrence indices 0 … dt0−1 (Eq. 9–11), returning the
// number of per-candidate terms applied. Keeping this in one place
// guarantees the incremental add path multiplies bit-identically to the
// from-scratch path.
func (e *Estimator) candidateMiss(c *Candidate, t timeline.Tick, dt0 int, missIns, missDel, missUpd []float64) int64 {
	ts := c.Profile.TS(t)
	if e.NoAlignment {
		ts = t
	}
	// eff(τ) = tab[ts−τ] for τ ≤ ts; zero beyond.
	iMax := int(ts - e.T0 - 1) // largest i with τ = T0+1+i ≤ ts
	if iMax >= dt0 {
		iMax = dt0 - 1
	}
	cv := c.Profile.CoverageT0
	for i := 0; i <= iMax; i++ {
		d := int(ts-e.T0) - 1 - i
		missIns[i] *= 1 - c.gi[d]
		missDel[i] *= 1 - cv*c.gd[d]
		missUpd[i] *= 1 - cv*c.gu[d]
	}
	return int64(iMax + 1)
}

// qualityAt evaluates Equations 12–19 at one tick. covering[j] lists the
// set's candidates that observe point j. base, when non-nil, supplies the
// covering lists' pre-folded miss products for this tick, read in place
// with extra's terms applied on the fly — the probe never copies or writes
// a miss buffer. extra, when non-nil, is one more candidate layered on top
// (the incremental add path) whose effectiveness terms apply after
// covering[j]'s — the same order, and op for op the same float sequence, as
// a from-scratch evaluation of the set with extra appended last; scratch
// holds reusable buffers for the from-scratch path.
func (e *Estimator) qualityAt(t timeline.Tick, covT0, upT0, sizeT0 []int, covering [][]*Candidate, base *tickMiss, extra *Candidate, scratch *missBuffers) QualityEstimate {
	var omega, covered, up, size float64
	dt0 := int(t - e.T0)

	// The extra candidate's alignment is per-tick, not per-point: hoist it
	// (mirrors candidateMiss — eff(τ) = tab[ts−τ] for τ ≤ ts, zero beyond).
	var xgi, xgd, xgu []float64
	var xcv float64
	xiMax, xd0 := -1, 0
	if extra != nil {
		ts := extra.Profile.TS(t)
		if e.NoAlignment {
			ts = t
		}
		xiMax = int(ts - e.T0 - 1) // largest i with τ = T0+1+i ≤ ts
		if xiMax >= dt0 {
			xiMax = dt0 - 1
		}
		xd0 = int(ts - e.T0)
		xgi, xgd, xgu = extra.gi, extra.gd, extra.gu
		xcv = extra.Profile.CoverageT0
	}

	for j := range e.points {
		m := e.models[j]
		if e.linearOmega {
			omega += m.ExpectedOmegaLinear(t)
		} else {
			omega += m.ExpectedOmega(t)
		}
		survDel, survUpd := e.survDel[j], e.survUpd[j]
		lamIns, lamDel, lamUpd := e.lamIns[j], e.lamDel[j], e.lamUpd[j]

		// Eq. 13: surviving covered content from t0, and E[OldUp]:
		// survived and unchanged.
		oldCov := float64(covT0[j]) * survDel[dt0]
		oldUp := float64(upT0[j]) * survDel[dt0] * survUpd[dt0]

		var ins, del, insUp, exUp float64
		if base != nil {
			// Fused probe path: read the cached base products in place and
			// multiply in extra's terms per element — no copy, no store. The
			// loop splits at the last index extra's terms reach (foldEnd) so
			// each half stays branch-free.
			bIns, bDel, bUpd := base.ins[j], base.del[j], base.upd[j]
			foldEnd := -1
			if extra != nil && extra.covers[j] {
				scratch.candTerms += int64(xiMax + 1)
				if foldEnd = xiMax; foldEnd < -1 {
					foldEnd = -1
				}
			}
			for i := 0; i <= foldEnd; i++ {
				d := xd0 - 1 - i
				mi := bIns[i] * (1 - xgi[d])
				md := bDel[i] * (1 - xcv*xgd[d])
				mu := bUpd[i] * (1 - xcv*xgu[d])
				dtau := dt0 - 1 - i // t − τ
				sd, su := survDel[dtau], survUpd[dtau]
				if e.Literal {
					sd, su = survDel[dt0], survUpd[dt0]
				}
				prIns := 1 - mi
				ins += lamIns[i+1] * survDel[dtau] * prIns
				del += lamDel[i+1] * (1 - md)
				insUp += lamIns[i+1] * sd * su * prIns
				exUp += lamUpd[i+1] * sd * su * (1 - mu)
			}
			for i := foldEnd + 1; i < dt0; i++ {
				dtau := dt0 - 1 - i
				sd, su := survDel[dtau], survUpd[dtau]
				if e.Literal {
					sd, su = survDel[dt0], survUpd[dt0]
				}
				prIns := 1 - bIns[i]
				ins += lamIns[i+1] * survDel[dtau] * prIns
				del += lamDel[i+1] * (1 - bDel[i])
				insUp += lamIns[i+1] * sd * su * prIns
				exUp += lamUpd[i+1] * sd * su * (1 - bUpd[i])
			}
		} else {
			// From-scratch path: fold every covering candidate into the
			// scratch miss buffers (Eq. 9–11), one pass per candidate, then
			// run the recurrence.
			missIns := scratch.ins[:dt0]
			missDel := scratch.del[:dt0]
			missUpd := scratch.upd[:dt0]
			for i := range missIns {
				missIns[i], missDel[i], missUpd[i] = 1, 1, 1
			}
			for _, c := range covering[j] {
				scratch.candTerms += e.candidateMiss(c, t, dt0, missIns, missDel, missUpd)
			}
			if extra != nil && extra.covers[j] {
				scratch.candTerms += e.candidateMiss(extra, t, dt0, missIns, missDel, missUpd)
			}
			for i := 0; i < dt0; i++ {
				dtau := dt0 - 1 - i // t − τ
				sd, su := survDel[dtau], survUpd[dtau]
				if e.Literal {
					sd, su = survDel[dt0], survUpd[dt0]
				}
				prIns := 1 - missIns[i]
				// Eq. 15, Eq. 19, and the E[InsUp]/E[ExUp] sums, with the
				// time-varying λi(τ) (seasonal subdomains), λd(τ), λu(τ).
				ins += lamIns[i+1] * survDel[dtau] * prIns
				del += lamDel[i+1] * (1 - missDel[i])
				insUp += lamIns[i+1] * sd * su * prIns
				exUp += lamUpd[i+1] * sd * su * (1 - missUpd[i])
			}
		}
		scratch.steps += int64(dt0)

		covered += oldCov + ins
		up += oldUp + insUp + exUp
		sz := float64(sizeT0[j]) + ins - del
		if sz < 0 {
			sz = 0
		}
		size += sz
	}

	q := QualityEstimate{ExpectedOmega: omega, ExpectedSize: size, ExpectedUp: up, ExpectedCovered: covered}
	if omega > 0 {
		q.Coverage = clamp01(covered / omega)
		q.GlobalFreshness = clamp01(up / omega)
	}
	if size > 0 {
		q.LocalFreshness = clamp01(up / size)
	}
	q.Accuracy = metrics.AccuracyFromComponents(q.Coverage, q.LocalFreshness, q.GlobalFreshness)
	return q
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
