package estimate

import (
	"math"
	"testing"

	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// TestNoAlignmentOvershootsForSlowSources verifies the Eq. 8 ablation: for
// a source with a long update interval, ignoring schedule alignment
// predicts strictly higher early coverage of fresh appearances (changes
// surface "immediately" instead of at the next scheduled update).
func TestNoAlignmentOvershootsForSlowSources(t *testing.T) {
	w := testWorld(t)
	sp := defaultSpec(w.Points(), 0.9)
	sp.UpdateInterval = 21
	src := mkSource(t, w, 0, sp, 31)
	e, err := New(w, []*source.Source{src}, 300, 440, nil)
	if err != nil {
		t.Fatal(err)
	}
	aligned := e.QualityMulti([]int{0}, []timeline.Tick{320, 360, 400})
	e.NoAlignment = true
	unaligned := e.QualityMulti([]int{0}, []timeline.Tick{320, 360, 400})
	anyHigher := false
	for i := range aligned {
		if unaligned[i].Coverage < aligned[i].Coverage-1e-12 {
			t.Errorf("tick %d: no-alignment coverage %v below aligned %v", i, unaligned[i].Coverage, aligned[i].Coverage)
		}
		if unaligned[i].Coverage > aligned[i].Coverage+1e-9 {
			anyHigher = true
		}
	}
	if !anyHigher {
		t.Error("no-alignment should strictly overshoot somewhere for a 21-tick schedule")
	}
}

// TestSetLinearOmegaMatchesEq14 verifies the world-size ablation: the
// linear mode reproduces the paper-literal Eq. 14 drift and toggling back
// restores the default tables exactly.
func TestSetLinearOmegaMatchesEq14(t *testing.T) {
	w := testWorld(t)
	src := mkSource(t, w, 0, defaultSpec(w.Points(), 0.9), 32)
	e, err := New(w, []*source.Source{src}, 300, 440, nil)
	if err != nil {
		t.Fatal(err)
	}
	tk := timeline.Tick(400)
	base := e.Quality([]int{0}, tk)

	e.SetLinearOmega(true)
	lin := e.Quality([]int{0}, tk)
	var wantOmega float64
	for j := range e.Points() {
		wantOmega += e.Model(j).ExpectedOmegaLinear(tk)
	}
	if math.Abs(lin.ExpectedOmega-wantOmega) > 1e-9 {
		t.Errorf("linear omega %v != Eq.14 sum %v", lin.ExpectedOmega, wantOmega)
	}

	// Idempotent set, then restore.
	e.SetLinearOmega(true)
	e.SetLinearOmega(false)
	back := e.Quality([]int{0}, tk)
	if back != base {
		t.Errorf("toggling linear omega did not restore: %+v vs %+v", back, base)
	}
}

// TestLinearOmegaWorseOnNonStationaryWorld: on a shrinking population the
// literal Eq. 14 must predict the world size worse than the ODE form.
func TestLinearOmegaWorseOnNonStationaryWorld(t *testing.T) {
	// Population starts far above steady state (600 vs λi/γd = 100).
	w, err := world.Generate(world.Config{
		Subdomains: []world.SubdomainSpec{{
			Point:           world.DomainPoint{Location: 0, Category: 0},
			InitialEntities: 600, LambdaAppear: 1, GammaDisappear: 0.01, GammaUpdate: 0.01,
		}},
		Horizon: 500,
		Seed:    33,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitWorldPoint(w, 250, world.DomainPoint{Location: 0, Category: 0})
	if err != nil {
		t.Fatal(err)
	}
	tk := timeline.Tick(480)
	actual := float64(w.AliveCount(tk, nil))
	odeErr := math.Abs(m.ExpectedOmega(tk) - actual)
	linErr := math.Abs(m.ExpectedOmegaLinear(tk) - actual)
	if odeErr >= linErr {
		t.Errorf("ODE err %v not better than linear err %v (actual %v, ode %v, lin %v)",
			odeErr, linErr, actual, m.ExpectedOmega(tk), m.ExpectedOmegaLinear(tk))
	}
}
