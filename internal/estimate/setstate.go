package estimate

import (
	"sync/atomic"

	"freshsource/internal/bitset"
	"freshsource/internal/obs"
	"freshsource/internal/timeline"
)

// SetState caches everything a quality estimate derives from a candidate
// set alone — the union signatures B, Bcov and Bup, the per-point t0
// content counts, and the covering-candidate lists — so that evaluating
// single-candidate additions (the probe of every greedy-style sweep) skips
// re-unioning the whole set.
//
// Invariants:
//
//   - A SetState is immutable after construction and safe to share across
//     goroutines; parallel sweeps probe one state concurrently.
//   - QualityMultiAdd(st, x, ts) requires x ∉ st's set; it layers x's
//     contribution on top of the cached unions, which double-applies x's
//     effectiveness terms if x is already a member.
//   - The state belongs to the Estimator that built it and goes stale if
//     SetLinearOmega toggles (t0 counts stay valid, but cached results
//     should be re-derived for apples-to-apples comparisons).
type SetState struct {
	e   *Estimator
	set []int

	// uB, uCov and uUp are the set's union signatures; all nil for the
	// empty set.
	uB, uCov, uUp *bitset.Set

	// covT0, upT0 and sizeT0 are |union ∩ mask_j| per query point j for the
	// Bcov, Bup and B unions.
	covT0, upT0, sizeT0 []int

	// covering[j] lists the set's candidates observing point j, in set
	// order — the multiplication order of the miss-probability products.
	covering [][]*Candidate

	// miss caches the base set's miss-probability products per tick, built
	// lazily on first probe of each tick and indexed by dt = t−T0 (a flat
	// slice, not a map: the steady-state probe does one atomic load per
	// tick, no lock and no hashing). A probe then reads the arrays in place
	// and applies only the added candidate's terms instead of refolding
	// every covering candidate — the O(|set|·span) → O(span) step.
	miss []atomic.Pointer[tickMiss]
}

// tickMiss holds, for one tick, the per-point miss-probability products of
// the base covering lists over occurrence indices 0 … dt0−1. The per-point
// slices share one contiguous backing buffer (one allocation per tick,
// sequential reads in the recurrence).
type tickMiss struct {
	ins, del, upd [][]float64
}

// missAt returns the cached base miss products for tick t, building them on
// first use. Concurrent builders may race benignly; the first stored value
// wins and all candidates compute identical arrays.
func (st *SetState) missAt(t timeline.Tick) *tickMiss {
	slot := &st.miss[int(t-st.e.T0)]
	if m := slot.Load(); m != nil {
		return m
	}
	m := st.e.buildMiss(st.covering, t)
	if !slot.CompareAndSwap(nil, m) {
		m = slot.Load()
	}
	return m
}

// buildMiss folds the covering lists' effectiveness terms at one tick, in
// covering order — exactly the prefix of the products qualityAt computes
// from scratch.
func (e *Estimator) buildMiss(covering [][]*Candidate, t timeline.Tick) *tickMiss {
	dt0 := int(t - e.T0)
	nPts := len(e.points)
	m := &tickMiss{
		ins: make([][]float64, nPts),
		del: make([][]float64, nPts),
		upd: make([][]float64, nPts),
	}
	buf := make([]float64, 3*nPts*dt0)
	for i := range buf {
		buf[i] = 1
	}
	take := func() []float64 {
		s := buf[:dt0:dt0]
		buf = buf[dt0:]
		return s
	}
	for j := range e.points {
		ins, del, upd := take(), take(), take()
		for _, c := range covering[j] {
			e.candidateMiss(c, t, dt0, ins, del, upd)
		}
		m.ins[j], m.del[j], m.upd[j] = ins, del, upd
	}
	return m
}

// Set returns the candidate set the state was built from (not a copy; do
// not mutate).
func (st *SetState) Set() []int { return st.set }

// NewSetState builds the cached state of a candidate set. The work is the
// same as the set-dependent prefix of QualityMulti: one signature union
// pass plus 3·|points| intersect counts.
func (e *Estimator) NewSetState(set []int) *SetState {
	st := &SetState{
		e:    e,
		set:  append([]int(nil), set...),
		miss: make([]atomic.Pointer[tickMiss], int(e.MaxT-e.T0)+1),
	}

	// Union signatures over the set (deduplicating shared signatures is
	// unnecessary: union is idempotent).
	for _, i := range set {
		p := e.cands[i].Profile
		if st.uB == nil {
			st.uB, st.uCov, st.uUp = p.B.Clone(), p.Bcov.Clone(), p.Bup.Clone()
			continue
		}
		st.uB.UnionWith(p.B)
		st.uCov.UnionWith(p.Bcov)
		st.uUp.UnionWith(p.Bup)
	}

	// Per-point t0 content counts and covering-candidate lists, computed
	// once per set.
	nPts := len(e.points)
	counts := make([]int, 3*nPts)
	st.covT0, st.upT0, st.sizeT0 = counts[:nPts:nPts], counts[nPts:2*nPts:2*nPts], counts[2*nPts:]
	st.covering = make([][]*Candidate, nPts)
	if st.uB != nil {
		for j := range e.points {
			st.covT0[j] = bitset.IntersectCount(st.uCov, e.masks[j])
			st.upT0[j] = bitset.IntersectCount(st.uUp, e.masks[j])
			st.sizeT0[j] = bitset.IntersectCount(st.uB, e.masks[j])
		}
	}
	for j := range e.points {
		for _, i := range set {
			if e.cands[i].covers[j] {
				st.covering[j] = append(st.covering[j], e.cands[i])
			}
		}
	}

	if obs.Enabled() {
		obs.Counter("estimate.setstate.builds").Add(1)
		if n := len(set); n > 1 {
			obs.Counter("estimate.signature.unions").Add(int64(3 * (n - 1)))
		}
		if st.uB != nil {
			obs.Counter("estimate.signature.intersects").Add(int64(3 * nPts))
		}
	}
	return st
}

// QualityMultiState estimates the quality of st's own set at the given
// ticks from the cached state: the t0 counts and covering lists are reused
// and each tick's miss products come from the state's lazily-built cache,
// so re-evaluating one set across repeated or overlapping Tf vectors skips
// the per-candidate effectiveness folds after their first use. The result
// is bit-identical to QualityMulti(st.Set(), ts) — the cached products are
// the same floats folded in the same covering order. This is the warm path
// of a serving registry keeping SetStates keyed by (set, Tf).
func (e *Estimator) QualityMultiState(st *SetState, ts []timeline.Tick) []QualityEstimate {
	sp := obs.Start("estimate.quality_state.seconds")
	e.checkTicks(ts)

	scratch := e.getScratch()
	out := make([]QualityEstimate, len(ts))
	for k, t := range ts {
		out[k] = e.qualityAt(t, st.covT0, st.upT0, st.sizeT0, st.covering, st.missAt(t), nil, scratch)
	}

	sp.End()
	if obs.Enabled() {
		obs.Counter("estimate.quality.state_calls").Add(1)
		obs.Counter("estimate.quality.ticks").Add(int64(len(ts)))
		obs.Counter("estimate.recurrence.steps").Add(scratch.steps)
		obs.Counter("estimate.recurrence.cand_terms").Add(scratch.candTerms)
	}
	e.putScratch(scratch)
	return out
}

// QualityMultiAdd estimates the quality of st's set ∪ {x} at the given
// ticks without rebuilding the set's unions: candidate x's t0 contribution
// per query point is a fused triple-popcount count(x ∧ mask ∧ ¬union) over
// the cached union signatures, and its effectiveness terms layer after the
// cached covering lists'. The result is bit-identical to
// QualityMulti(append(set, x), ts).
//
// x must not already be a member of st's set (see the SetState
// invariants). Safe for concurrent calls sharing one state.
func (e *Estimator) QualityMultiAdd(st *SetState, x int, ts []timeline.Tick) []QualityEstimate {
	return e.QualityMultiAddInto(st, x, ts, nil)
}

// QualityMultiAddInto is QualityMultiAdd writing into out when it has
// capacity for len(ts) estimates (allocating otherwise) — the zero-alloc
// probe entry point: with a warmed state (every tick's miss products built)
// and a reusable out buffer, the steady-state probe performs no heap
// allocation at all. It returns the filled slice.
func (e *Estimator) QualityMultiAddInto(st *SetState, x int, ts []timeline.Tick, out []QualityEstimate) []QualityEstimate {
	sp := obs.Start("estimate.quality_add.seconds")
	e.checkTicks(ts)
	xc := e.cands[x]
	xp := xc.Profile

	scratch := e.getScratch()

	// Adjusted t0 counts: cached count + what x adds beyond the union. The
	// count buffers live in the pooled scratch, not a per-probe allocation.
	nPts := len(e.points)
	counts := scratch.cnt
	covT0, upT0, sizeT0 := counts[:nPts:nPts], counts[nPts:2*nPts:2*nPts], counts[2*nPts:3*nPts]
	for j := range e.points {
		if st.uB == nil {
			covT0[j] = bitset.IntersectCount(xp.Bcov, e.masks[j])
			upT0[j] = bitset.IntersectCount(xp.Bup, e.masks[j])
			sizeT0[j] = bitset.IntersectCount(xp.B, e.masks[j])
		} else {
			covT0[j] = st.covT0[j] + bitset.IntersectAndNotCount(xp.Bcov, e.masks[j], st.uCov)
			upT0[j] = st.upT0[j] + bitset.IntersectAndNotCount(xp.Bup, e.masks[j], st.uUp)
			sizeT0[j] = st.sizeT0[j] + bitset.IntersectAndNotCount(xp.B, e.masks[j], st.uB)
		}
	}

	if cap(out) >= len(ts) {
		out = out[:len(ts)]
	} else {
		out = make([]QualityEstimate, len(ts))
	}
	for k, t := range ts {
		out[k] = e.qualityAt(t, covT0, upT0, sizeT0, st.covering, st.missAt(t), xc, scratch)
	}

	sp.End()
	if obs.Enabled() {
		obs.Counter("estimate.quality.add_calls").Add(1)
		obs.Counter("estimate.quality.ticks").Add(int64(len(ts)))
		obs.Counter("estimate.signature.kernel_counts").Add(int64(3 * nPts))
		obs.Counter("estimate.recurrence.steps").Add(scratch.steps)
		obs.Counter("estimate.recurrence.cand_terms").Add(scratch.candTerms)
	}
	e.putScratch(scratch)
	return out
}
