package estimate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

func testWorld(t *testing.T) *world.World {
	t.Helper()
	w, err := world.Generate(world.Config{
		Subdomains: []world.SubdomainSpec{
			{Point: world.DomainPoint{Location: 0, Category: 0}, InitialEntities: 600, LambdaAppear: 3, GammaDisappear: 0.01, GammaUpdate: 0.02},
			{Point: world.DomainPoint{Location: 1, Category: 0}, InitialEntities: 400, LambdaAppear: 2, GammaDisappear: 0.015, GammaUpdate: 0.03},
		},
		Horizon: 450,
		Seed:    101,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func mkSource(t *testing.T, w *world.World, id source.ID, sp source.Spec, seed int64) *source.Source {
	t.Helper()
	s, err := source.Observe(w, id, sp, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func defaultSpec(pts []world.DomainPoint, insP float64) source.Spec {
	return source.Spec{
		Name:           "s",
		UpdateInterval: 1,
		Points:         pts,
		Insert:         source.CaptureSpec{Prob: insP, Delay: source.ExponentialDelay{Rate: 0.4}},
		Delete:         source.CaptureSpec{Prob: 0.7, Delay: source.ExponentialDelay{Rate: 0.3}},
		Update:         source.CaptureSpec{Prob: 0.6, Delay: source.ExponentialDelay{Rate: 0.3}},
	}
}

// buildEstimator creates a standard 4-source estimator on the test world.
func buildEstimator(t *testing.T, w *world.World) *Estimator {
	t.Helper()
	p0 := world.DomainPoint{Location: 0, Category: 0}
	p1 := world.DomainPoint{Location: 1, Category: 0}
	srcs := []*source.Source{
		mkSource(t, w, 0, defaultSpec(w.Points(), 0.9), 1),
		mkSource(t, w, 1, defaultSpec(w.Points(), 0.5), 2),
		mkSource(t, w, 2, defaultSpec([]world.DomainPoint{p0}, 0.8), 3),
		mkSource(t, w, 3, defaultSpec([]world.DomainPoint{p1}, 0.8), 4),
	}
	e, err := New(w, srcs, 300, 440, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFitWorldPointRecoversRates(t *testing.T) {
	w := testWorld(t)
	p := world.DomainPoint{Location: 0, Category: 0}
	m, err := FitWorldPoint(w, 300, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.LambdaIns-3) > 0.4 {
		t.Errorf("λi = %v, want ≈ 3", m.LambdaIns)
	}
	if math.Abs(m.GammaDel-0.01) > 0.002 {
		t.Errorf("γd = %v, want ≈ 0.01", m.GammaDel)
	}
	if math.Abs(m.GammaUpd-0.02) > 0.004 {
		t.Errorf("γu = %v, want ≈ 0.02", m.GammaUpd)
	}
	if m.OmegaT0 != w.AliveCount(300, []world.DomainPoint{p}) {
		t.Errorf("OmegaT0 = %d", m.OmegaT0)
	}
	if m.LambdaDel <= 0 || m.LambdaUpd <= 0 {
		t.Errorf("λd = %v, λu = %v", m.LambdaDel, m.LambdaUpd)
	}
}

func TestFitWorldPointValidation(t *testing.T) {
	w := testWorld(t)
	p := world.DomainPoint{Location: 0, Category: 0}
	if _, err := FitWorldPoint(w, 0, p); err == nil {
		t.Error("want error for t0 = 0")
	}
	if _, err := FitWorldPoint(w, w.Horizon(), p); err == nil {
		t.Error("want error for t0 = horizon")
	}
}

func TestExpectedOmegaTracksWorld(t *testing.T) {
	w := testWorld(t)
	var models []*WorldModel
	for _, p := range w.Points() {
		m, err := FitWorldPoint(w, 300, p)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	ts := []timeline.Tick{310, 350, 400, 440}
	pred := PredictOmegaSeries(models, ts)
	for i, tk := range ts {
		actual := float64(w.AliveCount(tk, nil))
		if re := stats.RelativeError(pred[i], actual); re > 0.05 {
			t.Errorf("tick %d: predicted %v, actual %v (rel err %v)", tk, pred[i], actual, re)
		}
	}
}

func TestNewValidation(t *testing.T) {
	w := testWorld(t)
	if _, err := New(w, nil, 300, 400, nil); err == nil {
		t.Error("want error for no sources")
	}
	s := mkSource(t, w, 0, defaultSpec(w.Points(), 1), 1)
	if _, err := New(w, []*source.Source{s}, 300, 300, nil); err == nil {
		t.Error("want error for maxT <= t0")
	}
}

func TestQualityOutOfRangePanics(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for tick beyond MaxT")
		}
	}()
	e.Quality([]int{0}, 441)
}

func TestEmptySetQuality(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	q := e.Quality(nil, 350)
	if q.Coverage != 0 || q.GlobalFreshness != 0 || q.ExpectedSize != 0 {
		t.Errorf("empty set estimate = %+v", q)
	}
	if q.ExpectedOmega <= 0 {
		t.Error("expected world size must be positive")
	}
}

func TestQualityAtT0MatchesSignatures(t *testing.T) {
	// At t = t0 the estimate must reproduce the signature-derived state.
	w := testWorld(t)
	e := buildEstimator(t, w)
	set := []int{0, 1}
	q := e.Quality(set, 300)
	// Ground truth at t0 from the metrics package.
	truth := metrics.QualityAt(w, nil, 300, nil) // world size only
	_ = truth
	cov := q.Coverage
	if cov <= 0 || cov > 1 {
		t.Fatalf("coverage at t0 = %v", cov)
	}
	// Directly compare against union of signatures.
	p0 := e.Candidate(0).Profile
	p1 := e.Candidate(1).Profile
	covUnion := p0.Bcov.Clone()
	covUnion.UnionWith(p1.Bcov)
	want := float64(covUnion.Count()) / float64(w.AliveCount(300, nil))
	if math.Abs(cov-want) > 1e-9 {
		t.Errorf("estimated coverage at t0 = %v, signature union = %v", cov, want)
	}
}

func TestEstimateTracksGroundTruth(t *testing.T) {
	// The headline claim (Figures 10b, 11): quality predictions stay
	// within a few percent of ground truth over the evaluation window.
	w := testWorld(t)
	p0 := world.DomainPoint{Location: 0, Category: 0}
	p1 := world.DomainPoint{Location: 1, Category: 0}
	srcs := []*source.Source{
		mkSource(t, w, 0, defaultSpec(w.Points(), 0.9), 1),
		mkSource(t, w, 1, defaultSpec(w.Points(), 0.5), 2),
		mkSource(t, w, 2, defaultSpec([]world.DomainPoint{p0}, 0.8), 3),
		mkSource(t, w, 3, defaultSpec([]world.DomainPoint{p1}, 0.8), 4),
	}
	e, err := New(w, srcs, 300, 440, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := []int{0, 2}
	for _, tk := range []timeline.Tick{320, 360, 400, 440} {
		est := e.Quality(set, tk)
		truth := metrics.QualityAt(w, []*source.Source{srcs[0], srcs[2]}, tk, nil)
		if re := stats.RelativeError(est.Coverage, truth.Coverage); re > 0.05 {
			t.Errorf("tick %d: est coverage %v vs truth %v (rel err %.3f)", tk, est.Coverage, truth.Coverage, re)
		}
		if re := stats.RelativeError(est.GlobalFreshness, truth.GlobalFreshness); re > 0.12 {
			t.Errorf("tick %d: est GF %v vs truth %v (rel err %.3f)", tk, est.GlobalFreshness, truth.GlobalFreshness, re)
		}
	}
}

func TestCoverageMonotoneAndSubmodular(t *testing.T) {
	// Theorem 1 on random instances via testing/quick: for random
	// A ⊆ B and x ∉ B, marginal(A, x) ≥ marginal(B, x), and adding any
	// element never decreases coverage.
	w := testWorld(t)
	e := buildEstimator(t, w)
	n := e.NumCandidates()
	cov := func(set []int, tk timeline.Tick) float64 {
		return e.Quality(set, tk).Coverage
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tk := timeline.Tick(310 + r.Intn(120))
		var a, b []int
		var x = -1
		perm := r.Perm(n)
		x = perm[0]
		for _, i := range perm[1:] {
			if r.Intn(2) == 0 {
				a = append(a, i)
			}
		}
		b = append(append([]int{}, a...), extraOf(perm[1:], a, r)...)
		ca, cax := cov(a, tk), cov(append(append([]int{}, a...), x), tk)
		cb, cbx := cov(b, tk), cov(append(append([]int{}, b...), x), tk)
		const eps = 1e-9
		if cax < ca-eps || cbx < cb-eps {
			return false // monotonicity violated
		}
		return (cax-ca)-(cbx-cb) >= -eps // submodularity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// extraOf returns elements of pool not in base (possibly empty subset).
func extraOf(pool, base []int, r *rand.Rand) []int {
	inBase := map[int]bool{}
	for _, v := range base {
		inBase[v] = true
	}
	var out []int
	for _, v := range pool {
		if !inBase[v] && r.Intn(2) == 0 {
			out = append(out, v)
		}
	}
	return out
}

func TestGlobalFreshnessMonotoneAndSubmodular(t *testing.T) {
	// Theorem 2 on random instances.
	w := testWorld(t)
	e := buildEstimator(t, w)
	n := e.NumCandidates()
	gf := func(set []int, tk timeline.Tick) float64 {
		return e.Quality(set, tk).GlobalFreshness
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tk := timeline.Tick(310 + r.Intn(120))
		perm := r.Perm(n)
		x := perm[0]
		var a []int
		for _, i := range perm[1:] {
			if r.Intn(2) == 0 {
				a = append(a, i)
			}
		}
		b := append(append([]int{}, a...), extraOf(perm[1:], a, r)...)
		ga, gax := gf(a, tk), gf(append(append([]int{}, a...), x), tk)
		gb, gbx := gf(b, tk), gf(append(append([]int{}, b...), x), tk)
		const eps = 1e-9
		if gax < ga-eps || gbx < gb-eps {
			return false
		}
		return (gax-ga)-(gbx-gb) >= -eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFrequencyVariantsLagBase(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	base := e.NumCandidates()
	total, err := e.AddFrequencyVariants([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if total != base*3 {
		t.Fatalf("total candidates = %d, want %d", total, base*3)
	}
	// A slower acquisition of the same source can only have lower or equal
	// coverage at any future tick.
	for i := 0; i < base; i++ {
		for v := 0; v < 2; v++ {
			vi := base + i*2 + v
			if e.Candidate(vi).SourceIndex != e.Candidate(i).SourceIndex {
				t.Fatalf("variant %d has wrong source index", vi)
			}
			for _, tk := range []timeline.Tick{320, 380, 440} {
				qb := e.Quality([]int{i}, tk).Coverage
				qv := e.Quality([]int{vi}, tk).Coverage
				if qv > qb+1e-9 {
					t.Errorf("cand %d divisor %d coverage %v above base %v at %d",
						i, e.Candidate(vi).Divisor(), qv, qb, tk)
				}
			}
		}
	}
}

func TestVariantsShareTables(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	base := e.NumCandidates()
	if _, err := e.AddFrequencyVariants([]int{3}); err != nil {
		t.Fatal(err)
	}
	c0, cv := e.Candidate(0), e.Candidate(base)
	if &c0.gi[0] != &cv.gi[0] {
		t.Error("variants should share effectiveness tables")
	}
	if cv.Divisor() != 3 {
		t.Errorf("divisor = %d", cv.Divisor())
	}
}

func TestLiteralModeDiffers(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	q1 := e.Quality([]int{0, 1}, 400)
	e.Literal = true
	q2 := e.Quality([]int{0, 1}, 400)
	if q1.GlobalFreshness == q2.GlobalFreshness {
		t.Error("literal exponent mode should change freshness estimates")
	}
	// Coverage does not involve the corrected exponents.
	if q1.Coverage != q2.Coverage {
		t.Error("literal mode must not change coverage")
	}
}

func TestDomainRestrictedEstimator(t *testing.T) {
	w := testWorld(t)
	p0 := world.DomainPoint{Location: 0, Category: 0}
	srcs := []*source.Source{
		mkSource(t, w, 0, defaultSpec(w.Points(), 0.9), 1),
		mkSource(t, w, 1, defaultSpec([]world.DomainPoint{p0}, 0.8), 3),
	}
	e, err := New(w, srcs, 300, 440, []world.DomainPoint{p0})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Points()) != 1 {
		t.Fatalf("points = %v", e.Points())
	}
	q := e.Quality([]int{0, 1}, 400)
	truth := metrics.QualityAt(w, srcs, 400, []world.DomainPoint{p0})
	if re := stats.RelativeError(q.Coverage, truth.Coverage); re > 0.06 {
		t.Errorf("restricted coverage est %v vs truth %v", q.Coverage, truth.Coverage)
	}
}

func TestQualityMultiConsistent(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	ts := []timeline.Tick{310, 350, 420}
	multi := e.QualityMulti([]int{0, 2}, ts)
	for i, tk := range ts {
		single := e.Quality([]int{0, 2}, tk)
		if multi[i] != single {
			t.Errorf("multi[%d] != single at %d", i, tk)
		}
	}
}

func TestAccuracyConsistentWithEq5(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	q := e.Quality([]int{0, 1, 2}, 380)
	want := metrics.AccuracyFromComponents(q.Coverage, q.LocalFreshness, q.GlobalFreshness)
	if math.Abs(q.Accuracy-want) > 1e-12 {
		t.Errorf("accuracy %v != Eq5 %v", q.Accuracy, want)
	}
	if q.Accuracy <= 0 || q.Accuracy > 1 {
		t.Errorf("accuracy out of range: %v", q.Accuracy)
	}
}
