//go:build race

package estimate

// raceEnabled gates allocation-count assertions: the race runtime adds
// its own bookkeeping allocations, so zero-alloc pins only hold without
// instrumentation.
const raceEnabled = true
