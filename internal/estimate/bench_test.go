package estimate

import (
	"context"
	"testing"

	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

func benchRNG(seed int64) *stats.RNG { return stats.NewRNG(seed) }

// benchmark fixtures are built once.
var (
	benchEst  *Estimator
	benchW    *world.World
	benchSrcs []*source.Source
)

func getBenchFixture(b *testing.B) (*world.World, []*source.Source) {
	b.Helper()
	if benchW != nil {
		return benchW, benchSrcs
	}
	w, err := world.Generate(world.Config{
		Subdomains: []world.SubdomainSpec{
			{Point: world.DomainPoint{Location: 0, Category: 0}, InitialEntities: 2000, LambdaAppear: 5, GammaDisappear: 0.01, GammaUpdate: 0.02},
			{Point: world.DomainPoint{Location: 1, Category: 0}, InitialEntities: 2000, LambdaAppear: 5, GammaDisappear: 0.01, GammaUpdate: 0.02},
		},
		Horizon: 500,
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var srcs []*source.Source
	for i := 0; i < 20; i++ {
		s, err := source.Observe(w, source.ID(i), source.Spec{
			Name:           "b",
			UpdateInterval: 1,
			Points:         w.Points(),
			Insert:         source.CaptureSpec{Prob: 0.6, Delay: source.ExponentialDelay{Rate: 0.3}},
			Delete:         source.CaptureSpec{Prob: 0.5, Delay: source.ExponentialDelay{Rate: 0.2}},
			Update:         source.CaptureSpec{Prob: 0.5, Delay: source.ExponentialDelay{Rate: 0.2}},
		}, benchRNG(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		srcs = append(srcs, s)
	}
	benchW, benchSrcs = w, srcs
	return w, srcs
}

func getBenchEstimator(b *testing.B) *Estimator {
	b.Helper()
	if benchEst != nil {
		return benchEst
	}
	w, srcs := getBenchFixture(b)
	e, err := New(w, srcs, 300, 490, nil)
	if err != nil {
		b.Fatal(err)
	}
	benchEst = e
	return e
}

// BenchmarkEstimatorNew measures the cold-start fit — the whole Section 4
// pipeline: per-subdomain world-model MLEs plus per-source profile builds,
// signature scans and effectiveness tabulation. "seq" is the
// single-worker baseline; "parallel" fans both fit stages across 4 workers
// (core-bound: on a single-CPU host the two are expected to tie). The
// companion "cached" variant lives in internal/modelcache and loads the
// same fit from the persistent model cache instead of computing it.
func BenchmarkEstimatorNew(b *testing.B) {
	w, srcs := getBenchFixture(b)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"seq", 1}, {"parallel", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewFit(context.Background(), w, srcs, 300, 490, nil, FitOptions{Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQualityMulti measures the profit oracle's core: a 10-candidate
// set evaluated at 10 future ticks over 2 subdomains.
func BenchmarkQualityMulti(b *testing.B) {
	e := getBenchEstimator(b)
	set := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18}
	ticks := []timeline.Tick{310, 330, 350, 370, 390, 410, 430, 450, 470, 490}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.QualityMulti(set, ticks)
	}
}

// BenchmarkQualitySingleton is the singleton-oracle cost that dominates
// greedy construction phases.
func BenchmarkQualitySingleton(b *testing.B) {
	e := getBenchEstimator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Quality([]int{i % 20}, 400)
	}
}

// BenchmarkQualityMultiAdd contrasts the greedy candidate probe before and
// after the incremental SetState API: "scratch" re-unions the whole set per
// probe (the old oracle cost), "incremental" layers one candidate on the
// cached state via the triple-popcount kernel.
func BenchmarkQualityMultiAdd(b *testing.B) {
	e := getBenchEstimator(b)
	set := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18}
	ticks := []timeline.Tick{310, 330, 350, 370, 390, 410, 430, 450, 470, 490}
	b.Run("scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := 2*(i%10) + 1 // odd candidates are outside the set
			e.QualityMulti(append(append([]int(nil), set...), x), ticks)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		st := e.NewSetState(set)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := 2*(i%10) + 1
			e.QualityMultiAdd(st, x, ticks)
		}
	})
}
