package estimate

import (
	"fmt"

	"freshsource/internal/bitset"
	"freshsource/internal/profile"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// Fitted is the plain-data snapshot of a fitted Estimator that the
// persistent model cache (internal/modelcache) persists and reloads: the
// per-subdomain world models and the per-source profiles — Kaplan–Meier
// steps, signature bit arrays, schedule scalars and delay observations.
//
// Only the expensively fitted state is captured. Everything derived from
// it deterministically — entity masks, survival/intensity lookup tables,
// tabulated effectiveness CDFs, frequency variants, the cost model — is
// rebuilt on load by FromFitted (and core.FromEstimator), which keeps
// cache files small and guarantees a loaded estimator is byte-identical
// to a fresh fit: both paths run the same derivation code on the same
// float64 inputs.
type Fitted struct {
	T0, MaxT timeline.Tick
	Points   []world.DomainPoint
	// Models[j] is the world model of Points[j].
	Models []FittedModel
	// Candidates hold only divisor-1 base candidates, in source order;
	// frequency variants are derived on load (AddFrequencyVariants), never
	// persisted — they share the base's tables by construction.
	Candidates []FittedCandidate
	// Universe is the entity-universe size of the signature bitsets.
	Universe int
}

// FittedModel is the persisted form of a WorldModel (Point and T0 live on
// the enclosing Fitted).
type FittedModel struct {
	LambdaIns, LambdaDel, LambdaUpd float64
	GammaDel, GammaUpd              float64
	OmegaT0                         int
	Periodic                        *stats.PeriodicPoissonModel
}

// FittedKM is the persisted form of a Kaplan–Meier distribution: its step
// points plus the observation count. A nil *FittedKM persists a nil
// distribution (no observations).
type FittedKM struct {
	Times, CDF []float64
	N          int
}

// FittedCandidate is the persisted form of one base candidate's profile.
type FittedCandidate struct {
	SourceID       source.ID
	Name           string
	UpdateInterval float64
	LastUpdate     timeline.Tick
	CoverageT0     float64
	// B, Bcov and Bup are the signature bit arrays as backing words over
	// the Fitted's Universe.
	B, Bcov, Bup []uint64
	Gi, Gd, Gu   *FittedKM
	InsertDelays []stats.Duration
	// Covers[j] flags whether the source observes Points[j].
	Covers []bool
}

// Export snapshots the estimator's fitted state for persistence. It must
// be called on a base fit — before AddFrequencyVariants or
// AddColdStartCandidate — because the cache re-derives variants on load;
// an estimator with derived candidates is rejected.
func (e *Estimator) Export() (*Fitted, error) {
	f := &Fitted{
		T0:     e.T0,
		MaxT:   e.MaxT,
		Points: append([]world.DomainPoint(nil), e.points...),
	}
	for _, m := range e.models {
		fm := FittedModel{
			LambdaIns: m.LambdaIns, LambdaDel: m.LambdaDel, LambdaUpd: m.LambdaUpd,
			GammaDel: m.GammaDel, GammaUpd: m.GammaUpd, OmegaT0: m.OmegaT0,
		}
		if m.PeriodicIns != nil {
			cp := *m.PeriodicIns
			cp.Rates = append([]float64(nil), m.PeriodicIns.Rates...)
			fm.Periodic = &cp
		}
		f.Models = append(f.Models, fm)
	}
	for i, c := range e.cands {
		if c.Divisor() != 1 || c.SourceIndex != i {
			return nil, fmt.Errorf("estimate: export after derived candidates were added (candidate %d: divisor %d, source %d)", i, c.Divisor(), c.SourceIndex)
		}
		p := c.Profile
		if f.Universe == 0 {
			f.Universe = p.B.Len()
		}
		fc := FittedCandidate{
			SourceID:       p.SourceID,
			Name:           p.Name,
			UpdateInterval: p.UpdateInterval,
			LastUpdate:     p.LastUpdate,
			CoverageT0:     p.CoverageT0,
			B:              p.B.Words(),
			Bcov:           p.Bcov.Words(),
			Bup:            p.Bup.Words(),
			Gi:             exportKM(p.Gi),
			Gd:             exportKM(p.Gd),
			Gu:             exportKM(p.Gu),
			InsertDelays:   append([]stats.Duration(nil), p.InsertDelays...),
			Covers:         append([]bool(nil), c.covers...),
		}
		f.Candidates = append(f.Candidates, fc)
	}
	return f, nil
}

func exportKM(km *stats.KaplanMeier) *FittedKM {
	if km == nil {
		return nil
	}
	times, cdf := km.Steps()
	return &FittedKM{Times: times, CDF: cdf, N: km.N()}
}

func importKM(f *FittedKM) (*stats.KaplanMeier, error) {
	if f == nil {
		return nil, nil
	}
	return stats.KaplanMeierFromSteps(f.Times, f.CDF, f.N)
}

// FromFitted reconstructs an estimator from a persisted base fit against
// the world it was fitted on: masks, lookup tables and effectiveness
// tables are re-derived through the same code paths as a fresh fit, so
// the result is byte-identical to the estimator Export was called on.
// FromFitted performs no statistical fitting — no world scans, no MLE, no
// Kaplan–Meier construction — which is what makes a model-cache hit fast.
func FromFitted(w *world.World, f *Fitted) (*Estimator, error) {
	if f == nil {
		return nil, fmt.Errorf("estimate: nil fitted snapshot")
	}
	if f.MaxT <= f.T0 {
		return nil, fmt.Errorf("estimate: fitted maxT %d must exceed t0 %d", f.MaxT, f.T0)
	}
	if len(f.Models) != len(f.Points) {
		return nil, fmt.Errorf("estimate: %d models for %d points", len(f.Models), len(f.Points))
	}
	if len(f.Candidates) == 0 {
		return nil, fmt.Errorf("estimate: fitted snapshot has no candidates")
	}
	if f.Universe != w.NumEntities() {
		return nil, fmt.Errorf("estimate: fitted universe %d does not match world's %d entities", f.Universe, w.NumEntities())
	}
	e := &Estimator{T0: f.T0, MaxT: f.MaxT, points: append([]world.DomainPoint(nil), f.Points...)}
	e.allocModelSlots()
	for j := range f.Points {
		fm := f.Models[j]
		m := &WorldModel{
			Point: f.Points[j], T0: f.T0,
			LambdaIns: fm.LambdaIns, LambdaDel: fm.LambdaDel, LambdaUpd: fm.LambdaUpd,
			GammaDel: fm.GammaDel, GammaUpd: fm.GammaUpd, OmegaT0: fm.OmegaT0,
		}
		if fm.Periodic != nil {
			cp := *fm.Periodic
			cp.Rates = append([]float64(nil), fm.Periodic.Rates...)
			m.PeriodicIns = &cp
		}
		e.setModel(j, m, w)
	}

	maxDelay := int(f.MaxT - f.T0 + 1)
	e.cands = make([]*Candidate, len(f.Candidates))
	for i := range f.Candidates {
		fc := &f.Candidates[i]
		if len(fc.Covers) != len(f.Points) {
			return nil, fmt.Errorf("estimate: candidate %d covers %d points, want %d", i, len(fc.Covers), len(f.Points))
		}
		gi, err := importKM(fc.Gi)
		if err != nil {
			return nil, fmt.Errorf("estimate: candidate %d Gi: %w", i, err)
		}
		gd, err := importKM(fc.Gd)
		if err != nil {
			return nil, fmt.Errorf("estimate: candidate %d Gd: %w", i, err)
		}
		gu, err := importKM(fc.Gu)
		if err != nil {
			return nil, fmt.Errorf("estimate: candidate %d Gu: %w", i, err)
		}
		prof := &profile.Profile{
			SourceID:       fc.SourceID,
			Name:           fc.Name,
			T0:             f.T0,
			B:              bitset.FromWords(f.Universe, fc.B),
			Bcov:           bitset.FromWords(f.Universe, fc.Bcov),
			Bup:            bitset.FromWords(f.Universe, fc.Bup),
			Gi:             gi,
			Gd:             gd,
			Gu:             gu,
			UpdateInterval: fc.UpdateInterval,
			LastUpdate:     fc.LastUpdate,
			AcqDivisor:     1,
			CoverageT0:     fc.CoverageT0,
			InsertDelays:   append([]stats.Duration(nil), fc.InsertDelays...),
		}
		c := &Candidate{Profile: prof, SourceIndex: i, covers: append([]bool(nil), fc.Covers...)}
		c.gi = tabulate(gi, maxDelay)
		c.gd = tabulate(gd, maxDelay)
		c.gu = tabulate(gu, maxDelay)
		e.cands[i] = c
	}
	e.compactTables()
	return e, nil
}
