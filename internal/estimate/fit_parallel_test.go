package estimate

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"freshsource/internal/source"
	"freshsource/internal/world"
)

func buildFitSources(t *testing.T, w *world.World) []*source.Source {
	t.Helper()
	p0 := world.DomainPoint{Location: 0, Category: 0}
	p1 := world.DomainPoint{Location: 1, Category: 0}
	return []*source.Source{
		mkSource(t, w, 0, defaultSpec(w.Points(), 0.9), 1),
		mkSource(t, w, 1, defaultSpec(w.Points(), 0.5), 2),
		mkSource(t, w, 2, defaultSpec([]world.DomainPoint{p0}, 0.8), 3),
		mkSource(t, w, 3, defaultSpec([]world.DomainPoint{p1}, 0.8), 4),
	}
}

// TestNewFitDeterministicAcrossWorkers pins the fit pipeline's central
// contract: the fitted estimator is byte-identical at any worker count —
// every model, table, signature and profile, compared structurally down
// to float bits via DeepEqual.
func TestNewFitDeterministicAcrossWorkers(t *testing.T) {
	w := testWorld(t)
	srcs := buildFitSources(t, w)

	ref, err := NewFit(context.Background(), w, srcs, 300, 440, nil, FitOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
		got, err := NewFit(context.Background(), w, srcs, 300, 440, nil, FitOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: fitted estimator differs from sequential fit", workers)
		}
	}
}

func TestNewFitCanceled(t *testing.T) {
	w := testWorld(t)
	srcs := buildFitSources(t, w)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := NewFit(ctx, w, srcs, 300, 440, nil, FitOptions{Workers: workers}); err == nil {
			t.Errorf("workers=%d: want error from canceled context", workers)
		}
	}
}

// TestFrequencyVariantsShareTables pins the aliasing invariant that both
// the variant fast path and the model cache rely on: an S^m variant's
// effectiveness tables, coverage flags and KM distributions are the base
// candidate's — shared, not recomputed — because effectiveness describes
// the source, not the acquisition schedule.
func TestFrequencyVariantsShareTables(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	base := e.NumCandidates()
	n, err := e.AddFrequencyVariants([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3*base {
		t.Fatalf("got %d candidates, want %d", n, 3*base)
	}
	for vi := base; vi < n; vi++ {
		v := e.Candidate(vi)
		b := e.Candidate(v.SourceIndex)
		if &v.gi[0] != &b.gi[0] || &v.gd[0] != &b.gd[0] || &v.gu[0] != &b.gu[0] {
			t.Errorf("variant %d does not alias base %d effectiveness tables", vi, v.SourceIndex)
		}
		if &v.covers[0] != &b.covers[0] {
			t.Errorf("variant %d does not alias base %d covers", vi, v.SourceIndex)
		}
		if v.Profile.Gi != b.Profile.Gi {
			t.Errorf("variant %d does not share base %d KM distributions", vi, v.SourceIndex)
		}
	}
}

// TestExportFromFittedRoundTrip checks the in-memory half of the model
// cache: Export → FromFitted reproduces the estimator exactly, including
// every derived table.
func TestExportFromFittedRoundTrip(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	f, err := e.Export()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromFitted(w, f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Error("FromFitted(Export()) differs from the original estimator")
	}
}

func TestExportRejectsDerivedCandidates(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	if _, err := e.AddFrequencyVariants([]int{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Export(); err == nil {
		t.Error("want error exporting an estimator with frequency variants")
	}
}

func TestFromFittedRejectsMismatchedWorld(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	f, err := e.Export()
	if err != nil {
		t.Fatal(err)
	}
	f.Universe++
	if _, err := FromFitted(w, f); err == nil {
		t.Error("want error for universe mismatch")
	}
}
