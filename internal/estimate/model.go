// Package estimate implements the statistical world-change models of
// Section 4.1.1 and the future-quality estimators of Section 4.2 of the
// paper: given source profiles built on a historical window [0, t0], it
// estimates the coverage, local freshness, global freshness and accuracy of
// integrating an arbitrary set of (source, acquisition-frequency)
// candidates at any future tick t > t0.
//
// The estimators are exactly the paper's Equations 9–19, evaluated per
// homogeneous subdomain and summed, with one deliberate correction: the
// survival factors inside the E[InsUp] and E[ExUp] sums use the occurrence
// time τ (e^{-γ(t-τ)}) rather than the window end t0 printed in the paper;
// the literal form is available behind the Literal switch.
package estimate

import (
	"fmt"
	"math"

	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// WorldModel is the fitted change model of one homogeneous subdomain
// (Section 4.1.1): Poisson appearance/disappearance/update intensities and
// exponential lifespan/update-interval rates, plus the subdomain size at
// the end of the training window.
type WorldModel struct {
	Point world.DomainPoint
	T0    timeline.Tick

	// LambdaIns is the Poisson intensity of appearances per tick (λi,
	// Eq. 6), the MLE being the average appearance rate over the window.
	LambdaIns float64
	// LambdaDel is the Poisson intensity of disappearances per tick (λd).
	LambdaDel float64
	// LambdaUpd is the Poisson intensity of value updates per tick (λu).
	LambdaUpd float64
	// GammaDel is the exponential lifespan rate (γd), fitted with the
	// right-censored MLE of Eq. 7.
	GammaDel float64
	// GammaUpd is the exponential update-interval rate (γu).
	GammaUpd float64
	// OmegaT0 is |Ω|t0 for the subdomain.
	OmegaT0 int
	// PeriodicIns holds per-phase appearance intensities when the training
	// window shows significant weekly seasonality (chi-square p < 0.01);
	// nil for homogeneous subdomains. LambdaInsAt consults it.
	PeriodicIns *stats.PeriodicPoissonModel
}

// LambdaInsAt returns the appearance intensity at a future tick — the
// phase rate for seasonal subdomains, λi otherwise.
func (m *WorldModel) LambdaInsAt(t timeline.Tick) float64 {
	if m.PeriodicIns != nil {
		return m.PeriodicIns.RateAt(int(t))
	}
	return m.LambdaIns
}

// FitWorldPoint fits a change model for one subdomain on [0, t0].
func FitWorldPoint(w *world.World, t0 timeline.Tick, p world.DomainPoint) (*WorldModel, error) {
	if t0 <= 0 || t0 >= w.Horizon() {
		return nil, fmt.Errorf("estimate: t0 %d outside (0, %d)", t0, w.Horizon())
	}
	pts := []world.DomainPoint{p}
	m := &WorldModel{Point: p, T0: t0, OmegaT0: w.AliveCount(t0, pts)}

	// λi: average appearances per tick over [1, t0] (tick 0 holds the
	// initial population, not process arrivals). When the counts show
	// significant weekly seasonality, keep the per-phase rates as well.
	app := w.AppearanceCounts(1, t0+1, pts)
	if pm, err := stats.FitPoisson(app, 1); err == nil {
		m.LambdaIns = pm.Lambda
	}
	if gof, err := stats.SeasonalityTest(app, 1, 7); err == nil && gof.PValue < 0.01 {
		if per, err := stats.FitPeriodicPoisson(app, 1, 7); err == nil {
			m.PeriodicIns = &per
		}
	}

	// γd via censored MLE; λd as the observed average disappearance rate.
	life := w.Lifespans(t0, pts)
	if em, err := stats.FitExponential(life); err == nil {
		m.GammaDel = em.Rate
		m.LambdaDel = float64(em.Events) / float64(t0)
	}

	// γu via censored MLE on update intervals; λu as the observed average
	// update rate.
	upd := w.UpdateIntervals(t0, pts)
	if em, err := stats.FitExponential(upd); err == nil {
		m.GammaUpd = em.Rate
	}
	nUpd := 0
	for _, id := range w.EntitiesOf(p) {
		for _, u := range w.Entity(id).Updates {
			if u <= t0 {
				nUpd++
			}
		}
	}
	m.LambdaUpd = float64(nUpd) / float64(t0)
	return m, nil
}

// ExpectedOmega is Eq. 14 evaluated with the paper's own time-varying
// disappearance intensity λd(τ) = γd·|Ω|τ (Section 4.1.1 defines λd as the
// window average of exactly this quantity). Summing Eq. 14 with that λd is
// the recurrence E[|Ω|τ+1] = E[|Ω|τ] + λi − γd·E[|Ω|τ], whose closed form
// relaxes exponentially to the steady state λi/γd. The constant-λd literal
// form badly mispredicts non-stationary populations (a shrinking
// population's historical average death rate keeps shrinking it forever).
func (m *WorldModel) ExpectedOmega(t timeline.Tick) float64 {
	dt := float64(t - m.T0)
	if dt <= 0 {
		return float64(m.OmegaT0)
	}
	if m.GammaDel <= 0 {
		return float64(m.OmegaT0) + m.LambdaIns*dt
	}
	steady := m.LambdaIns / m.GammaDel
	v := steady + (float64(m.OmegaT0)-steady)*math.Exp(-m.GammaDel*dt)
	if v < 0 {
		return 0
	}
	return v
}

// ExpectedOmegaLinear is the paper-literal Eq. 14 with the constant
// window-average λd: |Ω|t0 + (t−t0)(λi − λd), clamped at zero. Kept for
// the ablation study; it badly mispredicts non-stationary populations.
func (m *WorldModel) ExpectedOmegaLinear(t timeline.Tick) float64 {
	v := float64(m.OmegaT0) + float64(t-m.T0)*(m.LambdaIns-m.LambdaDel)
	if v < 0 {
		return 0
	}
	return v
}

// LambdaDelAt is the disappearance intensity at a future tick:
// λd(t) = γd·E[|Ω|t].
func (m *WorldModel) LambdaDelAt(t timeline.Tick) float64 {
	return m.GammaDel * m.ExpectedOmega(t)
}

// LambdaUpdAt is the value-update intensity at a future tick:
// λu(t) = γu·E[|Ω|t].
func (m *WorldModel) LambdaUpdAt(t timeline.Tick) float64 {
	return m.GammaUpd * m.ExpectedOmega(t)
}

// SurvivalDel is e^{-γd·dt}: the probability an entity does not disappear
// within dt ticks.
func (m *WorldModel) SurvivalDel(dt timeline.Tick) float64 {
	return expNeg(m.GammaDel, dt)
}

// SurvivalUpd is e^{-γu·dt}: the probability an entity's value does not
// change within dt ticks.
func (m *WorldModel) SurvivalUpd(dt timeline.Tick) float64 {
	return expNeg(m.GammaUpd, dt)
}

func expNeg(rate float64, dt timeline.Tick) float64 {
	if dt <= 0 {
		return 1
	}
	// Stable for the tiny rates the fits produce.
	x := rate * float64(dt)
	if x > 700 {
		return 0
	}
	return math.Exp(-x)
}

// PredictOmegaSeries returns E[|Ω|t] for each tick in ts, summed over the
// models — the world-size predictions of Figures 9 and 10a.
func PredictOmegaSeries(models []*WorldModel, ts []timeline.Tick) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		var sum float64
		for _, m := range models {
			sum += m.ExpectedOmega(t)
		}
		out[i] = sum
	}
	return out
}
