package estimate

import (
	"math"
	"testing"

	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
)

func TestAddColdStartCandidateValidation(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	s := mkSource(t, w, 9, defaultSpec(w.Points(), 0.8), 71)
	if _, err := e.AddColdStartCandidate(w, s, -1); err == nil {
		t.Error("want error for negative prior strength")
	}
}

func TestColdStartInheritsPoolWithNoHistory(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	// A newcomer whose log is empty over the training window.
	s := mkSource(t, w, 9, defaultSpec(w.Points(), 0.8), 72).Truncate(w.Horizon() - 1)
	idx, err := e.AddColdStartCandidate(w, s, 50)
	if err != nil {
		t.Fatal(err)
	}
	c := e.Candidate(idx)
	pooled := e.pooledTable(func(x *Candidate) []float64 { return x.gi }, int(e.MaxT-e.T0+1))
	// With zero exact observations the blended table is close to the pool
	// (censored observations still drag it down a little through the raw
	// KM, weighted 0).
	for d := 0; d < len(pooled); d += 20 {
		if math.Abs(c.gi[d]-pooled[d]) > 1e-9 {
			t.Fatalf("d=%d: cold-start table %v != pooled %v", d, c.gi[d], pooled[d])
		}
	}
	if c.SourceIndex <= 3 {
		t.Errorf("cold-start candidate reused source index %d", c.SourceIndex)
	}
}

func TestColdStartBeatsRawOnRecentSource(t *testing.T) {
	// The headline cold-start property: for a good source whose history
	// only covers the last slice of the training window, the shrunken
	// estimate predicts its future coverage better than the raw profile.
	w := testWorld(t)
	e := buildEstimator(t, w)

	full := mkSource(t, w, 9, defaultSpec(w.Points(), 0.85), 73)
	newcomer := full.Truncate(280) // seen for only 20 of 300 training ticks

	rawIdx, err := e.AddColdStartCandidate(w, newcomer, 0)
	if err != nil {
		t.Fatal(err)
	}
	shrunkIdx, err := e.AddColdStartCandidate(w, newcomer, 40)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth going forward: the source behaves like its full self.
	var rawErr, shrunkErr float64
	for _, tk := range []timeline.Tick{340, 380, 420} {
		truth := metrics.QualityAt(w, []*source.Source{full}, tk, nil).Coverage
		rawErr += stats.RelativeError(e.Quality([]int{rawIdx}, tk).Coverage, truth)
		shrunkErr += stats.RelativeError(e.Quality([]int{shrunkIdx}, tk).Coverage, truth)
	}
	if shrunkErr >= rawErr {
		t.Errorf("shrinkage did not help: raw err %v, shrunk err %v", rawErr, shrunkErr)
	}
}

func TestTruncate(t *testing.T) {
	w := testWorld(t)
	s := mkSource(t, w, 0, defaultSpec(w.Points(), 0.9), 74)
	cut := s.Truncate(200)
	if cut.Log().Len() >= s.Log().Len() {
		t.Error("truncation did not shrink the log")
	}
	for _, ev := range cut.Log().Events() {
		if ev.At < 200 {
			t.Fatalf("event before cut: %+v", ev)
		}
	}
	if cut.Name() != s.Name() || cut.UpdateInterval() != s.UpdateInterval() {
		t.Error("truncation changed metadata")
	}
}
