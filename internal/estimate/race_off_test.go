//go:build !race

package estimate

const raceEnabled = false
