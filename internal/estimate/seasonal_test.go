package estimate

import (
	"testing"

	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

func seasonalWorld(t *testing.T, amplitude float64) *world.World {
	t.Helper()
	w, err := world.Generate(world.Config{
		Subdomains: []world.SubdomainSpec{{
			Point:           world.DomainPoint{Location: 0, Category: 0},
			InitialEntities: 100,
			LambdaAppear:    12,
			GammaDisappear:  0.03,
			GammaUpdate:     0.01,
			WeeklyAmplitude: amplitude,
		}},
		Horizon: 500,
		Seed:    91,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSeasonalWorldDetected(t *testing.T) {
	w := seasonalWorld(t, 0.6)
	m, err := FitWorldPoint(w, 300, world.DomainPoint{Location: 0, Category: 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.PeriodicIns == nil {
		t.Fatal("seasonality not detected in the fitted model")
	}
	// Peak phase rate must exceed trough substantially.
	hi, lo := stats.Max(m.PeriodicIns.Rates), stats.Min(m.PeriodicIns.Rates)
	if hi < 1.5*lo {
		t.Errorf("phase rates too flat: %v", m.PeriodicIns.Rates)
	}
	// LambdaInsAt follows the phases; mean stays near λi.
	var sum float64
	for d := 0; d < 7; d++ {
		sum += m.LambdaInsAt(timeline.Tick(300 + d))
	}
	if avg := sum / 7; avg < 0.8*m.LambdaIns || avg > 1.2*m.LambdaIns {
		t.Errorf("phase-average %v far from λi %v", avg, m.LambdaIns)
	}
}

func TestHomogeneousWorldNotFlaggedSeasonal(t *testing.T) {
	w := seasonalWorld(t, 0)
	m, err := FitWorldPoint(w, 300, world.DomainPoint{Location: 0, Category: 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.PeriodicIns != nil {
		t.Error("homogeneous world flagged as seasonal")
	}
	if m.LambdaInsAt(310) != m.LambdaIns {
		t.Error("LambdaInsAt should be constant without seasonality")
	}
}

func TestSeasonalPredictionTracksPhases(t *testing.T) {
	// Short-horizon appearance predictions must follow the weekly cycle:
	// the model's per-tick intensity at the peak phase exceeds the trough
	// by roughly the generator's modulation.
	w := seasonalWorld(t, 0.6)
	m, err := FitWorldPoint(w, 300, world.DomainPoint{Location: 0, Category: 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.PeriodicIns == nil {
		t.Fatal("precondition: seasonal model")
	}
	// Compare against the realized future counts per phase.
	counts := w.AppearanceCounts(300, 480, nil)
	perPhase := make([]float64, 7)
	nums := make([]float64, 7)
	for i, c := range counts {
		p := (300 + i) % 7
		perPhase[p] += float64(c)
		nums[p]++
	}
	for p := 0; p < 7; p++ {
		actual := perPhase[p] / nums[p]
		pred := m.PeriodicIns.RateAt(p)
		if stats.RelativeError(pred, actual) > 0.25 {
			t.Errorf("phase %d: predicted %v, realized %v", p, pred, actual)
		}
	}
}
