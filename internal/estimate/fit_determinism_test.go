package estimate

import (
	"reflect"
	"testing"
)

func TestFitRunToRunDeterminism(t *testing.T) {
	w := testWorld(t)
	e1 := buildEstimator(t, w)
	e2 := buildEstimator(t, w)

	for j := range e1.points {
		if !reflect.DeepEqual(e1.models[j], e2.models[j]) {
			t.Errorf("point %d: world models differ: %+v vs %+v", j, e1.models[j], e2.models[j])
		}
		for name, pair := range map[string][2][]float64{
			"survDel": {e1.survDel[j], e2.survDel[j]},
			"survUpd": {e1.survUpd[j], e2.survUpd[j]},
			"lamIns":  {e1.lamIns[j], e2.lamIns[j]},
			"lamDel":  {e1.lamDel[j], e2.lamDel[j]},
			"lamUpd":  {e1.lamUpd[j], e2.lamUpd[j]},
		} {
			for d := range pair[0] {
				if pair[0][d] != pair[1][d] {
					t.Errorf("point %d %s[%d]: %.17g vs %.17g", j, name, d, pair[0][d], pair[1][d])
					break
				}
			}
		}
	}
	for i := range e1.cands {
		c1, c2 := e1.cands[i], e2.cands[i]
		if c1.Profile.UpdateInterval != c2.Profile.UpdateInterval || c1.Profile.CoverageT0 != c2.Profile.CoverageT0 {
			t.Errorf("cand %d: profile scalars differ", i)
		}
		for d := range c1.gi {
			if c1.gi[d] != c2.gi[d] || c1.gd[d] != c2.gd[d] || c1.gu[d] != c2.gu[d] {
				t.Errorf("cand %d delay %d: effectiveness tables differ", i, d)
				break
			}
		}
	}
	q1 := e1.Quality([]int{0, 2}, e1.T0+20)
	q2 := e2.Quality([]int{0, 2}, e2.T0+20)
	if q1 != q2 {
		t.Errorf("quality differs: %+v vs %+v", q1, q2)
	}
	q3 := e1.Quality([]int{0, 2}, e1.T0+20)
	if q1 != q3 {
		t.Errorf("same estimator, repeated quality differs: %+v vs %+v", q1, q3)
	}
}
