package estimate

import (
	"errors"
	"fmt"

	"freshsource/internal/profile"
	"freshsource/internal/source"
	"freshsource/internal/world"
)

// This file implements the paper's future-work direction of Section 8:
// handling sources that appear over time. A newly appeared source has a
// short history, so its Kaplan–Meier effectiveness distributions are noisy
// (or empty). AddColdStartCandidate profiles the newcomer on whatever
// window it has and shrinks its effectiveness tables toward the pooled
// average of the established sources:
//
//	G̃(d) = (n·Ĝ(d) + k·Ḡ(d)) / (n + k)
//
// where n is the newcomer's number of delay observations, Ḡ the pooled
// (mean) table over existing base candidates, and k the prior strength in
// pseudo-observations. With n = 0 the newcomer inherits the fleet average;
// as history accrues the prior washes out.

// AddColdStartCandidate profiles a newly appeared source (typically one
// whose capture log only spans the tail of the training window), blends
// its effectiveness with the pooled prior of strength k, and appends it as
// a selectable candidate. It returns the new candidate's index.
func (e *Estimator) AddColdStartCandidate(w *world.World, s *source.Source, k float64) (int, error) {
	if k < 0 {
		return 0, errors.New("estimate: negative prior strength")
	}
	if len(e.cands) == 0 {
		return 0, errors.New("estimate: no established candidates to pool a prior from")
	}
	prof, err := profile.Build(w, s, e.T0, e.points)
	if err != nil {
		return 0, fmt.Errorf("estimate: profiling cold-start source: %w", err)
	}

	covered := make(map[world.DomainPoint]bool, len(s.Spec().Points))
	for _, p := range s.Spec().Points {
		covered[p] = true
	}
	maxDelay := int(e.MaxT - e.T0 + 1)
	c := &Candidate{
		Profile:     prof,
		SourceIndex: e.maxSourceIndex() + 1,
		covers:      make([]bool, len(e.points)),
	}
	for j, p := range e.points {
		c.covers[j] = covered[p]
	}

	// Effective sample size: the exact (uncensored) delay observations. A
	// newcomer mostly produces censored observations for entities it never
	// had a fair chance to capture, so its raw tables are systematically
	// pessimistic — exactly what the prior corrects.
	var n float64
	for _, o := range prof.InsertDelays {
		if !o.Censored {
			n++
		}
	}
	c.gi = blend(tabulate(prof.Gi, maxDelay), e.pooledTable(func(x *Candidate) []float64 { return x.gi }, maxDelay), n, k)
	c.gd = blend(tabulate(prof.Gd, maxDelay), e.pooledTable(func(x *Candidate) []float64 { return x.gd }, maxDelay), n, k)
	c.gu = blend(tabulate(prof.Gu, maxDelay), e.pooledTable(func(x *Candidate) []float64 { return x.gu }, maxDelay), n, k)

	// A newcomer with no usable coverage statistic inherits the fleet
	// average for the Cov(S,τ) factor of Eq. 10–11.
	if prof.CoverageT0 == 0 {
		var sum float64
		cnt := 0
		for _, x := range e.cands {
			if x.Divisor() == 1 {
				sum += x.Profile.CoverageT0
				cnt++
			}
		}
		if cnt > 0 {
			prof.CoverageT0 = sum / float64(cnt)
		}
	}

	e.cands = append(e.cands, c)
	return len(e.cands) - 1, nil
}

func (e *Estimator) maxSourceIndex() int {
	m := -1
	for _, c := range e.cands {
		if c.SourceIndex > m {
			m = c.SourceIndex
		}
	}
	return m
}

// pooledTable averages one effectiveness table across the established base
// (divisor-1) candidates.
func (e *Estimator) pooledTable(get func(*Candidate) []float64, maxDelay int) []float64 {
	out := make([]float64, maxDelay+1)
	cnt := 0
	for _, c := range e.cands {
		if c.Divisor() != 1 {
			continue
		}
		tab := get(c)
		for d := 0; d <= maxDelay && d < len(tab); d++ {
			out[d] += tab[d]
		}
		cnt++
	}
	if cnt > 0 {
		for d := range out {
			out[d] /= float64(cnt)
		}
	}
	return out
}

// blend mixes an observed table with a prior table at n observations vs k
// pseudo-observations.
func blend(obs, prior []float64, n, k float64) []float64 {
	if n+k == 0 {
		return obs
	}
	out := make([]float64, len(obs))
	for d := range obs {
		p := prior[d]
		out[d] = (n*obs[d] + k*p) / (n + k)
	}
	return out
}
