package estimate

import (
	"context"
	"errors"
	"fmt"

	"freshsource/internal/obs"
	"freshsource/internal/profile"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// Accumulator maintains, per source, the sufficient statistics behind a
// full NewFit — the Kaplan–Meier capture index, the entity-state map and
// the schedule fold (see profile.Tracker) — so streamed observations can
// advance the training cut and refit the estimator without rescanning any
// source history.
//
// The contract, pinned by TestStreamingRefitEquivalence: after any sequence
// of Advance calls ending at cut c, Build returns an Estimator
// byte-identical to NewFit over sources whose logs are the archived events
// plus every streamed delta, fitted at t0 = c. The exactness argument:
//
//   - All fitted quantities are sums and order-statistics over tick-valued
//     integer observations held in float64 (every value < 2^53), so
//     accumulation is exact and the folds commute with batching.
//   - The per-source statistics are pure folds over the time-ordered event
//     stream; Advance feeds events in exactly the order a cold Log sort
//     would produce them (profile.Tracker.Extend's merge).
//   - The world side (per-point MLEs and lookup tables) depends only on the
//     immutable world and the cut, and is re-derived at each Build through
//     the same FitWorldPoint/setModel path NewFit uses.
//   - Censored delay durations (cut − tick) depend on the cut itself, so
//     Build re-enumerates observations through the one shared enumeration
//     loop; what the delta-maintained state buys is never touching raw
//     event logs again — per-epoch cost is proportional to the corpus, not
//     to accumulated history.
//
// An Accumulator is not safe for concurrent use; callers (the ingestion
// epoch pipeline) serialize Advance/Build.
type Accumulator struct {
	w        *world.World
	srcs     []*source.Source
	pts      []world.DomainPoint
	maxT     timeline.Tick
	cut      timeline.Tick
	workers  int
	trackers []*profile.Tracker
	// broken latches a failed or canceled Advance: a partially extended
	// tracker set no longer matches any consistent cut, so every later call
	// fails loudly instead of producing a silently wrong fit.
	broken error
}

// NewAccumulator builds an accumulator positioned at cut t0 over the query
// domain pts (nil = every world point), scanning each source's archived
// history once — the same prefix a cold fit at t0 would consume. The
// per-source scans fan across opt.Workers (0 = GOMAXPROCS).
func NewAccumulator(ctx context.Context, w *world.World, srcs []*source.Source, t0, maxT timeline.Tick, pts []world.DomainPoint, opt FitOptions) (*Accumulator, error) {
	if len(srcs) == 0 {
		return nil, errors.New("estimate: no sources")
	}
	if maxT <= t0 {
		return nil, fmt.Errorf("estimate: maxT %d must exceed t0 %d", maxT, t0)
	}
	if pts == nil {
		pts = w.Points()
	}
	a := &Accumulator{
		w:        w,
		srcs:     srcs,
		pts:      pts,
		maxT:     maxT,
		cut:      t0,
		workers:  opt.workers(),
		trackers: make([]*profile.Tracker, len(srcs)),
	}
	defer obs.Start("estimate.stream.init.seconds").End()
	errs := make([]error, len(srcs))
	fitSweep(ctx, a.workers, len(srcs), func(i int) {
		tr, err := profile.NewTracker(w, srcs[i], t0, pts)
		if err != nil {
			errs[i] = err
			return
		}
		a.trackers[i] = tr
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("estimate: tracker init canceled: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Cut returns the current training cut.
func (a *Accumulator) Cut() timeline.Tick { return a.cut }

// MaxT returns the largest future tick estimators built here support; the
// cut must stay strictly below it.
func (a *Accumulator) MaxT() timeline.Tick { return a.maxT }

// Advance folds one committed epoch: the cut moves to newCut and each
// source's tracker consumes its archived events in (cut, newCut] merged
// with perSource[i] — that source's accepted streamed observations, sorted
// by timeline.Less with ticks in (cut, newCut]. newCut must stay strictly
// below MaxT so the estimator keeps a non-empty future window. Any error
// (or cancellation) poisons the accumulator: tracker state may be
// partially advanced and no longer matches a consistent cut.
func (a *Accumulator) Advance(ctx context.Context, newCut timeline.Tick, perSource [][]timeline.Event) error {
	if a.broken != nil {
		return fmt.Errorf("estimate: accumulator poisoned by earlier failure: %w", a.broken)
	}
	if len(perSource) != len(a.srcs) {
		return fmt.Errorf("estimate: %d event slices for %d sources", len(perSource), len(a.srcs))
	}
	if newCut <= a.cut {
		return fmt.Errorf("estimate: cut must advance: %d -> %d", a.cut, newCut)
	}
	if newCut >= a.maxT {
		return fmt.Errorf("estimate: cut %d must stay below maxT %d", newCut, a.maxT)
	}
	defer obs.Start("estimate.stream.advance.seconds").End()
	errs := make([]error, len(a.srcs))
	fitSweep(ctx, a.workers, len(a.srcs), func(i int) {
		errs[i] = a.trackers[i].Extend(newCut, perSource[i])
	})
	if err := ctx.Err(); err != nil {
		a.broken = err
		return fmt.Errorf("estimate: advance canceled: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			a.broken = err
			return err
		}
	}
	a.cut = newCut
	return nil
}

// Build fits an estimator at the current cut from the maintained
// statistics: fresh per-point world models (the world is immutable, so
// refitting at the new cut is exact by construction) plus per-source
// candidates derived from the trackers, assembled through the same
// setModel/candidateFromProfile/compactTables pipeline NewFit uses. Build
// does not mutate the accumulator, so a failed downstream publish can
// simply retry it.
func (a *Accumulator) Build(ctx context.Context) (*Estimator, error) {
	if a.broken != nil {
		return nil, fmt.Errorf("estimate: accumulator poisoned by earlier failure: %w", a.broken)
	}
	defer obs.Start("estimate.stream.build.seconds").End()
	e := &Estimator{T0: a.cut, MaxT: a.maxT, points: a.pts}
	e.allocModelSlots()
	{
		errs := make([]error, len(a.pts))
		fitSweep(ctx, a.workers, len(a.pts), func(j int) {
			m, err := FitWorldPoint(a.w, a.cut, a.pts[j])
			if err != nil {
				errs[j] = err
				return
			}
			e.setModel(j, m, a.w)
		})
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("estimate: refit canceled: %w", err)
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	maxDelay := int(a.maxT - a.cut + 1)
	e.cands = make([]*Candidate, len(a.srcs))
	errs := make([]error, len(a.srcs))
	fitSweep(ctx, a.workers, len(a.srcs), func(i int) {
		prof, err := a.trackers[i].Build()
		if err != nil {
			errs[i] = err
			return
		}
		e.cands[i] = candidateFromProfile(prof, a.srcs[i], i, a.pts, maxDelay)
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("estimate: refit canceled: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	e.compactTables()
	obs.Counter("estimate.stream.builds").Inc()
	return e, nil
}
