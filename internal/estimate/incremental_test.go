package estimate

import (
	"math/rand"
	"sync"
	"testing"

	"freshsource/internal/timeline"
)

// TestQualityMultiAddBitIdentical: the incremental add path must reproduce
// the from-scratch estimate bit for bit (==, no tolerance) — the selection
// algorithms rely on this to make the incremental sweeps return the exact
// sequential result.
func TestQualityMultiAddBitIdentical(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	ticks := []timeline.Tick{310, 350, 400, 440}
	r := rand.New(rand.NewSource(7))

	n := e.NumCandidates()
	for trial := 0; trial < 60; trial++ {
		// A random base set (possibly empty) and a random x outside it.
		var set []int
		member := make([]bool, n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				set = append(set, i)
				member[i] = true
			}
		}
		if len(set) == n {
			set, member[set[len(set)-1]] = set[:len(set)-1], false
		}
		x := r.Intn(n)
		for member[x] {
			x = r.Intn(n)
		}

		st := e.NewSetState(set)
		inc := e.QualityMultiAdd(st, x, ticks)
		ref := e.QualityMulti(append(append([]int(nil), set...), x), ticks)
		for k := range ticks {
			if inc[k] != ref[k] {
				t.Fatalf("trial %d set=%v x=%d tick %d:\nincremental %+v\nfrom-scratch %+v",
					trial, set, x, ticks[k], inc[k], ref[k])
			}
		}
	}
}

// TestQualityMultiAddEmptyBase: adding to the empty state must equal the
// singleton estimate.
func TestQualityMultiAddEmptyBase(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	ticks := []timeline.Tick{320, 420}
	st := e.NewSetState(nil)
	for x := 0; x < e.NumCandidates(); x++ {
		inc := e.QualityMultiAdd(st, x, ticks)
		ref := e.QualityMulti([]int{x}, ticks)
		for k := range ticks {
			if inc[k] != ref[k] {
				t.Fatalf("x=%d tick %d: incremental %+v != singleton %+v", x, ticks[k], inc[k], ref[k])
			}
		}
	}
}

// TestSetStateConcurrentProbes: one shared state probed from many
// goroutines (the parallel-sweep access pattern) must stay correct; run
// under -race this doubles as the estimator's concurrency test.
func TestSetStateConcurrentProbes(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	ticks := []timeline.Tick{330, 380, 430}
	st := e.NewSetState([]int{0})

	want := make([][]QualityEstimate, e.NumCandidates())
	for x := 1; x < e.NumCandidates(); x++ {
		want[x] = e.QualityMulti([]int{0, x}, ticks)
	}

	var wg sync.WaitGroup
	for rep := 0; rep < 4; rep++ {
		for x := 1; x < e.NumCandidates(); x++ {
			wg.Add(1)
			go func(x int) {
				defer wg.Done()
				got := e.QualityMultiAdd(st, x, ticks)
				for k := range ticks {
					if got[k] != want[x][k] {
						t.Errorf("concurrent probe x=%d tick %d mismatch", x, ticks[k])
						return
					}
				}
			}(x)
		}
	}
	wg.Wait()
}

// TestQualityMultiAddIntoReuse: the Into variant must be bit-identical to
// QualityMultiAdd, reuse the caller's buffer when capacity suffices, and —
// once the state's per-tick miss tables are warm — allocate nothing. This
// is the steady-state probe the selection sweeps issue, so zero here is
// what keeps the whole CELF solve allocation-flat per round.
func TestQualityMultiAddIntoReuse(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	ticks := []timeline.Tick{310, 350, 400}
	st := e.NewSetState([]int{0, 2})

	buf := make([]QualityEstimate, 0, len(ticks))
	got := e.QualityMultiAddInto(st, 1, ticks, buf)
	ref := e.QualityMultiAdd(st, 1, ticks)
	for k := range ticks {
		if got[k] != ref[k] {
			t.Fatalf("tick %d: Into %+v != Add %+v", ticks[k], got[k], ref[k])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Error("Into did not reuse the caller's buffer")
	}

	// Warm state + adequate buffer: the probe allocates nothing. The race
	// runtime allocates for its own bookkeeping, so the pin is unracable.
	if raceEnabled {
		return
	}
	if avg := testing.AllocsPerRun(100, func() {
		got = e.QualityMultiAddInto(st, 1, ticks, got[:0])
	}); avg != 0 {
		t.Errorf("warm QualityMultiAddInto allocates %v per run, want 0", avg)
	}
}

// TestQualityMultiStateBitIdentical: the warm-state evaluation path (cached
// t0 counts + per-tick miss products) must reproduce the from-scratch
// QualityMulti bit for bit, including on the empty set, and stay identical
// when the same state is re-queried (the serving registry's warm path).
func TestQualityMultiStateBitIdentical(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	ticks := []timeline.Tick{310, 350, 400, 440}
	r := rand.New(rand.NewSource(11))

	n := e.NumCandidates()
	sets := [][]int{nil, {0}}
	for trial := 0; trial < 20; trial++ {
		var set []int
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				set = append(set, i)
			}
		}
		sets = append(sets, set)
	}
	for _, set := range sets {
		st := e.NewSetState(set)
		ref := e.QualityMulti(set, ticks)
		for rep := 0; rep < 2; rep++ { // second pass hits the warm miss cache
			got := e.QualityMultiState(st, ticks)
			for k := range ticks {
				if got[k] != ref[k] {
					t.Fatalf("set=%v rep=%d tick %d:\nstate %+v\nfrom-scratch %+v",
						set, rep, ticks[k], got[k], ref[k])
				}
			}
		}
		// Overlapping tick vectors reuse the cached products per tick.
		sub := e.QualityMultiState(st, ticks[1:3])
		if sub[0] != ref[1] || sub[1] != ref[2] {
			t.Fatalf("set=%v: overlapping Tf mismatch", set)
		}
	}
}

// TestSetStateCachesMatchFromScratch: the state's cached t0 counts equal a
// from-scratch QualityMulti evaluation at t0 boundary behavior — i.e. the
// state-built covering lists drive identical estimates.
func TestSetStateReusableAcrossTicks(t *testing.T) {
	w := testWorld(t)
	e := buildEstimator(t, w)
	st := e.NewSetState([]int{1, 2})
	// The same state serves probes at different tick vectors.
	a := e.QualityMultiAdd(st, 0, []timeline.Tick{310})
	b := e.QualityMultiAdd(st, 0, []timeline.Tick{310, 440})
	if a[0] != b[0] {
		t.Errorf("same tick through different vectors: %+v != %+v", a[0], b[0])
	}
}
