// Package timeline defines the discrete time axis and the event model
// shared by the world simulator, the source simulator, the history
// integrator and the profilers.
//
// Time is a discrete Tick; one tick corresponds to one day, matching the
// daily snapshots of the paper's BL and GDELT corpora. The life of an
// entity is a sequence of events: one Appear, zero or more Updates (each
// incrementing the entity's version), and at most one Disappear. A Log is a
// time-ordered sequence of such events; the state of a collection of
// entities at any tick — a Snapshot — is obtained by replaying the log.
package timeline

import (
	"fmt"
	"sort"
)

// Tick is a discrete point in time (one tick = one day).
type Tick int

// EntityID identifies an entity of the data domain. IDs are dense small
// integers so they can index bit-array signatures directly.
type EntityID int

// EventKind distinguishes the three kinds of world changes the paper
// models: entity appearances, disappearances and value changes.
type EventKind uint8

const (
	// Appear marks the birth of an entity (initial version 0).
	Appear EventKind = iota
	// Update marks a value change of an existing entity (version += 1).
	Update
	// Disappear marks the removal of an entity from the domain.
	Disappear
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Appear:
		return "appear"
	case Update:
		return "update"
	case Disappear:
		return "disappear"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one change to one entity at one tick.
type Event struct {
	Entity EntityID
	Kind   EventKind
	At     Tick
	// Version is the entity's version after the event: 0 for Appear, the
	// incremented version for Update, and the last live version for
	// Disappear.
	Version int
}

// Log is an append-only collection of events ordered by (At, Entity, Kind).
// Appending does not need to be in time order; the log sorts lazily.
type Log struct {
	events []Event
	sorted bool
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{sorted: true} }

// Append adds an event to the log.
func (l *Log) Append(e Event) {
	if n := len(l.events); l.sorted && n > 0 && less(e, l.events[n-1]) {
		l.sorted = false
	}
	l.events = append(l.events, e)
}

// less orders events by time, then entity, then kind (Appear < Update <
// Disappear), so replaying ties is well-defined.
func less(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Entity != b.Entity {
		return a.Entity < b.Entity
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Version < b.Version
}

// Less is the canonical replay order, exported for consumers that merge
// event streams (the streaming-ingestion epoch path) and must interleave
// exactly as a Log would sort.
func Less(a, b Event) bool { return less(a, b) }

func (l *Log) ensureSorted() {
	if !l.sorted {
		sort.Slice(l.events, func(i, j int) bool { return less(l.events[i], l.events[j]) })
		l.sorted = true
	}
}

// Len returns the number of events.
func (l *Log) Len() int { return len(l.events) }

// Events returns the events in time order. The returned slice is owned by
// the log and must not be modified.
func (l *Log) Events() []Event {
	l.ensureSorted()
	return l.events
}

// Between returns the events with lo ≤ At < hi, in time order. The returned
// slice aliases the log's storage.
func (l *Log) Between(lo, hi Tick) []Event {
	l.ensureSorted()
	i := sort.Search(len(l.events), func(k int) bool { return l.events[k].At >= lo })
	j := sort.Search(len(l.events), func(k int) bool { return l.events[k].At >= hi })
	return l.events[i:j]
}

// LastEventAt returns the tick of the last event at or before t, and false
// when the log holds no event in (-∞, t] — the freshness monitor's "last
// successful capture" lookup.
func (l *Log) LastEventAt(t Tick) (Tick, bool) {
	l.ensureSorted()
	i := sort.Search(len(l.events), func(k int) bool { return l.events[k].At > t })
	if i == 0 {
		return 0, false
	}
	return l.events[i-1].At, true
}

// EntityState is the state of one entity in a snapshot.
type EntityState struct {
	Entity EntityID
	// Version is the entity's current version (number of value updates
	// applied so far).
	Version int
	// Since is the tick of the event that produced this version.
	Since Tick
}

// Snapshot is the set of live entities, with versions, at a tick.
type Snapshot struct {
	At     Tick
	States map[EntityID]EntityState
}

// Contains reports whether the snapshot holds the entity.
func (s *Snapshot) Contains(id EntityID) bool {
	_, ok := s.States[id]
	return ok
}

// Size returns the number of entities in the snapshot.
func (s *Snapshot) Size() int { return len(s.States) }

// Materialize replays the log up to and including tick at and returns the
// resulting snapshot.
func Materialize(l *Log, at Tick) *Snapshot {
	snap := &Snapshot{At: at, States: make(map[EntityID]EntityState)}
	for _, e := range l.Events() {
		if e.At > at {
			break
		}
		ApplyEvent(snap.States, e)
	}
	return snap
}

// ApplyEvent applies one event to a mutable entity-state map. It is the
// single place where event semantics are defined, shared by Materialize and
// the incremental scanners in other packages. Replays are tolerant:
// updating or deleting an absent entity inserts/ignores rather than
// panicking, because source logs legitimately contain updates for entities
// the source inserted late or never.
func ApplyEvent(states map[EntityID]EntityState, e Event) {
	switch e.Kind {
	case Appear, Update:
		cur, ok := states[e.Entity]
		if !ok || e.Version >= cur.Version {
			states[e.Entity] = EntityState{Entity: e.Entity, Version: e.Version, Since: e.At}
		}
	case Disappear:
		delete(states, e.Entity)
	}
}

// DiffSnapshots derives the events that transform prev into next, stamped
// at next.At: entities present only in next appear, entities present only
// in prev disappear, and entities whose version advanced update. This is
// how a log is reconstructed from an archive of periodic full snapshots —
// the form real source dumps arrive in. A version that moved backwards is
// reported as no event (the newer snapshot's version is kept by replay
// semantics anyway).
func DiffSnapshots(prev, next *Snapshot) []Event {
	var out []Event
	for id, st := range next.States {
		pst, ok := prev.States[id]
		switch {
		case !ok:
			out = append(out, Event{Entity: id, Kind: Appear, At: next.At, Version: st.Version})
		case st.Version > pst.Version:
			out = append(out, Event{Entity: id, Kind: Update, At: next.At, Version: st.Version})
		}
	}
	for id, pst := range prev.States {
		if _, ok := next.States[id]; !ok {
			out = append(out, Event{Entity: id, Kind: Disappear, At: next.At, Version: pst.Version})
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// LogFromSnapshots reconstructs an event log from a time-ordered sequence
// of full snapshots. The first snapshot's contents appear at its own tick.
func LogFromSnapshots(snaps []*Snapshot) (*Log, error) {
	l := NewLog()
	if len(snaps) == 0 {
		return l, nil
	}
	empty := &Snapshot{At: snaps[0].At, States: map[EntityID]EntityState{}}
	prev := empty
	for i, s := range snaps {
		if i > 0 && s.At <= prev.At {
			return nil, fmt.Errorf("timeline: snapshots out of order at %d", s.At)
		}
		for _, e := range DiffSnapshots(prev, s) {
			l.Append(e)
		}
		prev = s
	}
	return l, nil
}

// Scanner iterates a log tick by tick, maintaining the running snapshot
// incrementally. It is the building block for computing quality timelines
// without re-materialising from scratch at every tick.
type Scanner struct {
	log    *Log
	pos    int
	now    Tick
	states map[EntityID]EntityState
}

// NewScanner returns a scanner positioned before the first event.
func NewScanner(l *Log) *Scanner {
	l.ensureSorted()
	return &Scanner{log: l, now: -1, states: make(map[EntityID]EntityState)}
}

// AdvanceTo applies all events with At ≤ t. It panics if t is behind the
// scanner's current position.
func (s *Scanner) AdvanceTo(t Tick) {
	if t < s.now {
		panic(fmt.Sprintf("timeline: scanner moved backwards: %d < %d", t, s.now))
	}
	ev := s.log.events
	for s.pos < len(ev) && ev[s.pos].At <= t {
		ApplyEvent(s.states, ev[s.pos])
		s.pos++
	}
	s.now = t
}

// States returns the scanner's current entity states. The map is owned by
// the scanner and must not be modified.
func (s *Scanner) States() map[EntityID]EntityState { return s.states }

// Now returns the scanner's current tick.
func (s *Scanner) Now() Tick { return s.now }
