package timeline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventKindString(t *testing.T) {
	if Appear.String() != "appear" || Update.String() != "update" || Disappear.String() != "disappear" {
		t.Error("EventKind strings wrong")
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestLogOrdering(t *testing.T) {
	l := NewLog()
	l.Append(Event{Entity: 2, Kind: Appear, At: 5})
	l.Append(Event{Entity: 1, Kind: Appear, At: 3})
	l.Append(Event{Entity: 1, Kind: Update, At: 3, Version: 1}) // same tick: Appear < Update
	ev := l.Events()
	if len(ev) != 3 {
		t.Fatalf("Len = %d", len(ev))
	}
	if ev[0].Entity != 1 || ev[0].Kind != Appear {
		t.Errorf("first event = %+v", ev[0])
	}
	if ev[1].Kind != Update {
		t.Errorf("second event = %+v", ev[1])
	}
	if ev[2].At != 5 {
		t.Errorf("third event = %+v", ev[2])
	}
}

func TestBetween(t *testing.T) {
	l := NewLog()
	for i := 0; i < 10; i++ {
		l.Append(Event{Entity: EntityID(i), Kind: Appear, At: Tick(i)})
	}
	got := l.Between(3, 7)
	if len(got) != 4 {
		t.Fatalf("Between(3,7) len = %d", len(got))
	}
	if got[0].At != 3 || got[3].At != 6 {
		t.Errorf("Between bounds wrong: %v..%v", got[0].At, got[3].At)
	}
	if len(l.Between(20, 30)) != 0 {
		t.Error("out-of-range Between should be empty")
	}
}

func TestLastEventAt(t *testing.T) {
	l := NewLog()
	if _, ok := l.LastEventAt(100); ok {
		t.Error("empty log should report no last event")
	}
	for _, at := range []Tick{2, 5, 5, 9} {
		l.Append(Event{Entity: 1, Kind: Update, At: at})
	}
	cases := []struct {
		at   Tick
		want Tick
		ok   bool
	}{
		{1, 0, false}, // before the first event
		{2, 2, true},  // exact hit
		{7, 5, true},  // between events
		{9, 9, true},
		{50, 9, true}, // past the end
	}
	for _, c := range cases {
		got, ok := l.LastEventAt(c.at)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("LastEventAt(%d) = (%d, %v), want (%d, %v)", c.at, got, ok, c.want, c.ok)
		}
	}
}

func TestMaterializeLifecycle(t *testing.T) {
	l := NewLog()
	l.Append(Event{Entity: 1, Kind: Appear, At: 0})
	l.Append(Event{Entity: 1, Kind: Update, At: 5, Version: 1})
	l.Append(Event{Entity: 1, Kind: Update, At: 9, Version: 2})
	l.Append(Event{Entity: 1, Kind: Disappear, At: 12, Version: 2})
	l.Append(Event{Entity: 2, Kind: Appear, At: 7})

	s := Materialize(l, 4)
	if !s.Contains(1) || s.Contains(2) || s.Size() != 1 {
		t.Errorf("snapshot@4 wrong: %+v", s)
	}
	if s.States[1].Version != 0 {
		t.Errorf("version@4 = %d", s.States[1].Version)
	}

	s = Materialize(l, 9)
	if s.States[1].Version != 2 || s.States[1].Since != 9 {
		t.Errorf("state@9 = %+v", s.States[1])
	}
	if !s.Contains(2) {
		t.Error("entity 2 missing at 9")
	}

	s = Materialize(l, 12)
	if s.Contains(1) {
		t.Error("entity 1 should be gone at 12")
	}
	if s.Size() != 1 {
		t.Errorf("size@12 = %d", s.Size())
	}
}

func TestApplyEventStaleUpdateIgnored(t *testing.T) {
	states := map[EntityID]EntityState{}
	ApplyEvent(states, Event{Entity: 1, Kind: Update, At: 10, Version: 3})
	ApplyEvent(states, Event{Entity: 1, Kind: Update, At: 12, Version: 2}) // stale
	if states[1].Version != 3 {
		t.Errorf("stale update overwrote newer version: %+v", states[1])
	}
	// Disappear of absent entity is a no-op.
	ApplyEvent(states, Event{Entity: 9, Kind: Disappear, At: 1})
	if len(states) != 1 {
		t.Error("disappear of absent entity changed the map")
	}
}

func TestScannerMatchesMaterialize(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	l := NewLog()
	// Random but valid per-entity life cycles.
	for id := 0; id < 50; id++ {
		born := Tick(r.Intn(50))
		l.Append(Event{Entity: EntityID(id), Kind: Appear, At: born})
		v := 0
		cur := born
		for r.Intn(3) != 0 {
			cur += Tick(1 + r.Intn(10))
			v++
			l.Append(Event{Entity: EntityID(id), Kind: Update, At: cur, Version: v})
		}
		if r.Intn(2) == 0 {
			l.Append(Event{Entity: EntityID(id), Kind: Disappear, At: cur + Tick(1+r.Intn(10)), Version: v})
		}
	}
	sc := NewScanner(l)
	for _, tick := range []Tick{0, 5, 17, 30, 60, 100} {
		sc.AdvanceTo(tick)
		want := Materialize(l, tick)
		if len(sc.States()) != want.Size() {
			t.Fatalf("scanner@%d size %d != materialize %d", tick, len(sc.States()), want.Size())
		}
		for id, st := range want.States {
			got, ok := sc.States()[id]
			if !ok || got != st {
				t.Fatalf("scanner@%d state for %d = %+v, want %+v", tick, id, got, st)
			}
		}
		if sc.Now() != tick {
			t.Fatalf("Now = %d", sc.Now())
		}
	}
}

func TestScannerBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when moving backwards")
		}
	}()
	sc := NewScanner(NewLog())
	sc.AdvanceTo(5)
	sc.AdvanceTo(3)
}

func TestQuickMaterializeEquivalentUnderShuffle(t *testing.T) {
	// Property: event insertion order does not affect the materialized
	// snapshot (the log sorts deterministically).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var events []Event
		for id := 0; id < 10; id++ {
			born := Tick(r.Intn(10))
			events = append(events, Event{Entity: EntityID(id), Kind: Appear, At: born})
			if r.Intn(2) == 0 {
				events = append(events, Event{Entity: EntityID(id), Kind: Update, At: born + Tick(1+r.Intn(5)), Version: 1})
			}
		}
		l1, l2 := NewLog(), NewLog()
		for _, e := range events {
			l1.Append(e)
		}
		perm := r.Perm(len(events))
		for _, i := range perm {
			l2.Append(events[i])
		}
		a, b := Materialize(l1, 20), Materialize(l2, 20)
		if a.Size() != b.Size() {
			return false
		}
		for id, st := range a.States {
			if b.States[id] != st {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
