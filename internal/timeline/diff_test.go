package timeline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func snap(at Tick, states map[EntityID]int) *Snapshot {
	s := &Snapshot{At: at, States: map[EntityID]EntityState{}}
	for id, v := range states {
		s.States[id] = EntityState{Entity: id, Version: v, Since: at}
	}
	return s
}

func TestDiffSnapshots(t *testing.T) {
	prev := snap(10, map[EntityID]int{1: 0, 2: 1, 3: 0})
	next := snap(11, map[EntityID]int{2: 2, 3: 0, 4: 0})
	ev := DiffSnapshots(prev, next)
	// Expect: 2 updated (v2), 4 appeared, 1 disappeared.
	if len(ev) != 3 {
		t.Fatalf("events = %+v", ev)
	}
	kinds := map[EntityID]EventKind{}
	for _, e := range ev {
		kinds[e.Entity] = e.Kind
		if e.At != 11 {
			t.Errorf("event at %d, want 11", e.At)
		}
	}
	if kinds[2] != Update || kinds[4] != Appear || kinds[1] != Disappear {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestDiffSnapshotsVersionRegressionIgnored(t *testing.T) {
	prev := snap(1, map[EntityID]int{1: 3})
	next := snap(2, map[EntityID]int{1: 2})
	if ev := DiffSnapshots(prev, next); len(ev) != 0 {
		t.Errorf("version regression produced events: %+v", ev)
	}
}

func TestLogFromSnapshotsRoundTrip(t *testing.T) {
	// Build a random log, materialise snapshots at several ticks, rebuild
	// a log from the snapshots, and verify the rebuilt log materialises to
	// the same states at those ticks.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := NewLog()
		for id := 0; id < 20; id++ {
			born := Tick(r.Intn(20))
			l.Append(Event{Entity: EntityID(id), Kind: Appear, At: born})
			v := 0
			cur := born
			for r.Intn(3) != 0 {
				cur += Tick(1 + r.Intn(8))
				v++
				l.Append(Event{Entity: EntityID(id), Kind: Update, At: cur, Version: v})
			}
			if r.Intn(2) == 0 {
				l.Append(Event{Entity: EntityID(id), Kind: Disappear, At: cur + Tick(1+r.Intn(8)), Version: v})
			}
		}
		ticks := []Tick{0, 7, 15, 25, 40, 60}
		var snaps []*Snapshot
		for _, tk := range ticks {
			snaps = append(snaps, Materialize(l, tk))
		}
		rebuilt, err := LogFromSnapshots(snaps)
		if err != nil {
			return false
		}
		for _, tk := range ticks {
			a, b := Materialize(l, tk), Materialize(rebuilt, tk)
			if a.Size() != b.Size() {
				return false
			}
			for id, st := range a.States {
				got, ok := b.States[id]
				if !ok || got.Version != st.Version {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLogFromSnapshotsValidation(t *testing.T) {
	s1 := snap(5, map[EntityID]int{1: 0})
	s2 := snap(5, map[EntityID]int{1: 0})
	if _, err := LogFromSnapshots([]*Snapshot{s1, s2}); err == nil {
		t.Error("want error for non-increasing snapshot times")
	}
	l, err := LogFromSnapshots(nil)
	if err != nil || l.Len() != 0 {
		t.Error("empty input should give empty log")
	}
}

func TestLogFromSnapshotsFirstSnapshotAppears(t *testing.T) {
	s := snap(3, map[EntityID]int{7: 2})
	l, err := LogFromSnapshots([]*Snapshot{s})
	if err != nil {
		t.Fatal(err)
	}
	ev := l.Events()
	if len(ev) != 1 || ev[0].Kind != Appear || ev[0].At != 3 || ev[0].Version != 2 {
		t.Errorf("events = %+v", ev)
	}
}
