package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"freshsource/internal/dataset"
	"freshsource/internal/ingest"
	"freshsource/internal/obs"
)

// generation is one immutable serving epoch of one tenant: a snapshot, the
// warm registry fitted over it, and identity metadata. Handlers load the
// tenant's current generation once at request start, so a hot reload never
// changes the data under an in-flight request — the old generation stays
// alive (and its caches usable) until the last request holding it returns.
type generation struct {
	id     uint64
	d      *dataset.Dataset
	reg    *Registry
	digest [32]byte
}

// Server is a freshd instance: a registry of named tenants — each a
// hot-swappable (snapshot, registry) generation with its own ingestion
// pipeline and coalescers — behind one admission gate and HTTP surface.
//
// Endpoints (all tenant-addressable via ?tenant=name; the default tenant
// answers when the parameter is absent, unknown names are a 404):
//
//	POST /v1/select   run a selection algorithm (gated, timed out, cached, coalesced)
//	POST /v1/quality  evaluate an explicit candidate set (gated, timed out, cached, coalesced)
//	GET  /v1/sources  describe the tenant's loaded snapshot
//	POST /v1/reload   stage, validate, fit and swap in a new snapshot for one tenant
//	POST /v1/observe  buffer streamed observations for the tenant's next ingest epoch
//	GET  /v1/freshness classify every source fresh/warning/stale
//	GET  /healthz     liveness + build version + per-tenant serving generations
//	GET  /metrics     Prometheus text exposition (?format=json for the raw snapshot)
type Server struct {
	cfg  Config
	gate *Gate
	mux  *http.ServeMux
	addr atomic.Value // string; bound address once serving

	// tenants maps every hosted world by name; def is the one addressed
	// when ?tenant= is absent. The map is immutable after New — per-tenant
	// mutation happens behind each tenant's own atomic generation pointer.
	tenants map[string]*Tenant
	names   []string // sorted tenant names
	def     *Tenant

	// start anchors the uptime reported by /healthz.
	start time.Time

	// life scopes every registry's detached fits and every coalesced
	// compute; stop cancels them all on shutdown.
	life context.Context
	stop context.CancelFunc
}

// New builds a server hosting the default tenant over d plus every
// cfg.Tenants entry, and pre-fits each tenant's base models so the first
// request pays no training cost. Telemetry is enabled globally: a daemon
// always wants /metrics live.
func New(d *dataset.Dataset, cfg Config) (*Server, error) {
	if err := validateDataset(d); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	obs.Enable()

	life, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		gate:    NewGate(cfg.MaxInflight),
		tenants: make(map[string]*Tenant),
		life:    life,
		stop:    stop,
		start:   time.Now(),
	}
	specs := append([]TenantSpec{{
		Name:        cfg.DefaultTenant,
		Dataset:     d,
		SnapshotDir: cfg.SnapshotDir,
		IngestDir:   cfg.IngestDir,
	}}, cfg.Tenants...)
	for i, spec := range specs {
		if _, dup := s.tenants[spec.Name]; dup {
			s.Close()
			return nil, fmt.Errorf("serve: duplicate tenant name %q", spec.Name)
		}
		t, err := s.newTenant(spec, i == 0)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.tenants[t.name] = t
		s.names = append(s.names, t.name)
	}
	sort.Strings(s.names)
	s.def = s.tenants[cfg.DefaultTenant]

	s.mux = http.NewServeMux()
	s.mux.Handle("/v1/select", obs.Instrument("select", s.gated(http.HandlerFunc(s.handleSelect))))
	s.mux.Handle("/v1/quality", obs.Instrument("quality", s.gated(http.HandlerFunc(s.handleQuality))))
	s.mux.Handle("/v1/sources", obs.Instrument("sources", http.HandlerFunc(s.handleSources)))
	s.mux.Handle("/v1/reload", obs.Instrument("reload", http.HandlerFunc(s.handleReload)))
	s.mux.Handle("/v1/freshness", obs.Instrument("freshness", http.HandlerFunc(s.handleFreshness)))
	if cfg.IngestEpoch > 0 {
		s.mux.Handle("/v1/observe", obs.Instrument("observe", http.HandlerFunc(s.handleObserve)))
	}
	s.mux.Handle("/healthz", obs.Instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("/metrics", obs.Instrument("metrics", http.HandlerFunc(s.handleMetrics)))
	return s, nil
}

func validateDataset(d *dataset.Dataset) error {
	if d == nil || d.World == nil || len(d.Sources) == 0 {
		return errors.New("serve: empty dataset")
	}
	if d.T0 < 0 || d.T0 >= d.Horizon() {
		return fmt.Errorf("serve: t0 %d outside [0, horizon %d)", d.T0, d.Horizon())
	}
	return nil
}

// defaultCacheEntries is the corpus-scaled registry cache bound applied
// when Config.MaxCacheEntries is unset: cache keys and memoized set states
// grow linearly with the candidate count, so the entry budget shrinks
// inversely past 2048 sources (floor 512) to keep per-generation cache
// memory roughly constant from toy corpora up to the 15k-source paper
// regime.
func defaultCacheEntries(sources int) int {
	const base, pivot, floor = 4096, 2048, 512
	if sources <= pivot {
		return base
	}
	n := base * pivot / sources
	if n < floor {
		n = floor
	}
	return n
}

// current returns the default tenant's serving generation (the
// single-tenant view; handlers resolve their tenant explicitly).
func (s *Server) current() *generation { return s.def.current() }

// install publishes a generation on the default tenant (test seam).
func (s *Server) install(g *generation) { s.def.install(g) }

// Generation returns the default tenant's serving generation id (1 at
// startup, incremented by every successful reload swap or epoch publish).
func (s *Server) Generation() uint64 { return s.current().id }

// Ingester exposes the default tenant's ingestion pipeline (nil unless the
// server runs with Config.IngestEpoch > 0), for tests and diagnostics.
func (s *Server) Ingester() *ingest.Ingester { return s.def.ing }

// gated wraps a heavy endpoint behind the admission gate: saturation is an
// immediate 429, never a queue. Retry-After is derived from the observed
// p95 latency of the heavy routes, so clients back off proportionally to
// how long a slot is actually held.
func (s *Server) gated(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.gate.TryAcquire() {
			w.Header().Set("Retry-After", retryAfter())
			writeErr(w, http.StatusTooManyRequests,
				"server saturated (%d requests in flight)", s.gate.Capacity())
			return
		}
		defer s.gate.Release()
		next.ServeHTTP(w, r)
	})
}

// retryAfter estimates how long a saturated client should wait before
// retrying: the worst observed p95 across the heavy routes, rounded up to
// whole seconds and clamped to [1, 60]. With no latency data yet (or
// telemetry off) it falls back to 1s.
func retryAfter() string {
	reg := obs.Active()
	if reg == nil {
		return "1"
	}
	p95 := reg.Histogram("http.select.seconds").Quantile(0.95)
	if q := reg.Histogram("http.quality.seconds").Quantile(0.95); q > p95 {
		p95 = q
	}
	secs := int(math.Ceil(p95))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return fmt.Sprintf("%d", secs)
}

// Handler returns the HTTP surface (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the default tenant's current warm registry (for tests
// and diagnostics).
func (s *Server) Registry() *Registry { return s.current().reg }

// Close retires the server's background work: fits in flight on every
// tenant's live generations are canceled and each ingestion log (if any)
// is released. Serve calls it after the drain; tests that never Serve may
// call it directly.
func (s *Server) Close() {
	s.stop()
	for _, t := range s.tenants {
		if t.ing != nil {
			t.ing.Close()
		}
	}
}

// Addr returns the bound listen address once ListenAndServe is up ("" before).
func (s *Server) Addr() string {
	if v := s.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// ListenAndServe binds cfg.Addr and serves until ctx is canceled, then
// drains gracefully: the listener closes immediately (new connections are
// refused), in-flight requests get cfg.ShutdownGrace to finish.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener (tests bind ":0"
// themselves).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.addr.Store(ln.Addr().String())
	srv := &http.Server{Handler: s.mux}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if s.cfg.IngestEpoch > 0 {
		go s.epochLoop(ctx)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	obs.Counter("serve.shutdowns").Inc()
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	err := srv.Shutdown(sctx)
	s.Close()
	if err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	return nil
}
