package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"freshsource/internal/dataset"
	"freshsource/internal/ingest"
	"freshsource/internal/modelcache"
	"freshsource/internal/obs"
)

// generation is one immutable serving epoch: a snapshot, the warm registry
// fitted over it, and identity metadata. Handlers load the current
// generation once at request start, so a hot reload never changes the data
// under an in-flight request — the old generation stays alive (and its
// caches usable) until the last request holding it returns.
type generation struct {
	id     uint64
	d      *dataset.Dataset
	reg    *Registry
	digest [32]byte
}

// Server is a freshd instance: a hot-swappable (snapshot, registry)
// generation, an admission gate and the HTTP surface.
//
// Endpoints:
//
//	POST /v1/select   run a selection algorithm (gated, timed out, cached)
//	POST /v1/quality  evaluate an explicit candidate set (gated, timed out)
//	GET  /v1/sources  describe the loaded snapshot
//	POST /v1/reload   stage, validate, fit and swap in a new snapshot
//	POST /v1/observe  buffer streamed observations for the next ingest epoch
//	GET  /v1/freshness classify every source fresh/warning/stale
//	GET  /healthz     liveness + build version + serving generation
//	GET  /metrics     Prometheus text exposition (?format=json for the raw snapshot)
type Server struct {
	cfg  Config
	mc   *modelcache.Cache
	gen  atomic.Pointer[generation]
	gate *Gate
	mux  *http.ServeMux
	addr atomic.Value // string; bound address once serving

	// ing is the streaming-ingestion pipeline (nil unless cfg.IngestEpoch
	// is set); commits publish new generations through CommitEpoch.
	ing *ingest.Ingester

	// start anchors the uptime reported by /healthz.
	start time.Time

	// life scopes every registry's detached fits; stop cancels them all
	// on shutdown.
	life context.Context
	stop context.CancelFunc

	// reloadMu serializes reloads (SIGHUP and /v1/reload can race).
	reloadMu sync.Mutex
}

// New builds a server over the snapshot and pre-fits the base models, so
// the first request pays no training cost. Telemetry is enabled globally:
// a daemon always wants /metrics live.
func New(d *dataset.Dataset, cfg Config) (*Server, error) {
	if err := validateDataset(d); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	obs.Enable()

	var mc *modelcache.Cache
	if cfg.ModelCacheDir != "" {
		var err error
		if mc, err = modelcache.New(cfg.ModelCacheDir); err != nil {
			return nil, fmt.Errorf("serve: model cache: %w", err)
		}
	}
	life, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:   cfg,
		mc:    mc,
		gate:  NewGate(cfg.MaxInflight),
		life:  life,
		stop:  stop,
		start: time.Now(),
	}
	gen, err := s.buildGeneration(context.Background(), 1, d)
	if err != nil {
		stop()
		return nil, fmt.Errorf("serve: startup fit: %w", err)
	}
	s.install(gen)

	if cfg.IngestEpoch > 0 {
		if cfg.SnapshotDir != "" {
			stop()
			return nil, errors.New("serve: streaming ingestion and snapshot hot reload are mutually exclusive")
		}
		ing, err := ingest.New(context.Background(), d, ingest.Config{
			Dir: cfg.IngestDir, MaxPending: cfg.IngestMaxLag, FitWorkers: cfg.FitWorkers,
		})
		if err != nil {
			stop()
			return nil, fmt.Errorf("serve: ingest: %w", err)
		}
		s.ing = ing
		// Recovery replayed durable epochs: republish them before taking
		// traffic, so the serving generation reflects every committed epoch.
		if ing.Dirty() {
			if _, err := s.CommitEpoch(context.Background()); err != nil {
				stop()
				ing.Close()
				return nil, fmt.Errorf("serve: ingest recovery: %w", err)
			}
		}
	}

	s.mux = http.NewServeMux()
	s.mux.Handle("/v1/select", obs.Instrument("select", s.gated(http.HandlerFunc(s.handleSelect))))
	s.mux.Handle("/v1/quality", obs.Instrument("quality", s.gated(http.HandlerFunc(s.handleQuality))))
	s.mux.Handle("/v1/sources", obs.Instrument("sources", http.HandlerFunc(s.handleSources)))
	s.mux.Handle("/v1/reload", obs.Instrument("reload", http.HandlerFunc(s.handleReload)))
	s.mux.Handle("/v1/freshness", obs.Instrument("freshness", http.HandlerFunc(s.handleFreshness)))
	if s.ing != nil {
		s.mux.Handle("/v1/observe", obs.Instrument("observe", http.HandlerFunc(s.handleObserve)))
	}
	s.mux.Handle("/healthz", obs.Instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("/metrics", obs.Instrument("metrics", http.HandlerFunc(s.handleMetrics)))
	return s, nil
}

func validateDataset(d *dataset.Dataset) error {
	if d == nil || d.World == nil || len(d.Sources) == 0 {
		return errors.New("serve: empty dataset")
	}
	if d.T0 < 0 || d.T0 >= d.Horizon() {
		return fmt.Errorf("serve: t0 %d outside [0, horizon %d)", d.T0, d.Horizon())
	}
	return nil
}

// defaultCacheEntries is the corpus-scaled registry cache bound applied
// when Config.MaxCacheEntries is unset: cache keys and memoized set states
// grow linearly with the candidate count, so the entry budget shrinks
// inversely past 2048 sources (floor 512) to keep per-generation cache
// memory roughly constant from toy corpora up to the 15k-source paper
// regime.
func defaultCacheEntries(sources int) int {
	const base, pivot, floor = 4096, 2048, 512
	if sources <= pivot {
		return base
	}
	n := base * pivot / sources
	if n < floor {
		n = floor
	}
	return n
}

// buildGeneration stages a complete generation over d: digest, registry,
// and the pre-fit of the base models under ctx. On failure the candidate
// registry is closed and nothing is published.
func (s *Server) buildGeneration(ctx context.Context, id uint64, d *dataset.Dataset) (*generation, error) {
	maxEntries := s.cfg.MaxCacheEntries
	if maxEntries <= 0 {
		maxEntries = defaultCacheEntries(len(d.Sources))
	}
	g := &generation{
		id:     id,
		d:      d,
		reg:    NewRegistry(s.life, d, maxEntries, s.cfg.FitWorkers, s.mc),
		digest: modelcache.Digest(d.World, d.Sources),
	}
	if _, err := g.reg.Trained(ctx, nil); err != nil {
		g.reg.Close()
		return nil, err
	}
	return g, nil
}

// install publishes a generation as current.
func (s *Server) install(g *generation) {
	s.gen.Store(g)
	obs.Gauge("serve.reload.generation").Set(float64(g.id))
}

// current returns the serving generation. Handlers call it exactly once
// per request and thread the result, so each request sees one consistent
// (snapshot, registry) pair across a concurrent swap.
func (s *Server) current() *generation { return s.gen.Load() }

// Generation returns the current serving generation id (1 at startup,
// incremented by every successful reload swap).
func (s *Server) Generation() uint64 { return s.current().id }

// gated wraps a heavy endpoint behind the admission gate: saturation is an
// immediate 429, never a queue. Retry-After is derived from the observed
// p95 latency of the heavy routes, so clients back off proportionally to
// how long a slot is actually held.
func (s *Server) gated(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.gate.TryAcquire() {
			w.Header().Set("Retry-After", retryAfter())
			writeErr(w, http.StatusTooManyRequests,
				"server saturated (%d requests in flight)", s.gate.Capacity())
			return
		}
		defer s.gate.Release()
		next.ServeHTTP(w, r)
	})
}

// retryAfter estimates how long a saturated client should wait before
// retrying: the worst observed p95 across the heavy routes, rounded up to
// whole seconds and clamped to [1, 60]. With no latency data yet (or
// telemetry off) it falls back to 1s.
func retryAfter() string {
	reg := obs.Active()
	if reg == nil {
		return "1"
	}
	p95 := reg.Histogram("http.select.seconds").Quantile(0.95)
	if q := reg.Histogram("http.quality.seconds").Quantile(0.95); q > p95 {
		p95 = q
	}
	secs := int(math.Ceil(p95))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return fmt.Sprintf("%d", secs)
}

// Handler returns the HTTP surface (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the current generation's warm registry (for tests and
// diagnostics).
func (s *Server) Registry() *Registry { return s.current().reg }

// Close retires the server's background work: fits in flight on every
// live generation are canceled and the ingestion log (if any) is released.
// Serve calls it after the drain; tests that never Serve may call it
// directly.
func (s *Server) Close() {
	s.stop()
	if s.ing != nil {
		s.ing.Close()
	}
}

// Addr returns the bound listen address once ListenAndServe is up ("" before).
func (s *Server) Addr() string {
	if v := s.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// ListenAndServe binds cfg.Addr and serves until ctx is canceled, then
// drains gracefully: the listener closes immediately (new connections are
// refused), in-flight requests get cfg.ShutdownGrace to finish.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener (tests bind ":0"
// themselves).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.addr.Store(ln.Addr().String())
	srv := &http.Server{Handler: s.mux}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if s.ing != nil {
		go s.epochLoop(ctx)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	obs.Counter("serve.shutdowns").Inc()
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	err := srv.Shutdown(sctx)
	s.Close()
	if err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	return nil
}
