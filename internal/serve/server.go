package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"

	"freshsource/internal/dataset"
	"freshsource/internal/modelcache"
	"freshsource/internal/obs"
)

// Server is a freshd instance: one snapshot, a warm model registry, an
// admission gate and the HTTP surface.
//
// Endpoints:
//
//	POST /v1/select   run a selection algorithm (gated, timed out, cached)
//	POST /v1/quality  evaluate an explicit candidate set (gated, timed out)
//	GET  /v1/sources  describe the loaded snapshot
//	GET  /healthz     liveness
//	GET  /metrics     obs registry snapshot as JSON
type Server struct {
	cfg  Config
	d    *dataset.Dataset
	reg  *Registry
	gate *Gate
	mux  *http.ServeMux
	addr atomic.Value // string; bound address once serving
}

// New builds a server over the snapshot and pre-fits the base models, so
// the first request pays no training cost. Telemetry is enabled globally:
// a daemon always wants /metrics live.
func New(d *dataset.Dataset, cfg Config) (*Server, error) {
	if d == nil || d.World == nil || len(d.Sources) == 0 {
		return nil, errors.New("serve: empty dataset")
	}
	cfg = cfg.withDefaults()
	obs.Enable()

	var mc *modelcache.Cache
	if cfg.ModelCacheDir != "" {
		var err error
		if mc, err = modelcache.New(cfg.ModelCacheDir); err != nil {
			return nil, fmt.Errorf("serve: model cache: %w", err)
		}
	}
	s := &Server{
		cfg:  cfg,
		d:    d,
		reg:  NewRegistry(d, cfg.MaxCacheEntries, cfg.FitWorkers, mc),
		gate: NewGate(cfg.MaxInflight),
	}
	if _, err := s.reg.Trained(context.Background(), nil); err != nil {
		return nil, fmt.Errorf("serve: startup fit: %w", err)
	}

	s.mux = http.NewServeMux()
	s.mux.Handle("/v1/select", obs.Instrument("select", s.gated(http.HandlerFunc(s.handleSelect))))
	s.mux.Handle("/v1/quality", obs.Instrument("quality", s.gated(http.HandlerFunc(s.handleQuality))))
	s.mux.Handle("/v1/sources", obs.Instrument("sources", http.HandlerFunc(s.handleSources)))
	s.mux.Handle("/healthz", obs.Instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("/metrics", obs.Instrument("metrics", http.HandlerFunc(s.handleMetrics)))
	return s, nil
}

// gated wraps a heavy endpoint behind the admission gate: saturation is an
// immediate 429, never a queue.
func (s *Server) gated(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.gate.TryAcquire() {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests,
				"server saturated (%d requests in flight)", s.gate.Capacity())
			return
		}
		defer s.gate.Release()
		next.ServeHTTP(w, r)
	})
}

// Handler returns the HTTP surface (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the warm registry (for tests and diagnostics).
func (s *Server) Registry() *Registry { return s.reg }

// Addr returns the bound listen address once ListenAndServe is up ("" before).
func (s *Server) Addr() string {
	if v := s.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// ListenAndServe binds cfg.Addr and serves until ctx is canceled, then
// drains gracefully: the listener closes immediately (new connections are
// refused), in-flight requests get cfg.ShutdownGrace to finish.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is ListenAndServe over an existing listener (tests bind ":0"
// themselves).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.addr.Store(ln.Addr().String())
	srv := &http.Server{Handler: s.mux}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	obs.Counter("serve.shutdowns").Inc()
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: drain incomplete: %w", err)
	}
	return nil
}
