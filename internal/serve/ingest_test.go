package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"freshsource/internal/faults"
	"freshsource/internal/ingest"
	"freshsource/internal/timeline"
)

// ingestConfig enables streaming ingestion with an epoch interval long
// enough that only explicit CommitEpoch calls commit.
func ingestConfig(dir string) Config {
	return Config{IngestEpoch: time.Hour, IngestDir: dir}
}

func observeBody(evs ...ObserveEvent) string {
	raw, _ := json.Marshal(ObserveRequest{Observations: evs})
	return string(raw)
}

func ev(src int, entity, at int64, kind string, version int) ObserveEvent {
	return ObserveEvent{Source: src, Entity: entity, At: at, Kind: kind, Version: version}
}

func TestObserveEndpoint(t *testing.T) {
	d := testDataset(t)
	srv := newServer(t, ingestConfig(""))
	defer srv.Close()
	t0 := int64(d.T0)

	rec := postJSON(t, srv.Handler(), "/v1/observe", observeBody(
		ev(0, 3, t0+5, "appear", 0),
		ev(1, 3, t0+6, "update", 1),
	))
	if rec.Code != 202 {
		t.Fatalf("observe: %d %s", rec.Code, rec.Body.String())
	}
	var resp ObserveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Pending != 2 || resp.Watermark != t0 || resp.Epoch != 0 {
		t.Fatalf("observe response: %+v", resp)
	}

	for name, tc := range map[string]struct {
		body string
		code int
	}{
		"bad-kind":    {observeBody(ev(0, 3, t0+5, "mutate", 0)), 400},
		"bad-source":  {observeBody(ev(99, 3, t0+5, "appear", 0)), 400},
		"stale-tick":  {observeBody(ev(0, 3, t0, "appear", 0)), 409},
		"empty-batch": {observeBody(), 400},
		"not-json":    {`{"observations": 7}`, 400},
	} {
		t.Run(name, func(t *testing.T) {
			rec := postJSON(t, srv.Handler(), "/v1/observe", tc.body)
			if rec.Code != tc.code {
				t.Fatalf("%s: got %d want %d: %s", name, rec.Code, tc.code, rec.Body.String())
			}
		})
	}
	// Rejected batches buffer nothing.
	if got := srv.Ingester().Pending(); got != 2 {
		t.Fatalf("pending after rejections = %d", got)
	}
}

func TestObserveBackpressure(t *testing.T) {
	d := testDataset(t)
	cfg := ingestConfig("")
	cfg.IngestMaxLag = 2
	srv := newServer(t, cfg)
	defer srv.Close()
	t0 := int64(d.T0)

	if rec := postJSON(t, srv.Handler(), "/v1/observe", observeBody(
		ev(0, 1, t0+1, "appear", 0), ev(0, 2, t0+1, "appear", 0),
	)); rec.Code != 202 {
		t.Fatalf("fill: %d", rec.Code)
	}
	rec := postJSON(t, srv.Handler(), "/v1/observe", observeBody(ev(0, 3, t0+1, "appear", 0)))
	if rec.Code != 429 {
		t.Fatalf("backpressure: got %d", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestObserveDisabled pins that the endpoint is absent without ingestion.
func TestObserveDisabled(t *testing.T) {
	srv := newServer(t, Config{})
	defer srv.Close()
	rec := postJSON(t, srv.Handler(), "/v1/observe", observeBody())
	if rec.Code != 404 {
		t.Fatalf("want 404 on ingest-disabled server, got %d", rec.Code)
	}
}

func TestIngestExcludesSnapshotReload(t *testing.T) {
	cfg := ingestConfig("")
	cfg.SnapshotDir = t.TempDir()
	if _, err := New(testDataset(t), cfg); err == nil {
		t.Fatal("want error for ingest + snapshot reload")
	}
}

// TestEpochCommitPublishesGeneration pins the publish path: a committed
// epoch swaps in a new generation whose snapshot has the advanced training
// cut and extended sources, with the refit model set seeded (served
// requests and freshness immediately reflect the streamed data).
func TestEpochCommitPublishesGeneration(t *testing.T) {
	d := testDataset(t)
	srv := newServer(t, ingestConfig(""))
	defer srv.Close()
	t0 := int64(d.T0)

	if rec := postJSON(t, srv.Handler(), "/v1/observe", observeBody(
		ev(0, 3, t0+4, "appear", 0),
		ev(2, 5, t0+9, "update", 2),
	)); rec.Code != 202 {
		t.Fatalf("observe: %d", rec.Code)
	}
	info, err := srv.CommitEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Epoch != 1 || info.Generation != 2 || info.Watermark != t0+9 || info.Observations != 2 {
		t.Fatalf("epoch info: %+v", info)
	}
	if srv.Generation() != 2 {
		t.Fatalf("generation = %d", srv.Generation())
	}

	// The published snapshot: training cut at the watermark, source 0's
	// log extended by one event.
	gen := srv.current()
	if int64(gen.d.T0) != t0+9 {
		t.Fatalf("published T0 = %d, want %d", gen.d.T0, t0+9)
	}
	if got, want := gen.d.Sources[0].Log().Len(), d.Sources[0].Log().Len()+1; got != want {
		t.Fatalf("source 0 log = %d events, want %d", got, want)
	}

	// The seeded registry serves without refitting: quality and select on
	// the new generation succeed, and healthz reports the ingest state.
	if rec := postJSON(t, srv.Handler(), "/v1/quality", `{"set":[0,1]}`); rec.Code != 200 {
		t.Fatalf("quality on published generation: %d %s", rec.Code, rec.Body.String())
	}
	req := httptest.NewRequest("GET", "/healthz", nil)
	hrec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(hrec, req)
	var hz struct {
		Generation uint64 `json:"generation"`
		Ingest     struct {
			Epoch     uint64 `json:"epoch"`
			Watermark int64  `json:"watermark"`
			Pending   int    `json:"pending"`
		} `json:"ingest"`
	}
	if err := json.Unmarshal(hrec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Generation != 2 || hz.Ingest.Epoch != 1 || hz.Ingest.Watermark != t0+9 || hz.Ingest.Pending != 0 {
		t.Fatalf("healthz: %+v", hz)
	}

	// Idle commit: no-op, no generation churn.
	info, err = srv.CommitEpoch(context.Background())
	if err != nil || info != nil {
		t.Fatalf("idle commit: %+v, %v", info, err)
	}
	if srv.Generation() != 2 {
		t.Fatalf("idle commit bumped generation to %d", srv.Generation())
	}
}

// TestChaosIngestTornLog pins the crash-recovery seam end to end: a torn
// tail on the durable epoch log is truncated at startup, committed epochs
// are refolded, and the server comes up already serving the recovered
// generation.
func TestChaosIngestTornLog(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	t0 := int64(d.T0)

	srv, err := New(d, ingestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec := postJSON(t, srv.Handler(), "/v1/observe", observeBody(
		ev(1, 7, t0+3, "appear", 0),
	)); rec.Code != 202 {
		t.Fatalf("observe: %d", rec.Code)
	}
	if _, err := srv.CommitEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Crash mid-append: a partial frame lands on the tail.
	path := filepath.Join(dir, "epochs.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := New(d, ingestConfig(dir))
	if err != nil {
		t.Fatalf("recovery over torn log: %v", err)
	}
	defer re.Close()
	if re.Generation() != 2 {
		t.Fatalf("recovered generation = %d, want 2 (epoch republished)", re.Generation())
	}
	if got := re.Ingester().Watermark(); int64(got) != t0+3 {
		t.Fatalf("recovered watermark = %d, want %d", got, t0+3)
	}
	if int64(re.current().d.T0) != t0+3 {
		t.Fatalf("recovered serving T0 = %d", re.current().d.T0)
	}
	// The torn tail is gone: the log accepts the next epoch cleanly.
	if rec := postJSON(t, re.Handler(), "/v1/observe", observeBody(
		ev(0, 2, t0+8, "update", 1),
	)); rec.Code != 202 {
		t.Fatalf("post-recovery observe: %d", rec.Code)
	}
	if info, err := re.CommitEpoch(context.Background()); err != nil || info.Epoch != 2 {
		t.Fatalf("post-recovery commit: %+v, %v", info, err)
	}
}

// TestChaosIngestEpochReplay pins duplicate-delivery recovery: an epoch
// frame re-appended with an already committed sequence number is skipped
// (not double-folded) when the server recovers the log.
func TestChaosIngestEpochReplay(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	t0 := d.T0

	rec := ingest.EpochRecord{Seq: 1, Watermark: t0 + 4, Events: []ingest.Observation{
		{Source: 0, Event: timeline.Event{Entity: 3, Kind: timeline.Appear, At: t0 + 4}},
	}}
	l, recs, err := ingest.OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	// The same epoch delivered twice, then its successor.
	for _, r := range []ingest.EpochRecord{rec, rec, {Seq: 2, Watermark: t0 + 6}} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	srv, err := New(d, ingestConfig(dir))
	if err != nil {
		t.Fatalf("recovery over replayed log: %v", err)
	}
	defer srv.Close()
	if got := srv.Ingester().Seq(); got != 2 {
		t.Fatalf("recovered seq = %d, want 2", got)
	}
	if got := srv.Ingester().Watermark(); got != t0+6 {
		t.Fatalf("recovered watermark = %d, want %d", got, t0+6)
	}
	// One fold of the duplicated event: the recovered source log grew by
	// exactly one event.
	if got, want := srv.current().d.Sources[0].Log().Len(), d.Sources[0].Log().Len()+1; got != want {
		t.Fatalf("source 0 log = %d events, want %d (duplicate folded once)", got, want)
	}
}

// TestChaosIngestRefitMidStream pins the rollback rule on both commit
// seams: a failed durable append keeps the pending buffer (nothing
// committed), a failed refit keeps the epoch committed-but-dirty, and in
// both cases the serving generation is untouched until a later commit
// succeeds and publishes everything at once.
func TestChaosIngestRefitMidStream(t *testing.T) {
	d := testDataset(t)
	srv, err := New(d, ingestConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	t0 := int64(d.T0)

	if rec := postJSON(t, srv.Handler(), "/v1/observe", observeBody(
		ev(0, 1, t0+2, "appear", 0),
	)); rec.Code != 202 {
		t.Fatalf("observe: %d", rec.Code)
	}

	faults.Set("ingest.append", faults.Fault{Err: errors.New("disk full"), Times: 1})
	defer faults.Reset()
	if _, err := srv.CommitEpoch(context.Background()); err == nil {
		t.Fatal("want append fault")
	}
	if srv.Generation() != 1 || srv.Ingester().Pending() != 1 || srv.Ingester().Seq() != 0 {
		t.Fatalf("failed append: gen=%d pending=%d seq=%d", srv.Generation(), srv.Ingester().Pending(), srv.Ingester().Seq())
	}

	faults.Set("ingest.refit", faults.Fault{Err: errors.New("refit oom"), Times: 1})
	if _, err := srv.CommitEpoch(context.Background()); err == nil {
		t.Fatal("want refit fault")
	}
	if srv.Generation() != 1 {
		t.Fatalf("failed refit published generation %d", srv.Generation())
	}
	if srv.Ingester().Pending() != 0 || srv.Ingester().Seq() != 1 || !srv.Ingester().Dirty() {
		t.Fatalf("failed refit: pending=%d seq=%d dirty=%v", srv.Ingester().Pending(), srv.Ingester().Seq(), srv.Ingester().Dirty())
	}
	// Mid-stream failure leaves the old generation fully serviceable.
	if rec := postJSON(t, srv.Handler(), "/v1/quality", `{"set":[0]}`); rec.Code != 200 {
		t.Fatalf("quality during dirty epoch: %d", rec.Code)
	}

	faults.Reset()
	info, err := srv.CommitEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Epoch != 1 || info.Generation != 2 || info.Watermark != t0+2 {
		t.Fatalf("recovered commit: %+v", info)
	}
}

// TestChaosIngestPublishFault pins the publish-retry contract: when the
// ingester's Commit succeeds but the generation publish fails, the epoch
// stays dirty and the NEXT commit republishes it even though no new
// observations arrived — the committed data must not be stranded behind a
// no-op commit while /healthz advertises an epoch the serving generation
// never reached.
func TestChaosIngestPublishFault(t *testing.T) {
	d := testDataset(t)
	srv := newServer(t, ingestConfig(""))
	defer srv.Close()
	t0 := int64(d.T0)

	if rec := postJSON(t, srv.Handler(), "/v1/observe", observeBody(
		ev(0, 1, t0+3, "appear", 0),
	)); rec.Code != 202 {
		t.Fatalf("observe: %d", rec.Code)
	}
	faults.Set("ingest.publish", faults.Fault{Err: errors.New("publish blown"), Times: 1})
	defer faults.Reset()
	if _, err := srv.CommitEpoch(context.Background()); err == nil {
		t.Fatal("want publish fault")
	}
	if srv.Generation() != 1 || srv.Ingester().Seq() != 1 || !srv.Ingester().Dirty() {
		t.Fatalf("failed publish: gen=%d seq=%d dirty=%v", srv.Generation(), srv.Ingester().Seq(), srv.Ingester().Dirty())
	}

	// No new observations: the retry must still re-derive and publish the
	// committed epoch.
	info, err := srv.CommitEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Epoch != 1 || info.Generation != 2 || info.Watermark != t0+3 || info.Observations != 1 {
		t.Fatalf("republish: %+v", info)
	}
	if srv.Ingester().Dirty() {
		t.Fatal("published epoch still dirty after Ack")
	}
}

// TestChaosIngestFoldTimeout pins the degraded-health seam: an epoch fold
// canceled mid-commit (the scheduler timeout) leaves a durable epoch the
// accumulator could not absorb; /healthz turns degraded and reports the
// error, and the next commit rebuilds, publishes and restores health.
func TestChaosIngestFoldTimeout(t *testing.T) {
	d := testDataset(t)
	srv := newServer(t, ingestConfig(t.TempDir()))
	defer srv.Close()
	t0 := int64(d.T0)

	if rec := postJSON(t, srv.Handler(), "/v1/observe", observeBody(
		ev(1, 2, t0+5, "update", 1),
	)); rec.Code != 202 {
		t.Fatalf("observe: %d", rec.Code)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.CommitEpoch(cctx); err == nil {
		t.Fatal("want fold failure under canceled context")
	}

	var hz struct {
		Status string `json:"status"`
		Ingest struct {
			Error string `json:"error"`
		} `json:"ingest"`
	}
	getJSON(t, srv.Handler(), "/healthz", &hz)
	if hz.Status != "degraded" || hz.Ingest.Error == "" {
		t.Fatalf("healthz during unfolded epoch: %+v", hz)
	}

	info, err := srv.CommitEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Epoch != 1 || info.Generation != 2 {
		t.Fatalf("recovered commit: %+v", info)
	}
	hz.Status, hz.Ingest.Error = "", "" // Unmarshal leaves absent keys untouched
	getJSON(t, srv.Handler(), "/healthz", &hz)
	if hz.Status != "ok" || hz.Ingest.Error != "" {
		t.Fatalf("healthz after recovery: %+v", hz)
	}
}

// TestIngestEpochScheduler pins the -ingest.epoch loop: a served instance
// commits pending observations without any explicit trigger.
func TestIngestEpochScheduler(t *testing.T) {
	d := testDataset(t)
	cfg := ingestConfig("")
	cfg.IngestEpoch = 30 * time.Millisecond
	cfg.Addr = "127.0.0.1:0"
	srv, err := New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(ctx) }()
	for srv.Addr() == "" {
		time.Sleep(time.Millisecond)
	}

	if rec := postJSON(t, srv.Handler(), "/v1/observe", observeBody(
		ev(1, 4, int64(d.T0)+3, "appear", 0),
	)); rec.Code != 202 {
		t.Fatalf("observe: %d", rec.Code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("epoch scheduler never committed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Ingester().Watermark(); got != d.T0+3 {
		t.Errorf("scheduled commit watermark = %d", got)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
