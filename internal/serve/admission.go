package serve

import (
	"sync/atomic"

	"freshsource/internal/obs"
)

// Gate is the bounded-concurrency admission controller in front of the
// heavy endpoints. It never queues: a request either gets a slot
// immediately or is turned away (the handler answers 429), keeping a
// saturated server responsive on its cheap endpoints and bounding memory
// under overload.
type Gate struct {
	sem      chan struct{}
	inflight atomic.Int64
}

// NewGate builds a gate admitting at most n concurrent holders.
func NewGate(n int) *Gate {
	return &Gate{sem: make(chan struct{}, n)}
}

// TryAcquire claims a slot without blocking; false means saturated.
//
// The inflight gauge is published as a transactional ±1 delta (GaugeVar.Add
// is a CAS loop), not a Set of the counter's post-Add value: under
// concurrent acquire/release interleavings the Set calls are not ordered
// the way the Adds were, so a last-writer-wins Set can persist a stale
// count — including a nonzero one after every request has drained. With
// deltas the gauge is exactly the number of held slots at every quiescent
// point (pinned by TestInflightGaugeExactUnderChurn).
func (g *Gate) TryAcquire() bool {
	select {
	case g.sem <- struct{}{}:
		g.inflight.Add(1)
		if obs.Enabled() {
			obs.Counter("serve.admission.admitted").Inc()
			obs.Gauge("serve.admission.inflight").Add(1)
		}
		return true
	default:
		obs.Counter("serve.admission.rejected").Inc()
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (g *Gate) Release() {
	g.inflight.Add(-1)
	if obs.Enabled() {
		obs.Gauge("serve.admission.inflight").Add(-1)
	}
	<-g.sem
}

// Inflight returns the number of currently held slots.
func (g *Gate) Inflight() int { return int(g.inflight.Load()) }

// Capacity returns the gate's admission bound.
func (g *Gate) Capacity() int { return cap(g.sem) }
