package serve

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"freshsource/internal/obs"
)

// TestCoalescerDedupe: with a long window held open, every concurrent Do on
// the same key collapses into one compute. Determinism: the leader's hold is
// ended by canceling its context only after every follower has registered,
// so the follower count is exact, not timing-dependent.
func TestCoalescerDedupe(t *testing.T) {
	obs.Enable()
	c := newCoalescer(time.Hour, "test.coalesce.dedupe")
	var computes atomic.Int64
	compute := func() (int, []byte) {
		computes.Add(1)
		return 200, []byte("payload")
	}

	leadCtx, endHold := context.WithCancel(context.Background())
	results := make(chan string, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, body, err := c.Do(leadCtx, "k", compute)
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results <- string(body)
	}()
	// Wait for the leader's flight to register, then pile on followers.
	for {
		c.mu.Lock()
		n := len(c.flights)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	f0 := obs.Active().Counter("test.coalesce.dedupe.followers").Value()
	for i := 0; i < 7; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, body, err := c.Do(context.Background(), "k", compute)
			if err != nil {
				t.Errorf("follower: %v", err)
			}
			results <- string(body)
		}()
	}
	for obs.Active().Counter("test.coalesce.dedupe.followers").Value()-f0 < 7 {
		time.Sleep(time.Millisecond)
	}
	endHold() // all followers joined; end the collect phase
	wg.Wait()
	close(results)

	if got := computes.Load(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}
	for body := range results {
		if body != "payload" {
			t.Errorf("body %q", body)
		}
	}
}

// TestCoalescerZeroWindow: with no batch window, in-flight dedupe still
// holds — requests arriving while the leader computes share its result.
func TestCoalescerZeroWindow(t *testing.T) {
	obs.Enable()
	c := newCoalescer(0, "test.coalesce.zero")
	var computes atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(context.Background(), "k", func() (int, []byte) {
			computes.Add(1)
			<-release
			return 200, []byte("x")
		})
	}()
	for {
		c.mu.Lock()
		n := len(c.flights)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, body, err := c.Do(context.Background(), "k", func() (int, []byte) {
				computes.Add(1)
				return 200, []byte("x")
			})
			if err != nil || string(body) != "x" {
				t.Errorf("follower: %q %v", body, err)
			}
		}()
	}
	f0 := obs.Active().Counter("test.coalesce.zero.followers").Value()
	for obs.Active().Counter("test.coalesce.zero.followers").Value()-f0 < 4 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}
}

// TestCoalescerFollowerCancel: a follower whose context fires while waiting
// gets its context error; the leader's flight is unaffected.
func TestCoalescerFollowerCancel(t *testing.T) {
	obs.Enable()
	c := newCoalescer(0, "test.coalesce.cancel")
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(context.Background(), "k", func() (int, []byte) {
			<-release
			return 200, []byte("x")
		})
	}()
	for {
		c.mu.Lock()
		n := len(c.flights)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, "k", nil); err != context.Canceled {
		t.Errorf("canceled follower: err = %v, want context.Canceled", err)
	}
	close(release)
	<-done
}

// TestCoalescerDistinctKeys: different keys never share a flight.
func TestCoalescerDistinctKeys(t *testing.T) {
	obs.Enable()
	c := newCoalescer(0, "test.coalesce.distinct")
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		key := string(rune('a' + i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(context.Background(), key, func() (int, []byte) {
				computes.Add(1)
				return 200, []byte(key)
			})
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 4 {
		t.Errorf("computes = %d, want 4", got)
	}
}

// TestCoalescedByteIdentical pins the tentpole exactness contract end to
// end: concurrent identical requests through a server with a generous batch
// window produce responses byte-identical to an uncoalesced server —
// select and quality, at mixed worker counts.
func TestCoalescedByteIdentical(t *testing.T) {
	plain := newServer(t, Config{CoalesceWindow: -1, MaxInflight: 64}) // pure dedupe, no hold
	defer plain.Close()
	batched := newServer(t, Config{CoalesceWindow: 30 * time.Millisecond, MaxInflight: 64})
	defer batched.Close()

	cases := []struct{ path, body string }{
		{"/v1/select", `{"algorithm":"greedy","future":4}`},
		{"/v1/select", `{"algorithm":"greedy","future":4,"workers":4}`},
		{"/v1/quality", `{"set":[0,2,5],"ticks":[150,200]}`},
	}
	for _, tc := range cases {
		want := postJSON(t, plain.Handler(), tc.path, tc.body)
		if want.Code != http.StatusOK {
			t.Fatalf("reference %s: %d %s", tc.path, want.Code, want.Body.String())
		}
		leaders0 := counter("serve.tenant.default.coalesce.select.leaders") +
			counter("serve.tenant.default.coalesce.quality.leaders")

		const n = 12
		var wg sync.WaitGroup
		bodies := make([]string, n)
		codes := make([]int, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rec := postJSON(t, batched.Handler(), tc.path, tc.body)
				codes[i], bodies[i] = rec.Code, rec.Body.String()
			}()
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if codes[i] != http.StatusOK {
				t.Fatalf("%s[%d]: %d %s", tc.path, i, codes[i], bodies[i])
			}
			if bodies[i] != want.Body.String() {
				t.Errorf("%s[%d]: coalesced bytes differ from the uncoalesced server", tc.path, i)
			}
		}
		// At most a handful of solver passes ran: every response after the
		// first flight came from a coalesced flight or the result cache.
		leaders := counter("serve.tenant.default.coalesce.select.leaders") +
			counter("serve.tenant.default.coalesce.quality.leaders") - leaders0
		if leaders < 1 || leaders > n/2 {
			t.Errorf("%s: %d leaders for %d concurrent identical requests", tc.path, leaders, n)
		}
	}
}

// TestCoalesceWindowConfig: 0 means the 2ms default, negative disables the
// hold entirely.
func TestCoalesceWindowConfig(t *testing.T) {
	if got := (Config{}).withDefaults().CoalesceWindow; got != 2*time.Millisecond {
		t.Errorf("default window = %v, want 2ms", got)
	}
	if got := (Config{CoalesceWindow: -1, MaxInflight: 64}).withDefaults().CoalesceWindow; got != 0 {
		t.Errorf("negative window = %v, want 0", got)
	}
	if got := (Config{CoalesceWindow: 5 * time.Millisecond}).withDefaults().CoalesceWindow; got != 5*time.Millisecond {
		t.Errorf("explicit window = %v, want 5ms", got)
	}
}
