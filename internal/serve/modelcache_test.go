package serve

import (
	"testing"

	"freshsource/internal/dataset"
	"freshsource/internal/obs"
)

// regenDataset builds a fresh dataset object with the fixture's exact
// generation parameters — what a restarted freshd process would load.
func regenDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 8
	cfg.Categories = 5
	cfg.NumSources = 10
	cfg.Horizon = 220
	cfg.T0 = 120
	cfg.Scale = 0.4
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestWarmModelCacheSkipsStartupFit pins the cold-start win end to end: a
// server restarted over an unchanged snapshot with a warm model cache must
// run zero statistical fits — asserted on the estimate.fit.seconds span
// count, which every NewFit records exactly once.
func TestWarmModelCacheSkipsStartupFit(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Addr: ":0", ModelCacheDir: dir}

	// Cold start: populates the cache (fit runs once).
	if _, err := New(regenDataset(t), cfg); err != nil {
		t.Fatal(err)
	}
	if got := counter("serve.registry.modelcache_miss"); got == 0 {
		t.Fatal("cold start did not report a model-cache miss")
	}

	fits := obs.Active().Histogram("estimate.fit.seconds").Count()
	hits := counter("serve.registry.modelcache_hit")

	// Restart: same data regenerated, warm cache — the fit span count must
	// not move.
	s, err := New(regenDataset(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Active().Histogram("estimate.fit.seconds").Count(); got != fits {
		t.Errorf("warm restart ran %d fits, want 0", got-fits)
	}
	if got := counter("serve.registry.modelcache_hit"); got != hits+1 {
		t.Errorf("modelcache_hit went %d -> %d, want +1", hits, got)
	}

	// The warm server must still answer queries.
	rec := postJSON(t, s.Handler(), "/v1/select", `{"algorithm":"greedy","gain":"linear","metric":"coverage"}`)
	if rec.Code != 200 {
		t.Fatalf("select on warm server: %d: %s", rec.Code, rec.Body.String())
	}
}

// TestServerWithoutModelCacheStillFits guards the disabled path: no cache
// dir means the registry trains directly and reports no cache traffic.
func TestServerWithoutModelCacheStillFits(t *testing.T) {
	miss := counter("serve.registry.modelcache_miss")
	hit := counter("serve.registry.modelcache_hit")
	if _, err := New(regenDataset(t), Config{Addr: ":0"}); err != nil {
		t.Fatal(err)
	}
	if counter("serve.registry.modelcache_miss") != miss || counter("serve.registry.modelcache_hit") != hit {
		t.Error("model-cache counters moved with the cache disabled")
	}
}
