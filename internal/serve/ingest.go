package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/faults"
	"freshsource/internal/ingest"
	"freshsource/internal/modelcache"
	"freshsource/internal/obs"
	"freshsource/internal/timeline"
)

// ObserveEvent is one streamed observation in the body of POST /v1/observe.
type ObserveEvent struct {
	Source  int    `json:"source"`
	Entity  int64  `json:"entity"`
	Kind    string `json:"kind"` // appear|update|disappear
	At      int64  `json:"at"`
	Version int    `json:"version,omitempty"`
}

// ObserveRequest is the body of POST /v1/observe: a batch of observations
// for the next ingest epoch. The batch is atomic — one invalid observation
// rejects it all.
type ObserveRequest struct {
	Observations []ObserveEvent `json:"observations"`
}

// ObserveResponse is the body of a 202 from POST /v1/observe.
type ObserveResponse struct {
	Accepted int `json:"accepted"`
	// Pending is the buffered observation count after this batch;
	// Watermark and Epoch identify the last committed epoch.
	Pending   int    `json:"pending"`
	Watermark int64  `json:"watermark"`
	Epoch     uint64 `json:"epoch"`
}

// EpochInfo describes one published ingest epoch.
type EpochInfo struct {
	// Epoch is the committed epoch sequence number; Generation is the
	// serving generation it was published as.
	Epoch        uint64 `json:"epoch"`
	Generation   uint64 `json:"generation"`
	Watermark    int64  `json:"watermark"`
	Observations int    `json:"observations"`
}

var eventKinds = map[string]timeline.EventKind{
	"appear":    timeline.Appear,
	"update":    timeline.Update,
	"disappear": timeline.Disappear,
}

// handleObserve buffers a batch of streamed observations for one tenant.
// Backpressure (the pending buffer at cfg.IngestMaxLag) is a 429 with
// Retry-After set to the epoch interval; an observation at or behind the
// committed watermark is a 409 (the epoch that covered its tick is already
// sealed), as is a tenant without an ingestion pipeline.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ObserveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	if t.ing == nil {
		writeErr(w, http.StatusConflict, "%v for tenant %q", errNoIngest, t.name)
		return
	}
	if len(req.Observations) == 0 {
		writeErr(w, http.StatusBadRequest, "empty observation batch")
		return
	}
	batch := make([]ingest.Observation, len(req.Observations))
	for i, o := range req.Observations {
		kind, ok := eventKinds[o.Kind]
		if !ok {
			writeErr(w, http.StatusBadRequest, "observation %d: unknown kind %q", i, o.Kind)
			return
		}
		batch[i] = ingest.Observation{
			Source: o.Source,
			Event: timeline.Event{
				Entity:  timeline.EntityID(o.Entity),
				Kind:    kind,
				At:      timeline.Tick(o.At),
				Version: o.Version,
			},
		}
	}
	if err := t.ing.Submit(batch); err != nil {
		var stale *ingest.StaleError
		switch {
		case errors.Is(err, ingest.ErrBackpressure):
			obs.Counter("serve.ingest.backpressure").Inc()
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.IngestEpoch.Seconds())+1))
			writeErr(w, http.StatusTooManyRequests, "%v", err)
		case errors.As(err, &stale):
			obs.Counter("serve.ingest.stale").Inc()
			writeErr(w, http.StatusConflict, "%v", err)
		default:
			obs.Counter("serve.ingest.rejected").Inc()
			writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	obs.Counter("serve.ingest.accepted").Add(int64(len(batch)))
	obs.Gauge(t.metric("ingest.pending")).Set(float64(t.ing.Pending()))
	if t.def {
		obs.Gauge("serve.ingest.pending").Set(float64(t.ing.Pending()))
	}
	writeJSON(w, http.StatusAccepted, ObserveResponse{
		Accepted:  len(batch),
		Pending:   t.ing.Pending(),
		Watermark: int64(t.ing.Watermark()),
		Epoch:     t.ing.Seq(),
	})
}

// CommitEpoch seals the default tenant's pending observations into an epoch
// and publishes the refit estimator as a new serving generation (the
// single-tenant surface; CommitTenantEpoch addresses a named world). With
// nothing pending and nothing dirty it is a no-op returning (nil, nil).
func (s *Server) CommitEpoch(ctx context.Context) (*EpochInfo, error) {
	return s.commitTenantEpoch(ctx, s.def)
}

// CommitTenantEpoch is CommitEpoch for a named tenant ("" addresses the
// default).
func (s *Server) CommitTenantEpoch(ctx context.Context, name string) (*EpochInfo, error) {
	t, err := s.Tenant(name)
	if err != nil {
		return nil, err
	}
	return s.commitTenantEpoch(ctx, t)
}

// commitTenantEpoch seals one tenant's pending observations and publishes
// the refit estimator as that tenant's next serving generation.
//
// The publish mirrors a hot reload's swap semantics: the new generation's
// dataset carries the extended sources with the training cut advanced to
// the epoch watermark, its registry is seeded with the refit model set
// (no cold fit), and in-flight requests finish on the generation they
// started with. On any failure the last-good generation keeps serving and
// the epoch stays dirty — the ingester is Acked only after the generation
// swap, so a publish that fails at any stage ("ingest.publish" fault seam,
// dataset validation, model derivation) is retried by the next commit even
// if no new observations arrive. Commits are serialized per tenant (under
// the same lock as reloads); different tenants commit independently.
func (s *Server) commitTenantEpoch(ctx context.Context, t *Tenant) (*EpochInfo, error) {
	t.reloadMu.Lock()
	defer t.reloadMu.Unlock()
	if t.ing == nil {
		return nil, fmt.Errorf("%w for tenant %q", errNoIngest, t.name)
	}
	sp := obs.Start("serve.ingest.commit.seconds")
	defer sp.End()

	ep, err := t.ing.Commit(ctx)
	if err != nil {
		obs.Counter("serve.ingest.epoch_failures").Inc()
		return nil, err
	}
	if ep == nil {
		return nil, nil
	}
	if err := faults.Inject("ingest.publish"); err != nil {
		obs.Counter("serve.ingest.epoch_failures").Inc()
		return nil, fmt.Errorf("serve: epoch %d publish: %w", ep.Seq, err)
	}

	cur := t.current()
	nd := &dataset.Dataset{Name: cur.d.Name, World: cur.d.World, Sources: ep.Sources, T0: ep.Watermark}
	if err := validateDataset(nd); err != nil {
		obs.Counter("serve.ingest.epoch_failures").Inc()
		return nil, fmt.Errorf("serve: epoch %d: %w", ep.Seq, err)
	}
	tr, err := core.FromEstimator(ep.Est, ep.Watermark, core.TrainOptions{FitWorkers: s.cfg.FitWorkers})
	if err != nil {
		obs.Counter("serve.ingest.epoch_failures").Inc()
		return nil, fmt.Errorf("serve: epoch %d: %w", ep.Seq, err)
	}
	maxEntries := s.cfg.MaxCacheEntries
	if maxEntries <= 0 {
		maxEntries = defaultCacheEntries(len(nd.Sources))
	}
	g := &generation{
		id:     cur.id + 1,
		d:      nd,
		reg:    NewRegistry(s.life, nd, maxEntries, s.cfg.FitWorkers, t.mc),
		digest: modelcache.Digest(nd.World, nd.Sources),
	}
	g.reg.SeedTrained(tr)
	// The old registry is not closed on swap (same rule as reloadTenant):
	// in-flight requests holding the old generation finish on its caches;
	// s.life cancels any stray fits at shutdown.
	t.install(g)
	t.ing.Ack(ep.Seq)
	obs.Counter("serve.ingest.epochs").Inc()
	obs.Counter("serve.ingest.observations").Add(int64(ep.Observations))
	obs.Gauge(t.metric("ingest.epoch")).Set(float64(ep.Seq))
	if t.def {
		obs.Gauge("serve.ingest.epoch").Set(float64(ep.Seq))
		obs.Gauge("serve.ingest.watermark").Set(float64(ep.Watermark))
	}
	return &EpochInfo{
		Epoch:        ep.Seq,
		Generation:   g.id,
		Watermark:    int64(ep.Watermark),
		Observations: ep.Observations,
	}, nil
}

// epochLoop is the ingest scheduler: every cfg.IngestEpoch it commits the
// pending buffer of every ingesting tenant, bounded per tenant per tick by
// cfg.ReloadTimeout (a commit refits a full model set, so it is bounded
// like a reload, not like a request). Commit errors are counted and retried
// on the next tick — observations are never dropped by a failed refit, and
// one tenant's failing refit never stalls another's commits past its slot
// in the sweep.
func (s *Server) epochLoop(ctx context.Context) {
	tick := time.NewTicker(s.cfg.IngestEpoch)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for _, name := range s.names {
			t := s.tenants[name]
			if t.ing == nil {
				continue
			}
			cctx, cancel := context.WithTimeout(ctx, s.cfg.ReloadTimeout)
			_, err := s.commitTenantEpoch(cctx, t)
			cancel()
			if err != nil && ctx.Err() == nil {
				obs.Counter("serve.ingest.scheduler_errors").Inc()
			}
		}
	}
}
