package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/estimate"
	"freshsource/internal/faults"
	"freshsource/internal/modelcache"
	"freshsource/internal/obs"
	"freshsource/internal/timeline"
)

// Registry keeps everything fitted or derived from the server's snapshot
// warm across requests, so repeated queries skip refitting:
//
//   - trained: fitted world models + profiles + cost model per frequency-
//     divisor configuration (key "2,3,4" in request order, "" = base).
//     Fitting is the expensive step; it runs once per configuration, with
//     concurrent requests for the same key waiting on the first fit.
//   - problems: assembled selection problems per (divisors, gain, metric,
//     budget, Tf) — the profit oracle and matroid constraints.
//   - states: estimate.SetState per (divisors, explicit candidate set) —
//     the /v1/quality warm path; each state lazily accumulates per-tick
//     miss products, so overlapping Tf vectors get cheaper over time.
//   - results: marshaled /v1/select response bodies per canonical request,
//     making a repeated query a map lookup (and byte-identical by
//     construction).
//
// All caches are bounded by maxEntries; on overflow a cache resets
// wholesale (an epoch flush — simple, and the refit cost is the same as a
// cold start for the flushed keys only). Hit/miss counters live under
// serve.registry.* in the obs snapshot; the warm hit rate is
// result_hits / (result_hits + result_misses).
type Registry struct {
	d          *dataset.Dataset
	max        int
	fitWorkers int
	mc         *modelcache.Cache

	// fitCtx scopes every fit this registry runs. Fits are detached from
	// the requests that trigger them — a request whose deadline fires
	// while a fit is in flight abandons the wait, but the fit itself runs
	// to completion and is cached for everyone else. Only Close (the
	// registry being retired: server shutdown, or a reload candidate
	// being rolled back) cancels fits in flight.
	fitCtx    context.Context
	fitCancel context.CancelFunc

	mu       sync.Mutex
	trained  map[string]*trainedEntry
	problems map[string]*core.Problem
	states   map[string]*estimate.SetState
	results  map[string][]byte
}

// trainedEntry is a fit-once slot: the first requester starts a detached
// fit, everyone (including the first requester) waits on ready.
type trainedEntry struct {
	ready chan struct{}
	tr    *core.Trained
	err   error
}

// NewRegistry builds an empty registry over the snapshot. base scopes the
// registry's lifetime: fits in flight are canceled when it is canceled (or
// when Close is called). fitWorkers bounds the model-fitting pool (0 =
// GOMAXPROCS); mc, when non-nil, is the persistent model cache consulted
// before any fit — a verified disk hit skips the statistical fitting
// entirely, which is what makes a restart over an unchanged snapshot fast.
func NewRegistry(base context.Context, d *dataset.Dataset, maxEntries, fitWorkers int, mc *modelcache.Cache) *Registry {
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	return &Registry{
		d:          d,
		max:        maxEntries,
		fitWorkers: fitWorkers,
		mc:         mc,
		fitCtx:     ctx,
		fitCancel:  cancel,
		trained:    make(map[string]*trainedEntry),
		problems:   make(map[string]*core.Problem),
		states:     make(map[string]*estimate.SetState),
		results:    make(map[string][]byte),
	}
}

// Close retires the registry, canceling any fits in flight. Waiters on a
// canceled fit get its cancellation error; cached entries remain readable
// (in-flight requests on a swapped-out generation finish normally).
func (r *Registry) Close() { r.fitCancel() }

// DivKey canonicalizes a divisor list. Order is preserved: candidate
// numbering depends on it, exactly as freshselect's -divisors flag.
func DivKey(divisors []int) string {
	if len(divisors) == 0 {
		return ""
	}
	parts := make([]string, len(divisors))
	for i, d := range divisors {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, ",")
}

// Trained returns the fitted models for a divisor configuration, fitting on
// first use. The fit itself runs detached, under the registry's lifecycle
// context rather than ctx: one request's fired deadline must not poison the
// shared fit for every other waiter queued on it. ctx only bounds this
// caller's wait — on expiry the caller gets its own ctx.Err() while the fit
// continues and is cached. A failed fit is not cached, so the next request
// retries.
func (r *Registry) Trained(ctx context.Context, divisors []int) (*core.Trained, error) {
	key := DivKey(divisors)
	r.mu.Lock()
	e, ok := r.trained[key]
	if !ok {
		e = &trainedEntry{ready: make(chan struct{})}
		if len(r.trained) >= r.max {
			r.trained = make(map[string]*trainedEntry)
			obs.Counter("serve.registry.evictions").Inc()
		}
		r.trained[key] = e
		go r.fit(key, e, divisors)
	}
	r.mu.Unlock()
	if ok {
		obs.Counter("serve.registry.trained_hits").Inc()
	} else {
		obs.Counter("serve.registry.trained_misses").Inc()
	}

	select {
	case <-e.ready:
		return e.tr, e.err
	case <-ctx.Done():
		obs.Counter("serve.registry.trained_abandoned").Inc()
		return nil, ctx.Err()
	}
}

// fit runs the detached model fit for one trained entry and publishes the
// outcome by closing ready. A failed entry is removed from the map (if the
// map still holds it — an epoch flush may have dropped it already), so the
// next request refits.
func (r *Registry) fit(key string, e *trainedEntry, divisors []int) {
	defer close(e.ready)
	opt := core.TrainOptions{FreqDivisors: divisors, FitWorkers: r.fitWorkers}
	if err := faults.Inject("serve.fit"); err != nil {
		e.err = fmt.Errorf("fit %q: %w", key, err)
	} else if r.mc != nil {
		var status modelcache.Status
		e.tr, status, e.err = r.mc.LoadOrFit(r.fitCtx, r.d, opt)
		obs.Counter("serve.registry.modelcache_" + status.String()).Inc()
	} else {
		e.tr, e.err = core.TrainContext(r.fitCtx, r.d.World, r.d.Sources, r.d.T0, opt)
	}
	if e.err != nil {
		r.mu.Lock()
		if r.trained[key] == e {
			delete(r.trained, key)
		}
		r.mu.Unlock()
	}
}

// SeedTrained pre-populates the base (no-divisor) trained entry with an
// already fitted model set, so a generation published by the ingestion
// epoch path serves immediately without refitting what the incremental
// refit just produced. Divisor-variant configurations still fit lazily
// from the generation's (extended) sources on first use.
func (r *Registry) SeedTrained(tr *core.Trained) {
	e := &trainedEntry{ready: make(chan struct{}), tr: tr}
	close(e.ready)
	r.mu.Lock()
	r.trained[""] = e
	r.mu.Unlock()
}

// Problem returns the assembled selection problem for (divisors, gain,
// metric, budget, ticks), building and caching it over the warm Trained.
func (r *Registry) Problem(ctx context.Context, divisors []int, gainName, metric string, budget float64, ticks []timeline.Tick) (*core.Problem, error) {
	tr, err := r.Trained(ctx, divisors)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|%s|%s|%g|%s", DivKey(divisors), gainName, metric, budget, tickKey(ticks))

	r.mu.Lock()
	if p, ok := r.problems[key]; ok {
		r.mu.Unlock()
		obs.Counter("serve.registry.problem_hits").Inc()
		return p, nil
	}
	r.mu.Unlock()
	obs.Counter("serve.registry.problem_misses").Inc()

	g, err := MakeGain(gainName, metric, r.d.World.NumEntities())
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(tr, ticks, g, core.ProblemOptions{Budget: budget})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if prev, ok := r.problems[key]; ok {
		p = prev // a concurrent builder won; converge on one instance
	} else {
		if len(r.problems) >= r.max {
			r.problems = make(map[string]*core.Problem)
			obs.Counter("serve.registry.evictions").Inc()
		}
		r.problems[key] = p
	}
	r.mu.Unlock()
	return p, nil
}

// State returns the warm evaluation state of an explicit candidate set
// (request order preserved — it is the fold order of the miss products).
func (r *Registry) State(ctx context.Context, divisors []int, set []int) (*estimate.SetState, *core.Trained, error) {
	tr, err := r.Trained(ctx, divisors)
	if err != nil {
		return nil, nil, err
	}
	key := DivKey(divisors) + "|" + tickKeyInts(set)

	r.mu.Lock()
	if st, ok := r.states[key]; ok {
		r.mu.Unlock()
		obs.Counter("serve.registry.state_hits").Inc()
		return st, tr, nil
	}
	r.mu.Unlock()
	obs.Counter("serve.registry.state_misses").Inc()

	st := tr.Est.NewSetState(set)
	r.mu.Lock()
	if prev, ok := r.states[key]; ok {
		st = prev
	} else {
		if len(r.states) >= r.max {
			r.states = make(map[string]*estimate.SetState)
			obs.Counter("serve.registry.evictions").Inc()
		}
		r.states[key] = st
	}
	r.mu.Unlock()
	return st, tr, nil
}

// CachedResult returns the marshaled response of an identical earlier
// select request, if still cached.
func (r *Registry) CachedResult(key string) ([]byte, bool) {
	r.mu.Lock()
	body, ok := r.results[key]
	r.mu.Unlock()
	if ok {
		obs.Counter("serve.registry.result_hits").Inc()
	} else {
		obs.Counter("serve.registry.result_misses").Inc()
	}
	return body, ok
}

// PutResult caches a marshaled select response.
func (r *Registry) PutResult(key string, body []byte) {
	r.mu.Lock()
	if len(r.results) >= r.max {
		r.results = make(map[string][]byte)
		obs.Counter("serve.registry.evictions").Inc()
	}
	r.results[key] = body
	r.mu.Unlock()
}

func tickKey(ts []timeline.Tick) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = strconv.FormatInt(int64(t), 10)
	}
	return strings.Join(parts, ",")
}

func tickKeyInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}
