package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/estimate"
	"freshsource/internal/modelcache"
	"freshsource/internal/obs"
	"freshsource/internal/timeline"
)

// Registry keeps everything fitted or derived from the server's snapshot
// warm across requests, so repeated queries skip refitting:
//
//   - trained: fitted world models + profiles + cost model per frequency-
//     divisor configuration (key "2,3,4" in request order, "" = base).
//     Fitting is the expensive step; it runs once per configuration, with
//     concurrent requests for the same key waiting on the first fit.
//   - problems: assembled selection problems per (divisors, gain, metric,
//     budget, Tf) — the profit oracle and matroid constraints.
//   - states: estimate.SetState per (divisors, explicit candidate set) —
//     the /v1/quality warm path; each state lazily accumulates per-tick
//     miss products, so overlapping Tf vectors get cheaper over time.
//   - results: marshaled /v1/select response bodies per canonical request,
//     making a repeated query a map lookup (and byte-identical by
//     construction).
//
// All caches are bounded by maxEntries; on overflow a cache resets
// wholesale (an epoch flush — simple, and the refit cost is the same as a
// cold start for the flushed keys only). Hit/miss counters live under
// serve.registry.* in the obs snapshot; the warm hit rate is
// result_hits / (result_hits + result_misses).
type Registry struct {
	d          *dataset.Dataset
	max        int
	fitWorkers int
	mc         *modelcache.Cache

	mu       sync.Mutex
	trained  map[string]*trainedEntry
	problems map[string]*core.Problem
	states   map[string]*estimate.SetState
	results  map[string][]byte
}

// trainedEntry is a fit-once slot: the first requester fits, everyone else
// waits on ready.
type trainedEntry struct {
	ready chan struct{}
	tr    *core.Trained
	err   error
}

// NewRegistry builds an empty registry over the snapshot. fitWorkers
// bounds the model-fitting pool (0 = GOMAXPROCS); mc, when non-nil, is
// the persistent model cache consulted before any fit — a verified disk
// hit skips the statistical fitting entirely, which is what makes a
// restart over an unchanged snapshot fast.
func NewRegistry(d *dataset.Dataset, maxEntries, fitWorkers int, mc *modelcache.Cache) *Registry {
	return &Registry{
		d:          d,
		max:        maxEntries,
		fitWorkers: fitWorkers,
		mc:         mc,
		trained:    make(map[string]*trainedEntry),
		problems:   make(map[string]*core.Problem),
		states:     make(map[string]*estimate.SetState),
		results:    make(map[string][]byte),
	}
}

// DivKey canonicalizes a divisor list. Order is preserved: candidate
// numbering depends on it, exactly as freshselect's -divisors flag.
func DivKey(divisors []int) string {
	if len(divisors) == 0 {
		return ""
	}
	parts := make([]string, len(divisors))
	for i, d := range divisors {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, ",")
}

// Trained returns the fitted models for a divisor configuration, fitting on
// first use. The fit runs under ctx (a fired deadline aborts it); a failed
// fit is not cached, so the next request retries.
func (r *Registry) Trained(ctx context.Context, divisors []int) (*core.Trained, error) {
	key := DivKey(divisors)
	r.mu.Lock()
	if e, ok := r.trained[key]; ok {
		r.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, e.err
		}
		obs.Counter("serve.registry.trained_hits").Inc()
		return e.tr, nil
	}
	e := &trainedEntry{ready: make(chan struct{})}
	if len(r.trained) >= r.max {
		r.trained = make(map[string]*trainedEntry)
		obs.Counter("serve.registry.evictions").Inc()
	}
	r.trained[key] = e
	r.mu.Unlock()
	obs.Counter("serve.registry.trained_misses").Inc()

	opt := core.TrainOptions{FreqDivisors: divisors, FitWorkers: r.fitWorkers}
	var tr *core.Trained
	var err error
	if r.mc != nil {
		var status modelcache.Status
		tr, status, err = r.mc.LoadOrFit(ctx, r.d, opt)
		obs.Counter("serve.registry.modelcache_" + status.String()).Inc()
	} else {
		tr, err = core.TrainContext(ctx, r.d.World, r.d.Sources, r.d.T0, opt)
	}
	e.tr, e.err = tr, err
	if err != nil {
		r.mu.Lock()
		if r.trained[key] == e {
			delete(r.trained, key)
		}
		r.mu.Unlock()
	}
	close(e.ready)
	return tr, err
}

// Problem returns the assembled selection problem for (divisors, gain,
// metric, budget, ticks), building and caching it over the warm Trained.
func (r *Registry) Problem(ctx context.Context, divisors []int, gainName, metric string, budget float64, ticks []timeline.Tick) (*core.Problem, error) {
	tr, err := r.Trained(ctx, divisors)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|%s|%s|%g|%s", DivKey(divisors), gainName, metric, budget, tickKey(ticks))

	r.mu.Lock()
	if p, ok := r.problems[key]; ok {
		r.mu.Unlock()
		obs.Counter("serve.registry.problem_hits").Inc()
		return p, nil
	}
	r.mu.Unlock()
	obs.Counter("serve.registry.problem_misses").Inc()

	g, err := MakeGain(gainName, metric, r.d.World.NumEntities())
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(tr, ticks, g, core.ProblemOptions{Budget: budget})
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if prev, ok := r.problems[key]; ok {
		p = prev // a concurrent builder won; converge on one instance
	} else {
		if len(r.problems) >= r.max {
			r.problems = make(map[string]*core.Problem)
			obs.Counter("serve.registry.evictions").Inc()
		}
		r.problems[key] = p
	}
	r.mu.Unlock()
	return p, nil
}

// State returns the warm evaluation state of an explicit candidate set
// (request order preserved — it is the fold order of the miss products).
func (r *Registry) State(ctx context.Context, divisors []int, set []int) (*estimate.SetState, *core.Trained, error) {
	tr, err := r.Trained(ctx, divisors)
	if err != nil {
		return nil, nil, err
	}
	key := DivKey(divisors) + "|" + tickKeyInts(set)

	r.mu.Lock()
	if st, ok := r.states[key]; ok {
		r.mu.Unlock()
		obs.Counter("serve.registry.state_hits").Inc()
		return st, tr, nil
	}
	r.mu.Unlock()
	obs.Counter("serve.registry.state_misses").Inc()

	st := tr.Est.NewSetState(set)
	r.mu.Lock()
	if prev, ok := r.states[key]; ok {
		st = prev
	} else {
		if len(r.states) >= r.max {
			r.states = make(map[string]*estimate.SetState)
			obs.Counter("serve.registry.evictions").Inc()
		}
		r.states[key] = st
	}
	r.mu.Unlock()
	return st, tr, nil
}

// CachedResult returns the marshaled response of an identical earlier
// select request, if still cached.
func (r *Registry) CachedResult(key string) ([]byte, bool) {
	r.mu.Lock()
	body, ok := r.results[key]
	r.mu.Unlock()
	if ok {
		obs.Counter("serve.registry.result_hits").Inc()
	} else {
		obs.Counter("serve.registry.result_misses").Inc()
	}
	return body, ok
}

// PutResult caches a marshaled select response.
func (r *Registry) PutResult(key string, body []byte) {
	r.mu.Lock()
	if len(r.results) >= r.max {
		r.results = make(map[string][]byte)
		obs.Counter("serve.registry.evictions").Inc()
	}
	r.results[key] = body
	r.mu.Unlock()
}

func tickKey(ts []timeline.Tick) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = strconv.FormatInt(int64(t), 10)
	}
	return strings.Join(parts, ",")
}

func tickKeyInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}
