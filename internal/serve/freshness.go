package serve

import (
	"context"
	"net/http"
	"strconv"

	"freshsource/internal/obs"
	"freshsource/internal/profile"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
)

// FreshnessSource is the monitoring view of one source on GET /v1/freshness:
// how stale its last capture is at the evaluation tick, against thresholds
// derived from its own fitted update model.
type FreshnessSource struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Status is fresh, warning or stale.
	Status string `json:"status"`
	// LastCapture is the tick of the last event at or before the
	// evaluation tick, -1 when the source has never captured anything.
	LastCapture int64 `json:"last_capture"`
	// AgeTicks is at − LastCapture, -1 when there is no capture.
	AgeTicks int64 `json:"age_ticks"`
	// UpdateInterval is the fitted mean refresh interval ūS.
	UpdateInterval float64 `json:"update_interval"`
	// CaptureLag is the median capture-effectiveness delay from the
	// Kaplan–Meier insert distribution Gi (falling back to the update
	// distribution Gu): how long the source typically trails the world
	// even when it is refreshing on schedule.
	CaptureLag float64 `json:"capture_lag"`
	// WarnAfter and StaleAfter are the resolved age thresholds
	// (factor·ūS + CaptureLag) this source was classified against.
	WarnAfter  float64 `json:"warn_after"`
	StaleAfter float64 `json:"stale_after"`
}

// FreshnessResponse is the body of GET /v1/freshness.
type FreshnessResponse struct {
	Dataset     string            `json:"dataset"`
	At          int64             `json:"at"`
	Generation  uint64            `json:"generation"`
	WarnFactor  float64           `json:"warn_factor"`
	StaleFactor float64           `json:"stale_factor"`
	Totals      map[string]int    `json:"totals"`
	Sources     []FreshnessSource `json:"sources"`
}

// Freshness statuses, ordered healthy to unhealthy.
const (
	StatusFresh   = "fresh"
	StatusWarning = "warning"
	StatusStale   = "stale"
)

// captureLag extracts the typical capture delay from a fitted profile: the
// median of the insert-effectiveness KM curve Gi, falling back to the
// update curve Gu, then to zero when neither distribution reached 0.5 (a
// source that never demonstrably captures gets no lag allowance — its
// staleness is judged on the refresh schedule alone).
func captureLag(p *profile.Profile) float64 {
	for _, km := range []*stats.KaplanMeier{p.Gi, p.Gu} {
		if km == nil {
			continue
		}
		if m, ok := km.MedianTime(); ok && m > 0 {
			return m
		}
	}
	return 0
}

// classify places one age on the fresh/warning/stale scale. A source with
// no capture at all (age < 0) is always stale. When warnAfter equals
// staleAfter the warning band is empty and classification is binary.
func classify(age int64, warnAfter, staleAfter float64) string {
	switch {
	case age < 0:
		return StatusStale
	case float64(age) <= warnAfter:
		return StatusFresh
	case float64(age) <= staleAfter:
		return StatusWarning
	default:
		return StatusStale
	}
}

// queryFactor reads an optional float query parameter, keeping def when the
// parameter is absent. The bool is false on a malformed value.
func queryFactor(r *http.Request, name string, def float64) (float64, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// handleFreshness classifies every source of the serving snapshot as fresh,
// warning or stale from its fitted change/update model and its last capture
// tick. Thresholds scale per source: a daily feed is stale after days, a
// monthly dump after months. The per-status totals are also published as
// serve.freshness.* gauges so /metrics scrapes track the fleet's health
// without polling this endpoint.
func (s *Server) handleFreshness(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	gen := t.current()
	d := gen.d

	at := d.T0
	if raw := r.URL.Query().Get("at"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 || timeline.Tick(v) >= d.Horizon() {
			writeErr(w, http.StatusBadRequest,
				"at %q outside [0, %d]", raw, d.Horizon()-1)
			return
		}
		at = timeline.Tick(v)
	}
	warnF, ok := queryFactor(r, "warn", s.cfg.FreshnessWarnFactor)
	if !ok {
		writeErr(w, http.StatusBadRequest, "bad warn factor %q", r.URL.Query().Get("warn"))
		return
	}
	staleF, ok := queryFactor(r, "stale", s.cfg.FreshnessStaleFactor)
	if !ok {
		writeErr(w, http.StatusBadRequest, "bad stale factor %q", r.URL.Query().Get("stale"))
		return
	}
	if warnF <= 0 || staleF < warnF {
		writeErr(w, http.StatusBadRequest,
			"factors must satisfy 0 < warn (%g) ≤ stale (%g)", warnF, staleF)
		return
	}

	// The fitted profiles come from the generation's warm registry; the
	// base fit completed at startup/reload, so this is a cache hit unless
	// the endpoint races a cold registry — then it waits like any request.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	tr, err := gen.reg.Trained(ctx, nil)
	if err != nil {
		s.solveError(w, err)
		return
	}

	// Base candidates map 1:1 onto sources; index the profiles by source
	// so divisor variants (if a non-base fit ever lands here) are skipped.
	profiles := make(map[int]*profile.Profile, len(d.Sources))
	for i := 0; i < tr.NumCandidates(); i++ {
		c := tr.Est.Candidate(i)
		if _, seen := profiles[c.SourceIndex]; !seen || c.Divisor() == 1 {
			profiles[c.SourceIndex] = c.Profile
		}
	}

	resp := FreshnessResponse{
		Dataset:     d.Name,
		At:          int64(at),
		Generation:  gen.id,
		WarnFactor:  warnF,
		StaleFactor: staleF,
		Totals:      map[string]int{StatusFresh: 0, StatusWarning: 0, StatusStale: 0},
		Sources:     make([]FreshnessSource, len(d.Sources)),
	}
	for i, src := range d.Sources {
		fs := FreshnessSource{
			Index:       i,
			Name:        src.Name(),
			LastCapture: -1,
			AgeTicks:    -1,
		}
		if p := profiles[i]; p != nil {
			fs.UpdateInterval = p.UpdateInterval
			fs.CaptureLag = captureLag(p)
		}
		fs.WarnAfter = warnF*fs.UpdateInterval + fs.CaptureLag
		fs.StaleAfter = staleF*fs.UpdateInterval + fs.CaptureLag
		if last, ok := src.Log().LastEventAt(at); ok {
			fs.LastCapture = int64(last)
			fs.AgeTicks = int64(at - last)
		}
		fs.Status = classify(fs.AgeTicks, fs.WarnAfter, fs.StaleAfter)
		resp.Totals[fs.Status]++
		resp.Sources[i] = fs
	}

	obs.Counter("serve.freshness.checks").Inc()
	obs.Gauge("serve.freshness.fresh").Set(float64(resp.Totals[StatusFresh]))
	obs.Gauge("serve.freshness.warning").Set(float64(resp.Totals[StatusWarning]))
	obs.Gauge("serve.freshness.stale").Set(float64(resp.Totals[StatusStale]))
	writeJSON(w, http.StatusOK, resp)
}
