package serve

import (
	"runtime"
	"time"
)

// Config tunes a freshd server. The zero value is production-serviceable:
// every field has a withDefaults fallback.
type Config struct {
	// Addr is the listen address of ListenAndServe (":8080" by default;
	// use ":0" in tests to bind an ephemeral port).
	Addr string

	// MaxInflight bounds how many selection/quality requests may run
	// concurrently; requests beyond it are rejected with 429 instead of
	// queueing (fail fast so a saturated server stays responsive on
	// /healthz and /metrics). Defaults to 2×GOMAXPROCS.
	MaxInflight int

	// RequestTimeout bounds each selection/quality request; on expiry the
	// solve is canceled (selection discards the sweep in flight) and the
	// client gets 504. Defaults to 30s.
	RequestTimeout time.Duration

	// ShutdownGrace bounds the drain on shutdown: after the listener
	// closes, in-flight requests get this long to finish. Defaults to 10s.
	ShutdownGrace time.Duration

	// DefaultFuture is |Tf| when a request names neither ticks nor future
	// (10, matching freshselect).
	DefaultFuture int

	// MaxCacheEntries bounds each registry cache (results, problems, set
	// states); on overflow a cache is reset wholesale. 0 scales the bound
	// to the snapshot's corpus when each generation is built: 4096 entries
	// up to 2048 sources, shrinking inversely beyond that with a floor of
	// 512 — cached keys and set states grow with the candidate count, so a
	// fixed bound sized for small corpora would balloon at paper scale.
	MaxCacheEntries int

	// FitWorkers bounds the model-fitting pool used when the registry
	// fits: 0 uses GOMAXPROCS, 1 fits sequentially. Fitted models are
	// byte-identical at any setting.
	FitWorkers int

	// ModelCacheDir, when non-empty, enables the persistent model cache:
	// the registry consults it before fitting, so a restart over the same
	// snapshot skips the statistical fits entirely. Empty disables it.
	ModelCacheDir string

	// SnapshotDir, when non-empty, is the snapio dataset directory the
	// server can hot-reload from (SIGHUP or POST /v1/reload): the staged
	// snapshot is validated and fitted off to the side, then atomically
	// swapped in — or rolled back, keeping the last-good generation, on
	// any failure. Empty means the dataset was generated in-process and
	// reload is unavailable.
	SnapshotDir string

	// ReloadTimeout bounds the stage+fit phase of a hot reload; on expiry
	// the candidate is discarded and the serving generation is kept.
	// Defaults to 5m (a reload fits a full model set, so it is bounded
	// like a cold start, not like a request).
	ReloadTimeout time.Duration

	// MaxBodyBytes caps a request body on the POST endpoints; an
	// oversized body is rejected with 413 before it can exhaust memory.
	// Defaults to 1 MiB.
	MaxBodyBytes int64

	// IngestEpoch, when positive, enables streaming ingestion: POST
	// /v1/observe buffers observations and an epoch scheduler commits them
	// at this interval — each commit appends a durable epoch record (when
	// IngestDir is set), folds the delta into the incremental refit and
	// publishes the refitted estimator as a new serving generation.
	// Ingestion is mutually exclusive with SnapshotDir: a hot reload would
	// silently discard streamed history.
	IngestEpoch time.Duration

	// IngestDir, when non-empty, is the durable epoch-log directory; on
	// restart committed epochs are recovered and refolded before serving.
	// Empty keeps epochs in memory only.
	IngestDir string

	// IngestMaxLag bounds buffered (uncommitted) observations; past it
	// /v1/observe sheds load with 429 until the next epoch commit drains
	// the buffer. 0 means ingest.DefaultMaxPending; values above
	// ingest.MaxEpochObservations are clamped so every sealed epoch fits
	// in one durable log frame.
	IngestMaxLag int

	// DefaultTenant names the tenant served when a request carries no
	// ?tenant= parameter; it is the tenant built over the dataset passed to
	// New (with SnapshotDir/IngestDir as its reload/ingest scopes).
	// Defaults to "default".
	DefaultTenant string

	// Tenants declares additional named worlds hosted behind the same
	// daemon, each with its own dataset, generation lineage, model-cache
	// scope, ingest log and coalescers. See TenantSpec and
	// LoadTenantManifest for the manifest file format.
	Tenants []TenantSpec

	// CoalesceWindow is the batch window of the per-tenant request
	// coalescers on /v1/select and /v1/quality: concurrent identical
	// requests inside one window are answered from a single solver pass
	// (byte-identical to the uncoalesced path — the window changes
	// scheduling, never content). 0 defaults to 2ms; negative disables the
	// hold, leaving pure in-flight dedupe.
	CoalesceWindow time.Duration

	// FreshnessWarnFactor and FreshnessStaleFactor are the GET /v1/freshness
	// classification thresholds, as multiples of each source's fitted mean
	// update interval ūS: a source whose age exceeds warn·ūS + capture-lag
	// is "warning", past stale·ūS + capture-lag it is "stale". Defaults
	// 1.5 and 3.0; equal factors collapse the warning band. Requests may
	// override both per call (?warn=&stale=).
	FreshnessWarnFactor  float64
	FreshnessStaleFactor float64
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.DefaultFuture <= 0 {
		c.DefaultFuture = 10
	}
	if c.ReloadTimeout <= 0 {
		c.ReloadTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultTenant == "" {
		c.DefaultTenant = "default"
	}
	switch {
	case c.CoalesceWindow == 0:
		c.CoalesceWindow = 2 * time.Millisecond
	case c.CoalesceWindow < 0:
		c.CoalesceWindow = 0
	}
	if c.FreshnessWarnFactor <= 0 {
		c.FreshnessWarnFactor = 1.5
	}
	if c.FreshnessStaleFactor <= 0 {
		c.FreshnessStaleFactor = 3.0
	}
	if c.FreshnessStaleFactor < c.FreshnessWarnFactor {
		c.FreshnessStaleFactor = c.FreshnessWarnFactor
	}
	return c
}
