package serve

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"freshsource/internal/dataset"
	"freshsource/internal/obs"
	"freshsource/internal/snapio"
)

// tenantServer builds a multi-tenant server: the fixture dataset as the
// default tenant plus the alt dataset as tenant "alt".
func tenantServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	cfg.Tenants = append(cfg.Tenants, TenantSpec{Name: "alt", Dataset: altDataset(t)})
	s, err := New(testDataset(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTenantIsolationByteIdentical pins the tenancy contract: every
// tenant-addressed response from a multi-tenant daemon is byte-identical to
// the same request against a dedicated single-tenant daemon over the same
// data — under concurrent cross-tenant traffic.
func TestTenantIsolationByteIdentical(t *testing.T) {
	multi := tenantServer(t, Config{MaxInflight: 64})
	defer multi.Close()
	dedDef := newServer(t, Config{})
	defer dedDef.Close()
	dedAlt, err := New(altDataset(t), Config{DefaultTenant: "alt"})
	if err != nil {
		t.Fatal(err)
	}
	defer dedAlt.Close()

	type probe struct {
		method, path, body string
	}
	probes := []probe{
		{http.MethodPost, "/v1/select", `{"algorithm":"greedy","future":4}`},
		{http.MethodPost, "/v1/quality", `{"set":[0,2,5],"ticks":[150,200]}`},
		{http.MethodGet, "/v1/freshness", ""},
		{http.MethodGet, "/v1/sources", ""},
	}
	do := func(s *Server, pr probe, tenant string) (int, string) {
		path := pr.path
		if tenant != "" {
			path += "?tenant=" + tenant
		}
		if pr.method == http.MethodGet {
			rec := getJSON(t, s.Handler(), path, nil)
			return rec.Code, rec.Body.String()
		}
		rec := postJSON(t, s.Handler(), path, pr.body)
		return rec.Code, rec.Body.String()
	}

	// References from the dedicated daemons first (sequential).
	wantDef := make([]string, len(probes))
	wantAlt := make([]string, len(probes))
	for i, pr := range probes {
		code, body := do(dedDef, pr, "")
		if code != http.StatusOK {
			t.Fatalf("dedicated default %s: %d %s", pr.path, code, body)
		}
		wantDef[i] = body
		if code, body = do(dedAlt, pr, ""); code != http.StatusOK {
			t.Fatalf("dedicated alt %s: %d %s", pr.path, code, body)
		}
		wantAlt[i] = body
	}

	// Hammer the multi-tenant daemon with interleaved cross-tenant traffic.
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for round := 0; round < 4; round++ {
		for i, pr := range probes {
			wg.Add(2)
			go func() {
				defer wg.Done()
				if code, body := do(multi, pr, ""); code != http.StatusOK || body != wantDef[i] {
					errs <- fmt.Sprintf("default tenant %s: code %d, bytes diverge from dedicated daemon", pr.path, code)
				}
			}()
			go func() {
				defer wg.Done()
				if code, body := do(multi, pr, "alt"); code != http.StatusOK || body != wantAlt[i] {
					errs <- fmt.Sprintf("tenant alt %s: code %d, bytes diverge from dedicated daemon", pr.path, code)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestTenantUnknown404: an unknown tenant is a 404 on every endpoint and
// counts on serve.tenant.unknown; it never falls through to another
// tenant's data.
func TestTenantUnknown404(t *testing.T) {
	srv := tenantServer(t, Config{MaxInflight: 64})
	defer srv.Close()

	n0 := counter("serve.tenant.unknown")
	for _, path := range []string{"/v1/select?tenant=nope", "/v1/quality?tenant=nope", "/v1/reload?tenant=nope"} {
		if rec := postJSON(t, srv.Handler(), path, `{}`); rec.Code != http.StatusNotFound {
			t.Errorf("%s: got %d want 404: %s", path, rec.Code, rec.Body.String())
		}
	}
	for _, path := range []string{"/v1/sources?tenant=nope", "/v1/freshness?tenant=nope"} {
		if rec := getJSON(t, srv.Handler(), path, nil); rec.Code != http.StatusNotFound {
			t.Errorf("%s: got %d want 404: %s", path, rec.Code, rec.Body.String())
		}
	}
	if got := counter("serve.tenant.unknown") - n0; got != 5 {
		t.Errorf("serve.tenant.unknown delta = %d, want 5", got)
	}
}

// TestTenantReloadIsolation reloads one tenant under live load on another:
// the other tenant's generation and response bytes must not move.
func TestTenantReloadIsolation(t *testing.T) {
	dir := t.TempDir()
	if err := snapio.Write(dir, testDataset(t)); err != nil {
		t.Fatal(err)
	}
	srv, err := New(testDataset(t), Config{
		SnapshotDir: dir,
		Tenants:     []TenantSpec{{Name: "alt", Dataset: altDataset(t)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const altSel = `{"algorithm":"greedy","future":4}`
	want := postJSON(t, srv.Handler(), "/v1/select?tenant=alt", altSel)
	if want.Code != http.StatusOK {
		t.Fatalf("alt select: %d %s", want.Code, want.Body.String())
	}
	altT, err := srv.Tenant("alt")
	if err != nil {
		t.Fatal(err)
	}
	gen0 := altT.Generation()

	// Roll the default tenant's snapshot to different data, then reload it
	// while tenant alt serves concurrent traffic.
	other := altDataset(t)
	other.Name = "rolled"
	if err := snapio.Write(dir, other); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var loadErr sync.Once
	var failed string
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			rec := postJSON(t, srv.Handler(), "/v1/select?tenant=alt", altSel)
			if rec.Code != http.StatusOK || rec.Body.String() != want.Body.String() {
				loadErr.Do(func() { failed = fmt.Sprintf("alt under reload: %d", rec.Code) })
				return
			}
		}
	}()
	info, err := srv.Reload(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if failed != "" {
		t.Error(failed)
	}
	if !info.Swapped || info.Tenant != srv.def.name || info.Dataset != "rolled" {
		t.Errorf("reload info: %+v", info)
	}
	if altT.Generation() != gen0 {
		t.Errorf("tenant alt generation moved %d -> %d on another tenant's reload", gen0, altT.Generation())
	}
	if rec := postJSON(t, srv.Handler(), "/v1/select?tenant=alt", altSel); rec.Body.String() != want.Body.String() {
		t.Error("tenant alt bytes diverged after another tenant's reload")
	}
	// The default tenant really did swap.
	if got := srv.Generation(); got != 2 {
		t.Errorf("default tenant generation = %d, want 2", got)
	}
}

// TestTenantObserveCommitIsolation streams observations into one tenant and
// commits its epoch: the tenant's generation advances and matches a
// dedicated single-tenant daemon fed the same events byte-for-byte, while
// the other tenant stays on generation 1.
func TestTenantObserveCommitIsolation(t *testing.T) {
	d := testDataset(t)
	t0 := int64(d.T0)
	events := observeBody(
		ev(0, 3, t0+5, "appear", 0),
		ev(1, 3, t0+6, "update", 1),
		ev(2, 9, t0+8, "appear", 0),
	)
	const sel = `{"algorithm":"greedy","future":4}`

	multi, err := New(d, Config{
		IngestEpoch: time.Hour,
		Tenants:     []TenantSpec{{Name: "alt", Dataset: altDataset(t)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	ded := newServer(t, ingestConfig(""))
	defer ded.Close()

	for name, h := range map[string]*Server{"multi": multi, "dedicated": ded} {
		if rec := postJSON(t, h.Handler(), "/v1/observe", events); rec.Code != 202 {
			t.Fatalf("%s observe: %d %s", name, rec.Code, rec.Body.String())
		}
	}
	if _, err := multi.CommitEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := ded.CommitEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}

	if got := multi.Generation(); got != 2 {
		t.Errorf("default tenant generation after commit = %d, want 2", got)
	}
	altT, _ := multi.Tenant("alt")
	if got := altT.Generation(); got != 1 {
		t.Errorf("tenant alt generation = %d, want 1 (no events streamed to it)", got)
	}

	wantSel := postJSON(t, ded.Handler(), "/v1/select", sel)
	gotSel := postJSON(t, multi.Handler(), "/v1/select", sel)
	if wantSel.Code != http.StatusOK || gotSel.Body.String() != wantSel.Body.String() {
		t.Error("post-commit select bytes diverge from the dedicated daemon")
	}

	// Streaming into tenant alt commits independently.
	altEvents := observeBody(ev(0, 4, t0+9, "appear", 0))
	if rec := postJSON(t, multi.Handler(), "/v1/observe?tenant=alt", altEvents); rec.Code != 202 {
		t.Fatalf("alt observe: %d %s", rec.Code, rec.Body.String())
	}
	epi, err := multi.CommitTenantEpoch(context.Background(), "alt")
	if err != nil {
		t.Fatal(err)
	}
	if epi == nil || epi.Generation != 2 {
		t.Errorf("alt commit: %+v", epi)
	}
	if got := multi.Generation(); got != 2 {
		t.Errorf("default tenant generation moved to %d on alt's commit", got)
	}
}

// TestObserveWithoutIngestIs409: with ingestion enabled, /v1/observe exists;
// CommitTenantEpoch on an unknown tenant errors cleanly.
func TestCommitUnknownTenant(t *testing.T) {
	srv := newServer(t, ingestConfig(""))
	defer srv.Close()
	if _, err := srv.CommitTenantEpoch(context.Background(), "nope"); err == nil {
		t.Error("commit on unknown tenant did not error")
	}
	if _, err := srv.ReloadTenant(context.Background(), "nope"); err == nil {
		t.Error("reload on unknown tenant did not error")
	}
}

// TestTenantManifest round-trips the on-disk manifest: relative snapshot
// paths resolve against the manifest directory and the loaded tenants
// serve their own snapshots.
func TestTenantManifest(t *testing.T) {
	base := t.TempDir()
	if err := os.MkdirAll(filepath.Join(base, "snapshots"), 0o755); err != nil {
		t.Fatal(err)
	}
	alt := altDataset(t)
	if err := snapio.Write(filepath.Join(base, "snapshots", "alt"), alt); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(base, "tenants.json")
	manifest := `{"tenants":[{"name":"alt","snapshot":"snapshots/alt"}]}`
	if err := os.WriteFile(path, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}

	specs, err := LoadTenantManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "alt" {
		t.Fatalf("specs: %+v", specs)
	}
	if !filepath.IsAbs(specs[0].SnapshotDir) {
		t.Errorf("snapshot path %q not resolved against the manifest dir", specs[0].SnapshotDir)
	}

	srv, err := New(testDataset(t), Config{Tenants: specs})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var src SourcesResponse
	getJSON(t, srv.Handler(), "/v1/sources?tenant=alt", &src)
	if src.Dataset != alt.Name || src.Tenant != "alt" {
		t.Errorf("manifest tenant serves %q as %q", src.Dataset, src.Tenant)
	}

	// Error cases: unknown field, missing name, missing snapshot.
	for name, bad := range map[string]string{
		"unknown-field":    `{"tenants":[{"name":"x","snapshot":"s","typo":1}]}`,
		"missing-name":     `{"tenants":[{"snapshot":"s"}]}`,
		"missing-snapshot": `{"tenants":[{"name":"x"}]}`,
	} {
		p := filepath.Join(base, name+".json")
		if err := os.WriteFile(p, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadTenantManifest(p); err == nil {
			t.Errorf("%s: manifest accepted", name)
		}
	}
}

// TestTenantNameValidation rejects unroutable names and duplicates.
func TestTenantNameValidation(t *testing.T) {
	for _, bad := range []string{"", "-lead", "has space", "q/x"} {
		_, err := New(testDataset(t), Config{Tenants: []TenantSpec{{Name: bad, Dataset: altDataset(t)}}})
		if err == nil || !strings.Contains(err.Error(), "tenant") {
			t.Errorf("name %q accepted (err=%v)", bad, err)
		}
	}
	_, err := New(testDataset(t), Config{Tenants: []TenantSpec{{Name: "default", Dataset: altDataset(t)}}})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate tenant name accepted (err=%v)", err)
	}
}

// TestHealthzTenants: /healthz carries a block per tenant with its own
// generation and digest.
func TestHealthzTenants(t *testing.T) {
	srv := tenantServer(t, Config{MaxInflight: 64})
	defer srv.Close()
	var hz struct {
		Status        string                    `json:"status"`
		DefaultTenant string                    `json:"default_tenant"`
		Tenants       map[string]map[string]any `json:"tenants"`
	}
	getJSON(t, srv.Handler(), "/healthz", &hz)
	if hz.Status != "ok" || hz.DefaultTenant != "default" {
		t.Errorf("healthz: %+v", hz)
	}
	if len(hz.Tenants) != 2 {
		t.Fatalf("tenants blocks: %v", hz.Tenants)
	}
	for _, name := range []string{"default", "alt"} {
		blk := hz.Tenants[name]
		if blk == nil || blk["generation"] != float64(1) || blk["digest"] == "" {
			t.Errorf("tenant %s block: %v", name, blk)
		}
	}
	// Per-tenant generation gauges are live.
	if obs.Active().Gauge("serve.tenant.alt.generation").Value() != 1 {
		t.Error("serve.tenant.alt.generation gauge not set")
	}
}

// dataset identity guard: the fixtures must differ, or the isolation tests
// above would vacuously pass.
func TestFixturesDiffer(t *testing.T) {
	a, b := testDataset(t), altDataset(t)
	if a.Name == b.Name && len(a.Sources) == len(b.Sources) {
		sa, sb := a.SizeAt(a.T0), b.SizeAt(b.T0)
		same := true
		for i := range sa {
			if sa[i] != sb[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("fixture datasets are indistinguishable")
		}
	}
	_ = dataset.DefaultBLConfig() // keep the import honest if guards change
}
