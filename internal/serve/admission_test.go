package serve

import (
	"sync"
	"testing"

	"freshsource/internal/obs"
)

// TestInflightGaugeExactUnderChurn pins the admission-gauge fix: under
// concurrent acquire/release churn the serve.admission.inflight gauge must
// read exactly zero once every slot is released. The old implementation
// published the gauge with Set(post-Add value); because the Set calls are
// not ordered the way the atomic Adds were, a slow goroutine's stale Set
// could land last and persist a nonzero inflight count forever. The
// delta-based gauge (GaugeVar.Add) cannot drift: every acquire adds exactly
// +1 and every release exactly −1, in any interleaving.
func TestInflightGaugeExactUnderChurn(t *testing.T) {
	obs.Enable()
	gauge := obs.Gauge("serve.admission.inflight")
	start := gauge.Value()

	g := NewGate(8)
	const workers, iters = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g.TryAcquire() {
					g.Release()
				}
			}
		}()
	}
	wg.Wait()

	if got := g.Inflight(); got != 0 {
		t.Fatalf("Inflight() = %d after churn, want 0", got)
	}
	if got := gauge.Value() - start; got != 0 {
		t.Fatalf("inflight gauge drifted to %+g after all slots released, want 0", got)
	}
}

// TestInflightGaugeTracksHeldSlots checks the quiescent-point value while
// slots are actually held, not just at drain.
func TestInflightGaugeTracksHeldSlots(t *testing.T) {
	obs.Enable()
	gauge := obs.Gauge("serve.admission.inflight")
	start := gauge.Value()

	g := NewGate(4)
	for i := 0; i < 3; i++ {
		if !g.TryAcquire() {
			t.Fatalf("acquire %d refused below capacity", i)
		}
	}
	if got := gauge.Value() - start; got != 3 {
		t.Fatalf("gauge = %+g with 3 slots held, want 3", got)
	}
	for i := 0; i < 3; i++ {
		g.Release()
	}
	if got := gauge.Value() - start; got != 0 {
		t.Fatalf("gauge = %+g after release, want 0", got)
	}
}
