package serve

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/obs"
	"freshsource/internal/timeline"
	"freshsource/internal/version"
)

// SelectRequest is the body of POST /v1/select. Zero values take the
// freshselect defaults, so `{}` is a valid request (maxsub over the linear
// coverage gain, unconstrained, ten spread future ticks).
type SelectRequest struct {
	Algorithm string  `json:"algorithm,omitempty"` // greedy|maxsub|grasp|lazygreedy|budgeted
	Gain      string  `json:"gain,omitempty"`      // linear|quad|step|data
	Metric    string  `json:"metric,omitempty"`    // coverage|local-freshness|global-freshness|accuracy
	Divisors  []int   `json:"divisors,omitempty"`  // frequency divisors (Definition 4)
	Budget    float64 `json:"budget,omitempty"`    // βc on rescaled cost in (0,1]; 0 = unconstrained
	Kappa     int     `json:"kappa,omitempty"`     // GRASP κ
	Rounds    int     `json:"rounds,omitempty"`    // GRASP r
	Seed      int64   `json:"seed,omitempty"`      // GRASP seed
	Workers   int     `json:"workers,omitempty"`   // sweep workers; 0 sequential, -1 all cores
	Cache     bool    `json:"cache,omitempty"`     // memoize oracle evaluations
	Lazy      bool    `json:"lazy,omitempty"`      // CELF path for greedy
	Future    int     `json:"future,omitempty"`    // |Tf| when Ticks is empty
	Ticks     []int64 `json:"ticks,omitempty"`     // explicit Tf (overrides Future)
}

// SelectResponse is the body of POST /v1/select. It carries no timing or
// cache-state fields on purpose: the same request must produce the same
// bytes whether it was computed or replayed from the warm registry (warm
// hit rates are visible on /metrics instead).
type SelectResponse struct {
	Algorithm   string   `json:"algorithm"`
	Set         []int    `json:"set"`
	Names       []string `json:"names"`
	Divisors    []int    `json:"divisors"`
	Profit      float64  `json:"profit"`
	Gain        float64  `json:"gain"`
	AvgCoverage float64  `json:"avg_coverage"`
	AvgAccuracy float64  `json:"avg_accuracy"`
	OracleCalls int      `json:"oracle_calls"`
	Ticks       []int64  `json:"ticks"`
}

// QualityRequest is the body of POST /v1/quality: evaluate an explicit
// candidate set at future ticks.
type QualityRequest struct {
	Set      []int   `json:"set"`
	Divisors []int   `json:"divisors,omitempty"`
	Future   int     `json:"future,omitempty"`
	Ticks    []int64 `json:"ticks,omitempty"`
}

// QualityPoint is the estimated integration quality at one future tick.
type QualityPoint struct {
	Tick            int64   `json:"tick"`
	Coverage        float64 `json:"coverage"`
	LocalFreshness  float64 `json:"local_freshness"`
	GlobalFreshness float64 `json:"global_freshness"`
	Accuracy        float64 `json:"accuracy"`
	ExpectedOmega   float64 `json:"expected_omega"`
	ExpectedSize    float64 `json:"expected_size"`
}

// QualityResponse is the body of POST /v1/quality.
type QualityResponse struct {
	Set         []int          `json:"set"`
	Ticks       []int64        `json:"ticks"`
	Points      []QualityPoint `json:"points"`
	AvgCoverage float64        `json:"avg_coverage"`
	AvgAccuracy float64        `json:"avg_accuracy"`
}

// SourceInfo describes one source of the loaded snapshot.
type SourceInfo struct {
	Index    int    `json:"index"`
	Name     string `json:"name"`
	SizeAtT0 int    `json:"size_at_t0"`
}

// SourcesResponse is the body of GET /v1/sources.
type SourcesResponse struct {
	Dataset     string       `json:"dataset"`
	T0          int64        `json:"t0"`
	Horizon     int64        `json:"horizon"`
	NumEntities int          `json:"num_entities"`
	Sources     []SourceInfo `json:"sources"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failed"}`, http.StatusInternalServerError)
		return
	}
	writeBody(w, code, append(body, '\n'))
}

func writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes a JSON request body (unknown fields are a 400:
// a misspelled option silently falling back to a default would be worse).
// The body is capped at cfg.MaxBodyBytes: a public daemon must not let one
// oversized POST allocate unboundedly, so past the cap the connection is
// cut off and the client gets 413.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			obs.Counter("serve.body_too_large").Inc()
			writeErr(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// withDefaults normalizes a select request: every defaulted field is made
// explicit and Future is resolved into Ticks, so the normalized form is the
// canonical cache identity of the request.
func (req SelectRequest) withDefaults(defaultFuture int) SelectRequest {
	if req.Algorithm == "" {
		req.Algorithm = string(core.MaxSub)
	}
	if req.Gain == "" {
		req.Gain = "linear"
	}
	if req.Metric == "" {
		req.Metric = "coverage"
	}
	if req.Kappa <= 0 {
		req.Kappa = 5
	}
	if req.Rounds <= 0 {
		req.Rounds = 20
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if len(req.Ticks) == 0 && req.Future <= 0 {
		req.Future = defaultFuture
	}
	return req
}

// resolveTicks turns a request's explicit Tf or future count into validated
// ticks inside the evaluation window (T0, Horizon) of the generation's
// snapshot.
func (s *Server) resolveTicks(d *dataset.Dataset, explicit []int64, future int) ([]timeline.Tick, error) {
	if len(explicit) > 0 {
		out := make([]timeline.Tick, len(explicit))
		for i, t := range explicit {
			tk := timeline.Tick(t)
			if tk <= d.T0 || tk >= d.Horizon() {
				return nil, fmt.Errorf("tick %d outside the evaluation window (%d, %d]",
					t, d.T0, d.Horizon()-1)
			}
			out[i] = tk
		}
		return out, nil
	}
	if future <= 0 {
		future = s.cfg.DefaultFuture
	}
	return SpreadTicks(d.T0, d.Horizon(), future), nil
}

func validDivisors(divs []int) error {
	for _, m := range divs {
		if m < 1 {
			return fmt.Errorf("divisor %d must be ≥ 1", m)
		}
	}
	return nil
}

// canceled reports whether err is a timeout/cancellation outcome that maps
// to 504 (the request's deadline fired and the solve was abandoned).
func canceled(err error) bool {
	return errors.Is(err, core.ErrCanceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SelectRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	req = req.withDefaults(s.cfg.DefaultFuture)

	// One consistent generation per request: a concurrent hot reload must
	// not change the snapshot or registry under our feet mid-handler.
	gen := s.current()

	switch core.Algorithm(req.Algorithm) {
	case core.Greedy, core.MaxSub, core.GRASP, core.LazyGreedy, core.Budgeted:
	default:
		writeErr(w, http.StatusBadRequest, "unknown algorithm %q", req.Algorithm)
		return
	}
	if _, err := MakeGain(req.Gain, req.Metric, gen.d.World.NumEntities()); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validDivisors(req.Divisors); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Budget < 0 || req.Budget > 1 {
		writeErr(w, http.StatusBadRequest, "budget %g outside [0, 1]", req.Budget)
		return
	}
	ticks, err := s.resolveTicks(gen.d, req.Ticks, req.Future)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.Ticks = make([]int64, len(ticks))
	for i, t := range ticks {
		req.Ticks[i] = int64(t)
	}
	req.Future = 0 // folded into Ticks; keep the cache identity canonical

	key, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if body, ok := gen.reg.CachedResult(string(key)); ok {
		writeBody(w, http.StatusOK, body)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	prob, err := gen.reg.Problem(ctx, req.Divisors, req.Gain, req.Metric, req.Budget, ticks)
	if err != nil {
		s.solveError(w, err)
		return
	}
	sel, err := prob.SolveContext(ctx, core.Algorithm(req.Algorithm), core.SolveOptions{
		Kappa: req.Kappa, Rounds: req.Rounds, Seed: req.Seed,
		Workers: req.Workers, Cache: req.Cache, Lazy: req.Lazy,
	})
	if err != nil {
		s.solveError(w, err)
		return
	}

	resp := SelectResponse{
		Algorithm:   string(sel.Algorithm),
		Set:         emptyNotNil(sel.Set),
		Names:       emptyNotNil(sel.Names),
		Divisors:    emptyNotNil(sel.Divisors),
		Profit:      sel.Profit,
		Gain:        sel.Gain,
		AvgCoverage: sel.AvgCoverage,
		AvgAccuracy: sel.AvgAccuracy,
		OracleCalls: sel.OracleCalls,
		Ticks:       req.Ticks,
	}
	body, err := json.Marshal(resp)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body = append(body, '\n')
	gen.reg.PutResult(string(key), body)
	writeBody(w, http.StatusOK, body)
}

func (s *Server) solveError(w http.ResponseWriter, err error) {
	if canceled(err) {
		obs.Counter("serve.timeouts").Inc()
		writeErr(w, http.StatusGatewayTimeout, "request deadline exceeded; run canceled: %v", err)
		return
	}
	writeErr(w, http.StatusInternalServerError, "%v", err)
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QualityRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	gen := s.current()
	if err := validDivisors(req.Divisors); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ticks, err := s.resolveTicks(gen.d, req.Ticks, req.Future)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	tr, err := gen.reg.Trained(ctx, req.Divisors)
	if err != nil {
		s.solveError(w, err)
		return
	}
	for _, i := range req.Set {
		if i < 0 || i >= tr.NumCandidates() {
			writeErr(w, http.StatusBadRequest, "candidate %d outside [0, %d)", i, tr.NumCandidates())
			return
		}
	}
	st, tr, err := gen.reg.State(ctx, req.Divisors, req.Set)
	if err != nil {
		s.solveError(w, err)
		return
	}
	qs := tr.Est.QualityMultiState(st, ticks)

	resp := QualityResponse{
		Set:    emptyNotNil(req.Set),
		Ticks:  make([]int64, len(ticks)),
		Points: make([]QualityPoint, len(qs)),
	}
	for k, q := range qs {
		resp.Ticks[k] = int64(ticks[k])
		resp.Points[k] = QualityPoint{
			Tick:            int64(ticks[k]),
			Coverage:        q.Coverage,
			LocalFreshness:  q.LocalFreshness,
			GlobalFreshness: q.GlobalFreshness,
			Accuracy:        q.Accuracy,
			ExpectedOmega:   q.ExpectedOmega,
			ExpectedSize:    q.ExpectedSize,
		}
		resp.AvgCoverage += q.Coverage
		resp.AvgAccuracy += q.Accuracy
	}
	if len(qs) > 0 {
		resp.AvgCoverage /= float64(len(qs))
		resp.AvgAccuracy /= float64(len(qs))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	d := s.current().d
	resp := SourcesResponse{
		Dataset:     d.Name,
		T0:          int64(d.T0),
		Horizon:     int64(d.Horizon()),
		NumEntities: d.World.NumEntities(),
		Sources:     make([]SourceInfo, len(d.Sources)),
	}
	sizes := d.SizeAt(d.T0)
	for i, src := range d.Sources {
		resp.Sources[i] = SourceInfo{Index: i, Name: src.Name(), SizeAtT0: sizes[i]}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness plus the build identity and the serving
// generation: its id (bumped by every successful reload swap) and snapshot
// digest, so an operator can tell from the outside which build is serving
// and whether a rolled snapshot actually took effect.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	gen := s.current()
	resp := map[string]any{
		"status":         "ok",
		"dataset":        gen.d.Name,
		"generation":     gen.id,
		"digest":         hex.EncodeToString(gen.digest[:]),
		"version":        version.Version,
		"commit":         version.Commit,
		"go":             runtime.Version(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	}
	if s.ing != nil {
		ing := map[string]any{
			"epoch":     s.ing.Seq(),
			"watermark": int64(s.ing.Watermark()),
			"pending":   s.ing.Pending(),
		}
		// A durable epoch the ingester could not fold (both the incremental
		// fold and the rebuild failed) degrades the whole health report:
		// serving continues on last-good, but the refit state lags the
		// durable log until a later commit recovers.
		if err := s.ing.Err(); err != nil {
			ing["error"] = err.Error()
			resp["status"] = "degraded"
		}
		resp["ingest"] = ing
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics exposes the obs registry. The default is the Prometheus
// text exposition format (what a scraper expects on /metrics); the full
// structured snapshot — including raw histogram bucket layouts — remains
// available as JSON under ?format=json for the bench harness and humans.
// Runtime gauges (heap, goroutines, mallocs) are captured per scrape, so
// both views always carry current process stats.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := obs.Active()
	obs.CaptureRuntime(reg)
	snap := reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	snap.WritePrometheus(w)
}

// emptyNotNil pins empty slices to `[]` (not `null`) in responses, keeping
// the encoding of an empty selection deterministic and type-stable.
func emptyNotNil[T any](xs []T) []T {
	if xs == nil {
		return []T{}
	}
	return xs
}
