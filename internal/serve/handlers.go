package serve

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/obs"
	"freshsource/internal/timeline"
	"freshsource/internal/version"
)

// SelectRequest is the body of POST /v1/select. Zero values take the
// freshselect defaults, so `{}` is a valid request (maxsub over the linear
// coverage gain, unconstrained, ten spread future ticks).
type SelectRequest struct {
	Algorithm string  `json:"algorithm,omitempty"` // greedy|maxsub|grasp|lazygreedy|budgeted
	Gain      string  `json:"gain,omitempty"`      // linear|quad|step|data
	Metric    string  `json:"metric,omitempty"`    // coverage|local-freshness|global-freshness|accuracy
	Divisors  []int   `json:"divisors,omitempty"`  // frequency divisors (Definition 4)
	Budget    float64 `json:"budget,omitempty"`    // βc on rescaled cost in (0,1]; 0 = unconstrained
	Kappa     int     `json:"kappa,omitempty"`     // GRASP κ
	Rounds    int     `json:"rounds,omitempty"`    // GRASP r
	Seed      int64   `json:"seed,omitempty"`      // GRASP seed
	Workers   int     `json:"workers,omitempty"`   // sweep workers; 0 sequential, -1 all cores
	Cache     bool    `json:"cache,omitempty"`     // memoize oracle evaluations
	Lazy      bool    `json:"lazy,omitempty"`      // CELF path for greedy
	Future    int     `json:"future,omitempty"`    // |Tf| when Ticks is empty
	Ticks     []int64 `json:"ticks,omitempty"`     // explicit Tf (overrides Future)
}

// SelectResponse is the body of POST /v1/select. It carries no timing or
// cache-state fields on purpose: the same request must produce the same
// bytes whether it was computed, replayed from the warm registry, or
// answered from a coalesced flight (warm hit rates are visible on /metrics
// instead).
type SelectResponse struct {
	Algorithm   string   `json:"algorithm"`
	Set         []int    `json:"set"`
	Names       []string `json:"names"`
	Divisors    []int    `json:"divisors"`
	Profit      float64  `json:"profit"`
	Gain        float64  `json:"gain"`
	AvgCoverage float64  `json:"avg_coverage"`
	AvgAccuracy float64  `json:"avg_accuracy"`
	OracleCalls int      `json:"oracle_calls"`
	Ticks       []int64  `json:"ticks"`
}

// QualityRequest is the body of POST /v1/quality: evaluate an explicit
// candidate set at future ticks.
type QualityRequest struct {
	Set      []int   `json:"set"`
	Divisors []int   `json:"divisors,omitempty"`
	Future   int     `json:"future,omitempty"`
	Ticks    []int64 `json:"ticks,omitempty"`
}

// QualityPoint is the estimated integration quality at one future tick.
type QualityPoint struct {
	Tick            int64   `json:"tick"`
	Coverage        float64 `json:"coverage"`
	LocalFreshness  float64 `json:"local_freshness"`
	GlobalFreshness float64 `json:"global_freshness"`
	Accuracy        float64 `json:"accuracy"`
	ExpectedOmega   float64 `json:"expected_omega"`
	ExpectedSize    float64 `json:"expected_size"`
}

// QualityResponse is the body of POST /v1/quality.
type QualityResponse struct {
	Set         []int          `json:"set"`
	Ticks       []int64        `json:"ticks"`
	Points      []QualityPoint `json:"points"`
	AvgCoverage float64        `json:"avg_coverage"`
	AvgAccuracy float64        `json:"avg_accuracy"`
}

// SourceInfo describes one source of the loaded snapshot.
type SourceInfo struct {
	Index    int    `json:"index"`
	Name     string `json:"name"`
	SizeAtT0 int    `json:"size_at_t0"`
}

// SourcesResponse is the body of GET /v1/sources.
type SourcesResponse struct {
	Dataset     string       `json:"dataset"`
	Tenant      string       `json:"tenant"`
	T0          int64        `json:"t0"`
	Horizon     int64        `json:"horizon"`
	NumEntities int          `json:"num_entities"`
	Sources     []SourceInfo `json:"sources"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failed"}`, http.StatusInternalServerError)
		return
	}
	writeBody(w, code, append(body, '\n'))
}

func writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

// errorBody marshals the error envelope writeErr writes, as (code, bytes),
// for paths that publish through a coalesced flight instead of writing
// directly.
func errorBody(code int, format string, args ...any) (int, []byte) {
	body, err := json.Marshal(errorResponse{Error: fmt.Sprintf(format, args...)})
	if err != nil {
		return http.StatusInternalServerError, []byte(`{"error":"encoding failed"}` + "\n")
	}
	return code, append(body, '\n')
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	code, body := errorBody(code, format, args...)
	writeBody(w, code, body)
}

// decodeBody strictly decodes a JSON request body (unknown fields are a 400:
// a misspelled option silently falling back to a default would be worse).
// The body is capped at cfg.MaxBodyBytes: a public daemon must not let one
// oversized POST allocate unboundedly, so past the cap the connection is
// cut off and the client gets 413.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			obs.Counter("serve.body_too_large").Inc()
			writeErr(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// withDefaults normalizes a select request: every defaulted field is made
// explicit and Future is resolved into Ticks, so the normalized form is the
// canonical cache identity of the request.
func (req SelectRequest) withDefaults(defaultFuture int) SelectRequest {
	if req.Algorithm == "" {
		req.Algorithm = string(core.MaxSub)
	}
	if req.Gain == "" {
		req.Gain = "linear"
	}
	if req.Metric == "" {
		req.Metric = "coverage"
	}
	if req.Kappa <= 0 {
		req.Kappa = 5
	}
	if req.Rounds <= 0 {
		req.Rounds = 20
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if len(req.Ticks) == 0 && req.Future <= 0 {
		req.Future = defaultFuture
	}
	return req
}

// resolveTicks turns a request's explicit Tf or future count into validated
// ticks inside the evaluation window (T0, Horizon) of the generation's
// snapshot.
func (s *Server) resolveTicks(d *dataset.Dataset, explicit []int64, future int) ([]timeline.Tick, error) {
	if len(explicit) > 0 {
		out := make([]timeline.Tick, len(explicit))
		for i, t := range explicit {
			tk := timeline.Tick(t)
			if tk <= d.T0 || tk >= d.Horizon() {
				return nil, fmt.Errorf("tick %d outside the evaluation window (%d, %d]",
					t, d.T0, d.Horizon()-1)
			}
			out[i] = tk
		}
		return out, nil
	}
	if future <= 0 {
		future = s.cfg.DefaultFuture
	}
	return SpreadTicks(d.T0, d.Horizon(), future), nil
}

func validDivisors(divs []int) error {
	for _, m := range divs {
		if m < 1 {
			return fmt.Errorf("divisor %d must be ≥ 1", m)
		}
	}
	return nil
}

// canceled reports whether err is a timeout/cancellation outcome that maps
// to 504 (the request's deadline fired and the solve was abandoned).
func canceled(err error) bool {
	return errors.Is(err, core.ErrCanceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// flightKey scopes a canonical request key to a serving generation, so a
// coalesced flight can never hand out bytes computed over a snapshot the
// follower did not resolve: a reload or epoch publish changes the id, and
// requests on either side of the swap coalesce separately.
func flightKey(gen *generation, key string) string {
	return fmt.Sprintf("%d|%s", gen.id, key)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SelectRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	req = req.withDefaults(s.cfg.DefaultFuture)

	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	// One consistent generation per request: a concurrent hot reload must
	// not change the snapshot or registry under our feet mid-handler.
	gen := t.current()

	switch core.Algorithm(req.Algorithm) {
	case core.Greedy, core.MaxSub, core.GRASP, core.LazyGreedy, core.Budgeted:
	default:
		writeErr(w, http.StatusBadRequest, "unknown algorithm %q", req.Algorithm)
		return
	}
	if _, err := MakeGain(req.Gain, req.Metric, gen.d.World.NumEntities()); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := validDivisors(req.Divisors); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Budget < 0 || req.Budget > 1 {
		writeErr(w, http.StatusBadRequest, "budget %g outside [0, 1]", req.Budget)
		return
	}
	ticks, err := s.resolveTicks(gen.d, req.Ticks, req.Future)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.Ticks = make([]int64, len(ticks))
	for i, tk := range ticks {
		req.Ticks[i] = int64(tk)
	}
	req.Future = 0 // folded into Ticks; keep the cache identity canonical

	rawKey, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	key := "s|" + string(rawKey)
	if body, ok := gen.reg.CachedResult(key); ok {
		writeBody(w, http.StatusOK, body)
		return
	}

	code, body, err := t.coSelect.Do(r.Context(), flightKey(gen, key), func() (int, []byte) {
		return s.computeSelect(gen, req, ticks, key)
	})
	if err != nil {
		obs.Counter("serve.timeouts").Inc()
		writeErr(w, http.StatusGatewayTimeout, "request deadline exceeded while coalesced: %v", err)
		return
	}
	writeBody(w, code, body)
}

// computeSelect runs one solver pass and caches the marshaled response. It
// runs under a detached context (the server's lifetime bounded by the
// request timeout) rather than the leader's request context: a coalesced
// flight answers every follower, so one client's disconnect must not poison
// the shared pass — the same rule as the registry's detached fits.
func (s *Server) computeSelect(gen *generation, req SelectRequest, ticks []timeline.Tick, key string) (int, []byte) {
	ctx, cancel := context.WithTimeout(s.life, s.cfg.RequestTimeout)
	defer cancel()

	prob, err := gen.reg.Problem(ctx, req.Divisors, req.Gain, req.Metric, req.Budget, ticks)
	if err != nil {
		return solveErrorBody(err)
	}
	sel, err := prob.SolveContext(ctx, core.Algorithm(req.Algorithm), core.SolveOptions{
		Kappa: req.Kappa, Rounds: req.Rounds, Seed: req.Seed,
		Workers: req.Workers, Cache: req.Cache, Lazy: req.Lazy,
	})
	if err != nil {
		return solveErrorBody(err)
	}

	resp := SelectResponse{
		Algorithm:   string(sel.Algorithm),
		Set:         emptyNotNil(sel.Set),
		Names:       emptyNotNil(sel.Names),
		Divisors:    emptyNotNil(sel.Divisors),
		Profit:      sel.Profit,
		Gain:        sel.Gain,
		AvgCoverage: sel.AvgCoverage,
		AvgAccuracy: sel.AvgAccuracy,
		OracleCalls: sel.OracleCalls,
		Ticks:       req.Ticks,
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return errorBody(http.StatusInternalServerError, "%v", err)
	}
	body = append(body, '\n')
	gen.reg.PutResult(key, body)
	return http.StatusOK, body
}

// solveErrorBody maps a solver/fit error onto its response bytes.
func solveErrorBody(err error) (int, []byte) {
	if canceled(err) {
		obs.Counter("serve.timeouts").Inc()
		return errorBody(http.StatusGatewayTimeout, "request deadline exceeded; run canceled: %v", err)
	}
	return errorBody(http.StatusInternalServerError, "%v", err)
}

func (s *Server) solveError(w http.ResponseWriter, err error) {
	code, body := solveErrorBody(err)
	writeBody(w, code, body)
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QualityRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	gen := t.current()
	if err := validDivisors(req.Divisors); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ticks, err := s.resolveTicks(gen.d, req.Ticks, req.Future)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.Ticks = make([]int64, len(ticks))
	for i, tk := range ticks {
		req.Ticks[i] = int64(tk)
	}
	req.Future = 0 // canonical identity, like select

	rawKey, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	key := "q|" + string(rawKey)
	if body, ok := gen.reg.CachedResult(key); ok {
		writeBody(w, http.StatusOK, body)
		return
	}

	code, body, err := t.coQuality.Do(r.Context(), flightKey(gen, key), func() (int, []byte) {
		return s.computeQuality(gen, req, ticks, key)
	})
	if err != nil {
		obs.Counter("serve.timeouts").Inc()
		writeErr(w, http.StatusGatewayTimeout, "request deadline exceeded while coalesced: %v", err)
		return
	}
	writeBody(w, code, body)
}

// computeQuality evaluates one explicit candidate set and caches the
// marshaled response; detached-context rules as computeSelect.
func (s *Server) computeQuality(gen *generation, req QualityRequest, ticks []timeline.Tick, key string) (int, []byte) {
	ctx, cancel := context.WithTimeout(s.life, s.cfg.RequestTimeout)
	defer cancel()

	tr, err := gen.reg.Trained(ctx, req.Divisors)
	if err != nil {
		return solveErrorBody(err)
	}
	for _, i := range req.Set {
		if i < 0 || i >= tr.NumCandidates() {
			return errorBody(http.StatusBadRequest, "candidate %d outside [0, %d)", i, tr.NumCandidates())
		}
	}
	st, tr, err := gen.reg.State(ctx, req.Divisors, req.Set)
	if err != nil {
		return solveErrorBody(err)
	}
	qs := tr.Est.QualityMultiState(st, ticks)

	resp := QualityResponse{
		Set:    emptyNotNil(req.Set),
		Ticks:  make([]int64, len(ticks)),
		Points: make([]QualityPoint, len(qs)),
	}
	for k, q := range qs {
		resp.Ticks[k] = int64(ticks[k])
		resp.Points[k] = QualityPoint{
			Tick:            int64(ticks[k]),
			Coverage:        q.Coverage,
			LocalFreshness:  q.LocalFreshness,
			GlobalFreshness: q.GlobalFreshness,
			Accuracy:        q.Accuracy,
			ExpectedOmega:   q.ExpectedOmega,
			ExpectedSize:    q.ExpectedSize,
		}
		resp.AvgCoverage += q.Coverage
		resp.AvgAccuracy += q.Accuracy
	}
	if len(qs) > 0 {
		resp.AvgCoverage /= float64(len(qs))
		resp.AvgAccuracy /= float64(len(qs))
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return errorBody(http.StatusInternalServerError, "%v", err)
	}
	body = append(body, '\n')
	gen.reg.PutResult(key, body)
	return http.StatusOK, body
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	d := t.current().d
	resp := SourcesResponse{
		Dataset:     d.Name,
		Tenant:      t.name,
		T0:          int64(d.T0),
		Horizon:     int64(d.Horizon()),
		NumEntities: d.World.NumEntities(),
		Sources:     make([]SourceInfo, len(d.Sources)),
	}
	sizes := d.SizeAt(d.T0)
	for i, src := range d.Sources {
		resp.Sources[i] = SourceInfo{Index: i, Name: src.Name(), SizeAtT0: sizes[i]}
	}
	writeJSON(w, http.StatusOK, resp)
}

// tenantHealth is one tenant's block in the /healthz report.
func tenantHealth(t *Tenant) (map[string]any, bool) {
	gen := t.current()
	block := map[string]any{
		"dataset":    gen.d.Name,
		"generation": gen.id,
		"digest":     hex.EncodeToString(gen.digest[:]),
	}
	degraded := false
	if t.ing != nil {
		ing := map[string]any{
			"epoch":     t.ing.Seq(),
			"watermark": int64(t.ing.Watermark()),
			"pending":   t.ing.Pending(),
		}
		// A durable epoch the ingester could not fold (both the incremental
		// fold and the rebuild failed) degrades the whole health report:
		// serving continues on last-good, but the refit state lags the
		// durable log until a later commit recovers.
		if err := t.ing.Err(); err != nil {
			ing["error"] = err.Error()
			degraded = true
		}
		block["ingest"] = ing
	}
	return block, degraded
}

// handleHealthz reports liveness plus the build identity and every
// tenant's serving generation: its id (bumped by every successful reload
// swap or epoch publish) and snapshot digest, so an operator can tell from
// the outside which build is serving and whether a rolled snapshot
// actually took effect — per tenant. The top-level dataset/generation/
// digest/ingest fields mirror the default tenant for single-tenant
// dashboards and the freshgate health probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	defBlock, degraded := tenantHealth(s.def)
	resp := map[string]any{
		"status":         "ok",
		"dataset":        defBlock["dataset"],
		"generation":     defBlock["generation"],
		"digest":         defBlock["digest"],
		"default_tenant": s.def.name,
		"version":        version.Version,
		"commit":         version.Commit,
		"go":             runtime.Version(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	}
	if ing, ok := defBlock["ingest"]; ok {
		resp["ingest"] = ing
	}
	tenants := make(map[string]any, len(s.names))
	for _, name := range s.names {
		block, deg := tenantHealth(s.tenants[name])
		degraded = degraded || deg
		tenants[name] = block
	}
	resp["tenants"] = tenants
	if degraded {
		resp["status"] = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics exposes the obs registry. The default is the Prometheus
// text exposition format (what a scraper expects on /metrics); the full
// structured snapshot — including raw histogram bucket layouts — remains
// available as JSON under ?format=json for the bench harness and humans.
// Runtime gauges (heap, goroutines, mallocs) are captured per scrape, so
// both views always carry current process stats.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := obs.Active()
	obs.CaptureRuntime(reg)
	snap := reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	snap.WritePrometheus(w)
}

// emptyNotNil pins empty slices to `[]` (not `null`) in responses, keeping
// the encoding of an empty selection deterministic and type-stable.
func emptyNotNil[T any](xs []T) []T {
	if xs == nil {
		return []T{}
	}
	return xs
}
