package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"

	"freshsource/internal/dataset"
	"freshsource/internal/ingest"
	"freshsource/internal/modelcache"
	"freshsource/internal/obs"
	"freshsource/internal/snapio"
)

// TenantSpec declares one named world the server hosts. Exactly one of
// Dataset (an in-process corpus) or SnapshotDir (a snapio directory, which
// also makes the tenant hot-reloadable) must identify the data; when both
// are set, Dataset is served and SnapshotDir is the reload source —
// exactly the single-tenant freshd -load behavior.
type TenantSpec struct {
	// Name addresses the tenant on every endpoint (?tenant=name). Names
	// must match [A-Za-z0-9][A-Za-z0-9_.-]* and be unique per server.
	Name string `json:"name"`
	// Dataset is a pre-loaded corpus (programmatic construction and the
	// default tenant); nil means load from SnapshotDir.
	Dataset *dataset.Dataset `json:"-"`
	// SnapshotDir is the snapio directory backing the tenant: loaded at
	// startup when Dataset is nil, and the source of hot reloads either
	// way. Empty disables reload for this tenant.
	SnapshotDir string `json:"snapshot,omitempty"`
	// IngestDir is the tenant's durable epoch-log directory, used when the
	// server runs with streaming ingestion (Config.IngestEpoch > 0). Empty
	// keeps this tenant's epochs in memory only. Ingestion and SnapshotDir
	// are mutually exclusive per tenant.
	IngestDir string `json:"ingest_dir,omitempty"`
}

// tenantManifest is the on-disk tenants file: a JSON document listing
// every hosted world. See LoadTenantManifest for the format.
type tenantManifest struct {
	Tenants []TenantSpec `json:"tenants"`
}

// LoadTenantManifest reads a tenants manifest file:
//
//	{
//	  "tenants": [
//	    {"name": "eu", "snapshot": "snapshots/eu"},
//	    {"name": "us", "snapshot": "snapshots/us", "ingest_dir": "logs/us"}
//	  ]
//	}
//
// Each entry becomes a TenantSpec loaded from its snapshot directory.
// Unknown fields are an error (a misspelled key silently dropping a tenant
// would be worse), as are entries without a name or snapshot. Relative
// snapshot paths are resolved against the manifest's own directory, so a
// manifest can travel with its snapshots.
func LoadTenantManifest(path string) ([]TenantSpec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: tenant manifest: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var m tenantManifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("serve: tenant manifest %s: %w", path, err)
	}
	base := filepath.Dir(path)
	for i := range m.Tenants {
		sp := &m.Tenants[i]
		if sp.Name == "" {
			return nil, fmt.Errorf("serve: tenant manifest %s: entry %d has no name", path, i)
		}
		if sp.SnapshotDir == "" {
			return nil, fmt.Errorf("serve: tenant manifest %s: tenant %q has no snapshot", path, sp.Name)
		}
		if !filepath.IsAbs(sp.SnapshotDir) {
			sp.SnapshotDir = filepath.Join(base, sp.SnapshotDir)
		}
		if sp.IngestDir != "" && !filepath.IsAbs(sp.IngestDir) {
			sp.IngestDir = filepath.Join(base, sp.IngestDir)
		}
	}
	return m.Tenants, nil
}

var tenantNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]*$`)

// Tenant is one named world behind the daemon: its own (dataset, registry,
// digest) generation triple behind an atomic pointer, its own ingestion
// pipeline and reload lock, its own model-cache scope and its own
// coalescers. Everything a request touches after tenant resolution hangs
// off this struct, so tenants are fully isolated: a reload or epoch commit
// on one never perturbs another, and per-tenant responses are
// byte-identical to a dedicated single-tenant daemon over the same data.
type Tenant struct {
	name        string
	def         bool   // the default tenant (addressed when ?tenant= is absent)
	scope       string // metric prefix: serve.tenant.<sanitized-name>
	srv         *Server
	mc          *modelcache.Cache
	snapshotDir string

	gen atomic.Pointer[generation]
	ing *ingest.Ingester

	// reloadMu serializes this tenant's generation handoffs (hot reloads
	// and epoch commits); other tenants' handoffs proceed concurrently.
	reloadMu sync.Mutex

	coSelect  *coalescer
	coQuality *coalescer
}

// Name returns the tenant's addressable name.
func (t *Tenant) Name() string { return t.name }

// current returns the tenant's serving generation.
func (t *Tenant) current() *generation { return t.gen.Load() }

// Generation returns the tenant's serving generation id.
func (t *Tenant) Generation() uint64 { return t.current().id }

// Registry exposes the tenant's current warm registry.
func (t *Tenant) Registry() *Registry { return t.current().reg }

// metric returns the tenant-scoped obs name for suffix.
func (t *Tenant) metric(suffix string) string { return t.scope + "." + suffix }

// install publishes a generation as the tenant's current one. The legacy
// serve.reload.generation gauge tracks the default tenant, so single-tenant
// dashboards keep working unchanged.
func (t *Tenant) install(g *generation) {
	t.gen.Store(g)
	obs.Gauge(t.metric("generation")).Set(float64(g.id))
	if t.def {
		obs.Gauge("serve.reload.generation").Set(float64(g.id))
	}
}

// sanitizeScope maps a tenant name onto the obs metric charset (the
// Prometheus exposition re-sanitizes dots into underscores; doing it here
// keeps the JSON snapshot and the exposition consistent).
func sanitizeScope(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// newTenant stages one tenant: resolve its dataset, scope its model cache,
// build and pre-fit generation 1, and (when the server runs ingestion)
// attach its epoch pipeline, including durable-log recovery. On any error
// nothing is published and whatever was opened is closed.
func (s *Server) newTenant(spec TenantSpec, def bool) (*Tenant, error) {
	if !tenantNameRe.MatchString(spec.Name) {
		return nil, fmt.Errorf("serve: invalid tenant name %q", spec.Name)
	}
	d := spec.Dataset
	if d == nil {
		if spec.SnapshotDir == "" {
			return nil, fmt.Errorf("serve: tenant %q has neither a dataset nor a snapshot directory", spec.Name)
		}
		var err error
		if d, err = snapio.Read(spec.SnapshotDir); err != nil {
			return nil, fmt.Errorf("serve: tenant %q: %w", spec.Name, err)
		}
	}
	if err := validateDataset(d); err != nil {
		return nil, fmt.Errorf("serve: tenant %q: %w", spec.Name, err)
	}

	t := &Tenant{
		name:        spec.Name,
		def:         def,
		scope:       "serve.tenant." + sanitizeScope(spec.Name),
		srv:         s,
		snapshotDir: spec.SnapshotDir,
	}
	// Model-cache scoping: the default tenant keeps the configured root
	// directory (a single-tenant deployment's warm cache survives the
	// upgrade), named tenants get a subdirectory each. Entries are
	// digest-keyed either way — the per-tenant directory only partitions
	// eviction and disk accounting, never correctness.
	if s.cfg.ModelCacheDir != "" {
		dir := s.cfg.ModelCacheDir
		if !def {
			dir = filepath.Join(dir, "tenant-"+spec.Name)
		}
		var err error
		if t.mc, err = modelcache.New(dir); err != nil {
			return nil, fmt.Errorf("serve: tenant %q: model cache: %w", spec.Name, err)
		}
	}
	t.coSelect = newCoalescer(s.cfg.CoalesceWindow, t.metric("coalesce.select"))
	t.coQuality = newCoalescer(s.cfg.CoalesceWindow, t.metric("coalesce.quality"))

	gen, err := t.buildGeneration(context.Background(), 1, d)
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %q: startup fit: %w", spec.Name, err)
	}
	t.install(gen)

	if s.cfg.IngestEpoch > 0 {
		if t.snapshotDir != "" {
			gen.reg.Close()
			return nil, fmt.Errorf("serve: tenant %q: streaming ingestion and snapshot hot reload are mutually exclusive", spec.Name)
		}
		ing, err := ingest.New(context.Background(), d, ingest.Config{
			Dir: spec.IngestDir, MaxPending: s.cfg.IngestMaxLag, FitWorkers: s.cfg.FitWorkers,
		})
		if err != nil {
			gen.reg.Close()
			return nil, fmt.Errorf("serve: tenant %q: ingest: %w", spec.Name, err)
		}
		t.ing = ing
		// Recovery replayed durable epochs: republish them before taking
		// traffic, so the serving generation reflects every committed epoch.
		if ing.Dirty() {
			if _, err := s.commitTenantEpoch(context.Background(), t); err != nil {
				gen.reg.Close()
				ing.Close()
				return nil, fmt.Errorf("serve: tenant %q: ingest recovery: %w", spec.Name, err)
			}
		}
	}
	return t, nil
}

// buildGeneration stages a complete generation over d for this tenant:
// digest, registry, and the pre-fit of the base models under ctx. On
// failure the candidate registry is closed and nothing is published.
func (t *Tenant) buildGeneration(ctx context.Context, id uint64, d *dataset.Dataset) (*generation, error) {
	s := t.srv
	maxEntries := s.cfg.MaxCacheEntries
	if maxEntries <= 0 {
		maxEntries = defaultCacheEntries(len(d.Sources))
	}
	g := &generation{
		id:     id,
		d:      d,
		reg:    NewRegistry(s.life, d, maxEntries, s.cfg.FitWorkers, t.mc),
		digest: modelcache.Digest(d.World, d.Sources),
	}
	if _, err := g.reg.Trained(ctx, nil); err != nil {
		g.reg.Close()
		return nil, err
	}
	return g, nil
}

// Tenant returns the named tenant, or the default tenant for "".
func (s *Server) Tenant(name string) (*Tenant, error) {
	if name == "" {
		return s.def, nil
	}
	t, ok := s.tenants[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown tenant %q", name)
	}
	return t, nil
}

// TenantNames returns the hosted tenant names in sorted order.
func (s *Server) TenantNames() []string { return append([]string(nil), s.names...) }

// tenantFor resolves the request's tenant (?tenant=name, default tenant
// when absent) and answers unknown names with a 404 (nil return). Every
// resolved request increments the tenant's request counter.
func (s *Server) tenantFor(w http.ResponseWriter, r *http.Request) *Tenant {
	name := r.URL.Query().Get("tenant")
	if name == "" {
		obs.Counter(s.def.metric("requests")).Inc()
		return s.def
	}
	t, ok := s.tenants[name]
	if !ok {
		obs.Counter("serve.tenant.unknown").Inc()
		writeErr(w, http.StatusNotFound, "unknown tenant %q", name)
		return nil
	}
	obs.Counter(t.metric("requests")).Inc()
	return t
}

var errNoIngest = errors.New("serve: ingestion not enabled")
