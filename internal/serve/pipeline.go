// Package serve is the long-running face of the library: a zero-dependency
// net/http daemon that loads one world/source snapshot at startup, fits the
// Poisson/exponential world models and Kaplan–Meier effectiveness
// distributions once, and answers selection and quality queries over JSON,
// reusing the fitted models and cached evaluation state across requests
// (see Registry). cmd/freshd is the binary; cmd/freshselect shares this
// package's pipeline helpers so a served selection is byte-identical to a
// one-shot CLI run over the same snapshot and options.
package serve

import (
	"fmt"

	"freshsource/internal/dataset"
	"freshsource/internal/gain"
	"freshsource/internal/snapio"
	"freshsource/internal/timeline"
)

// LoadDataset resolves the snapshot a command serves or solves over: a
// persisted dataset directory when load is non-empty, else a generated
// corpus ("bl" or "gdelt") at the given scale and seed.
func LoadDataset(load, kind string, scale float64, seed int64) (*dataset.Dataset, error) {
	if load != "" {
		return snapio.Read(load)
	}
	switch kind {
	case "bl":
		cfg := dataset.DefaultBLConfig()
		cfg.Scale = scale
		cfg.Seed = seed
		return dataset.GenerateBL(cfg)
	case "gdelt":
		cfg := dataset.DefaultGDELTConfig()
		cfg.Scale = scale
		cfg.Seed = seed
		return dataset.GenerateGDELT(cfg)
	default:
		return nil, fmt.Errorf("unknown dataset kind %q", kind)
	}
}

// SpreadTicks returns n future time points of interest evenly spread over
// (t0, horizon−1], the Tf layout of freshselect and the paper's
// experiments.
func SpreadTicks(t0, horizon timeline.Tick, n int) []timeline.Tick {
	span := horizon - 1 - t0
	out := make([]timeline.Tick, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t0+span*timeline.Tick(i)/timeline.Tick(n))
	}
	return out
}

// ParseMetric resolves a metric name ("coverage", "local-freshness",
// "global-freshness", "accuracy").
func ParseMetric(name string) (gain.Metric, error) {
	switch name {
	case "coverage":
		return gain.Coverage, nil
	case "local-freshness":
		return gain.LocalFreshness, nil
	case "global-freshness":
		return gain.GlobalFreshness, nil
	case "accuracy":
		return gain.Accuracy, nil
	}
	return 0, fmt.Errorf("unknown metric %q", name)
}

// MakeGain builds the named gain function ("linear", "quad", "step",
// "data") over the named metric. numEntities sizes the data gain's Ω bound.
func MakeGain(name, metric string, numEntities int) (gain.Function, error) {
	m, err := ParseMetric(metric)
	if err != nil {
		return nil, err
	}
	switch name {
	case "linear":
		return gain.Linear{Metric: m}, nil
	case "quad":
		return gain.Quad{Metric: m}, nil
	case "step":
		return gain.Step{Metric: m}, nil
	case "data":
		return gain.Data{PerItem: 10, OmegaMax: float64(numEntities)}, nil
	}
	return nil, fmt.Errorf("unknown gain %q", name)
}
