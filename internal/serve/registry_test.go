package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"freshsource/internal/faults"
	"freshsource/internal/obs"
)

func waitForTrainedEntry(t *testing.T, r *Registry, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		_, ok := r.trained[key]
		r.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("trained entry %q never appeared", key)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTrainedDetachedFromRequestContext is the regression test for the fit
// poisoning bug: the coalesced fit used to run under the first requester's
// context, so a client arriving with an already-fired deadline aborted the
// shared fit and failed every waiter with that client's cancellation
// error. The fit must run detached: the doomed request gets only its own
// ctx.Err(), and the next request gets a fitted model.
func TestTrainedDetachedFromRequestContext(t *testing.T) {
	defer faults.Reset()
	reg := NewRegistry(context.Background(), testDataset(t), 4096, 0, nil)
	defer reg.Close()

	// Slow the fit slightly so the two requests genuinely overlap it.
	faults.Set("serve.fit", faults.Fault{Delay: 50 * time.Millisecond, Times: 1})

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := reg.Trained(expired, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired request: err = %v, want its own DeadlineExceeded", err)
	}

	// The second requester waits on the same in-flight fit; it must get a
	// model, not the first client's cancellation.
	tr, err := reg.Trained(context.Background(), nil)
	if err != nil {
		t.Fatalf("second request poisoned by the first client's deadline: %v", err)
	}
	if tr == nil || tr.NumCandidates() == 0 {
		t.Fatal("second request got no fitted model")
	}
}

// TestRegistryCloseCancelsFitInFlight: retiring a registry (shutdown, or a
// reload candidate being rolled back) must cancel its fit; waiters get the
// cancellation, and the failed entry is not cached.
func TestRegistryCloseCancelsFitInFlight(t *testing.T) {
	defer faults.Reset()
	reg := NewRegistry(context.Background(), testDataset(t), 4096, 0, nil)

	faults.Set("serve.fit", faults.Fault{Delay: 100 * time.Millisecond, Times: 1})
	done := make(chan error, 1)
	go func() {
		_, err := reg.Trained(context.Background(), nil)
		done <- err
	}()
	waitForTrainedEntry(t, reg, "")
	reg.Close()

	select {
	case err := <-done:
		if !canceled(err) {
			t.Fatalf("waiter on a closed registry: %v, want cancellation", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("waiter never returned after Close")
	}
	reg.mu.Lock()
	_, cached := reg.trained[""]
	reg.mu.Unlock()
	if cached {
		t.Error("canceled fit left a cached entry; the next request would be poisoned")
	}
}

// TestEpochFlushWhileFitInFlight covers the registry's wholesale eviction
// racing an in-flight fit: the dropped entry must still complete for the
// waiters already queued on it, and re-requesting the flushed key must
// refit cleanly — no deadlock, no double close.
func TestEpochFlushWhileFitInFlight(t *testing.T) {
	defer faults.Reset()
	obs.Enable()
	reg := NewRegistry(context.Background(), testDataset(t), 1, 0, nil)
	defer reg.Close()

	// Only the first fit (key "") is slowed, so it is still in flight
	// when the second key arrives and triggers the epoch flush.
	faults.Set("serve.fit", faults.Fault{Delay: 100 * time.Millisecond, Times: 1})

	evictions0 := counter("serve.registry.evictions")
	firstDone := make(chan error, 1)
	go func() {
		_, err := reg.Trained(context.Background(), nil)
		firstDone <- err
	}()
	waitForTrainedEntry(t, reg, "")

	// max=1, so this flushes the map while the "" fit is in flight.
	if _, err := reg.Trained(context.Background(), []int{2}); err != nil {
		t.Fatalf("flushing key: %v", err)
	}
	if got := counter("serve.registry.evictions") - evictions0; got != 1 {
		t.Fatalf("evictions delta = %d, want 1 (the epoch flush)", got)
	}

	select {
	case err := <-firstDone:
		if err != nil {
			t.Fatalf("waiter on the flushed in-flight entry: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("waiter on the flushed entry deadlocked")
	}

	// The flushed key refits from scratch (its entry is gone) and must
	// complete — this used to be the double-close / deadlock hazard.
	misses0 := counter("serve.registry.trained_misses")
	tr, err := reg.Trained(context.Background(), nil)
	if err != nil || tr == nil {
		t.Fatalf("re-request after flush: %v", err)
	}
	if got := counter("serve.registry.trained_misses") - misses0; got != 1 {
		t.Errorf("re-request was not a fresh fit (misses delta %d, want 1)", got)
	}
}
