package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/obs"
	"freshsource/internal/timeline"
	"freshsource/internal/version"
)

// fixture: one small BL-like dataset per test binary (same shape as the
// core package's fixture).
var fixtureDS *dataset.Dataset

func testDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	if fixtureDS != nil {
		return fixtureDS
	}
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 8
	cfg.Categories = 5
	cfg.NumSources = 10
	cfg.Horizon = 220
	cfg.T0 = 120
	cfg.Scale = 0.4
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fixtureDS = d
	return d
}

func newServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(testDataset(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t testing.TB, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func counter(name string) int64 { return obs.Active().Counter(name).Value() }

// TestSelectMatchesCLIPipeline pins the serving contract: /v1/select must
// be byte-identical to the freshselect pipeline over the same snapshot and
// options — same training window, same spread Tf, same algorithm defaults.
func TestSelectMatchesCLIPipeline(t *testing.T) {
	d := testDataset(t)
	srv := newServer(t, Config{})

	rec := postJSON(t, srv.Handler(), "/v1/select", `{}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("select: %d %s", rec.Code, rec.Body.String())
	}

	// Reference: the exact freshselect pipeline (including its explicit
	// MaxT = last spread tick, which must coincide with the registry's
	// default of horizon−1).
	ticks := SpreadTicks(d.T0, d.Horizon(), 10)
	tr, err := core.Train(d.World, d.Sources, d.T0, core.TrainOptions{MaxT: ticks[len(ticks)-1]})
	if err != nil {
		t.Fatal(err)
	}
	g, err := MakeGain("linear", "coverage", d.World.NumEntities())
	if err != nil {
		t.Fatal(err)
	}
	prob, err := core.NewProblem(tr, ticks, g, core.ProblemOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := prob.Solve(core.MaxSub, core.SolveOptions{Kappa: 5, Rounds: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := SelectResponse{
		Algorithm:   string(sel.Algorithm),
		Set:         emptyNotNil(sel.Set),
		Names:       emptyNotNil(sel.Names),
		Divisors:    emptyNotNil(sel.Divisors),
		Profit:      sel.Profit,
		Gain:        sel.Gain,
		AvgCoverage: sel.AvgCoverage,
		AvgAccuracy: sel.AvgAccuracy,
		OracleCalls: sel.OracleCalls,
		Ticks:       make([]int64, len(ticks)),
	}
	for i, tk := range ticks {
		want.Ticks[i] = int64(tk)
	}
	wantBody, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	wantBody = append(wantBody, '\n')
	if !bytes.Equal(rec.Body.Bytes(), wantBody) {
		t.Errorf("served selection differs from the CLI pipeline:\n got %s\nwant %s",
			rec.Body.String(), wantBody)
	}
	if len(sel.Set) == 0 {
		t.Error("fixture selection is empty; the byte-identity check is vacuous")
	}
}

// TestWarmRegistryByteIdentical: the same request twice must return the
// same bytes, with the second served from the warm result cache.
func TestWarmRegistryByteIdentical(t *testing.T) {
	srv := newServer(t, Config{})
	req := `{"algorithm":"greedy","gain":"step","metric":"accuracy","seed":3}`

	hits0 := counter("serve.registry.result_hits")
	first := postJSON(t, srv.Handler(), "/v1/select", req)
	if first.Code != http.StatusOK {
		t.Fatalf("first: %d %s", first.Code, first.Body.String())
	}
	second := postJSON(t, srv.Handler(), "/v1/select", req)
	if second.Code != http.StatusOK {
		t.Fatalf("second: %d %s", second.Code, second.Body.String())
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Errorf("warm replay differs:\n first %s\nsecond %s", first.Body.String(), second.Body.String())
	}
	if got := counter("serve.registry.result_hits") - hits0; got != 1 {
		t.Errorf("result_hits delta = %d, want 1", got)
	}

	// An equivalent request spelled through `future` instead of explicit
	// defaults must hit the same cache entry (normalization canonicalizes).
	third := postJSON(t, srv.Handler(), "/v1/select",
		`{"algorithm":"greedy","gain":"step","metric":"accuracy","seed":3,"future":10}`)
	if !bytes.Equal(first.Body.Bytes(), third.Body.Bytes()) {
		t.Error("normalized request missed the warm cache path")
	}
}

// TestQualityEndpoint checks /v1/quality against the estimator directly,
// that an identical repeat is answered byte-identically from the result
// cache, and that an equivalent request with a different tick spelling still
// reuses the cached set state.
func TestQualityEndpoint(t *testing.T) {
	d := testDataset(t)
	srv := newServer(t, Config{})

	body := `{"set":[0,2,5],"ticks":[150,200]}`
	rec := postJSON(t, srv.Handler(), "/v1/quality", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("quality: %d %s", rec.Code, rec.Body.String())
	}
	var got QualityResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}

	tr, err := srv.Registry().Trained(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := tr.Est.QualityMulti([]int{0, 2, 5}, []timeline.Tick{150, 200})
	for k, q := range ref {
		p := got.Points[k]
		if p.Coverage != q.Coverage || p.Accuracy != q.Accuracy ||
			p.LocalFreshness != q.LocalFreshness || p.GlobalFreshness != q.GlobalFreshness {
			t.Errorf("tick %d: served %+v != estimator %+v", p.Tick, p, q)
		}
	}
	if d.T0 >= 150 {
		t.Fatal("fixture T0 moved; ticks in this test are stale")
	}

	// An identical repeat short-circuits at the marshaled-result cache —
	// byte-identical, no estimator work at all.
	rhits0 := counter("serve.registry.result_hits")
	rec2 := postJSON(t, srv.Handler(), "/v1/quality", body)
	if got := counter("serve.registry.result_hits") - rhits0; got != 1 {
		t.Errorf("result_hits delta = %d, want 1", got)
	}
	if rec2.Body.String() != rec.Body.String() {
		t.Error("cached quality response is not byte-identical")
	}

	// A different tick set over the same candidate set misses the result
	// cache but reuses the memoized set state.
	hits0 := counter("serve.registry.state_hits")
	postJSON(t, srv.Handler(), "/v1/quality", `{"set":[0,2,5],"ticks":[160,210]}`)
	if got := counter("serve.registry.state_hits") - hits0; got != 1 {
		t.Errorf("state_hits delta = %d, want 1", got)
	}
}

// TestSaturation429: with the gate full, a heavy request is rejected
// immediately while /healthz stays live.
func TestSaturation429(t *testing.T) {
	srv := newServer(t, Config{MaxInflight: 2})
	for i := 0; i < srv.gate.Capacity(); i++ {
		if !srv.gate.TryAcquire() {
			t.Fatal("gate refused below capacity")
		}
	}
	defer func() {
		for i := 0; i < srv.gate.Capacity(); i++ {
			srv.gate.Release()
		}
	}()

	rec := postJSON(t, srv.Handler(), "/v1/select", `{}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("saturated select: %d, want 429", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "saturated") {
		t.Errorf("429 body: %s", rec.Body.String())
	}

	health := httptest.NewRecorder()
	srv.Handler().ServeHTTP(health, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if health.Code != http.StatusOK {
		t.Errorf("healthz under saturation: %d", health.Code)
	}
}

// TestRequestTimeout: an expired deadline cancels the solve and maps
// ErrCanceled to 504.
func TestRequestTimeout(t *testing.T) {
	srv := newServer(t, Config{RequestTimeout: time.Nanosecond})
	rec := postJSON(t, srv.Handler(), "/v1/select", `{"algorithm":"grasp","rounds":50}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out select: %d %s, want 504", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "canceled") {
		t.Errorf("504 body should name the cancellation: %s", rec.Body.String())
	}
}

// TestBadRequests pins the 4xx surface.
func TestBadRequests(t *testing.T) {
	srv := newServer(t, Config{})
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"bad json", "/v1/select", `{"algorithm":`, http.StatusBadRequest},
		{"unknown field", "/v1/select", `{"algoritm":"maxsub"}`, http.StatusBadRequest},
		{"unknown algorithm", "/v1/select", `{"algorithm":"simplex"}`, http.StatusBadRequest},
		{"unknown gain", "/v1/select", `{"gain":"cubic"}`, http.StatusBadRequest},
		{"unknown metric", "/v1/select", `{"metric":"novelty"}`, http.StatusBadRequest},
		{"bad divisor", "/v1/select", `{"divisors":[0]}`, http.StatusBadRequest},
		{"bad budget", "/v1/select", `{"budget":1.5}`, http.StatusBadRequest},
		{"tick in training window", "/v1/select", `{"ticks":[10]}`, http.StatusBadRequest},
		{"tick past horizon", "/v1/select", `{"ticks":[100000]}`, http.StatusBadRequest},
		{"quality candidate range", "/v1/quality", `{"set":[99]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := postJSON(t, srv.Handler(), tc.path, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: %d %s, want %d", tc.name, rec.Code, rec.Body.String(), tc.want)
		}
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/select", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET select: %d, want 405", rec.Code)
	}
}

// TestInfoEndpoints covers /v1/sources, /healthz and /metrics.
func TestInfoEndpoints(t *testing.T) {
	d := testDataset(t)
	srv := newServer(t, Config{})

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/sources", nil))
	var src SourcesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &src); err != nil {
		t.Fatal(err)
	}
	if len(src.Sources) != len(d.Sources) || src.T0 != int64(d.T0) {
		t.Errorf("sources: %d entries t0=%d", len(src.Sources), src.T0)
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["version"] != version.Version || health["commit"] != version.Commit {
		t.Errorf("healthz build identity: %v", health)
	}
	if up, ok := health["uptime_seconds"].(float64); !ok || up < 0 {
		t.Errorf("healthz uptime: %v", health["uptime_seconds"])
	}

	// The warm-registry hit rate must be visible on /metrics?format=json.
	postJSON(t, srv.Handler(), "/v1/select", `{}`)
	postJSON(t, srv.Handler(), "/v1/select", `{}`)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	var snap obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve.registry.result_hits"] < 1 {
		t.Errorf("metrics should expose warm hits, got %v", snap.Counters["serve.registry.result_hits"])
	}
	if snap.Counters["serve.registry.trained_misses"] < 1 {
		t.Errorf("metrics should expose the startup fit, got %v", snap.Counters["serve.registry.trained_misses"])
	}
	if snap.Gauges["proc.heap_alloc_bytes"] <= 0 {
		t.Errorf("metrics should capture runtime gauges, got %v", snap.Gauges["proc.heap_alloc_bytes"])
	}

	// The default /metrics view is the Prometheus text exposition.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Errorf("metrics content type: %q", ct)
	}
	doc := rec.Body.String()
	if n, err := obs.ValidatePrometheus(doc); err != nil || n == 0 {
		t.Fatalf("metrics exposition invalid (%d samples): %v", n, err)
	}
	for _, want := range []string{
		"# TYPE serve_registry_result_hits counter",
		"# TYPE http_select_seconds histogram",
		`http_select_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestConcurrentRequests hammers the handler from many goroutines (the
// race-detector workload): identical requests must all agree byte-for-byte,
// and every response is either 200 or a clean 429.
func TestConcurrentRequests(t *testing.T) {
	srv := newServer(t, Config{MaxInflight: 64})
	want := postJSON(t, srv.Handler(), "/v1/select", `{}`).Body.Bytes()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 3 {
				rec := postJSON(t, srv.Handler(), "/v1/quality", `{"set":[1,3],"future":4}`)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("quality: %d %s", rec.Code, rec.Body.String())
				}
				return
			}
			rec := postJSON(t, srv.Handler(), "/v1/select", `{}`)
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("select: %d %s", rec.Code, rec.Body.String())
				return
			}
			if !bytes.Equal(rec.Body.Bytes(), want) {
				errs <- fmt.Errorf("concurrent response diverged")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestGracefulDrain runs the real listener lifecycle: cancel the serve
// context while a slow request is in flight; the listener must close (new
// connections refused) while the in-flight request completes 200.
func TestGracefulDrain(t *testing.T) {
	// Generous request/drain bounds: under -race the solver is an order of
	// magnitude slower, and this test must never hit them.
	srv := newServer(t, Config{
		RequestTimeout: 10 * time.Minute,
		ShutdownGrace:  10 * time.Minute,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	admitted0 := counter("serve.admission.admitted")

	slow := make(chan *http.Response, 1)
	slowErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/v1/select", "application/json",
			strings.NewReader(`{"algorithm":"grasp","rounds":60,"seed":7}`))
		if err != nil {
			slowErr <- err
			return
		}
		slow <- resp
	}()

	// Wait until the slow request holds a gate slot, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for counter("serve.admission.admitted") == admitted0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	// The in-flight request must finish cleanly despite the shutdown.
	select {
	case err := <-slowErr:
		t.Fatalf("in-flight request dropped during drain: %v", err)
	case resp := <-slow:
		if resp.StatusCode != http.StatusOK {
			t.Errorf("drained request: %d", resp.StatusCode)
		}
		resp.Body.Close()
	case <-time.After(60 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v after drain", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// Listener is gone: new connections must be refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Error("listener still accepting after drain")
	}
}
