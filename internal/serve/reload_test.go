package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"freshsource/internal/dataset"
	"freshsource/internal/obs"
	"freshsource/internal/snapio"
)

// altDataset generates a dataset that differs from the fixture (different
// seed), so its modelcache digest differs and a reload must swap.
func altDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 8
	cfg.Categories = 5
	cfg.NumSources = 10
	cfg.Horizon = 220
	cfg.T0 = 120
	cfg.Scale = 0.4
	cfg.Seed = 7
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Name = "alt"
	return d
}

func getJSON(t testing.TB, h http.Handler, path string, v any) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if v != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
			t.Fatalf("%s: %v (%s)", path, err, rec.Body.String())
		}
	}
	return rec
}

// TestReloadSwapAndUnchanged walks the full reload lifecycle over the
// admin endpoint: a changed snapshot swaps the generation, an unchanged
// one keeps the warm registry, and /healthz reports the generation id
// throughout.
func TestReloadSwapAndUnchanged(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(t)
	if err := snapio.Write(dir, d); err != nil {
		t.Fatal(err)
	}
	srv := newServer(t, Config{SnapshotDir: dir})
	defer srv.Close()

	var health struct {
		Generation uint64 `json:"generation"`
		Digest     string `json:"digest"`
	}
	getJSON(t, srv.Handler(), "/healthz", &health)
	if health.Generation != 1 || health.Digest == "" {
		t.Fatalf("startup healthz: %+v", health)
	}

	// Unchanged snapshot: no swap, warm registry kept.
	unchanged0 := counter("serve.reload.unchanged")
	rec := postJSON(t, srv.Handler(), "/v1/reload", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("no-op reload: %d %s", rec.Code, rec.Body.String())
	}
	var info ReloadInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Swapped || info.Generation != 1 {
		t.Errorf("no-op reload: %+v, want unswapped generation 1", info)
	}
	if counter("serve.reload.unchanged")-unchanged0 != 1 {
		t.Error("no-op reload not counted as unchanged")
	}

	// Changed snapshot: stage, fit, swap; the serving dataset follows.
	if err := snapio.Write(dir, altDataset(t)); err != nil {
		t.Fatal(err)
	}
	success0 := counter("serve.reload.success")
	rec = postJSON(t, srv.Handler(), "/v1/reload", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if !info.Swapped || info.Generation != 2 || info.Dataset != "alt" {
		t.Errorf("reload: %+v, want swapped generation 2 of alt", info)
	}
	if counter("serve.reload.success")-success0 != 1 {
		t.Error("swap not counted as success")
	}

	getJSON(t, srv.Handler(), "/healthz", &health)
	if health.Generation != 2 {
		t.Errorf("healthz generation after swap = %d, want 2", health.Generation)
	}
	var src SourcesResponse
	getJSON(t, srv.Handler(), "/v1/sources", &src)
	if src.Dataset != "alt" {
		t.Errorf("sources dataset after swap = %q, want alt", src.Dataset)
	}
	if rec := postJSON(t, srv.Handler(), "/v1/select", `{}`); rec.Code != http.StatusOK {
		t.Errorf("select on the new generation: %d %s", rec.Code, rec.Body.String())
	}
}

// TestReloadUnavailable: a server over an in-process generated dataset has
// nothing to reload from; the endpoint must say so without touching the
// serving state.
func TestReloadUnavailable(t *testing.T) {
	srv := newServer(t, Config{})
	defer srv.Close()

	rec := postJSON(t, srv.Handler(), "/v1/reload", "")
	if rec.Code != http.StatusConflict {
		t.Fatalf("reload without snapshot dir: %d %s, want 409", rec.Code, rec.Body.String())
	}
	if srv.Generation() != 1 {
		t.Errorf("generation moved to %d on a refused reload", srv.Generation())
	}

	get := httptest.NewRecorder()
	srv.Handler().ServeHTTP(get, httptest.NewRequest(http.MethodGet, "/v1/reload", nil))
	if get.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET reload: %d, want 405", get.Code)
	}
}

// TestBodyCap413: an oversized request body must be rejected with a JSON
// 413 instead of being buffered into memory.
func TestBodyCap413(t *testing.T) {
	srv := newServer(t, Config{MaxBodyBytes: 256})
	defer srv.Close()

	big := `{"ticks":[` + strings.Repeat("121,", 200) + `121]}`
	if len(big) <= 256 {
		t.Fatal("test body not oversized")
	}
	rec := postJSON(t, srv.Handler(), "/v1/select", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized select: %d %s, want 413", rec.Code, rec.Body.String())
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "256") {
		t.Errorf("413 body should be JSON naming the limit: %s", rec.Body.String())
	}
	if rec := postJSON(t, srv.Handler(), "/v1/quality", big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized quality: %d, want 413", rec.Code)
	}

	// A small request still works under the cap.
	if rec := postJSON(t, srv.Handler(), "/v1/select", `{}`); rec.Code != http.StatusOK {
		t.Errorf("small body under cap: %d %s", rec.Code, rec.Body.String())
	}
}

// TestRetryAfterTracksLatency: the 429 Retry-After must follow the
// observed p95 of the heavy routes — proportional backoff, clamped to
// [1, 60] seconds.
func TestRetryAfterTracksLatency(t *testing.T) {
	obs.Enable()
	srv := newServer(t, Config{MaxInflight: 1})
	defer srv.Close()
	if !srv.gate.TryAcquire() {
		t.Fatal("gate refused below capacity")
	}
	defer srv.gate.Release()

	saturated := func() int {
		t.Helper()
		rec := postJSON(t, srv.Handler(), "/v1/select", `{}`)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("saturated select: %d", rec.Code)
		}
		n, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q not an integer", rec.Header().Get("Retry-After"))
		}
		return n
	}

	if got := saturated(); got < 1 || got > 60 {
		t.Errorf("baseline Retry-After = %d, want within [1, 60]", got)
	}

	// Drag the select p95 to ~7.2s: the advice must follow it upward.
	h := obs.Active().Histogram("http.select.seconds")
	for i := 0; i < 1000; i++ {
		h.Observe(7.2)
	}
	if got := saturated(); got < 6 || got > 8 {
		t.Errorf("Retry-After with p95≈7.2s = %d, want ≈7–8", got)
	}

	// Absurd latencies clamp at 60s — the advice never tells a client to
	// go away for minutes.
	for i := 0; i < 20000; i++ {
		h.Observe(120)
	}
	if got := saturated(); got != 60 {
		t.Errorf("Retry-After with p95≈120s = %d, want clamped 60", got)
	}
}
