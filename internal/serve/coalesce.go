package serve

import (
	"context"
	"sync"
	"time"

	"freshsource/internal/obs"
)

// coalescer deduplicates identical-key work across concurrent requests and
// batches near-simultaneous arrivals into one solver pass.
//
// The base layer is in-flight dedupe (the classic singleflight shape): the
// first request for a key becomes the *leader* and runs the computation;
// every request for the same key that arrives before the leader publishes
// becomes a *follower* and receives the leader's bytes. On top of that sits
// the batch window: a positive window makes the leader hold the flight open
// for that long before solving, so requests landing within the window — not
// just while the solve is already running — collapse into the same pass.
//
// Exactness: followers are only ever answered with bytes the leader
// computed for the *identical canonical key* (which includes the serving
// generation id), and the computation itself is deterministic for a fixed
// (generation, key). A coalesced response is therefore byte-identical to
// the response the follower would have computed alone, at any window and
// any concurrency — the window changes scheduling, never content. This is
// pinned by TestCoalescedByteIdentical.
//
// A window of zero keeps pure in-flight dedupe (no hold); the flight is
// removed before publication either way, so requests arriving after the
// leader publishes start a fresh flight and observe fresh state.
type coalescer struct {
	window time.Duration
	scope  string // metric scope, e.g. "serve.tenant.acme.coalesce.select"

	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress coalesced computation. code and body are
// written by the leader before done is closed and read-only afterwards.
type flight struct {
	done chan struct{}
	code int
	body []byte
}

func newCoalescer(window time.Duration, scope string) *coalescer {
	if window < 0 {
		window = 0
	}
	return &coalescer{window: window, scope: scope, flights: make(map[string]*flight)}
}

// Do returns the coalesced response for key. The leader runs compute
// exactly once (after holding the batch window open); followers wait for
// the leader's publication, bounded by their own ctx — a follower whose
// deadline fires gets ctx.Err() while the leader's computation continues
// for everyone else. compute must not depend on the calling request's
// context (the server runs it under a detached, timeout-bounded context for
// exactly this reason).
func (c *coalescer) Do(ctx context.Context, key string, compute func() (int, []byte)) (int, []byte, error) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		obs.Counter(c.scope + ".followers").Inc()
		select {
		case <-f.done:
			return f.code, f.body, nil
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	obs.Counter(c.scope + ".leaders").Inc()

	if c.window > 0 {
		// Collect phase: hold the flight open so concurrent identical
		// requests join this pass instead of racing it. A fired caller ctx
		// only shortens the hold — the computation still runs, because
		// followers may already be waiting on this flight.
		t := time.NewTimer(c.window)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}

	f.code, f.body = compute()
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return f.code, f.body, nil
}
