package serve

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"

	"freshsource/internal/modelcache"
	"freshsource/internal/obs"
	"freshsource/internal/snapio"
)

// ErrNotReloadable reports a reload request on a server that has no
// snapshot directory to reload from (it serves an in-process generated
// dataset, which has no on-disk successor).
var ErrNotReloadable = errors.New("serve: no snapshot directory configured; reload unavailable")

// ReloadInfo describes the outcome of a successful Reload.
type ReloadInfo struct {
	// Generation is the serving generation after the reload (unchanged
	// when Swapped is false).
	Generation uint64 `json:"generation"`
	// Swapped reports whether a new generation was installed; false means
	// the staged snapshot's digest matched the serving one, so the warm
	// registry was kept.
	Swapped bool `json:"swapped"`
	// Dataset and Digest identify the serving snapshot after the reload.
	Dataset string `json:"dataset"`
	Digest  string `json:"digest"`
}

// Reload picks up a changed snapshot without restarting the daemon. The
// lifecycle is stage → validate → fit → swap, and it is atomic from the
// traffic's point of view:
//
//	stage     re-read cfg.SnapshotDir through snapio (nothing shared with
//	          the serving generation)
//	validate  structural checks plus the modelcache digest of the staged
//	          data; an unchanged digest ends the reload early, keeping the
//	          warm registry (Swapped=false)
//	fit       pre-fit the base models on a candidate registry (through the
//	          persistent model cache when configured), bounded by ctx
//	swap      atomically publish the candidate generation; in-flight
//	          requests finish on the generation they started with
//
// Any failure — unreadable or corrupt snapshot, fit error, fired ctx —
// rolls back: the candidate is discarded, the last-good generation keeps
// serving, and the error is reported to the caller only. Reloads are
// serialized; concurrent SIGHUP and /v1/reload triggers queue.
//
// Counters: serve.reload.{attempts,success,unchanged,failures}; the
// serving generation id is the serve.reload.generation gauge and is also
// reported by /healthz.
func (s *Server) Reload(ctx context.Context) (ReloadInfo, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	obs.Counter("serve.reload.attempts").Inc()
	sp := obs.Start("serve.reload.seconds")
	defer sp.End()

	cur := s.current()
	if s.cfg.SnapshotDir == "" {
		obs.Counter("serve.reload.failures").Inc()
		return ReloadInfo{}, ErrNotReloadable
	}

	// Stage + validate: a broken snapshot must be rejected before any
	// serving state is touched.
	d, err := snapio.Read(s.cfg.SnapshotDir)
	if err == nil {
		err = validateDataset(d)
	}
	if err != nil {
		obs.Counter("serve.reload.failures").Inc()
		return ReloadInfo{}, fmt.Errorf("serve: reload: stage %s: %w", s.cfg.SnapshotDir, err)
	}

	// An unchanged snapshot is detected by digest before paying for a
	// fit: the warm registry survives a no-op reload.
	if modelcache.Digest(d.World, d.Sources) == cur.digest {
		obs.Counter("serve.reload.unchanged").Inc()
		return s.info(cur, false), nil
	}

	// Fit the candidate, then swap. A fit failure (or a canceled ctx)
	// discards the candidate; the serving generation is never touched.
	cand, err := s.buildGeneration(ctx, cur.id+1, d)
	if err != nil {
		obs.Counter("serve.reload.failures").Inc()
		return ReloadInfo{}, fmt.Errorf("serve: reload: fit: %w", err)
	}
	s.install(cand)
	obs.Counter("serve.reload.success").Inc()
	return s.info(cand, true), nil
}

func (s *Server) info(g *generation, swapped bool) ReloadInfo {
	return ReloadInfo{
		Generation: g.id,
		Swapped:    swapped,
		Dataset:    g.d.Name,
		Digest:     hex.EncodeToString(g.digest[:]),
	}
}

// handleReload is the admin trigger for Reload: POST /v1/reload. It is
// deliberately outside the admission gate — an operator must be able to
// roll a snapshot while the server is saturated — and bounded by
// cfg.ReloadTimeout rather than the request timeout.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ReloadTimeout)
	defer cancel()
	info, err := s.Reload(ctx)
	switch {
	case errors.Is(err, ErrNotReloadable):
		writeErr(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusOK, info)
	}
}
